lib/compress/rle2.ml: Array List
