examples/mitigate.ml: Array Attack Compress Float Format Mitigation Sys Util Zipchannel
