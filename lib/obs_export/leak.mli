(** Leakage scoreboard: per-gadget leak indicators in a [leak.*]
    namespace, derived purely from the counters and histograms the
    attack and taint engines already publish.

    Definitions:
    - [leak.taint.gadget_hits_per_input_byte] — taint-engine gadget hits
      divided by tainted input bytes: channel-access density.
    - [leak.sgx{,.zlib,.lzw}.faults_per_byte] — page faults observed per
      secret byte; [..lost_reading_rate] — fraction of bytes whose
      reading was coalesced away.
    - [leak.*.candidate_entropy_bits] — mean log2 of the candidate-set
      size per recovered byte (log2-bucket midpoint estimate): the
      residual entropy an attacker still faces; 0 = unique recovery.
    - [leak.recovery.*.ambiguity_rate] / [..repair_rate] — fraction of
      bytes ambiguous after the channel, and the fraction of those the
      repair pass resolved. *)

val derive : Zipchannel_obs.Obs.Metrics.snapshot -> (string * float) list
(** Each indicator appears only when its inputs are present with a
    non-zero denominator; an Obs-off (empty) snapshot yields []. *)

val mean_log2 : Zipchannel_obs.Obs.Metrics.histogram_snapshot -> float option
