type t = { codec : string; offset : int; reason : string }

exception Codec_error of t

let v ~codec ?(offset = -1) reason = { codec; offset; reason }

let error ~codec ?offset reason = Error (v ~codec ?offset reason)

let fail ~codec ?offset reason = raise (Codec_error (v ~codec ?offset reason))

let to_string e =
  if e.offset < 0 then Printf.sprintf "%s decode error: %s" e.codec e.reason
  else
    Printf.sprintf "%s decode error at byte %d: %s" e.codec e.offset e.reason

let pp fmt e = Format.pp_print_string fmt (to_string e)

let protect ~codec ~offset f =
  match f () with
  | x -> Ok x
  | exception Codec_error e -> Error e
  | exception Failure reason -> Error (v ~codec ~offset:(offset ()) reason)
  | exception Invalid_argument reason ->
      Error (v ~codec ~offset:(offset ()) reason)
  | exception Bitio.Reader.Out_of_bits ->
      Error (v ~codec ~offset:(offset ()) (codec ^ ": truncated input"))
  | exception Bitio.Lsb_reader.Out_of_bits ->
      Error (v ~codec ~offset:(offset ()) (codec ^ ": truncated input"))

let unwrap = function Ok x -> x | Error e -> raise (Failure e.reason)
