module Bigstring = Zipchannel_buf.Bigstring
module Arena = Zipchannel_buf.Arena

type func = Main_sort | Fallback_sort

type segment = { func : func; work : int }

type path = { segments : segment list; abandoned : bool }

let ftab_size = 65537

let ftab_indices block =
  let n = Bytes.length block in
  if n = 0 then [||]
  else begin
    let byte i = Char.code (Bytes.get block i) in
    (* Listing 3: j starts as block[0] << 8; each iteration shifts in
       block[i] from the top, so j = block[i] << 8 | block[(i+1) mod n]. *)
    let j = ref (byte 0 lsl 8) in
    Array.init n (fun k ->
        let i = n - 1 - k in
        j := (!j lsr 8) lor (byte i lsl 8);
        !j)
  end

let histogram block =
  let ftab = Array.make ftab_size 0 in
  Array.iter (fun j -> ftab.(j) <- ftab.(j) + 1) (ftab_indices block);
  ftab

exception Abandoned of int

(* Arena slots (see the table in DESIGN.md §12): this module owns int
   slots 0..2 and big slot 0; int slot 3 (the returned permutation) is
   deliberately shared with [Bwt.sort_rotations_work_sub], so a fallback
   sort after an abandoned main sort overwrites the dead partial order. *)
let slot_ftab = 0
let slot_starts = 1
let slot_fill = 2
let slot_perm = 3
let big_slot_dbl = 0

(* Stdlib [Array.sort]'s ternary heapsort over the subrange
   [a.(base .. base + l - 1)]: the comparison sequence is exactly what
   [Array.sort cmp] performed on the [Array.sub] copy the reference
   implementation made per bucket — required, because the comparator
   below charges the work budget and the abandon point must not move. *)
let heapsort_sub cmp a base l =
  let exception Bottom of int in
  let get i = Array.unsafe_get a (base + i) in
  let set i v = Array.unsafe_set a (base + i) v in
  let maxson l i =
    let i31 = i + i + i + 1 in
    let x = ref i31 in
    if i31 + 2 < l then begin
      if cmp (get i31) (get (i31 + 1)) < 0 then x := i31 + 1;
      if cmp (get !x) (get (i31 + 2)) < 0 then x := i31 + 2;
      !x
    end
    else if i31 + 1 < l && cmp (get i31) (get (i31 + 1)) < 0 then i31 + 1
    else if i31 < l then i31
    else raise (Bottom i)
  in
  let rec trickledown l i e =
    let j = maxson l i in
    if cmp (get j) e > 0 then begin
      set i (get j);
      trickledown l j e
    end
    else set i e
  in
  let trickle l i e = try trickledown l i e with Bottom i -> set i e in
  let rec bubbledown l i =
    let j = maxson l i in
    set i (get j);
    bubbledown l j
  in
  let bubble l i = try bubbledown l i with Bottom i -> i in
  let rec trickleup i e =
    let father = (i - 1) / 3 in
    if cmp (get father) e < 0 then begin
      set i (get father);
      if father > 0 then trickleup father e else set 0 e
    end
    else set i e
  in
  for i = ((l + 1) / 3) - 1 downto 0 do
    trickle l i (get i)
  done;
  for i = l - 1 downto 2 do
    let e = get i in
    set i (get 0);
    trickleup (bubble i 0) e
  done;
  if l > 1 then begin
    let e = get 1 in
    set 1 (get 0);
    set 0 e
  end

let main_sort_sub ?arena ~budget block ~off ~len =
  let n = len in
  if n = 0 then ([||], 0)
  else begin
    let ints slot len =
      match arena with
      | Some a -> Arena.ints a ~slot len
      | None -> Array.make len 0
    in
    let work = ref 0 in
    (* The block staged twice back to back: [dbl.(i) = block.(off + i mod
       n)] for i < 2n, so every rotation byte is a plain load — no [mod]
       on the comparison path — and rotation suffixes compare
       word-at-a-time. *)
    let dbl =
      match arena with
      | Some a -> Arena.big a ~slot:big_slot_dbl (2 * n)
      | None -> Bigstring.create (2 * n)
    in
    Bigstring.blit_of_bytes block ~src_off:off dbl ~dst_off:0 ~len:n;
    Bigstring.blit dbl ~src_off:0 dbl ~dst_off:n ~len:n;
    let byte i = Char.code (Bigstring.unsafe_get dbl i) in
    (* Stage 1: the ftab histogram (the paper's leakage gadget). *)
    let ftab = ints slot_ftab ftab_size in
    Array.fill ftab 0 ftab_size 0;
    for i = 0 to n - 1 do
      let j = (byte i lsl 8) lor byte (i + 1) in
      Array.unsafe_set ftab j (Array.unsafe_get ftab j + 1)
    done;
    work := !work + n;
    if !work > budget then raise (Abandoned !work);
    (* Stage 2: bucket rotations by their first two bytes via the running
       sums of ftab, exactly how mainSort derives bucket boundaries. *)
    let starts = ints slot_starts ftab_size in
    let acc = ref 0 in
    for j = 0 to ftab_size - 1 do
      starts.(j) <- !acc;
      acc := !acc + ftab.(j)
    done;
    let perm = ints slot_perm n in
    let fill = ints slot_fill ftab_size in
    Array.blit starts 0 fill 0 ftab_size;
    for i = 0 to n - 1 do
      let j = (byte i lsl 8) lor byte (i + 1) in
      perm.(fill.(j)) <- i;
      fill.(j) <- fill.(j) + 1
    done;
    (* Stage 3: finish each bucket by comparison sort on the rotation
       suffixes past the two bucketed bytes, paying one work unit per byte
       comparison.  Repetitive input makes comparisons deep and trips the
       budget.  The prefix scan runs word-at-a-time and the work is
       charged in one batch: the reference charged the same total one
       byte at a time, so on exhaustion it crossed at exactly
       [budget + 1] — which is what the batched raise reports. *)
    let spend k =
      work := !work + k;
      if !work > budget then raise (Abandoned (budget + 1))
    in
    let compare_rotations i1 i2 =
      if i1 = i2 then 0
      else begin
        let m = Bigstring.common_prefix dbl (i1 + 2) (i2 + 2) ~limit:(n - 2) in
        if m = n - 2 then begin
          (* Full cycle: the reference compared n - 2 equal bytes and
             then broke the tie on start index. *)
          spend (n - 2);
          compare (i1 : int) i2
        end
        else begin
          spend (m + 1);
          compare (byte (i1 + 2 + m) : int) (byte (i2 + 2 + m))
        end
      end
    in
    for j = 0 to ftab_size - 1 do
      let blen = ftab.(j) in
      if blen > 1 then heapsort_sub compare_rotations perm starts.(j) blen
    done;
    (perm, !work)
  end

let main_sort ~budget block =
  main_sort_sub ~budget block ~off:0 ~len:(Bytes.length block)

let fallback_sort block = Bwt.sort_rotations_work block

let default_budget_factor = 30

let block_sort_sub ?arena ?(budget_factor = default_budget_factor) ~full_block
    block ~off ~len =
  Zipchannel_obs.Obs.with_span "bwt.sort"
    ~attrs:[ ("bytes", string_of_int len) ]
  @@ fun () ->
  if not full_block then begin
    let perm, work = Bwt.sort_rotations_work_sub ?arena block ~off ~len in
    (perm, { segments = [ { func = Fallback_sort; work } ]; abandoned = false })
  end
  else begin
    let budget = budget_factor * max 1 len in
    match main_sort_sub ?arena ~budget block ~off ~len with
    | perm, work ->
        (perm, { segments = [ { func = Main_sort; work } ]; abandoned = false })
    | exception Abandoned spent ->
        let perm, work = Bwt.sort_rotations_work_sub ?arena block ~off ~len in
        ( perm,
          { segments =
              [ { func = Main_sort; work = spent };
                { func = Fallback_sort; work } ];
            abandoned = true } )
  end

let block_sort ?budget_factor ~full_block block =
  block_sort_sub ?budget_factor ~full_block block ~off:0
    ~len:(Bytes.length block)
