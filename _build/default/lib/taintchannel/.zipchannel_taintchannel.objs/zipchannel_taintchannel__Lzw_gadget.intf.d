lib/taintchannel/lzw_gadget.mli: Engine
