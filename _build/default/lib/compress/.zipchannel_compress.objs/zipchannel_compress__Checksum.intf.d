lib/compress/checksum.mli:
