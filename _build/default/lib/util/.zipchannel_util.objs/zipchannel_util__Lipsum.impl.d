lib/util/lipsum.ml: Array Buffer Char List Prng String
