lib/attack/timer_attack.mli: Zipchannel_cache
