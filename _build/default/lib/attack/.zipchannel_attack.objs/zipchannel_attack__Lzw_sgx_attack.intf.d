lib/attack/lzw_sgx_attack.mli: Attack_config Zipchannel_trace
