(** Crash-safe file sinks for telemetry artifacts.

    [--metrics=PATH], [--audit=PATH] and the OTLP dump used to write
    their destination in place, so a crash (or SIGKILL) mid-write left
    a truncated, unparseable JSON file.  Everything here writes to
    [PATH ^ ".tmp"] and renames over the destination — on POSIX the
    rename is atomic, so readers only ever see the previous complete
    snapshot or the new one — and creates missing parent directories
    first. *)

val ensure_parent_dir : string -> unit
(** Create the missing ancestors of [path]'s directory (like
    [mkdir -p (dirname path)]).  No-op when they exist. *)

val atomic_write : path:string -> string -> unit
(** Write [content] to [path ^ ".tmp"], flush, and rename onto [path].
    Creates missing parent directories. *)

val open_atomic : path:string -> out_channel * (unit -> unit)
(** [open_atomic ~path] opens [path ^ ".tmp"] for writing (creating
    parent directories) and returns the channel plus a [commit]
    function that closes it and renames it onto [path].  For streaming
    sinks (audit JSONL) that want the same only-ever-complete-files
    guarantee on clean shutdown. *)
