(* Memory-compression (ZRAM-style) ratio/timing oracle, after "Practical
   Timing Side Channel Attacks on Memory Compression" (Schwarzl et al.):
   a page-compression store compresses 4-KiB pages with LZ4 on swap-out,
   and an attacker who co-locates controlled data with a secret in the
   same page learns from the page's compressed size — or from the
   size-dependent swap latency — whether its guess extended a match into
   the secret.  Byte-at-a-time recovery, exactly the CRIME/BREACH loop of
   {!Chunk_oracle} transplanted from the network to the OS memory
   subsystem. *)

module Compress = Zipchannel_compress
module Timing = Zipchannel_cache.Timing
module Obs = Zipchannel_obs.Obs
module Leak_audit = Zipchannel_obs_leak.Leak_audit
module Prng = Zipchannel_util.Prng
module Pool = Zipchannel_parallel.Pool
module Mlp = Zipchannel_classifier.Mlp
module Dataset = Zipchannel_classifier.Dataset

let page_size = 4096
let alphabet = "0123456789abcdef"

let m_probes = Obs.Metrics.counter "leak.memcomp.probes"
let m_recovered = Obs.Metrics.counter "leak.memcomp.bytes_recovered"
let g_capacity = Obs.Metrics.gauge "leak.memcomp.capacity_bits"
let g_rate = Obs.Metrics.gauge "leak.memcomp.recovery_rate"
let g_classifier = Obs.Metrics.gauge "leak.memcomp.classifier_accuracy"

type oracle = Ratio | Timing

(* ------------------------------------------------------------------ *)
(* The victim page *)

(* Filler stays clear of 'k', '=', '|' and '~' so neither the victim's
   [key=] marker nor the attacker's separators can occur in it by
   accident; hex digits and '&' keep it query-string-shaped and nearly
   incompressible under LZ4 (no entropy coder to exploit symbol bias). *)
let filler_alphabet = "0123456789abcdef&"

(* Charset pollution as in {!Chunk_oracle}: every candidate appears once
   in the attacker region whichever candidate is probed, separated so the
   pollution itself cannot form a 4-byte match with the secret. *)
let pollution =
  String.concat "~" (List.map (String.make 1) (List.init 16 (fun i -> alphabet.[i])))
  ^ "~"

module Page = struct
  type t = {
    secret : string;
    head : string;  (** filler before the secret *)
    gap : string;  (** filler between the secret and the attacker region *)
    junk : string;  (** attacker's incompressible padding pool *)
    tail : string;  (** filler after the attacker region, page-sized *)
    region_len : int;  (** bytes the attacker controls *)
  }

  let fill rng n =
    String.init n (fun _ ->
        filler_alphabet.[Prng.int rng (String.length filler_alphabet)])

  let create ?(seed = 7) ?(secret_len = 16) ?(region_len = 512) () =
    if secret_len < 1 then invalid_arg "Memcomp.Page.create";
    let rng = Prng.create ~seed () in
    let secret =
      String.init secret_len (fun _ ->
          alphabet.[Prng.int rng (String.length alphabet)])
    in
    (* The attacker sits just after the secret: grooming the physical
       co-location is the attacker's job in the Schwarzl attack, and a
       short gap keeps the match-finder's hash slots for the secret's
       quads from being evicted before the guess probes them. *)
    let head = fill rng 1536 in
    let gap = fill rng 64 in
    let junk = fill rng (region_len + 128) in
    let tail = fill rng page_size in
    { secret; head; gap; junk; tail; region_len }

  let secret t = t.secret

  (* The full 4-KiB page for one probe: victim data, the secret at its
     fixed offset, then the attacker region (pollution + reflected guess
     + junk shifted by the padding step [pad]), then tail filler.  The
     length is always exactly [page_size] whatever the guess, so only
     content — never size — varies between candidates. *)
  let render t ~guess ~pad =
    let b = Buffer.create page_size in
    Buffer.add_string b t.head;
    Buffer.add_string b "key=";
    Buffer.add_string b t.secret;
    Buffer.add_char b '&';
    Buffer.add_string b t.gap;
    Buffer.add_string b pollution;
    Buffer.add_string b "key=";
    Buffer.add_string b guess;
    Buffer.add_char b '|';
    let used =
      String.length pollution + 4 + String.length guess + 1
    in
    if used + pad > t.region_len then invalid_arg "Memcomp.Page.render: guess";
    Buffer.add_string b (String.sub t.junk pad (t.region_len - used));
    let tail = page_size - Buffer.length b in
    if tail < 0 then invalid_arg "Memcomp.Page.render: overflow";
    Buffer.add_string b (String.sub t.tail 0 tail);
    Buffer.to_bytes b
end

(* ------------------------------------------------------------------ *)
(* The store's observables *)

(* Swap-out latency, modeled as one cache-hit write per compressed byte
   plus the Timing model's outlier tail, aggregated through the CLT: the
   mean grows linearly in the compressed size and the noise with its
   square root.  This is the same per-access cost model Timer_attack's
   Prime+Probe channel draws from, collapsed analytically so a probe is
   one gaussian instead of ~4096. *)
let swap_latency (timing : Timing.t) prng ~csize =
  let n = float_of_int csize in
  let mean =
    n *. (timing.Timing.hit_mean
         +. (timing.Timing.outlier_prob *. timing.Timing.outlier_cycles))
  in
  let stddev = timing.Timing.stddev *. Float.sqrt n in
  Float.max 1.0 (Prng.gaussian prng ~mean ~stddev)

(* Per-probe PRNG derivation, FNV-1a over the probe coordinates: noise
   depends only on (seed, trial, position, candidate, pad), never on
   which domain ran the probe — the whole run is byte-identical at any
   [jobs]. *)
let probe_seed ~seed ~trial ~position ~candidate ~pad =
  let h = ref 0xcbf29ce484222325L in
  let mix v =
    h := Int64.logxor !h (Int64.of_int v);
    h := Int64.mul !h 0x100000001b3L
  in
  mix seed;
  mix trial;
  mix position;
  mix candidate;
  mix pad;
  Int64.to_int !h land max_int

(* ------------------------------------------------------------------ *)
(* Recovery *)

type result = {
  oracle : oracle;
  secret : string;
  recovered : string;
  per_byte_correct : int;
  positions : int;
  probes : int;
  per_byte_rate : float;
  chained_rate : float;
  capacity_bits : float;
  mi_bits : float;
  classifier_accuracy : float;
}

let run ?(seed = 7) ?(secret_len = 16) ?(trials = 1) ?(tries = 8)
    ?(measurements = 400) ?(oracle = Timing) ?(jobs = 1)
    ?(timing = Timer_attack.default_config.Timer_attack.timing) () =
  if trials < 1 then invalid_arg "Memcomp.run: trials";
  if tries < 1 then invalid_arg "Memcomp.run: tries";
  if measurements < 1 then invalid_arg "Memcomp.run: measurements";
  let k = String.length alphabet in
  let probes = ref 0 in
  let est = Leak_audit.Estimator.create ~buckets:2 ~delta_range:64 () in
  let per_byte_correct = ref 0 in
  let positions = ref 0 in
  let chained_sum = ref 0. in
  let first_secret = ref "" in
  let first_recovered = ref "" in
  let samples = ref [] (* classifier training pairs, built per position *) in
  for trial = 0 to trials - 1 do
    let page = Page.create ~seed:(seed + (9973 * trial)) ~secret_len () in
    let secret = Page.secret page in
    let n = String.length secret in
    (* One probe: compress the page the store would write out and read
       the observable — the exact compressed size (ratio oracle) or the
       simulated swap-out latency averaged over [measurements] swap
       cycles (timing oracle). *)
    let score_candidate ~position ~prefix c =
      let total = ref 0. in
      for pad = 0 to tries - 1 do
        incr probes;
        Obs.Metrics.incr m_probes;
        let guess = prefix ^ String.make 1 alphabet.[c] in
        let rendered = Page.render page ~guess ~pad in
        let csize = Bytes.length (Compress.Lz4.compress rendered) in
        match oracle with
        | Ratio -> total := !total +. float_of_int csize
        | Timing ->
            let prng =
              Prng.create
                ~seed:(probe_seed ~seed ~trial ~position ~candidate:c ~pad)
                ()
            in
            let sum = ref 0. in
            for _ = 1 to measurements do
              sum := !sum +. swap_latency timing prng ~csize
            done;
            total := !total +. (!sum /. float_of_int measurements)
      done;
      !total
    in
    (* Candidates fan out over the pool; scores come back in candidate
       order, so aggregation below is order-stable. *)
    let scores ~position prefix =
      Array.of_list
        (Pool.map_list ~jobs
           (fun c -> score_candidate ~position ~prefix c)
           (List.init k Fun.id))
    in
    let cache : (string, float array) Hashtbl.t = Hashtbl.create 64 in
    let scores_cached ~position prefix =
      match Hashtbl.find_opt cache prefix with
      | Some s -> s
      | None ->
          let s = scores ~position prefix in
          Hashtbl.add cache prefix s;
          s
    in
    let argmin (a : float array) =
      let best = ref 0 in
      Array.iteri (fun i s -> if s < a.(!best) then best := i) a;
      !best
    in
    (* The delta fed to the capacity estimator, in compressed-byte units
       whichever oracle produced it. *)
    let delta_unit =
      match oracle with
      | Ratio -> float_of_int tries
      | Timing ->
          float_of_int tries
          *. (timing.Timing.hit_mean
             +. (timing.Timing.outlier_prob *. timing.Timing.outlier_cycles))
    in
    let recovered = Buffer.create n in
    for i = 0 to n - 1 do
      (* Oracle accuracy at this position: probe from the true prefix. *)
      let s = scores_cached ~position:i (String.sub secret 0 i) in
      let best = argmin s in
      if alphabet.[best] = secret.[i] then incr per_byte_correct;
      let mean = Array.fold_left ( +. ) 0. s /. float_of_int k in
      let sq = Array.fold_left (fun a v -> a +. ((v -. mean) ** 2.)) 0. s in
      let std = Float.max 1e-9 (Float.sqrt (sq /. float_of_int k)) in
      let rank c =
        let r = ref 0 in
        Array.iteri (fun j v -> if v < s.(c) || (v = s.(c) && j < c) then incr r) s;
        float_of_int !r /. float_of_int (k - 1)
      in
      Array.iteri
        (fun c sc ->
          let bucket = if alphabet.[c] = secret.[i] then 1 else 0 in
          let delta =
            int_of_float (Float.round ((sc -. s.(best)) /. delta_unit))
          in
          Leak_audit.Estimator.observe est ~bucket ~delta)
        s;
      (* Balanced classifier samples: the true candidate against the
         best-scoring wrong one, features (z-score, rank). *)
      let ci = String.index alphabet secret.[i] in
      let wrong =
        let w = ref (if ci = 0 then 1 else 0) in
        Array.iteri
          (fun j v -> if j <> ci && v < s.(!w) then w := j)
          s;
        !w
      in
      let feat c = [| (s.(c) -. mean) /. std; rank c |] in
      samples := (feat ci, 1) :: (feat wrong, 0) :: !samples;
      (* Chained recovery: the attacker only has their own prefix; while
         it matches the true prefix the probe cache makes this free. *)
      let sc = scores_cached ~position:i (Buffer.contents recovered) in
      Buffer.add_char recovered alphabet.[argmin sc]
    done;
    let recovered = Buffer.contents recovered in
    let exact_prefix =
      let i = ref 0 in
      while !i < n && recovered.[!i] = secret.[!i] do
        incr i
      done;
      !i
    in
    positions := !positions + n;
    chained_sum :=
      !chained_sum +. (float_of_int exact_prefix /. float_of_int n);
    if trial = 0 then begin
      first_secret := secret;
      first_recovered := recovered
    end
  done;
  (* A learned match/non-match separator over the score features, the
     role the DNN plays in the paper's noisy-oracle settings: held-out
     accuracy is the quality of the timing side channel as a binary
     classifier. *)
  let classifier_accuracy =
    let ds = Dataset.make (List.rev !samples) in
    let ds = Dataset.shuffle (Prng.create ~seed:(seed + 1) ()) ds in
    let train, test = Dataset.split ds ~train_fraction:0.6 in
    if Array.length train.Dataset.x = 0 || Array.length test.Dataset.x = 0
    then 0.
    else begin
      let mlp = Mlp.create ~seed:(seed + 2) ~layers:[ 2; 8; 2 ] () in
      Mlp.train ~epochs:40 mlp ~x:train.Dataset.x ~y:train.Dataset.y;
      Mlp.accuracy mlp ~x:test.Dataset.x ~y:test.Dataset.y
    end
  in
  let r =
    {
      oracle;
      secret = !first_secret;
      recovered = !first_recovered;
      per_byte_correct = !per_byte_correct;
      positions = !positions;
      probes = !probes;
      per_byte_rate =
        float_of_int !per_byte_correct /. float_of_int !positions;
      chained_rate = !chained_sum /. float_of_int trials;
      capacity_bits = Leak_audit.Estimator.capacity_bits est;
      mi_bits = Leak_audit.Estimator.mutual_information_bits est;
      classifier_accuracy;
    }
  in
  Obs.Metrics.add m_recovered r.per_byte_correct;
  Obs.Metrics.set_gauge g_capacity r.capacity_bits;
  Obs.Metrics.set_gauge g_rate r.per_byte_rate;
  Obs.Metrics.set_gauge g_classifier r.classifier_accuracy;
  r
