(* The optimized kernels must be observationally identical to the
   reference implementations: same bytes out of the bit writers, same
   values out of the readers, same permutation AND work count out of the
   BWT, same tokens out of LZ77, and the same compressed bytes whatever
   [jobs] count the block pipeline runs with. *)

open Zipchannel_util
open Zipchannel_compress
module Pool = Zipchannel_parallel.Pool

let bytes_testable =
  Alcotest.testable
    (fun ppf b -> Format.fprintf ppf "%d bytes" (Bytes.length b))
    Bytes.equal

(* ------------------------------------------------------------------ *)
(* Bit-by-bit reference model for Bitio (the seed implementation). *)

module Ref_bits = struct
  (* A stream is a bool list; packing conventions mirror bitio.mli. *)
  let bits_msb value count =
    List.init count (fun i -> (value lsr (count - 1 - i)) land 1 = 1)

  let bits_lsb value count = List.init count (fun i -> (value lsr i) land 1 = 1)

  let pack_msb bits =
    let n = List.length bits in
    let out = Bytes.make ((n + 7) / 8) '\000' in
    List.iteri
      (fun k b ->
        if b then
          Bytes.set out (k / 8)
            (Char.chr (Char.code (Bytes.get out (k / 8)) lor (0x80 lsr (k mod 8)))))
      bits;
    out

  let pack_lsb bits =
    let n = List.length bits in
    let out = Bytes.make ((n + 7) / 8) '\000' in
    List.iteri
      (fun k b ->
        if b then
          Bytes.set out (k / 8)
            (Char.chr (Char.code (Bytes.get out (k / 8)) lor (1 lsl (k mod 8)))))
      bits;
    out
end

(* Ops: (value, count, use_lsb_order).  Interleaving MSB- and LSB-ordered
   appends exercises the accumulator across every internal alignment. *)
let ops_gen =
  QCheck.small_list
    QCheck.(triple (int_bound 0xffff) (int_range 0 16) bool)

let clip (v, c, lsb) = (v land ((1 lsl c) - 1), c, lsb)

let qcheck_writer_matches_reference =
  QCheck.Test.make ~name:"bitio word writer = per-bit reference" ~count:500
    ops_gen (fun ops ->
      let ops = List.map clip ops in
      let w = Bitio.Writer.create () in
      List.iter
        (fun (value, count, lsb) ->
          if lsb then Bitio.Writer.add_bits_lsb w ~value ~count
          else Bitio.Writer.add_bits_msb w ~value ~count)
        ops;
      let expected =
        Ref_bits.pack_msb
          (List.concat_map
             (fun (v, c, lsb) ->
               if lsb then Ref_bits.bits_lsb v c else Ref_bits.bits_msb v c)
             ops)
      in
      Bytes.equal (Bitio.Writer.to_bytes w) expected)

let qcheck_writer_append_matches_contiguous =
  QCheck.Test.make ~name:"bitio writer append = contiguous writes" ~count:500
    QCheck.(pair ops_gen ops_gen)
    (fun (a, b) ->
      let a = List.map clip a and b = List.map clip b in
      let write w ops =
        List.iter
          (fun (value, count, lsb) ->
            if lsb then Bitio.Writer.add_bits_lsb w ~value ~count
            else Bitio.Writer.add_bits_msb w ~value ~count)
          ops
      in
      let contiguous = Bitio.Writer.create () in
      write contiguous a;
      write contiguous b;
      let spliced = Bitio.Writer.create () in
      write spliced a;
      let sub = Bitio.Writer.create () in
      write sub b;
      Bitio.Writer.append spliced sub;
      Bitio.Writer.bit_length spliced = Bitio.Writer.bit_length contiguous
      && Bytes.equal
           (Bitio.Writer.to_bytes spliced)
           (Bitio.Writer.to_bytes contiguous))

let qcheck_msb_reader_matches_reference =
  QCheck.Test.make ~name:"bitio word reader = per-bit reference" ~count:500
    QCheck.(
      pair (small_list (int_range 0 16)) (string_of_size Gen.(0 -- 64)))
    (fun (counts, data) ->
      let data = Bytes.of_string data in
      (* Reference: one bit at a time through read_bit. *)
      let ref_reader counts =
        let r = Bitio.Reader.create data in
        List.map
          (fun c ->
            let msb = ref 0 and lsb = ref 0 in
            (try
               for i = 0 to c - 1 do
                 let b = if Bitio.Reader.read_bit r then 1 else 0 in
                 msb := (!msb lsl 1) lor b;
                 lsb := !lsb lor (b lsl i)
               done
             with Bitio.Reader.Out_of_bits -> ());
            (!msb, !lsb))
          counts
      in
      (* Readers under test, stopping at the first exhaustion like the
         reference loop does. *)
      let fast_reader order counts =
        let r = Bitio.Reader.create data in
        List.map
          (fun c ->
            match order c r with v -> Some v | exception Bitio.Reader.Out_of_bits -> None)
          counts
      in
      let msb = fast_reader (fun c r -> Bitio.Reader.read_bits_msb r c) counts in
      let lsb = fast_reader (fun c r -> Bitio.Reader.read_bits_lsb r c) counts in
      let expected = ref_reader counts in
      List.for_all2
        (fun got (want_msb, _) ->
          match got with Some v -> v = want_msb | None -> true)
        msb expected
      && List.for_all2
           (fun got (_, want_lsb) ->
             match got with Some v -> v = want_lsb | None -> true)
           lsb expected)

let qcheck_lsb_reader_matches_reference =
  QCheck.Test.make ~name:"bitio lsb word reader = per-bit reference"
    ~count:500
    QCheck.(
      pair (small_list (int_range 0 16)) (string_of_size Gen.(0 -- 64)))
    (fun (counts, data) ->
      let data = Bytes.of_string data in
      let r_fast = Bitio.Lsb_reader.create data in
      let r_ref = Bitio.Lsb_reader.create data in
      List.for_all
        (fun c ->
          let want =
            let v = ref 0 in
            try
              for i = 0 to c - 1 do
                if Bitio.Lsb_reader.read_bit r_ref then v := !v lor (1 lsl i)
              done;
              Some !v
            with Bitio.Lsb_reader.Out_of_bits -> None
          in
          let got =
            match Bitio.Lsb_reader.read_bits r_fast c with
            | v -> Some v
            | exception Bitio.Lsb_reader.Out_of_bits -> None
          in
          got = want
          && Bitio.Lsb_reader.bits_remaining r_fast
             = Bitio.Lsb_reader.bits_remaining r_ref)
        counts)

(* ------------------------------------------------------------------ *)
(* BWT: fast paths vs the tuple-keyed reference. *)

let bwt_agrees input =
  let b = Bytes.of_string input in
  let ref_perm, ref_work = Bwt.reference_sort_rotations_work b in
  let perm, work = Bwt.sort_rotations_work b in
  let radix_perm = Bwt.sort_rotations b in
  perm = ref_perm && work = ref_work && radix_perm = ref_perm

let qcheck_bwt_fast_matches_reference =
  QCheck.Test.make ~name:"fast bwt perm+work = reference" ~count:200
    QCheck.(string_of_size Gen.(0 -- 400))
    bwt_agrees

let qcheck_bwt_fast_matches_reference_low_alphabet =
  QCheck.Test.make ~name:"fast bwt perm+work = reference (low alphabet)"
    ~count:200
    QCheck.(string_gen_of_size Gen.(0 -- 400) (Gen.oneofl [ 'a'; 'b'; 'c' ]))
    bwt_agrees

let test_bwt_periodic_inputs () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "agrees on %S" s) true (bwt_agrees s))
    [
      "";
      "a";
      "aa";
      "abab";
      "abcabcabc";
      String.make 257 'x';
      String.concat "" (List.init 64 (fun _ -> "na"));
    ]

(* ------------------------------------------------------------------ *)
(* LZ77 on large inputs. *)

let test_lz77_roundtrip_100k () =
  let prng = Prng.create ~seed:0xFA57 () in
  List.iter
    (fun (name, input, strategy) ->
      let tokens = Lz77.tokenize ~strategy input in
      Alcotest.check bytes_testable name input (Lz77.detokenize tokens))
    [
      ( "100k text greedy",
        Bytes.of_string (Lipsum.repetitive_file prng ~level:4 ~size:100_000),
        Lz77.Greedy );
      ( "100k text lazy",
        Bytes.of_string (Lipsum.repetitive_file prng ~level:4 ~size:100_000),
        Lz77.Lazy );
      ("100k random greedy", Prng.bytes prng 100_000, Lz77.Greedy);
      ("100k runs lazy", Bytes.make 100_000 'r', Lz77.Lazy);
    ]

let qcheck_lz77_roundtrip =
  QCheck.Test.make ~name:"lz77 fast tokenize roundtrips" ~count:100
    QCheck.(
      pair bool (string_gen_of_size Gen.(0 -- 2000) (Gen.oneofl [ 'a'; 'b'; 'z' ])))
    (fun (lazy_strategy, s) ->
      let strategy = if lazy_strategy then Lz77.Lazy else Lz77.Greedy in
      let b = Bytes.of_string s in
      Bytes.equal b (Lz77.detokenize (Lz77.tokenize ~strategy b)))

(* ------------------------------------------------------------------ *)
(* Parallel pipeline: jobs > 1 must be byte-identical to jobs = 1. *)

let test_pool_map_order () =
  let xs = Array.init 100 (fun i -> i) in
  let doubled = Pool.map_array ~jobs:4 (fun x -> 2 * x) xs in
  Alcotest.(check (array int)) "order preserved"
    (Array.map (fun x -> 2 * x) xs)
    doubled;
  Alcotest.(check (list int)) "list map"
    [ 2; 4; 6 ]
    (Pool.map_list ~jobs:3 (fun x -> 2 * x) [ 1; 2; 3 ])

let test_pool_exception_propagates () =
  Alcotest.check_raises "exception surfaces" (Failure "boom") (fun () ->
      ignore
        (Pool.map_array ~jobs:4
           (fun x -> if x = 13 then failwith "boom" else x)
           (Array.init 64 (fun i -> i))))

let test_bzip2_jobs_equal () =
  let prng = Prng.create ~seed:0x0B21 () in
  (* Several blocks, mixing repetitive (abandons mainSort) and random. *)
  let text = Bytes.of_string (Lipsum.repetitive_file prng ~level:5 ~size:35_000) in
  let random = Prng.bytes prng 25_000 in
  List.iter
    (fun (name, input) ->
      let seq, seq_info = Bzip2.compress_with_info input in
      let par, par_info = Bzip2.compress_with_info ~jobs:4 input in
      Alcotest.check bytes_testable (name ^ " bytes") seq par;
      Alcotest.(check bool) (name ^ " block infos") true (seq_info = par_info);
      Alcotest.check bytes_testable (name ^ " roundtrip") input
        (Bzip2.decompress par))
    [ ("repetitive", text); ("random", random) ]

let test_archive_jobs_equal () =
  let prng = Prng.create ~seed:0xA6C4 () in
  let entries =
    List.init 9 (fun i ->
        {
          Container.Archive.name = Printf.sprintf "member-%d" i;
          data =
            (if i mod 2 = 0 then Prng.bytes prng 4_000
             else Bytes.of_string (Lipsum.repetitive_file prng ~level:3 ~size:6_000));
        })
  in
  let seq = Container.Archive.pack entries in
  let par = Container.Archive.pack ~jobs:4 entries in
  Alcotest.check bytes_testable "archive bytes" seq par;
  Alcotest.(check bool) "unpack restores entries" true
    (List.for_all2
       (fun a b ->
         a.Container.Archive.name = b.Container.Archive.name
         && Bytes.equal a.Container.Archive.data b.Container.Archive.data)
       entries
       (Container.Archive.unpack par))

let suite =
  ( "fastpath",
    [
      QCheck_alcotest.to_alcotest qcheck_writer_matches_reference;
      QCheck_alcotest.to_alcotest qcheck_writer_append_matches_contiguous;
      QCheck_alcotest.to_alcotest qcheck_msb_reader_matches_reference;
      QCheck_alcotest.to_alcotest qcheck_lsb_reader_matches_reference;
      QCheck_alcotest.to_alcotest qcheck_bwt_fast_matches_reference;
      QCheck_alcotest.to_alcotest qcheck_bwt_fast_matches_reference_low_alphabet;
      Alcotest.test_case "bwt periodic inputs" `Quick test_bwt_periodic_inputs;
      Alcotest.test_case "lz77 100k roundtrips" `Quick test_lz77_roundtrip_100k;
      QCheck_alcotest.to_alcotest qcheck_lz77_roundtrip;
      Alcotest.test_case "pool map order" `Quick test_pool_map_order;
      Alcotest.test_case "pool exceptions" `Quick test_pool_exception_propagates;
      Alcotest.test_case "bzip2 jobs=4 = jobs=1" `Quick test_bzip2_jobs_equal;
      Alcotest.test_case "archive jobs=4 = jobs=1" `Quick test_archive_jobs_equal;
    ] )
