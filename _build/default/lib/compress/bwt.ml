(* Prefix doubling over cyclic rotations: after round k every rotation is
   ranked by its first 2^k characters; ranks are refined until all are
   distinct or the window covers the block.  The comparison count is
   returned because it is data-dependent — repetitive input needs more
   refinement rounds — and the fingerprinting attack observes exactly that
   run-time difference. *)
let sort_rotations_work block =
  let n = Bytes.length block in
  if n = 0 then ([||], 0)
  else begin
    let work = ref 0 in
    let rank = Array.init n (fun i -> Char.code (Bytes.get block i)) in
    let perm = Array.init n (fun i -> i) in
    let tmp = Array.make n 0 in
    let k = ref 1 in
    let distinct = ref false in
    while (not !distinct) && !k < n do
      let key i =
        incr work;
        (rank.(i), rank.((i + !k) mod n))
      in
      Array.sort (fun a b -> compare (key a) (key b)) perm;
      (* Re-rank: equal keys share a rank. *)
      tmp.(perm.(0)) <- 0;
      let all_distinct = ref true in
      for j = 1 to n - 1 do
        let prev = perm.(j - 1) and cur = perm.(j) in
        if key prev = key cur then begin
          tmp.(cur) <- tmp.(prev);
          all_distinct := false
        end
        else tmp.(cur) <- j
      done;
      Array.blit tmp 0 rank 0 n;
      distinct := !all_distinct;
      k := !k * 2
    done;
    (* Identical rotations (period divides n): order by start index for
       determinism. *)
    if not !distinct then
      Array.sort
        (fun a b ->
          incr work;
          match compare rank.(a) rank.(b) with 0 -> compare a b | c -> c)
        perm;
    (perm, !work)
  end

let sort_rotations block = fst (sort_rotations_work block)

let check_perm n perm =
  if Array.length perm <> n then invalid_arg "Bwt: permutation length";
  let seen = Array.make (max 1 n) false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n || seen.(i) then invalid_arg "Bwt: not a permutation";
      seen.(i) <- true)
    perm

let transform_with ~perm block =
  let n = Bytes.length block in
  check_perm n perm;
  if n = 0 then (Bytes.create 0, 0)
  else begin
    let last = Bytes.create n in
    let primary = ref (-1) in
    for k = 0 to n - 1 do
      let start = perm.(k) in
      if start = 0 then primary := k;
      Bytes.set last k (Bytes.get block ((start + n - 1) mod n))
    done;
    (last, !primary)
  end

let transform block = transform_with ~perm:(sort_rotations block) block

let inverse last primary =
  let n = Bytes.length last in
  if n = 0 then Bytes.create 0
  else begin
    if primary < 0 || primary >= n then invalid_arg "Bwt.inverse: index";
    (* LF mapping: T.(i) is the row whose rotation is the left-rotation of
       row i; walking T from the primary row spells the input backwards. *)
    let counts = Array.make 256 0 in
    Bytes.iter (fun c -> counts.(Char.code c) <- counts.(Char.code c) + 1) last;
    let base = Array.make 256 0 in
    let acc = ref 0 in
    for c = 0 to 255 do
      base.(c) <- !acc;
      acc := !acc + counts.(c)
    done;
    let t = Array.make n 0 in
    let seen = Array.make 256 0 in
    for i = 0 to n - 1 do
      let c = Char.code (Bytes.get last i) in
      t.(i) <- base.(c) + seen.(c);
      seen.(c) <- seen.(c) + 1
    done;
    let out = Bytes.create n in
    let idx = ref primary in
    for k = n - 1 downto 0 do
      Bytes.set out k (Bytes.get last !idx);
      idx := t.(!idx)
    done;
    out
  end
