(* Section VIII in action: the constant-access-pattern histogram removes
   the Bzip2 leak the SGX attack exploits — at a measurable cost.

     dune exec examples/mitigate.exe *)

open Zipchannel

let () =
  let ppf = Format.std_formatter in
  let prng = Util.Prng.create ~seed:0x3417 () in
  let secret_a = Util.Prng.bytes prng 500 in
  let secret_b = Util.Prng.bytes prng 500 in
  (* 1. Correctness: the mitigated histogram computes the same table. *)
  assert (Mitigation.Oblivious.histogram secret_a
          = Compress.Block_sort.histogram secret_a);
  Format.fprintf ppf "oblivious histogram equals the plain one: true@.";
  (* 2. The channel: line traces of two different inputs. *)
  let plain_leaks =
    not
      (Mitigation.Leak_check.constant_trace
         Mitigation.Leak_check.plain_histogram_line_trace
         ~inputs:[ secret_a; secret_b ])
  in
  let oblivious_constant =
    Mitigation.Leak_check.constant_trace
      Mitigation.Oblivious.histogram_line_trace
      ~inputs:[ secret_a; secret_b ]
  in
  Format.fprintf ppf
    "plain Listing-3 loop: trace depends on the data   -> %b@." plain_leaks;
  Format.fprintf ppf
    "oblivious sweep:      trace identical for any data -> %b@."
    oblivious_constant;
  (* 3. What the attacker gets: with every line touched every iteration,
     observations carry no information and recovery collapses. *)
  let blinded = Array.make 500 [] in
  let guess =
    Attack.Recovery.bzip2_recover_candidates
      ~ftab_base:Attack.Victim.ftab_base ~n:500 blinded
  in
  Format.fprintf ppf
    "attack against the mitigated victim recovers %.2f%% of bytes (chance %.2f%%)@."
    (100.0 *. Util.Stats.fraction_equal guess secret_a)
    (100.0 /. 256.0);
  (* 4. The bill. *)
  let time f =
    let t0 = Sys.time () in
    ignore (f ());
    Sys.time () -. t0
  in
  let plain_t = time (fun () -> Compress.Block_sort.histogram secret_a) in
  let obl_t = time (fun () -> Mitigation.Oblivious.histogram secret_a) in
  Format.fprintf ppf
    "cost: %.1f ms vs %.2f ms on 500 bytes (~%.0fx) — the paper's point that@."
    (1000.0 *. obl_t) (1000.0 *. plain_t)
    (obl_t /. Float.max 1e-9 plain_t);
  Format.fprintf ppf
    "disabling compression has remained the only deployed defense.@."
