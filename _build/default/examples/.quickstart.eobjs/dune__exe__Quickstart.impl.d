examples/quickstart.ml: Bytes Compress Format Taintchannel Zipchannel
