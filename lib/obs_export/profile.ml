module Obs = Zipchannel_obs.Obs

type span = {
  id : int;
  parent : int option;
  name : string;
  domain : int;
  depth : int;
  start_ns : int;
  end_ns : int;
  dur_ns : int;
  self_ns : int;
  attrs : (string * string) list;
}

(* In-flight span while replaying the event stream. *)
type open_span = {
  o_id : int;
  o_parent : int option;
  o_name : string;
  o_depth : int;
  o_attrs : (string * string) list;
  mutable o_start_ns : int;
  mutable o_child_ns : int;
}

let spans_of_events events =
  let stacks : (int, open_span list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack domain =
    match Hashtbl.find_opt stacks domain with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks domain s;
        s
  in
  let next_id = ref 0 in
  let spans = ref [] in
  List.iter
    (fun (ev : Obs.Trace.span_event) ->
      let st = stack ev.domain in
      match ev.phase with
      | `Begin ->
          incr next_id;
          let parent =
            match !st with [] -> None | top :: _ -> Some top.o_id
          in
          st :=
            {
              o_id = !next_id;
              o_parent = parent;
              o_name = ev.name;
              o_depth = ev.depth;
              o_attrs = ev.attrs;
              o_start_ns = ev.ts_ns;
              o_child_ns = 0;
            }
            :: !st
      | `End -> (
          match !st with
          | [] ->
              (* End without a begin: a trace truncated at the front.
                 Synthesise a root-level span from the end event alone. *)
              incr next_id;
              spans :=
                {
                  id = !next_id;
                  parent = None;
                  name = ev.name;
                  domain = ev.domain;
                  depth = ev.depth;
                  start_ns = ev.ts_ns - ev.dur_ns;
                  end_ns = ev.ts_ns;
                  dur_ns = ev.dur_ns;
                  self_ns = ev.dur_ns;
                  attrs = ev.attrs;
                }
                :: !spans
          | top :: rest ->
              st := rest;
              (match rest with
              | parent :: _ -> parent.o_child_ns <- parent.o_child_ns + ev.dur_ns
              | [] -> ());
              spans :=
                {
                  id = top.o_id;
                  parent = top.o_parent;
                  name = top.o_name;
                  domain = ev.domain;
                  depth = top.o_depth;
                  start_ns = top.o_start_ns;
                  end_ns = ev.ts_ns;
                  dur_ns = ev.dur_ns;
                  self_ns = max 0 (ev.dur_ns - top.o_child_ns);
                  attrs = top.o_attrs;
                }
                :: !spans))
    events;
  (* Spans still open at end-of-stream (truncated trace tail) are dropped:
     they have no duration to account. *)
  List.rev !spans

type agg = {
  a_name : string;
  count : int;
  total_ns : int;
  a_self_ns : int;
  p50_ns : int;
  p95_ns : int;
  max_ns : int;
}

let exact_quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0
  else
    let i = int_of_float (ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) i))

let aggregate spans =
  let by_name : (string, int list ref * int ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match Hashtbl.find_opt by_name s.name with
      | Some (durs, self) ->
          durs := s.dur_ns :: !durs;
          self := !self + s.self_ns
      | None -> Hashtbl.add by_name s.name (ref [ s.dur_ns ], ref s.self_ns))
    spans;
  let rows =
    Hashtbl.fold
      (fun name (durs, self) acc ->
        let sorted = Array.of_list !durs in
        Array.sort compare sorted;
        {
          a_name = name;
          count = Array.length sorted;
          total_ns = Array.fold_left ( + ) 0 sorted;
          a_self_ns = !self;
          p50_ns = exact_quantile sorted 0.5;
          p95_ns = exact_quantile sorted 0.95;
          max_ns = sorted.(Array.length sorted - 1);
        }
        :: acc)
      by_name []
  in
  List.sort
    (fun a b ->
      match compare b.a_self_ns a.a_self_ns with
      | 0 -> String.compare a.a_name b.a_name
      | c -> c)
    rows

let folded_stacks spans =
  (* One frame path per span, rooted at its domain; weight = self time.
     Paths are rebuilt by chasing parent links through an id index. *)
  let by_id = Hashtbl.create (List.length spans) in
  List.iter (fun s -> Hashtbl.replace by_id s.id s) spans;
  let weights : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun s ->
      let rec path acc s =
        let acc = s.name :: acc in
        match s.parent with
        | Some p -> (
            match Hashtbl.find_opt by_id p with
            | Some parent -> path acc parent
            | None -> acc)
        | None -> acc
      in
      let key =
        String.concat ";" (Printf.sprintf "domain-%d" s.domain :: path [] s)
      in
      (match Hashtbl.find_opt weights key with
      | Some w -> Hashtbl.replace weights key (w + s.self_ns)
      | None ->
          Hashtbl.add weights key s.self_ns;
          order := key :: !order))
    spans;
  List.rev_map (fun key -> (key, Hashtbl.find weights key)) !order
  |> List.rev

let pp_folded ppf stacks =
  List.iter (fun (path, w) -> Format.fprintf ppf "%s %d@." path w) stacks

let ms ns = float_of_int ns /. 1e6

let pp_table ppf rows =
  Format.fprintf ppf "%-36s %8s %12s %12s %10s %10s %10s@." "span" "count"
    "total_ms" "self_ms" "p50_ms" "p95_ms" "max_ms";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-36s %8d %12.3f %12.3f %10.3f %10.3f %10.3f@."
        r.a_name r.count (ms r.total_ns) (ms r.a_self_ns) (ms r.p50_ns)
        (ms r.p95_ns) (ms r.max_ns))
    rows
