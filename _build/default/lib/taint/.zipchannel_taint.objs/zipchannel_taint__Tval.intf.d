lib/taint/tval.mli: Format Tagset
