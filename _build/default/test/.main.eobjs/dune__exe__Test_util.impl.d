test/test_util.ml: Alcotest Array Bytes Hashtbl Lipsum Prng QCheck QCheck_alcotest Stats String Zipchannel_util
