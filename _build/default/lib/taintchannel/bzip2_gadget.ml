open Zipchannel_taint

let ftab_base = 0x7ff944c40030

let block_base = 0x7ff944a00000

let quadrant_base = 0x7ff944b00000

let location = "/path/to/bzip2-1.0.6/libbz2.so.1.0.6!mainSort+186"

(* The tainted value of j (the rcx of Fig. 4) at loop iteration [k]
   (i = n-1-k): the current byte in bits 8-15, the following byte in bits
   0-7. *)
let index_tval input k =
  let n = Bytes.length input in
  if k < 0 || k >= n then invalid_arg "Bzip2_gadget.index_tval";
  let i = n - 1 - k in
  let byte_tval idx = Tval.input_byte ~tag:(idx + 1) (Char.code (Bytes.get input idx)) in
  let hi = Tval.shift_left (Tval.zero_extend ~width:16 (byte_tval i)) 8 in
  let lo = Tval.zero_extend ~width:16 (byte_tval ((i + 1) mod n)) in
  Tval.logor hi lo

let run ?(ftab_base = ftab_base) input =
  let e = Engine.create ~name:"bzip2" input in
  Engine.stage_input e ~base:block_base;
  let n = Bytes.length input in
  if n > 0 then begin
    let base = Tval.const ~width:48 ftab_base in
    let load_block i =
      Engine.load e ~location:"libbz2!mainSort+170" ~mnemonic:"movzwl (block,i)"
        ~addr:(Tval.const ~width:48 (block_base + i))
        ~size:1 ()
    in
    (* j = block[0] << 8 *)
    let j = ref (Tval.shift_left (Tval.zero_extend ~width:16 (load_block 0)) 8) in
    Engine.log_op e ~location:"libbz2!mainSort+160" ~mnemonic:"shl $8, %rcx"
      ~operands:[ ("rcx", !j) ];
    for i = n - 1 downto 0 do
      (* quadrant[i] = 0: the write that, on a protected page, yields the
         S0 fault of the single-stepping state machine. *)
      Engine.store e ~location:"libbz2!mainSort+178" ~mnemonic:"mov $0 -> (quadrant,i,2)"
        ~addr:(Tval.const ~width:48 (quadrant_base + (2 * i)))
        ~size:2
        ~value:(Tval.const ~width:16 0)
        ();
      (* j = (j >> 8) | (block[i] << 8) *)
      let b = load_block i in
      let high = Tval.shift_left (Tval.zero_extend ~width:16 b) 8 in
      j := Tval.logor (Tval.shift_right_logical !j 8) high;
      Engine.log_op e ~location:"libbz2!mainSort+182" ~mnemonic:"shr $8, %rcx; or %rdx, %rcx"
        ~operands:[ ("rcx", !j) ];
      (* ftab[j]++: read-modify-write of a 4-byte counter at a
         taint-dependent address. *)
      let rcx = Tval.zero_extend ~width:48 !j in
      let addr = Tval.add base (Tval.shift_left rcx 2) in
      let old =
        Engine.load e ~location ~mnemonic:"add $0x00000001 (%rsi,%rcx,4)"
          ~index:("rcx", !j) ~addr ~size:4 ()
      in
      Engine.store e ~location ~mnemonic:"add $0x00000001 (%rsi,%rcx,4)"
        ~index:("rcx", !j) ~addr ~size:4
        ~value:(Tval.add old (Tval.const ~width:32 1))
        ()
    done
  end;
  e
