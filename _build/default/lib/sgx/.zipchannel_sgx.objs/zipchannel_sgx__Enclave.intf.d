lib/sgx/enclave.mli: Page_table Zipchannel_cache Zipchannel_trace
