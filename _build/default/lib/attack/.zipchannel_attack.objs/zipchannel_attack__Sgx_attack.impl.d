lib/attack/sgx_attack.ml: Array Attack_config Bytes List Noise Page_channel Prng Recovery Stats Victim Zipchannel_cache Zipchannel_sgx Zipchannel_trace Zipchannel_util
