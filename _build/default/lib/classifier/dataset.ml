type t = { x : float array array; y : int array }

let make samples =
  let x = Array.of_list (List.map fst samples) in
  let y = Array.of_list (List.map snd samples) in
  { x; y }

let shuffle prng t =
  let order = Array.init (Array.length t.x) (fun i -> i) in
  Zipchannel_util.Prng.shuffle prng order;
  {
    x = Array.map (fun i -> t.x.(i)) order;
    y = Array.map (fun i -> t.y.(i)) order;
  }

let split t ~train_fraction =
  if train_fraction < 0.0 || train_fraction > 1.0 then
    invalid_arg "Dataset.split: fraction";
  let n = Array.length t.x in
  let k = int_of_float (train_fraction *. float_of_int n) in
  ( { x = Array.sub t.x 0 k; y = Array.sub t.y 0 k },
    { x = Array.sub t.x k (n - k); y = Array.sub t.y k (n - k) } )

let features_of_bools rows =
  Array.concat
    (Array.to_list
       (Array.map (Array.map (fun b -> if b then 1.0 else 0.0)) rows))

let downsample ~bins trace =
  if bins <= 0 then invalid_arg "Dataset.downsample: bins";
  let n = Array.length trace in
  Array.init bins (fun b ->
      let lo = b * n / bins and hi = (b + 1) * n / bins in
      if hi <= lo then 0.0
      else begin
        let hits = ref 0 in
        for i = lo to hi - 1 do
          if trace.(i) then incr hits
        done;
        float_of_int !hits /. float_of_int (hi - lo)
      end)
