lib/attack/attack_config.mli: Noise Zipchannel_cache
