open Zipchannel_util
module Taint = Zipchannel_taint
module Compress = Zipchannel_compress
module Tc = Zipchannel_taintchannel
module Attack = Zipchannel_attack
module Classifier = Zipchannel_classifier

type outcome = {
  id : string;
  title : string;
  metrics : (string * float) list;
}

let default_seed = 0x21bc

module Obs = Zipchannel_obs.Obs

(* Metrics snapshot taken at the last [header], so [footer] can attach
   the experiment's own metric growth to its report.  Only read/written
   when Obs is enabled; with Obs off the report stays byte-identical to
   the pre-Obs output. *)
let before_snapshot = ref None

let header ppf id title =
  if Obs.enabled () then before_snapshot := Some (Obs.Metrics.snapshot ());
  Format.fprintf ppf "@.=== %s: %s ===@." id title

let footer ppf outcome =
  List.iter
    (fun (k, v) -> Format.fprintf ppf "  %-32s %.4f@." k v)
    outcome.metrics;
  (if Obs.enabled () then
     match !before_snapshot with
     | Some before ->
         before_snapshot := None;
         let after = Obs.Metrics.snapshot () in
         let d = Obs.Metrics.delta ~before ~after in
         if not (Obs.Metrics.is_empty d) then begin
           Format.fprintf ppf "  -- metrics (this experiment) --@.";
           Obs.Metrics.pp_snapshot ppf d
         end;
         (match Zipchannel_obs_export.Leak.derive d with
         | [] -> ()
         | scores ->
             Format.fprintf ppf "  -- leak scoreboard --@.";
             List.iter
               (fun (k, v) -> Format.fprintf ppf "  %-42s %.4f@." k v)
               scores)
     | None -> ());
  outcome

(* ------------------------------------------------------------------ *)

(* Gadget runs go through the parallel survey so every experiment
   accepts [?jobs] uniformly; a single case is just a sequential run. *)
let survey_engine ~jobs case =
  match Tc.Survey.run ~jobs [ case ] with
  | [ (_, engine) ] -> engine
  | _ -> assert false

let e1_zlib_gadget ?(seed = default_seed) ?(jobs = 1) ppf =
  let title = "Zlib INSERT_STRING gadget (Fig. 2)" in
  header ppf "E1" title;
  let prng = Prng.create ~seed () in
  let input = Prng.bytes prng 6000 in
  let engine = survey_engine ~jobs (Tc.Survey.case Tc.Survey.Zlib input) in
  Tc.Engine.report ppf engine;
  let gadget =
    List.find
      (fun g -> g.Tc.Gadget.location = Tc.Zlib_gadget.location)
      (Tc.Engine.gadgets engine)
  in
  let coverage =
    Tc.Gadget.coverage gadget ~input_length:(Bytes.length input)
  in
  footer ppf
    {
      id = "E1";
      title;
      metrics =
        [
          ("input coverage (paper: all bytes)", coverage);
          ("gadget occurrences", float_of_int gadget.Tc.Gadget.count);
        ];
    }

let e2_lzw_gadget ?(seed = default_seed) ?(jobs = 1) ppf =
  let title = "Ncompress hash-probe gadget (Fig. 3)" in
  header ppf "E2" title;
  let prng = Prng.create ~seed () in
  (* Text-like input, as in the paper's 0x20-heavy example. *)
  let input = Bytes.of_string (Lipsum.paragraph prng) in
  let engine = survey_engine ~jobs (Tc.Survey.case Tc.Survey.Lzw input) in
  Tc.Engine.report ppf engine;
  let gadget =
    List.find
      (fun g -> g.Tc.Gadget.location = Tc.Lzw_gadget.location)
      (Tc.Engine.gadgets engine)
  in
  (* The paper's Fig. 3 shows bits 9-16 of the probed index tainted by the
     pending input byte. *)
  let example = gadget.Tc.Gadget.example_addr in
  let tainted_in_9_16 =
    List.for_all
      (fun bit -> not (Taint.Tagset.is_empty (Taint.Tval.taint example bit)))
      [ 9; 10; 11; 12; 13; 14; 15; 16 ]
  in
  footer ppf
    {
      id = "E2";
      title;
      metrics =
        [
          ( "coverage (paper: all bytes)",
            Tc.Gadget.coverage gadget ~input_length:(Bytes.length input) );
          ("bits 9-16 tainted (1 = yes)", if tainted_in_9_16 then 1.0 else 0.0);
        ];
    }

let e3_bzip2_gadget ?(seed = default_seed) ?(jobs = 1) ppf =
  let title = "Bzip2 ftab gadget (Fig. 4)" in
  header ppf "E3" title;
  let prng = Prng.create ~seed () in
  let input = Prng.bytes prng 10_000 in
  let engine = survey_engine ~jobs (Tc.Survey.case Tc.Survey.Bzip2 input) in
  Tc.Engine.report ppf engine;
  (* Two consecutive entries for one input byte, as in Fig. 4: at
     iteration k the byte sits in bits 0-7 of rcx, at k+1 in bits 8-15. *)
  let k = 1688 in
  Format.fprintf ppf "consecutive index entries for input byte %d:@." (Bytes.length input - k);
  Format.fprintf ppf "%s@."
    (Taint.Render.operand_line ~name:"rcx" (Tc.Bzip2_gadget.index_tval input k));
  Format.fprintf ppf "%s@."
    (Taint.Render.operand_line ~name:"rcx" (Tc.Bzip2_gadget.index_tval input (k + 1)));
  let gadget =
    List.find
      (fun g -> g.Tc.Gadget.location = Tc.Bzip2_gadget.location)
      (Tc.Engine.gadgets engine)
  in
  footer ppf
    {
      id = "E3";
      title;
      metrics =
        [
          ( "coverage (paper: all bytes)",
            Tc.Gadget.coverage gadget ~input_length:(Bytes.length input) );
        ];
    }

let e4_survey ?(seed = default_seed) ?(jobs = 1) ppf =
  let title = "survey of compression gadgets (Section IV)" in
  header ppf "E4" title;
  let prng = Prng.create ~seed () in
  let input = Prng.bytes prng 3000 in
  let summarize name engine =
    let gadgets = Tc.Engine.gadgets engine in
    let best =
      List.fold_left
        (fun acc g ->
          let c = Tc.Gadget.coverage g ~input_length:(Bytes.length input) in
          Float.max acc c)
        0.0 gadgets
    in
    Format.fprintf ppf "  %-12s gadgets: %2d   best input coverage: %5.1f%%@."
      name (List.length gadgets) (100.0 *. best);
    (name, best)
  in
  (* The five analyses run on independent engines over [jobs] domains;
     results come back in case order, so the printed rows (and all
     metrics) are byte-identical for any [jobs]. *)
  let results =
    Tc.Survey.run ~jobs
      [
        Tc.Survey.case ~label:"LZ77/Zlib" Tc.Survey.Zlib input;
        Tc.Survey.case ~label:"LZ78/LZW" Tc.Survey.Lzw input;
        Tc.Survey.case ~label:"BWT/Bzip2" Tc.Survey.Bzip2 input;
        Tc.Survey.case ~label:"LZ4" Tc.Survey.Lz4 input;
        Tc.Survey.case ~label:"Snappy" Tc.Survey.Snappy input;
      ]
  in
  let rows =
    List.map (fun (c, e) -> summarize c.Tc.Survey.label e) results
  in
  footer ppf
    {
      id = "E4";
      title;
      metrics = List.map (fun (n, c) -> ("coverage " ^ n, c)) rows;
    }

let e5_zlib_recovery ?(seed = default_seed) ?(jobs = 1) ppf =
  let title = "Zlib recovery (Section IV-B)" in
  header ppf "E5" title;
  let prng = Prng.create ~seed () in
  let head_base = Tc.Zlib_gadget.head_base in
  (* Both inputs are drawn up front, so the PRNG sequence is fixed before
     any analysis; the observation passes below never touch [prng] and
     can therefore run on separate domains without changing a byte. *)
  let random = Prng.bytes prng 4000 in
  let text = Bytes.of_string (Prng.lowercase_string prng 4000) in
  let observe input =
    Array.map
      (fun h -> Attack.Recovery.zlib_observe ~head_base ~ins_h:h)
      (Compress.Lz77.hash_head_trace input)
  in
  let observations =
    Zipchannel_parallel.Pool.map_array ~jobs observe [| random; text |]
  in
  (* Direct 2-bit leak on random data. *)
  let bits = Attack.Recovery.zlib_direct_bits ~head_base observations.(0) in
  let correct = ref 0 in
  Array.iteri
    (fun k v ->
      let truth = (Char.code (Bytes.get random (k + 1)) lsr 3) land 0x3 in
      if truth = v then incr correct)
    bits;
  let direct_acc = float_of_int !correct /. float_of_int (Array.length bits) in
  Format.fprintf ppf
    "  direct leak: bits 3-4 of each byte (2/8 = 25%% of the data), %d/%d windows correct@."
    !correct (Array.length bits);
  (* Full recovery of lowercase text. *)
  let recovered =
    Attack.Recovery.zlib_recover_lowercase ~head_base ~n:(Bytes.length text)
      observations.(1)
  in
  let byte_acc = Stats.fraction_equal recovered text in
  Format.fprintf ppf
    "  lowercase text: %.2f%% of bytes recovered exactly (all but the final byte)@."
    (100.0 *. byte_acc);
  footer ppf
    {
      id = "E5";
      title;
      metrics =
        [
          ("direct 2-bit accuracy", direct_acc);
          ("lowercase byte accuracy", byte_acc);
        ];
    }

let e6_lzw_recovery ?(seed = default_seed) ?(jobs = 1) ppf =
  let title = "LZW recovery (Section IV-C)" in
  header ppf "E6" title;
  let prng = Prng.create ~seed () in
  let htab_base = Tc.Lzw_gadget.htab_base in
  let input = Bytes.of_string (Lipsum.repetitive_file prng ~level:4 ~size:4000) in
  let _, probes = Compress.Lzw.compress_with_probes input in
  let observed =
    Array.of_list
      (List.filter_map
         (fun p ->
           if p.Compress.Lzw.first then
             Some (Attack.Recovery.lzw_observe ~htab_base ~hp:p.Compress.Lzw.hp)
           else None)
         probes)
  in
  let candidates = Attack.Recovery.lzw_candidate_firsts ~htab_base observed in
  Format.fprintf ppf "  first-byte candidates (2^3 = 8): %s@."
    (String.concat " " (List.map (Printf.sprintf "0x%02x") candidates));
  let recovered = Attack.Recovery.lzw_recover_auto ~jobs ~htab_base observed in
  let byte_acc = Stats.fraction_equal recovered input in
  Format.fprintf ppf "  recovered %.2f%% of bytes (paper: full recovery)@."
    (100.0 *. byte_acc);
  footer ppf
    { id = "E6"; title; metrics = [ ("byte accuracy", byte_acc) ] }

let e7_sgx_attack ?(seed = default_seed) ?(size = 10_000) ppf =
  let title = "SGX end-to-end attack (Section V-E)" in
  header ppf "E7" title;
  let prng = Prng.create ~seed () in
  let input = Prng.bytes prng size in
  let t0 = Sys.time () in
  let r = Attack.Sgx_attack.run input in
  let elapsed = Sys.time () -. t0 in
  Format.fprintf ppf
    "  leaked %d bytes of random data: %.2f%% of bits (paper: >99%%), %.2f%% of bytes@."
    size
    (100.0 *. r.Attack.Sgx_attack.bit_accuracy)
    (100.0 *. r.byte_accuracy);
  Format.fprintf ppf
    "  %d page faults, %d frame remaps, %d lost readings, %.1f s (paper: <30 s)@."
    r.faults r.frame_remaps r.lost_readings elapsed;
  footer ppf
    {
      id = "E7";
      title;
      metrics =
        [
          ("bit accuracy (paper >0.99)", r.Attack.Sgx_attack.bit_accuracy);
          ("byte accuracy", r.byte_accuracy);
          ("seconds (paper <30)", elapsed);
        ];
    }

let e8_sgx_ablations ?(seed = default_seed) ?(size = 2000) ppf =
  let title = "SGX attack ablations: CAT and frame selection (Section V)" in
  header ppf "E8" title;
  let prng = Prng.create ~seed () in
  let input = Prng.bytes prng size in
  let d = Attack.Sgx_attack.default_config in
  let random_cache =
    {
      d.Attack.Sgx_attack.cache_config with
      Zipchannel_cache.Cache.policy = Zipchannel_cache.Cache.Random_replacement;
    }
  in
  let variants =
    [
      ("CAT + frame selection", d);
      ( "no frame selection",
        { d with Attack.Sgx_attack.use_frame_selection = false } );
      ("no CAT", { d with Attack.Sgx_attack.use_cat = false });
      ( "neither",
        { d with Attack.Sgx_attack.use_cat = false; use_frame_selection = false }
      );
      (* The Section V-C1 point: random replacement hurts a multi-way
         Prime+Probe but is irrelevant once CAT pins a single way. *)
      ( "no CAT, random repl.",
        { d with Attack.Sgx_attack.use_cat = false; cache_config = random_cache }
      );
      ( "CAT, random repl.",
        { d with Attack.Sgx_attack.cache_config = random_cache } );
    ]
  in
  let metrics =
    List.map
      (fun (name, config) ->
        let r = Attack.Sgx_attack.run ~config input in
        Format.fprintf ppf "  %-24s bit accuracy %6.2f%%  lost readings %4d@."
          name
          (100.0 *. r.Attack.Sgx_attack.bit_accuracy)
          r.lost_readings;
        ("bit accuracy, " ^ name, r.Attack.Sgx_attack.bit_accuracy))
      variants
  in
  footer ppf { id = "E8"; title; metrics }

let e9_sort_control_flow ?(seed = default_seed) ppf =
  let title = "sorting control flow per block (Fig. 6)" in
  header ppf "E9" title;
  let prng = Prng.create ~seed () in
  let files =
    [
      ("random 25k", Prng.bytes prng 25_000);
      ("lipsum level 5", Bytes.of_string (Lipsum.repetitive_file prng ~level:5 ~size:25_000));
      ("lipsum level 1", Bytes.of_string (Lipsum.repetitive_file prng ~level:1 ~size:25_000));
      ("zeros 25k", Bytes.make 25_000 '\000');
    ]
  in
  let describe path =
    let open Compress.Block_sort in
    match path.segments with
    | [ { func = Main_sort; _ } ] -> "mainSort"
    | [ { func = Fallback_sort; _ } ] -> "fallbackSort (short block)"
    | [ { func = Main_sort; _ }; { func = Fallback_sort; _ } ] ->
        "mainSort abandoned -> fallbackSort"
    | _ -> "other"
  in
  let abandoned = ref 0 and blocks = ref 0 in
  List.iter
    (fun (name, data) ->
      let _, infos = Compress.Bzip2.compress_with_info data in
      Format.fprintf ppf "  %s:@." name;
      List.iter
        (fun info ->
          incr blocks;
          if info.Compress.Bzip2.path.Compress.Block_sort.abandoned then
            incr abandoned;
          Format.fprintf ppf "    block %d (%5d bytes): %s@."
            info.Compress.Bzip2.index info.length (describe info.path))
        infos)
    files;
  footer ppf
    {
      id = "E9";
      title;
      metrics =
        [
          ("blocks", float_of_int !blocks);
          ("abandoned mainSort", float_of_int !abandoned);
        ];
    }

let fingerprint_experiment ~id ~title ~seed ~traces_per_file ~epochs ~corpus
    ?(jobs = 1) ppf =
  header ppf id title;
  let prng = Prng.create ~seed () in
  let files = corpus prng in
  let labels = Array.of_list (List.map fst files) in
  (* The victim timelines (one full bzip2 compression per corpus file) are
     deterministic and independent, so they can run on [jobs] domains.
     The noisy trace sampling below draws from the shared experiment PRNG
     and stays sequential, keeping every metric identical to [jobs = 1]. *)
  let timelines =
    Zipchannel_parallel.Pool.map_list ~jobs
      (fun (_, data) -> Attack.Fingerprint.timeline data)
      files
  in
  let samples =
    List.concat
      (List.map2
         (fun cls segs ->
           List.init traces_per_file (fun _ ->
               ( Attack.Fingerprint.features
                   (Attack.Fingerprint.collect_segments ~prng segs),
                 cls )))
         (List.mapi (fun cls _ -> cls) files)
         timelines)
  in
  let ds = Classifier.Dataset.shuffle prng (Classifier.Dataset.make samples) in
  let train, test = Classifier.Dataset.split ds ~train_fraction:0.9 in
  let dim = Array.length train.Classifier.Dataset.x.(0) in
  let mlp = Classifier.Mlp.create ~layers:[ dim; 48; Array.length labels ] () in
  Classifier.Mlp.train ~epochs mlp ~x:train.Classifier.Dataset.x
    ~y:train.Classifier.Dataset.y;
  let conf = Stats.Confusion.create ~labels in
  Array.iteri
    (fun i x ->
      Stats.Confusion.add conf ~truth:test.Classifier.Dataset.y.(i)
        ~predicted:(Classifier.Mlp.predict mlp x))
    test.Classifier.Dataset.x;
  Format.fprintf ppf "%a@." Stats.Confusion.pp conf;
  let acc = Stats.Confusion.accuracy conf in
  Format.fprintf ppf "  test accuracy %.2f (chance %.3f)@." acc
    (1.0 /. float_of_int (Array.length labels));
  footer ppf
    {
      id;
      title;
      metrics =
        [
          ("test accuracy", acc);
          ("chance", 1.0 /. float_of_int (Array.length labels));
        ];
    }

let e10_fingerprint_corpus ?(seed = default_seed) ?(traces_per_file = 25)
    ?jobs ppf =
  fingerprint_experiment ~id:"E10"
    ~title:"fingerprinting the 21-file corpus (Fig. 7)" ~seed ~traces_per_file
    ~epochs:80 ~corpus:Attack.Corpus.brotli_like ?jobs ppf

let e11_fingerprint_repetitiveness ?(seed = default_seed)
    ?(traces_per_file = 40) ?jobs ppf =
  fingerprint_experiment ~id:"E11"
    ~title:"fingerprinting graded repetitiveness (Fig. 8)" ~seed
    ~traces_per_file ~epochs:80 ~corpus:Attack.Corpus.repetitiveness ?jobs ppf

let e12_aes_validation ?(seed = default_seed) ppf =
  let title = "tool validation on AES T-tables (Section III-B)" in
  header ppf "E12" title;
  (* FIPS-197 vector: proves the substrate is real AES. *)
  let of_hex s =
    Bytes.init
      (String.length s / 2)
      (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))
  in
  let key = of_hex "000102030405060708090a0b0c0d0e0f" in
  let pt = of_hex "00112233445566778899aabbccddeeff" in
  let expect = of_hex "69c4e0d86a7b0430d8cdb78070b4c55a" in
  let ct = Tc.Aes.encrypt_block ~key pt in
  let fips_ok = Bytes.equal ct expect in
  Format.fprintf ppf "  FIPS-197 test vector: %s@."
    (if fips_ok then "PASS" else "FAIL");
  let prng = Prng.create ~seed () in
  let plaintext = Prng.bytes prng 64 in
  let engine = Tc.Aes.run_taint ~key plaintext in
  Tc.Engine.report ppf engine;
  let found =
    List.exists
      (fun g -> g.Tc.Gadget.location = Tc.Aes.location)
      (Tc.Engine.gadgets engine)
  in
  Format.fprintf ppf
    "  first-round T-table gadget (Osvik et al.): %s@."
    (if found then "FOUND" else "missing");
  footer ppf
    {
      id = "E12";
      title;
      metrics =
        [
          ("fips vector ok", if fips_ok then 1.0 else 0.0);
          ("gadget found", if found then 1.0 else 0.0);
        ];
    }

let e13_memcpy_divergence ppf =
  let title = "memcpy control-flow divergence (Section III-B)" in
  header ppf "E13" title;
  let t1024 = Tc.Memcpy_model.trace ~size:1024 in
  let t1025 = Tc.Memcpy_model.trace ~size:1025 in
  let t1024' = Tc.Memcpy_model.trace ~size:1024 in
  let same = not (Tc.Trace_diff.diverges t1024 t1024') in
  let report =
    match Tc.Trace_diff.compare_traces t1024 t1025 with
    | Some r ->
        Format.fprintf ppf "  1024 vs 1025 bytes: %a@." Tc.Trace_diff.pp_report r;
        true
    | None ->
        Format.fprintf ppf "  1024 vs 1025 bytes: no divergence (unexpected)@.";
        false
  in
  Format.fprintf ppf "  1024 vs 1024 bytes: %s@."
    (if same then "identical traces" else "diverged (unexpected)");
  footer ppf
    {
      id = "E13";
      title;
      metrics =
        [
          ("size divergence detected", if report then 1.0 else 0.0);
          ("same size identical", if same then 1.0 else 0.0);
        ];
    }

let e14_mitigation ?(seed = default_seed) ppf =
  let title = "constant-trace mitigation (Section VIII)" in
  header ppf "E14" title;
  let module Mit = Zipchannel_mitigation in
  let prng = Prng.create ~seed () in
  let a = Prng.bytes prng 400 and b = Prng.bytes prng 400 in
  let correct = Mit.Oblivious.histogram a = Compress.Block_sort.histogram a in
  Format.fprintf ppf "  oblivious histogram matches the plain one: %b@." correct;
  let plain_leaks =
    not
      (Mit.Leak_check.constant_trace Mit.Leak_check.plain_histogram_line_trace
         ~inputs:[ a; b ])
  in
  let oblivious_constant =
    Mit.Leak_check.constant_trace Mit.Oblivious.histogram_line_trace
      ~inputs:[ a; b ]
  in
  Format.fprintf ppf
    "  plain loop trace input-dependent: %b; oblivious trace constant: %b@."
    plain_leaks oblivious_constant;
  (* Against a constant trace the attacker sees every line every iteration:
     no observation carries information and recovery collapses to chance. *)
  let blinded = Array.make 400 [] in
  let recovered =
    Attack.Recovery.bzip2_recover_candidates
      ~ftab_base:Attack.Victim.ftab_base ~n:400 blinded
  in
  let chance_accuracy = Stats.fraction_equal recovered a in
  Format.fprintf ppf "  recovery against the mitigated victim: %.2f%% of bytes (chance %.2f%%)@."
    (100.0 *. chance_accuracy) (100.0 /. 256.0);
  (* Overhead: oblivious sweeps every table line per input byte. *)
  let time f =
    let t0 = Sys.time () in
    ignore (f ());
    Sys.time () -. t0
  in
  let plain_t = time (fun () -> Compress.Block_sort.histogram a) in
  let oblivious_t = time (fun () -> Mit.Oblivious.histogram a) in
  let overhead = if plain_t > 0.0 then oblivious_t /. plain_t else infinity in
  Format.fprintf ppf "  overhead: %.0fx (%.4fs vs %.4fs on 400 bytes)@."
    overhead oblivious_t plain_t;
  footer ppf
    {
      id = "E14";
      title;
      metrics =
        [
          ("oblivious correct", if correct then 1.0 else 0.0);
          ("plain trace leaks", if plain_leaks then 1.0 else 0.0);
          ("oblivious trace constant", if oblivious_constant then 1.0 else 0.0);
          ("recovery vs mitigated (chance)", chance_accuracy);
        ];
    }

let e15_timer_stepping ?(seed = default_seed) ?(size = 400) ppf =
  let title = "timer-interrupt stepping baseline (Section V-A)" in
  header ppf "E15" title;
  let prng = Prng.create ~seed () in
  let input = Prng.bytes prng size in
  let ctrl = Attack.Sgx_attack.run input in
  Format.fprintf ppf "  mprotect controlled channel: %6.2f%% of bits@."
    (100.0 *. ctrl.Attack.Sgx_attack.bit_accuracy);
  let jitters = [ 0.0; 0.5; 1.0; 2.0 ] in
  let rows =
    List.map
      (fun jitter ->
        let config =
          { Attack.Timer_attack.default_config with
            Attack.Timer_attack.interval_jitter = jitter }
        in
        let r = Attack.Timer_attack.run ~config input in
        Format.fprintf ppf "  timer stepping, jitter %.1f:   %6.2f%% of bits@."
          jitter
          (100.0 *. r.Attack.Timer_attack.bit_accuracy);
        (Printf.sprintf "timer bits, jitter %.1f" jitter,
         r.Attack.Timer_attack.bit_accuracy))
      jitters
  in
  footer ppf
    {
      id = "E15";
      title;
      metrics =
        ("controlled channel bits", ctrl.Attack.Sgx_attack.bit_accuracy) :: rows;
    }

let e16_tool_comparison ?(seed = default_seed) ppf =
  let title = "TaintChannel vs trace-correlation tools (Sections III, VII)" in
  header ppf "E16" title;
  let prng = Prng.create ~seed () in
  let inputs = [ Prng.bytes prng 300; Prng.bytes prng 300; Prng.bytes prng 300 ] in
  let findings =
    Tc.Trace_correlate.analyze ~run:Tc.Bzip2_gadget.run ~inputs
  in
  Format.fprintf ppf "  trace-correlation baseline flags:@.";
  List.iter
    (fun f -> Format.fprintf ppf "    %a@." Tc.Trace_correlate.pp_finding f)
    findings;
  let baseline_found =
    List.exists
      (fun f -> f.Tc.Trace_correlate.location = Tc.Bzip2_gadget.location)
      findings
  in
  let engine = Tc.Bzip2_gadget.run (List.hd inputs) in
  let taint_found =
    List.exists
      (fun g -> g.Tc.Gadget.location = Tc.Bzip2_gadget.location)
      (Tc.Engine.gadgets engine)
  in
  Format.fprintf ppf
    "  both tools flag the gadget location; only TaintChannel yields the@.";
  Format.fprintf ppf
    "  per-bit input-to-address mapping (the Fig. 4 grid of E3), which the@.";
  Format.fprintf ppf "  recovery algorithms of E5-E7 require.@.";
  footer ppf
    {
      id = "E16";
      title;
      metrics =
        [
          ("baseline finds gadget", if baseline_found then 1.0 else 0.0);
          ("taintchannel finds gadget", if taint_found then 1.0 else 0.0);
          ("locations flagged by baseline", float_of_int (List.length findings));
        ];
    }

let e17_lzw_sgx_attack ?(seed = default_seed) ?(size = 4000) ppf =
  let title = "LZW extraction through the SGX channel (Section IV-C, end-to-end)" in
  header ppf "E17" title;
  let prng = Prng.create ~seed () in
  let text = Bytes.of_string (Lipsum.repetitive_file prng ~level:4 ~size) in
  let random = Prng.bytes prng size in
  let run name input =
    let r = Attack.Lzw_sgx_attack.run input in
    Format.fprintf ppf
      "  %-12s %6.2f%% of bytes, %6.2f%% of bits (%d lookups, %d lost readings)@."
      name
      (100.0 *. r.Attack.Lzw_sgx_attack.byte_accuracy)
      (100.0 *. r.bit_accuracy) r.lookups r.lost_readings;
    r
  in
  let rt = run "text" text in
  let rr = run "random" random in
  footer ppf
    {
      id = "E17";
      title;
      metrics =
        [
          ("text byte accuracy", rt.Attack.Lzw_sgx_attack.byte_accuracy);
          ("random byte accuracy", rr.Attack.Lzw_sgx_attack.byte_accuracy);
          ("random bit accuracy", rr.bit_accuracy);
        ];
    }

let e18_zlib_sgx_attack ?(seed = default_seed) ?(size = 4000) ppf =
  let title = "Zlib extraction through the SGX channel (Section IV-B, end-to-end)" in
  header ppf "E18" title;
  let prng = Prng.create ~seed () in
  let lowercase = Bytes.of_string (Prng.lowercase_string prng size) in
  let random = Prng.bytes prng size in
  let rl = Attack.Zlib_sgx_attack.run lowercase in
  Format.fprintf ppf
    "  lowercase text: %6.2f%% of bytes recovered (%d lost windows)@."
    (100.0 *. rl.Attack.Zlib_sgx_attack.byte_accuracy)
    rl.lost_readings;
  let rr = Attack.Zlib_sgx_attack.run random in
  Format.fprintf ppf
    "  random data:    %6.2f%% of the unconditional 2-bit-per-byte leak read correctly@."
    (100.0 *. rr.Attack.Zlib_sgx_attack.direct_bits_accuracy);
  footer ppf
    {
      id = "E18";
      title;
      metrics =
        [
          ("lowercase byte accuracy", rl.Attack.Zlib_sgx_attack.byte_accuracy);
          ("random direct-bit accuracy", rr.Attack.Zlib_sgx_attack.direct_bits_accuracy);
        ];
    }

let e19_memcomp_oracle ?(seed = default_seed) ?(jobs = 1) ppf =
  let title =
    "memory-compression ratio/timing oracle (Schwarzl et al., E7-style \
     page store)"
  in
  header ppf "E19" title;
  (* Same attack twice: first reading exact compressed page sizes (the
     ratio oracle), then only a noisy swap latency (the timing oracle).
     Both are deterministic in the seed and byte-identical at any
     [jobs]. *)
  let ratio = Attack.Memcomp.run ~seed ~oracle:Attack.Memcomp.Ratio ~jobs () in
  Format.fprintf ppf
    "  ratio oracle:   %2d/%2d bytes  (secret %s, recovered %s)@."
    ratio.Attack.Memcomp.per_byte_correct ratio.positions ratio.secret
    ratio.recovered;
  let timing =
    Attack.Memcomp.run ~seed ~oracle:Attack.Memcomp.Timing ~jobs ()
  in
  Format.fprintf ppf
    "  timing oracle:  %2d/%2d bytes  (chained prefix %.0f%%, %d page \
     compressions)@."
    timing.Attack.Memcomp.per_byte_correct timing.positions
    (100.0 *. timing.chained_rate)
    timing.probes;
  Format.fprintf ppf
    "  channel:        %.2f capacity bits, %.2f MI bits, classifier %.0f%%@."
    timing.capacity_bits timing.mi_bits
    (100.0 *. timing.classifier_accuracy);
  footer ppf
    {
      id = "E19";
      title;
      metrics =
        [
          ("ratio per-byte rate", ratio.Attack.Memcomp.per_byte_rate);
          ("timing per-byte rate", timing.Attack.Memcomp.per_byte_rate);
          ("timing chained rate", timing.chained_rate);
          ("capacity bits", timing.capacity_bits);
          ("classifier accuracy", timing.classifier_accuracy);
        ];
    }

let ids =
  [
    "E1"; "E2"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E9"; "E10"; "E11";
    "E12"; "E13"; "E14"; "E15"; "E16"; "E17"; "E18"; "E19";
  ]

(* One dispatch point for bench, both CLIs, and [all]: experiment id
   (case-insensitive) to the runner with its default sizes. *)
let dispatch ~seed ?jobs id =
  let jobs_or d = Option.value ~default:d jobs in
  match String.lowercase_ascii id with
  | "e1" -> Some (fun ppf -> e1_zlib_gadget ~seed ~jobs:(jobs_or 1) ppf)
  | "e2" -> Some (fun ppf -> e2_lzw_gadget ~seed ~jobs:(jobs_or 1) ppf)
  | "e3" -> Some (fun ppf -> e3_bzip2_gadget ~seed ~jobs:(jobs_or 1) ppf)
  | "e4" -> Some (fun ppf -> e4_survey ~seed ~jobs:(jobs_or 1) ppf)
  | "e5" -> Some (fun ppf -> e5_zlib_recovery ~seed ~jobs:(jobs_or 1) ppf)
  | "e6" -> Some (fun ppf -> e6_lzw_recovery ~seed ~jobs:(jobs_or 1) ppf)
  | "e7" -> Some (fun ppf -> e7_sgx_attack ~seed ppf)
  | "e8" -> Some (fun ppf -> e8_sgx_ablations ~seed ppf)
  | "e9" -> Some (fun ppf -> e9_sort_control_flow ~seed ppf)
  | "e10" -> Some (fun ppf -> e10_fingerprint_corpus ~seed ?jobs ppf)
  | "e11" -> Some (fun ppf -> e11_fingerprint_repetitiveness ~seed ?jobs ppf)
  | "e12" -> Some (fun ppf -> e12_aes_validation ~seed ppf)
  | "e13" -> Some (fun ppf -> e13_memcpy_divergence ppf)
  | "e14" -> Some (fun ppf -> e14_mitigation ~seed ppf)
  | "e15" -> Some (fun ppf -> e15_timer_stepping ~seed ppf)
  | "e16" -> Some (fun ppf -> e16_tool_comparison ~seed ppf)
  | "e17" -> Some (fun ppf -> e17_lzw_sgx_attack ~seed ppf)
  | "e18" -> Some (fun ppf -> e18_zlib_sgx_attack ~seed ppf)
  | "e19" -> Some (fun ppf -> e19_memcomp_oracle ~seed ~jobs:(jobs_or 1) ppf)
  | _ -> None

let run ?(seed = default_seed) ?jobs ~id ppf =
  match dispatch ~seed ?jobs id with
  | None -> None
  | Some f ->
      Some
        (Obs.with_span
           ("experiment." ^ String.lowercase_ascii id)
           (fun () -> f ppf))

let all ?(seed = default_seed) ?jobs ppf =
  let progress =
    Obs.Progress.create ~total:(List.length ids) ~interval_ns:0
      ~label:"experiments" ()
  in
  let outcomes =
    List.map
      (fun id ->
        let o =
          match run ~seed ?jobs ~id ppf with
          | Some o -> o
          | None -> assert false
        in
        Obs.Progress.step progress;
        o)
      ids
  in
  Obs.Progress.finish progress;
  outcomes
