lib/attack/noise.ml: Array List Prng Zipchannel_cache Zipchannel_util
