(* The fast taint plane, checked against its executable specifications:
   the word-packed Tagset against the Set.Make reference, the paged
   shadow memory against a Hashtbl model, and the parallel gadget survey
   against its sequential output. *)

open Zipchannel_taint
module Tc = Zipchannel_taintchannel
module Prng = Zipchannel_util.Prng

(* ------------------------------------------------------------------ *)
(* Packed Tagset ≡ Tagset_ref *)

(* Tags cluster around three regimes: the immediate-int range (< 63),
   the first few bitvector words, and far-out values that stress the
   offset encoding. *)
let tag_gen =
  QCheck.Gen.(
    frequency [ (4, 0 -- 62); (3, 0 -- 300); (1, 0 -- 5000) ])

let tags_arb =
  QCheck.make
    ~print:(fun l -> String.concat "," (List.map string_of_int l))
    QCheck.Gen.(list_size (0 -- 25) tag_gen)

let check_same_elements ctx packed reference =
  if Tagset.elements packed <> Tagset_ref.elements reference then
    QCheck.Test.fail_reportf "%s: elements diverge" ctx

let qcheck_tagset_equivalence =
  QCheck.Test.make ~name:"packed tagset = Set.Make reference" ~count:500
    (QCheck.pair tags_arb tags_arb)
    (fun (la, lb) ->
      let a = Tagset.of_list la and ra = Tagset_ref.of_list la in
      let b = Tagset.of_list lb and rb = Tagset_ref.of_list lb in
      check_same_elements "of_list a" a ra;
      check_same_elements "of_list b" b rb;
      check_same_elements "union" (Tagset.union a b) (Tagset_ref.union ra rb);
      List.iter
        (fun t -> check_same_elements "add" (Tagset.add t a) (Tagset_ref.add t ra))
        lb;
      if Tagset.cardinal a <> Tagset_ref.cardinal ra then
        QCheck.Test.fail_reportf "cardinal diverges";
      if Tagset.is_empty a <> Tagset_ref.is_empty ra then
        QCheck.Test.fail_reportf "is_empty diverges";
      if Tagset.equal a b <> Tagset_ref.equal ra rb then
        QCheck.Test.fail_reportf "equal diverges";
      List.iter
        (fun t ->
          if Tagset.mem t a <> Tagset_ref.mem t ra then
            QCheck.Test.fail_reportf "mem %d diverges" t)
        (la @ lb @ [ 0; 62; 63; 64; 125; 126; 4999 ]);
      (* fold must visit tags in the same (ascending) order. *)
      let trace fold_f set = List.rev (fold_f (fun t acc -> t :: acc) set []) in
      trace Tagset.fold a = trace Tagset_ref.fold ra)

let qcheck_tagset_union_associative =
  QCheck.Test.make ~name:"packed union associative/commutative" ~count:300
    (QCheck.triple tags_arb tags_arb tags_arb)
    (fun (la, lb, lc) ->
      let a = Tagset.of_list la
      and b = Tagset.of_list lb
      and c = Tagset.of_list lc in
      Tagset.equal (Tagset.union a b) (Tagset.union b a)
      && Tagset.equal
           (Tagset.union a (Tagset.union b c))
           (Tagset.union (Tagset.union a b) c))

(* ------------------------------------------------------------------ *)
(* Paged shadow memory ≡ Hashtbl model *)

let test_paged_memory_differential () =
  let prng = Prng.create ~seed:0x9A6E () in
  let input = Prng.bytes prng 96 in
  let engine = Tc.Engine.create ~name:"paged-diff" input in
  let model : (int, Tval.t) Hashtbl.t = Hashtbl.create 256 in
  (* Addresses span several 4 KiB pages, page boundaries, and a sparse
     far-away region, so first-touch allocation and page indexing both
     get exercised. *)
  let addr_pool =
    Array.init 160 (fun _ ->
        match Prng.int prng 4 with
        | 0 -> Prng.int prng 4096 (* first page *)
        | 1 -> 4090 + Prng.int prng 16 (* straddling the boundary *)
        | 2 -> Prng.int prng (1 lsl 16) (* a few pages *)
        | _ -> 0x7f0000000000 + Prng.int prng (1 lsl 14) (* mapped high *))
  in
  let loc = "test!paged" in
  for _step = 1 to 3000 do
    let addr = addr_pool.(Prng.int prng (Array.length addr_pool)) in
    if Prng.bool prng then begin
      (* Store a value whose taint is a real input-byte plane half the
         time, so taint round-trips through pages too. *)
      let value =
        if Prng.bool prng then
          Tc.Engine.input_byte engine (Prng.int prng (Bytes.length input))
        else Tval.const ~width:8 (Prng.int prng 256)
      in
      Tc.Engine.store engine ~location:loc ~mnemonic:"mov"
        ~addr:(Tval.const ~width:48 addr) ~size:1 ~value ();
      Hashtbl.replace model addr value
    end
    else begin
      let got =
        Tc.Engine.load engine ~location:loc ~mnemonic:"mov"
          ~addr:(Tval.const ~width:48 addr) ~size:1 ()
      in
      let expect =
        match Hashtbl.find_opt model addr with
        | Some v -> v
        | None -> Tval.const ~width:8 0
      in
      if not (Tval.equal got expect) then
        Alcotest.failf "load at 0x%x: got %a, model %a" addr Tval.pp got
          Tval.pp expect
    end
  done;
  (* Untainted addresses throughout: the differential run must not have
     manufactured gadgets. *)
  Alcotest.(check int) "no gadgets" 0 (List.length (Tc.Engine.gadgets engine))

let test_stage_input_roundtrip () =
  let prng = Prng.create ~seed:0x57A6 () in
  let input = Prng.bytes prng 300 in
  let engine = Tc.Engine.create ~name:"stage" input in
  let base = 0x5000 - 7 in
  (* Straddles a page boundary on purpose. *)
  Tc.Engine.stage_input engine ~base;
  for i = 0 to Bytes.length input - 1 do
    let got =
      Tc.Engine.load engine ~location:"test!stage" ~mnemonic:"movzx"
        ~addr:(Tval.const ~width:48 (base + i)) ~size:1 ()
    in
    if not (Tval.equal got (Tc.Engine.input_byte engine i)) then
      Alcotest.failf "staged byte %d diverges from input_byte" i
  done

(* ------------------------------------------------------------------ *)
(* Parallel survey determinism *)

let render_survey ~jobs =
  let input = Prng.bytes (Prng.create ~seed:0x5EED ()) 900 in
  let buf = Buffer.create 8192 in
  let ppf = Format.formatter_of_buffer buf in
  Tc.Survey.report ~jobs ppf
    [
      Tc.Survey.case Tc.Survey.Zlib input;
      Tc.Survey.case Tc.Survey.Lzw input;
      Tc.Survey.case Tc.Survey.Bzip2 input;
    ];
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_survey_jobs_deterministic () =
  let sequential = render_survey ~jobs:1 in
  Alcotest.(check bool) "report is non-trivial" true
    (String.length sequential > 200);
  Alcotest.(check string) "jobs=4 = jobs=1" sequential (render_survey ~jobs:4);
  Alcotest.(check string) "jobs=7 = jobs=1" sequential (render_survey ~jobs:7)

let render_experiments ~jobs =
  let buf = Buffer.create 65536 in
  let ppf = Format.formatter_of_buffer buf in
  let outcomes =
    [
      Zipchannel.Experiments.e1_zlib_gadget ~jobs ppf;
      Zipchannel.Experiments.e2_lzw_gadget ~jobs ppf;
      Zipchannel.Experiments.e4_survey ~jobs ppf;
      Zipchannel.Experiments.e5_zlib_recovery ~jobs ppf;
      Zipchannel.Experiments.e6_lzw_recovery ~jobs ppf;
    ]
  in
  Format.pp_print_flush ppf ();
  (Buffer.contents buf,
   List.map (fun o -> o.Zipchannel.Experiments.metrics) outcomes)

let test_experiments_jobs_deterministic () =
  let text1, metrics1 = render_experiments ~jobs:1 in
  let text3, metrics3 = render_experiments ~jobs:3 in
  Alcotest.(check string) "printed output identical" text1 text3;
  Alcotest.(check bool) "metrics identical" true (metrics1 = metrics3)

let suite =
  ( "taintplane",
    [
      QCheck_alcotest.to_alcotest qcheck_tagset_equivalence;
      QCheck_alcotest.to_alcotest qcheck_tagset_union_associative;
      Alcotest.test_case "paged memory differential" `Quick
        test_paged_memory_differential;
      Alcotest.test_case "stage_input across pages" `Quick
        test_stage_input_roundtrip;
      Alcotest.test_case "survey jobs determinism" `Quick
        test_survey_jobs_deterministic;
      Alcotest.test_case "experiments jobs determinism" `Slow
        test_experiments_jobs_deterministic;
    ] )
