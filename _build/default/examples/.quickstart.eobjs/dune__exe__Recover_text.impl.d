examples/recover_text.ml: Array Attack Bytes Compress Format List String Taintchannel Util Zipchannel
