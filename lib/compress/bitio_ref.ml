(* Reference bit I/O over [Buffer.t]/[bytes], retained verbatim when
   [Bitio] moved onto the bigstring substrate.  The differential suite
   cross-checks every [Bitio] operation against this module: same bytes
   out of the writers, same values and [Out_of_bits] positions out of
   the readers.  Not used by any production codec. *)

module Writer = struct
  type t = {
    buf : Buffer.t;
    mutable acc : int; (* pending bits, right-aligned, MSB emitted first *)
    mutable nbits : int; (* number of pending bits, 0..7 between calls *)
  }

  let create () = { buf = Buffer.create 256; acc = 0; nbits = 0 }

  (* Emit every whole byte held in [acc], leaving 0..7 pending bits. *)
  let flush_whole_bytes t =
    while t.nbits >= 8 do
      Buffer.add_char t.buf
        (Char.unsafe_chr ((t.acc lsr (t.nbits - 8)) land 0xff));
      t.nbits <- t.nbits - 8
    done;
    t.acc <- t.acc land ((1 lsl t.nbits) - 1)

  let add_bit t b =
    t.acc <- (t.acc lsl 1) lor (if b then 1 else 0);
    t.nbits <- t.nbits + 1;
    if t.nbits = 8 then begin
      Buffer.add_char t.buf (Char.unsafe_chr t.acc);
      t.acc <- 0;
      t.nbits <- 0
    end

  let add_bits_msb t ~value ~count =
    if count < 0 || count > 30 then invalid_arg "Bitio.add_bits_msb: count";
    if value lsr count <> 0 then invalid_arg "Bitio.add_bits_msb: value too wide";
    t.acc <- (t.acc lsl count) lor value;
    t.nbits <- t.nbits + count;
    flush_whole_bytes t

  let add_bits_lsb t ~value ~count =
    if count < 0 || count > 30 then invalid_arg "Bitio.add_bits_lsb: count";
    if value lsr count <> 0 then invalid_arg "Bitio.add_bits_lsb: value too wide";
    (* Reverse the [count] bits, then append MSB-first. *)
    let rev = ref 0 in
    let v = ref value in
    for _ = 1 to count do
      rev := (!rev lsl 1) lor (!v land 1);
      v := !v lsr 1
    done;
    t.acc <- (t.acc lsl count) lor !rev;
    t.nbits <- t.nbits + count;
    flush_whole_bytes t

  let align_byte t =
    if t.nbits <> 0 then begin
      Buffer.add_char t.buf (Char.unsafe_chr (t.acc lsl (8 - t.nbits)));
      t.acc <- 0;
      t.nbits <- 0
    end

  let bit_length t = (8 * Buffer.length t.buf) + t.nbits

  let append t src =
    (* Append every bit of [src] (which stays usable) to [t].  With [t]
       byte-aligned this is a plain buffer copy; otherwise each source
       byte is spliced in O(1). *)
    if t.nbits = 0 then Buffer.add_buffer t.buf src.buf
    else
      String.iter
        (fun c -> add_bits_msb t ~value:(Char.code c) ~count:8)
        (Buffer.contents src.buf);
    if src.nbits > 0 then add_bits_msb t ~value:src.acc ~count:src.nbits

  let to_bytes t =
    if t.nbits = 0 then Buffer.to_bytes t.buf
    else begin
      let b = Buffer.create (Buffer.length t.buf + 1) in
      Buffer.add_buffer b t.buf;
      Buffer.add_char b (Char.chr (t.acc lsl (8 - t.nbits)));
      Buffer.to_bytes b
    end
end

module Lsb_writer = struct
  type t = {
    buf : Buffer.t;
    mutable acc : int; (* pending bits, bit 0 = next stream position *)
    mutable nbits : int;
  }

  let create () = { buf = Buffer.create 256; acc = 0; nbits = 0 }

  let flush_bytes t =
    while t.nbits >= 8 do
      Buffer.add_char t.buf (Char.unsafe_chr (t.acc land 0xff));
      t.acc <- t.acc lsr 8;
      t.nbits <- t.nbits - 8
    done

  let add_bits t ~value ~count =
    if count < 0 || count > 24 then invalid_arg "Bitio.Lsb_writer.add_bits: count";
    if value lsr count <> 0 then
      invalid_arg "Bitio.Lsb_writer.add_bits: value too wide";
    t.acc <- t.acc lor (value lsl t.nbits);
    t.nbits <- t.nbits + count;
    flush_bytes t

  let add_huffman t ~code ~length =
    (* RFC 1951: Huffman codes are packed most significant bit first, so
       reverse before the LSB-first append. *)
    let rev = ref 0 in
    let v = ref code in
    for _ = 1 to length do
      rev := (!rev lsl 1) lor (!v land 1);
      v := !v lsr 1
    done;
    add_bits t ~value:!rev ~count:length

  let align_byte t =
    if t.nbits > 0 then begin
      Buffer.add_char t.buf (Char.unsafe_chr (t.acc land 0xff));
      t.acc <- 0;
      t.nbits <- 0
    end

  let to_bytes t =
    if t.nbits = 0 then Buffer.to_bytes t.buf
    else begin
      let b = Buffer.create (Buffer.length t.buf + 1) in
      Buffer.add_buffer b t.buf;
      Buffer.add_char b (Char.chr (t.acc land 0xff));
      Buffer.to_bytes b
    end
end

module Lsb_reader = struct
  type t = { data : bytes; mutable pos : int }

  exception Out_of_bits

  let create ?(start = 0) data = { data; pos = 8 * start }

  let total_bits t = 8 * Bytes.length t.data

  let read_bit t =
    if t.pos >= total_bits t then raise Out_of_bits;
    let byte = Char.code (Bytes.unsafe_get t.data (t.pos lsr 3)) in
    let bit = (byte lsr (t.pos land 7)) land 1 in
    t.pos <- t.pos + 1;
    bit = 1

  let read_bits t count =
    if count < 0 || count > 24 then invalid_arg "Bitio.Lsb_reader.read_bits";
    if count = 0 then 0
    else begin
      let total = total_bits t in
      if t.pos + count > total then begin
        (* The per-bit reference consumed every remaining bit before
           noticing the shortfall; preserve that observable position. *)
        t.pos <- total;
        raise Out_of_bits
      end;
      let byte0 = t.pos lsr 3 and bit = t.pos land 7 in
      let nbytes = (bit + count + 7) lsr 3 in
      let w = ref 0 in
      for k = nbytes - 1 downto 0 do
        w := (!w lsl 8) lor Char.code (Bytes.unsafe_get t.data (byte0 + k))
      done;
      t.pos <- t.pos + count;
      (!w lsr bit) land ((1 lsl count) - 1)
    end

  let align_byte t = if t.pos land 7 <> 0 then t.pos <- (t.pos lor 7) + 1

  let byte_position t = t.pos lsr 3

  let bits_remaining t = max 0 (total_bits t - t.pos)
end

module Reader = struct
  type t = { data : bytes; mutable pos : int (* absolute bit position *) }

  exception Out_of_bits

  let create ?(start = 0) data = { data; pos = 8 * start }

  let total_bits t = 8 * Bytes.length t.data

  let read_bit t =
    if t.pos >= total_bits t then raise Out_of_bits;
    let byte = Char.code (Bytes.unsafe_get t.data (t.pos lsr 3)) in
    let bit = (byte lsr (7 - (t.pos land 7))) land 1 in
    t.pos <- t.pos + 1;
    bit = 1

  let read_bits_msb t count =
    if count < 0 || count > 30 then invalid_arg "Bitio.read_bits_msb: count";
    if count = 0 then 0
    else begin
      let total = total_bits t in
      if t.pos + count > total then begin
        t.pos <- total;
        raise Out_of_bits
      end;
      let byte0 = t.pos lsr 3 and bit = t.pos land 7 in
      let nbytes = (bit + count + 7) lsr 3 in
      let w = ref 0 in
      for k = 0 to nbytes - 1 do
        w := (!w lsl 8) lor Char.code (Bytes.unsafe_get t.data (byte0 + k))
      done;
      t.pos <- t.pos + count;
      (!w lsr ((8 * nbytes) - bit - count)) land ((1 lsl count) - 1)
    end

  let read_bits_lsb t count =
    if count < 0 || count > 30 then invalid_arg "Bitio.read_bits_lsb: count";
    (* Stream order is the same as [read_bits_msb]; only the assembly order
       of the result differs, so gather then bit-reverse. *)
    let msb = read_bits_msb t count in
    let v = ref 0 and m = ref msb in
    for _ = 1 to count do
      v := (!v lsl 1) lor (!m land 1);
      m := !m lsr 1
    done;
    !v

  let align_byte t = if t.pos land 7 <> 0 then t.pos <- (t.pos lor 7) + 1

  let bits_remaining t = max 0 (total_bits t - t.pos)

  let byte_position t = t.pos lsr 3
end
