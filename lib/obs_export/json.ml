type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail pos msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg pos))

(* Recursive-descent parser over (string, position ref). *)

let skip_ws s pos =
  let n = String.length s in
  while
    !pos < n
    && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    incr pos
  done

let expect s pos c =
  if !pos >= String.length s || s.[!pos] <> c then
    fail !pos (Printf.sprintf "expected %C" c);
  incr pos

let utf8_of_code b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
  end

let parse_string s pos =
  expect s pos '"';
  let b = Buffer.create 16 in
  let n = String.length s in
  let rec go () =
    if !pos >= n then fail !pos "unterminated string";
    match s.[!pos] with
    | '"' -> incr pos
    | '\\' ->
        incr pos;
        if !pos >= n then fail !pos "unterminated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
            if !pos + 4 >= n then fail !pos "truncated \\u escape";
            let hex = String.sub s (!pos + 1) 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code -> utf8_of_code b code
            | None -> fail !pos "bad \\u escape");
            pos := !pos + 4
        | c -> fail !pos (Printf.sprintf "bad escape \\%c" c));
        incr pos;
        go ()
    | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number s pos =
  let start = !pos in
  let n = String.length s in
  let num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while !pos < n && num_char s.[!pos] do
    incr pos
  done;
  match float_of_string_opt (String.sub s start (!pos - start)) with
  | Some f -> f
  | None -> fail start "bad number"

let parse_literal s pos lit v =
  let n = String.length lit in
  if !pos + n <= String.length s && String.sub s !pos n = lit then begin
    pos := !pos + n;
    v
  end
  else fail !pos ("expected " ^ lit)

let rec parse_value s pos =
  skip_ws s pos;
  if !pos >= String.length s then fail !pos "unexpected end of input";
  match s.[!pos] with
  | '"' -> Str (parse_string s pos)
  | '{' ->
      incr pos;
      skip_ws s pos;
      if !pos < String.length s && s.[!pos] = '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let members = ref [] in
        let rec go () =
          skip_ws s pos;
          let key = parse_string s pos in
          skip_ws s pos;
          expect s pos ':';
          let v = parse_value s pos in
          members := (key, v) :: !members;
          skip_ws s pos;
          if !pos < String.length s && s.[!pos] = ',' then begin
            incr pos;
            go ()
          end
          else expect s pos '}'
        in
        go ();
        Obj (List.rev !members)
      end
  | '[' ->
      incr pos;
      skip_ws s pos;
      if !pos < String.length s && s.[!pos] = ']' then begin
        incr pos;
        Arr []
      end
      else begin
        let items = ref [] in
        let rec go () =
          let v = parse_value s pos in
          items := v :: !items;
          skip_ws s pos;
          if !pos < String.length s && s.[!pos] = ',' then begin
            incr pos;
            go ()
          end
          else expect s pos ']'
        in
        go ();
        Arr (List.rev !items)
      end
  | 't' -> parse_literal s pos "true" (Bool true)
  | 'f' -> parse_literal s pos "false" (Bool false)
  | 'n' -> parse_literal s pos "null" Null
  | _ -> Num (parse_number s pos)

let parse s =
  let pos = ref 0 in
  let v = parse_value s pos in
  skip_ws s pos;
  if !pos <> String.length s then fail !pos "trailing garbage";
  v

let parse_many s =
  let pos = ref 0 in
  let values = ref [] in
  skip_ws s pos;
  while !pos < String.length s do
    values := parse_value s pos :: !values;
    skip_ws s pos
  done;
  List.rev !values

let member key = function
  | Obj members -> List.assoc_opt key members
  | _ -> None

let to_num = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_arr = function Arr l -> Some l | _ -> None
let to_obj = function Obj m -> Some m | _ -> None

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let quote s = "\"" ^ escape s ^ "\""

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num f ->
      if Float.is_nan f || Float.abs f = Float.infinity then
        Buffer.add_char b '0'
      else if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.0f" f)
      else Buffer.add_string b (Printf.sprintf "%.17g" f)
  | Str s -> Buffer.add_string b (quote s)
  | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        items;
      Buffer.add_char b ']'
  | Obj members ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (quote k);
          Buffer.add_char b ':';
          write b v)
        members;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b
