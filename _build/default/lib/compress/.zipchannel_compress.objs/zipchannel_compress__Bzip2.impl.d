lib/compress/bzip2.ml: Array Bitio Block_sort Buffer Bwt Bytes Char Huffman List Mtf Rle1 Rle2 String
