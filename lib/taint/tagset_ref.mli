(** Reference tagset implementation ([Set.Make (Int)]).

    This is the original representation, retained as the executable
    specification for the word-packed {!Tagset}.  The two modules share
    a signature so the equivalence test suite can drive both through
    identical operation sequences.  Not used on any hot path. *)

type tag = int

type t

val empty : t
val is_empty : t -> bool
val singleton : tag -> t
val add : tag -> t -> t
val union : t -> t -> t
val mem : tag -> t -> bool
val cardinal : t -> int
val elements : t -> tag list
(** Ascending order. *)

val equal : t -> t -> bool
val of_list : tag list -> t
val fold : (tag -> 'a -> 'a) -> t -> 'a -> 'a
val pp : Format.formatter -> t -> unit
