(** Data-integrity checksums used by the container formats.

    CRC-32 is the gzip/zip polynomial (reflected 0xEDB88320); Adler-32 is
    zlib's checksum.  Both match the standard test vectors. *)

module Crc32 : sig
  type t
  (** Running state. *)

  val init : t
  val feed_byte : t -> int -> t
  val feed_bytes : t -> bytes -> t

  val feed_sub : t -> bytes -> off:int -> len:int -> t
  (** Feed the [len]-byte slice at [off], read in place — no copy.
      @raise Invalid_argument if the slice is out of bounds. *)

  val value : t -> int
  (** Finalized 32-bit checksum. *)

  val digest : bytes -> int
  (** One-shot. *)

  val digest_sub : bytes -> off:int -> len:int -> int
  (** One-shot over a slice, read in place. *)
end

module Adler32 : sig
  type t

  val init : t
  val feed_byte : t -> int -> t
  val feed_bytes : t -> bytes -> t
  val value : t -> int
  val digest : bytes -> int
end
