type owner = Attacker | Victim | System | Background

type replacement = Lru | Random_replacement

type config = {
  sets_per_slice : int;
  ways : int;
  slices : int;
  line_bits : int;
  policy : replacement;
}

let default_config =
  { sets_per_slice = 1024; ways = 16; slices = 4; line_bits = 6; policy = Lru }

let small_config =
  { sets_per_slice = 64; ways = 4; slices = 1; line_bits = 6; policy = Lru }

(* Line state lives in three flat int arrays indexed by
   [set * ways + way] rather than an array of per-line records: creation
   is three [Array.make]s instead of tens of thousands of record
   allocations, and the access path walks machine integers with no
   pointer chasing.  [who] stores the owner's constructor index. *)
type t = {
  cfg : config;
  ways : int;
  tags : int array; (* -1 = invalid *)
  who : int array;
  last_use : int array;
  cat : int array; (* class of service -> way mask *)
  mutable clock : int;
  slice_masks : int array; (* one parity mask per slice-index bit *)
  (* Telemetry, maintained unconditionally (plain increments) and
     published to Obs only on demand. *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int; (* fills that displaced a valid line *)
  mutable flushes : int;
}

let owner_code = function
  | Attacker -> 0
  | Victim -> 1
  | System -> 2
  | Background -> 3

let is_pow2 n = n > 0 && n land (n - 1) = 0

(* Parity masks in the spirit of the reconstructed Intel slice hash
   (Maurice et al., RAID'15): each slice bit is the XOR of a spread
   selection of line-address bits. *)
let base_slice_masks = [| 0x1b5f575440; 0x2eb5faa880; 0x3cccc93100 |]

let create cfg =
  if not (is_pow2 cfg.sets_per_slice) then
    invalid_arg "Cache.create: sets_per_slice must be a power of two";
  if not (is_pow2 cfg.slices) then
    invalid_arg "Cache.create: slices must be a power of two";
  if cfg.ways < 1 then invalid_arg "Cache.create: ways";
  let n_sets = cfg.sets_per_slice * cfg.slices in
  let slice_bits =
    let rec bits n = if n <= 1 then 0 else 1 + bits (n / 2) in
    bits cfg.slices
  in
  if slice_bits > Array.length base_slice_masks then
    invalid_arg "Cache.create: too many slices";
  let n_lines = n_sets * cfg.ways in
  {
    cfg;
    ways = cfg.ways;
    tags = Array.make n_lines (-1);
    who = Array.make n_lines (owner_code System);
    last_use = Array.make n_lines 0;
    cat = Array.make 4 ((1 lsl cfg.ways) - 1);
    clock = 0;
    slice_masks = Array.sub base_slice_masks 0 slice_bits;
    hits = 0;
    misses = 0;
    evictions = 0;
    flushes = 0;
  }

let config t = t.cfg

let line_of t addr = addr lsr t.cfg.line_bits

let parity v =
  let v = v lxor (v lsr 32) in
  let v = v lxor (v lsr 16) in
  let v = v lxor (v lsr 8) in
  let v = v lxor (v lsr 4) in
  let v = v lxor (v lsr 2) in
  let v = v lxor (v lsr 1) in
  v land 1

let slice_of_line t line =
  let s = ref 0 in
  for bit = 0 to Array.length t.slice_masks - 1 do
    s :=
      !s
      lor (parity (line land Array.unsafe_get t.slice_masks bit) lsl bit)
  done;
  !s

let slice_of t addr = slice_of_line t (line_of t addr)

let set_of t addr = line_of t addr land (t.cfg.sets_per_slice - 1)

let set_index t addr =
  let line = line_of t addr in
  (slice_of_line t line * t.cfg.sets_per_slice)
  + (line land (t.cfg.sets_per_slice - 1))

let n_sets t = t.cfg.sets_per_slice * t.cfg.slices

let set_cat_mask t ~cos ~mask =
  if cos < 0 || cos >= Array.length t.cat then
    invalid_arg "Cache.set_cat_mask: cos";
  if mask = 0 || mask lsr t.cfg.ways <> 0 then
    invalid_arg "Cache.set_cat_mask: mask";
  t.cat.(cos) <- mask

let cat_mask t ~cos =
  if cos < 0 || cos >= Array.length t.cat then invalid_arg "Cache.cat_mask: cos";
  t.cat.(cos)

(* Way holding [tag] in the set whose lines start at [base], or -1. *)
let find_way t base tag =
  let rec go w =
    if w >= t.ways then -1
    else if Array.unsafe_get t.tags (base + w) = tag then w
    else go (w + 1)
  in
  go 0

let access t ?(cos = 0) ~owner addr =
  t.clock <- t.clock + 1;
  let tag = line_of t addr in
  let base = set_index t addr * t.ways in
  let w = find_way t base tag in
  if w >= 0 then begin
    t.hits <- t.hits + 1;
    Array.unsafe_set t.last_use (base + w) t.clock;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (* Fill into a way the CAT mask allows: the least recently used one
       (an invalid way counts as oldest), or a pseudo-random one under
       the random-replacement policy; invalid ways are always taken
       first. *)
    let mask = t.cat.(cos) in
    let victim = ref (-1) in
    (match t.cfg.policy with
    | Lru when mask land (mask - 1) = 0 ->
        (* Single-way CAT class (the paper's offensive CAT setup): the
           fill way is forced, no LRU scan needed. *)
        let rec tz m k = if m land 1 = 1 then k else tz (m lsr 1) (k + 1) in
        victim := tz mask 0
    | Lru ->
        let best_age = ref max_int in
        for w = 0 to t.ways - 1 do
          if mask land (1 lsl w) <> 0 then begin
            let age =
              if Array.unsafe_get t.tags (base + w) = -1 then min_int
              else Array.unsafe_get t.last_use (base + w)
            in
            if !victim < 0 || age < !best_age then begin
              victim := w;
              best_age := age
            end
          end
        done
    | Random_replacement ->
        let allowed = ref 0 and empty = ref 0 in
        for w = 0 to t.ways - 1 do
          if mask land (1 lsl w) <> 0 then begin
            incr allowed;
            if Array.unsafe_get t.tags (base + w) = -1 then incr empty
          end
        done;
        let use_empty = !empty > 0 in
        let pool_size = if use_empty then !empty else !allowed in
        (* Deterministic pseudo-randomness from the access clock. *)
        let r = (t.clock * 0x9E3779B1) lsr 7 in
        let k = ref (r mod pool_size) in
        (try
           for w = 0 to t.ways - 1 do
             if
               mask land (1 lsl w) <> 0
               && ((not use_empty) || Array.unsafe_get t.tags (base + w) = -1)
             then
               if !k = 0 then begin
                 victim := w;
                 raise Exit
               end
               else decr k
           done
         with Exit -> ()));
    assert (!victim >= 0);
    let i = base + !victim in
    if Array.unsafe_get t.tags i <> -1 then t.evictions <- t.evictions + 1;
    Array.unsafe_set t.tags i tag;
    Array.unsafe_set t.who i (owner_code owner);
    Array.unsafe_set t.last_use i t.clock;
    false
  end

let access_many t ?(cos = 0) ~owner addrs =
  (* Tight batched loop: one call drains a whole flat address array
     through the simulator, so callers replaying precompiled access
     plans pay no per-access dispatch.  Exactly equivalent to folding
     {!access} over the array left to right. *)
  let hits = ref 0 in
  for i = 0 to Array.length addrs - 1 do
    if access t ~cos ~owner (Array.unsafe_get addrs i) then incr hits
  done;
  !hits

let is_cached t addr =
  find_way t (set_index t addr * t.ways) (line_of t addr) >= 0

let flush t addr =
  let base = set_index t addr * t.ways in
  let w = find_way t base (line_of t addr) in
  if w >= 0 then begin
    t.flushes <- t.flushes + 1;
    t.tags.(base + w) <- -1;
    t.last_use.(base + w) <- 0
  end

type stats = { hits : int; misses : int; evictions : int; flushes : int }

let stats (t : t) : stats =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    flushes = t.flushes;
  }

module Obs = Zipchannel_obs.Obs

let m_hits = Obs.Metrics.counter "cache.hits"
let m_misses = Obs.Metrics.counter "cache.misses"
let m_evictions = Obs.Metrics.counter "cache.evictions"
let m_flushes = Obs.Metrics.counter "cache.flushes"

let observe_metrics (t : t) =
  if Obs.enabled () then begin
    Obs.Metrics.add m_hits t.hits;
    Obs.Metrics.add m_misses t.misses;
    Obs.Metrics.add m_evictions t.evictions;
    Obs.Metrics.add m_flushes t.flushes
  end

let owner_in_set t ~set who =
  if set < 0 || set >= n_sets t then invalid_arg "Cache.owner_in_set: set";
  let base = set * t.ways in
  let code = owner_code who in
  let acc = ref 0 in
  for w = 0 to t.ways - 1 do
    if t.tags.(base + w) <> -1 && t.who.(base + w) = code then incr acc
  done;
  !acc

let addrs_for_set t ~set ~count =
  if set < 0 || set >= n_sets t then invalid_arg "Cache.addrs_for_set: set";
  if count < 0 then invalid_arg "Cache.addrs_for_set: count";
  let out = Array.make count 0 in
  let found = ref 0 in
  (* Only lines whose low set-index bits already match can hit the target
     set, so stride by sets_per_slice. *)
  let low = set land (t.cfg.sets_per_slice - 1) in
  let line = ref low in
  while !found < count do
    let addr = !line lsl t.cfg.line_bits in
    if set_index t addr = set then begin
      out.(!found) <- addr;
      incr found
    end;
    line := !line + t.cfg.sets_per_slice
  done;
  out

let addr_for_set t ~set ~seq =
  if seq < 0 then invalid_arg "Cache.addr_for_set: seq";
  (addrs_for_set t ~set ~count:(seq + 1)).(seq)
