lib/compress/bwt.ml: Array Bytes Char
