(* Per-chunk length oracle: byte-at-a-time secret recovery from the
   frame layer's per-frame clen observable, CRIME-style.

   The scoring loop only ever sees what a network adversary sees — the
   list of frame payload lengths — so the same code drives the
   in-process probe and the zc serve loopback probe. *)

module Frame = Zipchannel_compress.Frame
module Obs = Zipchannel_obs.Obs
module Leak_audit = Zipchannel_obs_leak.Leak_audit
module Prng = Zipchannel_util.Prng
module Lipsum = Zipchannel_util.Lipsum

type probe = bytes -> int list

let m_probes = Obs.Metrics.counter "leak.chunk.probes"
let m_recovered = Obs.Metrics.counter "leak.chunk.bytes_recovered"
let g_capacity = Obs.Metrics.gauge "leak.chunk.capacity_bits"
let g_rate = Obs.Metrics.gauge "leak.chunk.recovery_rate"

(* ------------------------------------------------------------------ *)
(* Probes *)

let u32_get b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF

let clens_of_stream data =
  let len = Bytes.length data in
  let fail why = invalid_arg ("Chunk_oracle.clens_of_stream: " ^ why) in
  if len < 8 || Bytes.sub_string data 0 4 <> "ZCF1" then fail "bad magic";
  let pos = ref 8 in
  let clens = ref [] in
  let finished = ref false in
  while not !finished do
    if !pos + 13 > len then fail "truncated frame header";
    let tag = Char.code (Bytes.get data !pos) in
    if tag = 0xFF then begin
      finished := true;
      pos := !pos + 13
    end
    else if tag = 0x01 || tag = 0x02 then begin
      let clen = u32_get data (!pos + 5) in
      clens := clen :: !clens;
      pos := !pos + 13 + clen;
      if !pos > len then fail "truncated frame payload"
    end
    else fail "unknown frame tag"
  done;
  List.rev !clens

let local_probe ?(jobs = 1) ~codec ~frame_size () =
 fun plain -> clens_of_stream (Frame.compress ~frame_size ~jobs ~codec plain)

(* ------------------------------------------------------------------ *)
(* The victim *)

let alphabet = "0123456789"

module Victim = struct
  type t = { secret : string; body : string }

  (* Query-string-like filler: lipsum words interleaved with numeric
     parameters.  The digits matter — they give wrong candidates
     accidental partial matches, which is the noise source that makes
     bigger frames (more filler co-compressed with the secret) leak
     less per probe. *)
  let create ?(seed = 7) ?(secret_len = 8) ?(body_len = 8192) () =
    if secret_len < 1 then invalid_arg "Chunk_oracle.Victim.create";
    let rng = Prng.create ~seed () in
    let secret =
      String.init secret_len (fun _ ->
          alphabet.[Prng.int rng (String.length alphabet)])
    in
    let b = Buffer.create (body_len + 64) in
    Buffer.add_string b "secret=";
    Buffer.add_string b secret;
    Buffer.add_char b '&';
    let param = ref 0 in
    while Buffer.length b < body_len do
      if Prng.int rng 3 = 0 then begin
        incr param;
        Buffer.add_string b (Printf.sprintf "p%d=" !param);
        let digits = 2 + Prng.int rng 6 in
        for _ = 1 to digits do
          Buffer.add_char b alphabet.[Prng.int rng 10]
        done;
        Buffer.add_char b '&'
      end
      else begin
        Buffer.add_string b (Lipsum.word rng);
        Buffer.add_char b '&'
      end
    done;
    { secret; body = Buffer.sub b 0 body_len }

  let secret t = t.secret

  let plaintext t ~guess =
    Bytes.of_string (guess ^ "\n" ^ t.body)
end

(* ------------------------------------------------------------------ *)
(* Recovery *)

type result = {
  frame_size : int;
  secret : string;
  recovered : string;
  per_byte_correct : int;
  positions : int;
  probes : int;
  per_byte_rate : float;
  chained_rate : float;
  capacity_bits : float;
  mi_bits : float;
}

(* Charset pollution (BREACH): every candidate digit appears in the
   attacker's reflection with '~' separators, so the frame's Huffman
   table carries all ten digits whichever candidate is probed — the
   score difference is the match extension, not table-membership noise.
   The separators keep the pollution itself from forming 3-byte LZ77
   matches with the secret. *)
let pollution =
  String.concat "~" (List.init 10 (fun d -> string_of_int d)) ^ "~"

let run ?(seed = 7) ?secret_len ?body_len ?(tries = 8) ?(trials = 1)
    ~frame_size ~probe () =
  if trials < 1 then invalid_arg "Chunk_oracle.run: trials";
  let probes = ref 0 in
  let est = Leak_audit.Estimator.create ~buckets:2 ~delta_range:32 () in
  let per_byte_correct = ref 0 in
  let positions = ref 0 in
  let chained_sum = ref 0. in
  let first_secret = ref "" in
  let first_recovered = ref "" in
  (* One victim per trial: recovery {e rate} means success over
     independent secrets, not one lucky secret.  Sub-seeds keep the
     whole campaign deterministic in [seed]. *)
  for trial = 0 to trials - 1 do
  let v =
    Victim.create ~seed:(seed + (9973 * trial)) ?secret_len ?body_len ()
  in
  let secret = Victim.secret v in
  let n = String.length secret in
  let k = String.length alphabet in
  let cache : (string, int) Hashtbl.t = Hashtbl.create 64 in
  (* Only the frame holding the attacker's reflection and the secret is
     scored: downstream frames shift with the padding and would only
     add boundary noise. *)
  let first_clen guess =
    match Hashtbl.find_opt cache guess with
    | Some s -> s
    | None ->
        incr probes;
        Obs.Metrics.incr m_probes;
        let s =
          match probe (Victim.plaintext v ~guess) with
          | c :: _ -> c
          | [] -> 0
        in
        Hashtbl.add cache guess s;
        s
  in
  (* Sum the frame length over [tries] padding lengths: deflate packs
     bits and rounds the frame up to whole bytes, so a single probe can
     hide the one-literal saving; dithering the downstream alignment
     with attacker-controlled padding recovers it in the sum. *)
  let score prefix c =
    let base = Printf.sprintf "%ssecret=%s%c|" pollution prefix alphabet.[c] in
    let total = ref 0 in
    for p = 0 to tries - 1 do
      total := !total + first_clen (base ^ String.make p '#')
    done;
    !total
  in
  let scores prefix = Array.init k (fun c -> score prefix c) in
  let argmin a =
    let best = ref 0 in
    Array.iteri (fun i s -> if s < a.(!best) then best := i) a;
    !best
  in
  let recovered = Buffer.create n in
  for i = 0 to n - 1 do
    (* Oracle accuracy at this position: probe with the true prefix. *)
    let s = scores (String.sub secret 0 i) in
    let best = argmin s in
    if alphabet.[best] = secret.[i] then incr per_byte_correct;
    Array.iteri
      (fun c sc ->
        let bucket = if alphabet.[c] = secret.[i] then 1 else 0 in
        Leak_audit.Estimator.observe est ~bucket ~delta:(sc - s.(best)))
      s;
    (* Chained recovery: the attacker only has their own prefix.  When
       it matches the true prefix the probe cache makes this free. *)
    let sc = scores (Buffer.contents recovered) in
    Buffer.add_char recovered alphabet.[argmin sc]
  done;
  let recovered = Buffer.contents recovered in
  let exact_prefix =
    let i = ref 0 in
    while !i < n && recovered.[!i] = secret.[!i] do incr i done;
    !i
  in
  positions := !positions + n;
  chained_sum := !chained_sum +. (float_of_int exact_prefix /. float_of_int n);
  if trial = 0 then begin
    first_secret := secret;
    first_recovered := recovered
  end
  done;
  let r =
    {
      frame_size;
      secret = !first_secret;
      recovered = !first_recovered;
      per_byte_correct = !per_byte_correct;
      positions = !positions;
      probes = !probes;
      per_byte_rate =
        float_of_int !per_byte_correct /. float_of_int !positions;
      chained_rate = !chained_sum /. float_of_int trials;
      capacity_bits = Leak_audit.Estimator.capacity_bits est;
      mi_bits = Leak_audit.Estimator.mutual_information_bits est;
    }
  in
  Obs.Metrics.add m_recovered r.per_byte_correct;
  Obs.Metrics.set_gauge g_capacity r.capacity_bits;
  Obs.Metrics.set_gauge g_rate r.per_byte_rate;
  r

let sweep ?seed ?secret_len ?body_len ?tries ?trials ~frame_sizes ~mk_probe ()
    =
  List.map
    (fun frame_size ->
      run ?seed ?secret_len ?body_len ?tries ?trials ~frame_size
        ~probe:(mk_probe ~frame_size) ())
    frame_sizes

let monotone results =
  let rec ok = function
    | a :: (b :: _ as rest) ->
        (* ascending frame size: leakage must not grow with the frame *)
        b.per_byte_rate <= a.per_byte_rate +. 1e-9
        && b.capacity_bits <= a.capacity_bits +. 1e-9
        && ok rest
    | _ -> true
  in
  ok results
