lib/taint/render.ml: Buffer List Printf String Tagset Tval
