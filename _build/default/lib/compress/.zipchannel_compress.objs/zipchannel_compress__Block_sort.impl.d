lib/compress/block_sort.ml: Array Bwt Bytes Char
