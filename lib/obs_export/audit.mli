(** Reader and OTLP mapper for leak-audit JSONL files — the [--audit]
    output of [zc serve] and any {!Zipchannel_obs_leak.Leak_audit.Jsonl}
    sink.

    An audit file is a JSONL stream of two record shapes, distinguished
    by the ["t"] member: [{"t": "frame", ...}] per emitted frame and
    [{"t": "request", ...}] per daemon request.  Both map onto the span
    shapes the rest of the exporter stack already speaks: a frame
    becomes a span named [frame.data]/[frame.flush]/[frame.trailer]
    whose duration is its encode wall time and whose domain is its
    stream id; a request becomes a [serve.request] span over its wall
    time on domain [conn].  Lengths, deltas and buckets ride along as
    span attributes, so [zc obs profile] and the OTLP trace exporter
    work on audit files unchanged. *)

type t =
  | Frame of Zipchannel_obs_leak.Leak_audit.record
  | Request of Zipchannel_obs_leak.Leak_audit.request_record

val is_audit_record : Json.t -> bool
(** Does this value look like an audit record (an object whose ["t"]
    member is ["frame"] or ["request"])?  Used to tell audit files from
    span streams and metric snapshots. *)

val of_json : Json.t -> t
(** @raise Failure on values that are not audit records. *)

val of_string : string -> t list
(** Parse a whole audit JSONL stream, in order.
    @raise Json.Parse_error @raise Failure *)

val read_file : string -> t list

val span_events : t list -> Zipchannel_obs.Obs.Trace.span_event list
(** Begin/end event pairs per record, grouped by stream (frames, in
    sequence order) then by connection (requests). *)

val trace_request : t list -> Json.t
(** {!Otlp.trace_request} of {!span_events}: the audit plane as an OTLP
    [ExportTraceServiceRequest]. *)
