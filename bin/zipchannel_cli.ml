(* zipchannel: run the end-to-end attacks.

     zipchannel sgx -n 10000               leak random data from the enclave
     zipchannel sgx -f secret.bin          leak a file
     zipchannel sgx --no-cat               ablate Intel CAT
     zipchannel fingerprint                train & evaluate the classifier
     zipchannel experiments                run every paper experiment *)

open Cmdliner
open Zipchannel

let ppf = Format.std_formatter

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let sgx file size seed no_cat no_frame_selection () =
  let input =
    match file with
    | Some path -> Bytes.of_string (read_file path)
    | None -> Util.Prng.bytes (Util.Prng.create ~seed ()) size
  in
  let config =
    {
      Attack.Sgx_attack.default_config with
      Attack.Sgx_attack.use_cat = not no_cat;
      use_frame_selection = not no_frame_selection;
      seed;
    }
  in
  let t0 = Sys.time () in
  let r = Attack.Sgx_attack.run ~config input in
  Format.fprintf ppf
    "leaked %d bytes: %.2f%% of bits, %.2f%% of bytes (%d lost readings, %d faults, %.1f s)@."
    (Bytes.length input)
    (100.0 *. r.Attack.Sgx_attack.bit_accuracy)
    (100.0 *. r.byte_accuracy)
    r.lost_readings r.faults
    (Sys.time () -. t0);
  `Ok ()

let fingerprint seed traces () =
  ignore (Experiments.e11_fingerprint_repetitiveness ~seed ~traces_per_file:traces ppf);
  ignore (Experiments.e10_fingerprint_corpus ~seed ~traces_per_file:traces ppf);
  `Ok ()

let experiments seed jobs only () =
  match only with
  | None ->
      ignore (Experiments.all ~seed ~jobs ppf);
      `Ok ()
  | Some id -> (
      match Experiments.run ~seed ~jobs ~id ppf with
      | Some _ -> `Ok ()
      | None ->
          `Error
            ( false,
              "unknown experiment id: " ^ id ^ " (expected "
              ^ String.concat "/" Experiments.ids
              ^ ")" ))

let seed =
  let doc = "PRNG seed." in
  Arg.(value & opt int 0xDECAF & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let sgx_cmd =
  let file =
    let doc = "File to leak from the enclave (default: random data)." in
    Arg.(value & opt (some file) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)
  in
  let size =
    let doc = "Random input size in bytes." in
    Arg.(value & opt int 10_000 & info [ "n"; "size" ] ~docv:"BYTES" ~doc)
  in
  let no_cat =
    Arg.(value & flag & info [ "no-cat" ] ~doc:"Disable the Intel CAT technique.")
  in
  let no_fs =
    Arg.(value & flag
         & info [ "no-frame-selection" ] ~doc:"Disable frame selection.")
  in
  Cmd.v
    (Cmd.info "sgx" ~doc:"Prime+Probe attack on Bzip2 inside SGX (Section V)")
    Term.(
      ret (const sgx $ file $ size $ seed $ no_cat $ no_fs $ Obs_cli.flags))

let fingerprint_cmd =
  let traces =
    let doc = "Traces collected per file." in
    Arg.(value & opt int 25 & info [ "traces" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "fingerprint"
       ~doc:"Flush+Reload file fingerprinting on Bzip2 (Section VI)")
    Term.(ret (const fingerprint $ seed $ traces $ Obs_cli.flags))

let experiments_cmd =
  let jobs =
    Obs_cli.jobs_arg
      ~doc:
        "Domains for the parallelisable experiments; 0 means all \
         available cores (output is identical for any value)."
  in
  let only =
    let doc = "Run a single experiment (E1-E19) instead of all of them." in
    Arg.(
      value
      & opt (some string) None
      & info [ "e"; "only" ] ~docv:"ID" ~doc)
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Run every paper experiment (E1-E19)")
    Term.(ret (const experiments $ seed $ jobs $ only $ Obs_cli.flags))

let cmd =
  let doc = "cache side-channel attacks on compression algorithms" in
  Cmd.group (Cmd.info "zipchannel" ~doc)
    [ sgx_cmd; fingerprint_cmd; experiments_cmd ]

let () = exit (Cmd.eval cmd)
