(* Smoke tests over the experiment harness: each experiment must run,
   print something, and hit its paper-shaped headline metric.  Sizes are
   kept small where the harness allows. *)

let null_ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let metric outcome name =
  match List.assoc_opt name outcome.Zipchannel.Experiments.metrics with
  | Some v -> v
  | None ->
      Alcotest.failf "metric %S missing from %s" name
        outcome.Zipchannel.Experiments.id

let test_e1 () =
  let o = Zipchannel.Experiments.e1_zlib_gadget null_ppf in
  Alcotest.(check (float 1e-9)) "full coverage" 1.0
    (metric o "input coverage (paper: all bytes)")

let test_e3 () =
  let o = Zipchannel.Experiments.e3_bzip2_gadget null_ppf in
  Alcotest.(check (float 1e-9)) "full coverage" 1.0
    (metric o "coverage (paper: all bytes)")

let test_e4 () =
  let o = Zipchannel.Experiments.e4_survey null_ppf in
  Alcotest.(check bool) "zlib leaks everything" true
    (metric o "coverage LZ77/Zlib" = 1.0);
  Alcotest.(check bool) "bzip2 leaks everything" true
    (metric o "coverage BWT/Bzip2" = 1.0);
  Alcotest.(check bool) "lzw leaks all but the first byte" true
    (metric o "coverage LZ78/LZW" > 0.999);
  Alcotest.(check bool) "lz4 hash head leaks everything" true
    (metric o "coverage LZ4" = 1.0);
  Alcotest.(check bool) "snappy hash head leaks everything" true
    (metric o "coverage Snappy" = 1.0)

let test_e5 () =
  let o = Zipchannel.Experiments.e5_zlib_recovery null_ppf in
  Alcotest.(check (float 1e-9)) "direct bits exact" 1.0
    (metric o "direct 2-bit accuracy");
  Alcotest.(check bool) "lowercase nearly full" true
    (metric o "lowercase byte accuracy" > 0.999)

let test_e6 () =
  let o = Zipchannel.Experiments.e6_lzw_recovery null_ppf in
  Alcotest.(check (float 1e-9)) "full recovery" 1.0 (metric o "byte accuracy")

let test_e7_small () =
  let o = Zipchannel.Experiments.e7_sgx_attack ~size:1200 null_ppf in
  Alcotest.(check bool) "paper headline: >99% of bits" true
    (metric o "bit accuracy (paper >0.99)" > 0.99)

let test_e9 () =
  let o = Zipchannel.Experiments.e9_sort_control_flow null_ppf in
  Alcotest.(check bool) "some blocks abandon mainSort" true
    (metric o "abandoned mainSort" >= 1.0)

let test_e11_small () =
  let o =
    Zipchannel.Experiments.e11_fingerprint_repetitiveness ~traces_per_file:15
      null_ppf
  in
  Alcotest.(check bool) "well above chance" true
    (metric o "test accuracy" > 2.0 *. metric o "chance")

let test_e12 () =
  let o = Zipchannel.Experiments.e12_aes_validation null_ppf in
  Alcotest.(check (float 1e-9)) "fips ok" 1.0 (metric o "fips vector ok");
  Alcotest.(check (float 1e-9)) "gadget found" 1.0 (metric o "gadget found")

let test_e13 () =
  let o = Zipchannel.Experiments.e13_memcpy_divergence null_ppf in
  Alcotest.(check (float 1e-9)) "divergence" 1.0
    (metric o "size divergence detected");
  Alcotest.(check (float 1e-9)) "stability" 1.0
    (metric o "same size identical")

let test_e14 () =
  let o = Zipchannel.Experiments.e14_mitigation null_ppf in
  Alcotest.(check (float 1e-9)) "oblivious correct" 1.0
    (metric o "oblivious correct");
  Alcotest.(check (float 1e-9)) "plain leaks" 1.0 (metric o "plain trace leaks");
  Alcotest.(check (float 1e-9)) "oblivious constant" 1.0
    (metric o "oblivious trace constant");
  Alcotest.(check bool) "recovery collapses to chance" true
    (metric o "recovery vs mitigated (chance)" < 0.05)

let test_e15_small () =
  let o = Zipchannel.Experiments.e15_timer_stepping ~size:250 null_ppf in
  Alcotest.(check bool) "controlled channel near-perfect" true
    (metric o "controlled channel bits" > 0.99);
  Alcotest.(check bool) "jittery timer far below" true
    (metric o "timer bits, jitter 2.0" < metric o "controlled channel bits")

let test_e16 () =
  let o = Zipchannel.Experiments.e16_tool_comparison null_ppf in
  Alcotest.(check (float 1e-9)) "baseline finds it" 1.0
    (metric o "baseline finds gadget");
  Alcotest.(check (float 1e-9)) "taintchannel finds it" 1.0
    (metric o "taintchannel finds gadget")

let test_e17_small () =
  let o = Zipchannel.Experiments.e17_lzw_sgx_attack ~size:800 null_ppf in
  Alcotest.(check bool) "text fully extracted" true
    (metric o "text byte accuracy" > 0.99);
  Alcotest.(check bool) "random bits >99%" true
    (metric o "random bit accuracy" > 0.99)

let test_e18_small () =
  let o = Zipchannel.Experiments.e18_zlib_sgx_attack ~size:800 null_ppf in
  Alcotest.(check bool) "lowercase nearly full" true
    (metric o "lowercase byte accuracy" > 0.99);
  Alcotest.(check bool) "direct bits read" true
    (metric o "random direct-bit accuracy" > 0.98)

let test_e19 () =
  let o = Zipchannel.Experiments.e19_memcomp_oracle null_ppf in
  Alcotest.(check bool) "ratio oracle >= 75%" true
    (metric o "ratio per-byte rate" >= 0.75);
  Alcotest.(check bool) "timing oracle >= 75%" true
    (metric o "timing per-byte rate" >= 0.75);
  Alcotest.(check bool) "positive channel capacity" true
    (metric o "capacity bits" > 0.)

let suite =
  ( "experiments",
    [
      Alcotest.test_case "E1 zlib gadget" `Quick test_e1;
      Alcotest.test_case "E3 bzip2 gadget" `Quick test_e3;
      Alcotest.test_case "E4 survey" `Quick test_e4;
      Alcotest.test_case "E5 zlib recovery" `Quick test_e5;
      Alcotest.test_case "E6 lzw recovery" `Quick test_e6;
      Alcotest.test_case "E7 sgx attack (small)" `Slow test_e7_small;
      Alcotest.test_case "E9 control flow" `Slow test_e9;
      Alcotest.test_case "E11 fingerprint (small)" `Slow test_e11_small;
      Alcotest.test_case "E12 aes" `Quick test_e12;
      Alcotest.test_case "E13 memcpy" `Quick test_e13;
      Alcotest.test_case "E14 mitigation" `Slow test_e14;
      Alcotest.test_case "E15 timer stepping (small)" `Slow test_e15_small;
      Alcotest.test_case "E16 tool comparison" `Slow test_e16;
      Alcotest.test_case "E17 lzw sgx (small)" `Slow test_e17_small;
      Alcotest.test_case "E18 zlib sgx (small)" `Slow test_e18_small;
      Alcotest.test_case "E19 memcomp oracle" `Slow test_e19;
    ] )
