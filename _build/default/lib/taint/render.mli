(** Rendering of per-bit taint in TaintChannel's report format.

    Reproduces the ASCII-art layout of the paper's Figs. 2–4: one row per
    taint tag with an [x] in every bit column that carries the tag, and a
    footer row of bit indices, most significant on the left. *)

val hex_bytes_le : Tval.t -> string
(** The value as space-separated little-endian bytes, the way TaintChannel
    prints register contents ("10 b7 43 d6 43 7f 00 00"). *)

val bit_grid : ?bits:int -> Tval.t -> string
(** [bit_grid ~bits v] is the taint grid over the low [bits] bit positions
    (default: the smallest multiple of 8 covering every tainted bit, at
    least 16).  Returns the empty string when [v] is untainted. *)

val operand_line : name:string -> Tval.t -> string
(** One register line: ["rdx = 10 b7 ... (tainted)"] followed by the bit
    grid on subsequent lines when taint is present. *)
