test/test_sgx.ml: Alcotest Enclave List Page_table Zipchannel_cache Zipchannel_sgx Zipchannel_trace
