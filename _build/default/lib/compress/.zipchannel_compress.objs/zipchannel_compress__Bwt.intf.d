lib/compress/bwt.mli:
