(** Leak audit plane: per-frame leakage telemetry for the streaming
    compressors.

    The frame layer makes per-frame compressed lengths and flush timing
    visible on the wire — exactly the observable a CRIME/BREACH-style
    adversary uses.  {!Zipchannel_obs.Obs} measures {e performance};
    this module measures {e leakage}: one structured {!record} per
    emitted frame (lengths, length delta against a per-stream rolling
    baseline, encode wall time, flush/trailer markers), collected in
    bounded per-domain ring buffers and optionally streamed to a JSONL
    audit sink, with online estimators quantifying — live, in bits per
    frame — how much the length side channel gives away.

    Like Obs, the whole plane is strictly side-band: compressed output
    is byte-identical with auditing on or off, at any [jobs], and every
    entry point is one atomic load when disabled. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Turn frame auditing on or off (default: off).  Orthogonal to
    [Obs.set_enabled]: the [leak.*] Obs metrics the plane feeds are
    additionally gated on Obs being enabled, records and sinks are
    not. *)

(** {1 Audit records} *)

type tag = Data | Flush | Trailer

val tag_name : tag -> string
(** ["data"], ["flush"], ["trailer"]. *)

type record = {
  stream : int;  (** process-unique stream id, from {!Stream.create} *)
  seq : int;  (** frame index within the stream *)
  tag : tag;
  codec : string;
  ulen : int;  (** plaintext bytes in this frame *)
  clen : int;  (** compressed payload bytes — the on-wire observable *)
  delta : int;
      (** [clen] minus the stream's rolling baseline (an EWMA over the
          preceding data frames' [clen]); 0 on the first data frame *)
  bucket : int;
      (** attacker-controlled-prefix bucket of the stream ({!prefix_bucket}
          of its first plaintext bytes, or a caller-supplied key); [-1]
          when not yet known *)
  enc_ns : int;  (** wall time of this frame's compress call *)
  ts_ns : int;  (** monotonic timestamp at record creation *)
}

val jsonl_of_record : record -> string
(** One JSON object, [{"t": "frame", ...}], no trailing newline. *)

val prefix_bucket : ?n:int -> bytes -> len:int -> int
(** FNV-1a hash of the first [min 16 len] bytes, folded into [n]
    buckets (default {!n_prefix_buckets}).  This is the default
    per-stream key for the conditional estimators: two streams whose
    attacker-controlled prefixes differ land in different buckets with
    high probability. *)

val n_prefix_buckets : int
(** 64. *)

(** {1 Sinks and the ring} *)

type sink =
  | Null
  | Jsonl of out_channel  (** one line per record, flushed *)
  | Custom of (record -> unit)
      (** called under the emission lock; must not re-enter this
          module's recording entry points *)

val set_sink : sink -> unit
val sink : unit -> sink

val set_ring_capacity : int -> unit
(** Per-domain-shard ring capacity (default 1024 records per shard;
    16 shards).  Resizing clears the rings. *)

val ring_records : unit -> record list
(** Everything currently held in the rings, merged across shards and
    sorted by [(stream, seq, tag)] — the sequence order of each stream,
    regardless of which domain recorded which frame. *)

val ring_clear : unit -> unit

val evicted : unit -> int
(** Records overwritten by ring wrap-around since the last
    {!ring_clear}. *)

(** {1 Per-stream tracking} *)

(** One audited frame stream: owns the rolling [clen] baseline and the
    prefix bucket.  Created by {!Zipchannel_compress.Frame} once per
    encoder / pipelined stream when auditing is enabled. *)
module Stream : sig
  type t

  val create : ?bucket:int -> codec:string -> unit -> t
  (** [bucket] pre-keys the stream (e.g. the chunk oracle's candidate
      index); without it the first {!note_prefix} decides. *)

  val id : t -> int

  val note_prefix : t -> bytes -> len:int -> unit
  (** Derive the stream's bucket from its first plaintext bytes via
      {!prefix_bucket}, if no bucket is set yet.  No-op afterwards. *)

  val bucket : t -> int

  val on_frame : t -> seq:int -> tag:tag -> ulen:int -> clen:int -> enc_ns:int -> unit
  (** Record one emitted frame: computes the baseline delta, appends
      the record to the ring and the sink, feeds the [leak.audit.*]
      Obs metrics and the global estimator.  Callers must deliver
      frames of one stream in sequence order (the frame pipeline's
      in-order [consume] guarantees this even with reordering
      workers). *)
end

(** {1 Online estimators} *)

(** Conditional length-delta histograms keyed by an
    attacker-controlled-prefix bucket, with an incremental mutual-
    information / channel-capacity estimate in bits per frame.

    The model: each observation is one frame; the input symbol is the
    bucket (what the attacker chose), the output symbol is the observed
    length delta (binned, clamped to [±delta_range]).  The conditional
    histograms are the per-bucket delta distributions; mutual
    information uses the empirical input prior, and {!capacity_bits}
    maximises over input priors with Blahut–Arimoto — an estimate of
    the best rate, in bits per observed frame, an adversary could
    extract from this length channel. *)
module Estimator : sig
  type t

  val create : ?buckets:int -> ?delta_range:int -> unit -> t
  (** [buckets] input symbols (default {!n_prefix_buckets}); deltas are
      binned into [2 * delta_range + 1] bins (default range 32),
      clamping outliers into the end bins.  Thread-safe. *)

  val observe : t -> bucket:int -> delta:int -> unit

  val observations : t -> int

  val cond_histogram : t -> bucket:int -> (int * int) list
  (** [(delta_bin_value, count)] pairs with non-zero count, sorted by
      delta; bin values are clamped deltas. *)

  val delta_entropy_bits : t -> float
  (** Entropy of the marginal delta distribution. *)

  val mutual_information_bits : t -> float
  (** Plug-in I(bucket; delta) under the empirical bucket prior. *)

  val capacity_bits : t -> float
  (** Channel capacity of the empirical conditional distributions
      (Blahut–Arimoto, 60 iterations): bits per frame.  0 with fewer
      than two observed buckets. *)

  val clear : t -> unit
end

val global_estimator : Estimator.t
(** Fed by {!Stream.on_frame} for every data frame of a bucketed
    stream.  Its capacity estimate is republished to the
    [leak.capacity_bits_per_frame] / [leak.delta_entropy_bits] gauges
    every few frames, so a live scrape of a `zc serve --audit` daemon
    sees the channel-capacity estimate move as requests arrive. *)

val publish_estimate : unit -> unit
(** Recompute {!global_estimator}'s capacity and entropy and set the
    gauges now (also done automatically every few frames). *)

(** {1 Request-level telemetry (the daemon)} *)

type request_record = {
  conn : int;  (** connection ordinal *)
  op : string;  (** ["compress"] / ["decompress"] *)
  req_codec : string;
  frame_size : int;
  req_bytes : int;
  resp_bytes : int;
  frames : int;  (** audited frames this request emitted *)
  req_bucket : int;  (** prefix bucket of the request payload *)
  wall_ns : int;
  ts_ns : int;  (** monotonic timestamp at request completion *)
  status : string;  (** ["ok"] or a short error class *)
}

val jsonl_of_request : request_record -> string
(** One JSON object, [{"t": "request", ...}], no trailing newline. *)

val record_request : request_record -> unit
(** Write the record to the sink and feed the [leak.request*] Obs
    metrics.  No-op while disabled. *)
