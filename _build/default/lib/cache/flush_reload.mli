(** The Flush+Reload attack primitive (Yarom & Falkner).

    Requires a line shared between attacker and victim (e.g. code of a
    shared library such as libbz2).  [flush] evicts it; after the victim
    has had a chance to run, [reload] times a load of the line: a short
    latency means the victim touched it in between.  The reload itself
    re-caches the line, so each round ends with [flush] again. *)

type t

val create :
  ?timing:Timing.t -> cache:Cache.t -> prng:Zipchannel_util.Prng.t -> unit -> t

val flush : t -> int -> unit

val reload : t -> int -> bool
(** Timed reload: [true] when classified as a hit.  Subject to the timing
    model's false positives/negatives.  Leaves the line cached. *)

val round : t -> int -> bool
(** [reload] then [flush]: one monitoring round on one address. *)
