open Zipchannel_util

type layer = {
  weights : float array array; (* out x in *)
  biases : float array;
  w_vel : float array array; (* momentum buffers *)
  b_vel : float array;
}

(* Scratch buffers for the forward/backward passes, allocated once at
   [create]: [acts.(l)] holds layer [l]'s post-activation ([acts.(0)] is
   repointed at the current input), [deltas.(l)] the gradient flowing
   into layer [l].  Training a sample therefore allocates nothing; the
   arithmetic (and so the trained weights) is bit-identical to the
   allocate-per-sample version.  One [t] must not run forward passes on
   two domains at once. *)
type t = {
  layers : layer array;
  prng : Prng.t;
  acts : float array array;
  deltas : float array array;
}

let create ?(seed = 0x5EED) ~layers () =
  (match layers with
  | _ :: _ :: _ -> ()
  | _ -> invalid_arg "Mlp.create: need at least input and output sizes");
  List.iter (fun d -> if d <= 0 then invalid_arg "Mlp.create: layer size") layers;
  let prng = Prng.create ~seed () in
  let rec build = function
    | d_in :: (d_out :: _ as rest) ->
        (* He initialisation: N(0, sqrt(2/fan_in)). *)
        let std = sqrt (2.0 /. float_of_int d_in) in
        let layer =
          {
            weights =
              Array.init d_out (fun _ ->
                  Array.init d_in (fun _ ->
                      Prng.gaussian prng ~mean:0.0 ~stddev:std));
            biases = Array.make d_out 0.0;
            w_vel = Array.make_matrix d_out d_in 0.0;
            b_vel = Array.make d_out 0.0;
          }
        in
        layer :: build rest
    | [ _ ] | [] -> []
  in
  let sizes = Array.of_list layers in
  let n = Array.length sizes - 1 in
  {
    layers = Array.of_list (build layers);
    prng;
    acts =
      Array.init (n + 1) (fun l -> if l = 0 then [||] else Array.make sizes.(l) 0.0);
    deltas =
      Array.init (n + 1) (fun l -> if l = 0 then [||] else Array.make sizes.(l) 0.0);
  }

let n_inputs t = Array.length t.layers.(0).weights.(0)

let n_classes t =
  Array.length t.layers.(Array.length t.layers - 1).biases

let affine_into layer x out =
  Array.iteri
    (fun o row ->
      let acc = ref layer.biases.(o) in
      Array.iteri (fun i w -> acc := !acc +. (w *. x.(i))) row;
      out.(o) <- !acc)
    layer.weights

let relu_in_place v =
  for i = 0 to Array.length v - 1 do
    if not (v.(i) > 0.0) then v.(i) <- 0.0
  done

let softmax_in_place v =
  let m = Array.fold_left Float.max neg_infinity v in
  for i = 0 to Array.length v - 1 do
    v.(i) <- exp (v.(i) -. m)
  done;
  let s = Array.fold_left ( +. ) 0.0 v in
  for i = 0 to Array.length v - 1 do
    v.(i) <- v.(i) /. s
  done

(* Forward pass keeping every layer's post-activation (in the scratch
   buffers), for backprop. *)
let forward_acts t x =
  let n = Array.length t.layers in
  t.acts.(0) <- x;
  for l = 0 to n - 1 do
    let out = t.acts.(l + 1) in
    affine_into t.layers.(l) t.acts.(l) out;
    if l = n - 1 then softmax_in_place out else relu_in_place out
  done;
  t.acts

let forward t x =
  if Array.length x <> n_inputs t then invalid_arg "Mlp.forward: input size";
  (* Copied out of the scratch so callers may keep the probabilities. *)
  Array.copy (forward_acts t x).(Array.length t.layers)

let predict t x =
  let p = forward t x in
  let best = ref 0 in
  Array.iteri (fun i v -> if v > p.(!best) then best := i) p;
  !best

let loss t ~x ~y =
  let n = Array.length x in
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iteri
      (fun i xi ->
        let p = forward t xi in
        acc := !acc -. log (Float.max 1e-12 p.(y.(i))))
      x;
    !acc /. float_of_int n
  end

let accuracy t ~x ~y =
  let n = Array.length x in
  if n = 0 then 0.0
  else begin
    let ok = ref 0 in
    Array.iteri (fun i xi -> if predict t xi = y.(i) then incr ok) x;
    float_of_int !ok /. float_of_int n
  end

let train_sample t ~learning_rate ~momentum x label =
  let n = Array.length t.layers in
  let acts = forward_acts t x in
  (* Output delta for softmax + cross-entropy: p - onehot. *)
  let out_delta = t.deltas.(n) in
  Array.blit acts.(n) 0 out_delta 0 (Array.length out_delta);
  out_delta.(label) <- out_delta.(label) -. 1.0;
  for l = n - 1 downto 0 do
    let layer = t.layers.(l) in
    let input = acts.(l) in
    let d = t.deltas.(l + 1) in
    (* Propagate before updating the weights. *)
    if l > 0 then begin
      let nd = t.deltas.(l) in
      let d_in = Array.length nd in
      Array.fill nd 0 d_in 0.0;
      for o = 0 to Array.length d - 1 do
        let row = layer.weights.(o) in
        let dv = d.(o) in
        for i = 0 to d_in - 1 do
          nd.(i) <- nd.(i) +. (row.(i) *. dv)
        done
      done;
      (* ReLU derivative at the previous activation. *)
      for i = 0 to d_in - 1 do
        if not (input.(i) > 0.0) then nd.(i) <- 0.0
      done
    end;
    for o = 0 to Array.length d - 1 do
      let row = layer.weights.(o) and vel = layer.w_vel.(o) in
      let dv = d.(o) in
      for i = 0 to Array.length row - 1 do
        vel.(i) <- (momentum *. vel.(i)) -. (learning_rate *. dv *. input.(i));
        row.(i) <- row.(i) +. vel.(i)
      done;
      layer.b_vel.(o) <- (momentum *. layer.b_vel.(o)) -. (learning_rate *. dv);
      layer.biases.(o) <- layer.biases.(o) +. layer.b_vel.(o)
    done
  done

module Obs = Zipchannel_obs.Obs

let m_epochs = Obs.Metrics.counter "classifier.epochs"
let m_samples = Obs.Metrics.counter "classifier.samples"
let g_epoch_loss = Obs.Metrics.gauge "classifier.epoch_loss"

let train ?(epochs = 30) ?(learning_rate = 0.01) ?(momentum = 0.9) t ~x ~y =
  if Array.length x <> Array.length y then invalid_arg "Mlp.train: sizes";
  Obs.with_span "mlp.train"
    ~attrs:
      [
        ("epochs", string_of_int epochs);
        ("samples", string_of_int (Array.length x));
      ]
  @@ fun () ->
  let progress = Obs.Progress.create ~total:epochs ~label:"mlp.train" () in
  let order = Array.init (Array.length x) (fun i -> i) in
  for _ = 1 to epochs do
    Prng.shuffle t.prng order;
    Array.iter
      (fun i -> train_sample t ~learning_rate ~momentum x.(i) y.(i))
      order;
    Obs.Metrics.incr m_epochs;
    Obs.Metrics.add m_samples (Array.length x);
    (* [loss] only runs forward passes (no PRNG draws), so sampling it
       for telemetry cannot perturb the trained weights. *)
    if Obs.enabled () then Obs.Metrics.set_gauge g_epoch_loss (loss t ~x ~y);
    Obs.Progress.step progress
  done;
  Obs.Progress.finish progress
