lib/sgx/page_table.ml: Hashtbl List
