(** Move-to-front transform over the byte alphabet.

    The stage between BWT and the zero-run encoder in the Bzip2 pipeline:
    each byte is replaced by its current position in a recency list, and
    the byte moves to the front. *)

val encode : bytes -> int array
(** Output values are in 0..255. *)

val encode_sub :
  ?arena:Zipchannel_buf.Arena.t -> bytes -> off:int -> len:int -> int array
(** {!encode} of [Bytes.sub input off len] without materializing the
    slice.  With [arena] the result is the arena's int slot 7: logical
    length [len], physical possibly longer, overwritten by the next
    encode using the same arena. *)

val decode_result : int array -> (bytes, Codec_error.t) result
(** Safe decoder: a symbol outside 0..255 is an [Error] whose offset is
    the index of the offending symbol. *)

val decode : int array -> bytes
(** @raise Invalid_argument on values outside 0..255. *)
