(** OTLP/JSON exporters: metric snapshots become an
    [ExportMetricsServiceRequest] (counters as monotonic cumulative sums,
    gauges as double gauges, log2 histograms as scale-0 exponential
    histograms), span streams become an [ExportTraceServiceRequest] with
    parent links reconstructed by per-domain stack replay.

    64-bit integers are emitted as strings and ids as lowercase hex, per
    the protocol's canonical JSON encoding.  All ids are deterministic
    functions of the input, so exports are byte-stable for golden
    testing. *)

val metrics_request :
  ?time_unix_nano:int -> Zipchannel_obs.Obs.Metrics.snapshot -> Json.t
(** [time_unix_nano] stamps every data point (default 0: the snapshots
    carry monotonic — not wall-clock — time, so callers that want real
    timestamps must supply one). *)

val trace_request : Zipchannel_obs.Obs.Trace.span_event list -> Json.t
(** Spans get ids from begin-event order ([%016x]); the trace id is an
    FNV-1a hash of the stream's names and timestamps. *)

val collector :
  unit -> Zipchannel_obs.Obs.Trace.sink * (unit -> Json.t)
(** [collector ()] is a [(sink, drain)] pair: install the sink with
    {!Zipchannel_obs.Obs.Trace.set_sink} to accumulate span events
    in memory, then call [drain] — after tracing is disabled — to get
    the OTLP trace request for everything collected. *)
