test/str_search.ml: String
