(* Decoder robustness: every decompressor must reject arbitrary garbage
   with its documented exception — never crash, hang, or succeed with
   out-of-spec output.  Also mutation tests: valid streams with one
   flipped byte must decode to the original, fail cleanly, or (for
   formats without integrity checks) decode to *something* without
   crashing.

   Since the structured-error hardening, [Out_of_bits] escaping a public
   decode API is itself a bug: the accepted exceptions here are exactly
   the documented ones ([Failure], [Invalid_argument],
   [Container.Corrupt]) and nothing else. *)

open Zipchannel_util
open Zipchannel_compress

let prng () = Prng.create ~seed:0x0B057 ()

let never_crashes name f =
  QCheck.Test.make ~name ~count:300
    QCheck.(string_of_size QCheck.Gen.(0 -- 400))
    (fun s ->
      match f (Bytes.of_string s) with
      | (_ : bytes) -> true
      | exception Failure _ -> true
      | exception Invalid_argument _ -> true
      | exception Container.Corrupt _ -> true)

let qcheck_bzip2_garbage = never_crashes "bzip2 decompress survives garbage" Bzip2.decompress

let qcheck_lzw_garbage = never_crashes "lzw decompress survives garbage" Lzw.decompress

let qcheck_huffman_garbage = never_crashes "huffman decode survives garbage" Huffman.decode

let qcheck_deflate_garbage = never_crashes "deflate decompress survives garbage" Deflate.decompress

let qcheck_inflate_garbage = never_crashes "rfc1951 inflate survives garbage" Rfc1951.inflate

let qcheck_zlib_garbage = never_crashes "zlib decompress survives garbage" Rfc1951.Zlib.decompress

let qcheck_gzip_garbage = never_crashes "gzip decompress survives garbage" Rfc1951.Gzip.decompress

let qcheck_stream_garbage = never_crashes "stream unpack survives garbage" Container.Stream.unpack

let qcheck_archive_garbage = never_crashes "archive unpack survives garbage"
    (fun b -> Bytes.concat Bytes.empty (List.map (fun e -> e.Container.Archive.data) (Container.Archive.unpack b)))

let qcheck_rle1_garbage = never_crashes "rle1 decode survives garbage" Rle1.decode

(* Mutation testing: flip one byte of a valid stream. *)
let mutate t data =
  if Bytes.length data = 0 then data
  else begin
    let b = Bytes.copy data in
    let pos = Prng.int t (Bytes.length b) in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 + Prng.int t 255)));
    b
  end

let mutation_survives name compress decompress =
  let t = prng () in
  fun () ->
    for _ = 1 to 60 do
      let plain = Prng.bytes t (16 + Prng.int t 500) in
      let packed = mutate t (compress plain) in
      match decompress packed with
      | (_ : bytes) -> ()
      | exception Failure _ -> ()
      | exception Invalid_argument _ -> ()
      | exception Container.Corrupt _ -> ()
      | exception e ->
          Alcotest.failf "%s: unexpected exception %s" name (Printexc.to_string e)
    done

let checked_formats_reject_mutations () =
  (* Formats with checksums must never silently return wrong data. *)
  let t = prng () in
  let run name compress decompress =
    for _ = 1 to 60 do
      let plain = Prng.bytes t (16 + Prng.int t 400) in
      let packed = compress plain in
      let damaged = mutate t packed in
      if not (Bytes.equal damaged packed) then
        match decompress damaged with
        | out ->
            if not (Bytes.equal out plain) then
              Alcotest.failf "%s: silent corruption" name
        | exception _ -> ()
    done
  in
  run "gzip" (fun b -> Rfc1951.Gzip.compress b) Rfc1951.Gzip.decompress;
  run "zlib" (fun b -> Rfc1951.Zlib.compress b) Rfc1951.Zlib.decompress;
  run "stream" Container.Stream.pack Container.Stream.unpack

let suite =
  ( "robustness",
    [
      QCheck_alcotest.to_alcotest qcheck_bzip2_garbage;
      QCheck_alcotest.to_alcotest qcheck_lzw_garbage;
      QCheck_alcotest.to_alcotest qcheck_huffman_garbage;
      QCheck_alcotest.to_alcotest qcheck_deflate_garbage;
      QCheck_alcotest.to_alcotest qcheck_inflate_garbage;
      QCheck_alcotest.to_alcotest qcheck_zlib_garbage;
      QCheck_alcotest.to_alcotest qcheck_gzip_garbage;
      QCheck_alcotest.to_alcotest qcheck_stream_garbage;
      QCheck_alcotest.to_alcotest qcheck_archive_garbage;
      QCheck_alcotest.to_alcotest qcheck_rle1_garbage;
      Alcotest.test_case "bzip2 mutations" `Quick
        (mutation_survives "bzip2" (fun b -> Bzip2.compress b) Bzip2.decompress);
      Alcotest.test_case "lzw mutations" `Quick
        (mutation_survives "lzw" Lzw.compress Lzw.decompress);
      Alcotest.test_case "inflate mutations" `Quick
        (mutation_survives "rfc1951" (fun b -> Rfc1951.deflate b) Rfc1951.inflate);
      Alcotest.test_case "checked formats reject mutations" `Quick
        checked_formats_reject_mutations;
    ] )
