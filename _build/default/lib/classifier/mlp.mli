(** A small multi-layer perceptron.

    Stand-in for the paper's PyTorch DNN (Section VI): dense layers with
    ReLU hidden activations, a softmax output, cross-entropy loss, and
    SGD with momentum.  Everything is deterministic given the seed, so
    the confusion matrices of Figs. 7/8 are reproducible. *)

type t

val create : ?seed:int -> layers:int list -> unit -> t
(** [create ~layers:\[d_in; h1; ...; n_classes\]] with He-initialised
    weights.  @raise Invalid_argument with fewer than two layer sizes or a
    non-positive size. *)

val n_inputs : t -> int

val n_classes : t -> int

val forward : t -> float array -> float array
(** Class probabilities (softmax), summing to 1.
    @raise Invalid_argument on a wrong input size. *)

val predict : t -> float array -> int
(** Argmax class. *)

val loss : t -> x:float array array -> y:int array -> float
(** Mean cross-entropy over a dataset. *)

val accuracy : t -> x:float array array -> y:int array -> float

val train :
  ?epochs:int ->
  ?learning_rate:float ->
  ?momentum:float ->
  t ->
  x:float array array ->
  y:int array ->
  unit
(** In-place SGD (per-sample updates, deterministic shuffling).  Defaults:
    30 epochs, lr 0.01, momentum 0.9. *)
