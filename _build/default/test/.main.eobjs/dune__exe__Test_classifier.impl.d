test/test_classifier.ml: Alcotest Array Dataset List Mlp Prng QCheck QCheck_alcotest Zipchannel_classifier Zipchannel_util
