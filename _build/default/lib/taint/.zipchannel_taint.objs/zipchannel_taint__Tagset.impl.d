lib/taint/tagset.ml: Format Int List Set
