(** Configuration shared by the enclave attacks (Section V).

    Both end-to-end controlled-channel attacks ({!Sgx_attack} on Bzip2,
    {!Lzw_sgx_attack} on Ncompress) drive the same {!Page_channel} with
    this configuration; the two technique toggles exist for the E8
    ablations. *)

type t = {
  use_cat : bool;  (** Intel CAT as an offensive tool (Section V-C1) *)
  use_frame_selection : bool;  (** Section V-C2 *)
  frame_candidates : int;  (** remap attempts before the paper's timeout *)
  background_noise : bool;  (** other-core LLC traffic present *)
  cache_config : Zipchannel_cache.Cache.config;
  timing : Zipchannel_cache.Timing.t;
  noise_config : Noise.config;
  seed : int;
}

val default : t
(** Both techniques on, background noise on, default cache, quiesced-core
    timing. *)
