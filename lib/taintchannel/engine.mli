(** The TaintChannel instrumentation engine.

    The DynamoRIO tool of the paper attaches to a binary and, per executed
    instruction, propagates per-bit taint from the input and checks
    dereferenced addresses for taint (the decision tree of Fig. 1).  Here
    the "binary" is an OCaml reimplementation of the target's gadget loop,
    expressed against this engine: every arithmetic step is a {!Tval}
    operation, and every load/store passes through {!load}/{!store}, where
    tainted addresses are detected and aggregated into {!Gadget.t}s.

    Control flow never propagates taint (the paper's rule against
    over-tainting); instead {!branch} records control-flow events so that
    traces of different inputs can be diffed ({!Trace_diff}), which is how
    the paper finds control-flow gadgets such as
    mainSort/fallbackSort and memcpy's AVX tail. *)

open Zipchannel_taint

type t

val create : ?log_limit:int -> name:string -> bytes -> t
(** [create ~name input] starts an analysis of [input] (the file under
    compression).  [log_limit] caps the retained instruction log (default
    100_000); counting continues beyond it. *)

val name : t -> string

val input_length : t -> int

val input_byte : t -> int -> Tval.t
(** [input_byte t i] reads input byte [i] (0-based) as a fully tainted
    value with tag [i + 1] — TaintChannel numbers input bytes from 1.
    @raise Invalid_argument out of range. *)

val stage_input : t -> base:int -> unit
(** Model the [read] system call: store every input byte, tainted with its
    tag, into memory at [base + i].  Subsequent loads from that region
    return the tainted bytes, as in the tool's whole-program view. *)

val log_op : t -> location:string -> mnemonic:string ->
  operands:(string * Tval.t) list -> unit
(** Record a register-to-register instruction in the log. *)

val load : t -> location:string -> mnemonic:string ->
  ?index:string * Tval.t -> addr:Tval.t -> size:int -> unit -> Tval.t
(** Perform a load: returns the value last stored at that concrete
    address (untainted zero for untouched memory).  A tainted [addr]
    records a {!Gadget.t} occurrence.  [index] names the register holding
    the array index, used for the report's taint grid (the paper renders
    rcx/rdx rather than the full effective address). *)

val store : t -> location:string -> mnemonic:string ->
  ?index:string * Tval.t -> addr:Tval.t -> size:int -> value:Tval.t ->
  unit -> unit
(** Perform a store; tainted [addr] records a gadget occurrence. *)

val branch : t -> location:string -> string -> unit
(** Record a control-flow event (function entry, branch direction). *)

val instruction_count : t -> int

val gadgets : t -> Gadget.t list
(** Detected gadgets, ordered by first occurrence. *)

val code_addr_base : int
(** Simulated instruction addresses come from a per-engine registry:
    the first distinct report location an engine sees gets this base,
    each subsequent one the next [code_addr_stride]-spaced slot.
    Deterministic per engine, collision-free by construction, and stable
    across runs and OCaml versions (the old scheme hashed the location
    string with [Hashtbl.hash], which both collides and varies). *)

val code_addr_stride : int

val control_trace : t -> string list
(** Control-flow events in execution order. *)

val address_trace : t -> (string * int) list
(** Every logged memory access as (location, concrete address), in
    execution order — the raw material of trace-based detection tools
    ({!Trace_correlate}).  Subject to the engine's [log_limit]. *)

val trace_arrays : t -> string array * int array * int
(** Borrowed view of the same log as [(locations, addresses, len)]: only
    the first [len] entries are live, the arrays are the engine's own
    buffers (treat as read-only; further execution may grow or replace
    them).  Lets bulk consumers scan the log without materialising
    {!address_trace}'s per-entry pairs. *)

type stats = {
  instructions : int;
  tlb_hits : int;  (** shadow accesses served by the single-entry TLB *)
  tlb_misses : int;  (** shadow accesses that walked the page directory *)
  shadow_pages : int;  (** 4 KiB shadow pages faulted in *)
  gadget_locations : int;
  gadget_hits : int;  (** total tainted-address occurrences *)
}

val stats : t -> stats
(** Engine-local telemetry counters, maintained unconditionally (plain
    increments, well below the cost of a shadow access). *)

val observe_metrics : t -> unit
(** Publish {!stats} into {!Zipchannel_obs.Obs.Metrics} under the
    [taint.*] namespace (including the derived [taint.tlb_hit_rate]
    gauge).  No-op while Obs is disabled. *)

val report : Format.formatter -> t -> unit
(** The full TaintChannel report: every gadget in Fig. 2 format plus a
    per-gadget input-coverage summary. *)
