module Obs = Zipchannel_obs.Obs

(* LZ4 block format: a stream of sequences, each a token byte (literal
   length in the high nibble, match length - 4 in the low nibble, 15
   meaning "read 255-run extension bytes"), the literal bytes, a 2-byte
   little-endian match offset, and the match-length extension bytes.  The
   block ends with a literals-only sequence.  This container prefixes the
   block with the decompressed length as a 4-byte little-endian word, the
   same out-of-band length every real LZ4 framing carries. *)

let header_len = 4
let min_match = 4
let max_offset = 0xffff

(* The reference implementation's match finder: a 2^12-slot table of
   positions indexed by a multiplicative hash of the next 4 bytes.  The
   hash input is raw attacker/victim data and the table index feeds
   straight into a load and a store — the same "value used as address"
   shape as zlib's UPDATE_HASH head probe (Clueless's leakage class). *)
let hash_bits = 12
let hash_size = 1 lsl hash_bits
let hash_const = 2654435761 (* LZ4's 32-bit Knuth multiplier *)

let hash_of_quad v = ((v * hash_const) land 0xffffffff) lsr (32 - hash_bits)

let quad b i =
  Char.code (Bytes.unsafe_get b i)
  lor (Char.code (Bytes.unsafe_get b (i + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get b (i + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get b (i + 3)) lsl 24)

let m_bytes_in = Obs.Metrics.counter "kernel.lz4.bytes_in"
let m_bytes_out = Obs.Metrics.counter "kernel.lz4.bytes_out"
let m_probes = Obs.Metrics.counter "kernel.lz4.htab_probes"

(* Encoder spec margins: a match may not start within the last 12 bytes
   and must leave the last 5 bytes as literals. *)
let mf_limit = 12
let last_literals = 5

let put_byte buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let put_run_extension buf len =
  let rest = ref len in
  while !rest >= 255 do
    put_byte buf 255;
    rest := !rest - 255
  done;
  put_byte buf !rest

let emit_sequence buf src ~anchor ~lit_len ~offset ~match_len =
  let lit_nibble = if lit_len >= 15 then 15 else lit_len in
  match match_len with
  | None ->
      (* final literals-only sequence: no offset, match nibble 0 *)
      put_byte buf (lit_nibble lsl 4);
      if lit_len >= 15 then put_run_extension buf (lit_len - 15);
      Buffer.add_subbytes buf src anchor lit_len
  | Some mlen ->
      let m = mlen - min_match in
      let match_nibble = if m >= 15 then 15 else m in
      put_byte buf ((lit_nibble lsl 4) lor match_nibble);
      if lit_len >= 15 then put_run_extension buf (lit_len - 15);
      Buffer.add_subbytes buf src anchor lit_len;
      put_byte buf (offset land 0xff);
      put_byte buf (offset lsr 8);
      if m >= 15 then put_run_extension buf (m - 15)

let compress src =
  Obs.with_span "lz4.compress"
  @@ fun _ ->
  let n = Bytes.length src in
  let buf = Buffer.create (header_len + n + (n / 128) + 16) in
  put_byte buf (n land 0xff);
  put_byte buf ((n lsr 8) land 0xff);
  put_byte buf ((n lsr 16) land 0xff);
  put_byte buf ((n lsr 24) land 0xff);
  let probes = ref 0 in
  if n > 0 then begin
    let table = Array.make hash_size (-1) in
    let anchor = ref 0 in
    let i = ref 0 in
    let scan_limit = n - mf_limit in
    while !i < scan_limit do
      let h = hash_of_quad (quad src !i) in
      let candidate = table.(h) in
      incr probes;
      table.(h) <- !i;
      if
        candidate >= 0
        && !i - candidate <= max_offset
        && quad src candidate = quad src !i
      then begin
        (* extend the match, leaving the spec's literal tail *)
        let limit = n - last_literals in
        let len = ref min_match in
        while
          !i + !len < limit
          && Bytes.unsafe_get src (candidate + !len)
             = Bytes.unsafe_get src (!i + !len)
        do
          incr len
        done;
        emit_sequence buf src ~anchor:!anchor ~lit_len:(!i - !anchor)
          ~offset:(!i - candidate) ~match_len:(Some !len);
        i := !i + !len;
        anchor := !i
      end
      else incr i
    done;
    emit_sequence buf src ~anchor:!anchor ~lit_len:(n - !anchor) ~offset:0
      ~match_len:None
  end;
  let out = Buffer.to_bytes buf in
  Obs.Metrics.add m_bytes_in n;
  Obs.Metrics.add m_bytes_out (Bytes.length out);
  if Obs.enabled () then Obs.Metrics.add m_probes !probes;
  out

(* Decompression-bomb guard: every byte of payload can contribute at most
   255 output bytes (a match-length extension byte of 255), so a declared
   length beyond [255 * payload + 64] cannot be honest.  Checked before
   the output buffer is allocated; saturates instead of overflowing. *)
let max_declared_length ~payload_bytes =
  if payload_bytes > (max_int - 64) / 255 then max_int
  else (255 * payload_bytes) + 64

let decompress_result data =
  let len = Bytes.length data in
  let pos = ref 0 in
  Codec_error.protect ~codec:"lz4" ~offset:(fun () -> !pos)
  @@ fun () ->
  let byte () =
    if !pos >= len then failwith "Lz4.decompress: truncated input";
    let v = Char.code (Bytes.unsafe_get data !pos) in
    incr pos;
    v
  in
  if len < header_len then failwith "Lz4.decompress: truncated input";
  (* explicit lets: operand evaluation order of [lor] is unspecified *)
  let b0 = byte () in
  let b1 = byte () in
  let b2 = byte () in
  let b3 = byte () in
  let n = b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24) in
  if n > max_declared_length ~payload_bytes:(len - header_len) then
    failwith "Lz4.decompress: declared length exceeds what the input can encode";
  let out = Bytes.create n in
  let op = ref 0 in
  (* a 255-run length extension, bounded by what [out] can still hold so
     a forged run cannot drive the accumulator anywhere near overflow *)
  let run_extension base =
    let run = ref base in
    let continue = ref (base = 15) in
    while !continue do
      let v = byte () in
      run := !run + v;
      if !run > n - !op + min_match then
        failwith "Lz4.decompress: run length exceeds declared length";
      if v < 255 then continue := false
    done;
    !run
  in
  while !op < n do
    let token = byte () in
    let lit_len = run_extension (token lsr 4) in
    if lit_len > n - !op then
      failwith "Lz4.decompress: literal run exceeds declared length";
    if !pos + lit_len > len then failwith "Lz4.decompress: truncated input";
    Bytes.blit data !pos out !op lit_len;
    pos := !pos + lit_len;
    op := !op + lit_len;
    if !op < n then begin
      let lo = byte () in
      let offset = lo lor (byte () lsl 8) in
      if offset = 0 || offset > !op then
        failwith "Lz4.decompress: invalid match offset";
      let match_len = min_match + run_extension (token land 0xf) in
      if match_len > n - !op then
        failwith "Lz4.decompress: match exceeds declared length";
      (* byte-wise copy: overlapping matches replicate, as the format
         requires *)
      let from = !op - offset in
      for k = 0 to match_len - 1 do
        Bytes.unsafe_set out (!op + k) (Bytes.unsafe_get out (from + k))
      done;
      op := !op + match_len
    end
  done;
  if !pos < len then failwith "Lz4.decompress: trailing bytes after block end";
  out

let decompress data = Codec_error.unwrap (decompress_result data)
