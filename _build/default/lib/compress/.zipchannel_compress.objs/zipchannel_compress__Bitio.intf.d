lib/compress/bitio.mli:
