lib/taintchannel/engine.mli: Format Gadget Tval Zipchannel_taint
