examples/leak_sgx.mli:
