examples/fingerprint_files.mli:
