(** The fuzzing campaign driver.

    A run is a pure function of [(codecs, seed, runs, budget_ms)]:
    each case derives its own PRNG from the seed, the codec name and the
    case index, so cases are independent and the report is identical for
    every [jobs] value (the fan-out goes through
    {!Zipchannel_parallel.Pool.map_array}, which preserves order).

    Every fourth case is a round-trip check on freshly generated
    plaintext; the rest mutate a valid corpus stream and run the
    robustness oracle.  Failing cases are minimized in-worker with the
    same deterministic predicate.

    Reports into [Obs] under [fuzz.*]: [fuzz.cases], [fuzz.accepted],
    [fuzz.rejected], [fuzz.failures] and the [fuzz.case_ns] histogram. *)

val run :
  ?codecs:Codecs.t list ->
  ?seed:int ->
  ?runs:int ->
  ?jobs:int ->
  ?budget_ms:float ->
  ?corpus_size:int ->
  ?minimize:bool ->
  unit ->
  Report.t
(** [run ()] fuzzes [codecs] (default all) with [runs] total cases
    (default 1000) split evenly across them (each codec gets at least
    one).  [budget_ms] (default 1000.) is the per-case work budget;
    [jobs] (default 1) the worker-domain count; [corpus_size]
    (default 32) valid streams per codec; [minimize] (default true)
    shrinks failing inputs. *)

val write_fixtures : dir:string -> Report.t -> string list
(** Write each failure's minimized reproducer under [dir] (created if
    missing) using {!Report.fixture_name}; returns the paths written, in
    report order.  Runs after the parallel phase, in one domain. *)
