open Zipchannel_taint
module Lzw = Zipchannel_compress.Lzw

let htab_base = 0x7f88a0000000

let location = "/path/to/ncompress-5.1!compress+1176"

let input_buf_base = 0x7f889f000000

let run ?(htab_base = htab_base) input =
  let e = Engine.create ~name:"ncompress" input in
  Engine.stage_input e ~base:input_buf_base;
  (* Drive the concrete LZW state with the production encoder and replay
     its probe sequence through the taint engine: the concrete values of
     [ent] come from the code table (untainted counters), the bytes [c]
     from the staged input. *)
  let _, probes = Lzw.compress_with_probes input in
  let pos = ref 0 (* input position of the pending byte c *) in
  let base = Tval.const ~width:48 htab_base in
  List.iter
    (fun p ->
      if p.Lzw.first then begin
        incr pos;
        (* Step 1 of Fig. 3: the byte is read from the input buffer and
           copied across registers. *)
        let c =
          Engine.load e ~location:"compress!input" ~mnemonic:"movzbl (in,i)"
            ~addr:(Tval.const ~width:48 (input_buf_base + !pos))
            ~size:1 ()
        in
        let rsi = Tval.zero_extend ~width:48 c in
        Engine.log_op e ~location:"compress!copy" ~mnemonic:"mov %rax -> %rsi"
          ~operands:[ ("rsi", rsi) ];
        (* Step 2: shl $9. *)
        let shifted = Tval.shift_left rsi 9 in
        Engine.log_op e ~location:"compress!shift" ~mnemonic:"shl $9, %rsi"
          ~operands:[ ("rsi", shifted) ];
        (* Step 3: xor with the dictionary entry in rdx (untainted). *)
        let ent = Tval.const ~width:48 p.Lzw.ent in
        let hp = Tval.logxor shifted ent in
        Engine.log_op e ~location:"compress!mix" ~mnemonic:"xor %rdx, %rsi"
          ~operands:[ ("rsi", hp); ("rdx", ent) ];
        (* Step 4: the probe htab[hp], scaled by 8. *)
        let addr = Tval.add base (Tval.shift_left hp 3) in
        ignore
          (Engine.load e ~location ~mnemonic:"cmp %rdi, (%rbp,%rax,8)"
             ~index:("rax", hp) ~addr ~size:8 ())
      end
      else begin
        (* Secondary probe: hp' = hp - disp with disp = HSIZE - hp, so the
           taint of the original index (the pending byte at bits 9-16)
           flows into the displaced slot through the subtraction's per-bit
           merge.  The concrete slot value comes from the encoder. *)
        let idx =
          Tval.with_taint ~width:48 p.Lzw.hp
            (List.init 8 (fun b -> (b + 9, Tagset.singleton (!pos + 1))))
        in
        let addr = Tval.add base (Tval.shift_left idx 3) in
        ignore
          (Engine.load e ~location:(location ^ " (secondary probe)")
             ~mnemonic:"cmp %rdi, (%rbp,%rax,8)" ~index:("rax", idx) ~addr
             ~size:8 ())
      end)
    probes;
  e
