open Zipchannel_util
open Zipchannel_attack
module Cache = Zipchannel_cache.Cache
module Timing = Zipchannel_cache.Timing
module Page_table = Zipchannel_sgx.Page_table

let quiet_config =
  {
    Attack_config.default with
    Attack_config.timing = Timing.noiseless;
    background_noise = false;
    noise_config =
      { Noise.default_config with Noise.transition_touch_prob = 0.0 };
  }

let make ?(config = quiet_config) () =
  let cache = Cache.create config.Attack_config.cache_config in
  Page_channel.setup_cat ~config cache;
  let page_table = Page_table.create () in
  let prng = Prng.create ~seed:42 () in
  (Page_channel.create ~config ~cache ~page_table ~prng, cache, page_table)

let test_setup_cat_masks () =
  let config = Attack_config.default in
  let cache = Cache.create config.Attack_config.cache_config in
  Page_channel.setup_cat ~config cache;
  Alcotest.(check int) "attacker class pinned to way 0" 1
    (Cache.cat_mask cache ~cos:0);
  Alcotest.(check bool) "background class excludes way 0" true
    (Cache.cat_mask cache ~cos:1 land 1 = 0)

let test_setup_cat_disabled () =
  let config = { Attack_config.default with Attack_config.use_cat = false } in
  let cache = Cache.create config.Attack_config.cache_config in
  Page_channel.setup_cat ~config cache;
  Alcotest.(check int) "all ways"
    ((1 lsl config.Attack_config.cache_config.Cache.ways) - 1)
    (Cache.cat_mask cache ~cos:0)

let test_select_frame_sticky () =
  let ch, _, _ = make () in
  let f1 = Page_channel.select_frame ch ~vpage:0x1234 in
  let f2 = Page_channel.select_frame ch ~vpage:0x1234 in
  Alcotest.(check int) "frame choice is stable" f1 f2;
  let f3 = Page_channel.select_frame ch ~vpage:0x9999 in
  Alcotest.(check bool) "distinct pages get distinct frames" true (f1 <> f3)

let test_select_frame_updates_mapping () =
  let ch, _, pt = make () in
  let vpage = 0x4242 in
  let frame = Page_channel.select_frame ch ~vpage in
  Alcotest.(check int) "page table updated" frame
    (Page_table.frame_of pt ~vpage);
  Alcotest.(check bool) "remaps counted" true (Page_channel.frame_remaps ch >= 1)

let test_probe_detects_victim_line () =
  let ch, cache, pt = make () in
  let vpage = 0x7abc in
  Page_channel.prime_page ch ~vpage;
  (* Quiet channel: no victim access yields no candidates. *)
  Alcotest.(check (list int)) "quiet page" []
    (Page_channel.probe_page ch ~vpage);
  (* A victim access to line 13 of the page is pinpointed. *)
  Page_channel.prime_page ch ~vpage;
  let virt = (vpage lsl 12) lor (13 lsl 6) in
  ignore (Cache.access cache ~cos:0 ~owner:Cache.Victim (Page_table.phys_of pt virt));
  Alcotest.(check (list int)) "line 13 detected" [ 13 ]
    (Page_channel.probe_page ch ~vpage)

let test_probe_multiple_lines () =
  let ch, cache, pt = make () in
  let vpage = 0x5555 in
  Page_channel.prime_page ch ~vpage;
  List.iter
    (fun line ->
      let virt = (vpage lsl 12) lor (line lsl 6) in
      ignore
        (Cache.access cache ~cos:0 ~owner:Cache.Victim (Page_table.phys_of pt virt)))
    [ 3; 40 ];
  Alcotest.(check (list int)) "both candidates, sorted" [ 3; 40 ]
    (List.sort compare (Page_channel.probe_page ch ~vpage))

let test_probe_gives_up_when_flooded () =
  let ch, cache, pt = make () in
  let vpage = 0x6666 in
  Page_channel.prime_page ch ~vpage;
  List.iter
    (fun line ->
      let virt = (vpage lsl 12) lor (line lsl 6) in
      ignore
        (Cache.access cache ~cos:0 ~owner:Cache.Victim (Page_table.phys_of pt virt)))
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "flooded window discarded" []
    (Page_channel.probe_page ch ~vpage)

let suite =
  ( "page_channel",
    [
      Alcotest.test_case "cat masks" `Quick test_setup_cat_masks;
      Alcotest.test_case "cat disabled" `Quick test_setup_cat_disabled;
      Alcotest.test_case "frame selection sticky" `Quick test_select_frame_sticky;
      Alcotest.test_case "frame selection maps" `Quick test_select_frame_updates_mapping;
      Alcotest.test_case "probe detects line" `Quick test_probe_detects_victim_line;
      Alcotest.test_case "probe multiple lines" `Quick test_probe_multiple_lines;
      Alcotest.test_case "probe flooded" `Quick test_probe_gives_up_when_flooded;
    ] )
