open Zipchannel_util
module Cache = Zipchannel_cache.Cache
module Page_table = Zipchannel_sgx.Page_table
module Enclave = Zipchannel_sgx.Enclave
module Event = Zipchannel_trace.Event
module Lz77 = Zipchannel_compress.Lz77

type result = {
  recovered : bytes;
  byte_accuracy : float;
  direct_bits_accuracy : float;
  lost_readings : int;
  faults : int;
  frame_remaps : int;
}

let head_base = 0x730000000000

let window_base = 0x730010000000

let head_bytes = 2 * (Lz77.hash_mask + 1)

let program input =
  let n = Bytes.length input in
  let events = ref [] in
  let emit e = events := e :: !events in
  (* ins_h is seeded from the first two bytes, then every INSERT_STRING
     reads the byte two ahead and stores into head[ins_h]. *)
  if n >= 2 then begin
    emit (Event.read ~label:"window[0]" ~addr:window_base ~size:1 ());
    emit (Event.read ~label:"window[1]" ~addr:(window_base + 1) ~size:1 ())
  end;
  if n >= 3 then
    Array.iteri
      (fun k ins_h ->
        emit
          (Event.read ~label:"window[k+2]" ~addr:(window_base + k + 2) ~size:1 ());
        emit
          (Event.write ~label:"head[ins_h]"
             ~addr:(head_base + (2 * ins_h))
             ~size:2 ()))
      (Lz77.hash_head_trace input);
  Array.of_list (List.rev !events)

module Obs = Zipchannel_obs.Obs

let m_bytes = Obs.Metrics.counter "sgx.zlib.bytes"
let m_faults = Obs.Metrics.counter "sgx.zlib.faults"
let m_lost = Obs.Metrics.counter "sgx.zlib.lost_readings"

let run ?(config = Attack_config.default) ?(high_bits = 0b011) input =
  Obs.with_span "sgx.zlib_attack"
    ~attrs:[ ("input_bytes", string_of_int (Bytes.length input)) ]
  @@ fun () ->
  let n = Bytes.length input in
  let windows = max 0 (n - 2) in
  let prng = Prng.create ~seed:config.Attack_config.seed () in
  let cache = Cache.create config.Attack_config.cache_config in
  Page_channel.setup_cat ~config cache;
  let page_table = Page_table.create () in
  let enclave =
    Enclave.create ~cos:0 ~program:(program input) ~page_table ~cache ()
  in
  let channel = Page_channel.create ~config ~cache ~page_table ~prng in
  let faults = ref 0 in
  let expect_fault () =
    match Enclave.run_to_fault enclave with
    | Enclave.Fault f ->
        incr faults;
        Some f
    | Enclave.Done -> None
    | Enclave.Executed -> assert false
  in
  let protect_window () =
    Page_table.protect_range page_table ~addr:window_base ~size:(max 1 n)
  in
  let unprotect_window () =
    Page_table.unprotect_range page_table ~addr:window_base ~size:(max 1 n)
  in
  let protect_head () =
    Page_table.protect_range page_table ~addr:head_base ~size:head_bytes
  in
  let unprotect_head () =
    Page_table.unprotect_range page_table ~addr:head_base ~size:head_bytes
  in
  let observations = Array.make (max 1 windows) [] in
  let lost = ref 0 in
  let progress =
    Obs.Progress.create ~total:windows ~label:"zlib-sgx-attack" ()
  in
  if windows > 0 then begin
    protect_window ();
    protect_head ();
    (* First fault: the window[0] read of the hash seed. *)
    assert (expect_fault () <> None);
    let finished = ref false in
    let k = ref 0 in
    while (not !finished) && !k < windows do
      (* At a window fault, head revoked: run into the next store. *)
      Noise.on_transition (Page_channel.noise channel);
      unprotect_window ();
      (match expect_fault () with
      | Some f ->
          let vpage = Page_table.vpage_of f.Enclave.page_addr in
          Page_channel.prime_page channel ~vpage;
          (* Let the store run; regain control at the next window read. *)
          Noise.on_transition (Page_channel.noise channel);
          protect_window ();
          unprotect_head ();
          (match expect_fault () with Some _ -> () | None -> finished := true);
          if config.Attack_config.background_noise then
            Noise.background (Page_channel.noise channel) ~cos:1;
          observations.(!k) <-
            List.map
              (fun line -> (vpage lsl Page_table.page_bits) lor (line lsl 6))
              (Page_channel.probe_page channel ~vpage);
          incr k;
          Obs.Progress.step progress;
          protect_head ()
      | None -> finished := true)
    done
  end;
  Obs.Progress.finish progress;
  (* The window-overlap redundancy (Section V-D) resolves ambiguous
     readings; what remains unresolved is filled with the head base (hash
     0) — only that window's two bytes suffer, there is no chain to
     derail. *)
  let resolved = Recovery.zlib_resolve_candidates ~head_base observations in
  let filled =
    Array.map
      (fun o ->
        match o with
        | Some obs -> obs
        | None ->
            incr lost;
            head_base)
      resolved
  in
  let recovered =
    if n = 0 then Bytes.empty
    else if windows = 0 then Bytes.make n (Char.chr ((high_bits lsl 5) land 0xff))
    else Recovery.zlib_recover_lowercase ~high_bits ~head_base ~n filled
  in
  (* The unconditional leak: bits 3-4 of every middle byte. *)
  let direct_acc =
    if windows = 0 then 0.0
    else begin
      let bits = Recovery.zlib_direct_bits ~head_base filled in
      let ok = ref 0 in
      Array.iteri
        (fun k v ->
          let truth = (Char.code (Bytes.get input (k + 1)) lsr 3) land 0x3 in
          if truth = v then incr ok)
        bits;
      float_of_int !ok /. float_of_int windows
    end
  in
  Obs.Metrics.add m_bytes n;
  Obs.Metrics.add m_faults !faults;
  Obs.Metrics.add m_lost !lost;
  Page_channel.observe_metrics channel;
  {
    recovered;
    byte_accuracy = Stats.fraction_equal recovered input;
    direct_bits_accuracy = direct_acc;
    lost_readings = !lost;
    faults = !faults;
    frame_remaps = Page_channel.frame_remaps channel;
  }
