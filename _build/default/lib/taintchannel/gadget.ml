open Zipchannel_taint

type kind = Load | Store

type t = {
  location : string;
  code_addr : int;
  mnemonic : string;
  kind : kind;
  size : int;
  count : int;
  tags : Tagset.t;
  example_addr : Tval.t;
  first_seq : int;
}

let coverage t ~input_length =
  if input_length = 0 then 0.0
  else begin
    let covered = ref 0 in
    Tagset.fold
      (fun tag () -> if tag >= 1 && tag <= input_length then incr covered)
      t.tags ();
    float_of_int !covered /. float_of_int input_length
  end

let pp ppf t =
  Format.fprintf ppf "Taint-dependent memory access@.";
  Format.fprintf ppf "0x%016x %s@." t.code_addr t.location;
  Format.fprintf ppf "0x%016x   %s [%dbyte]@." t.code_addr t.mnemonic t.size;
  Format.fprintf ppf "%s" (Render.operand_line ~name:"operand" t.example_addr);
  Format.fprintf ppf "@.occurrences: %d, distinct input bytes in address: %d@."
    t.count (Tagset.cardinal t.tags)
