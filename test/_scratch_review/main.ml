let () =
  (* 17 MiB of a 4-byte LE incrementing counter: no quad repeats within
     the 64 KiB window, so the encoder emits one giant literal run. *)
  let n = 17 * 1024 * 1024 in
  let b = Bytes.create n in
  for i = 0 to (n / 4) - 1 do
    Bytes.set b (4*i) (Char.chr (i land 0xff));
    Bytes.set b (4*i+1) (Char.chr ((i lsr 8) land 0xff));
    Bytes.set b (4*i+2) (Char.chr ((i lsr 16) land 0xff));
    Bytes.set b (4*i+3) (Char.chr ((i lsr 24) land 0xff))
  done;
  let enc = Zipchannel_compress.Snappy.compress b in
  (match Zipchannel_compress.Snappy.decompress_result enc with
   | Ok out ->
       if Bytes.equal out b then print_endline "snappy roundtrip OK"
       else print_endline "snappy SILENT CORRUPTION: decoded != input"
   | Error e -> Printf.printf "snappy decode error: %s\n" e.Zipchannel_compress.Codec_error.reason);
  let enc4 = Zipchannel_compress.Lz4.compress b in
  (match Zipchannel_compress.Lz4.decompress_result enc4 with
   | Ok out ->
       if Bytes.equal out b then print_endline "lz4 roundtrip OK"
       else print_endline "lz4 SILENT CORRUPTION"
   | Error e -> Printf.printf "lz4 decode error: %s\n" e.Zipchannel_compress.Codec_error.reason)
