lib/cache/cache.mli:
