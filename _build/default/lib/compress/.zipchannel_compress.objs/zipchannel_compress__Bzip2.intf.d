lib/compress/bzip2.mli: Block_sort
