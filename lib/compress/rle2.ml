let runa = 0
let runb = 1
let eob = 257
let alphabet_size = 258

(* A zero-run of length [n >= 1] is written as the bijective base-2 digits
   of [n], least significant first, with digit values 1 -> RUNA, 2 -> RUNB.
   Decoding sums digit * 2^position.

   Every input symbol contributes at most one output symbol (a zero-run of
   z zeros emits at most z digits), plus the trailing EOB, so [len + 2]
   bounds the output and [encode_sub] can fill a flat arena buffer. *)
let encode_sub ?arena symbols ~len =
  let out =
    match arena with
    | Some a -> Zipchannel_buf.Arena.ints a ~slot:8 (len + 2)
    | None -> Array.make (len + 2) 0
  in
  let n_out = ref 0 in
  let push s =
    out.(!n_out) <- s;
    incr n_out
  in
  let flush_run n =
    let n = ref n in
    while !n > 0 do
      if (!n - 1) land 1 = 0 then push runa else push runb;
      n := (!n - 1) asr 1
    done
  in
  let run = ref 0 in
  for i = 0 to len - 1 do
    let s = symbols.(i) in
    if s = 0 then incr run
    else begin
      flush_run !run;
      run := 0;
      push (s + 1)
    end
  done;
  flush_run !run;
  push eob;
  (out, !n_out)

let encode symbols =
  let out, n_out = encode_sub symbols ~len:(Array.length symbols) in
  Array.sub out 0 n_out

(* The run accumulator doubles its weight on every RUNA/RUNB digit, so an
   adversarial symbol stream of ~60 digits demands 2^60 zeros (and then
   overflows the accumulator into a negative count).  [max_output] caps
   the decoded length: both the running weight and the accumulated total
   are checked against it before they can overflow. *)
let default_max_output = max_int / 4

let decode_result ?(max_output = default_max_output) symbols =
  let i = ref 0 in
  Codec_error.protect ~codec:"rle2" ~offset:(fun () -> !i) @@ fun () ->
  if max_output < 0 || max_output > default_max_output then
    failwith "Rle2.decode: max_output out of range";
  let out = ref [] in
  let produced = ref 0 in
  let emit s =
    incr produced;
    if !produced > max_output then failwith "Rle2.decode: output exceeds limit";
    out := s :: !out
  in
  let run_value = ref 0 and run_weight = ref 1 in
  let flush_run () =
    for _ = 1 to !run_value do emit 0 done;
    run_value := 0;
    run_weight := 1
  in
  let finished = ref false in
  let n = Array.length symbols in
  while !i < n do
    let s = symbols.(!i) in
    if !finished then failwith "Rle2.decode: data after EOB";
    if s = runa || s = runb then begin
      if !run_weight > max_output then
        failwith "Rle2.decode: output exceeds limit";
      run_value := !run_value + ((if s = runa then 1 else 2) * !run_weight);
      if !run_value > max_output then
        failwith "Rle2.decode: output exceeds limit";
      run_weight := !run_weight * 2
    end
    else if s = eob then begin
      flush_run ();
      finished := true
    end
    else if s >= 2 && s <= 256 then begin
      flush_run ();
      emit (s - 1)
    end
    else failwith "Rle2.decode: symbol out of range";
    incr i
  done;
  if not !finished then failwith "Rle2.decode: missing EOB";
  Array.of_list (List.rev !out)

let decode ?max_output symbols =
  Codec_error.unwrap (decode_result ?max_output symbols)
