let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let stddev xs =
  if Array.length xs = 0 then invalid_arg "Stats.stddev: empty";
  let m = mean xs in
  let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
  sqrt (acc /. float_of_int (Array.length xs))

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let fraction_equal a b =
  let n = min (Bytes.length a) (Bytes.length b) in
  if n = 0 then 1.0
  else begin
    let same = ref 0 in
    for i = 0 to n - 1 do
      if Bytes.get a i = Bytes.get b i then incr same
    done;
    float_of_int !same /. float_of_int n
  end

let bit_accuracy a b =
  let n = min (Bytes.length a) (Bytes.length b) in
  if n = 0 then 1.0
  else begin
    let same = ref 0 in
    for i = 0 to n - 1 do
      let x = Char.code (Bytes.get a i) lxor Char.code (Bytes.get b i) in
      for bit = 0 to 7 do
        if x land (1 lsl bit) = 0 then incr same
      done
    done;
    float_of_int !same /. float_of_int (8 * n)
  end

module Confusion = struct
  type t = { labels : string array; counts : int array array }

  let create ~labels =
    let n = Array.length labels in
    { labels; counts = Array.make_matrix n n 0 }

  let add t ~truth ~predicted =
    t.counts.(predicted).(truth) <- t.counts.(predicted).(truth) + 1

  let count t ~truth ~predicted = t.counts.(predicted).(truth)

  let column_total t truth =
    let n = Array.length t.labels in
    let total = ref 0 in
    for p = 0 to n - 1 do
      total := !total + t.counts.(p).(truth)
    done;
    !total

  let column_normalized t =
    let n = Array.length t.labels in
    Array.init n (fun p ->
        Array.init n (fun truth ->
            let total = column_total t truth in
            if total = 0 then 0.0
            else float_of_int t.counts.(p).(truth) /. float_of_int total))

  let accuracy t =
    let n = Array.length t.labels in
    let correct = ref 0 and total = ref 0 in
    for p = 0 to n - 1 do
      for truth = 0 to n - 1 do
        total := !total + t.counts.(p).(truth);
        if p = truth then correct := !correct + t.counts.(p).(truth)
      done
    done;
    if !total = 0 then 0.0 else float_of_int !correct /. float_of_int !total

  let per_class_accuracy t =
    let n = Array.length t.labels in
    Array.init n (fun truth ->
        let total = column_total t truth in
        if total = 0 then 0.0
        else float_of_int t.counts.(truth).(truth) /. float_of_int total)

  let pp ppf t =
    let n = Array.length t.labels in
    let m = column_normalized t in
    let width =
      Array.fold_left (fun acc l -> max acc (String.length l)) 4 t.labels
    in
    Format.fprintf ppf "%*s" (width + 1) "";
    for truth = 0 to n - 1 do
      Format.fprintf ppf " %*s" width t.labels.(truth)
    done;
    Format.pp_print_newline ppf ();
    for p = 0 to n - 1 do
      Format.fprintf ppf "%*s " width t.labels.(p);
      for truth = 0 to n - 1 do
        Format.fprintf ppf " %*.2f" width m.(p).(truth)
      done;
      Format.pp_print_newline ppf ()
    done
end
