type t = { width : int; value : int; taint : Tagset.t array }

let check_width width =
  if width < 1 || width > 63 then invalid_arg "Tval: width must be in 1..63"

let mask_of width = if width = 63 then max_int else (1 lsl width) - 1

let width t = t.width
let value t = t.value

let taint t i =
  if i < 0 || i >= t.width then invalid_arg "Tval.taint: bit out of range";
  t.taint.(i)

let const ~width v =
  check_width width;
  { width; value = v land mask_of width; taint = Array.make width Tagset.empty }

let input_byte ~tag v =
  { width = 8;
    value = v land 0xff;
    taint = Array.make 8 (Tagset.singleton tag) }

let with_taint ~width v assoc =
  check_width width;
  let taint = Array.make width Tagset.empty in
  List.iter
    (fun (i, tags) ->
      if i < 0 || i >= width then invalid_arg "Tval.with_taint: bit";
      taint.(i) <- tags)
    assoc;
  { width; value = v land mask_of width; taint }

let is_tainted t = Array.exists (fun s -> not (Tagset.is_empty s)) t.taint

let tainted_bits t =
  let acc = ref [] in
  for i = t.width - 1 downto 0 do
    if not (Tagset.is_empty t.taint.(i)) then acc := (i, t.taint.(i)) :: !acc
  done;
  !acc

let tags t = Array.fold_left Tagset.union Tagset.empty t.taint

let zero_extend ~width t =
  check_width width;
  if width < t.width then invalid_arg "Tval.zero_extend: narrower than input";
  let taint = Array.make width Tagset.empty in
  Array.blit t.taint 0 taint 0 t.width;
  { width; value = t.value; taint }

let truncate ~width t =
  check_width width;
  if width >= t.width then zero_extend ~width t
  else
    { width;
      value = t.value land mask_of width;
      taint = Array.sub t.taint 0 width }

(* Bring two operands to a common width before a binary operation, as the
   instruction-level tool sees same-width register operands. *)
let align a b =
  let w = max a.width b.width in
  (zero_extend ~width:w a, zero_extend ~width:w b)

let merge_bitwise op a b =
  let a, b = align a b in
  { width = a.width;
    value = op a.value b.value land mask_of a.width;
    taint = Array.init a.width (fun i -> Tagset.union a.taint.(i) b.taint.(i)) }

let logxor a b = merge_bitwise ( lxor ) a b

let logor a b = merge_bitwise ( lor ) a b

(* The paper's special rule for [and]: a tainted value masked by an
   untainted one keeps its taint only where the mask bit is 1.  The rule is
   applied symmetrically; where both sides are tainted the taints merge. *)
let logand a b =
  let a, b = align a b in
  let bit v i = (v lsr i) land 1 in
  let taint =
    Array.init a.width (fun i ->
        let from_a =
          if bit b.value i = 1 || not (Tagset.is_empty b.taint.(i)) then
            a.taint.(i)
          else Tagset.empty
        in
        let from_b =
          if bit a.value i = 1 || not (Tagset.is_empty a.taint.(i)) then
            b.taint.(i)
          else Tagset.empty
        in
        Tagset.union from_a from_b)
  in
  { width = a.width; value = a.value land b.value; taint }

(* add/sub follow the paper's multi-source rule: per-bit merge of source
   taint.  TaintChannel does not model carry chains (its Fig. 2/4 renderings
   show bit-exact provenance), and neither do we. *)
let add a b =
  let a, b = align a b in
  { width = a.width;
    value = (a.value + b.value) land mask_of a.width;
    taint = Array.init a.width (fun i -> Tagset.union a.taint.(i) b.taint.(i)) }

let sub a b =
  let a, b = align a b in
  { width = a.width;
    value = (a.value - b.value) land mask_of a.width;
    taint = Array.init a.width (fun i -> Tagset.union a.taint.(i) b.taint.(i)) }

let shift_left t k =
  if k < 0 then invalid_arg "Tval.shift_left: negative amount";
  let taint =
    Array.init t.width (fun i ->
        if i - k >= 0 then t.taint.(i - k) else Tagset.empty)
  in
  { t with value = (t.value lsl k) land mask_of t.width; taint }

let shift_right_logical t k =
  if k < 0 then invalid_arg "Tval.shift_right_logical: negative amount";
  let taint =
    Array.init t.width (fun i ->
        if i + k < t.width then t.taint.(i + k) else Tagset.empty)
  in
  { t with value = t.value lsr k; taint }

let shift_right_arith t k =
  if k < 0 then invalid_arg "Tval.shift_right_arith: negative amount";
  let sign_bit = t.width - 1 in
  let sign_set = (t.value lsr sign_bit) land 1 = 1 in
  let taint =
    Array.init t.width (fun i ->
        if i + k < t.width then t.taint.(i + k) else t.taint.(sign_bit))
  in
  let value =
    if sign_set then
      (t.value lsr k) lor (mask_of t.width lxor mask_of (max 1 (t.width - k)))
    else t.value lsr k
  in
  { t with value = value land mask_of t.width; taint }

let mul_pow2 t k = shift_left t k

let equal a b =
  a.width = b.width && a.value = b.value
  && Array.for_all2 Tagset.equal a.taint b.taint

let pp ppf t =
  Format.fprintf ppf "0x%x/%d" t.value t.width;
  List.iter
    (fun (i, tags) -> Format.fprintf ppf " b%d:%a" i Tagset.pp tags)
    (tainted_bits t)
