open Zipchannel_util
open Zipchannel_compress

let prng () = Prng.create ~seed:0xC0FFEE ()

let bytes_testable =
  Alcotest.testable
    (fun ppf b -> Format.fprintf ppf "%S" (Bytes.to_string b))
    Bytes.equal

let roundtrip name compress decompress input =
  Alcotest.check bytes_testable name input (decompress (compress input))

(* ------------------------------------------------------------------ *)
(* Bitio *)

let test_bitio_msb_roundtrip () =
  let w = Bitio.Writer.create () in
  Bitio.Writer.add_bits_msb w ~value:0x5 ~count:3;
  Bitio.Writer.add_bits_msb w ~value:0x1ff ~count:9;
  Bitio.Writer.add_bits_msb w ~value:0 ~count:1;
  let r = Bitio.Reader.create (Bitio.Writer.to_bytes w) in
  Alcotest.(check int) "first" 0x5 (Bitio.Reader.read_bits_msb r 3);
  Alcotest.(check int) "second" 0x1ff (Bitio.Reader.read_bits_msb r 9);
  Alcotest.(check int) "third" 0 (Bitio.Reader.read_bits_msb r 1)

let test_bitio_lsb_roundtrip () =
  let w = Bitio.Writer.create () in
  Bitio.Writer.add_bits_lsb w ~value:0x123 ~count:9;
  Bitio.Writer.add_bits_lsb w ~value:0x45 ~count:7;
  let r = Bitio.Reader.create (Bitio.Writer.to_bytes w) in
  Alcotest.(check int) "first" 0x123 (Bitio.Reader.read_bits_lsb r 9);
  Alcotest.(check int) "second" 0x45 (Bitio.Reader.read_bits_lsb r 7)

let test_bitio_align () =
  let w = Bitio.Writer.create () in
  Bitio.Writer.add_bit w true;
  Bitio.Writer.align_byte w;
  Alcotest.(check int) "aligned to 8" 8 (Bitio.Writer.bit_length w);
  Bitio.Writer.add_bits_msb w ~value:0xab ~count:8;
  let r = Bitio.Reader.create (Bitio.Writer.to_bytes w) in
  ignore (Bitio.Reader.read_bit r);
  Bitio.Reader.align_byte r;
  Alcotest.(check int) "post-align byte" 0xab (Bitio.Reader.read_bits_msb r 8)

let test_bitio_out_of_bits () =
  let r = Bitio.Reader.create (Bytes.of_string "a") in
  ignore (Bitio.Reader.read_bits_msb r 8);
  Alcotest.check_raises "eof" Bitio.Reader.Out_of_bits (fun () ->
      ignore (Bitio.Reader.read_bit r))

let test_bitio_value_too_wide () =
  let w = Bitio.Writer.create () in
  Alcotest.check_raises "wide value"
    (Invalid_argument "Bitio.add_bits_msb: value too wide") (fun () ->
      Bitio.Writer.add_bits_msb w ~value:8 ~count:3)

let test_bitio_lsb_writer_reader () =
  let w = Bitio.Lsb_writer.create () in
  Bitio.Lsb_writer.add_bits w ~value:0x5 ~count:3;
  Bitio.Lsb_writer.add_bits w ~value:0x1a3 ~count:9;
  Bitio.Lsb_writer.add_bits w ~value:1 ~count:1;
  let r = Bitio.Lsb_reader.create (Bitio.Lsb_writer.to_bytes w) in
  Alcotest.(check int) "first" 0x5 (Bitio.Lsb_reader.read_bits r 3);
  Alcotest.(check int) "second" 0x1a3 (Bitio.Lsb_reader.read_bits r 9);
  Alcotest.(check int) "third" 1 (Bitio.Lsb_reader.read_bits r 1)

let test_bitio_lsb_byte_layout () =
  (* RFC 1951 convention: the first stream bit is the LSB of byte 0. *)
  let w = Bitio.Lsb_writer.create () in
  Bitio.Lsb_writer.add_bits w ~value:1 ~count:1;
  Bitio.Lsb_writer.add_bits w ~value:0 ~count:7;
  Alcotest.(check int) "bit 0 is the LSB" 1
    (Char.code (Bytes.get (Bitio.Lsb_writer.to_bytes w) 0))

let test_bitio_lsb_huffman_reversal () =
  (* A Huffman code is stored most significant bit first: code 0b110 of
     length 3 occupies stream bits 1,1,0 -> byte 0b011. *)
  let w = Bitio.Lsb_writer.create () in
  Bitio.Lsb_writer.add_huffman w ~code:0b110 ~length:3;
  Alcotest.(check int) "reversed into the stream" 0b011
    (Char.code (Bytes.get (Bitio.Lsb_writer.to_bytes w) 0))

let test_bitio_lsb_align () =
  let w = Bitio.Lsb_writer.create () in
  Bitio.Lsb_writer.add_bits w ~value:1 ~count:1;
  Bitio.Lsb_writer.align_byte w;
  Bitio.Lsb_writer.add_bits w ~value:0xab ~count:8;
  let r = Bitio.Lsb_reader.create (Bitio.Lsb_writer.to_bytes w) in
  ignore (Bitio.Lsb_reader.read_bits r 1);
  Bitio.Lsb_reader.align_byte r;
  Alcotest.(check int) "aligned byte" 0xab (Bitio.Lsb_reader.read_bits r 8);
  Alcotest.(check int) "position" 2 (Bitio.Lsb_reader.byte_position r)

let test_bitio_lsb_out_of_bits () =
  let r = Bitio.Lsb_reader.create (Bytes.of_string "z") in
  ignore (Bitio.Lsb_reader.read_bits r 8);
  Alcotest.check_raises "eof" Bitio.Lsb_reader.Out_of_bits (fun () ->
      ignore (Bitio.Lsb_reader.read_bit r))

let qcheck_bitio_lsb =
  QCheck.Test.make ~name:"lsb bitio roundtrips value lists" ~count:200
    QCheck.(small_list (pair (int_bound 0xffff) (int_range 1 16)))
    (fun pairs ->
      let pairs = List.map (fun (v, c) -> (v land ((1 lsl c) - 1), c)) pairs in
      let w = Bitio.Lsb_writer.create () in
      List.iter (fun (v, c) -> Bitio.Lsb_writer.add_bits w ~value:v ~count:c) pairs;
      let r = Bitio.Lsb_reader.create (Bitio.Lsb_writer.to_bytes w) in
      List.for_all (fun (v, c) -> Bitio.Lsb_reader.read_bits r c = v) pairs)

let qcheck_bitio_msb =
  QCheck.Test.make ~name:"bitio msb roundtrips value lists" ~count:200
    QCheck.(small_list (pair (int_bound 0xffff) (int_range 1 16)))
    (fun pairs ->
      let pairs = List.map (fun (v, c) -> (v land ((1 lsl c) - 1), c)) pairs in
      let w = Bitio.Writer.create () in
      List.iter (fun (v, c) -> Bitio.Writer.add_bits_msb w ~value:v ~count:c) pairs;
      let r = Bitio.Reader.create (Bitio.Writer.to_bytes w) in
      List.for_all (fun (v, c) -> Bitio.Reader.read_bits_msb r c = v) pairs)

(* ------------------------------------------------------------------ *)
(* RLE1 *)

let test_rle1_short_runs_literal () =
  let input = Bytes.of_string "aaabbbcc" in
  Alcotest.check bytes_testable "unchanged" input (Rle1.encode input)

let test_rle1_long_run () =
  let input = Bytes.make 10 'x' in
  let enc = Rle1.encode input in
  Alcotest.check bytes_testable "xxxx + count 6" (Bytes.of_string "xxxx\x06") enc;
  Alcotest.check bytes_testable "roundtrip" input (Rle1.decode enc)

let test_rle1_exact_four () =
  let input = Bytes.of_string "yyyy" in
  let enc = Rle1.encode input in
  Alcotest.check bytes_testable "yyyy + 0" (Bytes.of_string "yyyy\x00") enc;
  Alcotest.check bytes_testable "roundtrip" input (Rle1.decode enc)

let test_rle1_max_run () =
  let input = Bytes.make 600 'z' in
  roundtrip "run of 600" Rle1.encode Rle1.decode input

let test_rle1_empty () = roundtrip "empty" Rle1.encode Rle1.decode Bytes.empty

let test_rle1_truncated () =
  Alcotest.check_raises "truncated" (Failure "Rle1.decode: truncated run")
    (fun () -> ignore (Rle1.decode (Bytes.of_string "aaaa")))

let qcheck_rle1 =
  QCheck.Test.make ~name:"rle1 roundtrip" ~count:300
    QCheck.(string_of_size Gen.(0 -- 400))
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal b (Rle1.decode (Rle1.encode b)))

let qcheck_rle1_runs =
  QCheck.Test.make ~name:"rle1 roundtrip on run-heavy input" ~count:200
    QCheck.(small_list (pair (int_bound 255) (int_range 1 300)))
    (fun runs ->
      let buf = Buffer.create 64 in
      List.iter
        (fun (c, n) -> Buffer.add_string buf (String.make n (Char.chr c)))
        runs;
      let b = Buffer.to_bytes buf in
      Bytes.equal b (Rle1.decode (Rle1.encode b)))

(* ------------------------------------------------------------------ *)
(* MTF / RLE2 *)

let test_mtf_known () =
  (* First occurrence of byte 0 is at list position 0. *)
  let out = Mtf.encode (Bytes.of_string "\x00\x00\x01") in
  Alcotest.(check (array int)) "positions" [| 0; 0; 1 |] out

let test_mtf_roundtrip_all_bytes () =
  let input = Bytes.init 256 Char.chr in
  roundtrip "all byte values"
    (fun b -> Bytes.of_string (String.concat "" (Array.to_list (Array.map (fun i -> String.make 1 (Char.chr i)) (Mtf.encode b)))))
    (fun b -> Mtf.decode (Array.init (Bytes.length b) (fun i -> Char.code (Bytes.get b i))))
    input

let qcheck_mtf =
  QCheck.Test.make ~name:"mtf roundtrip" ~count:300
    QCheck.(string_of_size Gen.(0 -- 300))
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal b (Mtf.decode (Mtf.encode b)))

let test_rle2_zero_runs () =
  (* Zero-run of 3 encodes as RUNA RUNA (1 + 2). *)
  let enc = Rle2.encode [| 0; 0; 0 |] in
  Alcotest.(check (array int)) "runa runa eob" [| Rle2.runa; Rle2.runa; Rle2.eob |] enc

let test_rle2_run_of_two () =
  let enc = Rle2.encode [| 0; 0 |] in
  Alcotest.(check (array int)) "runb" [| Rle2.runb; Rle2.eob |] enc

let test_rle2_shifts_symbols () =
  let enc = Rle2.encode [| 5; 0; 7 |] in
  Alcotest.(check (array int)) "shifted" [| 6; Rle2.runa; 8; Rle2.eob |] enc

let test_rle2_missing_eob () =
  Alcotest.check_raises "missing eob" (Failure "Rle2.decode: missing EOB")
    (fun () -> ignore (Rle2.decode [| Rle2.runa |]))

let qcheck_rle2 =
  QCheck.Test.make ~name:"rle2 roundtrip" ~count:300
    QCheck.(list_of_size Gen.(0 -- 400) (int_bound 255))
    (fun l ->
      let a = Array.of_list l in
      Rle2.decode (Rle2.encode a) = a)

let qcheck_rle2_zero_heavy =
  QCheck.Test.make ~name:"rle2 roundtrip on zero-heavy input" ~count:200
    QCheck.(list_of_size Gen.(0 -- 400) (int_bound 3))
    (fun l ->
      let a = Array.of_list l in
      Rle2.decode (Rle2.encode a) = a)

(* ------------------------------------------------------------------ *)
(* Huffman *)

let test_huffman_single_symbol () =
  let freqs = Array.make 256 0 in
  freqs.(65) <- 10;
  let lengths = Huffman.lengths_of_freqs freqs in
  Alcotest.(check int) "single symbol gets length 1" 1 lengths.(65);
  Alcotest.(check int) "others zero" 0 lengths.(66)

let test_huffman_kraft () =
  let t = prng () in
  for _ = 1 to 50 do
    let freqs = Array.init 300 (fun _ -> Prng.int t 100) in
    let lengths = Huffman.lengths_of_freqs freqs in
    let kraft =
      Array.fold_left
        (fun acc l -> if l > 0 then acc +. (1.0 /. float_of_int (1 lsl l)) else acc)
        0.0 lengths
    in
    Alcotest.(check bool) "kraft <= 1" true (kraft <= 1.0 +. 1e-9);
    (* canonical_codes raises if lengths are oversubscribed. *)
    ignore (Huffman.canonical_codes lengths)
  done

let test_huffman_max_length_respected () =
  (* Fibonacci-like frequencies force deep trees; cap must hold. *)
  let freqs = Array.make 40 0 in
  let a = ref 1 and b = ref 1 in
  for i = 0 to 39 do
    freqs.(i) <- !a;
    let c = !a + !b in
    a := !b;
    b := c
  done;
  let lengths = Huffman.lengths_of_freqs ~max_length:15 freqs in
  Array.iter (fun l -> Alcotest.(check bool) "<= 15" true (l <= 15)) lengths;
  ignore (Huffman.canonical_codes lengths)

let test_huffman_optimality_two_symbols () =
  let freqs = Array.make 4 0 in
  freqs.(0) <- 1;
  freqs.(1) <- 1000;
  let lengths = Huffman.lengths_of_freqs freqs in
  Alcotest.(check int) "both length 1" 1 lengths.(0);
  Alcotest.(check int) "both length 1" 1 lengths.(1)

let test_huffman_encode_decode () =
  let t = prng () in
  roundtrip "random" Huffman.encode Huffman.decode (Prng.bytes t 5000);
  roundtrip "empty" Huffman.encode Huffman.decode Bytes.empty;
  roundtrip "single" Huffman.encode Huffman.decode (Bytes.of_string "a");
  roundtrip "uniform" Huffman.encode Huffman.decode (Bytes.make 1000 'q')

let test_huffman_compresses_skewed () =
  let input = Bytes.of_string (String.make 4000 'a' ^ "bcd") in
  let enc = Huffman.encode input in
  Alcotest.(check bool) "smaller" true (Bytes.length enc < Bytes.length input / 4)

let test_huffman_lengths_serialization () =
  let lengths = Array.init 300 (fun i -> i mod 16) in
  let w = Bitio.Writer.create () in
  Huffman.write_lengths w lengths;
  let r = Bitio.Reader.create (Bitio.Writer.to_bytes w) in
  Alcotest.(check (array int)) "roundtrip" lengths (Huffman.read_lengths r)

let qcheck_huffman =
  QCheck.Test.make ~name:"huffman roundtrip" ~count:150
    QCheck.(string_of_size Gen.(0 -- 2000))
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal b (Huffman.decode (Huffman.encode b)))

(* ------------------------------------------------------------------ *)
(* BWT *)

let test_bwt_banana () =
  let last, primary = Bwt.transform (Bytes.of_string "BANANA") in
  Alcotest.check bytes_testable "last column" (Bytes.of_string "NNBAAA") last;
  Alcotest.(check int) "primary" 3 primary;
  Alcotest.check bytes_testable "inverse" (Bytes.of_string "BANANA")
    (Bwt.inverse last primary)

let test_bwt_empty_and_single () =
  let last, primary = Bwt.transform Bytes.empty in
  Alcotest.check bytes_testable "empty" Bytes.empty (Bwt.inverse last primary);
  let last, primary = Bwt.transform (Bytes.of_string "z") in
  Alcotest.check bytes_testable "single" (Bytes.of_string "z")
    (Bwt.inverse last primary)

let test_bwt_identical_rotations () =
  (* Periodic input: all rotations collide; transform must stay invertible. *)
  let input = Bytes.of_string "ababababab" in
  let last, primary = Bwt.transform input in
  Alcotest.check bytes_testable "periodic roundtrip" input (Bwt.inverse last primary)

let test_bwt_sort_rotations_is_sorted () =
  let input = Bytes.of_string "mississippi" in
  let n = Bytes.length input in
  let perm = Bwt.sort_rotations input in
  let rotation i =
    String.init n (fun k -> Bytes.get input ((i + k) mod n))
  in
  for k = 0 to n - 2 do
    Alcotest.(check bool) "ascending" true (rotation perm.(k) <= rotation perm.(k + 1))
  done

let test_bwt_bad_perm_rejected () =
  Alcotest.check_raises "bad perm" (Invalid_argument "Bwt: not a permutation")
    (fun () ->
      ignore (Bwt.transform_with ~perm:[| 0; 0; 1 |] (Bytes.of_string "abc")))

let qcheck_bwt =
  QCheck.Test.make ~name:"bwt roundtrip" ~count:200
    QCheck.(string_of_size Gen.(0 -- 300))
    (fun s ->
      let b = Bytes.of_string s in
      let last, primary = Bwt.transform b in
      Bytes.equal b (Bwt.inverse last primary))

let qcheck_bwt_low_alphabet =
  QCheck.Test.make ~name:"bwt roundtrip, binary alphabet" ~count:200
    QCheck.(list_of_size Gen.(0 -- 300) (int_bound 1))
    (fun l ->
      let b = Bytes.of_string (String.concat "" (List.map (fun i -> if i = 0 then "a" else "b") l)) in
      let last, primary = Bwt.transform b in
      Bytes.equal b (Bwt.inverse last primary))

(* ------------------------------------------------------------------ *)
(* Block sort *)

let test_ftab_indices_recurrence () =
  (* j_k = block[i] << 8 | block[(i+1) mod n] with i = n-1-k. *)
  let block = Bytes.of_string "ILIAD" in
  let n = Bytes.length block in
  let byte i = Char.code (Bytes.get block i) in
  let expected =
    Array.init n (fun k ->
        let i = n - 1 - k in
        (byte i lsl 8) lor byte ((i + 1) mod n))
  in
  Alcotest.(check (array int)) "listing 3 j values" expected
    (Block_sort.ftab_indices block)

let test_histogram_counts_pairs () =
  let block = Bytes.of_string "abab" in
  let h = Block_sort.histogram block in
  let ab = (Char.code 'a' lsl 8) lor Char.code 'b' in
  let ba = (Char.code 'b' lsl 8) lor Char.code 'a' in
  Alcotest.(check int) "ab pairs (cyclic)" 2 h.(ab);
  Alcotest.(check int) "ba pairs (cyclic)" 2 h.(ba);
  Alcotest.(check int) "total = n" (Bytes.length block)
    (Array.fold_left ( + ) 0 h)

let test_main_sort_matches_fallback () =
  let t = prng () in
  for _ = 1 to 10 do
    let block = Prng.bytes t 500 in
    let main, _ = Block_sort.main_sort ~budget:1_000_000 block in
    let fallback, _ = Block_sort.fallback_sort block in
    Alcotest.(check (array int)) "same rotation order" fallback main
  done

let test_main_sort_abandons_on_repetitive () =
  let block = Bytes.of_string (String.concat "" (List.init 250 (fun _ -> "abcdefgh"))) in
  Alcotest.check_raises "budget blown" (Block_sort.Abandoned 60001) (fun () ->
      ignore (Block_sort.main_sort ~budget:60000 block))

let test_block_sort_paths () =
  let t = prng () in
  let random_block = Prng.bytes t 2000 in
  let _, path = Block_sort.block_sort ~full_block:true random_block in
  (match path.Block_sort.segments with
  | [ { func = Main_sort; _ } ] -> ()
  | _ -> Alcotest.fail "random block should stay in main sort");
  Alcotest.(check bool) "not abandoned" false path.abandoned;
  let short = Prng.bytes t 100 in
  let _, path = Block_sort.block_sort ~full_block:false short in
  (match path.Block_sort.segments with
  | [ { func = Fallback_sort; _ } ] -> ()
  | _ -> Alcotest.fail "short block goes straight to fallback");
  let repetitive = Bytes.of_string (String.concat "" (List.init 500 (fun _ -> "xy"))) in
  let _, path = Block_sort.block_sort ~budget_factor:2 ~full_block:true repetitive in
  Alcotest.(check bool) "abandoned" true path.Block_sort.abandoned;
  match path.Block_sort.segments with
  | [ { func = Main_sort; _ }; { func = Fallback_sort; _ } ] -> ()
  | _ -> Alcotest.fail "abandon path is main then fallback"

(* ------------------------------------------------------------------ *)
(* Bzip2 pipeline *)

let test_bzip2_roundtrip_text () =
  let input = Bytes.of_string "The quick brown fox jumps over the lazy dog. \
                               Pack my box with five dozen liquor jugs." in
  roundtrip "text" Bzip2.compress Bzip2.decompress input

let test_bzip2_roundtrip_random () =
  let t = prng () in
  roundtrip "random 25k" Bzip2.compress Bzip2.decompress (Prng.bytes t 25_000)

let test_bzip2_roundtrip_repetitive () =
  let input = Bytes.of_string (String.concat "" (List.init 3000 (fun _ -> "lorem ipsum "))) in
  roundtrip "repetitive" Bzip2.compress Bzip2.decompress input

let test_bzip2_roundtrip_edge () =
  roundtrip "empty" Bzip2.compress Bzip2.decompress Bytes.empty;
  roundtrip "one byte" Bzip2.compress Bzip2.decompress (Bytes.of_string "!");
  roundtrip "all same" Bzip2.compress Bzip2.decompress (Bytes.make 50_000 'a')

let test_bzip2_compresses_text () =
  let t = prng () in
  let text = Bytes.of_string (Lipsum.repetitive_file t ~level:5 ~size:30_000) in
  let enc = Bzip2.compress text in
  Alcotest.(check bool) "smaller than input" true
    (Bytes.length enc < Bytes.length text / 2)

let test_bzip2_block_info () =
  let t = prng () in
  let input = Prng.bytes t 25_000 in
  let _, infos = Bzip2.compress_with_info input in
  Alcotest.(check int) "3 blocks of 10k" 3 (List.length infos);
  let last = List.nth infos 2 in
  Alcotest.(check int) "last block short" 5000 last.Bzip2.length;
  (match last.Bzip2.path.Block_sort.segments with
  | [ { func = Fallback_sort; _ } ] -> ()
  | _ -> Alcotest.fail "short last block uses fallback");
  let first = List.hd infos in
  match first.Bzip2.path.Block_sort.segments with
  | { Block_sort.func = Main_sort; _ } :: _ -> ()
  | _ -> Alcotest.fail "full block starts in main sort"

let test_bzip2_bad_magic () =
  Alcotest.check_raises "magic" (Failure "Bzip2.decompress: bad magic")
    (fun () -> ignore (Bzip2.decompress (Bytes.of_string "NOPE....")))

let test_bzip2_multi_table_blocks () =
  (* A block mixing very different statistics exercises the multi-table
     Huffman coder: text then binary then runs, within one 10k block. *)
  let t = prng () in
  let mixed =
    Bytes.concat Bytes.empty
      [
        Bytes.of_string (Lipsum.repetitive_file t ~level:5 ~size:4000);
        Prng.bytes t 3000;
        Bytes.of_string (String.init 2500 (fun i -> Char.chr (i mod 7)));
      ]
  in
  roundtrip "mixed statistics" Bzip2.compress Bzip2.decompress mixed

let test_bzip2_large_block_many_groups () =
  (* > 2400 RLE2 symbols forces the maximum of 6 tables. *)
  let t = prng () in
  let input = Prng.bytes t 9000 in
  roundtrip "six tables" Bzip2.compress Bzip2.decompress input

let qcheck_bzip2 =
  QCheck.Test.make ~name:"bzip2 roundtrip" ~count:30
    QCheck.(string_of_size Gen.(0 -- 5000))
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal b (Bzip2.decompress (Bzip2.compress b)))

let qcheck_bzip2_structured =
  QCheck.Test.make ~name:"bzip2 roundtrip, run-heavy" ~count:20
    QCheck.(small_list (pair (int_bound 255) (int_range 1 2000)))
    (fun runs ->
      let buf = Buffer.create 64 in
      List.iter
        (fun (c, n) -> Buffer.add_string buf (String.make n (Char.chr c)))
        runs;
      let b = Buffer.to_bytes buf in
      Bytes.equal b (Bzip2.decompress (Bzip2.compress b)))

(* ------------------------------------------------------------------ *)
(* LZ77 / Deflate *)

let test_lz77_hash_matches_spec () =
  Alcotest.(check int) "update" (((0x123 lsl 5) lxor 0x45) land 0x7fff)
    (Lz77.update_hash 0x123 0x45);
  Alcotest.(check int) "triple"
    (((Char.code 'a' lsl 10) lxor (Char.code 'b' lsl 5) lxor Char.code 'c')
     land 0x7fff)
    (Lz77.hash_of_triple (Char.code 'a') (Char.code 'b') (Char.code 'c'))

let test_lz77_hash_head_trace () =
  let input = Bytes.of_string "abcde" in
  let trace = Lz77.hash_head_trace input in
  Alcotest.(check int) "n-2 inserts" 3 (Array.length trace);
  Alcotest.(check int) "first is hash(abc)"
    (Lz77.hash_of_triple (Char.code 'a') (Char.code 'b') (Char.code 'c'))
    trace.(0);
  Alcotest.(check int) "last is hash(cde)"
    (Lz77.hash_of_triple (Char.code 'c') (Char.code 'd') (Char.code 'e'))
    trace.(2)

let test_lz77_finds_repetition () =
  let input = Bytes.of_string "abcabcabcabc" in
  let tokens = Lz77.tokenize input in
  let has_match =
    List.exists (function Lz77.Match _ -> true | Lz77.Literal _ -> false) tokens
  in
  Alcotest.(check bool) "found a match" true has_match;
  Alcotest.check bytes_testable "detokenize" input (Lz77.detokenize tokens)

let test_lz77_overlapping_match () =
  (* "aaaa..." produces a self-referencing match with distance 1. *)
  let input = Bytes.make 100 'a' in
  let tokens = Lz77.tokenize input in
  Alcotest.check bytes_testable "detokenize overlap" input (Lz77.detokenize tokens);
  let found =
    List.exists
      (function Lz77.Match { distance = 1; _ } -> true | _ -> false)
      tokens
  in
  Alcotest.(check bool) "distance-1 match" true found

let test_lz77_bad_distance () =
  Alcotest.check_raises "bad distance"
    (Invalid_argument "Lz77.detokenize: distance too large") (fun () ->
      ignore (Lz77.detokenize [ Lz77.Match { length = 3; distance = 5 } ]))

let test_lz77_lazy_roundtrip () =
  let t = prng () in
  let inputs =
    [
      Bytes.empty;
      Bytes.of_string "ab";
      Bytes.of_string (Lipsum.repetitive_file t ~level:3 ~size:8000);
      Prng.bytes t 4000;
      Bytes.make 2000 'z';
    ]
  in
  List.iter
    (fun input ->
      Alcotest.check bytes_testable "lazy roundtrip" input
        (Lz77.detokenize (Lz77.tokenize ~strategy:Lz77.Lazy input)))
    inputs

let test_lz77_lazy_defers_match () =
  (* The classic lazy-evaluation win: at 'a' in "xabcde" a 3-byte match
     ("abc") is available, but the next position starts the longer
     "bcdef"; deflate_slow emits the literal and takes the longer match. *)
  let input = Bytes.of_string "abc bcdef xabcdef" in
  let lazy_tokens = Lz77.tokenize ~strategy:Lz77.Lazy input in
  let has_len n =
    List.exists
      (function Lz77.Match { length; _ } -> length = n | Lz77.Literal _ -> false)
  in
  Alcotest.(check bool) "lazy finds the 5-byte match" true
    (has_len 5 lazy_tokens);
  Alcotest.check bytes_testable "still exact" input
    (Lz77.detokenize lazy_tokens)

let test_lz77_lazy_not_worse_on_text () =
  (* On long-match-dominated input deferral can cost a little (extra
     literals); it must stay in the same ballpark as greedy. *)
  let t = prng () in
  let text = Bytes.of_string (Lipsum.repetitive_file t ~level:4 ~size:20_000) in
  let size strategy = Bytes.length (Deflate.compress ~strategy text) in
  Alcotest.(check bool) "lazy within 5% of greedy" true
    (float_of_int (size Lz77.Lazy) <= 1.05 *. float_of_int (size Lz77.Greedy))

let qcheck_lz77 =
  QCheck.Test.make ~name:"lz77 tokenize/detokenize" ~count:200
    QCheck.(string_of_size Gen.(0 -- 1000))
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal b (Lz77.detokenize (Lz77.tokenize b)))

let qcheck_lz77_lazy =
  QCheck.Test.make ~name:"lz77 lazy tokenize/detokenize" ~count:200
    QCheck.(string_of_size Gen.(0 -- 1000))
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal b (Lz77.detokenize (Lz77.tokenize ~strategy:Lz77.Lazy b)))

let test_deflate_code_tables () =
  Alcotest.(check (triple int int int)) "len 3" (257, 0, 0) (Deflate.length_code 3);
  Alcotest.(check (triple int int int)) "len 258" (285, 0, 0) (Deflate.length_code 258);
  Alcotest.(check (triple int int int)) "len 11" (265, 1, 0) (Deflate.length_code 11);
  Alcotest.(check (triple int int int)) "len 12" (265, 1, 1) (Deflate.length_code 12);
  Alcotest.(check (triple int int int)) "dist 1" (0, 0, 0) (Deflate.distance_code 1);
  Alcotest.(check (triple int int int)) "dist 32768" (29, 13, 8191)
    (Deflate.distance_code 32768);
  Alcotest.check_raises "len 2" (Invalid_argument "Deflate.length_code")
    (fun () -> ignore (Deflate.length_code 2))

let test_deflate_all_lengths_roundtrip () =
  for len = 3 to 258 do
    let sym, bits, v = Deflate.length_code len in
    let base, bits' = Deflate.base_of_length_code sym in
    Alcotest.(check int) "bits agree" bits bits';
    Alcotest.(check int) "reconstructs" len (base + v)
  done

let test_deflate_all_distances_roundtrip () =
  for dist = 1 to 32768 do
    let sym, _, v = Deflate.distance_code dist in
    let base, _ = Deflate.base_of_distance_code sym in
    if base + v <> dist then
      Alcotest.failf "distance %d mis-coded (%d + %d)" dist base v
  done

let test_deflate_roundtrip () =
  let t = prng () in
  roundtrip "random" Deflate.compress Deflate.decompress (Prng.bytes t 10_000);
  roundtrip "empty" Deflate.compress Deflate.decompress Bytes.empty;
  roundtrip "single" Deflate.compress Deflate.decompress (Bytes.of_string "x");
  let text = Bytes.of_string (Lipsum.repetitive_file t ~level:4 ~size:20_000) in
  roundtrip "text" Deflate.compress Deflate.decompress text;
  let enc = Deflate.compress text in
  Alcotest.(check bool) "text compresses" true
    (Bytes.length enc < Bytes.length text / 2)

let qcheck_deflate =
  QCheck.Test.make ~name:"deflate roundtrip" ~count:100
    QCheck.(string_of_size Gen.(0 -- 2000))
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal b (Deflate.decompress (Deflate.compress b)))

(* ------------------------------------------------------------------ *)
(* LZW *)

let test_lzw_roundtrip_basic () =
  roundtrip "banana" Lzw.compress Lzw.decompress (Bytes.of_string "banana");
  roundtrip "empty" Lzw.compress Lzw.decompress Bytes.empty;
  roundtrip "single" Lzw.compress Lzw.decompress (Bytes.of_string "k")

let test_lzw_kwkwk () =
  (* The classic KwKwK pattern: "abababab..." forces the decoder to expand
     a code equal to its own free_ent. *)
  roundtrip "kwkwk" Lzw.compress Lzw.decompress
    (Bytes.of_string (String.concat "" (List.init 100 (fun _ -> "ab"))));
  roundtrip "aaa" Lzw.compress Lzw.decompress (Bytes.make 500 'a')

let test_lzw_code_width_growth () =
  (* Enough distinct material to push past 512 dictionary entries and the
     9->10 bit width boundary. *)
  let t = prng () in
  roundtrip "width growth" Lzw.compress Lzw.decompress (Prng.bytes t 30_000)

let test_lzw_dictionary_freeze () =
  (* Enough random data to exhaust the 16-bit code space (~64k misses). *)
  let t = prng () in
  roundtrip "freeze" Lzw.compress Lzw.decompress (Prng.bytes t 120_000)

let test_lzw_compresses_text () =
  let t = prng () in
  let text = Bytes.of_string (Lipsum.repetitive_file t ~level:2 ~size:20_000) in
  let enc = Lzw.compress text in
  Alcotest.(check bool) "smaller" true (Bytes.length enc < Bytes.length text / 2)

let test_lzw_stepper_semantics () =
  (* "abab": (a,b) misses and is added; the second (a,b) hits and ent
     becomes its code. *)
  let st = Lzw.Stepper.create ~first:(Char.code 'a') in
  let _, e1 = Lzw.Stepper.feed st (Char.code 'b') in
  Alcotest.(check bool) "first pair misses" true (e1 <> None);
  let _, e2 = Lzw.Stepper.feed st (Char.code 'a') in
  Alcotest.(check bool) "second pair misses" true (e2 <> None);
  let _, e3 = Lzw.Stepper.feed st (Char.code 'b') in
  Alcotest.(check bool) "now (a,b) hits" true (e3 = None);
  Alcotest.(check int) "ent is the (a,b) code" Lzw.first_code (Lzw.Stepper.ent st)

let test_lzw_stepper_probe_hit_readonly () =
  let st = Lzw.Stepper.create ~first:(Char.code 'x') in
  ignore (Lzw.Stepper.feed st (Char.code 'y'));
  Alcotest.(check (option int)) "pair present" (Some Lzw.first_code)
    (Lzw.Stepper.probe_hit st ~ent:(Char.code 'x') ~c:(Char.code 'y'));
  Alcotest.(check (option int)) "absent pair" None
    (Lzw.Stepper.probe_hit st ~ent:(Char.code 'x') ~c:(Char.code 'z'));
  (* Read-only: the failed probe must not have mutated anything. *)
  Alcotest.(check (option int)) "still present" (Some Lzw.first_code)
    (Lzw.Stepper.probe_hit st ~ent:(Char.code 'x') ~c:(Char.code 'y'))

let test_lzw_stepper_copy_isolated () =
  let a = Lzw.Stepper.create ~first:1 in
  ignore (Lzw.Stepper.feed a 2);
  let b = Lzw.Stepper.copy a in
  ignore (Lzw.Stepper.feed b 3);
  Alcotest.(check int) "original ent unchanged" 2 (Lzw.Stepper.ent a);
  Alcotest.(check int) "copy advanced" 3 (Lzw.Stepper.ent b);
  Alcotest.(check (option int)) "copy's entry invisible to original" None
    (Lzw.Stepper.probe_hit a ~ent:2 ~c:3)

let test_lzw_probe_hash () =
  Alcotest.(check int) "hash formula" ((0x20 lsl 9) lxor 0x41)
    (Lzw.hash ~c:0x20 ~ent:0x41)

let test_lzw_probes_cover_input () =
  let input = Bytes.of_string "hello world, hello world" in
  let _, probes = Lzw.compress_with_probes input in
  (* One lookup (>= 1 probe) per input byte after the first. *)
  let firsts = List.filter (fun p -> p.Lzw.first) probes in
  Alcotest.(check int) "one first-probe per byte" (Bytes.length input - 1)
    (List.length firsts);
  List.iter
    (fun p ->
      Alcotest.(check int) "hp matches hash of (c,ent)"
        (Lzw.hash ~c:p.Lzw.c ~ent:p.Lzw.ent)
        p.Lzw.hp)
    firsts

let qcheck_lzw =
  QCheck.Test.make ~name:"lzw roundtrip" ~count:150
    QCheck.(string_of_size Gen.(0 -- 2000))
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal b (Lzw.decompress (Lzw.compress b)))

let qcheck_lzw_low_alphabet =
  QCheck.Test.make ~name:"lzw roundtrip, 4-letter alphabet" ~count:100
    QCheck.(list_of_size Gen.(0 -- 3000) (int_bound 3))
    (fun l ->
      let b =
        Bytes.of_string
          (String.concat "" (List.map (fun i -> String.make 1 (Char.chr (97 + i))) l))
      in
      Bytes.equal b (Lzw.decompress (Lzw.compress b)))

let test_lzw_triangular_cap_boundary () =
  (* The bomb bound is c*(c+1)/2 for c full codes; triangular_cap is the
     largest c whose product fits, so the cap itself must not overflow
     and cap+1 must. *)
  let c = Lzw.triangular_cap in
  Alcotest.(check bool) "cap fits" true (c * (c + 1) >= 0 && c + 1 <= max_int / c);
  Alcotest.(check bool) "cap+1 overflows" true ((c + 1) * (c + 2) < 0);
  (* Small payloads stay on the exact triangular formula... *)
  Alcotest.(check int) "exact for 10 codes"
    (10 * 11 / 2)
    (Lzw.max_declared_length ~payload_bits:(10 * 9));
  (* ...and past the cap the bound saturates instead of going negative
     (the 1 lsl 31 bug: on 32-bit hosts the old guard was 0 or negative,
     accepting every forged length). *)
  Alcotest.(check int) "saturates" max_int
    (Lzw.max_declared_length ~payload_bits:max_int);
  Alcotest.(check bool) "never negative" true
    (Lzw.max_declared_length ~payload_bits:(Lzw.triangular_cap * 9) >= 0)

let test_lz4_roundtrip_basic () =
  roundtrip "text" Lz4.compress Lz4.decompress
    (Bytes.of_string "the quick brown fox jumps over the lazy dog");
  roundtrip "empty" Lz4.compress Lz4.decompress Bytes.empty;
  roundtrip "single" Lz4.compress Lz4.decompress (Bytes.of_string "k");
  roundtrip "short" Lz4.compress Lz4.decompress (Bytes.of_string "abc")

let test_lz4_overlapping_match () =
  (* A run of one byte forces offset-1 overlapping copies. *)
  roundtrip "aaaa" Lz4.compress Lz4.decompress (Bytes.make 1000 'a');
  roundtrip "abab" Lz4.compress Lz4.decompress
    (Bytes.of_string (String.concat "" (List.init 200 (fun _ -> "ab"))))

let test_lz4_long_runs () =
  (* Literal and match runs past 15 exercise the 255-extension bytes. *)
  let t = prng () in
  roundtrip "long literals" Lz4.compress Lz4.decompress (Prng.bytes t 5_000);
  roundtrip "long match" Lz4.compress Lz4.decompress
    (Bytes.of_string (String.make 20 'x' ^ "salt" ^ String.make 4_000 'x'))

let test_lz4_compresses_text () =
  let t = prng () in
  let text = Bytes.of_string (Lipsum.repetitive_file t ~level:2 ~size:20_000) in
  let enc = Lz4.compress text in
  Alcotest.(check bool) "smaller" true (Bytes.length enc < Bytes.length text / 2)

let test_lz4_hash_matches_spec () =
  (* Knuth multiplicative hash, high hash_bits of the low 32 bits. *)
  let v = 0x04030201 in
  Alcotest.(check int) "hash formula"
    (((v * Lz4.hash_const) land 0xffffffff) lsr (32 - Lz4.hash_bits))
    (Lz4.hash_of_quad v);
  let b = Bytes.of_string "\x01\x02\x03\x04rest" in
  Alcotest.(check int) "quad is little-endian" v (Lz4.quad b 0)

let test_lz4_bad_offset () =
  (* token: 1 literal, match len 4; offset 0 is never valid. *)
  let bad = Bytes.of_string "\x05\x00\x00\x00\x10a\x00\x00" in
  match Lz4.decompress_result bad with
  | Ok _ -> Alcotest.fail "offset 0 decoded"
  | Error e ->
      Alcotest.(check bool) "mentions the offset" true
        (Str_search.contains e.Codec_error.reason "invalid match offset")

let test_snappy_roundtrip_basic () =
  roundtrip "text" Snappy.compress Snappy.decompress
    (Bytes.of_string "the quick brown fox jumps over the lazy dog");
  roundtrip "empty" Snappy.compress Snappy.decompress Bytes.empty;
  roundtrip "single" Snappy.compress Snappy.decompress (Bytes.of_string "k")

let test_snappy_copy_forms () =
  (* Overlapping copy-1, long matches split at 64 bytes, and >60-byte
     literal runs that need the extension length byte. *)
  roundtrip "aaaa" Snappy.compress Snappy.decompress (Bytes.make 1000 'a');
  let t = prng () in
  roundtrip "long literals" Snappy.compress Snappy.decompress
    (Prng.bytes t 5_000);
  roundtrip "far match" Snappy.compress Snappy.decompress
    (Bytes.of_string
       ("needle" ^ String.make 3_000 '.' ^ "needle" ^ String.make 200 '!'))

let test_snappy_compresses_text () =
  let t = prng () in
  let text = Bytes.of_string (Lipsum.repetitive_file t ~level:2 ~size:20_000) in
  let enc = Snappy.compress text in
  Alcotest.(check bool) "smaller" true (Bytes.length enc < Bytes.length text / 2)

let test_snappy_hash_matches_spec () =
  let v = 0x64636261 in
  Alcotest.(check int) "hash formula"
    (((v * Snappy.hash_const) land 0xffffffff) lsr (32 - Snappy.hash_bits))
    (Snappy.hash_of_quad v);
  let b = Bytes.of_string "abcdtail" in
  Alcotest.(check int) "quad is little-endian" v (Snappy.quad b 0)

let test_snappy_bad_offset () =
  (* varint 4, literal "a", then a copy-1 reaching before the output. *)
  let bad = Bytes.of_string "\x04\x00a\x05\x09" in
  match Snappy.decompress_result bad with
  | Ok _ -> Alcotest.fail "out-of-range copy decoded"
  | Error e ->
      Alcotest.(check bool) "mentions the offset" true
        (Str_search.contains e.Codec_error.reason "invalid copy offset")

let qcheck_lz4 =
  QCheck.Test.make ~name:"lz4 roundtrip (random)" ~count:150
    QCheck.(pair small_nat (list (int_bound 255)))
    (fun (seed, _) ->
      let t = Prng.create ~seed () in
      let input = Prng.bytes t (Prng.int t 3_000) in
      Bytes.equal input (Lz4.decompress (Lz4.compress input)))

let qcheck_snappy =
  QCheck.Test.make ~name:"snappy roundtrip (random)" ~count:150
    QCheck.(pair small_nat (list (int_bound 255)))
    (fun (seed, _) ->
      let t = Prng.create ~seed () in
      let input = Prng.bytes t (Prng.int t 3_000) in
      Bytes.equal input (Snappy.decompress (Snappy.compress input)))

let suite =
  ( "compress",
    [
      Alcotest.test_case "bitio msb" `Quick test_bitio_msb_roundtrip;
      Alcotest.test_case "bitio lsb" `Quick test_bitio_lsb_roundtrip;
      Alcotest.test_case "bitio align" `Quick test_bitio_align;
      Alcotest.test_case "bitio eof" `Quick test_bitio_out_of_bits;
      Alcotest.test_case "bitio wide value" `Quick test_bitio_value_too_wide;
      Alcotest.test_case "bitio lsb roundtrip" `Quick test_bitio_lsb_writer_reader;
      Alcotest.test_case "bitio lsb byte layout" `Quick test_bitio_lsb_byte_layout;
      Alcotest.test_case "bitio lsb huffman" `Quick test_bitio_lsb_huffman_reversal;
      Alcotest.test_case "bitio lsb align" `Quick test_bitio_lsb_align;
      Alcotest.test_case "bitio lsb eof" `Quick test_bitio_lsb_out_of_bits;
      QCheck_alcotest.to_alcotest qcheck_bitio_lsb;
      QCheck_alcotest.to_alcotest qcheck_bitio_msb;
      Alcotest.test_case "rle1 short runs" `Quick test_rle1_short_runs_literal;
      Alcotest.test_case "rle1 long run" `Quick test_rle1_long_run;
      Alcotest.test_case "rle1 exact four" `Quick test_rle1_exact_four;
      Alcotest.test_case "rle1 max run" `Quick test_rle1_max_run;
      Alcotest.test_case "rle1 empty" `Quick test_rle1_empty;
      Alcotest.test_case "rle1 truncated" `Quick test_rle1_truncated;
      QCheck_alcotest.to_alcotest qcheck_rle1;
      QCheck_alcotest.to_alcotest qcheck_rle1_runs;
      Alcotest.test_case "mtf known" `Quick test_mtf_known;
      Alcotest.test_case "mtf all bytes" `Quick test_mtf_roundtrip_all_bytes;
      QCheck_alcotest.to_alcotest qcheck_mtf;
      Alcotest.test_case "rle2 zero runs" `Quick test_rle2_zero_runs;
      Alcotest.test_case "rle2 run of two" `Quick test_rle2_run_of_two;
      Alcotest.test_case "rle2 shifts" `Quick test_rle2_shifts_symbols;
      Alcotest.test_case "rle2 missing eob" `Quick test_rle2_missing_eob;
      QCheck_alcotest.to_alcotest qcheck_rle2;
      QCheck_alcotest.to_alcotest qcheck_rle2_zero_heavy;
      Alcotest.test_case "huffman single symbol" `Quick test_huffman_single_symbol;
      Alcotest.test_case "huffman kraft" `Quick test_huffman_kraft;
      Alcotest.test_case "huffman max length" `Quick test_huffman_max_length_respected;
      Alcotest.test_case "huffman two symbols" `Quick test_huffman_optimality_two_symbols;
      Alcotest.test_case "huffman encode/decode" `Quick test_huffman_encode_decode;
      Alcotest.test_case "huffman compresses" `Quick test_huffman_compresses_skewed;
      Alcotest.test_case "huffman lengths io" `Quick test_huffman_lengths_serialization;
      QCheck_alcotest.to_alcotest qcheck_huffman;
      Alcotest.test_case "bwt banana" `Quick test_bwt_banana;
      Alcotest.test_case "bwt edge cases" `Quick test_bwt_empty_and_single;
      Alcotest.test_case "bwt periodic" `Quick test_bwt_identical_rotations;
      Alcotest.test_case "bwt sorted" `Quick test_bwt_sort_rotations_is_sorted;
      Alcotest.test_case "bwt bad perm" `Quick test_bwt_bad_perm_rejected;
      QCheck_alcotest.to_alcotest qcheck_bwt;
      QCheck_alcotest.to_alcotest qcheck_bwt_low_alphabet;
      Alcotest.test_case "ftab indices" `Quick test_ftab_indices_recurrence;
      Alcotest.test_case "ftab histogram" `Quick test_histogram_counts_pairs;
      Alcotest.test_case "main sort = fallback" `Quick test_main_sort_matches_fallback;
      Alcotest.test_case "main sort abandons" `Quick test_main_sort_abandons_on_repetitive;
      Alcotest.test_case "block sort paths" `Quick test_block_sort_paths;
      Alcotest.test_case "bzip2 text" `Quick test_bzip2_roundtrip_text;
      Alcotest.test_case "bzip2 random" `Quick test_bzip2_roundtrip_random;
      Alcotest.test_case "bzip2 repetitive" `Quick test_bzip2_roundtrip_repetitive;
      Alcotest.test_case "bzip2 edges" `Quick test_bzip2_roundtrip_edge;
      Alcotest.test_case "bzip2 compresses" `Quick test_bzip2_compresses_text;
      Alcotest.test_case "bzip2 block info" `Quick test_bzip2_block_info;
      Alcotest.test_case "bzip2 bad magic" `Quick test_bzip2_bad_magic;
      Alcotest.test_case "bzip2 multi-table" `Quick test_bzip2_multi_table_blocks;
      Alcotest.test_case "bzip2 six tables" `Quick test_bzip2_large_block_many_groups;
      QCheck_alcotest.to_alcotest qcheck_bzip2;
      QCheck_alcotest.to_alcotest qcheck_bzip2_structured;
      Alcotest.test_case "lz77 hash spec" `Quick test_lz77_hash_matches_spec;
      Alcotest.test_case "lz77 head trace" `Quick test_lz77_hash_head_trace;
      Alcotest.test_case "lz77 repetition" `Quick test_lz77_finds_repetition;
      Alcotest.test_case "lz77 overlap" `Quick test_lz77_overlapping_match;
      Alcotest.test_case "lz77 bad distance" `Quick test_lz77_bad_distance;
      Alcotest.test_case "lz77 lazy roundtrip" `Quick test_lz77_lazy_roundtrip;
      Alcotest.test_case "lz77 lazy defers" `Quick test_lz77_lazy_defers_match;
      Alcotest.test_case "lz77 lazy vs greedy size" `Quick test_lz77_lazy_not_worse_on_text;
      QCheck_alcotest.to_alcotest qcheck_lz77;
      QCheck_alcotest.to_alcotest qcheck_lz77_lazy;
      Alcotest.test_case "deflate code tables" `Quick test_deflate_code_tables;
      Alcotest.test_case "deflate lengths" `Quick test_deflate_all_lengths_roundtrip;
      Alcotest.test_case "deflate distances" `Quick test_deflate_all_distances_roundtrip;
      Alcotest.test_case "deflate roundtrip" `Quick test_deflate_roundtrip;
      QCheck_alcotest.to_alcotest qcheck_deflate;
      Alcotest.test_case "lzw basic" `Quick test_lzw_roundtrip_basic;
      Alcotest.test_case "lzw kwkwk" `Quick test_lzw_kwkwk;
      Alcotest.test_case "lzw width growth" `Quick test_lzw_code_width_growth;
      Alcotest.test_case "lzw freeze" `Quick test_lzw_dictionary_freeze;
      Alcotest.test_case "lzw compresses" `Quick test_lzw_compresses_text;
      Alcotest.test_case "lzw stepper semantics" `Quick test_lzw_stepper_semantics;
      Alcotest.test_case "lzw stepper probe_hit" `Quick test_lzw_stepper_probe_hit_readonly;
      Alcotest.test_case "lzw stepper copy" `Quick test_lzw_stepper_copy_isolated;
      Alcotest.test_case "lzw hash" `Quick test_lzw_probe_hash;
      Alcotest.test_case "lzw probes" `Quick test_lzw_probes_cover_input;
      QCheck_alcotest.to_alcotest qcheck_lzw;
      QCheck_alcotest.to_alcotest qcheck_lzw_low_alphabet;
      Alcotest.test_case "lzw triangular cap boundary" `Quick
        test_lzw_triangular_cap_boundary;
      Alcotest.test_case "lz4 basic" `Quick test_lz4_roundtrip_basic;
      Alcotest.test_case "lz4 overlap" `Quick test_lz4_overlapping_match;
      Alcotest.test_case "lz4 long runs" `Quick test_lz4_long_runs;
      Alcotest.test_case "lz4 compresses" `Quick test_lz4_compresses_text;
      Alcotest.test_case "lz4 hash spec" `Quick test_lz4_hash_matches_spec;
      Alcotest.test_case "lz4 bad offset" `Quick test_lz4_bad_offset;
      QCheck_alcotest.to_alcotest qcheck_lz4;
      Alcotest.test_case "snappy basic" `Quick test_snappy_roundtrip_basic;
      Alcotest.test_case "snappy copy forms" `Quick test_snappy_copy_forms;
      Alcotest.test_case "snappy compresses" `Quick test_snappy_compresses_text;
      Alcotest.test_case "snappy hash spec" `Quick test_snappy_hash_matches_spec;
      Alcotest.test_case "snappy bad offset" `Quick test_snappy_bad_offset;
      QCheck_alcotest.to_alcotest qcheck_snappy;
    ] )
