(* Zipchannel.Obs: metric semantics, domain-shard merging, trace
   nesting, and the invariant the whole module hangs on — telemetry off
   means output byte-identical to the pre-Obs fixtures. *)

open Zipchannel
module Obs = Zipchannel_obs.Obs
module Pool = Zipchannel_parallel.Pool
module Prng = Util.Prng

(* Every test that enables Obs must leave it disabled and zeroed, or it
   would perturb the byte-identity tests (and any test after it). *)
let with_obs f =
  Obs.Metrics.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.Trace.set_sink Obs.Trace.Null;
      Obs.Metrics.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Metric semantics *)

let test_counter () =
  with_obs @@ fun () ->
  let c = Obs.Metrics.counter "test.obs.counter" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 41;
  Alcotest.(check int) "incr + add" 42 (Obs.Metrics.counter_value c);
  let snap = Obs.Metrics.snapshot () in
  Alcotest.(check (option int))
    "snapshot carries the counter" (Some 42)
    (List.assoc_opt "test.obs.counter" snap.Obs.Metrics.counters);
  Obs.Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Obs.Metrics.counter_value c)

let test_gauge_and_histogram () =
  with_obs @@ fun () ->
  let g = Obs.Metrics.gauge "test.obs.gauge" in
  Obs.Metrics.set_gauge g 1.5;
  Alcotest.(check (float 1e-9)) "gauge last-write" 1.5 (Obs.Metrics.gauge_value g);
  let h = Obs.Metrics.histogram "test.obs.hist" in
  List.iter (Obs.Metrics.observe h) [ 0; 1; 2; 3; 100 ];
  let snap = Obs.Metrics.snapshot () in
  let hs = List.assoc "test.obs.hist" snap.Obs.Metrics.histograms in
  Alcotest.(check int) "count" 5 hs.Obs.Metrics.count;
  Alcotest.(check int) "sum" 106 hs.Obs.Metrics.sum;
  Alcotest.(check int) "all samples bucketed" 5
    (List.fold_left (fun acc (_, n) -> acc + n) 0 hs.Obs.Metrics.buckets);
  Alcotest.(check bool) "buckets sorted" true
    (let bs = List.map fst hs.Obs.Metrics.buckets in
     bs = List.sort_uniq compare bs)

let test_disabled_noop () =
  Obs.Metrics.reset ();
  Obs.set_enabled false;
  let c = Obs.Metrics.counter "test.obs.disabled" in
  let h = Obs.Metrics.histogram "test.obs.disabled_hist" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 10;
  Obs.Metrics.observe h 7;
  Alcotest.(check int) "counter untouched" 0 (Obs.Metrics.counter_value c);
  Alcotest.(check bool) "snapshot empty" true
    (Obs.Metrics.is_empty (Obs.Metrics.snapshot ()))

let test_delta () =
  with_obs @@ fun () ->
  let c = Obs.Metrics.counter "test.obs.delta" in
  Obs.Metrics.add c 5;
  let before = Obs.Metrics.snapshot () in
  Obs.Metrics.add c 3;
  let after = Obs.Metrics.snapshot () in
  let d = Obs.Metrics.delta ~before ~after in
  Alcotest.(check (option int))
    "delta is growth only" (Some 3)
    (List.assoc_opt "test.obs.delta" d.Obs.Metrics.counters)

(* Regression test: a gauge rewritten between snapshots — to the same
   value, via a detour, or staying NaN — is unchanged and must not
   appear in the delta.  Structural (<>) got NaN wrong (NaN <> NaN) and
   the docs promised "changed gauges only". *)
let test_delta_gauge_unchanged () =
  with_obs @@ fun () ->
  let g = Obs.Metrics.gauge "test.obs.delta_gauge" in
  let delta_after f =
    let before = Obs.Metrics.snapshot () in
    f ();
    Obs.Metrics.delta ~before ~after:(Obs.Metrics.snapshot ())
  in
  Obs.Metrics.set_gauge g 2.5;
  let d = delta_after (fun () -> Obs.Metrics.set_gauge g 2.5) in
  Alcotest.(check bool) "same-value rewrite absent" false
    (List.mem_assoc "test.obs.delta_gauge" d.Obs.Metrics.gauges);
  let d =
    delta_after (fun () ->
        Obs.Metrics.set_gauge g 7.0;
        Obs.Metrics.set_gauge g 2.5)
  in
  Alcotest.(check bool) "set-away-and-back absent" false
    (List.mem_assoc "test.obs.delta_gauge" d.Obs.Metrics.gauges);
  Obs.Metrics.set_gauge g Float.nan;
  let d = delta_after (fun () -> Obs.Metrics.set_gauge g Float.nan) in
  Alcotest.(check bool) "unchanged NaN absent" false
    (List.mem_assoc "test.obs.delta_gauge" d.Obs.Metrics.gauges);
  let d = delta_after (fun () -> Obs.Metrics.set_gauge g 3.0) in
  Alcotest.(check bool) "real change present" true
    (List.mem_assoc "test.obs.delta_gauge" d.Obs.Metrics.gauges)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_progress_render () =
  let render = Obs.Progress.render in
  Alcotest.(check string) "no total"
    "[lab] 5"
    (render ~label:"lab" ~count:5 ~total:None ~elapsed_ns:7_000_000_000);
  Alcotest.(check string) "zero count: no ETA yet"
    "[lab] 0/10 (0.0%)"
    (render ~label:"lab" ~count:0 ~total:(Some 10) ~elapsed_ns:1_000_000_000);
  (* 5 of 10 done in 5 s: the rest extrapolates to 5 s. *)
  Alcotest.(check string) "halfway ETA, one decimal under 10 s"
    "[lab] 5/10 (50.0%) ~5.0s"
    (render ~label:"lab" ~count:5 ~total:(Some 10)
       ~elapsed_ns:5_000_000_000);
  Alcotest.(check string) "long ETA, whole seconds"
    "[lab] 1/100 (1.0%) ~99s"
    (render ~label:"lab" ~count:1 ~total:(Some 100)
       ~elapsed_ns:1_000_000_000);
  Alcotest.(check string) "complete: no ETA"
    "[lab] 10/10 (100.0%)"
    (render ~label:"lab" ~count:10 ~total:(Some 10)
       ~elapsed_ns:5_000_000_000)

(* NO_COLOR / non-tty support: the bytes written per progress report are
   a pure function of the style, so campaign logs can be asserted here
   without a pty. *)
let test_progress_styles () =
  Alcotest.(check string) "plain appends a newline" "[lab] 5\n"
    (Obs.Progress.styled_line ~style:Obs.Progress.Plain "[lab] 5");
  Alcotest.(check string) "ansi rewrites the line in place" "\r\x1b[2K[lab] 5"
    (Obs.Progress.styled_line ~style:Obs.Progress.Ansi "[lab] 5");
  Alcotest.(check bool) "default style is plain (greppable)" true
    (Obs.Progress.style () = Obs.Progress.Plain);
  Obs.Progress.set_style Obs.Progress.Ansi;
  Alcotest.(check bool) "set_style sticks" true
    (Obs.Progress.style () = Obs.Progress.Ansi);
  Obs.Progress.set_style Obs.Progress.Plain

let test_histogram_quantiles () =
  Alcotest.(check (float 1e-9)) "bucket 0 midpoint" 1.0
    (Obs.Metrics.bucket_midpoint 0);
  Alcotest.(check (float 1e-9)) "bucket 1 midpoint" 1.5
    (Obs.Metrics.bucket_midpoint 1);
  Alcotest.(check (float 1e-9)) "bucket 4 midpoint" 12.0
    (Obs.Metrics.bucket_midpoint 4);
  with_obs @@ fun () ->
  let h = Obs.Metrics.histogram "test.obs.quantile" in
  List.iter (Obs.Metrics.observe h) [ 1; 2; 100 ];
  let snap = Obs.Metrics.snapshot () in
  let hs = List.assoc "test.obs.quantile" snap.Obs.Metrics.histograms in
  Alcotest.(check (float 1e-9)) "p50 in bucket 1" 1.5
    (Obs.Metrics.approx_quantile hs 0.5);
  (* 64 < 100 <= 128 puts the sample in bucket 7, midpoint 96. *)
  Alcotest.(check (float 1e-9)) "p95 in the top bucket" 96.0
    (Obs.Metrics.approx_quantile hs 0.95);
  let rendered =
    Format.asprintf "%a" Obs.Metrics.pp_snapshot snap
  in
  Alcotest.(check bool) "pp_snapshot shows p50" true
    (contains ~sub:"p50~1.5" rendered);
  Alcotest.(check bool) "pp_snapshot shows p95" true
    (contains ~sub:"p95~96" rendered)

(* ------------------------------------------------------------------ *)
(* Shard merging under real parallelism *)

let qcheck_shard_merge =
  QCheck.Test.make ~name:"sharded counters merge to the exact sum" ~count:30
    QCheck.(pair (list_of_size Gen.(1 -- 40) (int_bound 50)) (int_bound 3))
    (fun (increments, jobs_minus_one) ->
      with_obs @@ fun () ->
      let c = Obs.Metrics.counter "test.obs.sharded" in
      let jobs = jobs_minus_one + 1 in
      ignore
        (Pool.map_list ~jobs
           (fun n ->
             for _ = 1 to n do
               Obs.Metrics.incr c
             done)
           increments);
      Obs.Metrics.counter_value c = List.fold_left ( + ) 0 increments)

(* The taint counters a parallel survey publishes must not depend on
   [jobs]: per-domain shards merge to the same totals. *)
let test_survey_parity () =
  let input = Prng.bytes (Prng.create ~seed:7 ()) 256 in
  let cases () =
    Taintchannel.Survey.
      [ case Zlib input; case Lzw input; case Bzip2 input ]
  in
  let counters_with jobs =
    with_obs @@ fun () ->
    ignore (Taintchannel.Survey.run ~jobs (cases ()));
    (Obs.Metrics.snapshot ()).Obs.Metrics.counters
  in
  let seq = counters_with 1 and par = counters_with 4 in
  Alcotest.(check bool) "survey published taint counters" true
    (List.mem_assoc "taint.instructions" seq);
  Alcotest.(check (list (pair string int))) "jobs=1 = jobs=4" seq par

(* ------------------------------------------------------------------ *)
(* Trace sink *)

type ev = { ev : string; name : string; domain : int; depth : int }

let parse_event line =
  match
    Scanf.sscanf_opt line "{\"ev\": %S, \"name\": %S, \"domain\": %d, \"depth\": %d"
      (fun ev name domain depth -> { ev; name; domain; depth })
  with
  | Some e -> e
  | None -> Alcotest.failf "unparseable trace line: %s" line

let test_trace_nesting () =
  let path = Filename.temp_file "zipchannel_trace" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  (let oc = open_out path in
   Obs.Trace.set_sink (Obs.Trace.Jsonl oc);
   Fun.protect
     ~finally:(fun () ->
       Obs.Trace.set_sink Obs.Trace.Null;
       close_out oc)
     (fun () ->
       Obs.with_span "outer" ~attrs:[ ("k", "v") ] (fun () ->
           Obs.with_span "inner" (fun () -> ());
           Obs.with_span "inner2" (fun () -> ()));
       (* the end event must be emitted even when the body raises *)
       try Obs.with_span "raises" (fun () -> raise Exit)
       with Exit -> ()));
  let ic = open_in path in
  let events = ref [] in
  (try
     while true do
       events := parse_event (input_line ic) :: !events
     done
   with End_of_file -> ());
  close_in ic;
  let events = List.rev !events in
  Alcotest.(check int) "4 spans = 8 events" 8 (List.length events);
  (* Replay against a stack: strict nesting, matching names & depths. *)
  let stack = ref [] in
  List.iter
    (fun e ->
      match e.ev with
      | "b" ->
          Alcotest.(check int) "begin depth = stack depth"
            (List.length !stack) e.depth;
          stack := e :: !stack
      | "e" -> (
          match !stack with
          | top :: rest ->
              Alcotest.(check string) "end matches innermost begin" top.name
                e.name;
              Alcotest.(check int) "end depth" top.depth e.depth;
              stack := rest
          | [] -> Alcotest.fail "end event with empty stack")
      | other -> Alcotest.failf "unknown ev %S" other)
    events;
  Alcotest.(check int) "every span closed" 0 (List.length !stack);
  Alcotest.(check (list string)) "begin order"
    [ "outer"; "inner"; "inner2"; "raises" ]
    (List.filter_map
       (fun e -> if e.ev = "b" then Some e.name else None)
       events)

(* ------------------------------------------------------------------ *)
(* Byte-identity: with Obs fully disabled the instrumented code paths
   must print exactly what the pre-Obs code printed (fixtures captured
   before lib/obs existed). *)

let read_fixture path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let capture f =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_fixture_taintchannel_zlib () =
  let out =
    capture (fun ppf ->
        let input = Prng.bytes (Prng.create ~seed:123 ()) 512 in
        Taintchannel.Engine.report ppf (Taintchannel.Zlib_gadget.run input))
  in
  Alcotest.(check string) "report byte-identical to pre-Obs fixture"
    (read_fixture "fixtures/obs/taintchannel_zlib_512.txt")
    out

let test_fixture_e13 () =
  let out =
    capture (fun ppf -> ignore (Experiments.run ~id:"E13" ppf))
  in
  Alcotest.(check string) "E13 byte-identical to pre-Obs fixture"
    (read_fixture "fixtures/obs/e13.txt")
    out

(* ------------------------------------------------------------------ *)
(* --jobs guard *)

let test_normalize_jobs () =
  (match Pool.normalize_jobs (-1) with
  | Error msg ->
      Alcotest.(check bool) "error names the value" true
        (String.length msg > 0)
  | Ok _ -> Alcotest.fail "negative jobs accepted");
  (match Pool.normalize_jobs 0 with
  | Ok j -> Alcotest.(check int) "0 = auto" (Pool.available_jobs ()) j
  | Error msg -> Alcotest.failf "jobs 0 rejected: %s" msg);
  Alcotest.(check bool) "positive passes through" true
    (Pool.normalize_jobs 3 = Ok 3)

let suite =
  ( "obs",
    [
      Alcotest.test_case "counter incr/add/reset" `Quick test_counter;
      Alcotest.test_case "gauge & histogram" `Quick test_gauge_and_histogram;
      Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
      Alcotest.test_case "snapshot delta" `Quick test_delta;
      Alcotest.test_case "delta drops unchanged gauges" `Quick
        test_delta_gauge_unchanged;
      Alcotest.test_case "progress line & ETA rendering" `Quick
        test_progress_render;
      Alcotest.test_case "progress NO_COLOR/tty styles" `Quick
        test_progress_styles;
      Alcotest.test_case "histogram midpoint quantiles" `Quick
        test_histogram_quantiles;
      QCheck_alcotest.to_alcotest qcheck_shard_merge;
      Alcotest.test_case "parallel survey counter parity" `Slow
        test_survey_parity;
      Alcotest.test_case "JSONL trace nests strictly" `Quick
        test_trace_nesting;
      Alcotest.test_case "disabled: taintchannel fixture identity" `Quick
        test_fixture_taintchannel_zlib;
      Alcotest.test_case "disabled: E13 fixture identity" `Quick
        test_fixture_e13;
      Alcotest.test_case "--jobs normalization" `Quick test_normalize_jobs;
    ] )
