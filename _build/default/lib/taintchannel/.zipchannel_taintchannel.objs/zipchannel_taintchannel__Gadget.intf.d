lib/taintchannel/gadget.mli: Format Tagset Tval Zipchannel_taint
