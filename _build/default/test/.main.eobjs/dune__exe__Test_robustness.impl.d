test/test_robustness.ml: Alcotest Bitio Bytes Bzip2 Char Container Deflate Huffman List Lzw Printexc Prng QCheck QCheck_alcotest Rfc1951 Rle1 Zipchannel_compress Zipchannel_util
