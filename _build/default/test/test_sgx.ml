open Zipchannel_sgx
module Event = Zipchannel_trace.Event
module Cache = Zipchannel_cache.Cache

let test_page_table_identity () =
  let pt = Page_table.create () in
  Alcotest.(check int) "identity translation" 0x123456 (Page_table.phys_of pt 0x123456)

let test_page_table_remap () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:0x10 ~frame:0x99;
  Alcotest.(check int) "frame" 0x99 (Page_table.frame_of pt ~vpage:0x10);
  Alcotest.(check int) "translated"
    ((0x99 lsl 12) lor 0xabc)
    (Page_table.phys_of pt ((0x10 lsl 12) lor 0xabc))

let test_protect_unprotect () =
  let pt = Page_table.create () in
  Alcotest.(check bool) "accessible by default" true
    (Page_table.is_accessible pt ~vpage:5);
  Page_table.protect pt ~vpage:5;
  Alcotest.(check bool) "revoked" false (Page_table.is_accessible pt ~vpage:5);
  Page_table.unprotect pt ~vpage:5;
  Alcotest.(check bool) "restored" true (Page_table.is_accessible pt ~vpage:5)

let test_protect_range_spans_pages () =
  let pt = Page_table.create () in
  (* 0x1f00..0x20ff covers pages 1 and 2. *)
  Page_table.protect_range pt ~addr:0x1f00 ~size:0x200;
  Alcotest.(check bool) "page 1" false (Page_table.is_accessible pt ~vpage:1);
  Alcotest.(check bool) "page 2" false (Page_table.is_accessible pt ~vpage:2);
  Alcotest.(check bool) "page 3 untouched" true (Page_table.is_accessible pt ~vpage:3);
  Page_table.unprotect_range pt ~addr:0x1f00 ~size:0x200;
  Alcotest.(check bool) "restored" true (Page_table.is_accessible pt ~vpage:1)

let simple_program () =
  [|
    Event.write ~label:"a" ~addr:0x1000 ~size:2 ();
    Event.read ~label:"b" ~addr:0x2000 ~size:1 ();
    Event.write ~label:"c" ~addr:0x3000 ~size:4 ();
  |]

let make_enclave ?(program = simple_program ()) () =
  let pt = Page_table.create () in
  let cache = Cache.create Cache.small_config in
  (Enclave.create ~program ~page_table:pt ~cache (), pt, cache)

let test_enclave_runs_to_done () =
  let e, _, cache = make_enclave () in
  Alcotest.(check bool) "done" true (Enclave.run_to_fault e = Enclave.Done);
  Alcotest.(check int) "3 accesses" 3 (Enclave.executed_count e);
  Alcotest.(check bool) "victim data cached" true (Cache.is_cached cache 0x1000)

let test_enclave_fault_masks_offset () =
  let program = [| Event.write ~label:"a" ~addr:0x1abc ~size:2 () |] in
  let e, pt, _ = make_enclave ~program () in
  Page_table.protect pt ~vpage:1;
  (match Enclave.run_to_fault e with
  | Enclave.Fault f ->
      Alcotest.(check int) "page-aligned address" 0x1000 f.Enclave.page_addr;
      Alcotest.(check bool) "write fault" true (f.Enclave.kind = Event.Write)
  | Enclave.Done | Enclave.Executed -> Alcotest.fail "expected fault");
  Alcotest.(check int) "pc not advanced" 0 (Enclave.pc e)

let test_enclave_retry_after_unprotect () =
  let e, pt, _ = make_enclave () in
  Page_table.protect pt ~vpage:2;
  (match Enclave.run_to_fault e with
  | Enclave.Fault f -> Alcotest.(check int) "faults at b" 0x2000 f.Enclave.page_addr
  | _ -> Alcotest.fail "expected fault");
  Alcotest.(check int) "executed only a" 1 (Enclave.executed_count e);
  Page_table.unprotect pt ~vpage:2;
  Alcotest.(check bool) "completes" true (Enclave.run_to_fault e = Enclave.Done);
  Alcotest.(check int) "all executed" 3 (Enclave.executed_count e)

let test_enclave_single_step_sequence () =
  (* Revoking each page in turn single-steps the program: the controlled
     channel's core property. *)
  let e, pt, _ = make_enclave () in
  let pages = [ 1; 2; 3 ] in
  List.iter (fun vpage -> Page_table.protect pt ~vpage) pages;
  let observed = ref [] in
  let rec loop () =
    match Enclave.run_to_fault e with
    | Enclave.Done -> ()
    | Enclave.Fault f ->
        observed := f.Enclave.page_addr :: !observed;
        Page_table.unprotect pt ~vpage:(Page_table.vpage_of f.Enclave.page_addr);
        loop ()
    | Enclave.Executed -> assert false
  in
  loop ();
  Alcotest.(check (list int)) "fault order = access order"
    [ 0x1000; 0x2000; 0x3000 ] (List.rev !observed)

let test_enclave_cross_page_access_faults () =
  (* An access straddling a protected second page must fault on it. *)
  let program = [| Event.read ~label:"straddle" ~addr:0x1ffe ~size:4 () |] in
  let e, pt, _ = make_enclave ~program () in
  Page_table.protect pt ~vpage:2;
  match Enclave.run_to_fault e with
  | Enclave.Fault f -> Alcotest.(check int) "second page" 0x2000 f.Enclave.page_addr
  | _ -> Alcotest.fail "expected fault"

let suite =
  ( "sgx",
    [
      Alcotest.test_case "page table identity" `Quick test_page_table_identity;
      Alcotest.test_case "page table remap" `Quick test_page_table_remap;
      Alcotest.test_case "protect/unprotect" `Quick test_protect_unprotect;
      Alcotest.test_case "protect range" `Quick test_protect_range_spans_pages;
      Alcotest.test_case "enclave runs" `Quick test_enclave_runs_to_done;
      Alcotest.test_case "fault masks offset" `Quick test_enclave_fault_masks_offset;
      Alcotest.test_case "retry after unprotect" `Quick test_enclave_retry_after_unprotect;
      Alcotest.test_case "single-step sequence" `Quick test_enclave_single_step_sequence;
      Alcotest.test_case "cross-page fault" `Quick test_enclave_cross_page_access_faults;
    ] )
