(** Memory-access events: the interface between victim programs and the
    microarchitectural simulators. *)

type kind = Read | Write

type t = {
  kind : kind;
  addr : int;  (** virtual byte address *)
  size : int;  (** access width in bytes *)
  label : string;  (** source construct, e.g. "ftab[j]++" *)
}

val read : ?label:string -> addr:int -> size:int -> unit -> t
val write : ?label:string -> addr:int -> size:int -> unit -> t
val pp : Format.formatter -> t -> unit
