lib/compress/checksum.ml: Array Bytes Char Lazy
