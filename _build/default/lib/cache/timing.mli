(** Memory access timing model.

    Latencies are drawn from Gaussian distributions around a hit and a
    miss mean, with an occasional heavy outlier (TLB miss, interrupt) —
    the noise structure that makes real cache attacks probabilistic.  The
    threshold classifier is what attack code uses in place of rdtsc
    arithmetic. *)

type t = {
  hit_mean : float;  (** cycles *)
  miss_mean : float;
  stddev : float;
  outlier_prob : float;  (** probability of an additive heavy outlier *)
  outlier_cycles : float;
  threshold : float;  (** classify below as hit *)
}

val default : t
(** hit 45cy, miss 210cy, stddev 12, 0.5% outliers of +400cy,
    threshold 120. *)

val noiseless : t
(** Zero variance — for deterministic unit tests. *)

val sample : t -> Zipchannel_util.Prng.t -> hit:bool -> float
(** Latency of one access given the true cache state. *)

val is_hit : t -> float -> bool
(** Threshold classification of a measured latency. *)

val measure : t -> Zipchannel_util.Prng.t -> hit:bool -> bool
(** [is_hit] of [sample]: the attacker-visible boolean, wrong with the
    probability induced by the noise model. *)
