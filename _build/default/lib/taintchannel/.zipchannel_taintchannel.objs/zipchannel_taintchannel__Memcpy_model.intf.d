lib/taintchannel/memcpy_model.mli: Engine
