lib/compress/huffman.mli: Bitio
