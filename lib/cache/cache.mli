(** Set-associative last-level cache model.

    Physically-indexed, sliced, with LRU replacement and Intel CAT-style
    way partitioning.  This is the substrate that stands in for the real
    LLC in the paper's attacks: the attack code only ever consumes which
    sets changed state plus noisy access timing, and this model produces
    exactly that interface.

    Addresses are byte addresses; a line is [2^line_bits] bytes (64).  The
    slice of a line is computed with an XOR-parity hash of its address
    bits, after Maurice et al.'s reconstruction of Intel's slice
    function. *)

type owner = Attacker | Victim | System | Background
(** Who placed a line: the attacker's probe data, the victim enclave,
    OS/SGX machinery (page-fault handling, context switches), or unrelated
    applications. *)

type replacement = Lru | Random_replacement
(** Victim-way selection on a miss.  Real LLCs approximate LRU but are not
    exact; [Random_replacement] models the adversarial end of that
    spectrum — the "replacement policy challenge" the paper's offensive
    CAT use sidesteps by reducing the cache to a single way
    (Section V-C1). *)

type config = {
  sets_per_slice : int;  (** power of two *)
  ways : int;
  slices : int;  (** power of two *)
  line_bits : int;  (** log2 of the line size, 6 for 64-byte lines *)
  policy : replacement;
}

val default_config : config
(** 4 slices x 1024 sets x 16 ways x 64-byte lines (a 4 MiB LLC). *)

val small_config : config
(** 1 slice x 64 sets x 4 ways — convenient for unit tests. *)

type t

val create : config -> t

val config : t -> config

val line_of : t -> int -> int
(** Address to line number (drops the offset bits — the 6 bits the cache
    channel can never observe, Section IV-A). *)

val slice_of : t -> int -> int
(** Slice of an address. *)

val set_of : t -> int -> int
(** Set index within the slice. *)

val set_index : t -> int -> int
(** Global set index in [0, slices * sets_per_slice):
    [slice * sets_per_slice + set]. *)

val n_sets : t -> int

val set_cat_mask : t -> cos:int -> mask:int -> unit
(** Restrict allocations of class-of-service [cos] to the ways set in
    [mask].  Classes 0–3 exist; the default mask allows every way.
    @raise Invalid_argument for an empty or out-of-range mask. *)

val cat_mask : t -> cos:int -> int

val access : t -> ?cos:int -> owner:owner -> int -> bool
(** Perform a load/store of one address.  Returns [true] on hit.  On miss
    the line fills into the least-recently-used way among those the [cos]
    mask (default class 0) allows, evicting its previous occupant. *)

val access_many : t -> ?cos:int -> owner:owner -> int array -> int
(** Drain a flat address array through the simulator in one tight loop;
    returns the number of hits.  Exactly equivalent to folding {!access}
    over the array left to right — batching changes dispatch cost, never
    outcomes. *)

val is_cached : t -> int -> bool
(** Lookup without disturbing LRU state (the model's observer view; the
    attacker only gets this through {!access} timing). *)

val flush : t -> int -> unit
(** Evict the line containing the address, wherever it is ([clflush]). *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;  (** fills that displaced a valid line *)
  flushes : int;  (** [flush] calls that found the line present *)
}

val stats : t -> stats
(** Lifetime telemetry of this cache instance, maintained
    unconditionally (plain increments on the access path). *)

val observe_metrics : t -> unit
(** Publish {!stats} into {!Zipchannel_obs.Obs.Metrics} under the
    [cache.*] namespace.  No-op while Obs is disabled. *)

val owner_in_set : t -> set:int -> owner -> int
(** Number of ways of a global set currently holding lines of [owner]. *)

val addrs_for_set : t -> set:int -> count:int -> int array
(** The first [count] distinct line-aligned addresses (from address 0
    upward) whose global set index is [set] — how the attacker builds an
    eviction buffer for a target set.  @raise Invalid_argument on a bad
    set or negative count. *)

val addr_for_set : t -> set:int -> seq:int -> int
(** [(addrs_for_set t ~set ~count:(seq+1)).(seq)]. *)
