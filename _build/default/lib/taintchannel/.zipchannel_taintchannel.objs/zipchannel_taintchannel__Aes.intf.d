lib/taintchannel/aes.mli: Engine
