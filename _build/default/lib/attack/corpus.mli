(** Test corpora for the fingerprinting experiments.

    The paper's Fig. 7 uses the 21 files shipped with Brotli (the most
    comprehensive compression test set its authors could find); that
    corpus is proprietary to reproduce byte-for-byte, so {!brotli_like}
    synthesises 21 files spanning the same character: large natural text,
    incompressible random data, pathologically repetitive strings, a
    one-byte file ("x"), already-compressed data, and so on.  Fig. 8's
    five same-size files of graded repetitiveness come from
    {!repetitiveness}. *)

val brotli_like : Zipchannel_util.Prng.t -> (string * bytes) list
(** 21 (name, contents) pairs; deterministic in the generator state. *)

val repetitiveness : Zipchannel_util.Prng.t -> (string * bytes) list
(** The Fig. 8 corpus: [test_0000i.txt] for i = 1..5, each 20,000 bytes
    drawn from the first i of five 20-character lipsum fragments. *)
