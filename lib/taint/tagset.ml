type tag = int

(* Word-packed tag sets, the taint plane's innermost data structure.
   Two representations share one [Obj.t], discriminated the same way the
   runtime discriminates immediates from blocks:

   - an immediate [int]: the set fits tags 0..62, bit [t] set iff tag [t]
     is present.  union is [lor], membership is [land] — zero allocation.
   - a boxed [int array] [| base; w0; ...; wk |]: an offset bitvector.
     Data word [j] holds tags [63*(base+j) .. 63*(base+j)+62], so a set
     of clustered large tags (the common case: a gadget address carries a
     sliding window of neighbouring input bytes) stays one or two words
     no matter how large the tag values are.

   Canonical form, so [equal] is structural: a wide set has at least one
   data word, nonzero first and last data words, and is not representable
   as an immediate (base > 0 or >= 2 data words).  [union] preserves
   canonicity by construction — or-ing can only keep the extreme words
   nonzero — so no normalisation pass exists on the hot path. *)

type t = Obj.t

let bits_per_word = 63

let of_bits (bits : int) : t = Obj.repr bits
let to_bits (t : t) : int = (Obj.obj t : int)
let of_words (w : int array) : t = Obj.repr w
let to_words (t : t) : int array = (Obj.obj t : int array)
let is_small (t : t) = Obj.is_int t

let empty = of_bits 0

let is_empty t = is_small t && to_bits t = 0

let check_tag name tag =
  if tag < 0 then invalid_arg ("Tagset." ^ name ^ ": negative tag")

let singleton tag =
  check_tag "singleton" tag;
  if tag < bits_per_word then of_bits (1 lsl tag)
  else of_words [| tag / bits_per_word; 1 lsl (tag mod bits_per_word) |]

(* Absolute data word [k] (covering tags [63k, 63k+62]) of any set. *)
let word_at t k =
  if is_small t then if k = 0 then to_bits t else 0
  else begin
    let w = to_words t in
    let j = k - Array.unsafe_get w 0 in
    if j >= 0 && j + 1 < Array.length w then Array.unsafe_get w (j + 1) else 0
  end

let base_of t = if is_small t then 0 else (to_words t).(0)

let limit_of t =
  if is_small t then 1
  else
    let w = to_words t in
    w.(0) + Array.length w - 1

let merge_general a b =
  let lo = min (base_of a) (base_of b) in
  let hi = max (limit_of a) (limit_of b) in
  let out = Array.make (hi - lo + 1) lo in
  for k = lo to hi - 1 do
    Array.unsafe_set out (k - lo + 1) (word_at a k lor word_at b k)
  done;
  of_words out

(* Union with at least one wide operand.  The propagation hot path unions
   sets covering the same window of neighbouring input bytes, so the
   same-base same-length wide/wide case gets a straight or-loop and the
   small/wide case a copy-and-patch; everything else falls back to the
   window-merging general path. *)
let merge a b =
  if is_small a || is_small b then merge_general a b
  else begin
    let wa = to_words a and wb = to_words b in
    let la = Array.length wa in
    if la = Array.length wb && Array.unsafe_get wa 0 = Array.unsafe_get wb 0
    then begin
      (* Folding a value's per-bit planes unions near-identical sets over
         and over, so absorption (one side contains the other) is the
         common case — detect it first and return without allocating. *)
      let sub_ba = ref true and sub_ab = ref true in
      for j = 1 to la - 1 do
        let x = Array.unsafe_get wa j and y = Array.unsafe_get wb j in
        if y land lnot x <> 0 then sub_ba := false;
        if x land lnot y <> 0 then sub_ab := false
      done;
      if !sub_ba then a
      else if !sub_ab then b
      else begin
        let out = Array.make la (Array.unsafe_get wa 0) in
        for j = 1 to la - 1 do
          Array.unsafe_set out j
            (Array.unsafe_get wa j lor Array.unsafe_get wb j)
        done;
        of_words out
      end
    end
    else begin
      (* Accumulators (a gadget's running tag union) absorb small sets
         whose word range nests inside theirs: copy and or-in place. *)
      let ba = Array.unsafe_get wa 0 and bb = Array.unsafe_get wb 0 in
      let la' = la - 1 and lb' = Array.length wb - 1 in
      if bb >= ba && bb + lb' <= ba + la' then begin
        let off = bb - ba in
        let sub = ref true in
        for j = 1 to lb' do
          if Array.unsafe_get wb j land lnot (Array.unsafe_get wa (off + j))
             <> 0
          then sub := false
        done;
        if !sub then a
        else begin
          let out = Array.copy wa in
          for j = 1 to lb' do
            Array.unsafe_set out (off + j)
              (Array.unsafe_get out (off + j) lor Array.unsafe_get wb j)
          done;
          of_words out
        end
      end
      else if ba >= bb && ba + la' <= bb + lb' then begin
        let off = ba - bb in
        let sub = ref true in
        for j = 1 to la' do
          if Array.unsafe_get wa j land lnot (Array.unsafe_get wb (off + j))
             <> 0
          then sub := false
        done;
        if !sub then b
        else begin
          let out = Array.copy wb in
          for j = 1 to la' do
            Array.unsafe_set out (off + j)
              (Array.unsafe_get out (off + j) lor Array.unsafe_get wa j)
          done;
          of_words out
        end
      end
      else merge_general a b
    end
  end

let union a b =
  if a == b then a
  else if is_small a then
    if is_small b then of_bits (to_bits a lor to_bits b)
    else if to_bits a = 0 then b
    else merge a b
  else if is_small b && to_bits b = 0 then a
  else merge a b

let add tag t =
  check_tag "add" tag;
  if is_small t && tag < bits_per_word then
    of_bits (to_bits t lor (1 lsl tag))
  else union t (singleton tag)

let mem tag t =
  if tag < 0 then false
  else if is_small t then
    tag < bits_per_word && to_bits t land (1 lsl tag) <> 0
  else word_at t (tag / bits_per_word) land (1 lsl (tag mod bits_per_word)) <> 0

let popcount x =
  let n = ref 0 and v = ref x in
  while !v <> 0 do
    v := !v land (!v - 1);
    incr n
  done;
  !n

let cardinal t =
  if is_small t then popcount (to_bits t)
  else begin
    let w = to_words t in
    let n = ref 0 in
    for j = 1 to Array.length w - 1 do
      n := !n + popcount w.(j)
    done;
    !n
  end

(* Ascending tag order, matching [Set.fold] on the reference. *)
let fold f t acc =
  let fold_word k w acc =
    if w = 0 then acc
    else begin
      let acc = ref acc in
      let first = k * bits_per_word in
      for b = 0 to bits_per_word - 1 do
        if w land (1 lsl b) <> 0 then acc := f (first + b) !acc
      done;
      !acc
    end
  in
  if is_small t then fold_word 0 (to_bits t) acc
  else begin
    let w = to_words t in
    let base = w.(0) in
    let acc = ref acc in
    for j = 1 to Array.length w - 1 do
      acc := fold_word (base + j - 1) w.(j) !acc
    done;
    !acc
  end

let elements t = List.rev (fold (fun tag acc -> tag :: acc) t [])

let equal a b =
  a == b
  ||
  if is_small a then is_small b && to_bits a = to_bits b
  else (not (is_small b)) && to_words a = to_words b

let of_list l = List.fold_left (fun acc x -> add x acc) empty l

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (elements t)
