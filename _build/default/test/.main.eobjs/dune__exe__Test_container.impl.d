test/test_container.ml: Alcotest Bytes Char Checksum Container Lipsum List Printf Prng QCheck QCheck_alcotest Zipchannel_compress Zipchannel_util
