open Zipchannel_taint

type gadget_acc = {
  g_location : string;
  g_code_addr : int;
  g_mnemonic : string;
  g_kind : Gadget.kind;
  g_size : int;
  mutable g_count : int;
  mutable g_tags : Tagset.t;
  g_example_addr : Tval.t;
  g_first_seq : int;
}

(* Shadow memory is a paged store: the 48-bit address space is mapped on
   demand in 4 KiB pages of [Tval.t array], so the per-instruction
   load/store path is a shift, a mask and an array index instead of a
   hash-table probe.  The tool's targets touch a handful of dense regions
   (the staged input, one or two lookup tables), so the page directory
   stays tiny while a single-entry "TLB" (the last page touched) catches
   the sequential-access common case without even the directory lookup. *)

let page_bits = 12
let page_slots = 1 lsl page_bits

(* Distinguished "never written" slot value; compared physically, and
   never leaked to callers. *)
let absent : Tval.t = Tval.const ~width:1 0

type t = {
  name : string;
  input : bytes;
  log_limit : int;
  mutable seq : int;
  (* The instruction log keeps only what {!address_trace} can observe:
     the location and the concrete address of each memory operand, in
     execution order.  Storing live [Tval.t]s here would keep every
     intermediate taint plane of the run alive until the engine dies —
     measured as the single largest cost of a gadget run (minor-heap
     promotion plus major-heap marking of megabytes of log). *)
  mutable trace_loc : string array; (* execution order, first trace_len live *)
  mutable trace_addr : int array;
  mutable trace_len : int;
  gadget_tbl : (string, gadget_acc) Hashtbl.t;
  (* Last gadget hit, keyed by physical equality of the location string:
     gadget code passes the same literal every iteration, so this skips
     hashing a long location string per tainted access. *)
  mutable gadget_cache_loc : string;
  mutable gadget_cache : gadget_acc option;
  mutable gadget_order : string array; (* first-occurrence order *)
  mutable gadget_count : int;
  (* Location -> fake code address.  Assigned sequentially on first use so
     distinct locations can never collide (Hashtbl.hash folded to 24 bits
     could, and its value differs across OCaml versions); the mapping is a
     pure function of first-occurrence order, so it is stable across runs,
     word sizes and compiler releases. *)
  code_addrs : (string, int) Hashtbl.t;
  mutable next_code_slot : int;
  mutable control : string array; (* execution order *)
  mutable control_len : int;
  pages : (int, Tval.t array) Hashtbl.t; (* page index -> 4 KiB of slots *)
  mutable tlb_index : int; (* page index of [tlb_page], -1 when cold *)
  mutable tlb_page : Tval.t array;
  (* Plain telemetry counters: always maintained (an increment is far
     below the noise floor of a shadow access), published to Obs only on
     demand so instrumentation cannot perturb results. *)
  mutable tlb_hits : int;
  mutable tlb_misses : int;
  mutable pages_mapped : int;
}

let create ?(log_limit = 100_000) ~name input =
  {
    name;
    input;
    log_limit;
    seq = 0;
    trace_loc = [||];
    trace_addr = [||];
    trace_len = 0;
    gadget_tbl = Hashtbl.create 16;
    gadget_cache_loc = "";
    gadget_cache = None;
    gadget_order = [||];
    gadget_count = 0;
    code_addrs = Hashtbl.create 16;
    next_code_slot = 0;
    control = [||];
    control_len = 0;
    pages = Hashtbl.create 64;
    tlb_index = -1;
    tlb_page = [||];
    tlb_hits = 0;
    tlb_misses = 0;
    pages_mapped = 0;
  }

let name t = t.name

let input_length t = Bytes.length t.input

let input_byte t i =
  if i < 0 || i >= Bytes.length t.input then
    invalid_arg "Engine.input_byte: index";
  Tval.input_byte ~tag:(i + 1) (Char.code (Bytes.get t.input i))

(* The page holding [addr], faulted in on first touch. *)
let page_for t addr =
  let idx = addr lsr page_bits in
  if idx = t.tlb_index then begin
    t.tlb_hits <- t.tlb_hits + 1;
    t.tlb_page
  end
  else begin
    t.tlb_misses <- t.tlb_misses + 1;
    let page =
      match Hashtbl.find_opt t.pages idx with
      | Some page -> page
      | None ->
          let page = Array.make page_slots absent in
          Hashtbl.add t.pages idx page;
          t.pages_mapped <- t.pages_mapped + 1;
          page
    in
    t.tlb_index <- idx;
    t.tlb_page <- page;
    page
  end

(* Read-only view: never allocates a page for untouched memory. *)
let peek t addr =
  let idx = addr lsr page_bits in
  if idx = t.tlb_index then begin
    t.tlb_hits <- t.tlb_hits + 1;
    t.tlb_page.(addr land (page_slots - 1))
  end
  else begin
    t.tlb_misses <- t.tlb_misses + 1;
    match Hashtbl.find_opt t.pages idx with
    | Some page ->
        t.tlb_index <- idx;
        t.tlb_page <- page;
        page.(addr land (page_slots - 1))
    | None -> absent
  end

let stage_input t ~base =
  for i = 0 to Bytes.length t.input - 1 do
    let addr = base + i in
    (page_for t addr).(addr land (page_slots - 1)) <- input_byte t i
  done

(* A stable fake code address per location string, so reports resemble the
   tool's output.  Addresses come from a per-engine registry: the first
   distinct location gets [code_addr_base], the next one 0x40 above it, and
   so on — collision-free and independent of [Hashtbl.hash]. *)
let code_addr_base = 0x7f0000000000
let code_addr_stride = 0x40

let code_addr_of t location =
  match Hashtbl.find_opt t.code_addrs location with
  | Some addr -> addr
  | None ->
      let addr = code_addr_base + (t.next_code_slot * code_addr_stride) in
      t.next_code_slot <- t.next_code_slot + 1;
      Hashtbl.add t.code_addrs location addr;
      addr

let bump t = t.seq <- t.seq + 1

(* Record one memory-operand log entry; [bump] must already have run and
   the caller checked [t.seq <= t.log_limit]. *)
let append_trace t location addr =
  let len = t.trace_len in
  if len = Array.length t.trace_loc then begin
    let cap = max 1024 (2 * len) in
    let loc = Array.make cap "" and ad = Array.make cap 0 in
    Array.blit t.trace_loc 0 loc 0 len;
    Array.blit t.trace_addr 0 ad 0 len;
    t.trace_loc <- loc;
    t.trace_addr <- ad
  end;
  t.trace_loc.(len) <- location;
  t.trace_addr.(len) <- addr;
  t.trace_len <- len + 1

let log_op t ~location ~mnemonic:_ ~operands =
  bump t;
  if t.seq <= t.log_limit then
    match List.assoc_opt "addr" operands with
    | Some addr -> append_trace t location (Tval.value addr)
    | None -> ()

let note_gadget t ~location ~mnemonic ~kind ~size ~addr ~index =
  let example =
    match index with Some (_, v) -> v | None -> addr
  in
  let hit =
    if location == t.gadget_cache_loc then t.gadget_cache
    else begin
      let found = Hashtbl.find_opt t.gadget_tbl location in
      (match found with
      | Some _ ->
          t.gadget_cache_loc <- location;
          t.gadget_cache <- found
      | None -> ());
      found
    end
  in
  match hit with
  | Some g ->
      g.g_count <- g.g_count + 1;
      g.g_tags <- Tagset.union g.g_tags (Tval.tags addr)
  | None ->
      let g =
        {
          g_location = location;
          g_code_addr = code_addr_of t location;
          g_mnemonic = mnemonic;
          g_kind = kind;
          g_size = size;
          g_count = 1;
          g_tags = Tval.tags addr;
          g_example_addr = example;
          g_first_seq = t.seq;
        }
      in
      Hashtbl.add t.gadget_tbl location g;
      let n = t.gadget_count in
      if n = Array.length t.gadget_order then begin
        let grown = Array.make (max 16 (2 * n)) "" in
        Array.blit t.gadget_order 0 grown 0 n;
        t.gadget_order <- grown
      end;
      t.gadget_order.(n) <- location;
      t.gadget_count <- n + 1

let load t ~location ~mnemonic ?index ~addr ~size () =
  bump t;
  if t.seq <= t.log_limit then append_trace t location (Tval.value addr);
  if Tval.is_tainted addr then
    note_gadget t ~location ~mnemonic ~kind:Gadget.Load ~size ~addr ~index;
  let v = peek t (Tval.value addr) in
  if v == absent then Tval.const ~width:(min 63 (8 * size)) 0 else v

let store t ~location ~mnemonic ?index ~addr ~size ~value () =
  bump t;
  if t.seq <= t.log_limit then append_trace t location (Tval.value addr);
  if Tval.is_tainted addr then
    note_gadget t ~location ~mnemonic ~kind:Gadget.Store ~size ~addr ~index;
  let concrete = Tval.value addr in
  (page_for t concrete).(concrete land (page_slots - 1)) <- value

let branch t ~location event =
  bump t;
  let len = t.control_len in
  if len = Array.length t.control then begin
    let grown = Array.make (max 64 (2 * len)) "" in
    Array.blit t.control 0 grown 0 len;
    t.control <- grown
  end;
  t.control.(len) <- location ^ ":" ^ event;
  t.control_len <- len + 1

let instruction_count t = t.seq

let gadgets t =
  List.init t.gadget_count (fun i ->
      let g = Hashtbl.find t.gadget_tbl t.gadget_order.(i) in
      {
        Gadget.location = g.g_location;
        code_addr = g.g_code_addr;
        mnemonic = g.g_mnemonic;
        kind = g.g_kind;
        size = g.g_size;
        count = g.g_count;
        tags = g.g_tags;
        example_addr = g.g_example_addr;
        first_seq = g.g_first_seq;
      })

let control_trace t = List.init t.control_len (fun i -> t.control.(i))

let address_trace t =
  List.init t.trace_len (fun i -> (t.trace_loc.(i), t.trace_addr.(i)))

let trace_arrays t = (t.trace_loc, t.trace_addr, t.trace_len)

type stats = {
  instructions : int;
  tlb_hits : int;
  tlb_misses : int;
  shadow_pages : int;
  gadget_locations : int;
  gadget_hits : int;
}

let stats t =
  let gadget_hits =
    Hashtbl.fold (fun _ g acc -> acc + g.g_count) t.gadget_tbl 0
  in
  {
    instructions = t.seq;
    tlb_hits = t.tlb_hits;
    tlb_misses = t.tlb_misses;
    shadow_pages = t.pages_mapped;
    gadget_locations = t.gadget_count;
    gadget_hits;
  }

module Obs = Zipchannel_obs.Obs

let m_instructions = Obs.Metrics.counter "taint.instructions"
let m_input_bytes = Obs.Metrics.counter "taint.input_bytes"
let m_tlb_hits = Obs.Metrics.counter "taint.tlb_hits"
let m_tlb_misses = Obs.Metrics.counter "taint.tlb_misses"
let m_shadow_pages = Obs.Metrics.counter "taint.shadow_pages"
let m_gadget_locations = Obs.Metrics.counter "taint.gadget_locations"
let m_gadget_hits = Obs.Metrics.counter "taint.gadget_hits"
let g_tlb_hit_rate = Obs.Metrics.gauge "taint.tlb_hit_rate"
let h_gadget_hits = Obs.Metrics.histogram "taint.gadget_hits_per_case"

let observe_metrics t =
  if Obs.enabled () then begin
    let s = stats t in
    Obs.Metrics.add m_instructions s.instructions;
    Obs.Metrics.add m_input_bytes (input_length t);
    Obs.Metrics.add m_tlb_hits s.tlb_hits;
    Obs.Metrics.add m_tlb_misses s.tlb_misses;
    Obs.Metrics.add m_shadow_pages s.shadow_pages;
    Obs.Metrics.add m_gadget_locations s.gadget_locations;
    Obs.Metrics.add m_gadget_hits s.gadget_hits;
    Obs.Metrics.observe h_gadget_hits s.gadget_hits;
    let accesses = s.tlb_hits + s.tlb_misses in
    if accesses > 0 then
      Obs.Metrics.set_gauge g_tlb_hit_rate
        (float_of_int (Obs.Metrics.counter_value m_tlb_hits)
        /. float_of_int
             (Obs.Metrics.counter_value m_tlb_hits
             + Obs.Metrics.counter_value m_tlb_misses))
  end

let report ppf t =
  Format.fprintf ppf "TaintChannel report for %s (%d input bytes, %d instructions)@.@."
    t.name (input_length t) t.seq;
  let gs = gadgets t in
  if gs = [] then Format.fprintf ppf "no taint-dependent memory accesses found@."
  else
    List.iter
      (fun g ->
        Gadget.pp ppf g;
        Format.fprintf ppf "input coverage: %.1f%%@.@."
          (100.0 *. Gadget.coverage g ~input_length:(input_length t)))
      gs
