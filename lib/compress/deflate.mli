(** DEFLATE-style container over the {!Lz77} token stream.

    Tokens are entropy-coded with two canonical Huffman tables — one for
    literals/lengths, one for distances — using RFC 1951's length and
    distance code ranges with extra bits.  The header stores the raw code
    length arrays instead of RFC 1951's code-length code, so the output is
    DEFLATE-shaped rather than bit-compatible with zlib. *)

val length_code : int -> int * int * int
(** [length_code len] is [(symbol, extra_bits, extra_value)] for a match
    length in 3..258.  Symbols are 257..285 as in RFC 1951.
    @raise Invalid_argument out of range. *)

val distance_code : int -> int * int * int
(** [distance_code dist] for a distance in 1..32768; symbols 0..29.
    @raise Invalid_argument out of range. *)

val base_of_length_code : int -> int * int
(** [(base_length, extra_bits)] of a length symbol. *)

val base_of_distance_code : int -> int * int

val encode_tokens : Lz77.token list -> bytes

val decode_tokens_result : bytes -> (Lz77.token list, Codec_error.t) result
(** Safe token decoder: truncated or corrupt input is an [Error]; no
    exception escapes this boundary. *)

val decode_tokens : bytes -> Lz77.token list
(** [Codec_error.unwrap] of {!decode_tokens_result}.
    @raise Failure on malformed input. *)

val compress : ?strategy:Lz77.strategy -> ?max_chain:int -> bytes -> bytes
(** [Lz77.tokenize] + [encode_tokens]. *)

val decompress_result : bytes -> (bytes, Codec_error.t) result
(** {!decode_tokens_result} + [Lz77.detokenize], with out-of-window match
    distances reported as decode errors rather than exceptions. *)

val decompress_sub_result :
  bytes -> off:int -> len:int -> (bytes, Codec_error.t) result
(** {!decompress_result} of the [len]-byte slice at [off], read in place
    — no copy of the slice is taken.  Error offsets are positions in the
    whole buffer, not the slice.
    @raise Invalid_argument if the slice is out of bounds. *)

val decompress : bytes -> bytes
(** [Codec_error.unwrap] of {!decompress_result}.
    @raise Failure on malformed input. *)
