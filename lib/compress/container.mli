(** Gzip-style single-stream container and a multi-entry archive over the
    DEFLATE-style compressor.

    The framing mirrors gzip/zip structure — magic, method id, CRC-32 of
    the plaintext, size fields, per-entry directory — around this
    library's own DEFLATE-shaped stream (which is not bit-compatible with
    RFC 1951, so neither container claims interoperability; the integrity
    and API semantics are the point). *)

exception Corrupt of string
(** Raised by the decoders on malformed framing or checksum mismatch. *)

(** Single compressed stream with integrity checking, gzip-style. *)
module Stream : sig
  val pack : bytes -> bytes
  (** Header (magic, method), deflate body, CRC-32 + length trailer. *)

  val unpack : bytes -> bytes
  (** @raise Corrupt on bad magic, truncation or checksum mismatch. *)

  val unpack_result : bytes -> (bytes, Codec_error.t) result
  (** Safe decoder: every malformation {!unpack} reports via {!Corrupt}
      is an [Error]; no exception escapes. *)
end

(** Multi-entry archive, zip-style: named entries, per-entry CRC, central
    directory at the end. *)
module Archive : sig
  type entry = { name : string; data : bytes }

  val pack : ?jobs:int -> entry list -> bytes
  (** [jobs] (default 1) compresses member bodies on that many domains;
      the archive bytes are identical for every value.
      @raise Invalid_argument on duplicate or oversized (>65535 byte)
      names. *)

  val unpack : bytes -> entry list
  (** Entries in original order.  @raise Corrupt on framing or checksum
      errors (including a directory entry count larger than the archive
      could possibly hold). *)

  val unpack_result : bytes -> (entry list, Codec_error.t) result
  (** Safe decoder: every malformation {!unpack} reports via {!Corrupt}
      is an [Error]; no exception escapes. *)

  val names : bytes -> string list
  (** Read just the central directory. *)

  val extract : bytes -> string -> bytes
  (** One entry by name.  @raise Not_found if absent; @raise Corrupt on
      damage. *)
end
