(** Small statistics helpers used by the attack evaluation harnesses. *)

val mean : float array -> float
(** Arithmetic mean.  @raise Invalid_argument on empty input. *)

val stddev : float array -> float
(** Population standard deviation.  @raise Invalid_argument on empty
    input. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0, 100]; nearest-rank on a sorted copy.
    @raise Invalid_argument on empty input or [p] out of range. *)

val fraction_equal : bytes -> bytes -> float
(** Fraction of byte positions at which the two buffers agree; compared over
    the shorter length, and 1.0 when both are empty. *)

val bit_accuracy : bytes -> bytes -> float
(** Fraction of bit positions at which the two buffers agree (the paper
    reports "over 99% of the data bits").  Compared over the shorter
    length; 1.0 when both are empty. *)

(** Confusion-matrix accumulation for the fingerprinting experiments
    (paper Figs. 7 and 8). *)
module Confusion : sig
  type t

  val create : labels:string array -> t
  (** One row/column per label; rows are predictions, columns the true
      class, matching the paper's figures. *)

  val add : t -> truth:int -> predicted:int -> unit

  val count : t -> truth:int -> predicted:int -> int

  val column_normalized : t -> float array array
  (** [m.(pred).(truth)]: per-true-class distribution of predictions —
      each column sums to 1 (or 0 if the class never appeared). *)

  val accuracy : t -> float
  (** Overall fraction classified correctly. *)

  val per_class_accuracy : t -> float array

  val pp : Format.formatter -> t -> unit
  (** Renders the column-normalised matrix with labels, in the layout of
      the paper's Figs. 7/8. *)
end
