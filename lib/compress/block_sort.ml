type func = Main_sort | Fallback_sort

type segment = { func : func; work : int }

type path = { segments : segment list; abandoned : bool }

let ftab_size = 65537

let ftab_indices block =
  let n = Bytes.length block in
  if n = 0 then [||]
  else begin
    let byte i = Char.code (Bytes.get block i) in
    (* Listing 3: j starts as block[0] << 8; each iteration shifts in
       block[i] from the top, so j = block[i] << 8 | block[(i+1) mod n]. *)
    let j = ref (byte 0 lsl 8) in
    Array.init n (fun k ->
        let i = n - 1 - k in
        j := (!j lsr 8) lor (byte i lsl 8);
        !j)
  end

let histogram block =
  let ftab = Array.make ftab_size 0 in
  Array.iter (fun j -> ftab.(j) <- ftab.(j) + 1) (ftab_indices block);
  ftab

exception Abandoned of int

let main_sort ~budget block =
  let n = Bytes.length block in
  if n = 0 then ([||], 0)
  else begin
    let byte i = Char.code (Bytes.get block i) in
    let work = ref 0 in
    let spend k =
      work := !work + k;
      if !work > budget then raise (Abandoned !work)
    in
    (* Stage 1: the ftab histogram (the paper's leakage gadget). *)
    let ftab = histogram block in
    spend n;
    (* Stage 2: bucket rotations by their first two bytes via the running
       sums of ftab, exactly how mainSort derives bucket boundaries. *)
    let starts = Array.make ftab_size 0 in
    let acc = ref 0 in
    for j = 0 to ftab_size - 1 do
      starts.(j) <- !acc;
      acc := !acc + ftab.(j)
    done;
    let perm = Array.make n 0 in
    let fill = Array.copy starts in
    for i = 0 to n - 1 do
      let j = (byte i lsl 8) lor byte ((i + 1) mod n) in
      perm.(fill.(j)) <- i;
      fill.(j) <- fill.(j) + 1
    done;
    (* Stage 3: finish each bucket by comparison sort on the rotation
       suffixes past the two bucketed bytes, paying one work unit per byte
       comparison.  Repetitive input makes comparisons deep and trips the
       budget. *)
    let compare_rotations i1 i2 =
      if i1 = i2 then 0
      else begin
        let rec loop k =
          if k >= n then compare i1 i2
          else begin
            spend 1;
            let c =
              compare (byte ((i1 + k) mod n)) (byte ((i2 + k) mod n))
            in
            if c <> 0 then c else loop (k + 1)
          end
        in
        loop 2
      end
    in
    for j = 0 to ftab_size - 1 do
      let len = ftab.(j) in
      if len > 1 then begin
        let bucket = Array.sub perm starts.(j) len in
        Array.sort compare_rotations bucket;
        Array.blit bucket 0 perm starts.(j) len
      end
    done;
    (perm, !work)
  end

let fallback_sort block = Bwt.sort_rotations_work block

let default_budget_factor = 30

let block_sort ?(budget_factor = default_budget_factor) ~full_block block =
  Zipchannel_obs.Obs.with_span "bwt.sort"
    ~attrs:[ ("bytes", string_of_int (Bytes.length block)) ]
  @@ fun () ->
  if not full_block then begin
    let perm, work = fallback_sort block in
    (perm, { segments = [ { func = Fallback_sort; work } ]; abandoned = false })
  end
  else begin
    let budget = budget_factor * max 1 (Bytes.length block) in
    match main_sort ~budget block with
    | perm, work ->
        (perm, { segments = [ { func = Main_sort; work } ]; abandoned = false })
    | exception Abandoned spent ->
        let perm, work = fallback_sort block in
        ( perm,
          { segments =
              [ { func = Main_sort; work = spent };
                { func = Fallback_sort; work } ];
            abandoned = true } )
  end
