(** Structured decode errors.

    Every decoder in this library reports malformed input through one
    value shape: which codec rejected the bytes, the byte offset the
    decoder had reached when it gave up, and a human-readable reason.
    The [*_result] entry points of each codec return [Error t]; the
    historical exception entry points ([decompress]/[decode]/[unpack])
    are thin wrappers that raise their documented exception with
    [t.reason] as the message, so existing callers see exactly the
    messages they always did.

    The contract the fuzzer ({!Zipchannel_fuzz}) enforces: no decoder
    boundary lets [Bitio.Reader.Out_of_bits],
    [Bitio.Lsb_reader.Out_of_bits] or an internal [Invalid_argument]
    escape — all of them are mapped here. *)

type t = {
  codec : string;  (** short codec name, e.g. ["lzw"], ["bzip2"] *)
  offset : int;
      (** byte offset into the input reached when the error was
          detected; [-1] when no position is meaningful *)
  reason : string;  (** human-readable message, stable across releases *)
}

exception Codec_error of t

val v : codec:string -> ?offset:int -> string -> t
(** [v ~codec ~offset reason]; [offset] defaults to [-1]. *)

val error : codec:string -> ?offset:int -> string -> ('a, t) result
(** [Error (v ~codec ~offset reason)]. *)

val fail : codec:string -> ?offset:int -> string -> 'a
(** @raise Codec_error always. *)

val to_string : t -> string
(** ["<codec> decode error at byte <offset>: <reason>"] (offset part
    omitted when unknown). *)

val pp : Format.formatter -> t -> unit

val protect : codec:string -> offset:(unit -> int) -> (unit -> 'a) -> ('a, t) result
(** [protect ~codec ~offset f] runs [f] and maps every exception a
    decoder is allowed to signal malformed input with — {!Codec_error},
    [Failure], [Invalid_argument], [Bitio.Reader.Out_of_bits] and
    [Bitio.Lsb_reader.Out_of_bits] — to [Error]. The [offset] thunk is
    consulted at catch time, so passing the live bit reader's
    [byte_position] reports where the decode stopped.  Any other
    exception (I/O, [Out_of_memory], …) propagates. *)

val unwrap : ('a, t) result -> 'a
(** [Ok x -> x]; [Error e -> raise (Failure e.reason)] — the shim that
    keeps the historical [@raise Failure] contracts intact. *)
