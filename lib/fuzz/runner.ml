module Prng = Zipchannel_util.Prng
module Pool = Zipchannel_parallel.Pool
module Obs = Zipchannel_obs.Obs

let m_cases = Obs.Metrics.counter "fuzz.cases"
let m_accepted = Obs.Metrics.counter "fuzz.accepted"
let m_rejected = Obs.Metrics.counter "fuzz.rejected"
let m_failures = Obs.Metrics.counter "fuzz.failures"
let m_case_ns = Obs.Metrics.histogram "fuzz.case_ns"

(* Per-case PRNG derivation: hash (seed, codec, index) through FNV-1a so
   every case has an independent, position-addressable stream.  This is
   what makes the run order-free: a case's bytes depend only on its
   coordinates, never on which domain ran it or what ran before it. *)
let case_seed ~seed ~codec_name ~index =
  let h = ref 0xcbf29ce484222325L in
  let mix v =
    h := Int64.logxor !h (Int64.of_int v);
    h := Int64.mul !h 0x100000001b3L
  in
  mix seed;
  String.iter (fun c -> mix (Char.code c)) codec_name;
  mix index;
  Int64.to_int !h land max_int

type outcome = {
  o_codec : string;
  o_case : int;
  o_verdict : Oracle.verdict;
  o_input : bytes;
  o_original_len : int;
  o_elapsed_ns : int;
}

(* Minimization predicate: the shrunk input must reproduce the same
   verdict label.  The budget is disabled during shrinking — wall-clock
   verdicts are not stable enough to steer a minimizer. *)
let minimize_failure codec verdict input =
  let label = Oracle.verdict_label verdict in
  match verdict with
  | Oracle.Overbudget _ -> input
  | _ ->
      let interesting candidate =
        let v, _ = Oracle.check codec ~budget_ms:0. candidate in
        Oracle.verdict_label v = label
      in
      Minimize.minimize ~interesting input

let run_case (codec : Codecs.t) ~corpus ~seed ~budget_ms ~minimize index =
  let rng = Prng.create ~seed:(case_seed ~seed ~codec_name:codec.name ~index) () in
  let verdict, input, original_len, elapsed_ms =
    if index mod 4 = 0 then begin
      let plain = Corpus.plain rng ~max_len:codec.max_plain in
      let v, ms = Oracle.roundtrip codec ~budget_ms plain in
      (* reproducer for a round-trip failure is the compressed stream *)
      let packed = try codec.compress plain with _ -> plain in
      (v, packed, Bytes.length packed, ms)
    end
    else begin
      let base = Prng.pick rng corpus in
      let input = Mutate.mutate rng ~corpus base in
      let v, ms = Oracle.check codec ~budget_ms input in
      (v, input, Bytes.length input, ms)
    end
  in
  let input =
    if minimize && Oracle.is_failure verdict then
      minimize_failure codec verdict input
    else input
  in
  {
    o_codec = codec.name;
    o_case = index;
    o_verdict = verdict;
    o_input = input;
    o_original_len = original_len;
    o_elapsed_ns = int_of_float (elapsed_ms *. 1e6);
  }

let tally outcomes =
  let runs = Array.length outcomes in
  let accepted = ref 0 and rejected = ref 0 and failures = ref [] in
  Array.iter
    (fun o ->
      Obs.Metrics.incr m_cases;
      Obs.Metrics.observe m_case_ns o.o_elapsed_ns;
      match o.o_verdict with
      | Oracle.Accepted ->
          incr accepted;
          Obs.Metrics.incr m_accepted
      | Oracle.Rejected _ ->
          incr rejected;
          Obs.Metrics.incr m_rejected
      | v ->
          Obs.Metrics.incr m_failures;
          failures :=
            {
              Report.codec = o.o_codec;
              case = o.o_case;
              verdict = v;
              input = o.o_input;
              original_len = o.o_original_len;
            }
            :: !failures)
    outcomes;
  (runs, !accepted, !rejected, List.rev !failures)

let run ?(codecs = Codecs.all) ?(seed = 1) ?(runs = 1000) ?(jobs = 1)
    ?(budget_ms = 1000.) ?(corpus_size = 32) ?(minimize = true) () =
  let n_codecs = max 1 (List.length codecs) in
  let per_codec = max 1 (runs / n_codecs) in
  (* Corpus pools are built sequentially up front: they are shared
     read-only state for the parallel phase. *)
  let pools =
    List.map (fun c -> (c, Corpus.pool c ~seed ~size:corpus_size)) codecs
  in
  let work =
    Array.concat
      (List.map
         (fun (c, pool) -> Array.init per_codec (fun i -> (c, pool, i)))
         pools)
  in
  let outcomes =
    Pool.map_array ~jobs
      (fun (c, pool, i) ->
        run_case c ~corpus:pool ~seed ~budget_ms ~minimize i)
      work
  in
  let stats =
    List.mapi
      (fun ci (c, _) ->
        let slice = Array.sub outcomes (ci * per_codec) per_codec in
        let runs, accepted, rejected, failures = tally slice in
        { Report.name = c.Codecs.name; runs; accepted; rejected; failures })
      pools
  in
  { Report.seed; total_runs = Array.length work; stats }

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

let write_fixtures ~dir report =
  let fs = Report.failures report in
  if fs = [] then []
  else begin
    mkdir_p dir;
    List.map
      (fun f ->
        let path = Filename.concat dir (Report.fixture_name f) in
        let oc = open_out_bin path in
        output_bytes oc f.Report.input;
        close_out oc;
        path)
      fs
  end
