module Metrics = Zipchannel_obs.Obs.Metrics

(* Leakage scoreboard: per-gadget leak indicators derived purely from the
   counters and histograms the engines already publish.  Everything here
   is a read-only function of a snapshot — no new instrumentation, so
   the scoreboard costs nothing when Obs is off. *)

let counter s name = List.assoc_opt name s.Metrics.counters
let histogram s name = List.assoc_opt name s.Metrics.histograms

let ratio num den =
  match (num, den) with
  | Some n, Some d when d > 0 -> Some (float_of_int n /. float_of_int d)
  | _ -> None

(* Mean log2 of a candidate-set-size histogram: the residual entropy (in
   bits) an attacker still faces per recovered byte, estimated at bucket
   midpoints.  0 bits = unique candidate = full recovery. *)
let mean_log2 (hs : Metrics.histogram_snapshot) =
  if hs.count = 0 then None
  else
    Some
      (List.fold_left
         (fun acc (b, n) ->
           acc +. (float_of_int n *. Float.log2 (Metrics.bucket_midpoint b)))
         0. hs.buckets
      /. float_of_int hs.count)

let derive s =
  let out = ref [] in
  let put name v = out := (name, v) :: !out in
  let rate name num den =
    Option.iter (put name) (ratio (counter s num) (counter s den))
  in
  let entropy name hist =
    Option.iter
      (fun hs -> Option.iter (put name) (mean_log2 hs))
      (histogram s hist)
  in
  (* Taint engine: how often tainted bytes reach a leaking gadget. *)
  rate "leak.taint.gadget_hits_per_input_byte" "taint.gadget_hits"
    "taint.input_bytes";
  (* Page-fault channels: observed faults per secret byte processed, and
     the fraction of bytes whose reading was lost to fault coalescing. *)
  rate "leak.sgx.faults_per_byte" "sgx.faults" "sgx.bytes";
  rate "leak.sgx.lost_reading_rate" "sgx.lost_readings" "sgx.bytes";
  rate "leak.sgx.zlib.faults_per_byte" "sgx.zlib.faults" "sgx.zlib.bytes";
  rate "leak.sgx.zlib.lost_reading_rate" "sgx.zlib.lost_readings"
    "sgx.zlib.bytes";
  rate "leak.sgx.lzw.faults_per_byte" "sgx.lzw.faults" "sgx.lzw.bytes";
  rate "leak.sgx.lzw.lost_reading_rate" "sgx.lzw.lost_readings"
    "sgx.lzw.bytes";
  (* Recovery: residual entropy per byte and how much of the ambiguity
     the repair passes win back. *)
  entropy "leak.sgx.candidate_entropy_bits" "sgx.candidates_per_byte";
  entropy "leak.recovery.bzip2.candidate_entropy_bits"
    "recovery.bzip2.candidates_per_byte";
  (match
     (counter s "recovery.bzip2.ambiguous", histogram s "recovery.bzip2.candidates_per_byte")
   with
  | Some ambiguous, Some hs when hs.count > 0 ->
      put "leak.recovery.bzip2.ambiguity_rate"
        (float_of_int ambiguous /. float_of_int hs.count)
  | _ -> ());
  (match (counter s "recovery.bzip2.repaired", counter s "recovery.bzip2.ambiguous") with
  | Some repaired, Some ambiguous when ambiguous > 0 ->
      put "leak.recovery.bzip2.repair_rate"
        (float_of_int repaired /. float_of_int ambiguous)
  | _ -> ());
  rate "leak.recovery.lzw.repair_rate" "recovery.lzw.repairs"
    "recovery.lzw.resolved";
  List.rev !out
