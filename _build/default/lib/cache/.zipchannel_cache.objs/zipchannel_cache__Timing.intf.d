lib/cache/timing.mli: Zipchannel_util
