type block_info = {
  index : int;
  length : int;
  path : Block_sort.path;
}

let default_block_size = 10_000

(* The largest post-RLE1 block length the format supports.  The header's
   u32 length field otherwise lets a few dozen adversarial bytes demand a
   4 GiB block; the cap keeps the decoder's per-block memory bounded.
   [compress] rejects larger [block_size] values so every stream the
   compressor can produce stays decodable. *)
let max_block_size = 1 lsl 24

let magic = "ZBZ2"

let block_marker = 0x31

let end_marker = 0x17

(* Multi-table Huffman coding of the RLE2 symbol stream, as in bzip2:
   the stream is cut into groups of 50 symbols; between 2 and 6 tables are
   trained by iterative reassignment (each group picks its cheapest
   table, tables are refit to their groups); the chosen table per group
   (the selector) is MTF'd and written in unary. *)
let group_size = 50

let n_groups_for n_symbols =
  if n_symbols < 200 then 2
  else if n_symbols < 600 then 3
  else if n_symbols < 1200 then 4
  else if n_symbols < 2400 then 5
  else 6

let refinement_iters = 4

let add_u32 w v =
  Bitio.Writer.add_bits_msb w ~value:(v lsr 16) ~count:16;
  Bitio.Writer.add_bits_msb w ~value:(v land 0xffff) ~count:16

let read_u32 r =
  let hi = Bitio.Reader.read_bits_msb r 16 in
  let lo = Bitio.Reader.read_bits_msb r 16 in
  (hi lsl 16) lor lo

(* [symbols] buffers may be arena slots whose physical length exceeds
   the encoded stream, so every helper below takes the logical symbol
   count [n_syms] explicitly. *)

let group_count ~n_syms = (n_syms + group_size - 1) / group_size

let group_bounds ~n_syms g =
  let lo = g * group_size in
  (lo, min n_syms (lo + group_size) - 1)

(* Train the tables: initial assignment is round-robin over contiguous
   chunks, then a few rounds of cheapest-table reassignment. *)
let train_tables symbols ~n_syms =
  let n_groups = n_groups_for n_syms in
  let groups = group_count ~n_syms in
  let selectors = Array.init groups (fun g -> g * n_groups / max 1 groups) in
  let lengths = Array.make n_groups [||] in
  let refit () =
    let freqs = Array.init n_groups (fun _ -> Array.make Rle2.alphabet_size 0) in
    Array.iteri
      (fun g table ->
        let lo, hi = group_bounds ~n_syms g in
        for k = lo to hi do
          let s = symbols.(k) in
          freqs.(table).(s) <- freqs.(table).(s) + 1
        done)
      selectors;
    Array.iteri
      (fun t f ->
        (* An unused table still needs a valid (dummy) code set. *)
        if Array.for_all (fun c -> c = 0) f then f.(Rle2.eob) <- 1;
        lengths.(t) <- Huffman.lengths_of_freqs f)
      freqs
  in
  refit ();
  for _ = 2 to refinement_iters do
    (* Reassign each group to its cheapest table.  A symbol without a code
       in some table makes that table infinitely expensive. *)
    Array.iteri
      (fun g _ ->
        let lo, hi = group_bounds ~n_syms g in
        let best = ref selectors.(g) and best_cost = ref max_int in
        for t = 0 to n_groups - 1 do
          let cost = ref 0 in
          for k = lo to hi do
            let l = lengths.(t).(symbols.(k)) in
            if l = 0 then cost := max_int / 2 else cost := !cost + l
          done;
          if !cost < !best_cost then begin
            best_cost := !cost;
            best := t
          end
        done;
        selectors.(g) <- !best)
      selectors;
    refit ()
  done;
  (n_groups, selectors, lengths)

(* Selectors are MTF-coded over table indices and written in unary
   (k ones then a zero), exactly bzip2's scheme. *)
let write_selectors w ~n_groups selectors =
  let order = Array.init n_groups (fun i -> i) in
  Array.iter
    (fun sel ->
      let pos = ref 0 in
      while order.(!pos) <> sel do incr pos done;
      for _ = 1 to !pos do Bitio.Writer.add_bit w true done;
      Bitio.Writer.add_bit w false;
      let v = order.(!pos) in
      Array.blit order 0 order 1 !pos;
      order.(0) <- v)
    selectors

(* Explicit in-order loop: both the MTF order array and the bit reader
   are mutated per selector, and [Array.init] does not guarantee the
   order it applies the closure in. *)
let read_selectors r ~n_groups ~count =
  let order = Array.init n_groups (fun i -> i) in
  let selectors = Array.make count 0 in
  for k = 0 to count - 1 do
    let pos = ref 0 in
    while Bitio.Reader.read_bit r do
      incr pos;
      if !pos >= n_groups then failwith "Bzip2.decompress: bad selector"
    done;
    let v = order.(!pos) in
    Array.blit order 0 order 1 !pos;
    order.(0) <- v;
    selectors.(k) <- v
  done;
  selectors

module Obs = Zipchannel_obs.Obs

let m_bytes_in = Obs.Metrics.counter "kernel.bzip2.bytes_in"
let m_bytes_out = Obs.Metrics.counter "kernel.bzip2.bytes_out"
let m_blocks = Obs.Metrics.counter "kernel.bzip2.blocks"
let h_block_bytes = Obs.Metrics.histogram "kernel.bzip2.block_bytes"

(* Everything after the BWT/MTF/RLE2 stages — table training and the
   serialised block body — shared by the arena pipeline and the
   reference path so the two can only diverge in the stages the
   differential tests pin. *)
let write_block_body w ~primary ~len symbols ~n_syms =
  let n_groups, selectors, lengths = train_tables symbols ~n_syms in
  let codes = Array.map Huffman.canonical_codes lengths in
  Bitio.Writer.add_bits_msb w ~value:block_marker ~count:8;
  add_u32 w len;
  add_u32 w primary;
  Bitio.Writer.add_bits_msb w ~value:n_groups ~count:3;
  Bitio.Writer.add_bits_msb w ~value:(Array.length selectors) ~count:15;
  write_selectors w ~n_groups selectors;
  Array.iter (fun l -> Huffman.write_lengths w l) lengths;
  for k = 0 to n_syms - 1 do
    let table = selectors.(k / group_size) in
    Huffman.write_symbol w codes.(table) symbols.(k)
  done

(* One post-RLE1 block, read in place from [data.(off .. off + len - 1)].
   All per-stage scratch lives in [arena], which the caller owns for the
   duration of the call; the chain RLE1 slice -> BWT -> MTF -> RLE2 runs
   with no intermediate [Bytes.sub] or copies. *)
let compress_block w ~budget_factor ~block_size ~index ~arena data ~off ~len =
  Obs.with_span "bzip2.block"
    ~attrs:[ ("index", string_of_int index); ("bytes", string_of_int len) ]
  @@ fun () ->
  Obs.Metrics.incr m_blocks;
  Obs.Metrics.observe h_block_bytes len;
  let full_block = len = block_size in
  let perm, path =
    Block_sort.block_sort_sub ~arena ~budget_factor ~full_block data ~off ~len
  in
  let last, primary = Bwt.transform_with_sub ~arena ~perm data ~off ~len in
  let mtf = Mtf.encode_sub ~arena last ~off:0 ~len in
  let symbols, n_syms = Rle2.encode_sub ~arena mtf ~len in
  write_block_body w ~primary ~len symbols ~n_syms;
  { index; length = len; path }

let compress_with_info ?(block_size = default_block_size)
    ?(budget_factor = Block_sort.default_budget_factor) ?(jobs = 1) input =
  if block_size < 16 then invalid_arg "Bzip2.compress: block_size too small";
  if block_size > max_block_size then
    invalid_arg "Bzip2.compress: block_size too large";
  Obs.with_span "bzip2.compress"
    ~attrs:[ ("bytes", string_of_int (Bytes.length input)) ]
  @@ fun () ->
  let data = Rle1.encode input in
  let n = Bytes.length data in
  let w = Bitio.Writer.create () in
  String.iter
    (fun c -> Bitio.Writer.add_bits_msb w ~value:(Char.code c) ~count:8)
    magic;
  (* Blocks are independent: each one is compressed into its own bit
     writer (possibly on another domain) and the bitstreams are spliced
     back in order.  Splicing is pure bit concatenation, so the output is
     byte-identical for every [jobs] value. *)
  let n_blocks = (n + block_size - 1) / block_size in
  let parts =
    Zipchannel_parallel.Pool.map_array ~jobs
      (fun index ->
        let off = index * block_size in
        let len = min block_size (n - off) in
        let bw = Bitio.Writer.create () in
        let info =
          Zipchannel_buf.Arena.with_arena (fun arena ->
              compress_block bw ~budget_factor ~block_size ~index ~arena data
                ~off ~len)
        in
        (bw, info))
      (Array.init n_blocks (fun i -> i))
  in
  let infos =
    Array.fold_left
      (fun acc (bw, info) ->
        Bitio.Writer.append w bw;
        info :: acc)
      [] parts
  in
  Bitio.Writer.add_bits_msb w ~value:end_marker ~count:8;
  let out = Bitio.Writer.to_bytes w in
  Obs.Metrics.add m_bytes_in (Bytes.length input);
  Obs.Metrics.add m_bytes_out (Bytes.length out);
  (out, List.rev infos)

let compress ?block_size ?budget_factor ?jobs input =
  fst (compress_with_info ?block_size ?budget_factor ?jobs input)

(* Reference compression path: sequential, one whole-block [Bytes.sub]
   per block, fresh allocations in every stage via the public per-stage
   APIs.  Not used in production — retained so the differential tests can
   pin the arena/slice pipeline above to byte-identical output. *)
let compress_ref ?(block_size = default_block_size)
    ?(budget_factor = Block_sort.default_budget_factor) input =
  if block_size < 16 then invalid_arg "Bzip2.compress: block_size too small";
  if block_size > max_block_size then
    invalid_arg "Bzip2.compress: block_size too large";
  let data = Rle1.encode input in
  let n = Bytes.length data in
  let w = Bitio.Writer.create () in
  String.iter
    (fun c -> Bitio.Writer.add_bits_msb w ~value:(Char.code c) ~count:8)
    magic;
  let n_blocks = (n + block_size - 1) / block_size in
  for index = 0 to n_blocks - 1 do
    let pos = index * block_size in
    let block = Bytes.sub data pos (min block_size (n - pos)) in
    let full_block = Bytes.length block = block_size in
    let perm, _ = Block_sort.block_sort ~budget_factor ~full_block block in
    let last, primary = Bwt.transform_with ~perm block in
    let symbols = Rle2.encode (Mtf.encode last) in
    write_block_body w ~primary ~len:(Bytes.length block) symbols
      ~n_syms:(Array.length symbols)
  done;
  Bitio.Writer.add_bits_msb w ~value:end_marker ~count:8;
  Bitio.Writer.to_bytes w

let decompress_result data =
  let r = Bitio.Reader.create data in
  Codec_error.protect ~codec:"bzip2"
    ~offset:(fun () -> Bitio.Reader.byte_position r)
  @@ fun () ->
  String.iter
    (fun c ->
      if Bitio.Reader.read_bits_msb r 8 <> Char.code c then
        failwith "Bzip2.decompress: bad magic")
    magic;
  let out = Buffer.create (Bytes.length data * 2) in
  let rec blocks () =
    match Bitio.Reader.read_bits_msb r 8 with
    | m when m = end_marker -> ()
    | m when m = block_marker ->
        let len = read_u32 r in
        if len > max_block_size then
          failwith "Bzip2.decompress: block length exceeds maximum";
        let primary = read_u32 r in
        let n_groups = Bitio.Reader.read_bits_msb r 3 in
        if n_groups < 2 || n_groups > 6 then
          failwith "Bzip2.decompress: bad table count";
        let n_selectors = Bitio.Reader.read_bits_msb r 15 in
        let selectors = read_selectors r ~n_groups ~count:n_selectors in
        (* Explicit in-order loop: each table read advances the reader. *)
        let decoders =
          Array.make n_groups (Huffman.decoder_of_lengths [||])
        in
        for t = 0 to n_groups - 1 do
          let lengths = Huffman.read_lengths r in
          if Array.length lengths <> Rle2.alphabet_size then
            failwith "Bzip2.decompress: bad table";
          decoders.(t) <- Huffman.decoder_of_lengths lengths
        done;
        let symbols = ref [] in
        let count = ref 0 in
        let finished = ref false in
        while not !finished do
          let group = !count / group_size in
          if group >= n_selectors then
            failwith "Bzip2.decompress: selectors exhausted";
          let s = Huffman.read_symbol r decoders.(selectors.(group)) in
          symbols := s :: !symbols;
          incr count;
          if s = Rle2.eob then finished := true
        done;
        (* The decoded block must come out exactly [len] bytes, so [len]
           also caps the zero-run expansion. *)
        let mtf =
          Rle2.decode ~max_output:len (Array.of_list (List.rev !symbols))
        in
        let last = Mtf.decode mtf in
        if Bytes.length last <> len then
          failwith "Bzip2.decompress: length mismatch";
        Buffer.add_bytes out (Bwt.inverse last primary);
        blocks ()
    | _ -> failwith "Bzip2.decompress: bad block marker"
  in
  blocks ();
  Rle1.decode (Buffer.to_bytes out)

let decompress data = Codec_error.unwrap (decompress_result data)
