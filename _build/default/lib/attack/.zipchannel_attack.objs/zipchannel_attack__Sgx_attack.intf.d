lib/attack/sgx_attack.mli: Attack_config Noise Zipchannel_cache
