(** Side-band sampling wall-clock profiler and runtime telemetry plane.

    A ticker thread reads the per-domain span-path slots published by
    {!Obs.Prof} at a fixed interval (~1 kHz by default) and accumulates
    folded-stack sample counts, so flamegraph-shaped data is available
    with span tracing {e off}.  The instrumented code pays one atomic
    store per span push/pop and is never interrupted, locked, or
    signalled: compressed output stays byte-identical with the sampler
    on or off at any [--jobs].

    The same ticker derives a runtime telemetry plane from
    [Gc.quick_stat] deltas — minor/major collections, promoted words,
    heap size, allocation rate — published as [runtime.*] gauges and
    counters through {!Obs.Metrics} (and therefore visible on a serve
    daemon's [/metrics] endpoints), plus per-top-level-span allocation
    attribution for the domain that started the sampler.

    Sampled span self-time shares are additionally published as
    [prof.samples] / [prof.self.<leaf-span>] counters. *)

val start : ?interval_us:int -> unit -> unit
(** Start the ticker thread (default interval 1000 µs ≈ 1 kHz) and turn
    on {!Obs.Prof} slot publication.  Idempotent while running.  The
    calling domain's slot is recorded as the {e anchor}: per-top-span
    GC attribution follows whatever top-level span that slot shows. *)

val stop : unit -> unit
(** Stop and join the ticker, turn slot publication off.  Accumulated
    state is kept until {!reset} so a report can be taken after. *)

val running : unit -> bool

val reset : unit -> unit
(** Zero all accumulated samples and runtime deltas (keeps the ticker
    running if it is). *)

val sample_once : unit -> unit
(** Take exactly one sample of all slots plus a runtime delta, as the
    ticker would — deterministic hook for tests and for profiling
    single-shot code without a thread. Usable with the ticker stopped. *)

type gc_delta = {
  minor_collections : int;
  major_collections : int;
  compactions : int;
  minor_words : float;
  promoted_words : float;
  heap_mb : float;  (** current major-heap size, MB (last observation) *)
  top_heap_mb : float;
  alloc_mb : float;  (** total allocation over the window, MB *)
  elapsed_s : float;
}

type slice = {
  top_span : string;  (** root component of the anchor slot's path *)
  samples : int;
  alloc_mb : float;  (** allocation attributed to ticks under this root *)
}

type report = {
  ticks : int;  (** sampler wakeups *)
  total_samples : int;  (** non-idle slot observations (≤ ticks × slots) *)
  folded : (string * int) list;
      (** folded stacks, ["domain-<slot>;outer;inner" -> samples],
          sorted by count descending — flamegraph input *)
  self : (string * int * int) list;
      (** per span name: (name, self samples, total samples), self
          descending.  Self counts ticks where the span was the leaf;
          total counts ticks where it was anywhere on the path. *)
  gc : gc_delta;  (** cumulative since [start]/[reset] *)
  slices : slice list;  (** per-top-span attribution, samples descending *)
}

val report : unit -> report

val report_to_json : report -> string
(** One JSON object: [{"ticks":..,"samples":..,"folded":{..},
    "self":{name:[self,total]},"gc":{..},"slices":[..]}]. *)

val folded_lines : ?prefix:string -> report -> string
(** The folded-stack text form ([key count] lines, one per stack),
    optionally prefixing every key with [prefix ^ ";"] — feedable to
    standard flamegraph tooling and to the bench [--folded] artifact. *)
