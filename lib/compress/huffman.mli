(** Canonical Huffman coding.

    Code lengths are derived from symbol frequencies with a binary heap and
    repaired to respect a maximum length (the zlib overflow-repair
    technique); codes are then assigned canonically so that only the length
    array needs to be serialized.  Encoding and decoding are MSB-first. *)

type code = { length : int; bits : int }

val lengths_of_freqs : ?max_length:int -> int array -> int array
(** [lengths_of_freqs freqs] maps each symbol to its code length; symbols
    with zero frequency get length 0.  [max_length] defaults to 15.
    A lone used symbol gets length 1.  @raise Invalid_argument if more than
    [2^max_length] symbols are in use. *)

val canonical_codes : int array -> code array
(** Canonical code assignment from lengths: shorter codes first, ties by
    symbol index.  Length-0 symbols get [{length = 0; bits = 0}].
    @raise Invalid_argument if the lengths oversubscribe the code space. *)

val write_lengths : Bitio.Writer.t -> int array -> unit
(** Serialize a length array (values 0..15, 4 bits each) preceded by the
    16-bit symbol count. *)

val read_lengths : Bitio.Reader.t -> int array
(** Reads the 16-bit count then that many 4-bit lengths, in stream
    order.  Truncation surfaces as the reader's own exception (see
    {!Bitio.Reader}) — callers are decoder internals that map it to a
    {!Codec_error.t} at their own boundary. *)

val write_symbol : Bitio.Writer.t -> code array -> int -> unit
(** @raise Invalid_argument when the symbol has no code. *)

type decoder

val decoder_of_lengths : int array -> decoder

val read_symbol : Bitio.Reader.t -> decoder -> int
(** @raise Failure on a code not present in the table. *)

val read_symbol_bits : (unit -> bool) -> decoder -> int
(** Decode one symbol from a bit source delivering the code most
    significant bit first — lets the canonical decoder run over any bit
    stream (e.g. RFC 1951's LSB-packed layout).
    @raise Failure on an invalid code. *)

val encode : bytes -> bytes
(** Self-contained single-table byte compressor: header (lengths) + body +
    32-bit symbol count.  Exercises the whole module and serves as the
    entropy stage of the LZW-less pipelines. *)

val decode_result : bytes -> (bytes, Codec_error.t) result
(** Safe inverse of {!encode}: truncated or corrupt input, and headers
    declaring more output than the payload holds bits (each symbol costs
    at least one bit), return [Error]; no exception escapes. *)

val decode : bytes -> bytes
(** [Codec_error.unwrap] of {!decode_result}.
    @raise Failure on malformed input. *)
