lib/attack/timer_attack.ml: Array Bytes Float Hashtbl List Prng Recovery Stats Victim Zipchannel_cache Zipchannel_compress Zipchannel_sgx Zipchannel_util
