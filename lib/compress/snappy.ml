module Obs = Zipchannel_obs.Obs

(* Snappy raw format: a varint decompressed length, then a stream of
   tagged elements.  The low 2 bits of each tag byte select the element:
   00 a literal run (length in the high 6 bits, 60..63 meaning "read that
   many minus 59 little-endian length bytes"), 01 a copy with a 1-byte
   offset (3-bit length, 11-bit offset), 10 a copy with a 2-byte
   little-endian offset (6-bit length), 11 a copy with a 4-byte offset
   (decoded, never emitted). *)

let min_match = 4
let max_copy_len = 64
let max_offset = 0xffff

(* snappy's multiplicative match-finder hash: like LZ4's, the table index
   is a pure function of 4 raw input bytes and feeds a load and a store —
   the hash-head gadget shape. *)
let hash_bits = 14
let hash_size = 1 lsl hash_bits
let hash_const = 0x1e35a7bd

let hash_of_quad v = ((v * hash_const) land 0xffffffff) lsr (32 - hash_bits)

let quad b i =
  Char.code (Bytes.unsafe_get b i)
  lor (Char.code (Bytes.unsafe_get b (i + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get b (i + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get b (i + 3)) lsl 24)

let m_bytes_in = Obs.Metrics.counter "kernel.snappy.bytes_in"
let m_bytes_out = Obs.Metrics.counter "kernel.snappy.bytes_out"
let m_probes = Obs.Metrics.counter "kernel.snappy.htab_probes"

let put_byte buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let put_varint buf v =
  let rest = ref v in
  while !rest >= 0x80 do
    put_byte buf (0x80 lor (!rest land 0x7f));
    rest := !rest lsr 7
  done;
  put_byte buf !rest

let emit_literals buf src ~anchor ~len =
  if len > 0 then begin
    let v = len - 1 in
    if v < 60 then put_byte buf (v lsl 2)
    else begin
      let n_bytes = if v < 1 lsl 8 then 1 else if v < 1 lsl 16 then 2 else 3 in
      put_byte buf ((59 + n_bytes) lsl 2);
      for k = 0 to n_bytes - 1 do
        put_byte buf ((v lsr (8 * k)) land 0xff)
      done
    end;
    Buffer.add_subbytes buf src anchor len
  end

(* one copy element, [len <= 64]; the caller splits longer matches *)
let emit_copy buf ~offset ~len =
  if len >= 4 && len <= 11 && offset < 1 lsl 11 then begin
    put_byte buf (((offset lsr 8) lsl 5) lor ((len - 4) lsl 2) lor 1);
    put_byte buf (offset land 0xff)
  end
  else begin
    put_byte buf (((len - 1) lsl 2) lor 2);
    put_byte buf (offset land 0xff);
    put_byte buf (offset lsr 8)
  end

let compress src =
  Obs.with_span "snappy.compress"
  @@ fun _ ->
  let n = Bytes.length src in
  let buf = Buffer.create (n + (n / 6) + 16) in
  put_varint buf n;
  let probes = ref 0 in
  if n > 0 then begin
    let table = Array.make hash_size (-1) in
    let anchor = ref 0 in
    let i = ref 0 in
    let scan_limit = n - min_match in
    while !i <= scan_limit do
      let h = hash_of_quad (quad src !i) in
      let candidate = table.(h) in
      incr probes;
      table.(h) <- !i;
      if
        candidate >= 0
        && !i - candidate <= max_offset
        && quad src candidate = quad src !i
      then begin
        let len = ref min_match in
        while
          !i + !len < n
          && Bytes.unsafe_get src (candidate + !len)
             = Bytes.unsafe_get src (!i + !len)
        do
          incr len
        done;
        emit_literals buf src ~anchor:!anchor ~len:(!i - !anchor);
        let offset = !i - candidate in
        let rest = ref !len in
        while !rest > 0 do
          let chunk = min !rest max_copy_len in
          emit_copy buf ~offset ~len:chunk;
          rest := !rest - chunk
        done;
        i := !i + !len;
        anchor := !i
      end
      else incr i
    done;
    emit_literals buf src ~anchor:!anchor ~len:(n - !anchor)
  end;
  let out = Buffer.to_bytes buf in
  Obs.Metrics.add m_bytes_in n;
  Obs.Metrics.add m_bytes_out (Bytes.length out);
  if Obs.enabled () then Obs.Metrics.add m_probes !probes;
  out

(* Decompression-bomb guard: the densest element is a 2-byte-offset copy —
   3 payload bytes emitting 64 output bytes — so a declared length beyond
   [22 * payload + 8] cannot be honest.  Checked before allocation;
   saturates instead of overflowing. *)
let max_declared_length ~payload_bytes =
  if payload_bytes > (max_int - 8) / 22 then max_int
  else (22 * payload_bytes) + 8

let decompress_result data =
  let len = Bytes.length data in
  let pos = ref 0 in
  Codec_error.protect ~codec:"snappy" ~offset:(fun () -> !pos)
  @@ fun () ->
  let byte () =
    if !pos >= len then failwith "Snappy.decompress: truncated input";
    let v = Char.code (Bytes.unsafe_get data !pos) in
    incr pos;
    v
  in
  (* 32-bit varint: at most 5 bytes, the last holding 4 bits *)
  let n =
    let v = ref 0 and shift = ref 0 and stop = ref false in
    while not !stop do
      if !shift > 28 then failwith "Snappy.decompress: malformed length varint";
      let b = byte () in
      v := !v lor ((b land 0x7f) lsl !shift);
      shift := !shift + 7;
      if b < 0x80 then stop := true
    done;
    !v
  in
  if n > max_declared_length ~payload_bytes:(len - !pos) then
    failwith
      "Snappy.decompress: declared length exceeds what the input can encode";
  let out = Bytes.create n in
  let op = ref 0 in
  let copy ~offset ~count =
    if offset = 0 || offset > !op then
      failwith "Snappy.decompress: invalid copy offset";
    if count > n - !op then
      failwith "Snappy.decompress: copy exceeds declared length";
    let from = !op - offset in
    for k = 0 to count - 1 do
      Bytes.unsafe_set out (!op + k) (Bytes.unsafe_get out (from + k))
    done;
    op := !op + count
  in
  while !op < n do
    let tag = byte () in
    match tag land 0x3 with
    | 0 ->
        let v = tag lsr 2 in
        let lit_len =
          if v < 60 then v + 1
          else begin
            let n_bytes = v - 59 in
            let r = ref 0 in
            for k = 0 to n_bytes - 1 do
              r := !r lor (byte () lsl (8 * k))
            done;
            !r + 1
          end
        in
        if lit_len > n - !op then
          failwith "Snappy.decompress: literal run exceeds declared length";
        if !pos + lit_len > len then
          failwith "Snappy.decompress: truncated input";
        Bytes.blit data !pos out !op lit_len;
        pos := !pos + lit_len;
        op := !op + lit_len
    | 1 ->
        let lo = byte () in
        copy
          ~offset:(((tag lsr 5) lsl 8) lor lo)
          ~count:(4 + ((tag lsr 2) land 0x7))
    | 2 ->
        (* explicit lets: operand evaluation order of [lor] is unspecified *)
        let lo = byte () in
        let offset = lo lor (byte () lsl 8) in
        copy ~offset ~count:((tag lsr 2) + 1)
    | _ ->
        let b0 = byte () in
        let b1 = byte () in
        let b2 = byte () in
        let b3 = byte () in
        let offset = b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24) in
        copy ~offset ~count:((tag lsr 2) + 1)
  done;
  if !pos < len then
    failwith "Snappy.decompress: trailing bytes after stream end";
  out

let decompress data = Codec_error.unwrap (decompress_result data)
