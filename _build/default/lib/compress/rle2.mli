(** Bzip2's second-stage encoding: zero-run coding of MTF output.

    Runs of zeroes (the dominant MTF symbol after BWT) are written in
    bijective base 2 using the two symbols RUNA and RUNB; every other MTF
    symbol [s] is shifted to [s + 1].  The resulting alphabet is
    [0 .. 257] with 257 reserved for the end-of-block marker appended by
    {!encode}. *)

val runa : int
(** = 0 *)

val runb : int
(** = 1 *)

val eob : int
(** = 257, always the final symbol of {!encode}'s output. *)

val alphabet_size : int
(** = 258 *)

val encode : int array -> int array
(** MTF symbols (0..255) to the RLE2 alphabet, EOB-terminated. *)

val decode : int array -> int array
(** Inverse of {!encode}; input must be EOB-terminated.
    @raise Failure on malformed input. *)
