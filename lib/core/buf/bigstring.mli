(** Off-heap char buffers with unaligned word access.

    The zero-copy substrate under the compression kernels: a plain char
    [Bigarray.Array1] plus the compiler's bigstring primitives for
    unaligned 8/16/32/64-bit loads and stores.  All word helpers are
    native-endian and the library refuses to load on big-endian
    targets, so "low byte" always means "first byte in memory". *)

type t = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : int -> t
(** Uninitialised buffer of the given length (contents arbitrary). *)

val length : t -> int

val get : t -> int -> char
(** Bounds-checked byte access. *)

val set : t -> int -> char -> unit

external unsafe_get : t -> int -> char = "%caml_ba_unsafe_ref_1"
(** Unchecked byte access: the caller owns the bounds proof. *)

external unsafe_set : t -> int -> char -> unit = "%caml_ba_unsafe_set_1"

external get16u : t -> int -> int = "%caml_bigstring_get16u"
(** Unaligned, unchecked 16-bit little-endian load. *)

external get32u : t -> int -> int32 = "%caml_bigstring_get32u"

external get64u : t -> int -> int64 = "%caml_bigstring_get64u"

external set16u : t -> int -> int -> unit = "%caml_bigstring_set16u"

external set32u : t -> int -> int32 -> unit = "%caml_bigstring_set32u"

external set64u : t -> int -> int64 -> unit = "%caml_bigstring_set64u"

external bytes_get64u : bytes -> int -> int64 = "%caml_bytes_get64u"
(** Unaligned, unchecked 64-bit load from [bytes] — the same primitive
    family, for readers that stay zero-copy over caller-owned buffers. *)

external bytes_set64u : bytes -> int -> int64 -> unit = "%caml_bytes_set64u"

val blit_of_bytes : bytes -> src_off:int -> t -> dst_off:int -> len:int -> unit
(** Word-at-a-time copy from [bytes]; bounds-checked once up front. *)

val blit_to_bytes : t -> src_off:int -> bytes -> dst_off:int -> len:int -> unit

val blit : t -> src_off:int -> t -> dst_off:int -> len:int -> unit

val of_bytes : bytes -> t

val to_bytes : t -> off:int -> len:int -> bytes

val common_prefix : t -> int -> int -> limit:int -> int
(** [common_prefix t i j ~limit] is the length of the longest common
    prefix of the regions starting at [i] and [j], capped at [limit] —
    the memcmp-style 64-bit word-at-a-time comparison under the LZ77
    match extender.  Both regions must have [limit] bytes in bounds. *)
