(** Pseudo-English filler-text generation.

    Stand-in for the Python [lipsum] utility the paper uses to build the
    repetitiveness corpus of Section VI (Fig. 8): text that looks like
    natural language — word-length distribution, capitalisation,
    punctuation — with repetition controlled by the caller. *)

val word : Prng.t -> string
(** One lowercase latin word. *)

val sentence : Prng.t -> string
(** A capitalised sentence of 4–12 words ending with a period. *)

val paragraph : Prng.t -> string
(** A paragraph of 3–7 sentences separated by single spaces. *)

val paragraphs : Prng.t -> int -> string list
(** [paragraphs t n] is [n] independent paragraphs. *)

val repetitive_file : Prng.t -> level:int -> size:int -> string
(** [repetitive_file t ~level ~size] reproduces the paper's Fig. 8 corpus
    construction: generate 5 paragraphs, truncate each to its first 20
    characters, then emit a [size]-byte string made of fragments drawn
    uniformly from the first [level] truncated paragraphs.  [level] = 1
    yields maximal repetition (one fragment repeated), [level] = 5 the
    least.  @raise Invalid_argument unless [1 <= level <= 5]. *)
