test/main.mli:
