lib/compress/lz77.mli: Format
