lib/compress/deflate.ml: Array Bitio Char Huffman List Lz77
