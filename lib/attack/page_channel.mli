(** The page-granular Prime+Probe channel shared by the enclave attacks.

    Wraps the paper's Section V toolbox: per-page frame selection
    (Section V-C2), priming/probing the 64 lines of a page's frame, the
    noisy-line log used to discount transition pollution, and the CAT
    class-of-service setup.  {!Sgx_attack} (Bzip2) and {!Lzw_sgx_attack}
    drive different single-stepping state machines over the same
    channel. *)

type t

val create :
  config:Attack_config.t ->
  cache:Zipchannel_cache.Cache.t ->
  page_table:Zipchannel_sgx.Page_table.t ->
  prng:Zipchannel_util.Prng.t ->
  t

val setup_cat : config:Attack_config.t -> Zipchannel_cache.Cache.t -> unit
(** Apply the offensive CAT partition (attacker/victim core = one way,
    rest of the system = the others) when the config enables it. *)

val noise : t -> Noise.t

val frame_remaps : t -> int

val select_frame : t -> vpage:int -> int
(** The frame serving [vpage], running frame selection on first use. *)

val prime_page : t -> vpage:int -> unit
(** Prime every line-set of the page's (selected) frame. *)

val probe_page : t -> vpage:int -> int list
(** Probe the page's 64 line-sets; returns candidate line indices
    (0..63), preferring lines outside the page's noisy-line log and
    giving up (empty) when the window is hopelessly polluted. *)

val observe_metrics : t -> unit
(** Publish the channel's telemetry (frame remaps, the underlying
    prime/probe and cache counters) into {!Zipchannel_obs.Obs.Metrics}
    under [sgx.*] / [prime_probe.*] / [cache.*].  No-op while Obs is
    disabled. *)
