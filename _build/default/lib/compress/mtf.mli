(** Move-to-front transform over the byte alphabet.

    The stage between BWT and the zero-run encoder in the Bzip2 pipeline:
    each byte is replaced by its current position in a recency list, and
    the byte moves to the front. *)

val encode : bytes -> int array
(** Output values are in 0..255. *)

val decode : int array -> bytes
(** @raise Invalid_argument on values outside 0..255. *)
