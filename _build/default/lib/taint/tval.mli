(** Tainted machine words.

    A [Tval.t] is a machine word carrying, for each bit position, the set of
    input-byte tags that flowed into that bit.  The propagation rules are the
    ones TaintChannel implements (paper Section III-B, Fig. 1):

    - instructions with several sources (xor, or, add, sub) merge the taint
      of the sources per bit position;
    - [and] with an untainted mask keeps taint only where the mask bit is 1;
    - shifts relocate taint by the shift amount (an arithmetic right shift
      replicates the sign bit's taint into the vacated positions);
    - taint never propagates through control flow (the paper's rule against
      over-tainting) — that is a property of how callers use this module,
      not of the module itself. *)

type t

val width : t -> int
(** Bit width, between 1 and 63. *)

val value : t -> int
(** The concrete value; always within [0, 2^width). *)

val taint : t -> int -> Tagset.t
(** [taint v i] is the tag set of bit [i] (0 = least significant).
    @raise Invalid_argument if [i] is outside the width. *)

val const : width:int -> int -> t
(** Untainted constant.  The value is truncated to [width] bits.
    @raise Invalid_argument unless [1 <= width <= 63]. *)

val input_byte : tag:Tagset.tag -> int -> t
(** An 8-bit value freshly read from the input: every bit tainted with
    [tag], as TaintChannel marks bytes at the [read] system call. *)

val with_taint : width:int -> int -> (int * Tagset.t) list -> t
(** [with_taint ~width v assoc] builds a value with explicit per-bit taint;
    bits absent from [assoc] are untainted.  For tests and table seeding. *)

val is_tainted : t -> bool

val tainted_bits : t -> (int * Tagset.t) list
(** Tainted bit positions in ascending order with their tags. *)

val tags : t -> Tagset.t
(** Union of all per-bit tag sets. *)

val zero_extend : width:int -> t -> t
(** Widen with untainted zero bits.  @raise Invalid_argument if narrower
    than the argument. *)

val truncate : width:int -> t -> t
(** Keep the low [width] bits. *)

val logxor : t -> t -> t
val logor : t -> t -> t
val logand : t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t

val shift_left : t -> int -> t
val shift_right_logical : t -> int -> t
val shift_right_arith : t -> int -> t

val mul_pow2 : t -> int -> t
(** [mul_pow2 v k] multiplies by [2^k]; scaled-index addressing modes
    ([rbp + rax*8]) reduce to this. *)

val equal : t -> t -> bool
(** Value, width and per-bit taint all equal. *)

val pp : Format.formatter -> t -> unit
