module Obs = Zipchannel_obs.Obs

let event_of_json j =
  let str key = Option.bind (Json.member key j) Json.to_str in
  let int key = Option.bind (Json.member key j) Json.to_int in
  match (str "ev", str "name", int "domain", int "depth", int "ts_ns") with
  | Some ev, Some name, Some domain, Some depth, Some ts_ns ->
      let phase =
        match ev with
        | "b" -> `Begin
        | "e" -> `End
        | other -> failwith ("Span_stream: unknown event kind " ^ other)
      in
      let attrs =
        match Json.member "attrs" j with
        | Some (Json.Obj members) ->
            List.filter_map
              (fun (k, v) ->
                match Json.to_str v with Some s -> Some (k, s) | None -> None)
              members
        | _ -> []
      in
      {
        Obs.Trace.phase;
        name;
        domain;
        depth;
        ts_ns;
        dur_ns = Option.value ~default:0 (int "dur_ns");
        attrs;
      }
  | _ -> failwith "Span_stream: missing ev/name/domain/depth/ts_ns field"

let of_string s = List.map event_of_json (Json.parse_many s)

let read_file path =
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string content

let is_span_stream = function
  | Json.Obj _ as j -> Json.member "ev" j <> None
  | _ -> false
