(* The leak audit plane: side-band discipline (compressed output is
   byte-identical with auditing off or on, at any [jobs]), sequence
   ordering of merged ring records under the reordering pipeline, the
   bounded ring, the EWMA delta semantics, the JSONL round trip through
   the exporter's reader, and the estimator's information measures on
   known distributions. *)

open Zipchannel_util
module C = Zipchannel_compress
module Frame = C.Frame
module Leak_audit = Zipchannel_obs_leak.Leak_audit
module Audit = Zipchannel.Obs_export.Audit
module Bigstring = Zipchannel_buf.Bigstring

let lipsum n =
  let prng = Prng.create ~seed:0xBEA7 () in
  Bytes.of_string (Lipsum.repetitive_file prng ~level:3 ~size:n)

(* Run [f] with auditing enabled and a fresh ring, restoring the
   disabled default afterwards so the rest of the suite stays
   side-band. *)
let with_audit f =
  Leak_audit.set_ring_capacity 1024;
  Leak_audit.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Leak_audit.set_enabled false;
      Leak_audit.set_sink Leak_audit.Null;
      Leak_audit.ring_clear ())
    f

let compress_jobs ~jobs data =
  let pos = ref 0 in
  let out = Buffer.create 4096 in
  Frame.compress_stream ~frame_size:512 ~jobs ~codec:Frame.Deflate
    ~read:(fun buf off len ->
      let take = min len (Bytes.length data - !pos) in
      Bytes.blit data !pos buf off take;
      pos := !pos + take;
      take)
    ~write:(fun buf ~off ~len -> Buffer.add_subbytes out buf off len)
    ();
  Buffer.contents out

(* ------------------------------------------------------------------ *)
(* Side-band: byte-identical output, audit off vs on, jobs 1 and 4 *)

let test_output_byte_identical () =
  let data = lipsum 40_000 in
  let off_1 = compress_jobs ~jobs:1 data in
  let off_4 = compress_jobs ~jobs:4 data in
  let on_1, on_4 =
    with_audit (fun () -> (compress_jobs ~jobs:1 data, compress_jobs ~jobs:4 data))
  in
  Alcotest.(check bool) "audit on = off, jobs 1" true (off_1 = on_1);
  Alcotest.(check bool) "audit on = off, jobs 4" true (off_4 = on_4);
  Alcotest.(check bool) "jobs 4 = jobs 1" true (off_1 = off_4)

let test_encoder_byte_identical () =
  let data = lipsum 10_000 in
  let run () =
    let out = Buffer.create 4096 in
    let emit big ~off ~len =
      Buffer.add_bytes out (Bigstring.to_bytes big ~off ~len)
    in
    let enc = Frame.Encoder.create ~frame_size:256 ~codec:Frame.Lzw ~emit () in
    Frame.Encoder.feed_bytes enc data ~off:0 ~len:4_000;
    Frame.Encoder.flush enc;
    Frame.Encoder.feed_bytes enc data ~off:4_000 ~len:(Bytes.length data - 4_000);
    Frame.Encoder.finish enc;
    Buffer.contents out
  in
  let plain = run () in
  let audited = with_audit run in
  Alcotest.(check bool) "encoder output unchanged" true (plain = audited)

(* ------------------------------------------------------------------ *)
(* Ring records: sequence order survives the reordering pipeline *)

(* Strip the process-unique stream id so runs are comparable. *)
let shape (r : Leak_audit.record) =
  (r.seq, r.tag, r.ulen, r.clen, r.delta, r.bucket)

let records_of_run ~jobs data =
  Leak_audit.ring_clear ();
  ignore (compress_jobs ~jobs data);
  List.map shape (Leak_audit.ring_records ())

let test_ring_order_jobs_invariant () =
  let data = lipsum 30_000 in
  with_audit (fun () ->
      let seq = records_of_run ~jobs:1 data in
      let par = records_of_run ~jobs:4 data in
      Alcotest.(check int) "record count" (List.length seq) (List.length par);
      Alcotest.(check bool) "same records in sequence order" true (seq = par);
      let seqs = List.map (fun (s, _, _, _, _, _) -> s) seq in
      let sorted = List.sort compare seqs in
      Alcotest.(check bool) "seq strictly ascending" true (seqs = sorted))

let qcheck_ring_order =
  QCheck.Test.make ~name:"leak audit records invariant under jobs" ~count:15
    QCheck.(pair (int_range 0 20_000) (int_range 2 4))
    (fun (n, jobs) ->
      let data = lipsum (max 1 n) in
      with_audit (fun () ->
          records_of_run ~jobs:1 data = records_of_run ~jobs data))

(* ------------------------------------------------------------------ *)
(* Delta semantics: first data frame 0, constant clens converge to 0 *)

let test_delta_semantics () =
  with_audit (fun () ->
      Leak_audit.ring_clear ();
      let s = Leak_audit.Stream.create ~bucket:3 ~codec:"test" () in
      for seq = 0 to 9 do
        Leak_audit.Stream.on_frame s ~seq ~tag:Leak_audit.Data ~ulen:100
          ~clen:50 ~enc_ns:0
      done;
      match Leak_audit.ring_records () with
      | [] -> Alcotest.fail "no records"
      | first :: rest ->
          Alcotest.(check int) "first delta" 0 first.Leak_audit.delta;
          List.iter
            (fun (r : Leak_audit.record) ->
              Alcotest.(check int)
                (Printf.sprintf "constant clen delta at seq %d" r.seq)
                0 r.delta)
            rest)

let test_prefix_bucket () =
  let b = Bytes.of_string "secret=1234567890abcdef" in
  let x = Leak_audit.prefix_bucket b ~len:(Bytes.length b) in
  let y = Leak_audit.prefix_bucket b ~len:(Bytes.length b) in
  Alcotest.(check int) "deterministic" x y;
  Alcotest.(check bool) "in range" true
    (x >= 0 && x < Leak_audit.n_prefix_buckets);
  (* Only the first 16 bytes key the bucket. *)
  let b' = Bytes.of_string "secret=1234567890ZZZZZZ" in
  Alcotest.(check int) "prefix only" x
    (Leak_audit.prefix_bucket b' ~len:(Bytes.length b'))

(* ------------------------------------------------------------------ *)
(* Bounded ring *)

let test_ring_bounded () =
  with_audit (fun () ->
      Leak_audit.set_ring_capacity 8;
      let s = Leak_audit.Stream.create ~bucket:0 ~codec:"test" () in
      for seq = 0 to 99 do
        Leak_audit.Stream.on_frame s ~seq ~tag:Leak_audit.Data ~ulen:10
          ~clen:10 ~enc_ns:0
      done;
      let held = Leak_audit.ring_records () in
      Alcotest.(check bool) "ring bounded" true (List.length held <= 8);
      Alcotest.(check int) "evictions counted" 100
        (List.length held + Leak_audit.evicted ());
      Leak_audit.set_ring_capacity 1024)

(* ------------------------------------------------------------------ *)
(* JSONL round trip through the exporter's reader *)

let test_jsonl_roundtrip () =
  let r =
    {
      Leak_audit.stream = 7;
      seq = 3;
      tag = Leak_audit.Flush;
      codec = "deflate";
      ulen = 512;
      clen = 203;
      delta = -4;
      bucket = 17;
      enc_ns = 12345;
      ts_ns = 999;
    }
  in
  (match Audit.of_string (Leak_audit.jsonl_of_record r) with
  | [ Audit.Frame r' ] ->
      Alcotest.(check bool) "frame record round trips" true (r = r')
  | _ -> Alcotest.fail "expected one frame record");
  let q =
    {
      Leak_audit.conn = 2;
      op = "compress";
      req_codec = "gzip";
      frame_size = 4096;
      req_bytes = 100;
      resp_bytes = 80;
      frames = 1;
      req_bucket = -1;
      wall_ns = 555;
      ts_ns = 1000;
      status = "ok";
    }
  in
  match Audit.of_string (Leak_audit.jsonl_of_request q) with
  | [ Audit.Request q' ] ->
      Alcotest.(check bool) "request record round trips" true (q = q')
  | _ -> Alcotest.fail "expected one request record"

let test_custom_sink () =
  with_audit (fun () ->
      let seen = ref [] in
      Leak_audit.set_sink
        (Leak_audit.Custom (fun r -> seen := r :: !seen));
      let s = Leak_audit.Stream.create ~bucket:1 ~codec:"test" () in
      Leak_audit.Stream.on_frame s ~seq:0 ~tag:Leak_audit.Data ~ulen:4 ~clen:4
        ~enc_ns:0;
      Leak_audit.set_sink Leak_audit.Null;
      Alcotest.(check int) "custom sink saw the record" 1 (List.length !seen))

(* ------------------------------------------------------------------ *)
(* Estimator: information measures on known distributions *)

let feed est ~bucket ~delta ~count =
  for _ = 1 to count do
    Leak_audit.Estimator.observe est ~bucket ~delta
  done

let test_estimator_separated () =
  (* Two buckets, disjoint deltas: a perfect 1-bit channel. *)
  let est = Leak_audit.Estimator.create ~buckets:4 ~delta_range:8 () in
  feed est ~bucket:0 ~delta:(-2) ~count:100;
  feed est ~bucket:1 ~delta:5 ~count:100;
  Alcotest.(check int) "observations" 200
    (Leak_audit.Estimator.observations est);
  let mi = Leak_audit.Estimator.mutual_information_bits est in
  let cap = Leak_audit.Estimator.capacity_bits est in
  let h = Leak_audit.Estimator.delta_entropy_bits est in
  Alcotest.(check (float 1e-6)) "MI = 1 bit" 1.0 mi;
  Alcotest.(check (float 1e-4)) "capacity = 1 bit" 1.0 cap;
  Alcotest.(check (float 1e-6)) "marginal entropy = 1 bit" 1.0 h;
  Alcotest.(check bool) "conditional histogram" true
    (Leak_audit.Estimator.cond_histogram est ~bucket:0 = [ (-2, 100) ])

let test_estimator_indistinguishable () =
  (* Same delta distribution in both buckets: nothing to learn. *)
  let est = Leak_audit.Estimator.create ~buckets:4 ~delta_range:8 () in
  List.iter
    (fun bucket ->
      feed est ~bucket ~delta:0 ~count:50;
      feed est ~bucket ~delta:3 ~count:50)
    [ 0; 1 ];
  Alcotest.(check (float 1e-6)) "MI = 0" 0.0
    (Leak_audit.Estimator.mutual_information_bits est);
  Alcotest.(check (float 1e-3)) "capacity = 0" 0.0
    (Leak_audit.Estimator.capacity_bits est)

let test_estimator_degenerate () =
  let est = Leak_audit.Estimator.create () in
  Alcotest.(check (float 0.)) "empty capacity" 0.0
    (Leak_audit.Estimator.capacity_bits est);
  feed est ~bucket:2 ~delta:1 ~count:10;
  Alcotest.(check (float 0.)) "single-bucket capacity" 0.0
    (Leak_audit.Estimator.capacity_bits est);
  (* Outliers clamp into the end bins instead of being dropped. *)
  Leak_audit.Estimator.observe est ~bucket:3 ~delta:10_000;
  Alcotest.(check int) "clamped observation kept" 11
    (Leak_audit.Estimator.observations est);
  Leak_audit.Estimator.clear est;
  Alcotest.(check int) "clear" 0 (Leak_audit.Estimator.observations est)

let suite =
  ( "leak_audit",
    [
      Alcotest.test_case "output byte-identical off/on" `Quick
        test_output_byte_identical;
      Alcotest.test_case "encoder byte-identical off/on" `Quick
        test_encoder_byte_identical;
      Alcotest.test_case "ring order jobs-invariant" `Quick
        test_ring_order_jobs_invariant;
      QCheck_alcotest.to_alcotest qcheck_ring_order;
      Alcotest.test_case "delta semantics" `Quick test_delta_semantics;
      Alcotest.test_case "prefix bucket" `Quick test_prefix_bucket;
      Alcotest.test_case "ring bounded" `Quick test_ring_bounded;
      Alcotest.test_case "jsonl roundtrip" `Quick test_jsonl_roundtrip;
      Alcotest.test_case "custom sink" `Quick test_custom_sink;
      Alcotest.test_case "estimator separated buckets" `Quick
        test_estimator_separated;
      Alcotest.test_case "estimator indistinguishable" `Quick
        test_estimator_indistinguishable;
      Alcotest.test_case "estimator degenerate" `Quick
        test_estimator_degenerate;
    ] )
