lib/attack/recovery.mli:
