open Zipchannel_taint

type gadget_acc = {
  g_location : string;
  g_code_addr : int;
  g_mnemonic : string;
  g_kind : Gadget.kind;
  g_size : int;
  mutable g_count : int;
  mutable g_tags : Tagset.t;
  g_example_addr : Tval.t;
  g_first_seq : int;
}

type logged = {
  l_seq : int;
  l_location : string;
  l_mnemonic : string;
  l_operands : (string * Tval.t) list;
}

type t = {
  name : string;
  input : bytes;
  log_limit : int;
  mutable seq : int;
  mutable log : logged list; (* newest first *)
  gadget_tbl : (string, gadget_acc) Hashtbl.t;
  mutable gadget_order : string list; (* newest first *)
  mutable control : string list; (* newest first *)
  memory : (int, Tval.t) Hashtbl.t;
}

let create ?(log_limit = 100_000) ~name input =
  {
    name;
    input;
    log_limit;
    seq = 0;
    log = [];
    gadget_tbl = Hashtbl.create 16;
    gadget_order = [];
    control = [];
    memory = Hashtbl.create 1024;
  }

let name t = t.name

let input_length t = Bytes.length t.input

let input_byte t i =
  if i < 0 || i >= Bytes.length t.input then
    invalid_arg "Engine.input_byte: index";
  Tval.input_byte ~tag:(i + 1) (Char.code (Bytes.get t.input i))

let stage_input t ~base =
  for i = 0 to Bytes.length t.input - 1 do
    Hashtbl.replace t.memory (base + i) (input_byte t i)
  done

(* A stable fake code address per location string, so reports resemble the
   tool's output. *)
let code_addr_of location = 0x7f0000000000 lor (Hashtbl.hash location land 0xffffff)

let bump t = t.seq <- t.seq + 1

let append_log t location mnemonic operands =
  bump t;
  if t.seq <= t.log_limit then
    t.log <-
      { l_seq = t.seq; l_location = location; l_mnemonic = mnemonic;
        l_operands = operands }
      :: t.log

let log_op t ~location ~mnemonic ~operands =
  append_log t location mnemonic operands

let note_gadget t ~location ~mnemonic ~kind ~size ~addr ~index =
  let example =
    match index with Some (_, v) -> v | None -> addr
  in
  match Hashtbl.find_opt t.gadget_tbl location with
  | Some g ->
      g.g_count <- g.g_count + 1;
      g.g_tags <- Tagset.union g.g_tags (Tval.tags addr)
  | None ->
      let g =
        {
          g_location = location;
          g_code_addr = code_addr_of location;
          g_mnemonic = mnemonic;
          g_kind = kind;
          g_size = size;
          g_count = 1;
          g_tags = Tval.tags addr;
          g_example_addr = example;
          g_first_seq = t.seq;
        }
      in
      Hashtbl.add t.gadget_tbl location g;
      t.gadget_order <- location :: t.gadget_order

let load t ~location ~mnemonic ?index ~addr ~size () =
  append_log t location mnemonic [ ("addr", addr) ];
  if Tval.is_tainted addr then
    note_gadget t ~location ~mnemonic ~kind:Gadget.Load ~size ~addr ~index;
  match Hashtbl.find_opt t.memory (Tval.value addr) with
  | Some v -> v
  | None -> Tval.const ~width:(min 63 (8 * size)) 0

let store t ~location ~mnemonic ?index ~addr ~size ~value () =
  append_log t location mnemonic [ ("addr", addr); ("value", value) ];
  if Tval.is_tainted addr then
    note_gadget t ~location ~mnemonic ~kind:Gadget.Store ~size ~addr ~index;
  Hashtbl.replace t.memory (Tval.value addr) value

let branch t ~location event =
  bump t;
  t.control <- (location ^ ":" ^ event) :: t.control

let instruction_count t = t.seq

let gadgets t =
  List.rev_map
    (fun location ->
      let g = Hashtbl.find t.gadget_tbl location in
      {
        Gadget.location = g.g_location;
        code_addr = g.g_code_addr;
        mnemonic = g.g_mnemonic;
        kind = g.g_kind;
        size = g.g_size;
        count = g.g_count;
        tags = g.g_tags;
        example_addr = g.g_example_addr;
        first_seq = g.g_first_seq;
      })
    t.gadget_order

let control_trace t = List.rev t.control

let address_trace t =
  List.rev
    (List.filter_map
       (fun l ->
         match List.assoc_opt "addr" l.l_operands with
         | Some addr -> Some (l.l_location, Zipchannel_taint.Tval.value addr)
         | None -> None)
       t.log)

let report ppf t =
  Format.fprintf ppf "TaintChannel report for %s (%d input bytes, %d instructions)@.@."
    t.name (input_length t) t.seq;
  let gs = gadgets t in
  if gs = [] then Format.fprintf ppf "no taint-dependent memory accesses found@."
  else
    List.iter
      (fun g ->
        Gadget.pp ppf g;
        Format.fprintf ppf "input coverage: %.1f%%@.@."
          (100.0 *. Gadget.coverage g ~input_length:(input_length t)))
      gs
