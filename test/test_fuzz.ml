(* The fuzzing harness and the decoder-hardening work it proves:

   - campaign determinism (same seed, any --jobs -> same report)
   - the harness finds nothing on the hardened decoders (smoke)
   - corpus / mutation / minimizer units
   - truncated-input regressions for every codec
   - decompression-bomb guards: forged length fields are rejected fast
     and cheap (< 1 MB allocated)
   - the Huffman golden stream (pins the serialization so the explicit
     decode loop can never silently depend on evaluation order again)
   - qcheck properties per codec riding the same mutation engine
   - committed reproducer fixtures under fixtures/fuzz/ keep failing
     into [Error]
   - grep-enforced: no public compress API documents an [Out_of_bits]
     escape *)

open Zipchannel_util
module Compress = Zipchannel_compress
module Fuzz = Zipchannel_fuzz

let contains = Str_search.contains

(* ------------------------------------------------------------------ *)
(* Campaign determinism and smoke *)

let campaign_deterministic_across_jobs () =
  let run jobs =
    Fuzz.Report.render (Fuzz.Runner.run ~seed:42 ~runs:300 ~jobs ())
  in
  Alcotest.(check string) "jobs 1 = jobs 3" (run 1) (run 3)

let campaign_deterministic_across_repeats () =
  let run () =
    Fuzz.Report.render (Fuzz.Runner.run ~seed:9 ~runs:200 ~jobs:2 ())
  in
  Alcotest.(check string) "repeat" (run ()) (run ())

let campaign_finds_nothing () =
  let report = Fuzz.Runner.run ~seed:3 ~runs:600 ~jobs:2 () in
  (match Fuzz.Report.failures report with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "unexpected failure: %s"
        (Fuzz.Report.fixture_name f));
  (* the runner floors runs to a per-codec share *)
  let n_codecs = List.length Fuzz.Codecs.all in
  Alcotest.(check int) "all cases ran"
    (600 / n_codecs * n_codecs)
    report.Fuzz.Report.total_runs

let seeds_differ () =
  let render seed =
    Fuzz.Report.render (Fuzz.Runner.run ~seed ~runs:100 ~jobs:1 ())
  in
  (* Different seeds must drive different campaigns; the reports agree
     only if every verdict tally happens to coincide, which the
     accepted/rejected splits make astronomically unlikely. *)
  Alcotest.(check bool) "seed changes the campaign" false
    (render 1 = render 2)

(* ------------------------------------------------------------------ *)
(* Units: corpus, mutate, minimize, report *)

let corpus_pool_deterministic () =
  let lzw = Option.get (Fuzz.Codecs.find "lzw") in
  let p1 = Fuzz.Corpus.pool lzw ~seed:7 ~size:16 in
  let p2 = Fuzz.Corpus.pool lzw ~seed:7 ~size:16 in
  Alcotest.(check bool) "same seed, same pool" true (p1 = p2);
  Alcotest.(check bytes) "index 0 is the empty plaintext"
    (Compress.Lzw.compress Bytes.empty) p1.(0)

let mutate_changes_input () =
  let rng = Prng.create ~seed:11 () in
  let corpus = [| Bytes.of_string "corpus entry" |] in
  let base = Bytes.of_string "a valid stream" in
  for _ = 1 to 100 do
    let m = Fuzz.Mutate.mutate rng ~corpus base in
    if Bytes.equal m base then Alcotest.fail "mutate returned its input"
  done

let mutate_deterministic () =
  let corpus = [| Bytes.of_string "corpus" |] in
  let base = Bytes.of_string "another stream" in
  let burst seed =
    let rng = Prng.create ~seed () in
    List.init 20 (fun _ -> Fuzz.Mutate.mutate rng ~corpus base)
  in
  Alcotest.(check bool) "same rng, same mutants" true (burst 5 = burst 5)

let minimizer_shrinks_to_core () =
  let b = Bytes.make 64 'x' in
  Bytes.set b 37 '\xaa';
  let interesting c = Bytes.exists (fun ch -> ch = '\xaa') c in
  let m = Fuzz.Minimize.minimize ~interesting b in
  Alcotest.(check int) "one byte survives" 1 (Bytes.length m);
  Alcotest.(check char) "the interesting one" '\xaa' (Bytes.get m 0)

let minimizer_rejects_boring_input () =
  match
    Fuzz.Minimize.minimize ~interesting:(fun _ -> false) (Bytes.create 4)
  with
  | (_ : bytes) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let minimizer_result_stays_interesting () =
  (* Predicate: decodes to an Error mentioning "truncated". *)
  let lzw = Option.get (Fuzz.Codecs.find "lzw") in
  let packed = Compress.Lzw.compress (Bytes.of_string "abcabcabcabc") in
  let truncated = Bytes.sub packed 0 (Bytes.length packed - 2) in
  let interesting c =
    match lzw.Fuzz.Codecs.decode c with
    | Error e -> contains e.Compress.Codec_error.reason "truncated"
    | Ok _ -> false
  in
  if interesting truncated then begin
    let m = Fuzz.Minimize.minimize ~interesting truncated in
    Alcotest.(check bool) "still interesting" true (interesting m);
    Alcotest.(check bool) "no larger" true
      (Bytes.length m <= Bytes.length truncated)
  end

let fixture_names_are_stable () =
  Alcotest.(check string) "fnv1a of empty" "cbf29ce484222325"
    (Fuzz.Report.fnv1a Bytes.empty);
  let f =
    {
      Fuzz.Report.codec = "lzw";
      case = 3;
      verdict = Fuzz.Oracle.Crash { exn = "boom" };
      input = Bytes.empty;
      original_len = 10;
    }
  in
  Alcotest.(check string) "name" "lzw-crash-cbf29ce484222325.bin"
    (Fuzz.Report.fixture_name f)

let write_fixtures_roundtrip () =
  let input = Bytes.of_string "\x00\x01reproducer" in
  let report =
    {
      Fuzz.Report.seed = 1;
      total_runs = 1;
      stats =
        [
          {
            Fuzz.Report.name = "lzw";
            runs = 1;
            accepted = 0;
            rejected = 0;
            failures =
              [
                {
                  Fuzz.Report.codec = "lzw";
                  case = 0;
                  verdict = Fuzz.Oracle.Crash { exn = "boom" };
                  input;
                  original_len = 99;
                };
              ];
          };
        ];
    }
  in
  let dir = Filename.concat "." "_fuzz_fixture_out" in
  match Fuzz.Runner.write_fixtures ~dir report with
  | [ path ] ->
      let ic = open_in_bin path in
      let back = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Sys.remove path;
      Alcotest.(check string) "bytes round trip" (Bytes.to_string input) back
  | paths -> Alcotest.failf "expected one fixture, got %d" (List.length paths)

(* ------------------------------------------------------------------ *)
(* Truncated-input regressions: every prefix of a valid stream must hit
   a structured error (or decode, for prefix-closed formats like rle1),
   never an escaped exception. *)

let truncation_regressions () =
  let plain = Bytes.of_string "the quick brown fox jumps over the lazy dog" in
  List.iter
    (fun (codec : Fuzz.Codecs.t) ->
      let packed = codec.compress plain in
      for len = 0 to Bytes.length packed - 1 do
        let cut = Bytes.sub packed 0 len in
        let verdict, _ = Fuzz.Oracle.check codec ~budget_ms:0. cut in
        if Fuzz.Oracle.is_failure verdict then
          Alcotest.failf "%s: prefix %d/%d bytes: %s" codec.name len
            (Bytes.length packed)
            (Fuzz.Oracle.verdict_label verdict)
      done)
    Fuzz.Codecs.all

let truncation_reports_codec_and_offset () =
  let packed = Compress.Lzw.compress (Bytes.of_string "abcabcabc") in
  match
    Compress.Lzw.decompress_result (Bytes.sub packed 0 (Bytes.length packed - 1))
  with
  | Ok _ -> Alcotest.fail "truncated lzw stream decoded"
  | Error e ->
      Alcotest.(check string) "codec" "lzw" e.Compress.Codec_error.codec;
      Alcotest.(check bool) "offset inside input" true
        (e.Compress.Codec_error.offset >= 0
        && e.Compress.Codec_error.offset <= Bytes.length packed)

(* ------------------------------------------------------------------ *)
(* Decompression bombs: forged length fields must be rejected before
   allocation, not after.  Each reproducer is a few bytes claiming a
   ~2^31-byte output; the decoder must error fast with < 1 MB
   allocated. *)

let cheap_reject name decode input =
  let before = Gc.allocated_bytes () in
  (match decode input with
  | Ok (_ : bytes) -> Alcotest.failf "%s: bomb decoded" name
  | Error (_ : Compress.Codec_error.t) -> ());
  let allocated = Gc.allocated_bytes () -. before in
  if allocated > 1_048_576. then
    Alcotest.failf "%s: rejected only after allocating %.0f bytes" name
      allocated

let lzw_bomb () =
  (* 16-bit LSB low half then high half: declares 0x7fffffff bytes from
     an empty payload. *)
  let bomb = Bytes.of_string "\xff\xff\xff\x7f" in
  cheap_reject "lzw" Compress.Lzw.decompress_result bomb;
  match Compress.Lzw.decompress_result bomb with
  | Error e ->
      Alcotest.(check bool) "mentions the guard" true
        (contains e.Compress.Codec_error.reason "exceeds what the input can encode")
  | Ok _ -> assert false

let huffman_bomb () =
  (* Valid stream for "hello hello" with the leading 32-bit MSB length
     overwritten to 0x7fffffff: tables parse, then the declared length
     must fail the bits-remaining check. *)
  let b = Compress.Huffman.encode (Bytes.of_string "hello hello") in
  Bytes.set b 0 '\x7f';
  Bytes.set b 1 '\xff';
  Bytes.set b 2 '\xff';
  Bytes.set b 3 '\xff';
  cheap_reject "huffman" Compress.Huffman.decode_result b

let bzip2_bomb () =
  (* magic | block marker | u32 block length way past the format cap. *)
  let w = Compress.Bitio.Writer.create () in
  String.iter
    (fun c -> Compress.Bitio.Writer.add_bits_msb w ~value:(Char.code c) ~count:8)
    "ZBZ2";
  Compress.Bitio.Writer.add_bits_msb w ~value:0x31 ~count:8;
  Compress.Bitio.Writer.add_bits_msb w ~value:0x7fff ~count:16;
  Compress.Bitio.Writer.add_bits_msb w ~value:0xffff ~count:16;
  let bomb = Compress.Bitio.Writer.to_bytes w in
  cheap_reject "bzip2" Compress.Bzip2.decompress_result bomb;
  match Compress.Bzip2.decompress_result bomb with
  | Error e ->
      Alcotest.(check bool) "mentions the cap" true
        (contains e.Compress.Codec_error.reason "block length exceeds maximum")
  | Ok _ -> assert false

let lz4_bomb () =
  (* 4-byte LE header declaring 0x7fffffff plaintext bytes over an empty
     payload: the LZ4 worst-case bound (255 per input byte) cannot cover
     it, so the guard fires before the output buffer exists. *)
  let bomb = Bytes.of_string "\xff\xff\xff\x7f" in
  cheap_reject "lz4" Compress.Lz4.decompress_result bomb;
  match Compress.Lz4.decompress_result bomb with
  | Error e ->
      Alcotest.(check bool) "mentions the guard" true
        (contains e.Compress.Codec_error.reason "exceeds what the input can encode")
  | Ok _ -> assert false

let snappy_bomb () =
  (* 5-byte varint declaring ~4 GiB of plaintext over an empty payload;
     the run-length bound (22 per input byte) rejects it up front. *)
  let bomb = Bytes.of_string "\xff\xff\xff\xff\x0f" in
  cheap_reject "snappy" Compress.Snappy.decompress_result bomb;
  match Compress.Snappy.decompress_result bomb with
  | Error e ->
      Alcotest.(check bool) "mentions the guard" true
        (contains e.Compress.Codec_error.reason "exceeds what the input can encode")
  | Ok _ -> assert false

let snappy_varint_overflow () =
  (* Six continuation bytes push the varint shift past 32 bits; the
     decoder must call the length malformed, not wrap it. *)
  let bomb = Bytes.of_string "\xff\xff\xff\xff\xff\x01" in
  match Compress.Snappy.decompress_result bomb with
  | Ok _ -> Alcotest.fail "overflowing varint decoded"
  | Error e ->
      Alcotest.(check bool) "mentions the varint" true
        (contains e.Compress.Codec_error.reason "malformed length varint")

let rle2_run_bomb () =
  (* ~100 RUNA digits demand ~2^100 zeros; the doubling accumulator must
     trip the output cap instead of overflowing into a negative count
     (or dying in the allocator). *)
  let bomb = Array.make 101 0 in
  bomb.(100) <- Compress.Rle2.eob;
  let before = Gc.allocated_bytes () in
  (match Compress.Rle2.decode_result bomb with
  | Ok _ -> Alcotest.fail "rle2: run bomb decoded"
  | Error e ->
      Alcotest.(check bool) "mentions the limit" true
        (contains e.Compress.Codec_error.reason "exceeds limit"));
  let allocated = Gc.allocated_bytes () -. before in
  if allocated > 1_048_576. then
    Alcotest.failf "rle2: rejected only after allocating %.0f bytes" allocated

let rle2_max_output_respected () =
  (* A legitimate 100-zero run decodes under a roomy cap and errors
     under a tight one. *)
  let symbols = Compress.Rle2.encode (Array.make 100 0) in
  (match Compress.Rle2.decode_result ~max_output:100 symbols with
  | Ok out -> Alcotest.(check int) "run restored" 100 (Array.length out)
  | Error e -> Alcotest.failf "cap 100 rejected: %s" e.Compress.Codec_error.reason);
  match Compress.Rle2.decode_result ~max_output:99 symbols with
  | Ok _ -> Alcotest.fail "cap 99 decoded 100 zeros"
  | Error _ -> ()

let archive_forged_count () =
  let packed =
    Compress.Container.Archive.pack
      [ { Compress.Container.Archive.name = "a"; data = Bytes.of_string "hi" } ]
  in
  let n = Bytes.length packed in
  (* Overwrite the u32 entry count (at n-8) with 0x7fffffff. *)
  Bytes.set packed (n - 8) '\xff';
  Bytes.set packed (n - 7) '\xff';
  Bytes.set packed (n - 6) '\xff';
  Bytes.set packed (n - 5) '\x7f';
  let before = Gc.allocated_bytes () in
  (match Compress.Container.Archive.unpack_result packed with
  | Ok _ -> Alcotest.fail "forged count decoded"
  | Error e ->
      Alcotest.(check bool) "mentions the count" true
        (contains e.Compress.Codec_error.reason "implausible entry count"));
  let allocated = Gc.allocated_bytes () -. before in
  if allocated > 1_048_576. then
    Alcotest.failf "archive: rejected only after allocating %.0f bytes" allocated

(* ------------------------------------------------------------------ *)
(* Huffman golden stream: pins the exact serialization of
   encode "abracadabra".  The decode loop once used [Bytes.init], whose
   unspecified application order would scramble exactly this stream. *)

let huffman_golden_hex =
  String.concat ""
    [
      "0000000b010000000000000000000000000000000000000000000000000000000000";
      "00000000000000000000000000000000000000000124400000000000003000000000";
      "00000000000000000000000000000000000000000000000000000000000000000000";
      "000000000000000000000000000000000000000000000000000000000000000059cf";
      "58";
    ]

let hex_of b =
  String.concat ""
    (List.map
       (fun c -> Printf.sprintf "%02x" (Char.code c))
       (List.init (Bytes.length b) (Bytes.get b)))

let huffman_golden () =
  let plain = Bytes.of_string "abracadabra" in
  let enc = Compress.Huffman.encode plain in
  Alcotest.(check string) "encoding is pinned" huffman_golden_hex (hex_of enc);
  Alcotest.(check bytes) "decodes in order" plain (Compress.Huffman.decode enc)

(* ------------------------------------------------------------------ *)
(* qcheck properties per codec, riding the Fuzz engine *)

let qcheck_roundtrip (codec : Fuzz.Codecs.t) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s round trip (fuzz corpus)" codec.name)
    ~count:60 QCheck.small_nat
    (fun salt ->
      let rng = Prng.create ~seed:(0x5eed + salt) () in
      let plain = Fuzz.Corpus.plain rng ~max_len:codec.max_plain in
      match Fuzz.Oracle.roundtrip codec ~budget_ms:0. plain with
      | Fuzz.Oracle.Accepted, _ -> true
      | v, _ ->
          QCheck.Test.fail_reportf "%s: %s" codec.name
            (Fuzz.Oracle.verdict_label v))

let qcheck_mutations (codec : Fuzz.Codecs.t) =
  let corpus = Fuzz.Corpus.pool codec ~seed:0xf00d ~size:8 in
  QCheck.Test.make
    ~name:(Printf.sprintf "%s survives fuzz mutations" codec.name)
    ~count:120 QCheck.small_nat
    (fun salt ->
      let rng = Prng.create ~seed:(0xabcd + salt) () in
      let input = Fuzz.Mutate.mutate rng ~corpus (Prng.pick rng corpus) in
      match Fuzz.Oracle.check codec ~budget_ms:0. input with
      | (Fuzz.Oracle.Accepted | Fuzz.Oracle.Rejected _), _ -> true
      | v, _ ->
          QCheck.Test.fail_reportf "%s: %s" codec.name
            (Fuzz.Oracle.verdict_label v))

(* ------------------------------------------------------------------ *)
(* Committed reproducer fixtures: every file under fixtures/fuzz/ is a
   minimized input that once crashed (or bombed) its decoder; all must
   now land in [Error] without an escaped exception. *)

let fixture_dir = Filename.concat "fixtures" "fuzz"

let codec_of_fixture file =
  match String.index_opt file '-' with
  | None -> None
  | Some i -> Fuzz.Codecs.find (String.sub file 0 i)

let fixtures_stay_fixed () =
  let files = Sys.readdir fixture_dir in
  Array.sort compare files;
  let checked = ref 0 in
  Array.iter
    (fun file ->
      if Filename.check_suffix file ".bin" then begin
        match codec_of_fixture file with
        | None -> Alcotest.failf "fixture %s names no codec" file
        | Some codec ->
            let ic = open_in_bin (Filename.concat fixture_dir file) in
            let input =
              Bytes.of_string (really_input_string ic (in_channel_length ic))
            in
            close_in ic;
            incr checked;
            let verdict, _ = Fuzz.Oracle.check codec ~budget_ms:0. input in
            (match verdict with
            | Fuzz.Oracle.Rejected _ -> ()
            | v ->
                Alcotest.failf "fixture %s: %s" file
                  (Fuzz.Oracle.verdict_label v))
      end)
    files;
  if !checked = 0 then Alcotest.fail "no fuzz fixtures found"

(* ------------------------------------------------------------------ *)
(* Grep-enforced API contract: outside bitio.mli (which defines the
   exception) and codec_error.mli (which documents catching it), no
   compress interface may mention Out_of_bits — i.e. no public decode
   API admits to raising it. *)

let mli_dir = Filename.concat ".." (Filename.concat "lib" "compress")
let out_of_bits_allowed = [ "bitio.mli"; "bitio_ref.mli"; "codec_error.mli" ]

let no_out_of_bits_in_public_api () =
  let files = Sys.readdir mli_dir in
  Array.sort compare files;
  let scanned = ref 0 in
  Array.iter
    (fun file ->
      if
        Filename.check_suffix file ".mli"
        && not (List.mem file out_of_bits_allowed)
      then begin
        let ic = open_in_bin (Filename.concat mli_dir file) in
        let src = really_input_string ic (in_channel_length ic) in
        close_in ic;
        incr scanned;
        if contains src "Out_of_bits" then
          Alcotest.failf "%s leaks Out_of_bits into its public API" file
      end)
    files;
  if !scanned < 5 then
    Alcotest.failf "only %d interfaces scanned — wrong directory?" !scanned

let suite =
  ( "fuzz",
    [
      Alcotest.test_case "campaign deterministic across jobs" `Quick
        campaign_deterministic_across_jobs;
      Alcotest.test_case "campaign deterministic across repeats" `Quick
        campaign_deterministic_across_repeats;
      Alcotest.test_case "campaign finds nothing on hardened decoders" `Quick
        campaign_finds_nothing;
      Alcotest.test_case "seed changes the campaign" `Quick seeds_differ;
      Alcotest.test_case "corpus pool deterministic" `Quick
        corpus_pool_deterministic;
      Alcotest.test_case "mutate changes its input" `Quick mutate_changes_input;
      Alcotest.test_case "mutate deterministic" `Quick mutate_deterministic;
      Alcotest.test_case "minimizer shrinks to the core" `Quick
        minimizer_shrinks_to_core;
      Alcotest.test_case "minimizer rejects boring input" `Quick
        minimizer_rejects_boring_input;
      Alcotest.test_case "minimizer keeps the verdict" `Quick
        minimizer_result_stays_interesting;
      Alcotest.test_case "fixture names stable" `Quick fixture_names_are_stable;
      Alcotest.test_case "write_fixtures round trips" `Quick
        write_fixtures_roundtrip;
      Alcotest.test_case "every truncation is a structured error" `Quick
        truncation_regressions;
      Alcotest.test_case "truncation reports codec and offset" `Quick
        truncation_reports_codec_and_offset;
      Alcotest.test_case "lzw bomb rejected cheaply" `Quick lzw_bomb;
      Alcotest.test_case "huffman bomb rejected cheaply" `Quick huffman_bomb;
      Alcotest.test_case "bzip2 bomb rejected cheaply" `Quick bzip2_bomb;
      Alcotest.test_case "lz4 bomb rejected cheaply" `Quick lz4_bomb;
      Alcotest.test_case "snappy bomb rejected cheaply" `Quick snappy_bomb;
      Alcotest.test_case "snappy varint overflow rejected" `Quick
        snappy_varint_overflow;
      Alcotest.test_case "rle2 run bomb rejected cheaply" `Quick rle2_run_bomb;
      Alcotest.test_case "rle2 max_output respected" `Quick
        rle2_max_output_respected;
      Alcotest.test_case "archive forged count rejected cheaply" `Quick
        archive_forged_count;
      Alcotest.test_case "huffman golden stream" `Quick huffman_golden;
      Alcotest.test_case "fuzz fixtures stay fixed" `Quick fixtures_stay_fixed;
      Alcotest.test_case "no Out_of_bits in public interfaces" `Quick
        no_out_of_bits_in_public_api;
    ]
    @ List.map (fun c -> QCheck_alcotest.to_alcotest (qcheck_roundtrip c))
        Fuzz.Codecs.all
    @ List.map (fun c -> QCheck_alcotest.to_alcotest (qcheck_mutations c))
        Fuzz.Codecs.all )
