let vocabulary =
  [| "lorem"; "ipsum"; "dolor"; "sit"; "amet"; "consectetur"; "adipiscing";
     "elit"; "sed"; "do"; "eiusmod"; "tempor"; "incididunt"; "ut"; "labore";
     "et"; "dolore"; "magna"; "aliqua"; "enim"; "ad"; "minim"; "veniam";
     "quis"; "nostrud"; "exercitation"; "ullamco"; "laboris"; "nisi";
     "aliquip"; "ex"; "ea"; "commodo"; "consequat"; "duis"; "aute"; "irure";
     "in"; "reprehenderit"; "voluptate"; "velit"; "esse"; "cillum"; "fugiat";
     "nulla"; "pariatur"; "excepteur"; "sint"; "occaecat"; "cupidatat";
     "non"; "proident"; "sunt"; "culpa"; "qui"; "officia"; "deserunt";
     "mollit"; "anim"; "id"; "est"; "laborum"; "at"; "vero"; "eos";
     "accusamus"; "iusto"; "odio"; "dignissimos"; "ducimus"; "blanditiis";
     "praesentium"; "voluptatum"; "deleniti"; "atque"; "corrupti"; "quos";
     "quas"; "molestias"; "excepturi"; "obcaecati"; "provident"; "similique";
     "mollitia"; "animi"; "perferendis"; "doloribus"; "asperiores";
     "repellat"; "itaque"; "earum"; "rerum"; "hic"; "tenetur"; "sapiente";
     "delectus"; "reiciendis"; "voluptatibus"; "maiores"; "alias";
     "perspiciatis"; "unde"; "omnis"; "iste"; "natus"; "error"; "voluptatem";
     "accusantium"; "doloremque"; "laudantium"; "totam"; "rem"; "aperiam";
     "eaque"; "ipsa"; "quae"; "ab"; "illo"; "inventore"; "veritatis";
     "quasi"; "architecto"; "beatae"; "vitae"; "dicta"; "explicabo"; "nemo";
     "ipsam"; "quia"; "voluptas"; "aspernatur"; "aut"; "odit"; "fugit";
     "consequuntur"; "magni"; "dolores"; "ratione"; "sequi"; "nesciunt";
     "neque"; "porro"; "quisquam"; "dolorem"; "adipisci"; "numquam"; "eius";
     "modi"; "tempora"; "incidunt"; "magnam"; "quaerat"; "minima"; "nobis";
     "eligendi"; "optio"; "cumque"; "nihil"; "impedit"; "quo"; "minus";
     "quod"; "maxime"; "placeat"; "facere"; "possimus"; "assumenda";
     "repellendus"; "temporibus"; "autem"; "quibusdam"; "officiis";
     "debitis"; "necessitatibus"; "saepe"; "eveniet"; "voluptates";
     "repudiandae"; "recusandae"; "harum"; "quidem"; "facilis" |]

let word t = Prng.pick t vocabulary

let capitalize s =
  if s = "" then s
  else String.mapi (fun i c -> if i = 0 then Char.uppercase_ascii c else c) s

let sentence t =
  let n = 4 + Prng.int t 9 in
  let buf = Buffer.create 64 in
  for i = 0 to n - 1 do
    let w = word t in
    let w = if i = 0 then capitalize w else w in
    Buffer.add_string buf w;
    if i < n - 1 then
      (* An occasional comma, as lipsum generators produce. *)
      if Prng.int t 8 = 0 then Buffer.add_string buf ", "
      else Buffer.add_char buf ' '
  done;
  Buffer.add_char buf '.';
  Buffer.contents buf

let paragraph t =
  let n = 3 + Prng.int t 5 in
  String.concat " " (List.init n (fun _ -> sentence t))

let paragraphs t n = List.init n (fun _ -> paragraph t)

let repetitive_file t ~level ~size =
  if level < 1 || level > 5 then invalid_arg "Lipsum.repetitive_file: level";
  let truncate_to n s = if String.length s <= n then s else String.sub s 0 n in
  let fragments =
    Array.of_list (List.map (truncate_to 20) (paragraphs t 5))
  in
  let buf = Buffer.create size in
  while Buffer.length buf < size do
    Buffer.add_string buf fragments.(Prng.int t level)
  done;
  String.sub (Buffer.contents buf) 0 size
