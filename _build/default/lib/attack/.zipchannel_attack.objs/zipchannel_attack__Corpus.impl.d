lib/attack/corpus.ml: Buffer Bytes Char Lipsum List Printf Prng String Zipchannel_compress Zipchannel_util
