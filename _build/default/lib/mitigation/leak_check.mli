(** Constant-trace verification of mitigations.

    A mitigation is effective against the cache channel iff the sequence
    of touched lines is the same for every input (of a given length).
    This module checks exactly that property over a set of inputs — the
    mitigated analogue of the control-flow trace diffing the tool uses to
    find leaks. *)

val plain_histogram_line_trace : bytes -> int array
(** The line trace of the {e unmitigated} Listing 3 loop (table-relative
    line index per iteration): input-dependent, as the attack requires. *)

val constant_trace : (bytes -> int array) -> inputs:bytes list -> bool
(** [constant_trace f ~inputs] is true iff [f] produces the identical
    trace for every input.  All inputs must have equal length — traces of
    different lengths trivially differ.  @raise Invalid_argument on fewer
    than two inputs. *)

val first_difference : int array -> int array -> int option
(** Index of the first differing position (length mismatch counts),
    [None] when identical. *)
