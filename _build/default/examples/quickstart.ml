(* Quickstart: compress data with the three compressor families, then run
   TaintChannel over the Bzip2 histogram loop and print the leakage
   report.

     dune exec examples/quickstart.exe *)

open Zipchannel

let () =
  let ppf = Format.std_formatter in
  let message =
    Bytes.of_string
      "ZipChannel quickstart: this buffer is about to be compressed by \
       three different algorithm families, every one of which performs \
       memory accesses that depend on these very bytes. "
  in
  (* 1. The compressors are real: round-trips hold. *)
  let check name compress decompress =
    let packed = compress message in
    assert (Bytes.equal (decompress packed) message);
    Format.fprintf ppf "%-22s %4d -> %4d bytes@." name (Bytes.length message)
      (Bytes.length packed)
  in
  check "bzip2 (BWT)" Compress.Bzip2.compress Compress.Bzip2.decompress;
  check "deflate (LZ77)"
    (fun b -> Compress.Deflate.compress b)
    Compress.Deflate.decompress;
  check "lzw (LZ78)" Compress.Lzw.compress Compress.Lzw.decompress;
  (* 2. TaintChannel finds the input-dependent memory access in the Bzip2
     frequency-table loop (the paper's Listing 3 gadget). *)
  Format.fprintf ppf "@.TaintChannel on the Bzip2 block-sort histogram:@.@.";
  let engine = Taintchannel.Bzip2_gadget.run message in
  Taintchannel.Engine.report ppf engine
