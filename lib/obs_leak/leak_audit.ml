(* The leak audit plane.

   Everything here is side-band by construction: recording reads frame
   metadata (lengths, tags, wall time) and never touches payload bytes,
   so compressed output is byte-identical with auditing on or off.  The
   fast path mirrors Obs: one atomic load and a branch per frame while
   disabled.

   Concurrency: records are appended to per-domain ring shards (shard =
   domain id mod 16, each shard behind its own mutex, so the daemon's
   thread-per-connection model — many threads, one domain — is also
   safe).  Sink emission and the estimators take their own locks.  The
   per-stream rolling state is unsynchronised on purpose: a stream's
   frames are recorded by exactly one domain at a time (the frame
   pipeline's in-order consumer), which is also what keeps merged
   record sequences identical at any [jobs]. *)

module Obs = Zipchannel_obs.Obs

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* ------------------------------------------------------------------ *)
(* Records *)

type tag = Data | Flush | Trailer

let tag_name = function Data -> "data" | Flush -> "flush" | Trailer -> "trailer"

type record = {
  stream : int;
  seq : int;
  tag : tag;
  codec : string;
  ulen : int;
  clen : int;
  delta : int;
  bucket : int;
  enc_ns : int;
  ts_ns : int;
}

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jsonl_of_record r =
  Printf.sprintf
    "{\"t\": \"frame\", \"stream\": %d, \"seq\": %d, \"tag\": \"%s\", \
     \"codec\": \"%s\", \"ulen\": %d, \"clen\": %d, \"delta\": %d, \
     \"bucket\": %d, \"enc_ns\": %d, \"ts_ns\": %d}"
    r.stream r.seq (tag_name r.tag) (json_escape r.codec) r.ulen r.clen r.delta
    r.bucket r.enc_ns r.ts_ns

let n_prefix_buckets = 64

(* FNV-1a over the first bytes of an attacker-controlled prefix: stable,
   cheap, and spreads single-byte differences across buckets.  The
   offset basis is the 64-bit FNV one truncated to OCaml's native int. *)
let prefix_bucket ?(n = n_prefix_buckets) b ~len =
  let len = min len 16 in
  let h = ref 0x3f29ce484222325 in
  for i = 0 to len - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get b i)) * 0x100000001b3
  done;
  (!h land max_int) mod n

(* ------------------------------------------------------------------ *)
(* Sink *)

type sink = Null | Jsonl of out_channel | Custom of (record -> unit)

let current_sink : sink Atomic.t = Atomic.make Null
let sink_lock = Mutex.create ()
let set_sink s = Atomic.set current_sink s
let sink () = Atomic.get current_sink

let emit_to_sink r =
  match Atomic.get current_sink with
  | Null -> ()
  | Jsonl oc ->
      Mutex.lock sink_lock;
      output_string oc (jsonl_of_record r);
      output_char oc '\n';
      flush oc;
      Mutex.unlock sink_lock
  | Custom f ->
      Mutex.lock sink_lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock sink_lock) (fun () -> f r)

(* ------------------------------------------------------------------ *)
(* Bounded per-domain rings *)

let ring_shard_count = 16

type shard = {
  mu : Mutex.t;
  mutable slots : record option array;
  mutable next : int;  (* next write position *)
  mutable stored : int;  (* live records, <= capacity *)
  mutable evicted : int;
}

let default_ring_capacity = 1024

let shards =
  Array.init ring_shard_count (fun _ ->
      {
        mu = Mutex.create ();
        slots = Array.make default_ring_capacity None;
        next = 0;
        stored = 0;
        evicted = 0;
      })

let set_ring_capacity n =
  if n < 1 then invalid_arg "Leak_audit.set_ring_capacity";
  Array.iter
    (fun s ->
      Mutex.lock s.mu;
      s.slots <- Array.make n None;
      s.next <- 0;
      s.stored <- 0;
      s.evicted <- 0;
      Mutex.unlock s.mu)
    shards

let ring_clear () =
  Array.iter
    (fun s ->
      Mutex.lock s.mu;
      Array.fill s.slots 0 (Array.length s.slots) None;
      s.next <- 0;
      s.stored <- 0;
      s.evicted <- 0;
      Mutex.unlock s.mu)
    shards

let ring_push r =
  let s = shards.((Domain.self () :> int) land (ring_shard_count - 1)) in
  Mutex.lock s.mu;
  let cap = Array.length s.slots in
  if s.slots.(s.next) <> None then s.evicted <- s.evicted + 1
  else s.stored <- s.stored + 1;
  s.slots.(s.next) <- Some r;
  s.next <- (s.next + 1) mod cap;
  Mutex.unlock s.mu

let evicted () =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.mu;
      let e = s.evicted in
      Mutex.unlock s.mu;
      acc + e)
    0 shards

let tag_rank = function Data -> 0 | Flush -> 0 | Trailer -> 1

let ring_records () =
  let all = ref [] in
  Array.iter
    (fun s ->
      Mutex.lock s.mu;
      Array.iter (function Some r -> all := r :: !all | None -> ()) s.slots;
      Mutex.unlock s.mu)
    shards;
  List.sort
    (fun a b ->
      match compare a.stream b.stream with
      | 0 -> (
          match compare a.seq b.seq with
          | 0 -> compare (tag_rank a.tag) (tag_rank b.tag)
          | c -> c)
      | c -> c)
    !all

(* ------------------------------------------------------------------ *)
(* Obs metrics (registered once; recording additionally gated on Obs) *)

let m_frames = Obs.Metrics.counter "leak.audit.frames"
let m_flush = Obs.Metrics.counter "leak.audit.flush_frames"
let m_streams = Obs.Metrics.counter "leak.audit.streams"
let m_delta_abs = Obs.Metrics.histogram "leak.audit.clen_delta_abs"
let m_enc_ns = Obs.Metrics.histogram "leak.audit.enc_ns"
let m_requests = Obs.Metrics.counter "leak.requests"
let m_request_frames = Obs.Metrics.histogram "leak.request_frames"
let g_capacity = Obs.Metrics.gauge "leak.capacity_bits_per_frame"
let g_entropy = Obs.Metrics.gauge "leak.delta_entropy_bits"

(* ------------------------------------------------------------------ *)
(* Estimator *)

module Estimator = struct
  type t = {
    n_buckets : int;
    delta_range : int;
    counts : int array array;  (* bucket -> delta bin -> count *)
    totals : int array;
    mutable total : int;
    mu : Mutex.t;
  }

  let create ?(buckets = n_prefix_buckets) ?(delta_range = 32) () =
    if buckets < 1 || delta_range < 1 then invalid_arg "Estimator.create";
    let bins = (2 * delta_range) + 1 in
    {
      n_buckets = buckets;
      delta_range;
      counts = Array.make_matrix buckets bins 0;
      totals = Array.make buckets 0;
      total = 0;
      mu = Mutex.create ();
    }

  let n_bins t = (2 * t.delta_range) + 1

  let bin_of t d =
    let d = max (-t.delta_range) (min t.delta_range d) in
    d + t.delta_range

  let observe t ~bucket ~delta =
    let b = ((bucket mod t.n_buckets) + t.n_buckets) mod t.n_buckets in
    let d = bin_of t delta in
    Mutex.lock t.mu;
    t.counts.(b).(d) <- t.counts.(b).(d) + 1;
    t.totals.(b) <- t.totals.(b) + 1;
    t.total <- t.total + 1;
    Mutex.unlock t.mu

  let observations t = t.total

  let cond_histogram t ~bucket =
    let b = ((bucket mod t.n_buckets) + t.n_buckets) mod t.n_buckets in
    Mutex.lock t.mu;
    let out = ref [] in
    for d = n_bins t - 1 downto 0 do
      let c = t.counts.(b).(d) in
      if c > 0 then out := (d - t.delta_range, c) :: !out
    done;
    Mutex.unlock t.mu;
    !out

  let clear t =
    Mutex.lock t.mu;
    Array.iter (fun row -> Array.fill row 0 (Array.length row) 0) t.counts;
    Array.fill t.totals 0 t.n_buckets 0;
    t.total <- 0;
    Mutex.unlock t.mu

  (* Snapshot the counts so the math below runs lock-free. *)
  let snapshot t =
    Mutex.lock t.mu;
    let counts = Array.map Array.copy t.counts in
    let totals = Array.copy t.totals in
    let total = t.total in
    Mutex.unlock t.mu;
    (counts, totals, total)

  let log2 = Float.log2

  let entropy_of dist =
    Array.fold_left
      (fun acc p -> if p > 0. then acc -. (p *. log2 p) else acc)
      0. dist

  let marginal counts bins total =
    let m = Array.make bins 0. in
    Array.iter
      (fun row ->
        Array.iteri (fun d c -> m.(d) <- m.(d) +. float_of_int c) row)
      counts;
    Array.map (fun v -> v /. float_of_int total) m

  let delta_entropy_bits t =
    let counts, _, total = snapshot t in
    if total = 0 then 0.
    else entropy_of (marginal counts (n_bins t) total)

  (* Plug-in I(bucket; delta) = H(delta) - H(delta | bucket) under the
     empirical bucket prior. *)
  let mutual_information_bits t =
    let counts, totals, total = snapshot t in
    if total = 0 then 0.
    else begin
      let h_y = entropy_of (marginal counts (n_bins t) total) in
      let h_y_given_x = ref 0. in
      Array.iteri
        (fun b row ->
          if totals.(b) > 0 then begin
            let px = float_of_int totals.(b) /. float_of_int total in
            let cond =
              Array.map (fun c -> float_of_int c /. float_of_int totals.(b)) row
            in
            h_y_given_x := !h_y_given_x +. (px *. entropy_of cond)
          end)
        counts;
      Float.max 0. (h_y -. !h_y_given_x)
    end

  (* Blahut–Arimoto over the empirical conditionals W(delta | bucket):
     capacity = max over input priors of I(p; W).  Buckets with no
     observations are excluded (they carry no channel estimate). *)
  let capacity_bits t =
    let counts, totals, _ = snapshot t in
    let active =
      Array.of_list
        (List.filter
           (fun b -> totals.(b) > 0)
           (List.init t.n_buckets (fun b -> b)))
    in
    let k = Array.length active in
    if k < 2 then 0.
    else begin
      let bins = n_bins t in
      let w =
        Array.map
          (fun b ->
            Array.map
              (fun c -> float_of_int c /. float_of_int totals.(b))
              counts.(b))
          active
      in
      let p = Array.make k (1. /. float_of_int k) in
      let d = Array.make k 0. in
      let cap = ref 0. in
      for _ = 1 to 60 do
        let r = Array.make bins 0. in
        for x = 0 to k - 1 do
          for y = 0 to bins - 1 do
            r.(y) <- r.(y) +. (p.(x) *. w.(x).(y))
          done
        done;
        (* D(x) = KL(W(.|x) || r), in bits *)
        for x = 0 to k - 1 do
          let s = ref 0. in
          for y = 0 to bins - 1 do
            if w.(x).(y) > 0. && r.(y) > 0. then
              s := !s +. (w.(x).(y) *. log2 (w.(x).(y) /. r.(y)))
          done;
          d.(x) <- !s
        done;
        cap := 0.;
        Array.iteri (fun x px -> cap := !cap +. (px *. d.(x))) p;
        (* p'(x) ∝ p(x) 2^D(x) *)
        let z = ref 0. in
        for x = 0 to k - 1 do
          p.(x) <- p.(x) *. Float.exp2 d.(x);
          z := !z +. p.(x)
        done;
        if !z > 0. then
          for x = 0 to k - 1 do
            p.(x) <- p.(x) /. !z
          done
      done;
      Float.max 0. !cap
    end
end

let global_estimator = Estimator.create ()

let publish_estimate () =
  Obs.Metrics.set_gauge g_capacity (Estimator.capacity_bits global_estimator);
  Obs.Metrics.set_gauge g_entropy
    (Estimator.delta_entropy_bits global_estimator)

(* Republish the gauges every [publish_every] data frames so a live
   Prometheus scrape tracks the estimate without per-frame O(buckets ×
   bins) work. *)
let publish_every = 16
let frames_since_publish = Atomic.make 0

(* ------------------------------------------------------------------ *)
(* Streams *)

module Stream = struct
  type t = {
    id : int;
    codec : string;
    mutable bucket : int;
    mutable baseline8 : int;  (* EWMA of data-frame clen, scaled by 8 *)
    mutable data_frames : int;
  }

  let next_id = Atomic.make 0

  let create ?(bucket = -1) ~codec () =
    Obs.Metrics.incr m_streams;
    {
      id = Atomic.fetch_and_add next_id 1;
      codec;
      bucket;
      baseline8 = 0;
      data_frames = 0;
    }

  let id t = t.id
  let bucket t = t.bucket

  let note_prefix t b ~len =
    if t.bucket < 0 && len > 0 then t.bucket <- prefix_bucket b ~len

  let on_frame t ~seq ~tag ~ulen ~clen ~enc_ns =
    let delta =
      match tag with
      | Data | Flush when ulen > 0 ->
          let d =
            if t.data_frames = 0 then 0 else clen - ((t.baseline8 + 4) / 8)
          in
          (* EWMA with alpha = 1/8, in 1/8ths to stay integral *)
          if t.data_frames = 0 then t.baseline8 <- 8 * clen
          else t.baseline8 <- t.baseline8 + clen - ((t.baseline8 + 4) / 8);
          t.data_frames <- t.data_frames + 1;
          d
      | _ -> 0
    in
    let r =
      {
        stream = t.id;
        seq;
        tag;
        codec = t.codec;
        ulen;
        clen;
        delta;
        bucket = t.bucket;
        enc_ns;
        ts_ns = Obs.now_ns ();
      }
    in
    ring_push r;
    emit_to_sink r;
    (match tag with
    | Data -> Obs.Metrics.incr m_frames
    | Flush ->
        Obs.Metrics.incr m_frames;
        Obs.Metrics.incr m_flush
    | Trailer -> ());
    if tag <> Trailer && ulen > 0 then begin
      Obs.Metrics.observe m_delta_abs (abs delta);
      Obs.Metrics.observe m_enc_ns enc_ns;
      if t.bucket >= 0 then begin
        Estimator.observe global_estimator ~bucket:t.bucket ~delta;
        if Atomic.fetch_and_add frames_since_publish 1 mod publish_every = 0
        then publish_estimate ()
      end
    end
end

(* ------------------------------------------------------------------ *)
(* Request records *)

type request_record = {
  conn : int;
  op : string;
  req_codec : string;
  frame_size : int;
  req_bytes : int;
  resp_bytes : int;
  frames : int;
  req_bucket : int;
  wall_ns : int;
  ts_ns : int;
  status : string;
}

let jsonl_of_request r =
  Printf.sprintf
    "{\"t\": \"request\", \"conn\": %d, \"op\": \"%s\", \"codec\": \"%s\", \
     \"frame_size\": %d, \"req_bytes\": %d, \"resp_bytes\": %d, \
     \"frames\": %d, \"bucket\": %d, \"wall_ns\": %d, \"ts_ns\": %d, \
     \"status\": \"%s\"}"
    r.conn (json_escape r.op)
    (json_escape r.req_codec)
    r.frame_size r.req_bytes r.resp_bytes r.frames r.req_bucket r.wall_ns
    r.ts_ns
    (json_escape r.status)

let record_request r =
  if Atomic.get enabled_flag then begin
    (match Atomic.get current_sink with
    | Null | Custom _ -> ()
    | Jsonl oc ->
        Mutex.lock sink_lock;
        output_string oc (jsonl_of_request r);
        output_char oc '\n';
        flush oc;
        Mutex.unlock sink_lock);
    Obs.Metrics.incr m_requests;
    Obs.Metrics.observe m_request_frames r.frames;
    publish_estimate ()
  end
