lib/taintchannel/memcpy_model.ml: Bytes Engine
