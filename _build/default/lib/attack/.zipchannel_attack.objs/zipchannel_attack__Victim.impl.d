lib/attack/victim.ml: Array Bytes Event Layout List Zipchannel_compress Zipchannel_trace
