(** Burrows–Wheeler transform over cyclic rotations.

    [transform] sorts all cyclic rotations of the input lexicographically
    and returns the last column together with the row index of the
    original string — exactly the object Bzip2's block sort computes.
    The built-in sorter uses prefix doubling (O(n log² n), no pathological
    inputs); Bzip2's budgeted [main_sort]/[fallback_sort] live in
    {!Block_sort} and can be injected through [transform_with]. *)

val sort_rotations : bytes -> int array
(** Permutation [p] such that rotation starting at [p.(k)] is the k-th
    smallest; ties between identical rotations are broken by start index. *)

val sort_rotations_work : bytes -> int array * int
(** Also returns the number of rank comparisons performed — a
    data-dependent run-time measure (repetitive input refines for more
    rounds), which is precisely the side channel Section VI's
    fingerprinting attack observes.  The count is bit-identical to
    {!reference_sort_rotations_work}: the fast path packs each rank pair
    into one int, so [Array.sort] runs the same comparison sequence
    without boxing. *)

val reference_sort_rotations_work : bytes -> int array * int
(** The original tuple-keyed implementation, kept as the executable
    specification of both the permutation and the work count; the test
    suite cross-checks the fast paths against it. *)

val sort_rotations_work_sub :
  ?arena:Zipchannel_buf.Arena.t -> bytes -> off:int -> len:int -> int array * int
(** {!sort_rotations_work} of [Bytes.sub block off len] without
    materializing the slice.  With [arena], every scratch array — and
    the returned permutation — lives in the arena's slots: the
    permutation's physical length may exceed [len] (only the first [len]
    entries are meaningful) and it is overwritten by the next sort using
    the same arena.  Permutation entries and work count are identical to
    the whole-buffer entry points. *)

val transform_with : perm:int array -> bytes -> bytes * int
(** Last column and primary index from a precomputed rotation order.
    @raise Invalid_argument if [perm] is not a permutation of the right
    length. *)

val transform : bytes -> bytes * int

val transform_with_sub :
  ?arena:Zipchannel_buf.Arena.t ->
  perm:int array ->
  bytes ->
  off:int ->
  len:int ->
  bytes * int
(** Pipeline-internal {!transform_with} over [Bytes.sub block off len].
    [perm] must order the slice's rotations (physical length >= [len];
    it is trusted, not re-validated — pass only permutations produced by
    the sorts above).  With [arena] the returned last column is the
    arena's bytes slot: logical length [len], physical possibly longer,
    overwritten by the next transform using the same arena. *)

val inverse : bytes -> int -> bytes
(** [inverse last_column primary_index] recovers the original string.
    @raise Invalid_argument if the index is out of range. *)
