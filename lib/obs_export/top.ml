module Metrics = Zipchannel_obs.Obs.Metrics

type row = { name : string; value : float; rate : float option }

type view = {
  samples : int;
  spans : (string * int * float) list;
  runtime : row list;
  leak : row list;
  serve : row list;
}

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let self_prefix = "prof.self."

let of_snapshot ?prev ?(dt_s = 0.) (cur : Metrics.snapshot) =
  let prev_counters =
    match prev with Some p -> p.Metrics.counters | None -> []
  in
  let prev_counter n =
    match List.assoc_opt n prev_counters with Some v -> v | None -> 0
  in
  (* Spans from the prof.self.* counters; windowed when prev given. *)
  let counter_delta n v = if prev = None then v else max 0 (v - prev_counter n) in
  let samples =
    match List.assoc_opt "prof.samples" cur.counters with
    | Some v -> counter_delta "prof.samples" v
    | None -> 0
  in
  let spans =
    List.filter_map
      (fun (n, v) ->
        if has_prefix self_prefix n then
          let d = counter_delta n v in
          if d > 0 then
            let name =
              String.sub n (String.length self_prefix)
                (String.length n - String.length self_prefix)
            in
            let share =
              if samples > 0 then
                100. *. float_of_int d /. float_of_int samples
              else 0.
            in
            Some (name, d, share)
          else None
        else None)
      cur.counters
    |> List.sort (fun (na, a, _) (nb, b, _) ->
           if a <> b then compare b a else compare na nb)
  in
  let section prefix =
    let counters =
      List.filter_map
        (fun (n, v) ->
          if has_prefix prefix n then
            let rate =
              if prev <> None && dt_s > 0. then
                Some (float_of_int (max 0 (v - prev_counter n)) /. dt_s)
              else None
            in
            Some { name = n; value = float_of_int v; rate }
          else None)
        cur.counters
    in
    let gauges =
      List.filter_map
        (fun (n, v) ->
          if has_prefix prefix n then Some { name = n; value = v; rate = None }
          else None)
        cur.gauges
    in
    let histograms =
      List.concat_map
        (fun (n, (hs : Metrics.histogram_snapshot)) ->
          if has_prefix prefix n then
            [
              {
                name = n ^ ".count";
                value = float_of_int hs.count;
                rate = None;
              };
              { name = n ^ ".sum"; value = float_of_int hs.sum; rate = None };
            ]
          else [])
        cur.histograms
    in
    List.sort (fun a b -> compare a.name b.name) (counters @ gauges @ histograms)
  in
  {
    samples;
    spans;
    runtime = section "runtime.";
    leak = section "leak.";
    serve = section "serve.";
  }

let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4f" v

let render v =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "samples %d" v.samples;
  List.iter
    (fun (name, self, share) -> line "span %s %.1f%% (%d)" name share self)
    v.spans;
  let rows rs =
    List.iter
      (fun r ->
        match r.rate with
        | Some rate -> line "%s %s (%.1f/s)" r.name (fnum r.value) rate
        | None -> line "%s %s" r.name (fnum r.value))
      rs
  in
  rows v.runtime;
  rows v.leak;
  rows v.serve;
  Buffer.contents b

let to_json v =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "{\"samples\": %d, \"spans\": {" v.samples);
  List.iteri
    (fun i (name, self, share) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf "%s: {\"self\": %d, \"share\": %.4f}"
           (Json.quote name) self share))
    v.spans;
  Buffer.add_string b "}";
  let section label rs =
    Buffer.add_string b (Printf.sprintf ", %s: {" (Json.quote label));
    List.iteri
      (fun i r ->
        if i > 0 then Buffer.add_string b ", ";
        Buffer.add_string b (Printf.sprintf "%s: " (Json.quote r.name));
        (match r.rate with
        | Some rate ->
            Buffer.add_string b
              (Printf.sprintf "{\"value\": %s, \"rate\": %.6g}" (fnum r.value)
                 rate)
        | None -> Buffer.add_string b (fnum r.value)))
      rs;
    Buffer.add_string b "}"
  in
  section "runtime" v.runtime;
  section "leak" v.leak;
  section "serve" v.serve;
  Buffer.add_string b "}";
  Buffer.contents b
