module C = Zipchannel_compress

type t = {
  name : string;
  compress : bytes -> bytes;
  decode : bytes -> (bytes, C.Codec_error.t) result;
  decode_exn : bytes -> bytes;
  max_plain : int;
}

let join_entries entries =
  Bytes.concat Bytes.empty
    (List.map (fun e -> e.C.Container.Archive.data) entries)

let all =
  [
    {
      name = "lzw";
      compress = C.Lzw.compress;
      decode = C.Lzw.decompress_result;
      decode_exn = C.Lzw.decompress;
      max_plain = 4096;
    };
    {
      name = "huffman";
      compress = C.Huffman.encode;
      decode = C.Huffman.decode_result;
      decode_exn = C.Huffman.decode;
      max_plain = 4096;
    };
    {
      name = "deflate";
      compress = (fun b -> C.Deflate.compress b);
      decode = C.Deflate.decompress_result;
      decode_exn = C.Deflate.decompress;
      max_plain = 4096;
    };
    {
      name = "rfc1951";
      compress = (fun b -> C.Rfc1951.deflate b);
      decode = C.Rfc1951.inflate_result;
      decode_exn = C.Rfc1951.inflate;
      max_plain = 4096;
    };
    {
      name = "zlib";
      compress = (fun b -> C.Rfc1951.Zlib.compress b);
      decode = C.Rfc1951.Zlib.decompress_result;
      decode_exn = C.Rfc1951.Zlib.decompress;
      max_plain = 4096;
    };
    {
      name = "gzip";
      compress = (fun b -> C.Rfc1951.Gzip.compress b);
      decode = C.Rfc1951.Gzip.decompress_result;
      decode_exn = C.Rfc1951.Gzip.decompress;
      max_plain = 4096;
    };
    {
      name = "bzip2";
      compress = (fun b -> C.Bzip2.compress b);
      decode = C.Bzip2.decompress_result;
      decode_exn = C.Bzip2.decompress;
      (* bzip2 block sorting dominates corpus construction; keep the
         plaintext under one default block. *)
      max_plain = 2048;
    };
    {
      name = "lz4";
      compress = C.Lz4.compress;
      decode = C.Lz4.decompress_result;
      decode_exn = C.Lz4.decompress;
      max_plain = 4096;
    };
    {
      name = "snappy";
      compress = C.Snappy.compress;
      decode = C.Snappy.decompress_result;
      decode_exn = C.Snappy.decompress;
      max_plain = 4096;
    };
    {
      name = "rle1";
      compress = C.Rle1.encode;
      decode = C.Rle1.decode_result;
      decode_exn = C.Rle1.decode;
      max_plain = 4096;
    };
    {
      name = "stream";
      compress = C.Container.Stream.pack;
      decode = C.Container.Stream.unpack_result;
      decode_exn = C.Container.Stream.unpack;
      max_plain = 4096;
    };
    {
      name = "frame";
      (* Small frames so a 4 KiB corpus plaintext spans several frames
         and mutations can land in any header, payload or the trailer. *)
      compress =
        (fun data -> C.Frame.compress ~frame_size:512 ~codec:C.Frame.Deflate data);
      decode = C.Frame.decompress_result;
      decode_exn = C.Frame.decompress;
      max_plain = 4096;
    };
    {
      name = "archive";
      compress =
        (fun data -> C.Container.Archive.pack [ { name = "fuzz"; data } ]);
      decode =
        (fun b ->
          match C.Container.Archive.unpack_result b with
          | Ok entries -> Ok (join_entries entries)
          | Error e -> Error e);
      decode_exn = (fun b -> join_entries (C.Container.Archive.unpack b));
      max_plain = 2048;
    };
  ]

let names = List.map (fun c -> c.name) all

let find name = List.find_opt (fun c -> c.name = name) all
