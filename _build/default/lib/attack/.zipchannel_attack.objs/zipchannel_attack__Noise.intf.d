lib/attack/noise.mli: Zipchannel_cache Zipchannel_util
