(** Snappy compression (raw format).

    A varint decompressed length, then tagged elements: the low 2 bits of
    each tag byte select a literal run (00; length in the high 6 bits,
    60..63 meaning extra little-endian length bytes), a copy with a
    1-byte offset (01; 3-bit length, 11-bit offset), a copy with a 2-byte
    little-endian offset (10; 6-bit length), or a copy with a 4-byte
    offset (11; decoded, never emitted).  Copies emit at most 64 bytes
    each; longer matches split.

    The match finder probes a [2^14]-slot position table indexed by a
    multiplicative hash of the next 4 input bytes — the hash-head gadget
    shape, modeled in [Taintchannel.Snappy_gadget]. *)

val min_match : int
(** 4 — matches shorter than this are left as literals. *)

val max_copy_len : int
(** 64 — the longest copy a single element can emit. *)

val hash_bits : int
(** 14: the match-finder table has [2^14] slots. *)

val hash_const : int
(** 0x1e35a7bd, snappy's multiplicative hash constant. *)

val hash_of_quad : int -> int
(** [((v * hash_const) land 0xffffffff) lsr (32 - hash_bits)] — the
    table slot probed for a 4-byte little-endian group [v]. *)

val quad : bytes -> int -> int
(** The 4 bytes at an offset as a little-endian 32-bit group (the hash
    input).  Unchecked bounds: the caller stays 4 bytes clear of the
    end. *)

val max_declared_length : payload_bytes:int -> int
(** Decompression-bomb bound: the densest element is a 2-byte-offset copy
    (3 payload bytes emitting 64 output bytes), so the payload cannot
    honestly expand beyond [22 * payload + 8] bytes.  Saturates to
    [max_int] instead of overflowing. *)

val compress : bytes -> bytes

val decompress_result : bytes -> (bytes, Codec_error.t) result
(** Safe decoder: truncated, corrupt or bomb-shaped input (a declared
    length beyond {!max_declared_length}, a malformed varint, a copy
    offset outside the produced output, a run past the declared length)
    is an [Error] with the byte offset of the fault; nothing is allocated
    for a bomb and no exception escapes this boundary. *)

val decompress : bytes -> bytes
(** [Codec_error.unwrap] of {!decompress_result}.
    @raise Failure on malformed input. *)
