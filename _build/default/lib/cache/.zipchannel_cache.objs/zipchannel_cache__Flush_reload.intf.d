lib/cache/flush_reload.mli: Cache Timing Zipchannel_util
