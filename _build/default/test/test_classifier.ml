open Zipchannel_util
open Zipchannel_classifier

let test_create_validation () =
  Alcotest.check_raises "one layer"
    (Invalid_argument "Mlp.create: need at least input and output sizes")
    (fun () -> ignore (Mlp.create ~layers:[ 4 ] ()));
  Alcotest.check_raises "bad size" (Invalid_argument "Mlp.create: layer size")
    (fun () -> ignore (Mlp.create ~layers:[ 4; 0; 2 ] ()))

let test_shapes () =
  let m = Mlp.create ~layers:[ 6; 5; 3 ] () in
  Alcotest.(check int) "inputs" 6 (Mlp.n_inputs m);
  Alcotest.(check int) "classes" 3 (Mlp.n_classes m)

let test_softmax_probabilities () =
  let m = Mlp.create ~layers:[ 4; 8; 3 ] () in
  let p = Mlp.forward m [| 0.1; -0.2; 0.3; 0.9 |] in
  let sum = Array.fold_left ( +. ) 0.0 p in
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 sum;
  Array.iter
    (fun v -> Alcotest.(check bool) "in [0,1]" true (v >= 0.0 && v <= 1.0))
    p

let test_forward_input_validation () =
  let m = Mlp.create ~layers:[ 4; 3 ] () in
  Alcotest.check_raises "wrong size" (Invalid_argument "Mlp.forward: input size")
    (fun () -> ignore (Mlp.forward m [| 1.0 |]))

let test_deterministic_init () =
  let a = Mlp.create ~seed:9 ~layers:[ 3; 4; 2 ] () in
  let b = Mlp.create ~seed:9 ~layers:[ 3; 4; 2 ] () in
  let x = [| 0.5; -0.5; 1.0 |] in
  Alcotest.(check (array (float 1e-12))) "same forward" (Mlp.forward a x)
    (Mlp.forward b x)

let blob_dataset ~seed ~classes ~dims ~per_class =
  let prng = Prng.create ~seed () in
  let sample cls =
    Array.init dims (fun d ->
        Prng.gaussian prng
          ~mean:(2.0 *. float_of_int (((cls + d) mod classes) - 1))
          ~stddev:0.4)
  in
  Dataset.make
    (List.concat
       (List.init classes (fun c ->
            List.init per_class (fun _ -> (sample c, c)))))

let test_learns_separable_blobs () =
  let ds = blob_dataset ~seed:5 ~classes:3 ~dims:8 ~per_class:80 in
  let ds = Dataset.shuffle (Prng.create ~seed:6 ()) ds in
  let train, test = Dataset.split ds ~train_fraction:0.8 in
  let m = Mlp.create ~layers:[ 8; 16; 3 ] () in
  Mlp.train ~epochs:50 m ~x:train.Dataset.x ~y:train.Dataset.y;
  Alcotest.(check bool) "train accuracy" true
    (Mlp.accuracy m ~x:train.Dataset.x ~y:train.Dataset.y > 0.95);
  Alcotest.(check bool) "test accuracy" true
    (Mlp.accuracy m ~x:test.Dataset.x ~y:test.Dataset.y > 0.9)

let test_training_reduces_loss () =
  let ds = blob_dataset ~seed:7 ~classes:2 ~dims:4 ~per_class:50 in
  let m = Mlp.create ~layers:[ 4; 8; 2 ] () in
  let before = Mlp.loss m ~x:ds.Dataset.x ~y:ds.Dataset.y in
  Mlp.train ~epochs:20 m ~x:ds.Dataset.x ~y:ds.Dataset.y;
  let after = Mlp.loss m ~x:ds.Dataset.x ~y:ds.Dataset.y in
  Alcotest.(check bool) "loss decreased" true (after < before)

let test_dataset_split () =
  let ds = Dataset.make (List.init 10 (fun i -> ([| float_of_int i |], i))) in
  let a, b = Dataset.split ds ~train_fraction:0.7 in
  Alcotest.(check int) "train 7" 7 (Array.length a.Dataset.x);
  Alcotest.(check int) "test 3" 3 (Array.length b.Dataset.x);
  Alcotest.check_raises "bad fraction" (Invalid_argument "Dataset.split: fraction")
    (fun () -> ignore (Dataset.split ds ~train_fraction:1.5))

let test_dataset_shuffle_preserves_pairs () =
  let ds =
    Dataset.make (List.init 50 (fun i -> (Array.make 1 (float_of_int i), i)))
  in
  let s = Dataset.shuffle (Prng.create ~seed:8 ()) ds in
  Array.iteri
    (fun i x ->
      Alcotest.(check (float 1e-12)) "pair intact"
        (float_of_int s.Dataset.y.(i))
        x.(0))
    s.Dataset.x

let test_features_of_bools () =
  let f = Dataset.features_of_bools [| [| true; false |]; [| false; true |] |] in
  Alcotest.(check (array (float 1e-12))) "flattened" [| 1.0; 0.0; 0.0; 1.0 |] f

let test_downsample () =
  let trace = Array.init 100 (fun i -> i < 50) in
  let d = Dataset.downsample ~bins:4 trace in
  Alcotest.(check (array (float 1e-12))) "hit fractions"
    [| 1.0; 1.0; 0.0; 0.0 |] d;
  Alcotest.check_raises "bins" (Invalid_argument "Dataset.downsample: bins")
    (fun () -> ignore (Dataset.downsample ~bins:0 trace))

let qcheck_softmax_sums =
  QCheck.Test.make ~name:"softmax always sums to 1" ~count:100
    QCheck.(list_of_size (QCheck.Gen.return 6) (float_range (-10.0) 10.0))
    (fun l ->
      let m = Mlp.create ~layers:[ 6; 3 ] () in
      let p = Mlp.forward m (Array.of_list l) in
      abs_float (Array.fold_left ( +. ) 0.0 p -. 1.0) < 1e-9)

let suite =
  ( "classifier",
    [
      Alcotest.test_case "create validation" `Quick test_create_validation;
      Alcotest.test_case "shapes" `Quick test_shapes;
      Alcotest.test_case "softmax" `Quick test_softmax_probabilities;
      Alcotest.test_case "forward validation" `Quick test_forward_input_validation;
      Alcotest.test_case "deterministic init" `Quick test_deterministic_init;
      Alcotest.test_case "learns blobs" `Quick test_learns_separable_blobs;
      Alcotest.test_case "loss decreases" `Quick test_training_reduces_loss;
      Alcotest.test_case "dataset split" `Quick test_dataset_split;
      Alcotest.test_case "dataset shuffle" `Quick test_dataset_shuffle_preserves_pairs;
      Alcotest.test_case "features of bools" `Quick test_features_of_bools;
      Alcotest.test_case "downsample" `Quick test_downsample;
      QCheck_alcotest.to_alcotest qcheck_softmax_sums;
    ] )
