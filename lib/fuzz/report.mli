(** Order-stable fuzz reports.

    Per-codec tallies in registry order, failures sorted by (codec, case
    index) — the rendering is a pure function of the run's inputs, so
    [--jobs 1] and [--jobs 8] produce identical reports. *)

type failure = {
  codec : string;
  case : int;  (** case index within the codec's run *)
  verdict : Oracle.verdict;
  input : bytes;  (** minimized reproducer *)
  original_len : int;  (** length before minimization *)
}

type codec_stats = {
  name : string;
  runs : int;
  accepted : int;
  rejected : int;
  failures : failure list;  (** sorted by case index *)
}

type t = {
  seed : int;
  total_runs : int;
  stats : codec_stats list;  (** in {!Codecs.all} order *)
}

val failures : t -> failure list

val fnv1a : bytes -> string
(** FNV-1a 64-bit hash as 16 hex digits — stable fixture naming. *)

val fixture_name : failure -> string
(** ["<codec>-<verdict>-<hash>.bin"]. *)

val render : t -> string
(** Human-readable multi-line summary. *)
