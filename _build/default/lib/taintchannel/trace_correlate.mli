(** A trace-based leak detector — the class of tools the paper compares
    TaintChannel against (Section III, Related Work VII-A2).

    These tools run the target with several inputs, collect per-location
    address traces, and flag locations whose addresses vary with the
    input.  They find {e that} a location leaks, but — unlike taint
    tracking — they cannot produce the computation relating input bits to
    address bits, which an attacker needs to invert the channel.  This
    implementation exists as a baseline so that claim is demonstrable. *)

type finding = {
  location : string;
  varying_positions : int;
      (** number of trace positions at which addresses differed *)
  line_varying_positions : int;
      (** positions still differing at 64-byte line granularity — the
          attacker-relevant subset *)
}

val analyze : run:(bytes -> Engine.t) -> inputs:bytes list -> finding list
(** Run the target on every input, align the per-location address traces,
    and report locations with input-dependent addresses (most-varying
    first).  @raise Invalid_argument on fewer than two inputs. *)

val pp_finding : Format.formatter -> finding -> unit
