lib/compress/lzw.mli:
