lib/mitigation/leak_check.mli:
