(** ZipChannel: cache side-channel analysis of compression algorithms.

    Entry-point module: aliases every subsystem library and exposes the
    {!Experiments} harness that regenerates the paper's figures and
    numbers.  See DESIGN.md for the system inventory and EXPERIMENTS.md
    for paper-vs-measured results. *)

module Util = Zipchannel_util
(** PRNG, lipsum text, statistics. *)

module Bigstring = Zipchannel_buf.Bigstring
(** Off-heap char buffers with unaligned 8/16/32/64-bit word access —
    the zero-copy substrate under the compression kernels. *)

module Arena = Zipchannel_buf.Arena
(** Reusable per-domain scratch buffers backing the block pipelines. *)

module Taint = Zipchannel_taint
(** Per-bit taint tags, tainted words, report rendering. *)

module Trace = Zipchannel_trace
(** Memory events and victim layouts. *)

module Compress = Zipchannel_compress
(** The compressors: Bzip2 pipeline, DEFLATE-style LZ77, LZW, and their
    stages. *)

module Codec_error = Zipchannel_compress.Codec_error
(** The structured decode error ([codec], byte [offset], [reason]) every
    [*_result] decoder in {!Compress} returns. *)

module Frame = Zipchannel_compress.Frame
(** Self-describing framed container over the codecs: incremental
    encoder/decoder state machines plus pipelined multi-domain
    streaming. *)

module Fuzz = Zipchannel_fuzz
(** Structure-aware fuzzing harness: valid-corpus generation,
    format-aware mutation, round-trip/differential oracles, crash
    minimization, and the parallel campaign runner behind [zc fuzz]. *)

module Taintchannel = Zipchannel_taintchannel
(** The TaintChannel tool: instrumentation engine, gadget models, AES
    validation target, control-flow trace diffing. *)

module Cache = Zipchannel_cache
(** LLC model, CAT masks, timing, Prime+Probe and Flush+Reload. *)

module Sgx = Zipchannel_sgx
(** Enclave simulator and mprotect controlled channel. *)

module Classifier = Zipchannel_classifier
(** MLP and dataset helpers for the fingerprinting attack. *)

module Attack = Zipchannel_attack
(** End-to-end attacks: SGX Prime+Probe, fingerprinting, recovery math,
    corpora, and the timer-stepping baseline. *)

module Mitigation = Zipchannel_mitigation
(** Section VIII: constant-access-pattern compression primitives and the
    constant-trace checker. *)

module Parallel = Zipchannel_parallel
(** Multicore work pool backing the [?jobs] parameters of the block
    compressors and the corpus experiments. *)

module Obs = Zipchannel_obs.Obs
(** Observability: process-wide metrics, span tracing, and progress
    reporting wired through every layer above. *)

module Obs_prof = Zipchannel_obs_prof.Obs_prof
(** Runtime observatory: always-on sampling wall-clock profiler over
    the {!Obs.Prof} publication slots, plus the [runtime.*] GC and
    allocation telemetry plane derived from [Gc.quick_stat] deltas. *)

module Leak_audit = Zipchannel_obs_leak.Leak_audit
(** The leak observatory: per-frame audit records (lengths, baseline
    deltas, encode wall time), bounded ring + JSONL sink, and online
    conditional-histogram / mutual-information / channel-capacity
    estimators over the frame-length side channel. *)

module Obs_export = Zipchannel_obs_export
(** Telemetry export and analysis: OTLP/JSON and Prometheus exporters,
    the offline span profiler, the leakage scoreboard, and per-metric
    bench regression gating. *)

module Experiments = Experiments
(** Reproductions of every figure and evaluation number in the paper. *)
