lib/compress/rle1.mli:
