lib/compress/huffman.ml: Array Bitio Bytes Char List
