lib/taintchannel/zlib_gadget.ml: Bytes Engine Tval Zipchannel_compress Zipchannel_taint
