(** TaintChannel model of Bzip2's frequency-table gadget (paper Listing 3,
    Fig. 4).

    [mainSort] builds a 65537-entry histogram of two-byte pairs:
    [j = (j >> 8) | (block\[i\] << 8); ftab\[j\]++], iterating backwards
    over the block.  The address [ftab + j*4] carries the taint of two
    consecutive input bytes — the current byte in bits 8–15 of the index,
    the following byte in bits 0–7 — and the loop touches [quadrant\[i\]]
    and [block\[i\]] on the way, which is what makes the access sequence
    single-steppable with a page-fault channel (Section V-A). *)

val ftab_base : int
(** Default base of [ftab]; deliberately NOT cache-line aligned (offset
    0x30 into a line), reproducing the off-by-one ambiguity of
    Section IV-D. *)

val block_base : int
val quadrant_base : int

val location : string

val run : ?ftab_base:int -> bytes -> Engine.t
(** Execute the Listing 3 loop over the input block under the
    instrumentation engine. *)

val index_tval : bytes -> int -> Zipchannel_taint.Tval.t
(** The tainted histogram index (the rcx of Fig. 4) at loop iteration
    [k]: renders the paper's consecutive-entry figure without re-running
    the engine.  @raise Invalid_argument out of range. *)
