examples/quickstart.mli:
