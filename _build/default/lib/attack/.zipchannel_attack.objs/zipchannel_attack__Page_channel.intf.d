lib/attack/page_channel.mli: Attack_config Noise Zipchannel_cache Zipchannel_sgx Zipchannel_util
