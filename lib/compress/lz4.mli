(** LZ4 block compression.

    A stream of sequences, each a token byte (literal length in the high
    nibble, match length - 4 in the low nibble, 15 meaning "add 255-run
    extension bytes"), the literal bytes, a 2-byte little-endian match
    offset, and match-length extension bytes; the block ends with a
    literals-only sequence.  The container prefixes the block with the
    decompressed length as a 4-byte little-endian word — the out-of-band
    length every real LZ4 framing carries.

    The match finder probes a [2^12]-slot position table indexed by a
    multiplicative hash of the next 4 input bytes, so the table index is a
    pure function of raw input data — the same "value used as address"
    gadget shape as zlib's UPDATE_HASH head probe (modeled in
    [Taintchannel.Lz4_gadget]). *)

val header_len : int
(** 4: the little-endian decompressed length stored up front. *)

val min_match : int
(** 4 — the shortest encodable match. *)

val hash_bits : int
(** 12: the match-finder table has [2^12] slots. *)

val hash_const : int
(** 2654435761, LZ4's 32-bit Knuth multiplicative constant. *)

val hash_of_quad : int -> int
(** [((v * hash_const) land 0xffffffff) lsr (32 - hash_bits)] — the
    table slot probed for a 4-byte little-endian group [v]. *)

val quad : bytes -> int -> int
(** The 4 bytes at an offset as a little-endian 32-bit group (the hash
    input).  Unchecked bounds: the caller stays 4 bytes clear of the
    end. *)

val max_declared_length : payload_bytes:int -> int
(** Decompression-bomb bound: the most bytes a payload could expand to
    (each payload byte contributes at most 255 output bytes via a
    match-run extension).  Saturates to [max_int] instead of
    overflowing. *)

val compress : bytes -> bytes

val decompress_result : bytes -> (bytes, Codec_error.t) result
(** Safe decoder: truncated, corrupt or bomb-shaped input (a declared
    length beyond {!max_declared_length}, an offset outside the produced
    output, a run past the declared length) is an [Error] with the byte
    offset of the fault; nothing is allocated for a bomb and no exception
    escapes this boundary. *)

val decompress : bytes -> bytes
(** [Codec_error.unwrap] of {!decompress_result}.
    @raise Failure on malformed input. *)
