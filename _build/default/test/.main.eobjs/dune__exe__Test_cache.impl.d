test/test_cache.ml: Alcotest Array Cache Flush_reload List Prime_probe Prng QCheck QCheck_alcotest Timing Zipchannel_cache Zipchannel_util
