(** TaintChannel model of the snappy match-finder hash probe.

    [CompressFragment] hashes the next 4 source bytes with
    [h = (load32(ip) * 0x1e35a7bd) >> (32 - hash_bits)] and both reads
    and writes [table\[h\]] — the same hash-head gadget shape as zlib's
    INSERT_STRING and LZ4's table probe.  The imul is modeled as its
    shift-add expansion so per-bit taint flows through {!Tval.add}'s
    merge rule. *)

val table_base : int
(** Default virtual base of the working table. *)

val location_load : string
(** Report location of the candidate read. *)

val location_store : string
(** Report location of the position write. *)

val location : string
(** Alias for {!location_store}, the primary gadget. *)

val run : ?table_base:int -> bytes -> Engine.t
(** Execute the hash-insertion loop over the whole input under the
    instrumentation engine. *)
