open Zipchannel_trace

let region name base size elem_size = { Layout.name; base; size; elem_size }

let test_layout_addressing () =
  let l =
    Layout.create
      [ region "block" 0x1000 100 1; region "ftab" 0x2000 400 4 ]
  in
  Alcotest.(check int) "byte element" 0x1005 (Layout.addr_of l ~name:"block" ~index:5);
  Alcotest.(check int) "scaled element" 0x2028 (Layout.addr_of l ~name:"ftab" ~index:10)

let test_layout_bounds () =
  let l = Layout.create [ region "a" 0 16 4 ] in
  Alcotest.(check int) "last element" 12 (Layout.addr_of l ~name:"a" ~index:3);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Layout.addr_of: index outside region") (fun () ->
      ignore (Layout.addr_of l ~name:"a" ~index:4))

let test_layout_overlap_rejected () =
  Alcotest.check_raises "overlap"
    (Invalid_argument "Layout.create: overlapping regions") (fun () ->
      ignore (Layout.create [ region "a" 0 32 1; region "b" 16 32 1 ]))

let test_layout_duplicate_rejected () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Layout.create: duplicate name") (fun () ->
      ignore (Layout.create [ region "a" 0 16 1; region "a" 100 16 1 ]))

let test_layout_find_addr () =
  let l = Layout.create [ region "a" 0x100 64 1; region "b" 0x200 64 1 ] in
  (match Layout.find_addr l 0x210 with
  | Some (r, off) ->
      Alcotest.(check string) "region" "b" r.Layout.name;
      Alcotest.(check int) "offset" 0x10 off
  | None -> Alcotest.fail "should find");
  Alcotest.(check bool) "miss" true (Layout.find_addr l 0x500 = None)

let test_layout_region_not_found () =
  let l = Layout.create [ region "a" 0 16 1 ] in
  Alcotest.check_raises "missing region" Not_found (fun () ->
      ignore (Layout.region l "zzz"))

let test_event_constructors () =
  let r = Event.read ~label:"x" ~addr:0x40 ~size:4 () in
  let w = Event.write ~addr:0x80 ~size:2 () in
  Alcotest.(check bool) "read kind" true (r.Event.kind = Event.Read);
  Alcotest.(check bool) "write kind" true (w.Event.kind = Event.Write);
  Alcotest.(check string) "label default" "" w.Event.label;
  Alcotest.(check string) "pp" "R 0x40[4] (x)" (Format.asprintf "%a" Event.pp r)

let suite =
  ( "trace",
    [
      Alcotest.test_case "layout addressing" `Quick test_layout_addressing;
      Alcotest.test_case "layout bounds" `Quick test_layout_bounds;
      Alcotest.test_case "layout overlap" `Quick test_layout_overlap_rejected;
      Alcotest.test_case "layout duplicate" `Quick test_layout_duplicate_rejected;
      Alcotest.test_case "layout find_addr" `Quick test_layout_find_addr;
      Alcotest.test_case "layout not found" `Quick test_layout_region_not_found;
      Alcotest.test_case "event constructors" `Quick test_event_constructors;
    ] )
