let rec ensure_dir dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    ensure_dir (Filename.dirname dir);
    (* A concurrent writer may have created it between the check and
       here; only re-raise when the directory still doesn't exist. *)
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
  end

let ensure_parent_dir path = ensure_dir (Filename.dirname path)

let atomic_write ~path content =
  ensure_parent_dir path;
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc content;
  close_out oc;
  Sys.rename tmp path

let open_atomic ~path =
  ensure_parent_dir path;
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  let commit () =
    close_out oc;
    Sys.rename tmp path
  in
  (oc, commit)
