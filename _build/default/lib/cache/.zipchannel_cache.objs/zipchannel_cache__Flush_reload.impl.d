lib/cache/flush_reload.ml: Cache Timing Zipchannel_util
