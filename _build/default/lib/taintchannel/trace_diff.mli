(** Control-flow trace comparison.

    TaintChannel reduces an execution to a short trace of input-dependent
    events; diffing the traces of two inputs pinpoints control-flow
    divergence — how the paper discovered the mainSort/fallbackSort split
    in Bzip2 (Section VI) and the memcpy tail behaviour
    (Section III-B). *)

val first_divergence : string list -> string list -> int option
(** Index of the first position where the traces differ (a missing suffix
    counts as a difference); [None] when identical. *)

val diverges : string list -> string list -> bool

type report = {
  position : int;
  left : string option;  (** event of the first trace at the divergence *)
  right : string option;
}

val compare_traces : string list -> string list -> report option

val pp_report : Format.formatter -> report -> unit
