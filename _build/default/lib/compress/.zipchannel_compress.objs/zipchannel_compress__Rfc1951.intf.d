lib/compress/rfc1951.mli: Lz77
