module Prng = Zipchannel_util.Prng
module Lipsum = Zipchannel_util.Lipsum

(* Plaintext shapes, chosen to hit distinct decoder regimes: the empty
   and one-byte cases exercise header-only streams; runs exercise RLE
   stages and LZW dictionary growth; noise defeats every model (worst
   case for entropy coders); text and repetitive text match the paper's
   Section VI corpus. *)

let run_plain rng max_len =
  let n = 1 + Prng.int rng (max 1 max_len) in
  let b = Bytes.make n (Char.chr (Prng.byte rng)) in
  (* occasionally break the run so RLE escape paths fire *)
  if Prng.bool rng && n > 2 then
    Bytes.set b (Prng.int rng n) (Char.chr (Prng.byte rng));
  b

let text_plain rng max_len =
  let buf = Buffer.create 256 in
  while Buffer.length buf < max_len / 2 do
    Buffer.add_string buf (Lipsum.sentence rng);
    Buffer.add_char buf ' '
  done;
  Bytes.of_string (Buffer.sub buf 0 (min (Buffer.length buf) max_len))

let repetitive_plain rng max_len =
  let level = 1 + Prng.int rng 5 in
  let size = 1 + Prng.int rng (max 1 max_len) in
  Bytes.of_string (Lipsum.repetitive_file rng ~level ~size)

let plain rng ~max_len =
  match Prng.int rng 6 with
  | 0 -> Bytes.empty
  | 1 -> Bytes.make 1 (Char.chr (Prng.byte rng))
  | 2 -> run_plain rng max_len
  | 3 -> Prng.bytes rng (Prng.int rng (max 1 max_len))
  | 4 -> text_plain rng max_len
  | _ -> repetitive_plain rng max_len

let pool (codec : Codecs.t) ~seed ~size =
  let rng = Prng.create ~seed ()
  and size = max 1 size in
  let out = Array.make size Bytes.empty in
  (* explicit loop: the generator is advanced by each iteration, and
     [Array.init] does not specify the order it applies the closure in *)
  for i = 0 to size - 1 do
    let p = if i = 0 then Bytes.empty else plain rng ~max_len:codec.max_plain in
    out.(i) <- codec.compress p
  done;
  out
