module C = Zipchannel_compress
module Obs = Zipchannel_obs.Obs

type verdict =
  | Accepted
  | Rejected of C.Codec_error.t
  | Crash of { exn : string }
  | Mismatch of { detail : string }
  | Bomb of { output_len : int }
  | Overbudget of { elapsed_ms : float }

let verdict_label = function
  | Accepted -> "accepted"
  | Rejected _ -> "rejected"
  | Crash _ -> "crash"
  | Mismatch _ -> "mismatch"
  | Bomb _ -> "bomb"
  | Overbudget _ -> "overbudget"

let is_failure = function
  | Accepted | Rejected _ -> false
  | Crash _ | Mismatch _ | Bomb _ | Overbudget _ -> true

let bomb_cap = 4 * 1024 * 1024

(* The exception APIs document [Failure], [Invalid_argument] and
   [Container.Corrupt].  Anything else escaping — [Out_of_bits],
   [Stack_overflow], [Out_of_memory], [Not_found] — is the bug class
   this harness exists to catch. *)
let allowed_exn = function
  | Failure _ | Invalid_argument _ | C.Container.Corrupt _ -> true
  | _ -> false

(* Run the historical exception API and fold its behaviour into the
   verdict for the safe API's result: the two must agree. *)
let differential (codec : Codecs.t) input safe_result =
  match safe_result with
  | Ok out -> (
      if Bytes.length out > bomb_cap then Bomb { output_len = Bytes.length out }
      else
        match codec.Codecs.decode_exn input with
        | out' ->
            if Bytes.equal out out' then Accepted
            else
              Mismatch
                { detail = "safe and exception decode APIs returned different bytes" }
        | exception e ->
            if allowed_exn e then
              Mismatch
                {
                  detail =
                    Printf.sprintf
                      "safe API accepted but exception API raised %s"
                      (Printexc.to_string e);
                }
            else Crash { exn = Printexc.to_string e })
  | Error err -> (
      match codec.Codecs.decode_exn input with
      | _ ->
          Mismatch
            { detail = "safe API rejected but exception API accepted" }
      | exception e ->
          if allowed_exn e then Rejected err
          else Crash { exn = Printexc.to_string e })

let timed ~budget_ms f =
  let t0 = Obs.now_ns () in
  let v = f () in
  let elapsed_ms = float_of_int (Obs.now_ns () - t0) /. 1e6 in
  let v =
    if budget_ms > 0. && elapsed_ms > budget_ms && not (is_failure v) then
      Overbudget { elapsed_ms }
    else v
  in
  (v, elapsed_ms)

let check (codec : Codecs.t) ~budget_ms input =
  timed ~budget_ms @@ fun () ->
  match codec.Codecs.decode input with
  | result -> differential codec input result
  | exception e -> Crash { exn = Printexc.to_string e }

let roundtrip (codec : Codecs.t) ~budget_ms plain =
  timed ~budget_ms @@ fun () ->
  match codec.Codecs.compress plain with
  | exception e ->
      Crash { exn = "compress: " ^ Printexc.to_string e }
  | packed -> (
      match codec.Codecs.decode packed with
      | exception e -> Crash { exn = Printexc.to_string e }
      | Error err ->
          Mismatch
            {
              detail =
                Printf.sprintf "valid stream rejected: %s" err.C.Codec_error.reason;
            }
      | Ok out ->
          if not (Bytes.equal out plain) then
            Mismatch { detail = "round trip did not restore the plaintext" }
          else differential codec packed (Ok out))
