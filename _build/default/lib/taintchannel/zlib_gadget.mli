(** TaintChannel model of the Zlib INSERT_STRING gadget (paper Listing 1,
    Fig. 2).

    The deflate matcher maintains [ins_h = ((ins_h << 5) ^ c) & 0x7fff]
    over the last three input bytes and writes the current position into
    [head\[ins_h\]], an array of 2-byte entries.  The dereferenced address
    [head + ins_h*2] therefore carries the taint of three consecutive
    input bytes at bit offsets 1–8, 6–13 and 11–15. *)

val head_base : int
(** Default virtual base of the [head] array (cache-line aligned, as the
    paper assumes for this gadget). *)

val location : string
(** The report location string, matching Fig. 2. *)

val run : ?head_base:int -> bytes -> Engine.t
(** Execute the hash-insertion loop of deflate over the whole input under
    the instrumentation engine. *)
