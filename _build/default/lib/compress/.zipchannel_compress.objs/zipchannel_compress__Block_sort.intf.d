lib/compress/block_sort.mli:
