(* The original balanced-tree tagset, kept as the executable
   specification for the packed representation in {!Tagset}.  The
   equivalence qcheck suite in test/test_taint.ml drives both through
   the same operation sequences. *)

type tag = int

module S = Set.Make (Int)

type t = S.t

let empty = S.empty
let is_empty = S.is_empty
let singleton = S.singleton
let add = S.add
let union = S.union
let mem = S.mem
let cardinal = S.cardinal
let elements = S.elements
let equal = S.equal
let of_list l = List.fold_left (fun acc x -> S.add x acc) S.empty l
let fold = S.fold

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (elements t)
