lib/taint/tval.ml: Array Format List Tagset
