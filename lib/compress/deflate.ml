(* RFC 1951 Section 3.2.5 tables. *)
let length_bases =
  [| 3; 4; 5; 6; 7; 8; 9; 10; 11; 13; 15; 17; 19; 23; 27; 31; 35; 43; 51; 59;
     67; 83; 99; 115; 131; 163; 195; 227; 258 |]

let length_extra =
  [| 0; 0; 0; 0; 0; 0; 0; 0; 1; 1; 1; 1; 2; 2; 2; 2; 3; 3; 3; 3; 4; 4; 4; 4;
     5; 5; 5; 5; 0 |]

let distance_bases =
  [| 1; 2; 3; 4; 5; 7; 9; 13; 17; 25; 33; 49; 65; 97; 129; 193; 257; 385;
     513; 769; 1025; 1537; 2049; 3073; 4097; 6145; 8193; 12289; 16385;
     24577 |]

let distance_extra =
  [| 0; 0; 0; 0; 1; 1; 2; 2; 3; 3; 4; 4; 5; 5; 6; 6; 7; 7; 8; 8; 9; 9; 10;
     10; 11; 11; 12; 12; 13; 13 |]

let end_of_block = 256

let litlen_alphabet = 286

let dist_alphabet = 30

let find_code bases extra v name =
  let n = Array.length bases in
  let rec search idx =
    if idx < 0 then invalid_arg name
    else if bases.(idx) <= v then idx
    else search (idx - 1)
  in
  let idx = search (n - 1) in
  let bits = extra.(idx) in
  let off = v - bases.(idx) in
  if off lsr bits <> 0 then invalid_arg name;
  (idx, bits, off)

(* Per-length symbol table, replacing the linear [find_code] scan on the
   encoder hot path.  Built once from [find_code] itself, so the mapping
   is the scan's by construction. *)
let length_syms =
  Array.init 259 (fun len ->
      if len < 3 then 0
      else if len = 258 then 285
      else begin
        let idx, _, _ =
          find_code length_bases length_extra len "Deflate.length_code"
        in
        257 + idx
      end)

let length_code len =
  if len < 3 || len > 258 then invalid_arg "Deflate.length_code";
  let sym = Array.unsafe_get length_syms len in
  if sym = 285 then (285, 0, 0)
  else begin
    let bits = Array.unsafe_get length_extra (sym - 257) in
    (sym, bits, len - Array.unsafe_get length_bases (sym - 257))
  end

(* zlib's two-level distance table: distances 1..256 index the low half
   directly, larger ones via [(dist - 1) lsr 7] — every RFC 1951 range
   past 256 is 128-aligned, so one probe per bucket pins the symbol. *)
let dist_syms =
  Array.init 512 (fun i ->
      let dist = if i < 256 then i + 1 else ((i - 256) lsl 7) + 1 in
      let idx, _, _ =
        find_code distance_bases distance_extra dist "Deflate.distance_code"
      in
      idx)

let distance_code dist =
  if dist < 1 || dist > 32768 then invalid_arg "Deflate.distance_code";
  let sym =
    if dist <= 256 then Array.unsafe_get dist_syms (dist - 1)
    else Array.unsafe_get dist_syms (256 + ((dist - 1) lsr 7))
  in
  let bits = Array.unsafe_get distance_extra sym in
  (sym, bits, dist - Array.unsafe_get distance_bases sym)

let base_of_length_code sym =
  if sym < 257 || sym > 285 then invalid_arg "Deflate.base_of_length_code";
  (length_bases.(sym - 257), length_extra.(sym - 257))

let base_of_distance_code sym =
  if sym < 0 || sym >= dist_alphabet then
    invalid_arg "Deflate.base_of_distance_code";
  (distance_bases.(sym), distance_extra.(sym))

let encode_token_array tokens =
  let litlen_freqs = Array.make litlen_alphabet 0 in
  let dist_freqs = Array.make dist_alphabet 0 in
  let bump a i = a.(i) <- a.(i) + 1 in
  Array.iter
    (fun token ->
      match token with
      | Lz77.Literal c -> bump litlen_freqs (Char.code c)
      | Lz77.Match { length; distance } ->
          let lsym, _, _ = length_code length in
          let dsym, _, _ = distance_code distance in
          bump litlen_freqs lsym;
          bump dist_freqs dsym)
    tokens;
  bump litlen_freqs end_of_block;
  let litlen_lengths = Huffman.lengths_of_freqs litlen_freqs in
  let dist_lengths = Huffman.lengths_of_freqs dist_freqs in
  let litlen_codes = Huffman.canonical_codes litlen_lengths in
  let dist_codes = Huffman.canonical_codes dist_lengths in
  let w = Bitio.Writer.create () in
  Huffman.write_lengths w litlen_lengths;
  Huffman.write_lengths w dist_lengths;
  Array.iter
    (fun token ->
      match token with
      | Lz77.Literal c -> Huffman.write_symbol w litlen_codes (Char.code c)
      | Lz77.Match { length; distance } ->
          let lsym, lbits, lval = length_code length in
          let dsym, dbits, dval = distance_code distance in
          Huffman.write_symbol w litlen_codes lsym;
          if lbits > 0 then Bitio.Writer.add_bits_msb w ~value:lval ~count:lbits;
          Huffman.write_symbol w dist_codes dsym;
          if dbits > 0 then Bitio.Writer.add_bits_msb w ~value:dval ~count:dbits)
    tokens;
  Huffman.write_symbol w litlen_codes end_of_block;
  Bitio.Writer.to_bytes w

let encode_tokens tokens = encode_token_array (Array.of_list tokens)

let decode_tokens_sub_result data ~off ~len =
  let r = Bitio.Reader.create ~start:off ~len data in
  Codec_error.protect ~codec:"deflate"
    ~offset:(fun () -> Bitio.Reader.byte_position r)
  @@ fun () ->
  let litlen_lengths = Huffman.read_lengths r in
  let dist_lengths = Huffman.read_lengths r in
  if Array.length litlen_lengths <> litlen_alphabet
     || Array.length dist_lengths <> dist_alphabet
  then failwith "Deflate.decode_tokens: bad header";
  let litlen = Huffman.decoder_of_lengths litlen_lengths in
  let dist =
    if Array.exists (fun l -> l > 0) dist_lengths then
      Some (Huffman.decoder_of_lengths dist_lengths)
    else None
  in
  let tokens = ref [] in
  let rec loop () =
    let sym = Huffman.read_symbol r litlen in
    if sym = end_of_block then ()
    else if sym < 256 then begin
      tokens := Lz77.Literal (Char.chr sym) :: !tokens;
      loop ()
    end
    else begin
      let lbase, lbits = base_of_length_code sym in
      let length = lbase + Bitio.Reader.read_bits_msb r lbits in
      let decoder =
        match dist with
        | Some d -> d
        | None -> failwith "Deflate.decode_tokens: match without distances"
      in
      let dsym = Huffman.read_symbol r decoder in
      let dbase, dbits = base_of_distance_code dsym in
      let distance = dbase + Bitio.Reader.read_bits_msb r dbits in
      tokens := Lz77.Match { length; distance } :: !tokens;
      loop ()
    end
  in
  loop ();
  List.rev !tokens

let decode_tokens_result data =
  decode_tokens_sub_result data ~off:0 ~len:(Bytes.length data)

let decode_tokens data = Codec_error.unwrap (decode_tokens_result data)

module Obs = Zipchannel_obs.Obs

let m_bytes_in = Obs.Metrics.counter "kernel.deflate.bytes_in"
let m_bytes_out = Obs.Metrics.counter "kernel.deflate.bytes_out"

let compress ?strategy ?max_chain input =
  Obs.with_span "deflate.compress"
    ~attrs:[ ("bytes", string_of_int (Bytes.length input)) ]
  @@ fun () ->
  let out = encode_token_array (Lz77.tokenize_array ?strategy ?max_chain input) in
  Obs.Metrics.add m_bytes_in (Bytes.length input);
  Obs.Metrics.add m_bytes_out (Bytes.length out);
  out

let decompress_sub_result data ~off ~len =
  match decode_tokens_sub_result data ~off ~len with
  | Error e -> Error e
  | Ok tokens -> (
      (* [detokenize] validates match distances against the output built
         so far; a bad distance is corrupt input, not a caller bug. *)
      match Lz77.detokenize tokens with
      | plain -> Ok plain
      | exception Invalid_argument reason ->
          Codec_error.error ~codec:"deflate" reason)

let decompress_result data =
  decompress_sub_result data ~off:0 ~len:(Bytes.length data)

let decompress data = Codec_error.unwrap (decompress_result data)
