open Zipchannel_taint

let head_base = 0x7f43da500000

let location = "/path/to/libz.so.1.2.11!deflate_slow+468"

let window_base = 0x7f43da400000

let hash_mask = Zipchannel_compress.Lz77.hash_mask

let run ?(head_base = head_base) input =
  let e = Engine.create ~name:"zlib" input in
  Engine.stage_input e ~base:window_base;
  let n = Bytes.length input in
  if n >= 3 then begin
    let wide v = Tval.zero_extend ~width:48 v in
    let mask = Tval.const ~width:48 hash_mask in
    let base = Tval.const ~width:48 head_base in
    let window i =
      Engine.load e ~location:"libz!fill_window" ~mnemonic:"movzbl (window,i)"
        ~addr:(Tval.const ~width:48 (window_base + i))
        ~size:1 ()
    in
    (* ins_h is seeded from the first two bytes before the loop. *)
    let update h c =
      let shifted = Tval.shift_left h 5 in
      Engine.log_op e ~location:"libz!UPDATE_HASH" ~mnemonic:"shl $5, ins_h"
        ~operands:[ ("ins_h", shifted) ];
      let wc = wide c in
      let mixed = Tval.logxor shifted wc in
      Engine.log_op e ~location:"libz!UPDATE_HASH" ~mnemonic:"xor c, ins_h"
        ~operands:[ ("ins_h", mixed); ("c", wc) ];
      let masked = Tval.logand mixed mask in
      Engine.log_op e ~location:"libz!UPDATE_HASH" ~mnemonic:"and $0x7fff, ins_h"
        ~operands:[ ("ins_h", masked) ];
      masked
    in
    let h = ref (update (update (Tval.const ~width:48 0) (window 0)) (window 1)) in
    for i = 0 to n - 3 do
      (* INSERT_STRING(s, i): UPDATE_HASH with window[i+2], then the
         tainted-address store head[ins_h] = i. *)
      h := update !h (window (i + 2));
      let rdx = Tval.add base (Tval.shift_left !h 1) in
      Engine.store e ~location ~mnemonic:"data16 mov %ax -> (%rdx)"
        ~index:("rdx", rdx) ~addr:rdx ~size:2
        ~value:(Tval.const ~width:16 (i land 0xffff))
        ()
    done
  end;
  e
