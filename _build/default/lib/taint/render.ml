let hex_bytes_le v =
  let nbytes = max 1 ((Tval.width v + 7) / 8) in
  let nbytes = if Tval.width v > 32 then 8 else nbytes in
  let value = Tval.value v in
  String.concat " "
    (List.init nbytes (fun i -> Printf.sprintf "%02x" ((value lsr (8 * i)) land 0xff)))

let default_bits v =
  let highest =
    List.fold_left (fun acc (i, _) -> max acc i) (-1) (Tval.tainted_bits v)
  in
  max 16 (((highest + 8) / 8) * 8)

let bit_grid ?bits v =
  if not (Tval.is_tainted v) then ""
  else begin
    let bits =
      match bits with
      | Some b -> min b (Tval.width v)
      | None -> min (default_bits v) (Tval.width v)
    in
    (* Collect the tags present in the rendered window, ascending. *)
    let tags = ref Tagset.empty in
    for i = 0 to bits - 1 do
      tags := Tagset.union !tags (Tval.taint v i)
    done;
    let tag_list = Tagset.elements !tags in
    let label_width =
      List.fold_left
        (fun acc tag -> max acc (String.length (string_of_int tag)))
        2 tag_list
    in
    let buf = Buffer.create 256 in
    let cell s = Buffer.add_string buf (Printf.sprintf "%2s|" s) in
    let row_for tag =
      Buffer.add_string buf (Printf.sprintf "%*d: |" label_width tag);
      for i = bits - 1 downto 0 do
        cell (if Tagset.mem tag (Tval.taint v i) then " x" else "  ")
      done;
      Buffer.add_char buf '\n'
    in
    List.iter row_for tag_list;
    (* Footer of bit indices, most significant first. *)
    Buffer.add_string buf (String.make (label_width + 2) ' ');
    Buffer.add_char buf '|';
    for i = bits - 1 downto 0 do
      cell (Printf.sprintf "%2d" i)
    done;
    Buffer.add_char buf '\n';
    Buffer.contents buf
  end

let operand_line ~name v =
  let status = if Tval.is_tainted v then "  (tainted)" else "" in
  let head = Printf.sprintf "%s = %s%s" name (hex_bytes_le v) status in
  let grid = bit_grid v in
  if grid = "" then head else head ^ "\n" ^ grid
