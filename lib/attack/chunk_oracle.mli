(** CRIME/BREACH-style per-chunk length oracle over the frame layer.

    The whole-buffer API hides compressed length behind one number; the
    streaming frame layer exposes it per frame, on the wire (ROADMAP
    open item 1).  This oracle exploits exactly that: the attacker
    prepends a guess to a plaintext that also carries a secret, the
    victim compresses it through {!Zipchannel_compress.Frame}, and the
    attacker reads per-frame [clen]s back.  A correct guess extends an
    LZ77 match into the secret and the frame holding both shrinks —
    byte-at-a-time recovery from [clen] deltas alone.

    The probe is abstract ([bytes -> int list]), so the same recovery
    loop runs in-process ({!local_probe}) or against a live [zc serve]
    daemon over the loopback (the [zc leak oracle] command).

    Smaller frames leak more: the frame containing guess + secret also
    contains everything else that fell into its [frame_size] window, and
    that co-compressed filler is noise on the 1-byte signal.  {!sweep}
    measures this — recovery rate versus frame size — and checks it
    against what the {!Zipchannel_obs_leak.Leak_audit.Estimator} predicts
    from the same probe deltas. *)

(** {1 Probes} *)

type probe = bytes -> int list
(** A probe compresses the given plaintext through the frame layer and
    returns the per-frame compressed payload lengths ([clen]s of every
    data/flush frame, in stream order) — the attacker's observable. *)

val clens_of_stream : bytes -> int list
(** Parse a complete ZCF1 framed stream and return its data/flush frame
    [clen]s in order.  Only headers are inspected; payloads are skipped,
    not decoded.  @raise Invalid_argument on a malformed stream. *)

val local_probe :
  ?jobs:int -> codec:Zipchannel_compress.Frame.codec -> frame_size:int ->
  unit -> probe
(** In-process victim: [Frame.compress] at [frame_size] followed by
    {!clens_of_stream}. *)

(** {1 The victim} *)

module Victim : sig
  type t
  (** A victim document: [secret=<digits>&] plus query-string-like
      filler (lipsum words and numeric parameters), deterministic from
      the seed.  The attacker's guess is reflected in front:
      [plaintext = guess ^ "\n" ^ body]. *)

  val create : ?seed:int -> ?secret_len:int -> ?body_len:int -> unit -> t
  (** Defaults: seed 7, 8 secret digits, 8 KiB body. *)

  val secret : t -> string
  val plaintext : t -> guess:string -> bytes
end

val alphabet : string
(** Candidate alphabet of secret bytes: the ten digits. *)

(** {1 Recovery} *)

type result = {
  frame_size : int;
  secret : string;  (** the first trial's secret *)
  recovered : string;  (** chained recovery of it (attacker's own prefix) *)
  per_byte_correct : int;
      (** positions recovered when probing with the {e true} prefix —
          the per-position oracle accuracy, independent of error
          chaining — summed over all trials *)
  positions : int;  (** total positions probed ([secret_len × trials]) *)
  probes : int;
  per_byte_rate : float;  (** [per_byte_correct / positions] *)
  chained_rate : float;
      (** mean over trials of exact-prefix length / secret length *)
  capacity_bits : float;
      (** Blahut–Arimoto capacity of the observed score-delta channel
          (bucket = candidate-correct?), bits per probe *)
  mi_bits : float;  (** plug-in mutual information of the same channel *)
}

val run :
  ?seed:int -> ?secret_len:int -> ?body_len:int -> ?tries:int ->
  ?trials:int -> frame_size:int -> probe:probe -> unit -> result
(** Byte-at-a-time recovery: for each secret position, probe every
    candidate digit appended to the known prefix — each probe summed
    over [tries] (default 8) attacker padding lengths, which dithers
    deflate's whole-byte rounding until a one-literal saving shows —
    and pick the candidate with the smallest observed length for the
    frame holding guess and secret.  Repeated over [trials] (default 1)
    independent victims derived from [seed].  Score deltas (against the
    position's best score) feed a two-bucket
    {!Zipchannel_obs_leak.Leak_audit.Estimator}, whose capacity estimate
    is reported alongside the measured recovery rate.  Also publishes
    the [leak.chunk.*] Obs metrics. *)

val sweep :
  ?seed:int -> ?secret_len:int -> ?body_len:int -> ?tries:int ->
  ?trials:int -> frame_sizes:int list ->
  mk_probe:(frame_size:int -> probe) -> unit -> result list
(** {!run} once per frame size (same seed, hence the same victims), in
    the given order. *)

val monotone : result list -> bool
(** Given {!sweep} results sorted by ascending [frame_size]: true iff
    measured per-byte recovery is non-increasing as frames grow {e and}
    the capacity estimate ranks the frame sizes consistently with
    recovery (no strict inversion: capacity never strictly increases
    where recovery strictly decreases, and vice versa). *)
