lib/taintchannel/trace_diff.mli: Format
