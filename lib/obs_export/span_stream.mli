(** Reader for the JSONL span streams {!Zipchannel_obs.Obs.Trace.Jsonl}
    emits: one JSON object per span begin/end event, in emission order.
    The offline half of the trace pipeline — the profiler and the OTLP
    trace exporter both start from this event list. *)

val event_of_json : Json.t -> Zipchannel_obs.Obs.Trace.span_event
(** @raise Failure on objects that are not span events. *)

val of_string : string -> Zipchannel_obs.Obs.Trace.span_event list
(** Parse a whole JSONL stream, in order.
    @raise Json.Parse_error @raise Failure *)

val read_file : string -> Zipchannel_obs.Obs.Trace.span_event list

val is_span_stream : Json.t -> bool
(** Does this value look like a span event (an object with an ["ev"]
    member)?  Used to tell trace files from metric snapshots. *)
