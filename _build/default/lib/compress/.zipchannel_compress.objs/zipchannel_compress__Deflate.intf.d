lib/compress/deflate.mli: Lz77
