#!/usr/bin/env python3
"""Regenerate the rfc1951 interop fixtures from the .plain files.

For each <name>.plain this writes, using only the Python standard library:
  <name>.deflate  raw DEFLATE stream            (zlib.compressobj wbits=-15)
  <name>.zlib     RFC 1950 zlib stream          (zlib.compress)
  <name>.gz       RFC 1952 gzip member          (mtime=0, no FNAME, OS=3)

The outputs are deterministic, so the fixtures can be re-created and
diffed at any time.  test/test_rfc1951.ml decodes all three framings with
Rfc1951.inflate / Zlib.decompress / Gzip.decompress and compares against
the .plain bytes.
"""

import glob
import os
import struct
import zlib

HERE = os.path.dirname(os.path.abspath(__file__))


def gzip_bytes(plain: bytes) -> bytes:
    # Hand-rolled member so MTIME is fixed at 0 (gzip.compress embeds the
    # current time on older Pythons).
    c = zlib.compressobj(9, zlib.DEFLATED, -15)
    body = c.compress(plain) + c.flush()
    header = b"\x1f\x8b\x08\x00" + struct.pack("<I", 0) + b"\x00\x03"
    trailer = struct.pack("<II", zlib.crc32(plain), len(plain) & 0xFFFFFFFF)
    return header + body + trailer


def main() -> None:
    for path in sorted(glob.glob(os.path.join(HERE, "*.plain"))):
        base = path[: -len(".plain")]
        with open(path, "rb") as fh:
            plain = fh.read()
        c = zlib.compressobj(9, zlib.DEFLATED, -15)
        with open(base + ".deflate", "wb") as fh:
            fh.write(c.compress(plain) + c.flush())
        with open(base + ".zlib", "wb") as fh:
            fh.write(zlib.compress(plain, 9))
        with open(base + ".gz", "wb") as fh:
            fh.write(gzip_bytes(plain))
        print(os.path.basename(base))


if __name__ == "__main__":
    main()
