(* Prefix doubling over cyclic rotations: after round k every rotation is
   ranked by its first 2^k characters; ranks are refined until all are
   distinct or the window covers the block.  The comparison count is
   returned because it is data-dependent — repetitive input needs more
   refinement rounds — and the fingerprinting attack observes exactly that
   run-time difference.

   Two implementations live here.  [reference_sort_rotations_work] is the
   original tuple-keyed [Array.sort] version, kept as the executable
   specification of both the permutation and the work count.
   [sort_rotations_work] produces bit-identical results without allocating:
   the (rank, rank+k) key pair is packed into a single int, so the
   comparator runs the exact same comparison sequence over immediate ints
   instead of boxing two tuples per call.  [sort_rotations] — which does
   not need the work count — ranks by counting-sort passes and performs no
   comparisons at all. *)

let reference_sort_rotations_work block =
  let n = Bytes.length block in
  if n = 0 then ([||], 0)
  else begin
    let work = ref 0 in
    let rank = Array.init n (fun i -> Char.code (Bytes.get block i)) in
    let perm = Array.init n (fun i -> i) in
    let tmp = Array.make n 0 in
    let k = ref 1 in
    let distinct = ref false in
    while (not !distinct) && !k < n do
      let key i =
        incr work;
        (rank.(i), rank.((i + !k) mod n))
      in
      Array.sort (fun a b -> compare (key a) (key b)) perm;
      (* Re-rank: equal keys share a rank. *)
      tmp.(perm.(0)) <- 0;
      let all_distinct = ref true in
      for j = 1 to n - 1 do
        let prev = perm.(j - 1) and cur = perm.(j) in
        if key prev = key cur then begin
          tmp.(cur) <- tmp.(prev);
          all_distinct := false
        end
        else tmp.(cur) <- j
      done;
      Array.blit tmp 0 rank 0 n;
      distinct := !all_distinct;
      k := !k * 2
    done;
    (* Identical rotations (period divides n): order by start index for
       determinism. *)
    if not !distinct then
      Array.sort
        (fun a b ->
          incr work;
          match compare rank.(a) rank.(b) with 0 -> compare a b | c -> c)
        perm;
    (perm, !work)
  end

(* Ranks stay below n and the initial byte ranks below 256, so a
   (rank, rank') pair packs losslessly into [rank lsl 31 lor rank'] as long
   as both fit in 31 bits; the packed ints order and compare equal exactly
   as the tuples do.  [Intsort.sort_by_key] — the stdlib heapsort with the
   comparator expanded inline — then performs the identical comparison
   sequence — the work counter advances by 2 per comparison (the reference
   evaluates [key] twice per comparison) and by 2 per re-rank step.  The
   final tie-break packs [(rank, index)] the same way with 1 work unit per
   comparison, matching the reference's comparator.

   [sort_rotations_work_sub] is the slice-and-arena entry: it sorts
   [Bytes.sub block off len] without materializing the slice, drawing
   every scratch array (and the returned permutation, whose physical
   length may then exceed [len]) from the arena's slots. *)

module Arena = Zipchannel_buf.Arena
module Intsort = Zipchannel_buf.Intsort

(* Arena int-slot assignments for the whole bzip2 block pipeline live in
   the 0..8 range; see the slot table in DESIGN.md §12.  This module owns
   slots 3 (perm, shared with Block_sort's main sort output) and 4..6. *)
let slot_perm = 3
let slot_rank = 4
let slot_tmp = 5
let slot_keys = 6
let slot_last = 0 (* bytes slot: transform output *)

let sort_rotations_work_sub ?arena block ~off ~len =
  let n = len in
  if n = 0 then ([||], 0)
  else if n >= 1 lsl 31 then
    reference_sort_rotations_work (Bytes.sub block off len)
  else begin
    let ints slot n =
      match arena with
      | Some a -> Arena.ints a ~slot n
      | None -> Array.make n 0
    in
    let work = ref 0 in
    let rank = ints slot_rank n in
    for i = 0 to n - 1 do
      rank.(i) <- Char.code (Bytes.unsafe_get block (off + i))
    done;
    let perm = ints slot_perm n in
    for i = 0 to n - 1 do
      perm.(i) <- i
    done;
    let tmp = ints slot_tmp n in
    let keys = ints slot_keys n in
    let k = ref 1 in
    let distinct = ref false in
    while (not !distinct) && !k < n do
      for i = 0 to n - 1 do
        let j = i + !k in
        let j = if j >= n then j - n else j in
        Array.unsafe_set keys i
          ((Array.unsafe_get rank i lsl 31) lor Array.unsafe_get rank j)
      done;
      Intsort.sort_by_key perm ~len:n ~keys ~work ~per_cmp:2;
      tmp.(perm.(0)) <- 0;
      let all_distinct = ref true in
      for j = 1 to n - 1 do
        let prev = perm.(j - 1) and cur = perm.(j) in
        work := !work + 2;
        if keys.(prev) = keys.(cur) then begin
          tmp.(cur) <- tmp.(prev);
          all_distinct := false
        end
        else tmp.(cur) <- j
      done;
      Array.blit tmp 0 rank 0 n;
      distinct := !all_distinct;
      k := !k * 2
    done;
    if not !distinct then begin
      (* (rank, index) packs like the rank pairs: index < n < 2^31. *)
      for i = 0 to n - 1 do
        Array.unsafe_set keys i ((Array.unsafe_get rank i lsl 31) lor i)
      done;
      Intsort.sort_by_key perm ~len:n ~keys ~work ~per_cmp:1
    end;
    (perm, !work)
  end

let sort_rotations_work block =
  sort_rotations_work_sub block ~off:0 ~len:(Bytes.length block)

(* Comparison-free rotation sort: Manber–Myers prefix doubling where each
   round re-orders by the k-shifted previous order and a stable counting
   sort on the rank — O(n log n), no comparator, no per-element boxing.
   Produces the same permutation as the reference (ties between identical
   rotations broken by start index). *)
let sort_rotations block =
  let n = Bytes.length block in
  if n = 0 then [||]
  else begin
    let perm = Array.make n 0 in
    let rank = Array.make n 0 in
    let next_perm = Array.make n 0 in
    let next_rank = Array.make n 0 in
    let count = Array.make (max 256 n) 0 in
    (* Round 0: counting sort by first byte; dense byte classes. *)
    for i = 0 to n - 1 do
      let c = Char.code (Bytes.unsafe_get block i) in
      count.(c) <- count.(c) + 1
    done;
    let acc = ref 0 in
    for c = 0 to 255 do
      let v = count.(c) in
      count.(c) <- !acc;
      acc := !acc + v
    done;
    for i = 0 to n - 1 do
      let c = Char.code (Bytes.unsafe_get block i) in
      perm.(count.(c)) <- i;
      count.(c) <- count.(c) + 1
    done;
    let classes = ref 1 in
    rank.(perm.(0)) <- 0;
    for i = 1 to n - 1 do
      if
        Bytes.unsafe_get block perm.(i) <> Bytes.unsafe_get block perm.(i - 1)
      then incr classes;
      rank.(perm.(i)) <- !classes - 1
    done;
    let k = ref 1 in
    while !classes < n && !k < n do
      (* Order by the second key of the pair: shifting the current order
         left by k lists rotations sorted by chars [k, 2k). *)
      for i = 0 to n - 1 do
        let v = Array.unsafe_get perm i - !k in
        Array.unsafe_set next_perm i (if v < 0 then v + n else v)
      done;
      (* Stable counting sort by the first key (current rank). *)
      Array.fill count 0 !classes 0;
      for i = 0 to n - 1 do
        let r = Array.unsafe_get rank i in
        Array.unsafe_set count r (Array.unsafe_get count r + 1)
      done;
      let acc = ref 0 in
      for c = 0 to !classes - 1 do
        let v = Array.unsafe_get count c in
        Array.unsafe_set count c !acc;
        acc := !acc + v
      done;
      for i = 0 to n - 1 do
        let v = Array.unsafe_get next_perm i in
        let r = Array.unsafe_get rank v in
        Array.unsafe_set perm (Array.unsafe_get count r) v;
        Array.unsafe_set count r (Array.unsafe_get count r + 1)
      done;
      (* Re-rank by (rank, rank+k) pair equality along the new order. *)
      next_rank.(perm.(0)) <- 0;
      classes := 1;
      for i = 1 to n - 1 do
        let a = Array.unsafe_get perm i and b = Array.unsafe_get perm (i - 1) in
        let a2 = a + !k in
        let a2 = if a2 >= n then a2 - n else a2 in
        let b2 = b + !k in
        let b2 = if b2 >= n then b2 - n else b2 in
        if
          Array.unsafe_get rank a <> Array.unsafe_get rank b
          || Array.unsafe_get rank a2 <> Array.unsafe_get rank b2
        then incr classes;
        Array.unsafe_set next_rank a (!classes - 1)
      done;
      Array.blit next_rank 0 rank 0 n;
      k := !k * 2
    done;
    (* Identical rotations (period divides n): a final stable counting sort
       over ascending start indices orders each class by index. *)
    if !classes < n then begin
      Array.fill count 0 !classes 0;
      for i = 0 to n - 1 do
        count.(rank.(i)) <- count.(rank.(i)) + 1
      done;
      let acc = ref 0 in
      for c = 0 to !classes - 1 do
        let v = count.(c) in
        count.(c) <- !acc;
        acc := !acc + v
      done;
      for i = 0 to n - 1 do
        perm.(count.(rank.(i))) <- i;
        count.(rank.(i)) <- count.(rank.(i)) + 1
      done
    end;
    perm
  end

let check_perm n perm =
  if Array.length perm <> n then invalid_arg "Bwt: permutation length";
  let seen = Array.make (max 1 n) false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n || seen.(i) then invalid_arg "Bwt: not a permutation";
      seen.(i) <- true)
    perm

let transform_with ~perm block =
  let n = Bytes.length block in
  check_perm n perm;
  if n = 0 then (Bytes.create 0, 0)
  else begin
    let last = Bytes.create n in
    let primary = ref (-1) in
    for k = 0 to n - 1 do
      let start = perm.(k) in
      if start = 0 then primary := k;
      Bytes.set last k (Bytes.get block ((start + n - 1) mod n))
    done;
    (last, !primary)
  end

let transform block = transform_with ~perm:(sort_rotations block) block

let transform_with_sub ?arena ~perm block ~off ~len =
  (* Pipeline-internal slice variant: [perm] comes straight from the
     block sorts above (physical length possibly > [len]) and is trusted
     rather than re-validated; the returned last column is the arena's
     bytes slot with logical length [len]. *)
  let n = len in
  if n = 0 then (Bytes.create 0, 0)
  else begin
    let last =
      match arena with
      | Some a -> Arena.bytes a ~slot:slot_last n
      | None -> Bytes.create n
    in
    let primary = ref (-1) in
    for k = 0 to n - 1 do
      let start = Array.unsafe_get perm k in
      if start = 0 then primary := k;
      let p = if start = 0 then n - 1 else start - 1 in
      Bytes.unsafe_set last k (Bytes.get block (off + p))
    done;
    (last, !primary)
  end

let inverse last primary =
  let n = Bytes.length last in
  if n = 0 then Bytes.create 0
  else begin
    if primary < 0 || primary >= n then invalid_arg "Bwt.inverse: index";
    (* LF mapping: T.(i) is the row whose rotation is the left-rotation of
       row i; walking T from the primary row spells the input backwards. *)
    let counts = Array.make 256 0 in
    Bytes.iter (fun c -> counts.(Char.code c) <- counts.(Char.code c) + 1) last;
    let base = Array.make 256 0 in
    let acc = ref 0 in
    for c = 0 to 255 do
      base.(c) <- !acc;
      acc := !acc + counts.(c)
    done;
    let t = Array.make n 0 in
    let seen = Array.make 256 0 in
    for i = 0 to n - 1 do
      let c = Char.code (Bytes.get last i) in
      t.(i) <- base.(c) + seen.(c);
      seen.(c) <- seen.(c) + 1
    done;
    let out = Bytes.create n in
    let idx = ref primary in
    for k = n - 1 downto 0 do
      Bytes.set out k (Bytes.get last !idx);
      idx := t.(!idx)
    done;
    out
  end
