module Metrics = Zipchannel_obs.Obs.Metrics

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let metric_name name = "zipchannel_" ^ sanitize name

let label_name name =
  let s = sanitize name in
  if s = "" then "_"
  else match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s

let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '"' -> Buffer.add_string b "\\\""
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let exposition (s : Metrics.snapshot) =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  List.iter
    (fun (name, v) ->
      let n = metric_name name ^ "_total" in
      line "# HELP %s %s" n (escape_help name);
      line "# TYPE %s counter" n;
      line "%s %d" n v)
    s.counters;
  List.iter
    (fun (name, v) ->
      let n = metric_name name in
      line "# HELP %s %s" n (escape_help name);
      line "# TYPE %s gauge" n;
      line "%s %s" n (num v))
    s.gauges;
  List.iter
    (fun (name, (hs : Metrics.histogram_snapshot)) ->
      let n = metric_name name in
      line "# HELP %s %s" n (escape_help name);
      line "# TYPE %s histogram" n;
      (* Log2 bucket b counts v <= 2^b, so the cumulative count up to
         bucket b is exactly the classic-histogram count for le = 2^b. *)
      let cum = ref 0 in
      List.iter
        (fun (bk, cnt) ->
          cum := !cum + cnt;
          line "%s_bucket{le=\"%d\"} %d" n (1 lsl bk) !cum)
        hs.buckets;
      line "%s_bucket{le=\"+Inf\"} %d" n hs.count;
      line "%s_sum %d" n hs.sum;
      line "%s_count %d" n hs.count)
    s.histograms;
  Buffer.contents b
