(** The Bzip2 compression pipeline: RLE1 → block split → BWT (budgeted
    block sort) → MTF → RLE2 → canonical Huffman.

    Every stage is the OCaml counterpart of the bzip2-1.0.6 stage of the
    same name; the container format is this library's own (bzip2's bit-
    exact file format is out of scope, the algorithms are not).  The paper
    uses 10,000-byte blocks when describing the sorting control flow
    (Section VI); that is the default here. *)

type block_info = {
  index : int;  (** block number, 0-based *)
  length : int;  (** bytes of post-RLE1 data in the block *)
  path : Block_sort.path;  (** which sort functions ran, and for how long *)
}

val default_block_size : int
(** 10,000 bytes, per the paper's description. *)

val max_block_size : int
(** 2^24 bytes — the largest post-RLE1 block length the format
    supports.  {!compress} rejects larger [block_size] values;
    {!decompress} rejects headers declaring more (they would let a
    ~50-byte input demand a 4 GiB allocation). *)

val compress :
  ?block_size:int -> ?budget_factor:int -> ?jobs:int -> bytes -> bytes
(** [jobs] (default 1) compresses blocks on that many domains; the output
    bytes — and the per-block sort paths — are identical for every value,
    blocks being independent. *)

val compress_with_info :
  ?block_size:int ->
  ?budget_factor:int ->
  ?jobs:int ->
  bytes ->
  bytes * block_info list
(** Also reports the per-block sorting control flow — the observable the
    fingerprinting attack of Section VI classifies. *)

val compress_ref : ?block_size:int -> ?budget_factor:int -> bytes -> bytes
(** Reference implementation of {!compress}: sequential, one whole-block
    [Bytes.sub] per block, fresh allocations in every stage.  Slower than
    {!compress} and not used by production code; retained so differential
    tests can pin the zero-copy arena pipeline to byte-identical
    output. *)

val decompress_result : bytes -> (bytes, Codec_error.t) result
(** Safe decoder: truncated or corrupt streams, oversized block headers
    and zero-run bombs are an [Error]; no exception escapes this
    boundary. *)

val decompress : bytes -> bytes
(** [Codec_error.unwrap] of {!decompress_result}.
    @raise Failure on malformed input. *)
