(* Shared cmdliner plumbing for the observability flags and the --jobs
   guard, linked into all three executables. *)

open Cmdliner
module Obs = Zipchannel.Obs

let setup metrics trace progress =
  (match metrics with
  | None -> ()
  | Some dest ->
      Obs.set_enabled true;
      at_exit (fun () ->
          let snap = Obs.Metrics.snapshot () in
          match dest with
          | "-" ->
              Format.eprintf "-- metrics --@.%a@?" Obs.Metrics.pp_snapshot snap
          | path ->
              let oc = open_out path in
              output_string oc (Obs.Metrics.snapshot_to_json snap);
              output_char oc '\n';
              close_out oc));
  (match trace with
  | None -> ()
  | Some "-" -> Obs.Trace.set_sink Obs.Trace.Stderr
  | Some path ->
      let oc = open_out path in
      Obs.Trace.set_sink (Obs.Trace.Jsonl oc);
      at_exit (fun () ->
          Obs.Trace.set_sink Obs.Trace.Null;
          close_out oc));
  if progress then Obs.Progress.set_enabled true

(* Evaluates to () for the command term; wiring happens as a side effect
   while cmdliner evaluates the arguments, i.e. before the command body
   runs. *)
let flags =
  let metrics =
    let doc =
      "Record metrics.  With no $(docv), print a human-readable snapshot \
       to stderr on exit; with $(docv), write a JSON snapshot there \
       ($(b,-) for stderr)."
    in
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "metrics" ] ~docv:"PATH" ~doc)
  in
  let trace =
    let doc =
      "Emit a span trace: one JSON object per span begin/end event to \
       $(docv), or human-readable lines to stderr with $(b,-)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"PATH" ~doc)
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:"Print periodic one-line progress reports to stderr.")
  in
  Term.(const setup $ metrics $ trace $ progress)

let jobs_conv =
  let parse s =
    match int_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "expected a job count, got %S" s))
    | Some j -> (
        match Zipchannel.Parallel.Pool.normalize_jobs j with
        | Ok j -> Ok j
        | Error msg -> Error (`Msg msg))
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_arg ~doc = Arg.(value & opt jobs_conv 1 & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)
