(** Reusable scratch buffers for the block pipelines.

    A table of numbered slots, each holding one monotonically-growing
    buffer: asking for "slot [k], at least [n] elements" returns the
    same buffer on every block, reallocated (to the next power of two)
    only when a block outgrows it.  Contents beyond what the caller
    last wrote are stale — consumers must carry explicit lengths.

    Ownership rules: an arena has exactly one user at a time; a stage
    may hold several slots of the same arena simultaneously but two
    concurrent pipelines must use two arenas.  {!with_arena} enforces
    this per domain, so code running under the [lib/parallel] pool gets
    one arena per worker and reuses it across the blocks it claims. *)

type t

val create : unit -> t

val bytes : t -> slot:int -> int -> bytes
(** [bytes t ~slot n] is slot [slot]'s byte buffer, grown to at least
    [n] bytes.  The suffix past the caller's own writes is garbage. *)

val ints : t -> slot:int -> int -> int array

val big : t -> slot:int -> int -> Bigstring.t

val with_arena : (t -> 'a) -> 'a
(** Run [f] with a per-domain arena taken from a domain-local free
    list, returning it afterwards (also on exceptions).  Nested calls
    get distinct arenas; distinct domains never share one. *)
