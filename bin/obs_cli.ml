(* Shared cmdliner plumbing for the observability flags and the --jobs
   guard, linked into all three executables. *)

open Cmdliner
module Obs = Zipchannel.Obs

let setup metrics trace trace_otlp progress =
  (match metrics with
  | None -> ()
  | Some dest ->
      Obs.set_enabled true;
      at_exit (fun () ->
          let snap = Obs.Metrics.snapshot () in
          match dest with
          | "-" ->
              Format.eprintf "-- metrics --@.%a@?" Obs.Metrics.pp_snapshot snap
          | path ->
              Zipchannel.Obs_export.Sink.atomic_write ~path
                (Obs.Metrics.snapshot_to_json snap ^ "\n")));
  (* --trace and --trace-otlp compose: with both, one Custom sink feeds
     the OTLP collector and tees the --trace output per event. *)
  (match (trace, trace_otlp) with
  | None, None -> ()
  | Some "-", None -> Obs.Trace.set_sink Obs.Trace.Stderr
  | Some path, None ->
      let oc = open_out path in
      Obs.Trace.set_sink (Obs.Trace.Jsonl oc);
      at_exit (fun () ->
          Obs.Trace.set_sink Obs.Trace.Null;
          close_out oc)
  | trace, Some otlp_path ->
      let sink, drain = Zipchannel.Obs_export.Otlp.collector () in
      let collect =
        match sink with Obs.Trace.Custom f -> f | _ -> fun _ -> ()
      in
      let tee, close_tee =
        match trace with
        | None -> ((fun _ -> ()), fun () -> ())
        | Some "-" ->
            ( (fun ev ->
                match Obs.Trace.stderr_line_of_event ev with
                | Some line ->
                    output_string stderr line;
                    output_char stderr '\n';
                    flush stderr
                | None -> ()),
              fun () -> () )
        | Some path ->
            let oc = open_out path in
            ( (fun ev ->
                output_string oc (Obs.Trace.jsonl_of_event ev);
                output_char oc '\n';
                flush oc),
              fun () -> close_out oc )
      in
      Obs.Trace.set_sink
        (Obs.Trace.Custom
           (fun ev ->
             collect ev;
             tee ev));
      at_exit (fun () ->
          Obs.Trace.set_sink Obs.Trace.Null;
          close_tee ();
          Zipchannel.Obs_export.Sink.atomic_write ~path:otlp_path
            (Zipchannel.Obs_export.Json.to_string (drain ()) ^ "\n")));
  if progress then begin
    Obs.Progress.set_enabled true;
    (* ANSI line rewriting only on an interactive stderr that hasn't
       opted out; campaign logs and piped runs get plain greppable
       lines. *)
    let no_color =
      match Sys.getenv_opt "NO_COLOR" with Some "" | None -> false | Some _ -> true
    in
    if (not no_color) && Unix.isatty Unix.stderr then
      Obs.Progress.set_style Obs.Progress.Ansi
    else Obs.Progress.set_style Obs.Progress.Plain
  end

(* Evaluates to () for the command term; wiring happens as a side effect
   while cmdliner evaluates the arguments, i.e. before the command body
   runs. *)
let flags =
  let metrics =
    let doc =
      "Record metrics.  With no $(docv), print a human-readable snapshot \
       to stderr on exit; with $(docv), write a JSON snapshot there \
       ($(b,-) for stderr)."
    in
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "metrics" ] ~docv:"PATH" ~doc)
  in
  let trace =
    let doc =
      "Emit a span trace: one JSON object per span begin/end event to \
       $(docv), or human-readable lines to stderr with $(b,-)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"PATH" ~doc)
  in
  let trace_otlp =
    let doc =
      "Collect the span trace in memory and write it as an OTLP/JSON \
       ExportTraceServiceRequest to $(docv) on exit.  Composes with \
       $(b,--trace): both outputs are written."
    in
    Arg.(
      value & opt (some string) None & info [ "trace-otlp" ] ~docv:"PATH" ~doc)
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:"Print periodic one-line progress reports to stderr.")
  in
  Term.(const setup $ metrics $ trace $ trace_otlp $ progress)

let jobs_conv =
  let parse s =
    match int_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "expected a job count, got %S" s))
    | Some j -> (
        match Zipchannel.Parallel.Pool.normalize_jobs j with
        | Ok j -> Ok j
        | Error msg -> Error (`Msg msg))
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_arg ~doc = Arg.(value & opt jobs_conv 1 & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)
