(* Recover lowercase text from the Zlib hash-table gadget's cache trace
   (paper Section IV-B): the attacker sees only line-granular addresses of
   head[ins_h] stores, yet reconstructs the plaintext.

     dune exec examples/recover_text.exe *)

open Zipchannel

let () =
  let ppf = Format.std_formatter in
  let secret = Bytes.of_string "attackatdawnbringbothkeysandthetreasuremaps" in
  let head_base = Taintchannel.Zlib_gadget.head_base in
  (* The victim compresses; each INSERT_STRING dereferences
     head + ins_h*2, and the cache channel reveals the line address. *)
  let observed =
    Array.map
      (fun ins_h -> Attack.Recovery.zlib_observe ~head_base ~ins_h)
      (Compress.Lz77.hash_head_trace secret)
  in
  Format.fprintf ppf "victim inserted %d hash-table entries@."
    (Array.length observed);
  (* Unconditional leak: 2 bits of every byte. *)
  let bits = Attack.Recovery.zlib_direct_bits ~head_base observed in
  Format.fprintf ppf "direct 2-bit leak of the first bytes: %s ...@."
    (String.concat " "
       (List.map string_of_int (Array.to_list (Array.sub bits 0 12))));
  (* With the lowercase-ASCII assumption, the full text comes back. *)
  let recovered =
    Attack.Recovery.zlib_recover_lowercase ~head_base
      ~n:(Bytes.length secret) observed
  in
  Format.fprintf ppf "recovered: %S@." (Bytes.to_string recovered);
  Format.fprintf ppf "byte accuracy: %.1f%% (the final byte never reaches the channel)@."
    (100.0 *. Util.Stats.fraction_equal recovered secret)
