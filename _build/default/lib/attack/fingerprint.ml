open Zipchannel_util
module Cache = Zipchannel_cache.Cache
module Timing = Zipchannel_cache.Timing
module Flush_reload = Zipchannel_cache.Flush_reload
module Block_sort = Zipchannel_compress.Block_sort
module Bzip2 = Zipchannel_compress.Bzip2

type config = {
  samples : int;
  work_per_sample : int;
  bins : int;
  block_size : int;
  budget_factor : int;
  timing : Timing.t;
  shared_lib_noise : float;
}

let default_config =
  {
    samples = 2500;
    work_per_sample = 10_000;
    bins = 100;
    block_size = Bzip2.default_block_size;
    budget_factor = Block_sort.default_budget_factor;
    timing = Timing.default;
    shared_lib_noise = 0.002;
  }

let mainsort_addr = 0x7f944c470000

let fallbacksort_addr = 0x7f944c478000

(* Flatten the per-block sort paths into one timeline of (function, work)
   segments — the execution the attacker samples. *)
let timeline ?(config = default_config) input =
  let _, infos =
    Bzip2.compress_with_info ~block_size:config.block_size
      ~budget_factor:config.budget_factor input
  in
  List.concat_map
    (fun info -> info.Bzip2.path.Block_sort.segments)
    infos

let collect_segments ?(config = default_config) ~prng segs =
  let segments = ref segs in
  let remaining_in_segment = ref 0 in
  let current_func = ref None in
  let advance_to_next_segment () =
    match !segments with
    | [] ->
        current_func := None;
        remaining_in_segment := 0
    | seg :: rest ->
        segments := rest;
        current_func := Some seg.Block_sort.func;
        remaining_in_segment := max 1 seg.Block_sort.work
  in
  advance_to_next_segment ();
  let cache = Cache.create Cache.default_config in
  let fr = Flush_reload.create ~timing:config.timing ~cache ~prng () in
  Flush_reload.flush fr mainsort_addr;
  Flush_reload.flush fr fallbacksort_addr;
  let main_trace = Array.make config.samples false in
  let fallback_trace = Array.make config.samples false in
  for round = 0 to config.samples - 1 do
    (* The victim runs for one sampling window, touching the entry line of
       whichever sort function is executing. *)
    let budget = ref config.work_per_sample in
    while !budget > 0 && !current_func <> None do
      let spend = min !budget !remaining_in_segment in
      (match !current_func with
      | Some Block_sort.Main_sort ->
          ignore (Cache.access cache ~owner:Cache.Victim mainsort_addr)
      | Some Block_sort.Fallback_sort ->
          ignore (Cache.access cache ~owner:Cache.Victim fallbacksort_addr)
      | None -> ());
      budget := !budget - spend;
      remaining_in_segment := !remaining_in_segment - spend;
      if !remaining_in_segment <= 0 then advance_to_next_segment ()
    done;
    (* Unrelated users of the shared library occasionally warm the lines. *)
    if Prng.float prng < config.shared_lib_noise then
      ignore (Cache.access cache ~owner:Cache.Background mainsort_addr);
    if Prng.float prng < config.shared_lib_noise then
      ignore (Cache.access cache ~owner:Cache.Background fallbacksort_addr);
    main_trace.(round) <- Flush_reload.round fr mainsort_addr;
    fallback_trace.(round) <- Flush_reload.round fr fallbacksort_addr
  done;
  (main_trace, fallback_trace)

let collect ?(config = default_config) ~prng input =
  collect_segments ~config ~prng (timeline ~config input)

let features ?(config = default_config) (main_trace, fallback_trace) =
  let any = Array.exists (fun b -> b) in
  if (not (any main_trace)) && not (any fallback_trace) then
    (* The paper's timeout encoding: a tensor filled with the value 2. *)
    Array.make (2 * config.bins) 2.0
  else
    Array.append
      (Zipchannel_classifier.Dataset.downsample ~bins:config.bins main_trace)
      (Zipchannel_classifier.Dataset.downsample ~bins:config.bins fallback_trace)

let collect_features ?(config = default_config) ~prng input =
  features ~config (collect ~config ~prng input)
