open Zipchannel_taint
module Lz4 = Zipchannel_compress.Lz4

let table_base = 0x7f51c0000000

let location_load = "/path/to/liblz4.so.1.9.4!LZ4_compress_generic+312"
let location_store = "/path/to/liblz4.so.1.9.4!LZ4_compress_generic+327"
let location = location_store

let src_base = 0x7f51bf000000

(* The multiplier's set bits, least significant first: the imul is modeled
   as the shift-add expansion so taint propagates through Tval's per-bit
   add rule exactly once per partial product. *)
let mult_bits =
  let rec bits k c = if c = 0 then [] else if c land 1 = 1 then k :: bits (k + 1) (c lsr 1) else bits (k + 1) (c lsr 1) in
  bits 0 Lz4.hash_const

let run ?(table_base = table_base) input =
  let e = Engine.create ~name:"lz4" input in
  Engine.stage_input e ~base:src_base;
  let n = Bytes.length input in
  if n >= Lz4.min_match then begin
    let base = Tval.const ~width:48 table_base in
    for i = 0 to n - Lz4.min_match do
      (* LZ4_read32(p): four staged input bytes assembled little-endian. *)
      let byte k =
        Tval.zero_extend ~width:48
          (Engine.load e ~location:"liblz4!LZ4_read32"
             ~mnemonic:"movzbl (src,i)"
             ~addr:(Tval.const ~width:48 (src_base + i + k))
             ~size:1 ())
      in
      let group =
        Tval.logor (byte 0)
          (Tval.logor
             (Tval.shift_left (byte 1) 8)
             (Tval.logor
                (Tval.shift_left (byte 2) 16)
                (Tval.shift_left (byte 3) 24)))
      in
      Engine.log_op e ~location:"liblz4!LZ4_read32" ~mnemonic:"mov (src) -> %eax"
        ~operands:[ ("eax", group) ];
      (* LZ4_hash4: imul with the Knuth constant (shift-add expansion),
         keep 32 bits, take the top hash_bits. *)
      let product =
        List.fold_left
          (fun acc k -> Tval.add acc (Tval.shift_left group k))
          (Tval.const ~width:48 0)
          mult_bits
      in
      Engine.log_op e ~location:"liblz4!LZ4_hash4"
        ~mnemonic:"imul $0x9e3779b1, %eax"
        ~operands:[ ("eax", product) ];
      let h =
        Tval.shift_right_logical
          (Tval.truncate ~width:32 product)
          (32 - Lz4.hash_bits)
      in
      Engine.log_op e ~location:"liblz4!LZ4_hash4" ~mnemonic:"shr $20, %eax"
        ~operands:[ ("eax", h) ];
      (* The table probe: read the candidate position, then write the
         current one — both through an address derived from raw input
         bytes (4-byte entries, so the index is scaled by 4). *)
      let addr = Tval.add base (Tval.shift_left (Tval.zero_extend ~width:48 h) 2) in
      ignore
        (Engine.load e ~location:location_load
           ~mnemonic:"mov (%rbp,%rax,4) -> %ecx" ~index:("rax", h) ~addr
           ~size:4 ());
      Engine.store e ~location:location_store
        ~mnemonic:"mov %esi -> (%rbp,%rax,4)" ~index:("rax", h) ~addr ~size:4
        ~value:(Tval.const ~width:32 i) ()
    done
  end;
  e
