open Zipchannel_util
module Cache = Zipchannel_cache.Cache
module Page_table = Zipchannel_sgx.Page_table
module Enclave = Zipchannel_sgx.Enclave
module Event = Zipchannel_trace.Event
module Lzw = Zipchannel_compress.Lzw

type result = {
  recovered : bytes;
  byte_accuracy : float;
  bit_accuracy : float;
  lookups : int;
  lost_readings : int;
  faults : int;
  frame_remaps : int;
}

let htab_base = 0x720000000000

let input_base = 0x720010000000

let htab_bytes = 8 * (1 lsl Lzw.htab_bits)

let program input =
  let n = Bytes.length input in
  let events = ref [] in
  let emit e = events := e :: !events in
  if n > 0 then begin
    emit (Event.read ~label:"input[0]" ~addr:input_base ~size:1 ());
    let st = Lzw.Stepper.create ~first:(Char.code (Bytes.get input 0)) in
    for i = 1 to n - 1 do
      emit (Event.read ~label:"input[i]" ~addr:(input_base + i) ~size:1 ());
      let probes, emitted = Lzw.Stepper.feed st (Char.code (Bytes.get input i)) in
      List.iter
        (fun p ->
          emit
            (Event.read ~label:"htab[hp]"
               ~addr:(htab_base + (8 * p.Lzw.hp))
               ~size:8 ()))
        probes;
      (* A miss inserts into the last probed slot. *)
      match emitted with
      | Some _ ->
          let last = List.nth probes (List.length probes - 1) in
          emit
            (Event.write ~label:"htab insert"
               ~addr:(htab_base + (8 * last.Lzw.hp))
               ~size:8 ())
      | None -> ()
    done
  end;
  Array.of_list (List.rev !events)

module Obs = Zipchannel_obs.Obs

let m_bytes = Obs.Metrics.counter "sgx.lzw.bytes"
let m_faults = Obs.Metrics.counter "sgx.lzw.faults"
let m_lost = Obs.Metrics.counter "sgx.lzw.lost_readings"

let run ?(config = Attack_config.default) input =
  Obs.with_span "sgx.lzw_attack"
    ~attrs:[ ("input_bytes", string_of_int (Bytes.length input)) ]
  @@ fun () ->
  let n = Bytes.length input in
  let prng = Prng.create ~seed:config.Attack_config.seed () in
  let cache = Cache.create config.Attack_config.cache_config in
  Page_channel.setup_cat ~config cache;
  let page_table = Page_table.create () in
  let enclave =
    Enclave.create ~cos:0 ~program:(program input) ~page_table ~cache ()
  in
  let channel = Page_channel.create ~config ~cache ~page_table ~prng in
  let faults = ref 0 in
  let expect_fault () =
    match Enclave.run_to_fault enclave with
    | Enclave.Fault f ->
        incr faults;
        Some f
    | Enclave.Done -> None
    | Enclave.Executed -> assert false
  in
  let protect_input () =
    Page_table.protect_range page_table ~addr:input_base ~size:(max 1 n)
  in
  let unprotect_input () =
    Page_table.unprotect_range page_table ~addr:input_base ~size:(max 1 n)
  in
  let protect_htab () =
    Page_table.protect_range page_table ~addr:htab_base ~size:htab_bytes
  in
  let unprotect_htab () =
    Page_table.unprotect_range page_table ~addr:htab_base ~size:htab_bytes
  in
  (* Collection: one candidate set of line-masked addresses per lookup;
     recovery runs offline over the 2^3 first-byte hypotheses
     (Section IV-C), which also repairs the mirror when the first byte
     recurs in the input. *)
  let observations = Array.make (max 1 (n - 1)) [] in
  let lookups = ref 0 in
  let progress =
    Obs.Progress.create ~total:(max 0 (n - 1)) ~label:"lzw-sgx-attack" ()
  in
  if n > 1 then begin
    protect_input ();
    protect_htab ();
    (* The very first fault is the input[0] read. *)
    assert (expect_fault () <> None);
    let finished = ref false in
    let k = ref 0 in
    while (not !finished) && !k < n - 1 do
      (* At an input fault, htab revoked: release the input buffer and run
         into the first probe of the next lookup. *)
      Noise.on_transition (Page_channel.noise channel);
      unprotect_input ();
      (match expect_fault () with
      | Some f ->
          let vpage = Page_table.vpage_of f.Enclave.page_addr in
          incr lookups;
          Page_channel.prime_page channel ~vpage;
          (* Let the probes (and a possible insert) run; regain control at
             the next input read. *)
          Noise.on_transition (Page_channel.noise channel);
          protect_input ();
          unprotect_htab ();
          (match expect_fault () with Some _ -> () | None -> finished := true);
          if config.Attack_config.background_noise then
            Noise.background (Page_channel.noise channel) ~cos:1;
          observations.(!k) <-
            List.map
              (fun line -> (vpage lsl Page_table.page_bits) lor (line lsl 6))
              (Page_channel.probe_page channel ~vpage);
          incr k;
          Obs.Progress.step progress;
          protect_htab ()
      | None -> finished := true)
    done
  end;
  Obs.Progress.finish progress;
  let recovered =
    if n = 0 then Bytes.empty
    else if n = 1 then Bytes.make 1 '\000'
    else Recovery.lzw_recover_candidates_auto ~htab_base observations
  in
  let lost =
    if n <= 1 then 0
    else Array.fold_left (fun a o -> if o = [] then a + 1 else a) 0 observations
  in
  Obs.Metrics.add m_bytes n;
  Obs.Metrics.add m_faults !faults;
  Obs.Metrics.add m_lost lost;
  Page_channel.observe_metrics channel;
  {
    recovered;
    byte_accuracy = Stats.fraction_equal recovered input;
    bit_accuracy = Stats.bit_accuracy recovered input;
    lookups = !lookups;
    lost_readings = lost;
    faults = !faults;
    frame_remaps = Page_channel.frame_remaps channel;
  }
