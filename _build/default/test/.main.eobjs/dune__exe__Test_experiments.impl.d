test/test_experiments.ml: Alcotest Format List Zipchannel
