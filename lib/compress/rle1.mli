(** Bzip2's first-stage run-length encoding.

    Runs of 4 to 255 equal bytes are emitted as the first four bytes
    followed by a count byte holding the number of additional repetitions
    (0–251), exactly as bzip2 applies before block sorting.  The paper
    treats RLE1 output as "the input" to the BWT stage; so do we. *)

val encode : bytes -> bytes

val decode_result : bytes -> (bytes, Codec_error.t) result
(** Safe decoder: a truncated run is an [Error] at its offset. *)

val decode : bytes -> bytes
(** @raise Failure on a truncated run. *)
