open Zipchannel_util
open Zipchannel_cache

let small () = Cache.create Cache.small_config

let test_line_and_set_mapping () =
  let c = small () in
  Alcotest.(check int) "line drops offset" 1 (Cache.line_of c 64);
  Alcotest.(check int) "same line same set" (Cache.set_index c 64)
    (Cache.set_index c 127);
  Alcotest.(check int) "64 sets" 64 (Cache.n_sets c);
  (* With one slice, sets wrap every sets_per_slice lines. *)
  Alcotest.(check int) "set wraps" (Cache.set_index c 0)
    (Cache.set_index c (64 * 64))

let test_hit_after_fill () =
  let c = small () in
  Alcotest.(check bool) "cold miss" false (Cache.access c ~owner:Victim 0x1000);
  Alcotest.(check bool) "warm hit" true (Cache.access c ~owner:Victim 0x1000);
  Alcotest.(check bool) "observer view" true (Cache.is_cached c 0x1000)

let test_lru_eviction () =
  let c = small () in
  (* 4 ways: fill 4 lines of one set, then a 5th evicts the oldest. *)
  let addr k = k * 64 * 64 in
  for k = 0 to 3 do
    ignore (Cache.access c ~owner:Attacker (addr k))
  done;
  (* Touch line 0 so line 1 becomes LRU. *)
  ignore (Cache.access c ~owner:Attacker (addr 0));
  ignore (Cache.access c ~owner:Victim (addr 4));
  Alcotest.(check bool) "line 0 kept" true (Cache.is_cached c (addr 0));
  Alcotest.(check bool) "line 1 evicted" false (Cache.is_cached c (addr 1));
  Alcotest.(check bool) "line 4 present" true (Cache.is_cached c (addr 4))

let test_flush () =
  let c = small () in
  ignore (Cache.access c ~owner:Victim 0x2000);
  Cache.flush c 0x2000;
  Alcotest.(check bool) "flushed" false (Cache.is_cached c 0x2000);
  (* Flushing an absent line is a no-op. *)
  Cache.flush c 0x4000

let test_cat_restricts_allocation () =
  let c = small () in
  Cache.set_cat_mask c ~cos:0 ~mask:0b0001;
  Cache.set_cat_mask c ~cos:1 ~mask:0b1110;
  let addr k = k * 64 * 64 in
  (* cos 0 may only use way 0: two fills thrash each other. *)
  ignore (Cache.access c ~cos:0 ~owner:Attacker (addr 0));
  ignore (Cache.access c ~cos:0 ~owner:Attacker (addr 1));
  Alcotest.(check bool) "first evicted by second" false (Cache.is_cached c (addr 0));
  (* cos 1 fills cannot touch way 0's occupant. *)
  ignore (Cache.access c ~cos:0 ~owner:Attacker (addr 2));
  for k = 3 to 8 do
    ignore (Cache.access c ~cos:1 ~owner:Background (addr k))
  done;
  Alcotest.(check bool) "cos0 line survives cos1 storm" true
    (Cache.is_cached c (addr 2))

let test_cat_mask_validation () =
  let c = small () in
  Alcotest.check_raises "empty mask" (Invalid_argument "Cache.set_cat_mask: mask")
    (fun () -> Cache.set_cat_mask c ~cos:0 ~mask:0);
  Alcotest.check_raises "too wide" (Invalid_argument "Cache.set_cat_mask: mask")
    (fun () -> Cache.set_cat_mask c ~cos:0 ~mask:0x10);
  Alcotest.check_raises "bad cos" (Invalid_argument "Cache.set_cat_mask: cos")
    (fun () -> Cache.set_cat_mask c ~cos:9 ~mask:1)

let test_slice_hash_balance () =
  (* The XOR slice hash should spread lines across slices reasonably. *)
  let c = Cache.create Cache.default_config in
  let counts = Array.make 4 0 in
  for line = 0 to 9999 do
    let s = Cache.slice_of c (line * 64) in
    counts.(s) <- counts.(s) + 1
  done;
  Array.iter
    (fun n -> Alcotest.(check bool) "roughly balanced" true (n > 1800 && n < 3200))
    counts

let test_addrs_for_set () =
  let c = Cache.create Cache.default_config in
  let set = 1234 in
  let addrs = Cache.addrs_for_set c ~set ~count:8 in
  Array.iter
    (fun a -> Alcotest.(check int) "maps to set" set (Cache.set_index c a))
    addrs;
  let distinct = List.sort_uniq compare (Array.to_list addrs) in
  Alcotest.(check int) "distinct" 8 (List.length distinct);
  Alcotest.(check int) "addr_for_set agrees" addrs.(3)
    (Cache.addr_for_set c ~set ~seq:3)

let test_owner_in_set () =
  let c = small () in
  ignore (Cache.access c ~owner:Victim 0x0);
  ignore (Cache.access c ~owner:Attacker (64 * 64));
  let set = Cache.set_index c 0x0 in
  Alcotest.(check int) "one victim line" 1 (Cache.owner_in_set c ~set Victim);
  Alcotest.(check int) "one attacker line" 1 (Cache.owner_in_set c ~set Attacker);
  Alcotest.(check int) "no system line" 0 (Cache.owner_in_set c ~set System)

let test_timing_separation () =
  let prng = Prng.create ~seed:1 () in
  let t = Timing.default in
  let wrong = ref 0 in
  for _ = 1 to 10_000 do
    if not (Timing.measure t prng ~hit:true) then incr wrong;
    if Timing.measure t prng ~hit:false then incr wrong
  done;
  (* Outliers make a small, bounded error rate. *)
  Alcotest.(check bool) "error rate under 2%" true (!wrong < 400)

let test_timing_noiseless_is_exact () =
  let prng = Prng.create ~seed:2 () in
  let t = Timing.noiseless in
  for _ = 1 to 100 do
    Alcotest.(check bool) "hit" true (Timing.measure t prng ~hit:true);
    Alcotest.(check bool) "miss" false (Timing.measure t prng ~hit:false)
  done

let test_flush_reload_detects_victim () =
  let cache = small () in
  let prng = Prng.create ~seed:3 () in
  let fr = Flush_reload.create ~timing:Timing.noiseless ~cache ~prng () in
  let addr = 0x7000 in
  Flush_reload.flush fr addr;
  Alcotest.(check bool) "no access -> miss" false (Flush_reload.round fr addr);
  ignore (Cache.access cache ~owner:Victim addr);
  Alcotest.(check bool) "victim access -> hit" true (Flush_reload.round fr addr)

let test_prime_probe_detects_victim () =
  let cache = small () in
  let prng = Prng.create ~seed:4 () in
  let pp = Prime_probe.create ~timing:Timing.noiseless ~cache ~prng () in
  let victim_addr = 0x9040 in
  let set = Cache.set_index cache victim_addr in
  Prime_probe.prime pp ~set;
  Alcotest.(check int) "quiet probe" 0 (Prime_probe.probe pp ~set);
  Prime_probe.prime pp ~set;
  ignore (Cache.access cache ~owner:Victim victim_addr);
  Alcotest.(check bool) "victim detected" true (Prime_probe.probe pp ~set > 0)

let test_prime_probe_respects_cat () =
  let cache = small () in
  Cache.set_cat_mask cache ~cos:0 ~mask:0b0001;
  let prng = Prng.create ~seed:5 () in
  let pp = Prime_probe.create ~timing:Timing.noiseless ~cos:0 ~cache ~prng () in
  let set = 7 in
  Prime_probe.prime pp ~set;
  (* Single way: exactly one attacker line lives in the set. *)
  Alcotest.(check int) "one line primed" 1 (Cache.owner_in_set cache ~set Attacker)

let test_random_replacement_policy () =
  let cfg = { Cache.small_config with Cache.policy = Cache.Random_replacement } in
  let c = Cache.create cfg in
  let addr k = k * 64 * 64 in
  (* Invalid ways are always consumed first: four fills keep all four. *)
  for k = 0 to 3 do
    ignore (Cache.access c ~owner:Attacker (addr k))
  done;
  for k = 0 to 3 do
    Alcotest.(check bool) "resident after warmup" true (Cache.is_cached c (addr k))
  done;
  (* Further fills evict exactly one resident line each. *)
  ignore (Cache.access c ~owner:Victim (addr 4));
  let resident = ref 0 in
  for k = 0 to 4 do
    if Cache.is_cached c (addr k) then incr resident
  done;
  Alcotest.(check int) "still exactly 4 lines" 4 !resident

let test_random_replacement_respects_cat () =
  let cfg = { Cache.small_config with Cache.policy = Cache.Random_replacement } in
  let c = Cache.create cfg in
  Cache.set_cat_mask c ~cos:0 ~mask:0b0001;
  Cache.set_cat_mask c ~cos:1 ~mask:0b1110;
  let addr k = k * 64 * 64 in
  (* The attacker's line is pinned into way 0 by its class of service;
     random-replacement fills of cos 1 may pick any way of their mask but
     never way 0. *)
  ignore (Cache.access c ~cos:0 ~owner:Attacker (addr 0));
  for k = 1 to 50 do
    ignore (Cache.access c ~cos:1 ~owner:Background (addr k))
  done;
  Alcotest.(check bool) "cos1 random fills never touch way 0" true
    (Cache.is_cached c (addr 0))

let qcheck_set_index_in_range =
  QCheck.Test.make ~name:"set_index within bounds" ~count:500
    QCheck.(int_bound 0x3fffffff)
    (fun addr ->
      let c = Cache.create Cache.default_config in
      let s = Cache.set_index c addr in
      s >= 0 && s < Cache.n_sets c)

let qcheck_access_then_cached =
  QCheck.Test.make ~name:"access implies cached" ~count:300
    QCheck.(int_bound 0xffffff)
    (fun addr ->
      let c = small () in
      ignore (Cache.access c ~owner:Victim addr);
      Cache.is_cached c addr)

let suite =
  ( "cache",
    [
      Alcotest.test_case "line/set mapping" `Quick test_line_and_set_mapping;
      Alcotest.test_case "hit after fill" `Quick test_hit_after_fill;
      Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
      Alcotest.test_case "flush" `Quick test_flush;
      Alcotest.test_case "cat restricts allocation" `Quick test_cat_restricts_allocation;
      Alcotest.test_case "cat mask validation" `Quick test_cat_mask_validation;
      Alcotest.test_case "slice hash balance" `Quick test_slice_hash_balance;
      Alcotest.test_case "addrs for set" `Quick test_addrs_for_set;
      Alcotest.test_case "owner in set" `Quick test_owner_in_set;
      Alcotest.test_case "timing separation" `Quick test_timing_separation;
      Alcotest.test_case "timing noiseless" `Quick test_timing_noiseless_is_exact;
      Alcotest.test_case "flush+reload" `Quick test_flush_reload_detects_victim;
      Alcotest.test_case "prime+probe" `Quick test_prime_probe_detects_victim;
      Alcotest.test_case "prime+probe under CAT" `Quick test_prime_probe_respects_cat;
      Alcotest.test_case "random replacement" `Quick test_random_replacement_policy;
      Alcotest.test_case "random replacement + CAT" `Quick
        test_random_replacement_respects_cat;
      QCheck_alcotest.to_alcotest qcheck_set_index_in_range;
      QCheck_alcotest.to_alcotest qcheck_access_then_cached;
    ] )
