(** Memory-compression ratio/timing oracle against a simulated
    page-compression store.

    After "Practical Timing Side Channel Attacks on Memory Compression"
    (Schwarzl et al., PAPERS.md): a ZRAM-style store compresses 4-KiB
    pages with LZ4 on swap-out, and an attacker who grooms its
    controlled data into the same page as a secret learns, from the
    page's compressed size or the size-dependent swap latency, whether a
    reflected guess extended an LZ4 match into the secret — CRIME's loop
    with the OS memory subsystem as the compression boundary.  Recovery
    is byte-at-a-time over the hex {!alphabet} with charset pollution
    and padding dithering, as in {!Chunk_oracle}.

    Everything is deterministic in the seed: probe noise derives from
    the probe's coordinates (trial, position, candidate, padding step)
    rather than a shared stream, so results are byte-identical at any
    [jobs]. *)

val page_size : int
(** 4096 — the store's page granularity. *)

val alphabet : string
(** Candidate alphabet of secret bytes: the sixteen hex digits. *)

(** The victim page: filler, a [key=<secret>] marker, and the attacker's
    region immediately after it (the attacker grooms co-location, as in
    the paper). *)
module Page : sig
  type t

  val create : ?seed:int -> ?secret_len:int -> ?region_len:int -> unit -> t
  (** Defaults: seed 7, 16 hex secret bytes, 512 attacker bytes. *)

  val secret : t -> string

  val render : t -> guess:string -> pad:int -> bytes
  (** The exact [page_size]-byte page the store would compress for one
      probe: the attacker region reflects [pollution + "key=" + guess]
      and shifts its junk padding by [pad] so the byte saving of a
      correct guess cannot hide behind an alignment accident.
      @raise Invalid_argument if the guess does not fit the region. *)
end

type oracle =
  | Ratio  (** the attacker reads exact compressed page sizes *)
  | Timing
      (** the attacker times swap cycles; latency is one cache-hit write
          per compressed byte under {!Zipchannel_cache.Timing}, CLT
          aggregated, averaged over [measurements] cycles per probe *)

type result = {
  oracle : oracle;
  secret : string;  (** first trial's secret *)
  recovered : string;  (** first trial's chained recovery *)
  per_byte_correct : int;  (** positions where the true-prefix probe won *)
  positions : int;
  probes : int;  (** page compressions performed *)
  per_byte_rate : float;
  chained_rate : float;  (** mean exact-prefix fraction across trials *)
  capacity_bits : float;  (** {!Zipchannel_obs_leak.Leak_audit} estimate *)
  mi_bits : float;
  classifier_accuracy : float;
      (** held-out accuracy of an MLP separating match from non-match
          probes on (z-score, rank) features *)
}

val run :
  ?seed:int ->
  ?secret_len:int ->
  ?trials:int ->
  ?tries:int ->
  ?measurements:int ->
  ?oracle:oracle ->
  ?jobs:int ->
  ?timing:Zipchannel_cache.Timing.t ->
  unit ->
  result
(** Run the attack.  Defaults: seed 7, 16 secret bytes, 1 trial, 8
    padding steps per candidate, 400 timed swap cycles per probe, the
    {!Timing} oracle with {!Timer_attack.default_config}'s timing model,
    sequential.  Candidates fan out over [jobs] domains; the result is
    identical for any value.  Publishes [leak.memcomp.*] metrics. *)
