lib/compress/bitio.ml: Buffer Bytes Char
