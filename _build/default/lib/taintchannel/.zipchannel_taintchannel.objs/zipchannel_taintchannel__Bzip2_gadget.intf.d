lib/taintchannel/bzip2_gadget.mli: Engine Zipchannel_taint
