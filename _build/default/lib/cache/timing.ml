type t = {
  hit_mean : float;
  miss_mean : float;
  stddev : float;
  outlier_prob : float;
  outlier_cycles : float;
  threshold : float;
}

let default =
  {
    hit_mean = 45.0;
    miss_mean = 210.0;
    stddev = 12.0;
    outlier_prob = 0.005;
    outlier_cycles = 400.0;
    threshold = 120.0;
  }

let noiseless =
  {
    hit_mean = 45.0;
    miss_mean = 210.0;
    stddev = 0.0;
    outlier_prob = 0.0;
    outlier_cycles = 0.0;
    threshold = 120.0;
  }

let sample t prng ~hit =
  let mean = if hit then t.hit_mean else t.miss_mean in
  let base =
    if t.stddev = 0.0 then mean
    else Zipchannel_util.Prng.gaussian prng ~mean ~stddev:t.stddev
  in
  let outlier =
    if t.outlier_prob > 0.0 && Zipchannel_util.Prng.float prng < t.outlier_prob
    then t.outlier_cycles
    else 0.0
  in
  Float.max 1.0 (base +. outlier)

let is_hit t latency = latency < t.threshold

let measure t prng ~hit = is_hit t (sample t prng ~hit)
