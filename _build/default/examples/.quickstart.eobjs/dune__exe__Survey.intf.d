examples/survey.mli:
