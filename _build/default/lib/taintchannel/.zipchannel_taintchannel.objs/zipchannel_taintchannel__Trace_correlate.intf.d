lib/taintchannel/trace_correlate.mli: Engine Format
