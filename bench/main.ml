(* Benchmark & reproduction harness.

   Usage:
     main.exe            run every experiment (E1-E19) then the timing suite
     main.exe e7         run one experiment
     main.exe bench      run only the Bechamel timing suite

   Each experiment regenerates one figure/number of the paper (see
   DESIGN.md's index); the Bechamel suite times the building blocks. *)

open Zipchannel
module Prng = Util.Prng

let ppf = Format.std_formatter

(* ------------------------------------------------------------------ *)
(* Bechamel timing suite *)

let text_10k =
  let prng = Prng.create ~seed:42 () in
  Bytes.of_string (Util.Lipsum.repetitive_file prng ~level:4 ~size:10_000)

let text_1m =
  let prng = Prng.create ~seed:50 () in
  Bytes.of_string (Util.Lipsum.repetitive_file prng ~level:4 ~size:1_048_576)

let random_4k = Prng.bytes (Prng.create ~seed:43 ()) 4096

let staged = Bechamel.Staged.stage

(* Each case is (name, bytes_per_run, thunk): Bechamel times the thunk,
   then a single extra instrumented run captures the case's Obs metric
   growth for the JSON snapshot.  [bytes_per_run] is the payload the
   thunk processes (0 for round-based cases with no natural byte count)
   and turns the wall time into a throughput figure. *)
let bench_cases : (string * int * (unit -> unit)) list =
  [
    ("bzip2/compress-10k-text", 10_000, fun () ->
        ignore (Compress.Bzip2.compress text_10k));
    ("bzip2/compress-1m-text", 1_048_576, fun () ->
        ignore (Compress.Bzip2.compress text_1m));
    ("deflate/compress-10k-text", 10_000, fun () ->
        ignore (Compress.Deflate.compress text_10k));
    ("deflate/compress-1m-text", 1_048_576, fun () ->
        ignore (Compress.Deflate.compress text_1m));
    ("lzw/compress-10k-text", 10_000, fun () ->
        ignore (Compress.Lzw.compress text_10k));
    ("lzw/compress-1m-text", 1_048_576, fun () ->
        ignore (Compress.Lzw.compress text_1m));
    ("lz4/compress-10k-text", 10_000, fun () ->
        ignore (Compress.Lz4.compress text_10k));
    ("snappy/compress-10k-text", 10_000, fun () ->
        ignore (Compress.Snappy.compress text_10k));
    ("frame/deflate-pipelined-1m-jobs1", 1_048_576, fun () ->
        ignore (Frame.compress ~codec:Frame.Deflate text_1m));
    ("frame/deflate-pipelined-1m-jobs4", 1_048_576, fun () ->
        ignore (Frame.compress ~jobs:4 ~codec:Frame.Deflate text_1m));
    (let probe =
       Attack.Chunk_oracle.local_probe ~codec:Frame.Deflate ~frame_size:64 ()
     in
     ("leak/chunk-oracle-64", 0, fun () ->
         (* mini recovery: 2 secret digits from a 512-byte victim; the
            instrumented run surfaces the leak.chunk.* metrics *)
         ignore
           (Attack.Chunk_oracle.run ~seed:7 ~secret_len:2 ~body_len:512
              ~tries:4 ~trials:1 ~frame_size:64 ~probe ())));
    ("leak/memcomp-oracle", 0, fun () ->
        (* mini run: 2 secret bytes through the ratio oracle; the
           instrumented run surfaces the leak.memcomp.* metrics *)
        ignore
          (Attack.Memcomp.run ~seed:7 ~secret_len:2 ~tries:4
             ~oracle:Attack.Memcomp.Ratio ()));
    ("huffman/encode-10k-text", 10_000, fun () ->
        ignore (Compress.Huffman.encode text_10k));
    ("bwt/transform-4k-random", 4096, fun () ->
        ignore (Compress.Bwt.transform random_4k));
    ("taintchannel/zlib-gadget-1k", 1024, fun () ->
        (* no-op unless metrics are enabled (the instrumented run) *)
        Taintchannel.Engine.observe_metrics
          (Taintchannel.Zlib_gadget.run (Bytes.sub random_4k 0 1024)));
    ("aes/encrypt-4k", 4096, fun () ->
        ignore
          (Taintchannel.Aes.encrypt
             ~key:(Bytes.of_string "0123456789abcdef")
             random_4k));
    (let cache = Cache.Cache.create Cache.Cache.default_config in
     let prng = Prng.create ~seed:44 () in
     let pp = Cache.Prime_probe.create ~cache ~prng () in
     ("cache/prime+probe-round", 0, fun () ->
         Cache.Prime_probe.prime pp ~set:17;
         ignore (Cache.Prime_probe.probe pp ~set:17);
         (* no-op unless metrics are enabled (the instrumented run) *)
         Cache.Prime_probe.observe_metrics pp));
    (let cache = Cache.Cache.create Cache.Cache.default_config in
     let prng = Prng.create ~seed:45 () in
     let fr = Cache.Flush_reload.create ~cache ~prng () in
     ("cache/flush+reload-round", 0, fun () ->
         ignore (Cache.Flush_reload.round fr 0x7f0000000000);
         Cache.Cache.observe_metrics cache));
    (let prng = Prng.create ~seed:46 () in
     let input = Prng.bytes prng 256 in
     ("sgx/attack-256b-block", 256, fun () ->
         ignore (Attack.Sgx_attack.run input)));
    (let prng = Prng.create ~seed:47 () in
     let x =
       Array.init 64 (fun _ -> Array.init 100 (fun _ -> Prng.float prng))
     in
     let y = Array.init 64 (fun i -> i mod 4) in
     let mlp = Classifier.Mlp.create ~layers:[ 100; 32; 4 ] () in
     ("classifier/mlp-epoch", 0, fun () ->
         Classifier.Mlp.train ~epochs:1 mlp ~x ~y));
    (let input = Prng.bytes (Prng.create ~seed:48 ()) 64 in
     ("mitigation/oblivious-histogram-64b", 64, fun () ->
         ignore (Mitigation.Oblivious.histogram input)));
    (let input = Prng.bytes (Prng.create ~seed:49 ()) 64 in
     ("compress/plain-histogram-64b", 64, fun () ->
         ignore (Compress.Block_sort.histogram input)));
    ("checksum/crc32-10k", 10_000, fun () ->
        ignore (Compress.Checksum.Crc32.digest text_10k));
    ("container/archive-pack-10k", 10_000, fun () ->
        ignore
          (Compress.Container.Archive.pack
             [ { Compress.Container.Archive.name = "f"; data = text_10k } ]));
  ]

let bench_tests =
  List.map
    (fun (name, _, fn) -> Bechamel.Test.make ~name (staged fn))
    bench_cases

let bytes_of_case name =
  match List.find_opt (fun (n, _, _) -> n = name) bench_cases with
  | Some (_, bytes, _) -> bytes
  | None -> 0

(* MB/s from an ns-per-run estimate (decimal megabytes, the unit every
   compressor datasheet uses); None when the case has no byte count or
   the estimate is unusable. *)
let mb_per_s ~bytes ~ns =
  if bytes <= 0 || Float.is_nan ns || ns <= 0.0 then None
  else Some (float_of_int bytes *. 1000.0 /. ns)

(* One formatter for every place a rate is shown (table, JSON): six
   significant digits, so a 0.98 MB/s case never rounds up to the 1.0
   the gate then appears to contradict. *)
let mb_string m = Printf.sprintf "%.6g" m

(* One instrumented run of a case, after timing: the metric growth it
   causes, flattened to numeric pairs, plus the leak.* scoreboard derived
   from that growth, plus the GC/allocation cost of the run (runtime.* —
   timing-coupled, classed "ignore" by the thresholds files).  Metrics
   are only enabled for the duration, so the timed runs above see the
   disabled fast path. *)
let case_metrics name =
  match List.find_opt (fun (n, _, _) -> n = name) bench_cases with
  | None -> []
  | Some (_, _, fn) ->
      Obs.set_enabled true;
      let before = Obs.Metrics.snapshot () in
      let gc0 = Gc.quick_stat () in
      fn ();
      let gc1 = Gc.quick_stat () in
      let after = Obs.Metrics.snapshot () in
      Obs.set_enabled false;
      let d = Obs.Metrics.delta ~before ~after in
      let word_mb w = w *. float_of_int (Sys.word_size / 8) /. 1e6 in
      let runtime =
        [
          ( "runtime.minor_collections",
            float_of_int (gc1.Gc.minor_collections - gc0.Gc.minor_collections)
          );
          ( "runtime.major_collections",
            float_of_int (gc1.Gc.major_collections - gc0.Gc.major_collections)
          );
          ( "runtime.alloc_mb",
            word_mb
              (gc1.Gc.minor_words -. gc0.Gc.minor_words
              +. (gc1.Gc.major_words -. gc0.Gc.major_words)
              -. (gc1.Gc.promoted_words -. gc0.Gc.promoted_words)) );
          ( "runtime.promoted_words",
            gc1.Gc.promoted_words -. gc0.Gc.promoted_words );
        ]
      in
      Obs.Metrics.flat_pairs d @ Obs_export.Leak.derive d @ runtime

(* Sampled wall-clock profile of a case: loop it for ~80 ms under the
   Obs_prof ticker and report the folded stacks.  The ticker runs only
   inside this window, never during the Bechamel timed loops — a 5 kHz
   sampling domain triples a 240 ns cache-probe round, so sampling the
   measured phase would commit a measurement artifact as the baseline.
   (Side-band means byte-identical output, which the test suite pins;
   wall-clock neutrality on sub-microsecond loops is physically out of
   reach for any concurrent domain.)  Obs metrics stay disabled, so the
   per-case metric deltas above are never polluted by the profiled
   loop. *)
let profile_budget_ns = 80_000_000

let case_profile name =
  match List.find_opt (fun (n, _, _) -> n = name) bench_cases with
  | None -> None
  | Some (_, _, fn) ->
      Obs_prof.reset ();
      Obs_prof.start ~interval_us:200 ();
      let t0 = Obs.now_ns () in
      let iters = ref 0 in
      while !iters < 3 || (Obs.now_ns () - t0 < profile_budget_ns && !iters < 10_000)
      do
        fn ();
        incr iters
      done;
      Obs_prof.stop ();
      let r = Obs_prof.report () in
      if r.Obs_prof.total_samples = 0 then None else Some r

type result = {
  r_name : string;
  r_ns : float;
  r_bytes : int;
  r_metrics : (string * float) list;
  r_profile : Obs_prof.report option;
}

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* [only] restricts the suite: a test runs when its name equals, or
   contains, one of the given patterns (used by the CI bench smoke to
   time a 3-benchmark subset). *)
let selected ~only name =
  only = [] || List.exists (fun pat -> contains ~sub:pat name) only

let run_bench ?(only = []) () =
  let open Bechamel in
  Format.fprintf ppf "@.=== Bechamel timing suite ===@.";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |]
  in
  let results =
    List.concat_map
      (fun test ->
        List.filter_map
          (fun elt ->
            if not (selected ~only (Test.Elt.name elt)) then None
            else begin
            let raw =
              Benchmark.run cfg [ Toolkit.Instance.monotonic_clock ] elt
            in
            let result = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
            let ns =
              match Analyze.OLS.estimates result with
              | Some (e :: _) -> e
              | Some [] | None -> nan
            in
            let name = Test.Elt.name elt in
            let bytes = bytes_of_case name in
            (match mb_per_s ~bytes ~ns with
            | Some m ->
                Format.fprintf ppf "  %-32s %12.0f ns/run %10s MB/s@." name
                  ns (mb_string m)
            | None -> Format.fprintf ppf "  %-32s %12.0f ns/run@." name ns);
            (* Throughput rides in the metrics map so the compare gate
               classifies it like any other metric (exact byte count,
               banded or ignored rate — see bench/thresholds*.json). *)
            let throughput =
              if bytes <= 0 then []
              else
                ("bench.bytes_per_run", float_of_int bytes)
                ::
                (match mb_per_s ~bytes ~ns with
                | Some m -> [ ("bench.mb_per_s", m) ]
                | None -> [])
            in
            Some
              {
                r_name = name;
                r_ns = ns;
                r_bytes = bytes;
                r_metrics = case_metrics name @ throughput;
                r_profile = case_profile name;
              }
            end)
          (Test.elements test))
      bench_tests
  in
  Format.fprintf ppf "@.";
  results

(* Cross-case invariants, checked whenever both sides of a relation ran
   (the CI --only subsets skip what they don't time).  These are claims
   the suite exists to defend, not inter-run drift — so they gate every
   run, not just --compare runs. *)
let check_invariants results =
  let find name = List.find_opt (fun r -> r.r_name = name) results in
  let ns name =
    match find name with
    | Some { r_ns; _ } when (not (Float.is_nan r_ns)) && r_ns > 0.0 ->
        Some r_ns
    | _ -> None
  in
  let per_byte name =
    match find name with
    | Some { r_ns; r_bytes; _ }
      when r_bytes > 0 && (not (Float.is_nan r_ns)) && r_ns > 0.0 ->
        Some (r_ns /. float_of_int r_bytes)
    | _ -> None
  in
  let failures = ref [] in
  (* The LZW large-input cliff stays fixed: per-byte cost at 1 MiB within
     2x of the 10 KiB case (it was ~3.6x before the probe-trace
     allocation was taken off the plain compress path). *)
  (match (per_byte "lzw/compress-10k-text", per_byte "lzw/compress-1m-text") with
  | Some small, Some big when big > 2.0 *. small ->
      failures :=
        Printf.sprintf
          "lzw/compress-1m-text costs %.2f ns/byte vs %.2f at 10k (> 2x)" big
          small
        :: !failures
  | _ -> ());
  (* Framing must pay for itself: the pipelined 1 MiB deflate cases beat
     the whole-buffer compressor at any jobs count. *)
  List.iter
    (fun case ->
      match (ns case, ns "deflate/compress-1m-text") with
      | Some framed, Some whole when framed >= whole ->
          failures :=
            Printf.sprintf "%s (%.0f ns) is not faster than \
                            deflate/compress-1m-text (%.0f ns)"
              case framed whole
            :: !failures
      | _ -> ())
    [ "frame/deflate-pipelined-1m-jobs1"; "frame/deflate-pipelined-1m-jobs4" ];
  match !failures with
  | [] -> ()
  | l ->
      List.iter
        (fun m -> Format.fprintf ppf "  INVARIANT FAILED: %s@." m)
        (List.rev l);
      exit 1

(* Machine-readable trajectory: "bench --json" appends a numbered
   BENCH_<n>.json snapshot next to any earlier ones, so successive PRs can
   be compared without parsing the human-readable table. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let next_bench_index () =
  let files = try Sys.readdir "." with Sys_error _ -> [||] in
  Array.fold_left
    (fun acc f ->
      match Scanf.sscanf_opt f "BENCH_%d.json" (fun n -> n) with
      | Some n -> max acc (n + 1)
      | None -> acc)
    1 files

(* Metric values must survive the JSON round trip exactly — the compare
   gate checks deterministic counters for equality, and %.6g would
   truncate counters past a million. *)
let metric_number v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let write_bench_json results =
  let path = Printf.sprintf "BENCH_%d.json" (next_bench_index ()) in
  let oc = open_out path in
  output_string oc "[\n";
  List.iteri
    (fun i { r_name = name; r_ns = ns; r_bytes = bytes; r_metrics = metrics;
             r_profile } ->
      let throughput_json =
        if bytes <= 0 then ""
        else
          Printf.sprintf ", \"bytes_per_run\": %d%s" bytes
            (match mb_per_s ~bytes ~ns with
            | Some m -> Printf.sprintf ", \"mb_per_s\": %s" (mb_string m)
            | None -> "")
      in
      let metrics_json =
        match metrics with
        | [] -> ""
        | pairs ->
            Printf.sprintf ", \"metrics\": {%s}"
              (String.concat ", "
                 (List.map
                    (fun (k, v) ->
                      Printf.sprintf "\"%s\": %s" (json_escape k)
                        (metric_number v))
                    pairs))
      in
      let profile_json =
        match r_profile with
        | None -> ""
        | Some (p : Obs_prof.report) ->
            Printf.sprintf ", \"profile\": {\"samples\": %d, \"self\": {%s}}"
              p.Obs_prof.total_samples
              (String.concat ", "
                 (List.map
                    (fun (span, self, total) ->
                      Printf.sprintf "\"%s\": [%d, %d]" (json_escape span)
                        self total)
                    p.Obs_prof.self))
      in
      Printf.fprintf oc "  {\"name\": \"%s\", \"ns_per_run\": %.1f%s%s%s}%s\n"
        (json_escape name)
        (if Float.is_nan ns then -1.0 else ns)
        throughput_json metrics_json profile_json
        (if i < List.length results - 1 then "," else ""))
    results;
  output_string oc "]\n";
  close_out oc;
  Format.fprintf ppf "wrote %s@." path

(* The folded-stack artifact (--folded): one [case;domain-<d>;spans N]
   line per sampled stack, across every case that produced samples —
   flamegraph tooling input, uploaded by CI. *)
let write_folded path results =
  let b = Buffer.create 4096 in
  List.iter
    (fun r ->
      match r.r_profile with
      | Some p -> Buffer.add_string b (Obs_prof.folded_lines ~prefix:r.r_name p)
      | None -> ())
    results;
  Obs_export.Sink.atomic_write ~path (Buffer.contents b);
  Format.fprintf ppf "wrote %s@." path

(* A BENCH_<n>.json snapshot: an array of {"name", "ns_per_run",
   "bytes_per_run"?, "mb_per_s"?, "metrics"?} entries, as written by
   {!write_bench_json}.  The comparison only needs name, ns and the
   metrics map; throughput is mirrored in there under the "bench."
   prefix. *)
let read_bench_json path =
  let module J = Obs_export.Json in
  let content =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg ->
      prerr_endline ("bench --compare: " ^ msg);
      exit 2
  in
  match J.parse content with
  | J.Arr entries ->
      List.filter_map
        (fun e ->
          match
            ( Option.bind (J.member "name" e) J.to_str,
              Option.bind (J.member "ns_per_run" e) J.to_num )
          with
          | Some name, Some ns ->
              let metrics =
                match J.member "metrics" e with
                | Some (J.Obj pairs) ->
                    List.filter_map
                      (fun (k, v) ->
                        Option.map (fun n -> (k, n)) (J.to_num v))
                      pairs
                | _ -> []
              in
              (* Sampled self-time table, for --compare forensics. *)
              let profile_self =
                match Option.bind (J.member "profile" e) (J.member "self") with
                | Some (J.Obj pairs) ->
                    List.filter_map
                      (fun (span, v) ->
                        match v with
                        | J.Arr (self :: _) ->
                            Option.map
                              (fun s -> (span, int_of_float s))
                              (J.to_num self)
                        | _ -> None)
                      pairs
                | _ -> []
              in
              Some (name, ns, metrics, profile_self)
          | _ -> None)
        entries
  | _ | (exception J.Parse_error _) ->
      prerr_endline ("bench --compare: " ^ path ^ ": not a BENCH json array");
      exit 2

(* Per-benchmark comparison against a snapshot: wall time (speedup table,
   gated on max increase) plus every recorded metric, classified by the
   threshold rules (exact / percentage band / ignore).  Every regression
   is collected and reported — one line per benchmark+metric, naming the
   magnitude and the allowance it broke — before exiting non-zero; the
   first regression never masks the rest. *)
let compare_bench ~rules ~baseline results =
  let module Gate = Obs_export.Gate in
  let base = read_bench_json baseline in
  Format.fprintf ppf "@.=== comparison vs %s ===@." baseline;
  Format.fprintf ppf "  %-32s %12s %12s %9s %8s@." "benchmark" "baseline ns"
    "current ns" "speedup" "metrics";
  let regressed = ref [] in
  let push rs = regressed := !regressed @ rs in
  List.iter
    (fun { r_name = name; r_ns = ns; r_metrics = metrics; r_profile; _ } ->
      match
        List.find_opt (fun (n, _, _, _) -> n = name) base
      with
      | None ->
          Format.fprintf ppf "  %-32s %12s %12.0f %9s %8s@." name "-" ns "new"
            "-"
      | Some (_, b, base_metrics, base_profile) ->
          let checked =
            Gate.compare_metrics rules ~bench:name ~baseline:base_metrics
              ~current:metrics
          in
          let metrics_cell =
            if base_metrics = [] then "-"
            else if checked = [] then "ok"
            else string_of_int (List.length checked) ^ " bad"
          in
          if Float.is_nan ns || ns <= 0.0 || b <= 0.0 then
            Format.fprintf ppf "  %-32s %12.0f %12.0f %9s %8s@." name b ns "?"
              metrics_cell
          else begin
            Format.fprintf ppf "  %-32s %12.0f %12.0f %8.2fx %8s@." name b ns
              (b /. ns) metrics_cell;
            Option.iter
              (fun r ->
                push [ r ];
                (* Forensics: when the wall-time gate fires, name the
                   spans whose sampled self-time share moved most. *)
                let cur_profile =
                  match r_profile with
                  | Some (p : Obs_prof.report) ->
                      List.map (fun (s, self, _) -> (s, self)) p.Obs_prof.self
                  | None -> []
                in
                let movers =
                  Gate.profile_movers ~baseline:base_profile
                    ~current:cur_profile
                in
                (match movers with
                | [] ->
                    Format.fprintf ppf
                      "  FORENSICS %s: no sampled profile on one side@." name
                | _ ->
                    List.iteri
                      (fun i m ->
                        if i < 3 then
                          Format.fprintf ppf "  FORENSICS %s: %a@." name
                            Gate.pp_mover m)
                      movers))
              (Gate.check_ns rules ~bench:name ~baseline:b ~current:ns)
          end;
          push checked)
    results;
  match !regressed with
  | [] -> Format.fprintf ppf "@.no regression against %s@." baseline
  | l ->
      Format.fprintf ppf "@.%d metric regression%s:@." (List.length l)
        (if List.length l = 1 then "" else "s");
      List.iter
        (fun r -> Format.fprintf ppf "  REGRESSED %a@." Gate.pp_regression r)
        l;
      exit 1

(* ------------------------------------------------------------------ *)

let summarize outcomes =
  Format.fprintf ppf "@.=== summary ===@.";
  List.iter
    (fun o ->
      Format.fprintf ppf "%-4s %s@." o.Experiments.id o.Experiments.title;
      List.iter
        (fun (k, v) -> Format.fprintf ppf "       %-36s %.4f@." k v)
        o.Experiments.metrics)
    outcomes

let usage () =
  prerr_endline
    "usage: main.exe [e1..e19|bench [--json] [--only a,b,...] [--compare \
     BENCH_n.json] [--thresholds FILE.json] [--folded FILE.folded]]";
  exit 1

let run_bench_cli rest =
  let json = ref false
  and only = ref []
  and compare = ref None
  and folded = ref None
  and thresholds = ref None in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--only" :: names :: rest ->
        only := !only @ String.split_on_char ',' names;
        parse rest
    | "--compare" :: path :: rest ->
        compare := Some path;
        parse rest
    | "--folded" :: path :: rest ->
        folded := Some path;
        parse rest
    | "--thresholds" :: path :: rest ->
        thresholds := Some path;
        parse rest
    | _ -> usage ()
  in
  parse rest;
  let rules =
    match !thresholds with
    | None -> Obs_export.Gate.default_rules
    | Some path -> (
        try Obs_export.Gate.load path
        with
        | Sys_error msg | Failure msg ->
            prerr_endline ("bench --thresholds: " ^ msg);
            exit 2
        | Obs_export.Json.Parse_error msg ->
            prerr_endline ("bench --thresholds: " ^ path ^ ": " ^ msg);
            exit 2)
  in
  let results = run_bench ~only:(List.filter (( <> ) "") !only) () in
  check_invariants results;
  if !json then write_bench_json results;
  Option.iter (fun path -> write_folded path results) !folded;
  match !compare with
  | Some baseline -> compare_bench ~rules ~baseline results
  | None -> ()

let () =
  match Array.to_list Sys.argv with
  | [ _ ] ->
      let outcomes = Experiments.all ppf in
      summarize outcomes;
      ignore (run_bench ())
  | _ :: "bench" :: rest -> run_bench_cli rest
  | [ _; id ] -> (
      match Experiments.run ~id ppf with
      | Some _ -> ()
      | None ->
          prerr_endline ("unknown experiment: " ^ id ^ " (use e1..e19 or bench)");
          exit 1)
  | _ -> usage ()
