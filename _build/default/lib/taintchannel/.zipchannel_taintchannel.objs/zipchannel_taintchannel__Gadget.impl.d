lib/taintchannel/gadget.ml: Format Render Tagset Tval Zipchannel_taint
