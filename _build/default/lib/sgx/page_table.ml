let page_bits = 12

let page_size = 1 lsl page_bits

type t = {
  frames : (int, int) Hashtbl.t; (* vpage -> frame; identity if absent *)
  revoked : (int, unit) Hashtbl.t;
}

let create () = { frames = Hashtbl.create 64; revoked = Hashtbl.create 64 }

let vpage_of addr = addr lsr page_bits

let map t ~vpage ~frame = Hashtbl.replace t.frames vpage frame

let frame_of t ~vpage =
  match Hashtbl.find_opt t.frames vpage with Some f -> f | None -> vpage

let phys_of t addr =
  let vpage = vpage_of addr in
  (frame_of t ~vpage lsl page_bits) lor (addr land (page_size - 1))

let protect t ~vpage = Hashtbl.replace t.revoked vpage ()

let unprotect t ~vpage = Hashtbl.remove t.revoked vpage

let pages_in ~addr ~size =
  let first = vpage_of addr and last = vpage_of (addr + max 1 size - 1) in
  List.init (last - first + 1) (fun k -> first + k)

let protect_range t ~addr ~size =
  List.iter (fun vpage -> protect t ~vpage) (pages_in ~addr ~size)

let unprotect_range t ~addr ~size =
  List.iter (fun vpage -> unprotect t ~vpage) (pages_in ~addr ~size)

let is_accessible t ~vpage = not (Hashtbl.mem t.revoked vpage)
