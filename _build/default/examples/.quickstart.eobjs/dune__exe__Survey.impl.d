examples/survey.ml: Bytes Float Format List Taintchannel Util Zipchannel
