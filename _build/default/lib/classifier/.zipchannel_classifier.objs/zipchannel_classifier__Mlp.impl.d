lib/classifier/mlp.ml: Array Float List Prng Zipchannel_util
