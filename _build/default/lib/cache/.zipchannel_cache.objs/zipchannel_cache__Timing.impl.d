lib/cache/timing.ml: Float Zipchannel_util
