lib/attack/attack_config.ml: Noise Zipchannel_cache
