(** Reader for the metric-snapshot JSON written by
    {!Zipchannel_obs.Obs.Metrics.snapshot_to_json} (and embedded in
    BENCH files): the exact inverse of that serialization. *)

val of_json : Json.t -> Zipchannel_obs.Obs.Metrics.snapshot
(** @raise Failure on values that are not metric snapshots. *)

val of_string : string -> Zipchannel_obs.Obs.Metrics.snapshot
(** @raise Json.Parse_error @raise Failure *)

val read_file : string -> Zipchannel_obs.Obs.Metrics.snapshot

val is_snapshot : Json.t -> bool
(** Does this value look like a metric snapshot (an object with a
    ["counters"] member)? *)
