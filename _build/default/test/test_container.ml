open Zipchannel_util
open Zipchannel_compress

let prng () = Prng.create ~seed:0xC0A7 ()

(* ------------------------------------------------------------------ *)
(* Checksums *)

let test_crc32_vector () =
  (* The canonical CRC-32 check value. *)
  Alcotest.(check int) "123456789" 0xCBF43926
    (Checksum.Crc32.digest (Bytes.of_string "123456789"))

let test_crc32_empty () =
  Alcotest.(check int) "empty" 0 (Checksum.Crc32.digest Bytes.empty)

let test_crc32_incremental () =
  let data = Bytes.of_string "hello, world" in
  let split = 5 in
  let s =
    Checksum.Crc32.feed_bytes
      (Checksum.Crc32.feed_bytes Checksum.Crc32.init (Bytes.sub data 0 split))
      (Bytes.sub data split (Bytes.length data - split))
  in
  Alcotest.(check int) "incremental = one-shot" (Checksum.Crc32.digest data)
    (Checksum.Crc32.value s)

let test_adler32_vector () =
  (* Adler-32 of "Wikipedia" (well-known example). *)
  Alcotest.(check int) "Wikipedia" 0x11E60398
    (Checksum.Adler32.digest (Bytes.of_string "Wikipedia"))

let test_adler32_empty () =
  Alcotest.(check int) "empty is 1" 1 (Checksum.Adler32.digest Bytes.empty)

let test_crc32_detects_bit_flip () =
  let t = prng () in
  let data = Prng.bytes t 200 in
  let crc = Checksum.Crc32.digest data in
  let corrupted = Bytes.copy data in
  Bytes.set corrupted 100
    (Char.chr (Char.code (Bytes.get corrupted 100) lxor 0x10));
  Alcotest.(check bool) "differs" false (Checksum.Crc32.digest corrupted = crc)

let qcheck_crc_incremental =
  QCheck.Test.make ~name:"crc32 incremental equals one-shot" ~count:100
    QCheck.(pair (string_of_size QCheck.Gen.(0 -- 100)) (string_of_size QCheck.Gen.(0 -- 100)))
    (fun (a, b) ->
      let whole = Bytes.of_string (a ^ b) in
      let inc =
        Checksum.Crc32.value
          (Checksum.Crc32.feed_bytes
             (Checksum.Crc32.feed_bytes Checksum.Crc32.init (Bytes.of_string a))
             (Bytes.of_string b))
      in
      inc = Checksum.Crc32.digest whole)

(* ------------------------------------------------------------------ *)
(* Stream container *)

let test_stream_roundtrip () =
  let t = prng () in
  let data = Bytes.of_string (Lipsum.repetitive_file t ~level:3 ~size:5000) in
  Alcotest.(check bool) "roundtrip" true
    (Bytes.equal data (Container.Stream.unpack (Container.Stream.pack data)));
  Alcotest.(check bool) "empty" true
    (Bytes.equal Bytes.empty (Container.Stream.unpack (Container.Stream.pack Bytes.empty)))

let test_stream_detects_corruption () =
  let t = prng () in
  let packed = Container.Stream.pack (Prng.bytes t 1000) in
  (* Flip a byte in the middle of the body. *)
  let damaged = Bytes.copy packed in
  let mid = Bytes.length damaged / 2 in
  Bytes.set damaged mid (Char.chr (Char.code (Bytes.get damaged mid) lxor 1));
  Alcotest.(check bool) "raises Corrupt" true
    (match Container.Stream.unpack damaged with
    | _ -> false
    | exception Container.Corrupt _ -> true)

let test_stream_bad_magic () =
  Alcotest.(check bool) "bad magic rejected" true
    (match Container.Stream.unpack (Bytes.make 20 'q') with
    | _ -> false
    | exception Container.Corrupt _ -> true)

let test_stream_truncated () =
  let packed = Container.Stream.pack (Bytes.of_string "some data here") in
  let truncated = Bytes.sub packed 0 (Bytes.length packed - 3) in
  Alcotest.(check bool) "truncation rejected" true
    (match Container.Stream.unpack truncated with
    | _ -> false
    | exception Container.Corrupt _ -> true)

let qcheck_stream =
  QCheck.Test.make ~name:"stream container roundtrip" ~count:100
    QCheck.(string_of_size QCheck.Gen.(0 -- 1500))
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal b (Container.Stream.unpack (Container.Stream.pack b)))

(* ------------------------------------------------------------------ *)
(* Archive *)

let entries t =
  [
    { Container.Archive.name = "readme.txt";
      data = Bytes.of_string (Lipsum.paragraph t) };
    { Container.Archive.name = "data.bin"; data = Prng.bytes t 3000 };
    { Container.Archive.name = "empty"; data = Bytes.empty };
  ]

let test_archive_roundtrip () =
  let es = entries (prng ()) in
  let packed = Container.Archive.pack es in
  let out = Container.Archive.unpack packed in
  Alcotest.(check int) "entry count" 3 (List.length out);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "name" a.Container.Archive.name b.Container.Archive.name;
      Alcotest.(check bool) "data" true (Bytes.equal a.Container.Archive.data b.Container.Archive.data))
    es out

let test_archive_names_and_extract () =
  let es = entries (prng ()) in
  let packed = Container.Archive.pack es in
  Alcotest.(check (list string)) "names" [ "readme.txt"; "data.bin"; "empty" ]
    (Container.Archive.names packed);
  let d = Container.Archive.extract packed "data.bin" in
  Alcotest.(check bool) "extracted" true
    (Bytes.equal d (List.nth es 1).Container.Archive.data);
  Alcotest.check_raises "missing entry" Not_found (fun () ->
      ignore (Container.Archive.extract packed "nope"))

let test_archive_empty () =
  let packed = Container.Archive.pack [] in
  Alcotest.(check (list string)) "no entries" [] (Container.Archive.names packed)

let test_archive_duplicate_names () =
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Archive.pack: duplicate entry name") (fun () ->
      ignore
        (Container.Archive.pack
           [
             { Container.Archive.name = "a"; data = Bytes.empty };
             { Container.Archive.name = "a"; data = Bytes.empty };
           ]))

let test_archive_detects_corruption () =
  let es = entries (prng ()) in
  let packed = Container.Archive.pack es in
  let damaged = Bytes.copy packed in
  Bytes.set damaged 10 (Char.chr (Char.code (Bytes.get damaged 10) lxor 0x40));
  Alcotest.(check bool) "raises Corrupt" true
    (match Container.Archive.unpack damaged with
    | _ -> false
    | exception Container.Corrupt _ -> true)

let qcheck_archive =
  QCheck.Test.make ~name:"archive roundtrip" ~count:50
    QCheck.(small_list (string_of_size QCheck.Gen.(0 -- 300)))
    (fun contents ->
      let es =
        List.mapi
          (fun i s ->
            { Container.Archive.name = Printf.sprintf "f%d" i;
              data = Bytes.of_string s })
          contents
      in
      let out = Container.Archive.unpack (Container.Archive.pack es) in
      List.length out = List.length es
      && List.for_all2
           (fun a b ->
             a.Container.Archive.name = b.Container.Archive.name
             && Bytes.equal a.Container.Archive.data b.Container.Archive.data)
           es out)

let suite =
  ( "container",
    [
      Alcotest.test_case "crc32 vector" `Quick test_crc32_vector;
      Alcotest.test_case "crc32 empty" `Quick test_crc32_empty;
      Alcotest.test_case "crc32 incremental" `Quick test_crc32_incremental;
      Alcotest.test_case "adler32 vector" `Quick test_adler32_vector;
      Alcotest.test_case "adler32 empty" `Quick test_adler32_empty;
      Alcotest.test_case "crc32 bit flip" `Quick test_crc32_detects_bit_flip;
      QCheck_alcotest.to_alcotest qcheck_crc_incremental;
      Alcotest.test_case "stream roundtrip" `Quick test_stream_roundtrip;
      Alcotest.test_case "stream corruption" `Quick test_stream_detects_corruption;
      Alcotest.test_case "stream bad magic" `Quick test_stream_bad_magic;
      Alcotest.test_case "stream truncated" `Quick test_stream_truncated;
      QCheck_alcotest.to_alcotest qcheck_stream;
      Alcotest.test_case "archive roundtrip" `Quick test_archive_roundtrip;
      Alcotest.test_case "archive names/extract" `Quick test_archive_names_and_extract;
      Alcotest.test_case "archive empty" `Quick test_archive_empty;
      Alcotest.test_case "archive duplicates" `Quick test_archive_duplicate_names;
      Alcotest.test_case "archive corruption" `Quick test_archive_detects_corruption;
      QCheck_alcotest.to_alcotest qcheck_archive;
    ] )
