(** LZW compression in the style of (N)compress 5.x.

    The dictionary is pre-initialised with codes 0–255 mapping to
    themselves and 256 reserved (the paper's Section IV-C: EOF); new codes
    start at 257.  Code width grows from 9 to 16 bits as entries are added;
    when the code space is exhausted the dictionary freezes.  The encoder
    probes an open-addressed hash table with
    [hp = (c lsl 9) lxor ent] — the paper's Listing 2 gadget — so the
    first probe of every lookup is the address-relevant observable. *)

val eof_code : int
(** 256 — reserved as in (N)compress; this container stores the output
    length up front instead of emitting it. *)

val first_code : int
(** 257 *)

val min_bits : int
(** 9 *)

val max_bits : int
(** 16 *)

val htab_bits : int
(** 17: the hash table has [2^17] slots of 8-byte entries, so the probe
    index reaches the cache channel shifted by 3 (Fig. 3's [rbp + rax*8]
    addressing). *)

val hash : c:int -> ent:int -> int
(** [(c lsl 9) lxor ent], reduced into the table. *)

type probe = {
  hp : int;  (** slot index probed *)
  first : bool;  (** first probe of this lookup (no collision yet) *)
  c : int;  (** pending input byte *)
  ent : int;  (** current dictionary entry *)
}

(** One step of the encoder's main loop.  The attack's recovery algorithm
    (paper Section IV-C) exploits that the dictionary is reconstructible
    from the plaintext prefix: it runs this stepper on the bytes recovered
    so far to obtain the exact [ent] the victim used next. *)
module Stepper : sig
  type t

  val create : first:int -> t
  (** Start a stream whose first input byte is [first].
      @raise Invalid_argument outside 0..255. *)

  val copy : t -> t
  (** Independent snapshot of the dictionary state — lets an attacker's
      mirror explore repair hypotheses. *)

  val probe_hit : t -> ent:int -> c:int -> int option
  (** Read-only dictionary lookup of the (ent, c) pair: the code it maps
      to, if present.  Does not record probes or mutate state. *)

  val ent : t -> int
  (** The current dictionary entry (the value xor'ed into the next hash). *)

  val feed : t -> int -> probe list * (int * int) option
  (** Process the next byte: the hash probes performed, and
      [Some (code, width)] when a code was emitted. *)

  val flush : t -> int * int
  (** Final code and its width. *)
end

val compress : bytes -> bytes

val compress_with_probes : bytes -> bytes * probe list
(** Also returns every hash-table probe in execution order — the memory
    trace an attacker of the Listing 2 gadget observes. *)

val triangular_cap : int
(** Largest [c] for which [c * (c + 1)] fits in an [int] — the integer
    square root bound of [2 * max_int], computed from [max_int] so it is
    correct at any word size. *)

val max_declared_length : payload_bits:int -> int
(** The decompression-bomb bound: the most bytes a payload of
    [payload_bits] could possibly expand to ([c * (c + 1) / 2] for
    [c = payload_bits / min_bits] codes, saturating to [max_int] past
    {!triangular_cap}).  Exposed so the overflow boundary is testable. *)

val decompress_result : bytes -> (bytes, Codec_error.t) result
(** Safe decoder: truncated, corrupt or bomb-shaped input (a header
    declaring more output than the payload could possibly encode) is an
    [Error]; no exception escapes this boundary. *)

val decompress : bytes -> bytes
(** [Codec_error.unwrap] of {!decompress_result}.
    @raise Failure on malformed input. *)
