open Zipchannel_taint
module Snappy = Zipchannel_compress.Snappy

let table_base = 0x7f62d0000000

let location_load = "/path/to/libsnappy.so.1.1.10!CompressFragment+489"
let location_store = "/path/to/libsnappy.so.1.1.10!CompressFragment+502"
let location = location_store

let src_base = 0x7f62cf000000

let mult_bits =
  let rec bits k c = if c = 0 then [] else if c land 1 = 1 then k :: bits (k + 1) (c lsr 1) else bits (k + 1) (c lsr 1) in
  bits 0 Snappy.hash_const

let run ?(table_base = table_base) input =
  let e = Engine.create ~name:"snappy" input in
  Engine.stage_input e ~base:src_base;
  let n = Bytes.length input in
  if n >= Snappy.min_match then begin
    let base = Tval.const ~width:48 table_base in
    for i = 0 to n - Snappy.min_match do
      (* UNALIGNED_LOAD32(ip): four staged input bytes, little-endian. *)
      let byte k =
        Tval.zero_extend ~width:48
          (Engine.load e ~location:"libsnappy!UNALIGNED_LOAD32"
             ~mnemonic:"movzbl (ip,i)"
             ~addr:(Tval.const ~width:48 (src_base + i + k))
             ~size:1 ())
      in
      let group =
        Tval.logor (byte 0)
          (Tval.logor
             (Tval.shift_left (byte 1) 8)
             (Tval.logor
                (Tval.shift_left (byte 2) 16)
                (Tval.shift_left (byte 3) 24)))
      in
      Engine.log_op e ~location:"libsnappy!UNALIGNED_LOAD32"
        ~mnemonic:"mov (ip) -> %eax" ~operands:[ ("eax", group) ];
      (* HashBytes: imul with 0x1e35a7bd (shift-add expansion), keep 32
         bits, take the top hash_bits. *)
      let product =
        List.fold_left
          (fun acc k -> Tval.add acc (Tval.shift_left group k))
          (Tval.const ~width:48 0)
          mult_bits
      in
      Engine.log_op e ~location:"libsnappy!HashBytes"
        ~mnemonic:"imul $0x1e35a7bd, %eax"
        ~operands:[ ("eax", product) ];
      let h =
        Tval.shift_right_logical
          (Tval.truncate ~width:32 product)
          (32 - Snappy.hash_bits)
      in
      Engine.log_op e ~location:"libsnappy!HashBytes" ~mnemonic:"shr $18, %eax"
        ~operands:[ ("eax", h) ];
      (* table_\[h\]: candidate read then position write, 2-byte entries. *)
      let addr = Tval.add base (Tval.shift_left (Tval.zero_extend ~width:48 h) 1) in
      ignore
        (Engine.load e ~location:location_load
           ~mnemonic:"movzwl (%rbp,%rax,2) -> %ecx" ~index:("rax", h) ~addr
           ~size:2 ());
      Engine.store e ~location:location_store
        ~mnemonic:"mov %si -> (%rbp,%rax,2)" ~index:("rax", h) ~addr ~size:2
        ~value:(Tval.const ~width:16 (i land 0xffff)) ()
    done
  end;
  e
