test/test_mitigation.ml: Alcotest Array Bytes Leak_check List Oblivious Prng QCheck QCheck_alcotest Zipchannel_compress Zipchannel_mitigation Zipchannel_util
