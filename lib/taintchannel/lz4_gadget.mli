(** TaintChannel model of the LZ4 match-finder hash probe.

    [LZ4_compress_generic] hashes the next 4 source bytes with
    [h = (read32(p) * 2654435761) >> (32 - hash_bits)] and both reads and
    writes [hashTable\[h\]] — a load and a store whose address is a pure
    function of raw input data, the "value used as address" pattern
    (Clueless) that zlib's INSERT_STRING exhibits.  The imul is modeled as
    its shift-add expansion so per-bit taint flows through {!Tval.add}'s
    merge rule. *)

val table_base : int
(** Default virtual base of the [hashTable] array. *)

val location_load : string
(** Report location of the candidate read [mov (%rbp,%rax,4) -> %ecx]. *)

val location_store : string
(** Report location of the position write [mov %esi -> (%rbp,%rax,4)]. *)

val location : string
(** Alias for {!location_store}, the primary gadget. *)

val run : ?table_base:int -> bytes -> Engine.t
(** Execute the hash-insertion loop over the whole input under the
    instrumentation engine. *)
