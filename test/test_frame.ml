(* The frame container and the pipelined engine under it.

   The load-bearing properties: framed output decodes to exactly the
   input across every chunking of the feed and every codec; the
   pipelined entry points are byte-identical to [jobs = 1]; the bounded
   queue applies backpressure instead of buffering without limit; and
   malformed streams come back as structured [Codec_error]s, never
   exceptions. *)

open Zipchannel_util
module C = Zipchannel_compress
module Frame = C.Frame
module Pipeline = Zipchannel_parallel.Pipeline
module Bigstring = Zipchannel_buf.Bigstring

let all_codecs = Frame.[ Deflate; Gzip; Bzip2; Lzw ]
let chunk_sizes = [ 1; 7; 4096; 65536 ]

let lipsum n =
  let prng = Prng.create ~seed:0xF7A3E ()  in
  Bytes.of_string (Lipsum.repetitive_file prng ~level:3 ~size:n)

(* ------------------------------------------------------------------ *)
(* Whole-buffer round trips *)

let test_roundtrip_all_codecs () =
  let data = lipsum 20_000 in
  List.iter
    (fun codec ->
      let packed = Frame.compress ~frame_size:4096 ~codec data in
      Alcotest.(check bytes)
        (Frame.codec_name codec ^ " roundtrip")
        data (Frame.decompress packed))
    all_codecs

let test_roundtrip_empty () =
  List.iter
    (fun codec ->
      let packed = Frame.compress ~codec Bytes.empty in
      Alcotest.(check bytes)
        (Frame.codec_name codec ^ " empty")
        Bytes.empty (Frame.decompress packed);
      (* header + trailer only *)
      Alcotest.(check int)
        (Frame.codec_name codec ^ " empty size")
        (Frame.header_len + Frame.trailer_len)
        (Bytes.length packed))
    all_codecs

let test_jobs_byte_identical () =
  let data = lipsum 300_000 in
  List.iter
    (fun codec ->
      let one = Frame.compress ~frame_size:16384 ~codec data in
      let four = Frame.compress ~frame_size:16384 ~jobs:4 ~codec data in
      Alcotest.(check bytes)
        (Frame.codec_name codec ^ " jobs 4 = jobs 1")
        one four)
    all_codecs

(* ------------------------------------------------------------------ *)
(* Encoder: chunked feeds agree with the whole-buffer compressor *)

let encode_chunked ~chunk ~frame_size ~codec data =
  let out = Buffer.create 256 in
  let emit big ~off ~len = Buffer.add_bytes out (Bigstring.to_bytes big ~off ~len) in
  let enc = Frame.Encoder.create ~frame_size ~codec ~emit () in
  let n = Bytes.length data in
  let pos = ref 0 in
  while !pos < n do
    let take = min chunk (n - !pos) in
    Frame.Encoder.feed_bytes enc data ~off:!pos ~len:take;
    pos := !pos + take
  done;
  Frame.Encoder.finish enc;
  Buffer.to_bytes out

let test_encoder_chunking_invariant () =
  let data = lipsum 50_000 in
  List.iter
    (fun codec ->
      let whole = Frame.compress ~frame_size:4096 ~codec data in
      List.iter
        (fun chunk ->
          Alcotest.(check bytes)
            (Printf.sprintf "%s chunk=%d" (Frame.codec_name codec) chunk)
            whole
            (encode_chunked ~chunk ~frame_size:4096 ~codec data))
        chunk_sizes)
    all_codecs

(* ------------------------------------------------------------------ *)
(* Decoder: chunked feeds, flush frames, error shapes *)

let decode_chunked ~chunk packed =
  let out = Buffer.create 256 in
  let emit big ~off ~len = Buffer.add_bytes out (Bigstring.to_bytes big ~off ~len) in
  let dec = Frame.Decoder.create ~emit () in
  let n = Bytes.length packed in
  let rec go pos =
    if pos >= n then Frame.Decoder.finish dec
    else
      let take = min chunk (n - pos) in
      match Frame.Decoder.feed_bytes dec packed ~off:pos ~len:take with
      | Error _ as e -> e
      | Ok () -> go (pos + take)
  in
  Result.map (fun () -> Buffer.to_bytes out) (go 0)

let test_decoder_chunking_invariant () =
  let data = lipsum 50_000 in
  List.iter
    (fun codec ->
      let packed = Frame.compress ~frame_size:4096 ~codec data in
      List.iter
        (fun chunk ->
          match decode_chunked ~chunk packed with
          | Ok out ->
              Alcotest.(check bytes)
                (Printf.sprintf "%s chunk=%d" (Frame.codec_name codec) chunk)
                data out
          | Error e ->
              Alcotest.failf "%s chunk=%d: %s" (Frame.codec_name codec) chunk
                (C.Codec_error.to_string e))
        chunk_sizes)
    all_codecs

let test_flush_points_roundtrip () =
  let out = Buffer.create 256 in
  let emit big ~off ~len = Buffer.add_bytes out (Bigstring.to_bytes big ~off ~len) in
  let enc = Frame.Encoder.create ~frame_size:64 ~codec:Frame.Lzw ~emit () in
  let a = Bytes.of_string "first part " and b = Bytes.of_string "second part" in
  Frame.Encoder.feed_bytes enc a ~off:0 ~len:(Bytes.length a);
  Frame.Encoder.flush enc;
  Frame.Encoder.flush enc;
  (* an empty flush point must also be representable *)
  Frame.Encoder.feed_bytes enc b ~off:0 ~len:(Bytes.length b);
  Frame.Encoder.finish enc;
  Alcotest.(check bytes) "flush-framed stream decodes"
    (Bytes.cat a b)
    (Frame.decompress (Buffer.to_bytes out))

let check_error ~reason packed =
  match Frame.decompress_result packed with
  | Ok _ -> Alcotest.failf "expected %S error" reason
  | Error e ->
      Alcotest.(check string) "codec" "frame" e.C.Codec_error.codec;
      let contains sub s =
        let n = String.length sub and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      if not (contains reason e.C.Codec_error.reason) then
        Alcotest.failf "reason %S does not mention %S" e.C.Codec_error.reason
          reason

let test_decoder_errors () =
  let data = lipsum 5_000 in
  let packed = Frame.compress ~frame_size:1024 ~codec:Frame.Deflate data in
  (* truncation: every strict prefix fails; check a few *)
  check_error ~reason:"truncated" (Bytes.sub packed 0 (Bytes.length packed - 1));
  check_error ~reason:"truncated" (Bytes.sub packed 0 Frame.header_len);
  check_error ~reason:"truncated" (Bytes.sub packed 0 3);
  (* bad magic *)
  let bad = Bytes.copy packed in
  Bytes.set bad 0 'Q';
  check_error ~reason:"bad magic" bad;
  (* unknown codec id *)
  let bad = Bytes.copy packed in
  Bytes.set bad 4 '\213';
  check_error ~reason:"unknown codec" bad;
  (* payload corruption behind the per-frame CRC *)
  let bad = Bytes.copy packed in
  let p = Frame.header_len + Frame.frame_header_len in
  Bytes.set bad p (Char.chr (Char.code (Bytes.get bad p) lxor 0x40));
  check_error ~reason:"checksum mismatch" bad;
  (* trailing garbage after the trailer *)
  check_error ~reason:"trailing data" (Bytes.cat packed (Bytes.of_string "x"));
  (* decode boundary never raises: arbitrary mutations give Error *)
  let prng = Prng.create ~seed:99 () in
  for _ = 1 to 200 do
    let bad = Bytes.copy packed in
    let i = Prng.int prng (Bytes.length bad) in
    Bytes.set bad i (Char.chr (Prng.int prng 256));
    match Frame.decompress_result bad with Ok _ | Error _ -> ()
  done

(* ------------------------------------------------------------------ *)
(* Streaming entry points *)

let reader_of_bytes data =
  let pos = ref 0 in
  fun buf off len ->
    let n = min len (Bytes.length data - !pos) in
    Bytes.blit data !pos buf off n;
    pos := !pos + n;
    n

let test_stream_roundtrip_jobs () =
  let data = lipsum 200_000 in
  List.iter
    (fun jobs ->
      let out = Buffer.create 256 in
      Frame.compress_stream ~frame_size:8192 ~jobs ~codec:Frame.Gzip
        ~read:(reader_of_bytes data)
        ~write:(fun b ~off ~len -> Buffer.add_subbytes out b off len)
        ();
      let packed = Buffer.to_bytes out in
      let plain = Buffer.create 256 in
      match
        Frame.decompress_stream ~jobs
          ~read:(reader_of_bytes packed)
          ~write:(fun b ~off ~len -> Buffer.add_subbytes plain b off len)
          ()
      with
      | Error e -> Alcotest.failf "jobs=%d: %s" jobs (C.Codec_error.to_string e)
      | Ok () ->
          Alcotest.(check bytes)
            (Printf.sprintf "jobs=%d stream roundtrip" jobs)
            data (Buffer.to_bytes plain))
    [ 1; 4 ]

let qcheck_frame_roundtrip =
  QCheck.Test.make ~name:"framed compress/decompress is the identity"
    ~count:60
    QCheck.(
      pair
        (string_of_size QCheck.Gen.(0 -- 3000))
        (int_range 0 (List.length all_codecs * List.length chunk_sizes - 1)))
    (fun (s, pick) ->
      let codec = List.nth all_codecs (pick / List.length chunk_sizes) in
      let chunk = List.nth chunk_sizes (pick mod List.length chunk_sizes) in
      let data = Bytes.of_string s in
      let packed = Frame.compress ~frame_size:256 ~codec data in
      (* one whole-buffer encode must agree with a chunked feed, and the
         chunked decode must invert both *)
      let chunked = encode_chunked ~chunk ~frame_size:256 ~codec data in
      Bytes.equal packed chunked
      &&
      match decode_chunked ~chunk packed with
      | Ok out -> Bytes.equal out data
      | Error _ -> false)

let qcheck_stream_jobs_identical =
  QCheck.Test.make ~name:"pipelined frame stream is byte-identical at any jobs"
    ~count:20
    QCheck.(string_of_size QCheck.Gen.(0 -- 50_000))
    (fun s ->
      let data = Bytes.of_string s in
      let run jobs =
        let out = Buffer.create 256 in
        Frame.compress_stream ~frame_size:1024 ~jobs ~codec:Frame.Deflate
          ~read:(reader_of_bytes data)
          ~write:(fun b ~off ~len -> Buffer.add_subbytes out b off len)
          ();
        Buffer.to_bytes out
      in
      Bytes.equal (run 1) (run 4))

(* ------------------------------------------------------------------ *)
(* The pipeline engine proper (unclamped: these exercise real domains
   even on a single-core machine) *)

let test_pipeline_order_and_identity () =
  let n = 500 in
  let out = ref [] in
  Pipeline.run ~jobs:4
    ~produce:(fun ~seq -> if seq < n then Some seq else None)
    ~work:(fun x -> x * x)
    ~consume:(fun ~seq y -> out := (seq, y) :: !out)
    ();
  let got = List.rev !out in
  Alcotest.(check int) "all items" n (List.length got);
  List.iteri
    (fun i (seq, y) ->
      Alcotest.(check int) "in order" i seq;
      Alcotest.(check int) "result" (i * i) y)
    got

let test_pipeline_backpressure () =
  (* A slow consumer must bound the in-flight window: with capacity 4,
     the producer can never run more than 4 items ahead of the
     consumer.  The producer and consumer run in the calling domain, so
     observing [produced - consumed] at produce time is race-free. *)
  let produced = ref 0 and consumed = ref 0 in
  let max_ahead = ref 0 in
  Pipeline.run ~jobs:3 ~capacity:4
    ~produce:(fun ~seq ->
      max_ahead := max !max_ahead (!produced - !consumed);
      if seq < 200 then begin
        incr produced;
        Some seq
      end
      else None)
    ~work:(fun x -> x)
    ~consume:(fun ~seq:_ _ ->
      incr consumed;
      (* slow consumer: let workers pile results up if they could *)
      if !consumed mod 10 = 0 then
        for _ = 1 to 1000 do
          Domain.cpu_relax ()
        done)
    ();
  Alcotest.(check int) "everything consumed" 200 !consumed;
  Alcotest.(check bool)
    (Printf.sprintf "window bounded (saw %d ahead, capacity 4)" !max_ahead)
    true (!max_ahead <= 4)

let test_pipeline_worker_exception_propagates () =
  let boom = Failure "boom at 17" in
  let consumed_after_fault = ref false in
  (match
     Pipeline.run ~jobs:4
       ~produce:(fun ~seq -> if seq < 100 then Some seq else None)
       ~work:(fun x -> if x = 17 then raise boom else x)
       ~consume:(fun ~seq _ -> if seq > 17 then consumed_after_fault := true)
       ()
   with
  | () -> Alcotest.fail "expected the worker failure to propagate"
  | exception Failure msg -> Alcotest.(check string) "message" "boom at 17" msg);
  Alcotest.(check bool) "nothing past the fault was consumed" false
    !consumed_after_fault

let test_pipeline_consumer_exception_propagates () =
  match
    Pipeline.run ~jobs:2
      ~produce:(fun ~seq -> if seq < 50 then Some seq else None)
      ~work:(fun x -> x)
      ~consume:(fun ~seq _ -> if seq = 5 then failwith "consumer")
      ()
  with
  | () -> Alcotest.fail "expected the consumer failure to propagate"
  | exception Failure msg -> Alcotest.(check string) "message" "consumer" msg

let qcheck_pipeline_deterministic =
  QCheck.Test.make ~name:"pipeline consume order is deterministic in jobs"
    ~count:30
    QCheck.(pair (int_range 0 300) (int_range 2 6))
    (fun (n, jobs) ->
      let run jobs =
        let acc = Buffer.create 64 in
        Pipeline.run ~jobs
          ~produce:(fun ~seq -> if seq < n then Some seq else None)
          ~work:(fun x -> x * 7)
          ~consume:(fun ~seq y -> Buffer.add_string acc (Printf.sprintf "%d:%d;" seq y))
          ();
        Buffer.contents acc
      in
      run 1 = run jobs)

let suite =
  ( "frame",
    [
      Alcotest.test_case "roundtrip all codecs" `Quick test_roundtrip_all_codecs;
      Alcotest.test_case "roundtrip empty" `Quick test_roundtrip_empty;
      Alcotest.test_case "jobs byte-identical" `Quick test_jobs_byte_identical;
      Alcotest.test_case "encoder chunking invariant" `Quick
        test_encoder_chunking_invariant;
      Alcotest.test_case "decoder chunking invariant" `Quick
        test_decoder_chunking_invariant;
      Alcotest.test_case "flush points" `Quick test_flush_points_roundtrip;
      Alcotest.test_case "decoder errors" `Quick test_decoder_errors;
      Alcotest.test_case "stream roundtrip at jobs" `Quick
        test_stream_roundtrip_jobs;
      QCheck_alcotest.to_alcotest qcheck_frame_roundtrip;
      QCheck_alcotest.to_alcotest qcheck_stream_jobs_identical;
      Alcotest.test_case "pipeline order/identity" `Quick
        test_pipeline_order_and_identity;
      Alcotest.test_case "pipeline backpressure" `Quick
        test_pipeline_backpressure;
      Alcotest.test_case "pipeline worker exception" `Quick
        test_pipeline_worker_exception_propagates;
      Alcotest.test_case "pipeline consumer exception" `Quick
        test_pipeline_consumer_exception_propagates;
      QCheck_alcotest.to_alcotest qcheck_pipeline_deterministic;
    ] )
