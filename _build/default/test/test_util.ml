open Zipchannel_util

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 () and b = Prng.create ~seed:42 () in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 () and b = Prng.create ~seed:2 () in
  Alcotest.(check bool) "different streams" false (Prng.bits64 a = Prng.bits64 b)

let test_prng_copy_independent () =
  let a = Prng.create ~seed:7 () in
  let b = Prng.copy a in
  let va = Prng.bits64 a in
  let vb = Prng.bits64 b in
  Alcotest.(check int64) "copy continues the stream" va vb

let test_prng_int_bounds () =
  let t = Prng.create ~seed:3 () in
  for _ = 1 to 10_000 do
    let v = Prng.int t 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_prng_int_invalid () =
  let t = Prng.create () in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int t 0))

let test_prng_float_range () =
  let t = Prng.create ~seed:4 () in
  for _ = 1 to 10_000 do
    let v = Prng.float t in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_prng_byte_coverage () =
  let t = Prng.create ~seed:5 () in
  let seen = Array.make 256 false in
  for _ = 1 to 100_000 do
    seen.(Prng.byte t) <- true
  done;
  Alcotest.(check bool) "all byte values reachable" true
    (Array.for_all (fun b -> b) seen)

let test_prng_gaussian_moments () =
  let t = Prng.create ~seed:6 () in
  let xs = Array.init 50_000 (fun _ -> Prng.gaussian t ~mean:3.0 ~stddev:2.0) in
  Alcotest.(check bool) "mean close" true (abs_float (Stats.mean xs -. 3.0) < 0.1);
  Alcotest.(check bool) "stddev close" true (abs_float (Stats.stddev xs -. 2.0) < 0.1)

let test_prng_shuffle_permutes () =
  let t = Prng.create ~seed:8 () in
  let a = Array.init 100 (fun i -> i) in
  Prng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 100 (fun i -> i)) sorted

let test_prng_lowercase () =
  let t = Prng.create ~seed:9 () in
  let s = Prng.lowercase_string t 1000 in
  Alcotest.(check bool) "all lowercase" true
    (String.for_all (fun c -> c >= 'a' && c <= 'z') s)

let test_stats_mean_stddev () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "stddev" (sqrt (2.0 /. 3.0))
    (Stats.stddev [| 1.0; 2.0; 3.0 |])

let test_stats_percentile () =
  let xs = [| 5.0; 1.0; 4.0; 2.0; 3.0 |] in
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile xs 100.0)

let test_stats_empty () =
  Alcotest.check_raises "mean of empty" (Invalid_argument "Stats.mean: empty")
    (fun () -> ignore (Stats.mean [||]))

let test_fraction_equal () =
  let a = Bytes.of_string "abcd" and b = Bytes.of_string "abxd" in
  Alcotest.(check (float 1e-9)) "3/4" 0.75 (Stats.fraction_equal a b);
  Alcotest.(check (float 1e-9)) "empty" 1.0
    (Stats.fraction_equal Bytes.empty Bytes.empty)

let test_bit_accuracy () =
  let a = Bytes.of_string "\x00" and b = Bytes.of_string "\x01" in
  Alcotest.(check (float 1e-9)) "7/8" (7.0 /. 8.0) (Stats.bit_accuracy a b);
  Alcotest.(check (float 1e-9)) "identical" 1.0
    (Stats.bit_accuracy (Bytes.of_string "xyz") (Bytes.of_string "xyz"))

let test_confusion () =
  let c = Stats.Confusion.create ~labels:[| "a"; "b" |] in
  Stats.Confusion.add c ~truth:0 ~predicted:0;
  Stats.Confusion.add c ~truth:0 ~predicted:0;
  Stats.Confusion.add c ~truth:0 ~predicted:1;
  Stats.Confusion.add c ~truth:1 ~predicted:1;
  Alcotest.(check int) "count" 2 (Stats.Confusion.count c ~truth:0 ~predicted:0);
  Alcotest.(check (float 1e-9)) "accuracy" 0.75 (Stats.Confusion.accuracy c);
  let m = Stats.Confusion.column_normalized c in
  Alcotest.(check (float 1e-9)) "col norm" (2.0 /. 3.0) m.(0).(0);
  let pca = Stats.Confusion.per_class_accuracy c in
  Alcotest.(check (float 1e-9)) "class b" 1.0 pca.(1)

let test_lipsum_words () =
  let t = Prng.create ~seed:10 () in
  let s = Lipsum.sentence t in
  Alcotest.(check bool) "capitalised" true
    (String.length s > 0 && s.[0] >= 'A' && s.[0] <= 'Z');
  Alcotest.(check bool) "ends with period" true (s.[String.length s - 1] = '.')

let test_lipsum_repetitive_size () =
  let t = Prng.create ~seed:11 () in
  let f = Lipsum.repetitive_file t ~level:3 ~size:5000 in
  Alcotest.(check int) "exact size" 5000 (String.length f)

let test_lipsum_level1_is_periodic () =
  let t = Prng.create ~seed:12 () in
  let f = Lipsum.repetitive_file t ~level:1 ~size:400 in
  (* A single 20-byte fragment repeated: position i equals i+20. *)
  let ok = ref true in
  for i = 0 to String.length f - 21 do
    if f.[i] <> f.[i + 20] then ok := false
  done;
  Alcotest.(check bool) "period 20" true !ok

let test_lipsum_level_bounds () =
  let t = Prng.create () in
  Alcotest.check_raises "bad level"
    (Invalid_argument "Lipsum.repetitive_file: level") (fun () ->
      ignore (Lipsum.repetitive_file t ~level:0 ~size:10))

let test_lipsum_levels_distinct_repetitiveness () =
  (* Higher level => more distinct fragments => larger compressed size
     under LZW-style dictionaries; check via count of distinct 20-grams. *)
  let t = Prng.create ~seed:13 () in
  let distinct_ngrams s =
    let tbl = Hashtbl.create 64 in
    for i = 0 to String.length s - 20 do
      Hashtbl.replace tbl (String.sub s i 20) ()
    done;
    Hashtbl.length tbl
  in
  let f1 = Lipsum.repetitive_file (Prng.copy t) ~level:1 ~size:4000 in
  let f5 = Lipsum.repetitive_file (Prng.copy t) ~level:5 ~size:4000 in
  Alcotest.(check bool) "level 5 less repetitive" true
    (distinct_ngrams f5 > distinct_ngrams f1)

let qcheck_prng_int =
  QCheck.Test.make ~name:"prng int stays in bounds" ~count:200
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let t = Prng.create ~seed () in
      let v = Prng.int t bound in
      v >= 0 && v < bound)

let suite =
  ( "util",
    [
      Alcotest.test_case "prng determinism" `Quick test_prng_deterministic;
      Alcotest.test_case "prng seed sensitivity" `Quick test_prng_seed_sensitivity;
      Alcotest.test_case "prng copy" `Quick test_prng_copy_independent;
      Alcotest.test_case "prng int bounds" `Quick test_prng_int_bounds;
      Alcotest.test_case "prng int invalid" `Quick test_prng_int_invalid;
      Alcotest.test_case "prng float range" `Quick test_prng_float_range;
      Alcotest.test_case "prng byte coverage" `Quick test_prng_byte_coverage;
      Alcotest.test_case "prng gaussian moments" `Quick test_prng_gaussian_moments;
      Alcotest.test_case "prng shuffle" `Quick test_prng_shuffle_permutes;
      Alcotest.test_case "prng lowercase" `Quick test_prng_lowercase;
      Alcotest.test_case "stats mean/stddev" `Quick test_stats_mean_stddev;
      Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
      Alcotest.test_case "stats empty" `Quick test_stats_empty;
      Alcotest.test_case "stats fraction_equal" `Quick test_fraction_equal;
      Alcotest.test_case "stats bit_accuracy" `Quick test_bit_accuracy;
      Alcotest.test_case "confusion matrix" `Quick test_confusion;
      Alcotest.test_case "lipsum sentences" `Quick test_lipsum_words;
      Alcotest.test_case "lipsum size" `Quick test_lipsum_repetitive_size;
      Alcotest.test_case "lipsum level 1 periodic" `Quick test_lipsum_level1_is_periodic;
      Alcotest.test_case "lipsum level bounds" `Quick test_lipsum_level_bounds;
      Alcotest.test_case "lipsum level repetitiveness" `Quick
        test_lipsum_levels_distinct_repetitiveness;
      QCheck_alcotest.to_alcotest qcheck_prng_int;
    ] )
