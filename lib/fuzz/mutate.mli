(** Structure-aware mutation of valid compressed streams.

    Mutators are format-aware in the sense that they know where
    compressed formats keep their load-bearing state: length and count
    fields live in the first bytes (headers) and last bytes (trailers),
    so those regions get a dedicated integer-field mutator alongside the
    classic bit-flip / truncate / splice operators. *)

val mutate : Zipchannel_util.Prng.t -> corpus:bytes array -> bytes -> bytes
(** [mutate rng ~corpus base] applies 1–4 mutation operators to a copy
    of [base].  [corpus] feeds the splice operator.  Never returns
    [base] itself. *)

val operator_names : string list
(** Names of the mutation operators, in selection order (for docs and
    the report). *)
