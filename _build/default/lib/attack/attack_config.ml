module Cache = Zipchannel_cache.Cache
module Timing = Zipchannel_cache.Timing

type t = {
  use_cat : bool;
  use_frame_selection : bool;
  frame_candidates : int;
  background_noise : bool;
  cache_config : Cache.config;
  timing : Timing.t;
  noise_config : Noise.config;
  seed : int;
}

let default =
  {
    use_cat = true;
    use_frame_selection = true;
    frame_candidates = 16;
    background_noise = true;
    cache_config = Cache.default_config;
    (* The attacker pins the core and quiesces interrupts, so timing
       outliers are much rarer than in the general-purpose default. *)
    timing = { Timing.default with Timing.outlier_prob = 0.0005 };
    noise_config = Noise.default_config;
    seed = 0xA77AC4;
  }
