module Lzw = Zipchannel_compress.Lzw
module Obs = Zipchannel_obs.Obs

let m_lzw_resolved = Obs.Metrics.counter "recovery.lzw.resolved"
let m_lzw_repairs = Obs.Metrics.counter "recovery.lzw.repairs"
let m_lzw_candidate_firsts = Obs.Metrics.counter "recovery.lzw.candidate_firsts"
let m_bz_ambiguous = Obs.Metrics.counter "recovery.bzip2.ambiguous"
let m_bz_repaired = Obs.Metrics.counter "recovery.bzip2.repaired"
let h_bz_candidates = Obs.Metrics.histogram "recovery.bzip2.candidates_per_byte"

let line_mask addr = addr land lnot 63

(* ------------------------------------------------------------------ *)
(* Zlib *)

let zlib_observe ~head_base ~ins_h = line_mask (head_base + (ins_h lsl 1))

(* Observable part of ins_h for one window: bits 5..14, from the line
   address of head + ins_h*2 with a line-aligned head. *)
let zlib_known ~head_base obs = ((obs - head_base) lsr 6) land 0x3ff

let zlib_direct_bits ~head_base observed =
  (* ins_h bits 8..9 are bits 3..4 of the middle byte, untouched by the
     xor with its neighbours. *)
  Array.map (fun obs -> (zlib_known ~head_base obs lsr 3) land 0x3) observed

let zlib_recover_lowercase ?(high_bits = 0b011) ~head_base ~n observed =
  if Array.length observed <> max 0 (n - 2) then
    invalid_arg "Recovery.zlib_recover_lowercase: trace length";
  let out = Bytes.make n (Char.chr ((high_bits lsl 5) land 0xff)) in
  let a = high_bits land 0x7 in
  (* known k = ins_h bits 5..14 of window k; layout (from
     ins_h = c_k<<10 ^ c_{k+1}<<5 ^ c_{k+2}, 15-bit mask):
       bits 13..14 = c_k[3..4]
       bits 10..12 = c_k[0..2] ^ c_{k+1}[5..7]
       bits  8..9  = c_{k+1}[3..4]
       bits  5..7  = c_{k+1}[0..2] ^ c_{k+2}[5..7] *)
  for k = 0 to n - 3 do
    let h = zlib_known ~head_base observed.(k) lsl 5 in
    let low3 = ((h lsr 10) land 0x7) lxor a in
    let mid2 = (h lsr 13) land 0x3 in
    let c = (high_bits lsl 5) lor (mid2 lsl 3) lor low3 in
    Bytes.set out k (Char.chr (c land 0xff))
  done;
  (* The penultimate byte is fully visible as the middle byte of the last
     window. *)
  if n >= 3 then begin
    let h = zlib_known ~head_base observed.(n - 3) lsl 5 in
    let low3 = ((h lsr 5) land 0x7) lxor a in
    let mid2 = (h lsr 8) land 0x3 in
    let c = (high_bits lsl 5) lor (mid2 lsl 3) lor low3 in
    Bytes.set out (n - 2) (Char.chr (c land 0xff))
  end;
  out

(* Consecutive windows overlap: ins_h' = ((ins_h << 5) ^ c) & 0x7fff, so
   bits 10-14 of a window's hash equal bits 5-9 of its predecessor's —
   the redundancy the paper's Section V-D uses as error correction.  This
   resolves ambiguous or lost probe windows against their neighbours. *)
let zlib_resolve_candidates ~head_base observations =
  let n = Array.length observations in
  let h_of obs = zlib_known ~head_base obs lsl 5 (* bits 5-14 in place *) in
  let chain_ok prev cur = (cur lsr 10) land 0x1f = (prev lsr 5) land 0x1f in
  let known = Array.make (max 1 n) None in
  Array.iteri
    (fun k cands ->
      match cands with [ obs ] -> known.(k) <- Some (h_of obs) | _ -> ())
    observations;
  (* Two passes let a resolution propagate into a neighbouring hole. *)
  for _ = 1 to 2 do
    Array.iteri
      (fun k cands ->
        if known.(k) = None then begin
          let fits h =
            (match if k > 0 then known.(k - 1) else None with
            | Some prev -> chain_ok prev h
            | None -> true)
            && match if k + 1 < n then known.(k + 1) else None with
               | Some next -> chain_ok h next
               | None -> true
          in
          match List.filter fits (List.map h_of cands) with
          | [ h ] -> known.(k) <- Some h
          | _ -> ()
        end)
      observations
  done;
  Array.map
    (fun h ->
      match h with
      | Some h -> Some (line_mask (head_base + (h lsl 1)))
      | None -> None)
    (if n = 0 then [||] else known)

(* ------------------------------------------------------------------ *)
(* LZW *)

let lzw_observe ~htab_base ~hp = line_mask (htab_base + (hp lsl 3))

(* Observable part of hp: bits 3 and up, from htab entries being 8 bytes
   wide and htab being line-aligned. *)
let lzw_known ~htab_base obs = ((obs - htab_base) lsr 6) lsl 3

let lzw_candidate_firsts ~htab_base observed =
  if Array.length observed = 0 then List.init 8 (fun b -> b)
  else begin
    (* hp_1 = (c << 9) xor ent_0 with ent_0 = first byte < 256: bits 3..7
       of the index are the first byte's bits 3..7. *)
    let hi = lzw_known ~htab_base observed.(0) land 0xf8 in
    List.init 8 (fun b -> hi lor b)
  end

let lzw_recover ~htab_base ~first observed =
  let n = Array.length observed + 1 in
  let out = Bytes.make n (Char.chr (first land 0xff)) in
  let st = Lzw.Stepper.create ~first:(first land 0xff) in
  Array.iteri
    (fun k obs ->
      let hp = lzw_known ~htab_base obs in
      let ent = Lzw.Stepper.ent st in
      let c = ((hp lsr 9) lxor (ent lsr 9)) land 0xff in
      Bytes.set out (k + 1) (Char.chr c);
      ignore (Lzw.Stepper.feed st c))
    observed;
  out

let lzw_consistency ~htab_base ~first observed =
  if Array.length observed = 0 then 1.0
  else begin
    let st = Lzw.Stepper.create ~first:(first land 0xff) in
    let ok = ref 0 in
    Array.iter
      (fun obs ->
        let hp = lzw_known ~htab_base obs in
        let ent = Lzw.Stepper.ent st in
        (* Bits 3..8 of the index come only from ent; a wrong dictionary
           mirror diverges here almost immediately. *)
        if (hp lsr 3) land 0x3f = (ent lsr 3) land 0x3f then incr ok;
        let c = ((hp lsr 9) lxor (ent lsr 9)) land 0xff in
        ignore (Lzw.Stepper.feed st c))
      observed;
    float_of_int !ok /. float_of_int (Array.length observed)
  end

(* The low 3 bits of the first byte sit below the channel's granularity
   and the 8 candidate dictionaries are isomorphic, so no trace statistic
   separates them — the paper enumerates the 2^3 options and picks "the
   most feasible input".  Feasibility here: trace consistency first (kills
   candidates corrupted by noise), then printable-ASCII plausibility of
   the first byte. *)
let lzw_recover_auto ?(jobs = 1) ~htab_base observed =
  let candidates = lzw_candidate_firsts ~htab_base observed in
  let printable b = if b >= 0x20 && b <= 0x7e then 1 else 0 in
  (* Each candidate replays the trace against its own dictionary mirror,
     so the 2^3 scoring passes are independent and fan out over [jobs]
     domains; [map_list] keeps candidate order, so the fold below picks
     the same winner for any [jobs]. *)
  let scored =
    Zipchannel_parallel.Pool.map_list ~jobs
      (fun first ->
        ((lzw_consistency ~htab_base ~first observed, printable first), first))
      candidates
  in
  let best =
    List.fold_left
      (fun (bs, bf) (s, f) -> if s > bs then (s, f) else (bs, bf))
      ((-1.0, -1), 0) scored
  in
  lzw_recover ~htab_base ~first:(snd best) observed

let lzw_recover_from_candidates ~htab_base ~first observations =
  let total = Array.length observations in
  let out = Bytes.make (total + 1) (Char.chr (first land 0xff)) in
  let st = Lzw.Stepper.create ~first:(first land 0xff) in
  let resolved = ref 0 in
  let consistent_of ent cands =
    List.filter
      (fun hp -> (hp lsr 3) land 0x3f = (ent lsr 3) land 0x3f)
      (List.map (fun obs -> lzw_known ~htab_base obs) cands)
  in
  (* Local repair for a lost/ambiguous reading: try every byte value and
     replay a few subsequent readings with a read-only ent simulation
     (dictionary additions inside the window are ignored — they are
     almost never re-looked-up that fast).  A wrong byte trips the
     bits 3-8 prediction almost immediately. *)
  let lookahead = 6 in
  let repair k =
    let horizon = min (k + lookahead) (total - 1) in
    let advance ent c =
      match Lzw.Stepper.probe_hit st ~ent ~c with
      | Some code -> code
      | None -> c
    in
    let score_of c0 =
      let ent = ref (advance (Lzw.Stepper.ent st) c0) in
      let ok = ref 0 in
      for j = k + 1 to horizon do
        match consistent_of !ent observations.(j) with
        | [ hp ] ->
            incr ok;
            ent := advance !ent (((hp lsr 9) lxor (!ent lsr 9)) land 0xff)
        | _ -> ent := advance !ent 0
      done;
      !ok
    in
    let best = ref 0 and best_score = ref (-1) in
    for c = 0 to 255 do
      let s = score_of c in
      if s > !best_score then begin
        best_score := s;
        best := c
      end
    done;
    !best
  in
  Array.iteri
    (fun k cands ->
      let ent = Lzw.Stepper.ent st in
      match consistent_of ent cands with
      | [ hp ] ->
          incr resolved;
          let c = ((hp lsr 9) lxor (ent lsr 9)) land 0xff in
          Bytes.set out (k + 1) (Char.chr c);
          ignore (Lzw.Stepper.feed st c)
      | _ ->
          Obs.Metrics.incr m_lzw_repairs;
          let c = repair k in
          Bytes.set out (k + 1) (Char.chr c);
          ignore (Lzw.Stepper.feed st c))
    observations;
  Obs.Metrics.add m_lzw_resolved !resolved;
  let score =
    if total = 0 then 1.0 else float_of_int !resolved /. float_of_int total
  in
  (out, score)

let lzw_recover_candidates_auto ~htab_base observations =
  Obs.with_span "recovery.lzw"
    ~attrs:[ ("readings", string_of_int (Array.length observations)) ]
  @@ fun () ->
  let firsts =
    (* The first reading's index is (c << 9) xor first-byte, so its low
       eight observable bits pin the first byte's bits 3-7; without a
       clean first reading all 256 values compete on score. *)
    match (if Array.length observations > 0 then observations.(0) else []) with
    | [ obs ] ->
        let hi = lzw_known ~htab_base obs land 0xf8 in
        List.init 8 (fun b -> hi lor b)
    | _ -> List.init 256 (fun b -> b)
  in
  Obs.Metrics.add m_lzw_candidate_firsts (List.length firsts);
  let printable b = if b >= 0x20 && b <= 0x7e then 1 else 0 in
  let best = ref None in
  List.iter
    (fun first ->
      let out, score = lzw_recover_from_candidates ~htab_base ~first observations in
      let key = (score, printable first) in
      match !best with
      | Some (bkey, _) when bkey >= key -> ()
      | _ -> best := Some (key, out))
    firsts;
  match !best with
  | Some (_, out) -> out
  | None -> Bytes.create (Array.length observations + 1)

(* ------------------------------------------------------------------ *)
(* Bzip2 *)

let bzip2_observe ~ftab_base ~j = line_mask (ftab_base + (4 * j))

let bzip2_window ~ftab_base obs =
  let lo = obs - ftab_base in
  let hi = lo + 63 in
  let jmin = if lo <= 0 then 0 else (lo + 3) / 4 in
  let jmax = min 0xffff (if hi < 0 then 0 else hi / 4) in
  (jmin, jmax)

let bzip2_recover_candidates ~ftab_base ~n observed =
  if Array.length observed <> n then
    invalid_arg "Recovery.bzip2_recover: trace length";
  Obs.with_span "recovery.bzip2" ~attrs:[ ("bytes", string_of_int n) ]
  @@ fun () ->
  if Obs.enabled () then
    Array.iter
      (fun cands -> Obs.Metrics.observe h_bz_candidates (List.length cands))
      observed;
  (* Iteration k covers i = n-1-k with index j = x_i << 8 | x_{i+1 mod n};
     each candidate line address of that iteration yields a 16-value j
     window. *)
  let windows_of i =
    List.map (fun obs -> bzip2_window ~ftab_base obs) observed.(n - 1 - i)
  in
  let dedup l = List.sort_uniq compare l in
  let hi_candidates i =
    dedup
      (List.concat_map
         (fun (jmin, jmax) ->
           if jmin lsr 8 = jmax lsr 8 then [ jmin lsr 8 ]
           else [ jmin lsr 8; jmax lsr 8 ])
         (windows_of i))
  in
  let out = Array.make (max 1 n) 0 in
  if n > 0 then begin
    (* Anchor: an iteration with a single clean reading whose window does
       not straddle a high-byte boundary pins its byte exactly. *)
    let anchor = ref (-1) in
    (let i = ref 0 in
     while !anchor < 0 && !i < n do
       (match (windows_of !i, hi_candidates !i) with
       | [ _ ], [ b ] ->
           anchor := !i;
           out.(!i) <- b
       | _ -> ());
       incr i
     done);
    if !anchor < 0 then begin
      anchor := 0;
      out.(0) <- (match hi_candidates 0 with b :: _ -> b | [] -> 0)
    end;
    (* Walk leftwards around the cycle: knowing x_{i+1} exactly, a window
       admits at most one high byte (two admissible j values sharing a low
       byte would differ by 256 > 63).  A spurious candidate window admits
       any high byte with probability only 16/256, so the chain constraint
       doubles as error correction for ambiguous probes (Section V-D). *)
    for step = 1 to n - 1 do
      let i = ((!anchor - step) mod n + n) mod n in
      let next = out.((i + 1) mod n) in
      let admitted =
        dedup
          (List.filter_map
             (fun (jmin, jmax) ->
               let rec try_hi hi =
                 if hi > 255 then None
                 else begin
                   let j = (hi lsl 8) lor next in
                   if j >= jmin && j <= jmax then Some hi else try_hi (hi + 1)
                 end
               in
               try_hi 0)
             (windows_of i))
      in
      out.(i) <-
        (match admitted with
        | [ b ] -> b
        | _ -> (
            (* Conflicting or missing readings: take the raw candidate. *)
            Obs.Metrics.incr m_bz_ambiguous;
            match hi_candidates i with b :: _ -> b | [] -> 0))
    done;
    (* Repair pass: a byte with no reading of its own still appears as the
       exact low byte of the previous iteration's index; with its left
       neighbour resolved its top four bits are pinned — take the middle
       of the remaining range. *)
    for i = 0 to n - 1 do
      if windows_of i = [] then begin
        let prev = ((i - 1) mod n + n) mod n in
        let hi = out.(prev) in
        let candidate =
          List.find_map
            (fun (jmin, jmax) ->
              let lo_at j = j land 0xff in
              let j_lo = max jmin (hi lsl 8) in
              let j_hi = min jmax ((hi lsl 8) lor 0xff) in
              if j_lo <= j_hi && j_lo lsr 8 = hi then
                Some ((lo_at j_lo + lo_at j_hi) / 2)
              else None)
            (windows_of prev)
        in
        match candidate with
        | Some b ->
            Obs.Metrics.incr m_bz_repaired;
            out.(i) <- b
        | None -> ()
      end
    done
  end;
  Bytes.init n (fun i -> Char.chr (out.(i) land 0xff))

let bzip2_recover ~ftab_base ~n observed =
  bzip2_recover_candidates ~ftab_base ~n
    (Array.map (function Some o -> [ o ] | None -> []) observed)
