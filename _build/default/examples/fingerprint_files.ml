(* Identify which file Bzip2 is compressing by Flush+Reload monitoring of
   mainSort/fallbackSort (paper Section VI), with the Fig. 8 graded-
   repetitiveness corpus.

     dune exec examples/fingerprint_files.exe *)

open Zipchannel

let () =
  let ppf = Format.std_formatter in
  let prng = Util.Prng.create ~seed:0xF17E () in
  let files = Attack.Corpus.repetitiveness prng in
  let labels = Array.of_list (List.map fst files) in
  (* Collect noisy traces of each file being compressed. *)
  let per_class = 30 in
  let samples =
    List.concat
      (List.mapi
         (fun cls (name, data) ->
           let segments = Attack.Fingerprint.timeline data in
           Format.fprintf ppf "collecting %d traces of %s@." per_class name;
           List.init per_class (fun _ ->
               ( Attack.Fingerprint.features
                   (Attack.Fingerprint.collect_segments ~prng segments),
                 cls )))
         files)
  in
  let ds =
    Classifier.Dataset.shuffle prng (Classifier.Dataset.make samples)
  in
  let train, test = Classifier.Dataset.split ds ~train_fraction:0.8 in
  let dim = Array.length train.Classifier.Dataset.x.(0) in
  let mlp =
    Classifier.Mlp.create ~layers:[ dim; 32; Array.length labels ] ()
  in
  Classifier.Mlp.train ~epochs:80 mlp ~x:train.Classifier.Dataset.x
    ~y:train.Classifier.Dataset.y;
  let conf = Util.Stats.Confusion.create ~labels in
  Array.iteri
    (fun i x ->
      Util.Stats.Confusion.add conf ~truth:test.Classifier.Dataset.y.(i)
        ~predicted:(Classifier.Mlp.predict mlp x))
    test.Classifier.Dataset.x;
  Format.fprintf ppf "@.confusion matrix (columns = true file):@.%a@."
    Util.Stats.Confusion.pp conf;
  Format.fprintf ppf "accuracy: %.2f (chance %.2f)@."
    (Util.Stats.Confusion.accuracy conf)
    (1.0 /. float_of_int (Array.length labels))
