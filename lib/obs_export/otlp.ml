module Obs = Zipchannel_obs.Obs
module Metrics = Obs.Metrics

(* OTLP/JSON as specified by the OpenTelemetry protocol's canonical JSON
   encoding: 64-bit integers (timestamps, counts, asInt) are strings,
   span/trace ids are lowercase hex.  We emit single-resource,
   single-scope requests. *)

let scope_name = "zipchannel.obs"

let resource =
  Json.Obj
    [
      ( "attributes",
        Json.Arr
          [
            Json.Obj
              [
                ("key", Json.Str "service.name");
                ("value", Json.Obj [ ("stringValue", Json.Str "zipchannel") ]);
              ];
          ] );
    ]

let i64 n = Json.Str (string_of_int n)

(* -- metrics ----------------------------------------------------------- *)

let number_point ?(time_unix_nano = 0) v =
  Json.Obj (("timeUnixNano", i64 time_unix_nano) :: v)

let counter_metric ~time_unix_nano (name, v) =
  Json.Obj
    [
      ("name", Json.Str name);
      ( "sum",
        Json.Obj
          [
            ( "dataPoints",
              Json.Arr [ number_point ~time_unix_nano [ ("asInt", i64 v) ] ] );
            ("aggregationTemporality", Json.Num 2.);
            ("isMonotonic", Json.Bool true);
          ] );
    ]

let gauge_metric ~time_unix_nano (name, v) =
  Json.Obj
    [
      ("name", Json.Str name);
      ( "gauge",
        Json.Obj
          [
            ( "dataPoints",
              Json.Arr
                [ number_point ~time_unix_nano [ ("asDouble", Json.Num v) ] ] );
          ] );
    ]

(* A log2 histogram maps directly onto an OTLP exponential histogram at
   scale 0: our bucket b >= 1 covers (2^(b-1), 2^b], which is OTLP
   positive-bucket index b-1; bucket 0 (v <= 1) becomes the zero bucket
   with zeroThreshold 1. *)
let histogram_metric ~time_unix_nano (name, (hs : Metrics.histogram_snapshot)) =
  let zero_count =
    Option.value ~default:0 (List.assoc_opt 0 hs.buckets)
  in
  let positive = List.filter (fun (b, _) -> b > 0) hs.buckets in
  let point =
    match positive with
    | [] ->
        [
          ("count", i64 hs.count);
          ("sum", Json.Num (float_of_int hs.sum));
          ("scale", Json.Num 0.);
          ("zeroCount", i64 zero_count);
          ("zeroThreshold", Json.Num 1.);
        ]
    | _ ->
        let lo = List.fold_left (fun acc (b, _) -> min acc b) max_int positive in
        let hi = List.fold_left (fun acc (b, _) -> max acc b) 0 positive in
        let dense =
          List.init
            (hi - lo + 1)
            (fun i ->
              i64 (Option.value ~default:0 (List.assoc_opt (lo + i) positive)))
        in
        [
          ("count", i64 hs.count);
          ("sum", Json.Num (float_of_int hs.sum));
          ("scale", Json.Num 0.);
          ("zeroCount", i64 zero_count);
          ("zeroThreshold", Json.Num 1.);
          ( "positive",
            Json.Obj
              [ ("offset", Json.Num (float_of_int (lo - 1)));
                ("bucketCounts", Json.Arr dense);
              ] );
        ]
  in
  Json.Obj
    [
      ("name", Json.Str name);
      ( "exponentialHistogram",
        Json.Obj
          [
            ( "dataPoints",
              Json.Arr [ number_point ~time_unix_nano point ] );
            ("aggregationTemporality", Json.Num 2.);
          ] );
    ]

let metrics_request ?(time_unix_nano = 0) (s : Metrics.snapshot) =
  let metrics =
    List.map (counter_metric ~time_unix_nano) s.counters
    @ List.map (gauge_metric ~time_unix_nano) s.gauges
    @ List.map (histogram_metric ~time_unix_nano) s.histograms
  in
  Json.Obj
    [
      ( "resourceMetrics",
        Json.Arr
          [
            Json.Obj
              [
                ("resource", resource);
                ( "scopeMetrics",
                  Json.Arr
                    [
                      Json.Obj
                        [
                          ("scope", Json.Obj [ ("name", Json.Str scope_name) ]);
                          ("metrics", Json.Arr metrics);
                        ];
                    ] );
              ];
          ] );
    ]

(* -- traces ------------------------------------------------------------ *)

(* The source streams carry no trace id, so we derive a deterministic one
   from the stream's shape (FNV-1a over names and timestamps, two seeds
   for 128 bits).  Same trace file, same ids — golden tests rely on it. *)
let fnv1a seed s =
  let h = ref seed in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let trace_id_of_spans spans =
  let digest =
    String.concat "|"
      (List.map
         (fun (s : Profile.span) -> Printf.sprintf "%s:%d" s.name s.start_ns)
         spans)
  in
  Printf.sprintf "%016Lx%016Lx"
    (fnv1a 0xcbf29ce484222325L digest)
    (fnv1a 0x84222325cbf29ce4L digest)

let attr_str k v =
  Json.Obj
    [ ("key", Json.Str k); ("value", Json.Obj [ ("stringValue", Json.Str v) ]) ]

let attr_int k v =
  Json.Obj
    [ ("key", Json.Str k); ("value", Json.Obj [ ("intValue", i64 v) ]) ]

let span_json ~trace_id (s : Profile.span) =
  let base =
    [
      ("traceId", Json.Str trace_id);
      ("spanId", Json.Str (Printf.sprintf "%016x" s.id));
    ]
  in
  let parent =
    match s.parent with
    | Some p -> [ ("parentSpanId", Json.Str (Printf.sprintf "%016x" p)) ]
    | None -> []
  in
  Json.Obj
    (base @ parent
    @ [
        ("name", Json.Str s.name);
        ("kind", Json.Num 1.);
        ("startTimeUnixNano", i64 s.start_ns);
        ("endTimeUnixNano", i64 s.end_ns);
        ( "attributes",
          Json.Arr
            (attr_int "zipchannel.domain" s.domain
            :: attr_int "zipchannel.depth" s.depth
            :: List.map (fun (k, v) -> attr_str k v) s.attrs) );
      ])

let trace_request events =
  let spans = Profile.spans_of_events events in
  let trace_id = trace_id_of_spans spans in
  Json.Obj
    [
      ( "resourceSpans",
        Json.Arr
          [
            Json.Obj
              [
                ("resource", resource);
                ( "scopeSpans",
                  Json.Arr
                    [
                      Json.Obj
                        [
                          ("scope", Json.Obj [ ("name", Json.Str scope_name) ]);
                          ("spans", Json.Arr (List.map (span_json ~trace_id) spans));
                        ];
                    ] );
              ];
          ] );
    ]

(* -- live collection --------------------------------------------------- *)

let collector () =
  let events = ref [] in
  let sink = Obs.Trace.Custom (fun ev -> events := ev :: !events) in
  let drain () = trace_request (List.rev !events) in
  (sink, drain)
