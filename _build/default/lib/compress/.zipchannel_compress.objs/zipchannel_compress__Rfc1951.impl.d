lib/compress/rfc1951.ml: Array Bitio Buffer Bytes Char Checksum Deflate Huffman List Lz77 String
