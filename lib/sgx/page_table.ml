let page_bits = 12

let page_size = 1 lsl page_bits

(* Revoked pages are kept as a short list of disjoint [lo, hi] vpage
   intervals rather than per-page marks: the controlled-channel state
   machine revokes and restores the same few multi-page regions (ftab is
   64 pages) around every single-stepped instruction, so interval
   insert/remove is a handful of cons cells where per-page hashtable
   marks were 128 hash operations per recovered byte — and the
   accessibility check on the enclave's execution path is a scan of at
   most a few intervals. *)
type t = {
  frames : (int, int) Hashtbl.t; (* vpage -> frame; identity if absent *)
  mutable revoked : (int * int) list; (* disjoint, unordered *)
}

let create () = { frames = Hashtbl.create 64; revoked = [] }

let vpage_of addr = addr lsr page_bits

let map t ~vpage ~frame = Hashtbl.replace t.frames vpage frame

let frame_of t ~vpage =
  match Hashtbl.find_opt t.frames vpage with Some f -> f | None -> vpage

let phys_of t addr =
  let vpage = vpage_of addr in
  (frame_of t ~vpage lsl page_bits) lor (addr land (page_size - 1))

let revoke_interval t lo hi =
  (* Absorb every interval that overlaps or touches [lo, hi]. *)
  let lo = ref lo and hi = ref hi in
  let keep =
    List.filter
      (fun (l, h) ->
        if h + 1 < !lo || l > !hi + 1 then true
        else begin
          if l < !lo then lo := l;
          if h > !hi then hi := h;
          false
        end)
      t.revoked
  in
  t.revoked <- (!lo, !hi) :: keep

let restore_interval t lo hi =
  t.revoked <-
    List.concat_map
      (fun (l, h) ->
        if h < lo || l > hi then [ (l, h) ]
        else
          (if l < lo then [ (l, lo - 1) ] else [])
          @ if h > hi then [ (hi + 1, h) ] else [])
      t.revoked

let protect t ~vpage = revoke_interval t vpage vpage

let unprotect t ~vpage = restore_interval t vpage vpage

let protect_range t ~addr ~size =
  revoke_interval t (vpage_of addr) (vpage_of (addr + max 1 size - 1))

let unprotect_range t ~addr ~size =
  restore_interval t (vpage_of addr) (vpage_of (addr + max 1 size - 1))

let is_accessible t ~vpage =
  let rec ok = function
    | [] -> true
    | (l, h) :: rest -> (vpage < l || vpage > h) && ok rest
  in
  ok t.revoked
