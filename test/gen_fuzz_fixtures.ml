(* Regenerates the committed reproducer fixtures under fixtures/fuzz/.

   Each fixture is a minimized input for one decoder bug fixed during
   the structured-error hardening: before the fix it escaped as
   [Out_of_bits] (or allocated gigabytes); after it, the safe decoder
   returns a structured [Error].  Inputs are minimized with
   [Fuzz.Minimize] against "still rejected with the same reason", so
   the files stay as small as the bug allows.

     dune exec test/gen_fuzz_fixtures.exe -- test/fixtures/fuzz

   The [fuzz fixtures stay fixed] test in test_fuzz.ml replays every
   file in that directory. *)

module Compress = Zipchannel_compress
module Fuzz = Zipchannel_fuzz

let reason_contains needle = function
  | Error (e : Compress.Codec_error.t) ->
      let h = e.reason and n = needle in
      let rec at i =
        if i + String.length n > String.length h then false
        else if String.sub h i (String.length n) = n then true
        else at (i + 1)
      in
      at 0
  | Ok _ -> false

let minimized (codec : Fuzz.Codecs.t) ~reason input =
  let interesting c = reason_contains reason (codec.decode c) in
  if not (interesting input) then
    failwith
      (Printf.sprintf "%s reproducer no longer hits %S" codec.name reason);
  Fuzz.Minimize.minimize ~interesting input

(* Truncation reproducers pin the mid-stream escape (the original bug:
   [Out_of_bits] thrown from inside the decode loop), not the degenerate
   empty input — so the predicate also requires the decoder to have
   consumed bytes before running dry. *)
let truncated (codec : Fuzz.Codecs.t) ~reason plain =
  let packed = codec.compress plain in
  let input = Bytes.sub packed 0 (Bytes.length packed - 1) in
  let interesting c =
    match codec.decode c with
    | Error e as r -> reason_contains reason r && e.offset > 0
    | Ok _ -> false
  in
  if not (interesting input) then
    failwith
      (Printf.sprintf "%s truncation reproducer no longer hits %S" codec.name
         reason);
  Fuzz.Minimize.minimize ~interesting input

let reproducers () =
  let find name = Option.get (Fuzz.Codecs.find name) in
  let plain = Bytes.of_string "the quick brown fox jumps over the lazy dog" in
  [
    (* Out_of_bits escapes on truncated input, per decoder. *)
    (find "lzw", truncated (find "lzw") ~reason:"truncated" plain);
    (find "huffman", truncated (find "huffman") ~reason:"truncated" plain);
    (find "bzip2", truncated (find "bzip2") ~reason:"truncated" plain);
    (find "deflate", truncated (find "deflate") ~reason:"truncated" plain);
    (find "rfc1951", truncated (find "rfc1951") ~reason:"truncated" plain);
    (find "lz4", truncated (find "lz4") ~reason:"truncated" plain);
    (find "snappy", truncated (find "snappy") ~reason:"truncated" plain);
    (* Forged-length decompression bombs. *)
    ( find "lzw",
      minimized (find "lzw") ~reason:"exceeds what the input can encode"
        (Bytes.of_string "\xff\xff\xff\x7f") );
    ( find "huffman",
      minimized (find "huffman") ~reason:"exceeds what the input can encode"
        (let b = Compress.Huffman.encode (Bytes.of_string "hello hello") in
         Bytes.set b 0 '\x7f';
         Bytes.set b 1 '\xff';
         Bytes.set b 2 '\xff';
         Bytes.set b 3 '\xff';
         b) );
    ( find "lz4",
      minimized (find "lz4") ~reason:"exceeds what the input can encode"
        (* 4-byte LE header declaring a 2 GiB block over an empty payload. *)
        (Bytes.of_string "\xff\xff\xff\x7f") );
    ( find "snappy",
      minimized (find "snappy") ~reason:"exceeds what the input can encode"
        (* varint declaring 4 GiB of plaintext over an empty payload. *)
        (Bytes.of_string "\xff\xff\xff\xff\x0f") );
    ( find "bzip2",
      minimized (find "bzip2") ~reason:"block length exceeds maximum"
        (let w = Compress.Bitio.Writer.create () in
         String.iter
           (fun c ->
             Compress.Bitio.Writer.add_bits_msb w ~value:(Char.code c) ~count:8)
           "ZBZ2";
         Compress.Bitio.Writer.add_bits_msb w ~value:0x31 ~count:8;
         Compress.Bitio.Writer.add_bits_msb w ~value:0x7fff ~count:16;
         Compress.Bitio.Writer.add_bits_msb w ~value:0xffff ~count:16;
         Compress.Bitio.Writer.to_bytes w) );
    (* Frame container: truncated stream, forged magic, corrupted
       payload behind an intact per-frame CRC. *)
    (find "frame", truncated (find "frame") ~reason:"truncated" plain);
    ( find "frame",
      minimized (find "frame") ~reason:"bad magic"
        (let b = (find "frame").compress plain in
         Bytes.set b 0 'X';
         b) );
    ( find "frame",
      minimized (find "frame") ~reason:"payload checksum mismatch"
        (let b = (find "frame").compress plain in
         let p = Compress.Frame.header_len + Compress.Frame.frame_header_len in
         Bytes.set b p (Char.chr (Char.code (Bytes.get b p) lxor 0xff));
         b) );
    (* Forged directory entry count. *)
    ( find "archive",
      minimized (find "archive") ~reason:"implausible entry count"
        (let packed =
           Compress.Container.Archive.pack
             [
               {
                 Compress.Container.Archive.name = "a";
                 data = Bytes.of_string "hi";
               };
             ]
         in
         let n = Bytes.length packed in
         Bytes.set packed (n - 8) '\xff';
         Bytes.set packed (n - 7) '\xff';
         Bytes.set packed (n - 6) '\xff';
         Bytes.set packed (n - 5) '\x7f';
         packed) );
  ]

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "fixtures/fuzz" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun ((codec : Fuzz.Codecs.t), input) ->
      let verdict, _ = Fuzz.Oracle.check codec ~budget_ms:0. input in
      (match verdict with
      | Fuzz.Oracle.Rejected _ -> ()
      | v ->
          failwith
            (Printf.sprintf "%s reproducer verdict: %s" codec.name
               (Fuzz.Oracle.verdict_label v)));
      let file =
        Printf.sprintf "%s-rejected-%s.bin" codec.name
          (Fuzz.Report.fnv1a input)
      in
      let path = Filename.concat dir file in
      let oc = open_out_bin path in
      output_bytes oc input;
      close_out oc;
      Printf.printf "%s (%d bytes)\n" path (Bytes.length input))
    (reproducers ())
