lib/taintchannel/aes.ml: Array Buffer Bytes Char Engine Tval Zipchannel_taint
