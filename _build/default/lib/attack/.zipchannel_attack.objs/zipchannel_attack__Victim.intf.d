lib/attack/victim.mli: Event Layout Zipchannel_trace
