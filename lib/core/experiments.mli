(** Reproductions of the paper's evaluation artifacts.

    One function per experiment id of DESIGN.md's index (E1–E13), each
    printing the corresponding figure/number in the paper's shape.  All
    experiments are deterministic in [seed]. *)

type outcome = {
  id : string;
  title : string;
  metrics : (string * float) list;  (** headline measured values *)
}

(** E1–E6 accept [?jobs] (default 1): independent gadget analyses,
    observation passes, and candidate scorings fan out over that many
    domains through {!Zipchannel_taintchannel.Survey} and the
    {!Zipchannel_parallel.Pool}.  Printed output and metrics are
    byte-identical for every [jobs] value. *)

val e1_zlib_gadget : ?seed:int -> ?jobs:int -> Format.formatter -> outcome
(** Fig. 2: TaintChannel report of the Zlib INSERT_STRING store. *)

val e2_lzw_gadget : ?seed:int -> ?jobs:int -> Format.formatter -> outcome
(** Fig. 3: the Ncompress probe gadget and its taint propagation. *)

val e3_bzip2_gadget : ?seed:int -> ?jobs:int -> Format.formatter -> outcome
(** Fig. 4: two consecutive ftab index entries sharing an input byte. *)

val e4_survey : ?seed:int -> ?jobs:int -> Format.formatter -> outcome
(** Section IV survey: per-algorithm gadgets and input coverage, one
    engine per algorithm run across [jobs] domains. *)

val e5_zlib_recovery : ?seed:int -> ?jobs:int -> Format.formatter -> outcome
(** Section IV-B: 25% direct leak on random data; full recovery of
    lowercase text from the simulated cache trace. *)

val e6_lzw_recovery : ?seed:int -> ?jobs:int -> Format.formatter -> outcome
(** Section IV-C: full recovery with 8 first-byte candidates. *)

val e7_sgx_attack : ?seed:int -> ?size:int -> Format.formatter -> outcome
(** Section V-E: the end-to-end SGX attack on random data (default
    10,000 bytes; paper: >99% of bits, <30 s). *)

val e8_sgx_ablations : ?seed:int -> ?size:int -> Format.formatter -> outcome
(** Section V ablations: CAT and frame selection toggled. *)

val e9_sort_control_flow : ?seed:int -> Format.formatter -> outcome
(** Fig. 6: the per-block sorting path for representative files. *)

val e10_fingerprint_corpus :
  ?seed:int -> ?traces_per_file:int -> ?jobs:int -> Format.formatter -> outcome
(** Fig. 7: confusion matrix over the 21-file corpus.  [jobs] (default 1)
    computes the per-file victim timelines on that many domains; metrics
    are identical for every value. *)

val e11_fingerprint_repetitiveness :
  ?seed:int -> ?traces_per_file:int -> ?jobs:int -> Format.formatter -> outcome
(** Fig. 8: confusion matrix over the 5 graded-repetitiveness files.
    [jobs] as in {!e10_fingerprint_corpus}. *)

val e12_aes_validation : ?seed:int -> Format.formatter -> outcome
(** Section III-B: the tool rediscovers the Osvik et al. AES gadget. *)

val e13_memcpy_divergence : Format.formatter -> outcome
(** Section III-B: memcpy's size-dependent control flow via trace
    diffing. *)

val e14_mitigation : ?seed:int -> Format.formatter -> outcome
(** Section VIII: the oblivious (constant-trace) histogram — correctness,
    leak elimination, recovery collapse, and overhead. *)

val e15_timer_stepping : ?seed:int -> ?size:int -> Format.formatter -> outcome
(** Section V-A motivation: timer-interrupt single stepping vs the
    mprotect controlled channel, across timer jitters. *)

val e16_tool_comparison : ?seed:int -> Format.formatter -> outcome
(** Section III / VII-A2: a trace-correlation baseline detects the same
    gadget locations but cannot produce the input-to-address
    computation. *)

val e17_lzw_sgx_attack : ?seed:int -> ?size:int -> Format.formatter -> outcome
(** Section IV-C taken end-to-end: the Ncompress extraction mounted
    through the same SGX controlled channel as E7, on text and random
    data. *)

val e18_zlib_sgx_attack : ?seed:int -> ?size:int -> Format.formatter -> outcome
(** Section IV-B taken end-to-end: the Zlib extraction mounted through
    the SGX controlled channel, on lowercase text (full recovery) and
    random data (the unconditional 2-bit leak). *)

val e19_memcomp_oracle : ?seed:int -> ?jobs:int -> Format.formatter -> outcome
(** The field's OS-level sequel to E7: a simulated ZRAM-style
    page-compression store where attacker data is groomed into the same
    4-KiB page as a secret, probed first through the exact
    compressed-size (ratio) oracle and then through the noisy swap-latency
    (timing) oracle of {!Zipchannel_attack.Memcomp}; reports per-byte and
    chained recovery, channel capacity, and the MLP match/non-match
    classifier's held-out accuracy. *)

val ids : string list
(** ["E1"; ...; "E19"], the valid inputs to {!run}. *)

val run :
  ?seed:int -> ?jobs:int -> id:string -> Format.formatter -> outcome option
(** Run one experiment by id (case-insensitive), wrapped in an
    [experiment.<id>] span.  [None] for an unknown id.  [jobs] reaches
    the experiments that accept it.  This is the dispatch point shared
    by bench and both CLIs. *)

val all :
  ?seed:int -> ?jobs:int -> Format.formatter -> outcome list
(** Run E1–E19 in order.  [jobs] is passed to the experiments that
    support it; every metric is identical for any value.  With
    {!Zipchannel_obs.Obs.Progress} enabled, prints one progress line per
    completed experiment. *)
