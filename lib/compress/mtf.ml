let initial_order () = Array.init 256 (fun i -> i)

let move_to_front order pos =
  let v = order.(pos) in
  Array.blit order 0 order 1 pos;
  order.(0) <- v

(* Explicit in-order loops on both sides: the recency list is mutated by
   every step, and [Array.init]/[Bytes.init] do not guarantee the order
   they apply the closure in. *)
let encode_sub ?arena input ~off ~len =
  let order = initial_order () in
  let out =
    match arena with
    | Some a -> Zipchannel_buf.Arena.ints a ~slot:7 len
    | None -> Array.make len 0
  in
  for i = 0 to len - 1 do
    let c = Char.code (Bytes.get input (off + i)) in
    let pos = ref 0 in
    while order.(!pos) <> c do incr pos done;
    move_to_front order !pos;
    out.(i) <- !pos
  done;
  out

let encode input = encode_sub input ~off:0 ~len:(Bytes.length input)

let decode_result symbols =
  let bad = ref (-1) in
  let n = Array.length symbols in
  (try
     for i = 0 to n - 1 do
       let s = symbols.(i) in
       if s < 0 || s > 255 then begin
         bad := i;
         raise Exit
       end
     done
   with Exit -> ());
  if !bad >= 0 then
    Codec_error.error ~codec:"mtf" ~offset:!bad "Mtf.decode: symbol out of range"
  else begin
    let order = initial_order () in
    let out = Bytes.create n in
    for i = 0 to n - 1 do
      let pos = symbols.(i) in
      let c = order.(pos) in
      move_to_front order pos;
      Bytes.set out i (Char.chr c)
    done;
    Ok out
  end

let decode symbols =
  match decode_result symbols with
  | Ok out -> out
  | Error e -> invalid_arg e.Codec_error.reason
