(** Dataset bookkeeping for the fingerprinting experiments: deterministic
    shuffling and the paper's train/evaluation/test split. *)

type t = { x : float array array; y : int array }

val make : (float array * int) list -> t

val shuffle : Zipchannel_util.Prng.t -> t -> t

val split : t -> train_fraction:float -> t * t
(** Leading fraction to the first component.  Samples are taken in the
    dataset's current order — shuffle first. *)

val features_of_bools : bool array array -> float array
(** Flatten an [n x m] boolean trace matrix into floats (row-major),
    1.0 for a cache hit. *)

val downsample : bins:int -> bool array -> float array
(** Pool a long boolean trace into [bins] hit-fraction buckets — the
    dimensionality reduction applied before the classifier. *)
