let encode input =
  let n = Bytes.length input in
  let out = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    let c = Bytes.get input !i in
    let run = ref 1 in
    while !i + !run < n && !run < 255 && Bytes.get input (!i + !run) = c do
      incr run
    done;
    if !run >= 4 then begin
      for _ = 1 to 4 do Buffer.add_char out c done;
      Buffer.add_char out (Char.chr (!run - 4));
      i := !i + !run
    end
    else begin
      for _ = 1 to !run do Buffer.add_char out c done;
      i := !i + !run
    end
  done;
  Buffer.to_bytes out

let decode_result input =
  let n = Bytes.length input in
  let out = Buffer.create n in
  let i = ref 0 in
  Codec_error.protect ~codec:"rle1" ~offset:(fun () -> !i) @@ fun () ->
  while !i < n do
    let c = Bytes.get input !i in
    (* Detect an encoded run: four equal bytes followed by a count. *)
    if !i + 3 < n
       && Bytes.get input (!i + 1) = c
       && Bytes.get input (!i + 2) = c
       && Bytes.get input (!i + 3) = c
    then begin
      if !i + 4 >= n then failwith "Rle1.decode: truncated run";
      let extra = Char.code (Bytes.get input (!i + 4)) in
      for _ = 1 to 4 + extra do Buffer.add_char out c done;
      i := !i + 5
    end
    else begin
      Buffer.add_char out c;
      incr i
    end
  done;
  Buffer.to_bytes out

let decode input = Codec_error.unwrap (decode_result input)
