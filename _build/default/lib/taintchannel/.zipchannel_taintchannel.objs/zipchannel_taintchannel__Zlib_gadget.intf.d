lib/taintchannel/zlib_gadget.mli: Engine
