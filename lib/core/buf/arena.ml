(* Reusable scratch buffers for the block pipelines.

   An arena is a table of numbered slots, each holding one buffer that
   grows monotonically and is never freed: a pipeline stage asks for
   "slot k, at least n bytes" and gets back the same buffer on every
   block, resized (to the next power of two) only when a block outgrows
   it.  Buffer contents beyond what the caller wrote are stale garbage
   from earlier blocks — every consumer must carry explicit lengths.

   Arenas are single-owner and carry no locks.  [with_arena] hands out
   per-domain arenas from a domain-local free list, so each worker of
   the [lib/parallel] pool reuses its own scratch across the blocks it
   claims and two domains never share one; nested [with_arena] calls
   get distinct arenas. *)

type t = {
  mutable bytes_slots : bytes array;
  mutable int_slots : int array array;
  mutable big_slots : Bigstring.t array;
}

let create () =
  { bytes_slots = [||]; int_slots = [||]; big_slots = [||] }

let round_up n =
  let c = ref 16 in
  while !c < n do c := !c * 2 done;
  !c

let ensure_slots arr ~slot ~empty =
  let cur = Array.length arr in
  if slot < cur then arr
  else begin
    let grown = Array.make (max (slot + 1) (2 * max 1 cur)) empty in
    Array.blit arr 0 grown 0 cur;
    grown
  end

let bytes t ~slot len =
  if slot < 0 || len < 0 then invalid_arg "Arena.bytes";
  t.bytes_slots <- ensure_slots t.bytes_slots ~slot ~empty:Bytes.empty;
  let b = t.bytes_slots.(slot) in
  if Bytes.length b >= len then b
  else begin
    let b = Bytes.create (round_up len) in
    t.bytes_slots.(slot) <- b;
    b
  end

let ints t ~slot len =
  if slot < 0 || len < 0 then invalid_arg "Arena.ints";
  t.int_slots <- ensure_slots t.int_slots ~slot ~empty:[||];
  let a = t.int_slots.(slot) in
  if Array.length a >= len then a
  else begin
    let a = Array.make (round_up len) 0 in
    t.int_slots.(slot) <- a;
    a
  end

let big t ~slot len =
  if slot < 0 || len < 0 then invalid_arg "Arena.big";
  t.big_slots <- ensure_slots t.big_slots ~slot ~empty:(Bigstring.create 0);
  let b = t.big_slots.(slot) in
  if Bigstring.length b >= len then b
  else begin
    let b = Bigstring.create (round_up len) in
    t.big_slots.(slot) <- b;
    b
  end

let pool_key : t list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let with_arena f =
  let pool = Domain.DLS.get pool_key in
  let arena =
    match !pool with
    | [] -> create ()
    | a :: rest ->
        pool := rest;
        a
  in
  Fun.protect
    ~finally:(fun () -> pool := arena :: !pool)
    (fun () -> f arena)
