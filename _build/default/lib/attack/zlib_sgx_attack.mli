(** End-to-end controlled-channel attack on Zlib's hash insertion in an
    enclave.

    Completes the set: the paper's Listing 1 gadget — the
    [head\[ins_h\] = pos] store of deflate's INSERT_STRING — observed
    through the same machinery as the Bzip2 and LZW attacks (mprotect
    single stepping over the window and [head], page-fault page numbers,
    {!Page_channel} Prime+Probe for in-page offsets).

    What the channel yields per window is bits 5–14 of [ins_h]
    (Section IV-B): unconditionally the two middle bits of every input
    byte, and the whole input under a known-plaintext-class assumption
    ({!Recovery.zlib_recover_lowercase}). *)

type result = {
  recovered : bytes;  (** under the lowercase-class assumption *)
  byte_accuracy : float;
  direct_bits_accuracy : float;
      (** fraction of windows whose unconditional 2-bit leak read
          correctly — meaningful for any input class *)
  lost_readings : int;
  faults : int;
  frame_remaps : int;
}

val head_base : int
(** Base of the victim's [head] array (page-aligned, as zlib's allocation
    is). *)

val window_base : int

val program : bytes -> Zipchannel_trace.Event.t array
(** The INSERT_STRING loop's access sequence: the rolling-hash byte read
    and the tainted-address store, per 3-byte window. *)

val run :
  ?config:Attack_config.t -> ?high_bits:int -> bytes -> result
(** Attack one buffer; [high_bits] is the plaintext-class assumption for
    full recovery (default 0b011, lowercase ASCII). *)
