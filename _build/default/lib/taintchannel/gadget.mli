(** A cache side-channel leakage gadget found by TaintChannel: a memory
    access whose address carries input taint. *)

open Zipchannel_taint

type kind = Load | Store

type t = {
  location : string;  (** module!function+offset, as the tool reports *)
  code_addr : int;  (** simulated instruction address *)
  mnemonic : string;
  kind : kind;
  size : int;  (** access width in bytes *)
  count : int;  (** number of tainted occurrences *)
  tags : Tagset.t;  (** union of input bytes ever appearing in the address *)
  example_addr : Tval.t;  (** the first tainted address value, with taint *)
  first_seq : int;  (** instruction sequence number of first occurrence *)
}

val coverage : t -> input_length:int -> float
(** Fraction of the input bytes whose taint reached this gadget's address —
    the paper's "leaks the entire input" check is [coverage = 1.0]. *)

val pp : Format.formatter -> t -> unit
(** Renders the gadget in the report format of the paper's Fig. 2: header
    line, instruction line, and the per-bit taint grid of the address
    operand. *)
