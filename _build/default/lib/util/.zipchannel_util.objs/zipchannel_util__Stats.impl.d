lib/util/stats.ml: Array Bytes Char Format String
