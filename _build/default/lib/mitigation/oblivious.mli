(** Constant-access-pattern ("oblivious") variants of the leaking
    compression primitives — the paper's Section VIII mitigation
    direction, made concrete.

    The cache channel observes which 64-byte lines are touched.  These
    variants therefore sweep {e every} line of the secret-indexed table on
    each logical access and perform the real update at the matching entry
    (whose sub-line offset is invisible); the line-granular trace is a
    fixed sequence independent of the data.  The price is the full-table
    sweep per access, quantified by the E14 experiment and the bench
    suite. *)

val lines_of_table : entries:int -> entry_size:int -> int
(** Number of 64-byte lines covering a table. *)

val histogram : bytes -> int array
(** Constant-trace replacement for Bzip2's Listing 3 loop: the same
    [Block_sort.ftab_size] frequency table, but every iteration touches
    every line of the table exactly once. *)

val histogram_line_trace : bytes -> int array
(** The sequence of table line indices a cache attacker observes during
    {!histogram} — by construction a function of the input {e length}
    only.  (Test hook; production code does not expose its own trace.) *)

val lookup : table:int array -> int -> int
(** Oblivious array read: returns [table.(i)] while touching every line
    of [table] (entries are one [int], 8 bytes, each line holds 8).
    @raise Invalid_argument when the index is out of bounds. *)

val store_pack : bytes -> bytes
(** The paper's "only known complete defense": don't compress.  A stored
    (identity) container with a length header, for drop-in use where a
    compressed stream was expected. *)

val store_unpack : bytes -> bytes
(** @raise Failure on malformed framing. *)
