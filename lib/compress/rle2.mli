(** Bzip2's second-stage encoding: zero-run coding of MTF output.

    Runs of zeroes (the dominant MTF symbol after BWT) are written in
    bijective base 2 using the two symbols RUNA and RUNB; every other MTF
    symbol [s] is shifted to [s + 1].  The resulting alphabet is
    [0 .. 257] with 257 reserved for the end-of-block marker appended by
    {!encode}. *)

val runa : int
(** = 0 *)

val runb : int
(** = 1 *)

val eob : int
(** = 257, always the final symbol of {!encode}'s output. *)

val alphabet_size : int
(** = 258 *)

val encode : int array -> int array
(** MTF symbols (0..255) to the RLE2 alphabet, EOB-terminated. *)

val encode_sub :
  ?arena:Zipchannel_buf.Arena.t -> int array -> len:int -> int array * int
(** [encode_sub symbols ~len] is {!encode} of the prefix
    [symbols.(0 .. len - 1)], returned as [(buffer, n_syms)]: the first
    [n_syms] entries of [buffer] are the encoded stream.  With [arena]
    the buffer is the arena's int slot 8, overwritten by the next encode
    using the same arena. *)

val default_max_output : int
(** The default decoded-length cap: [max_int / 4], i.e. effectively
    unlimited while still leaving headroom so the run accumulator cannot
    overflow. *)

val decode_result :
  ?max_output:int -> int array -> (int array, Codec_error.t) result
(** Safe inverse of {!encode}; input must be EOB-terminated.
    [max_output] (default {!default_max_output}) bounds the decoded
    length: zero-run digits grow the pending run geometrically, so a few
    dozen adversarial symbols can demand 2^60 zeros — the cap rejects
    such streams before anything is materialised.  The [Error] offset is
    the index of the offending symbol. *)

val decode : ?max_output:int -> int array -> int array
(** [Codec_error.unwrap] of {!decode_result}.
    @raise Failure on malformed input. *)
