(* The taint plane of a value is stored trimmed: [taint] has at most
   [width] entries and every bit at index [>= Array.length taint] is
   implicitly untainted.  Compression-hash values keep taint only in
   their low (masked) bits, so trimming cuts both the allocation that
   the engine's log retains (the former fixed [width]-sized arrays were
   mostly empty slots) and the per-bit work of every operation.  The
   canonical untainted plane is the shared [| |]; taint arrays are never
   mutated after construction, so operations share operand arrays
   whenever the result plane is identical (zero-extension, one-sided
   unions, zero shifts). *)
type t = { width : int; value : int; taint : Tagset.t array }

let check_width width =
  if width < 1 || width > 63 then invalid_arg "Tval: width must be in 1..63"

let mask_of width = if width = 63 then max_int else (1 lsl width) - 1

let no_taint : Tagset.t array = [||]

let width t = t.width
let value t = t.value

(* Taint of bit [i], honouring the implicit-empty tail. *)
let taint_at taint i =
  if i < Array.length taint then Array.unsafe_get taint i else Tagset.empty

let taint t i =
  if i < 0 || i >= t.width then invalid_arg "Tval.taint: bit out of range";
  taint_at t.taint i

let const ~width v =
  check_width width;
  { width; value = v land mask_of width; taint = no_taint }

let input_byte ~tag v =
  { width = 8;
    value = v land 0xff;
    taint = Array.make 8 (Tagset.singleton tag) }

let with_taint ~width v assoc =
  check_width width;
  let taint = Array.make width Tagset.empty in
  List.iter
    (fun (i, tags) ->
      if i < 0 || i >= width then invalid_arg "Tval.with_taint: bit";
      taint.(i) <- tags)
    assoc;
  { width; value = v land mask_of width; taint }

let is_tainted t = Array.exists (fun s -> not (Tagset.is_empty s)) t.taint

let tainted_bits t =
  let acc = ref [] in
  for i = Array.length t.taint - 1 downto 0 do
    if not (Tagset.is_empty t.taint.(i)) then acc := (i, t.taint.(i)) :: !acc
  done;
  !acc

let tags t =
  let acc = ref Tagset.empty in
  for i = 0 to Array.length t.taint - 1 do
    let s = Array.unsafe_get t.taint i in
    if not (Tagset.is_empty s) then acc := Tagset.union !acc s
  done;
  !acc

(* Widening never copies: the trimmed plane already describes the new
   high bits as untainted. *)
let zero_extend ~width t =
  check_width width;
  if width < t.width then invalid_arg "Tval.zero_extend: narrower than input";
  if width = t.width then t else { width; value = t.value; taint = t.taint }

let truncate ~width t =
  check_width width;
  if width >= t.width then zero_extend ~width t
  else
    { width;
      value = t.value land mask_of width;
      taint =
        (if Array.length t.taint <= width then t.taint
         else Array.sub t.taint 0 width) }

(* Bring two operands to a common width before a binary operation, as the
   instruction-level tool sees same-width register operands. *)
let align a b =
  let w = max a.width b.width in
  (zero_extend ~width:w a, zero_extend ~width:w b)

(* Per-bit union of two trimmed planes, sharing an operand array when the
   other side carries no taint. *)
let union_taint ta tb =
  let la = Array.length ta and lb = Array.length tb in
  if la = 0 || ta == tb then tb
  else if lb = 0 then ta
  else begin
    let l = min la lb and m = max la lb in
    let out = Array.make m Tagset.empty in
    for i = 0 to l - 1 do
      Array.unsafe_set out i
        (Tagset.union (Array.unsafe_get ta i) (Array.unsafe_get tb i))
    done;
    let src = if la > lb then ta else tb in
    Array.blit src l out l (m - l);
    out
  end

let merge_bitwise op a b =
  let a, b = align a b in
  { width = a.width;
    value = op a.value b.value land mask_of a.width;
    taint = union_taint a.taint b.taint }

let logxor a b = merge_bitwise ( lxor ) a b

let logor a b = merge_bitwise ( lor ) a b

(* The paper's special rule for [and]: a tainted value masked by an
   untainted one keeps its taint only where the mask bit is 1.  The rule is
   applied symmetrically; where both sides are tainted the taints merge. *)
let logand a b =
  let a, b = align a b in
  let la = Array.length a.taint and lb = Array.length b.taint in
  let m = max la lb in
  let taint =
    if m = 0 then no_taint
    else begin
      let out = Array.make m Tagset.empty in
      for i = 0 to m - 1 do
        let ta = taint_at a.taint i and tb = taint_at b.taint i in
        let from_a =
          if (b.value lsr i) land 1 = 1 || not (Tagset.is_empty tb) then ta
          else Tagset.empty
        in
        let from_b =
          if (a.value lsr i) land 1 = 1 || not (Tagset.is_empty ta) then tb
          else Tagset.empty
        in
        Array.unsafe_set out i (Tagset.union from_a from_b)
      done;
      out
    end
  in
  { width = a.width; value = a.value land b.value; taint }

(* add/sub follow the paper's multi-source rule: per-bit merge of source
   taint.  TaintChannel does not model carry chains (its Fig. 2/4 renderings
   show bit-exact provenance), and neither do we. *)
let add a b =
  let a, b = align a b in
  { width = a.width;
    value = (a.value + b.value) land mask_of a.width;
    taint = union_taint a.taint b.taint }

let sub a b =
  let a, b = align a b in
  { width = a.width;
    value = (a.value - b.value) land mask_of a.width;
    taint = union_taint a.taint b.taint }

let shift_left t k =
  if k < 0 then invalid_arg "Tval.shift_left: negative amount";
  let w = t.width in
  let la = Array.length t.taint in
  let taint =
    if k = 0 || la = 0 then t.taint
    else if k >= w then no_taint
    else begin
      let n = min la (w - k) in
      let out = Array.make (n + k) Tagset.empty in
      Array.blit t.taint 0 out k n;
      out
    end
  in
  { t with value = (t.value lsl k) land mask_of w; taint }

let shift_right_logical t k =
  if k < 0 then invalid_arg "Tval.shift_right_logical: negative amount";
  let la = Array.length t.taint in
  let taint =
    if k = 0 then t.taint
    else if k >= la then no_taint
    else Array.sub t.taint k (la - k)
  in
  { t with value = t.value lsr k; taint }

let shift_right_arith t k =
  if k < 0 then invalid_arg "Tval.shift_right_arith: negative amount";
  let w = t.width in
  let la = Array.length t.taint in
  let sign_bit = w - 1 in
  let sign_set = (t.value lsr sign_bit) land 1 = 1 in
  let sign_taint = taint_at t.taint sign_bit in
  let taint =
    if k = 0 then t.taint
    else if Tagset.is_empty sign_taint then
      if k >= la then no_taint else Array.sub t.taint k (la - k)
    else begin
      (* A tainted sign implies the plane reaches the top bit (la = w). *)
      let out = Array.make w Tagset.empty in
      let kept = w - min k w in
      Array.blit t.taint (min k w) out 0 kept;
      Array.fill out kept (w - kept) sign_taint;
      out
    end
  in
  let value =
    if sign_set then
      (t.value lsr k) lor (mask_of w lxor mask_of (max 1 (w - k)))
    else t.value lsr k
  in
  { t with value = value land mask_of w; taint }

let mul_pow2 t k = shift_left t k

let equal a b =
  a.width = b.width && a.value = b.value
  &&
  let la = Array.length a.taint and lb = Array.length b.taint in
  let rec same i m =
    i >= m
    || (Tagset.equal (taint_at a.taint i) (taint_at b.taint i)
       && same (i + 1) m)
  in
  same 0 (max la lb)

let pp ppf t =
  Format.fprintf ppf "0x%x/%d" t.value t.width;
  List.iter
    (fun (i, tags) -> Format.fprintf ppf " b%d:%a" i Tagset.pp tags)
    (tainted_bits t)
