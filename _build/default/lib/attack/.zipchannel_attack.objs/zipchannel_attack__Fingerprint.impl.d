lib/attack/fingerprint.ml: Array List Prng Zipchannel_cache Zipchannel_classifier Zipchannel_compress Zipchannel_util
