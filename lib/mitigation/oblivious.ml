module Block_sort = Zipchannel_compress.Block_sort

let line_bytes = 64

let lines_of_table ~entries ~entry_size =
  ((entries * entry_size) + line_bytes - 1) / line_bytes

(* ftab entries are 4 bytes: 16 per line. *)
let ftab_entries_per_line = line_bytes / 4

let ftab_lines =
  lines_of_table ~entries:Block_sort.ftab_size ~entry_size:4

(* One constant-trace pass: touch every line once, performing the real
   increment inside the line that holds [j].  Reading and rewriting a slot
   of every other line keeps the (line-granular) write set identical for
   every j.  The touched line indices are recorded, in order, as 2-byte
   little-endian entries into [trace] starting at byte [pos] — a buffer
   the caller sizes up front, so recording is two stores per line instead
   of Buffer growth machinery. *)
let sweep_increment ~trace ~pos ftab j =
  let jline = j / ftab_entries_per_line in
  for line = 0 to ftab_lines - 1 do
    let base = line * ftab_entries_per_line in
    let p = pos + (2 * line) in
    Bytes.unsafe_set trace p (Char.unsafe_chr (line land 0xff));
    Bytes.unsafe_set trace (p + 1) (Char.unsafe_chr ((line lsr 8) land 0xff));
    if jline = line then ftab.(j) <- ftab.(j) + 1
    else begin
      let keep = ftab.(base) in
      ftab.(base) <- keep
    end
  done

let histogram_traced block =
  let ftab = Array.make Block_sort.ftab_size 0 in
  let indices = Block_sort.ftab_indices block in
  (* Every pass touches exactly [ftab_lines] lines, so the whole trace is
     [ftab_lines * passes] entries and can be preallocated. *)
  let n = ftab_lines * Array.length indices in
  let trace = Bytes.create (2 * n) in
  Array.iteri
    (fun pass j -> sweep_increment ~trace ~pos:(2 * ftab_lines * pass) ftab j)
    indices;
  ( ftab,
    Array.init n (fun k ->
        Char.code (Bytes.get trace (2 * k))
        lor (Char.code (Bytes.get trace ((2 * k) + 1)) lsl 8)) )

let histogram block = fst (histogram_traced block)

let histogram_line_trace block = snd (histogram_traced block)

let lookup ~table i =
  let n = Array.length table in
  if i < 0 || i >= n then invalid_arg "Oblivious.lookup: index";
  (* 8-byte entries: 8 per line. *)
  let per_line = line_bytes / 8 in
  let lines = (n + per_line - 1) / per_line in
  let result = ref 0 in
  for line = 0 to lines - 1 do
    let base = line * per_line in
    let probe = table.(min (n - 1) base) in
    (* Constant-time select: accumulate the wanted entry without a
       data-dependent branch on which line to read. *)
    let here = i / per_line = line in
    let v = if here then table.(i) else probe in
    let mask = if here then -1 else 0 in
    result := !result lor (v land mask)
  done;
  !result

let store_magic = "ZST1"

let store_pack data =
  let buf = Buffer.create (Bytes.length data + 8) in
  Buffer.add_string buf store_magic;
  let n = Bytes.length data in
  for k = 0 to 3 do
    Buffer.add_char buf (Char.chr ((n lsr (8 * k)) land 0xff))
  done;
  Buffer.add_bytes buf data;
  Buffer.to_bytes buf

let store_unpack data =
  if Bytes.length data < 8 then failwith "Oblivious.store_unpack: too short";
  if Bytes.sub_string data 0 4 <> store_magic then
    failwith "Oblivious.store_unpack: bad magic";
  let n = ref 0 in
  for k = 3 downto 0 do
    n := (!n lsl 8) lor Char.code (Bytes.get data (4 + k))
  done;
  if Bytes.length data <> 8 + !n then
    failwith "Oblivious.store_unpack: length mismatch";
  Bytes.sub data 8 !n
