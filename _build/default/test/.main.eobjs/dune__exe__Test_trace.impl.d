test/test_trace.ml: Alcotest Event Format Layout Zipchannel_trace
