(** Per-metric regression gating for [bench --compare].

    Each metric name is classified by first-matching-prefix rule into a
    threshold class: [Exact] (deterministic counters — any change is a
    regression), [Band pct] (cache/timing-coupled — may move up to
    [pct]% either direction), or [Ignore] (run-count/order dependent —
    no signal).  Wall time ([ns_per_run]) is gated separately on maximum
    increase, and can be disabled for noisy CI runners. *)

type klass = Exact | Band of float | Ignore

type rule = { bench : string; prefix : string; klass : klass }
(** A rule applies when the benchmark name starts with [bench] ([""]
    matches every benchmark) and the metric name starts with [prefix].
    Bench scoping lets a counter that is deterministic in one benchmark
    be ignored in another whose fixture accumulates across runs. *)

type rules = {
  metric_rules : rule list;  (** Checked in order; first match wins. *)
  ns_max_increase_pct : float option;
}

val classify : rules -> ?bench:string -> string -> klass
(** Class of a metric, observed under benchmark [bench] (default [""]).
    Defaults to [Exact] when no rule matches. *)

val default_rules : rules

val rules_of_json : Json.t -> rules
(** Parse a thresholds file:
    [{"ns_per_run_max_increase_pct": 25,
      "metrics": [{"bench": "cache/", "prefix": "cache.", "class": "ignore"},
                  {"prefix": "cache.", "class": "band", "pct": 50},
                  {"prefix": "", "class": "exact"}]}]
    The ["bench"] scope is optional and defaults to every benchmark; a
    [null] (or absent) ns limit disables wall-time gating.
    @raise Failure on malformed rules. *)

val load : string -> rules
(** @raise Json.Parse_error @raise Failure @raise Sys_error *)

type regression = {
  bench : string;
  metric : string;
  baseline : float;
  current : float;
  change_pct : float;
      (** [+inf] when baseline was 0; [-inf] when the metric vanished. *)
  allowed : klass;
}

val compare_metrics :
  rules ->
  bench:string ->
  baseline:(string * float) list ->
  current:(string * float) list ->
  regression list
(** Check every baseline metric against the current run.  A non-[Ignore]
    metric missing from the current run is a regression; metrics new in
    the current run are not (they need a baseline refresh, not a gate).
    [Exact] compares with relative tolerance 1e-9 to absorb JSON
    round-tripping. *)

val check_ns :
  rules -> bench:string -> baseline:float -> current:float -> regression option

val pp_regression : Format.formatter -> regression -> unit

type mover = {
  span : string;
  baseline_share : float;  (** self-time share in the baseline run, % *)
  current_share : float;  (** self-time share in the current run, % *)
  delta_pt : float;  (** [current_share -. baseline_share], points *)
}

val profile_movers :
  baseline:(string * int) list ->
  current:(string * int) list ->
  mover list
(** Forensics for a fired [ns_per_run] gate: given per-span self-sample
    counts from the baseline and current sampled profiles, normalise
    each side to self-time shares and rank spans by absolute share
    movement (descending; ties by name).  Spans present on only one
    side count as 0% on the other.  Empty when either profile has no
    samples. *)

val pp_mover : Format.formatter -> mover -> unit
(** [span deflate.compress self-share 31.0% -> 52.4% (+21.4pt)]. *)
