test/test_taint.ml: Alcotest List QCheck QCheck_alcotest Render Str_search Tagset Tval Zipchannel_taint
