lib/compress/rle1.ml: Buffer Bytes Char
