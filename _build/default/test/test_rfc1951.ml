open Zipchannel_util
open Zipchannel_compress

let prng () = Prng.create ~seed:0x1951 ()

let bytes_testable =
  Alcotest.testable
    (fun ppf b -> Format.fprintf ppf "%d bytes" (Bytes.length b))
    Bytes.equal

let roundtrip ?kind name input =
  Alcotest.check bytes_testable name input
    (Rfc1951.inflate (Rfc1951.deflate ?kind input))

let test_roundtrip_dynamic () =
  let t = prng () in
  roundtrip "empty" Bytes.empty;
  roundtrip "single" (Bytes.of_string "q");
  roundtrip "text"
    (Bytes.of_string (Lipsum.repetitive_file t ~level:4 ~size:8000));
  roundtrip "random" (Prng.bytes t 6000);
  roundtrip "runs" (Bytes.make 5000 '\000')

let test_roundtrip_fixed () =
  let t = prng () in
  roundtrip ~kind:Rfc1951.Fixed "fixed text"
    (Bytes.of_string (Lipsum.paragraph t));
  roundtrip ~kind:Rfc1951.Fixed "fixed empty" Bytes.empty;
  roundtrip ~kind:Rfc1951.Fixed "fixed random" (Prng.bytes t 3000)

let test_roundtrip_stored () =
  let t = prng () in
  roundtrip ~kind:Rfc1951.Stored "stored" (Prng.bytes t 1000);
  roundtrip ~kind:Rfc1951.Stored "stored empty" Bytes.empty;
  (* Multiple stored blocks: above the 65535 per-block limit. *)
  roundtrip ~kind:Rfc1951.Stored "stored 100k" (Prng.bytes t 100_000)

let test_compresses_text () =
  let t = prng () in
  let text = Bytes.of_string (Lipsum.repetitive_file t ~level:3 ~size:20_000) in
  let enc = Rfc1951.deflate text in
  Alcotest.(check bool) "dynamic block compresses" true
    (Bytes.length enc < Bytes.length text / 3)

let test_malformed_rejected () =
  let expect_failure name data =
    match Rfc1951.inflate data with
    | _ -> Alcotest.failf "%s: should have failed" name
    | exception Failure _ -> ()
  in
  expect_failure "empty stream" Bytes.empty;
  expect_failure "reserved block type" (Bytes.of_string "\x07");
  expect_failure "truncated stored" (Bytes.of_string "\x01\x0a\x00")

let test_stored_length_check () =
  (* Corrupt NLEN of a stored block. *)
  let enc = Rfc1951.deflate ~kind:Rfc1951.Stored (Bytes.of_string "data") in
  let bad = Bytes.copy enc in
  Bytes.set bad 3 (Char.chr (Char.code (Bytes.get bad 3) lxor 0xff));
  match Rfc1951.inflate bad with
  | _ -> Alcotest.fail "should reject bad NLEN"
  | exception Failure _ -> ()

(* ------------------------------------------------------------------ *)
(* Interop fixtures produced by Python's zlib/gzip (see test/fixtures). *)

let fixture name ext =
  let path = Printf.sprintf "fixtures/%s.%s" name ext in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> Bytes.of_string (really_input_string ic (in_channel_length ic)))

let fixture_names = [ "empty"; "single"; "text"; "random2k"; "runs" ]

let test_inflate_zlib_streams () =
  List.iter
    (fun name ->
      Alcotest.check bytes_testable ("inflate " ^ name) (fixture name "plain")
        (Rfc1951.inflate (fixture name "deflate")))
    fixture_names

let test_unzlib_streams () =
  List.iter
    (fun name ->
      Alcotest.check bytes_testable ("unzlib " ^ name) (fixture name "plain")
        (Rfc1951.Zlib.decompress (fixture name "zlib")))
    fixture_names

let test_gunzip_streams () =
  List.iter
    (fun name ->
      Alcotest.check bytes_testable ("gunzip " ^ name) (fixture name "plain")
        (Rfc1951.Gzip.decompress (fixture name "gz")))
    fixture_names

(* ------------------------------------------------------------------ *)
(* Wrappers *)

let test_zlib_wrapper () =
  let t = prng () in
  let data = Prng.bytes t 4000 in
  Alcotest.check bytes_testable "roundtrip" data
    (Rfc1951.Zlib.decompress (Rfc1951.Zlib.compress data));
  let enc = Rfc1951.Zlib.compress data in
  Alcotest.(check int) "CMF is 0x78" 0x78 (Char.code (Bytes.get enc 0));
  Alcotest.(check int) "header check" 0
    (((Char.code (Bytes.get enc 0) * 256) + Char.code (Bytes.get enc 1)) mod 31)

let test_zlib_wrapper_corruption () =
  let enc = Rfc1951.Zlib.compress (Bytes.of_string "payload payload") in
  let bad = Bytes.copy enc in
  let last = Bytes.length bad - 1 in
  Bytes.set bad last (Char.chr (Char.code (Bytes.get bad last) lxor 1));
  match Rfc1951.Zlib.decompress bad with
  | _ -> Alcotest.fail "adler mismatch should fail"
  | exception Failure _ -> ()

let test_gzip_wrapper () =
  let t = prng () in
  let data = Prng.bytes t 4000 in
  let enc = Rfc1951.Gzip.compress ~name:"secret.bin" data in
  Alcotest.check bytes_testable "roundtrip" data (Rfc1951.Gzip.decompress enc);
  Alcotest.(check (option string)) "fname field" (Some "secret.bin")
    (Rfc1951.Gzip.original_name enc);
  let anon = Rfc1951.Gzip.compress data in
  Alcotest.(check (option string)) "no fname" None
    (Rfc1951.Gzip.original_name anon)

let test_gzip_wrapper_corruption () =
  let enc = Rfc1951.Gzip.compress (Bytes.of_string "payload payload") in
  let bad = Bytes.copy enc in
  let pos = Bytes.length bad - 6 in
  Bytes.set bad pos (Char.chr (Char.code (Bytes.get bad pos) lxor 1));
  match Rfc1951.Gzip.decompress bad with
  | _ -> Alcotest.fail "crc/size mismatch should fail"
  | exception Failure _ -> ()

let qcheck_rfc1951 =
  QCheck.Test.make ~name:"rfc1951 dynamic roundtrip" ~count:120
    QCheck.(string_of_size QCheck.Gen.(0 -- 3000))
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal b (Rfc1951.inflate (Rfc1951.deflate b)))

let qcheck_rfc1951_fixed =
  QCheck.Test.make ~name:"rfc1951 fixed roundtrip" ~count:80
    QCheck.(string_of_size QCheck.Gen.(0 -- 2000))
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal b (Rfc1951.inflate (Rfc1951.deflate ~kind:Rfc1951.Fixed b)))

let qcheck_gzip =
  QCheck.Test.make ~name:"gzip wrapper roundtrip" ~count:60
    QCheck.(string_of_size QCheck.Gen.(0 -- 2000))
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal b (Rfc1951.Gzip.decompress (Rfc1951.Gzip.compress b)))

let qcheck_inflate_robust =
  QCheck.Test.make ~name:"inflate never crashes on garbage" ~count:300
    QCheck.(string_of_size QCheck.Gen.(0 -- 300))
    (fun s ->
      match Rfc1951.inflate (Bytes.of_string s) with
      | _ -> true
      | exception Failure _ -> true)

let suite =
  ( "rfc1951",
    [
      Alcotest.test_case "dynamic roundtrips" `Quick test_roundtrip_dynamic;
      Alcotest.test_case "fixed roundtrips" `Quick test_roundtrip_fixed;
      Alcotest.test_case "stored roundtrips" `Quick test_roundtrip_stored;
      Alcotest.test_case "compresses text" `Quick test_compresses_text;
      Alcotest.test_case "malformed rejected" `Quick test_malformed_rejected;
      Alcotest.test_case "stored length check" `Quick test_stored_length_check;
      Alcotest.test_case "inflate python streams" `Quick test_inflate_zlib_streams;
      Alcotest.test_case "unzlib python streams" `Quick test_unzlib_streams;
      Alcotest.test_case "gunzip python streams" `Quick test_gunzip_streams;
      Alcotest.test_case "zlib wrapper" `Quick test_zlib_wrapper;
      Alcotest.test_case "zlib corruption" `Quick test_zlib_wrapper_corruption;
      Alcotest.test_case "gzip wrapper" `Quick test_gzip_wrapper;
      Alcotest.test_case "gzip corruption" `Quick test_gzip_wrapper_corruption;
      QCheck_alcotest.to_alcotest qcheck_rfc1951;
      QCheck_alcotest.to_alcotest qcheck_rfc1951_fixed;
      QCheck_alcotest.to_alcotest qcheck_gzip;
      QCheck_alcotest.to_alcotest qcheck_inflate_robust;
    ] )
