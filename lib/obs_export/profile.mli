(** Offline span-stream profiler: rebuilds the span tree from a JSONL
    trace (per-domain stack replay of begin/end events) and aggregates
    wall/self time per span name, plus folded stacks for flamegraphs. *)

type span = {
  id : int;  (** 1-based, in begin-event order — stable across runs. *)
  parent : int option;  (** [id] of the enclosing span on the same domain. *)
  name : string;
  domain : int;
  depth : int;
  start_ns : int;
  end_ns : int;
  dur_ns : int;
  self_ns : int;  (** [dur_ns] minus time spent in direct children. *)
  attrs : (string * string) list;
}

val spans_of_events : Zipchannel_obs.Obs.Trace.span_event list -> span list
(** Replay a stream in emission order.  Nesting is tracked per domain, so
    interleaved events from concurrent domains reconstruct correctly.
    End events with no matching begin become root spans (front-truncated
    trace); begins with no end are dropped (tail-truncated). *)

type agg = {
  a_name : string;
  count : int;
  total_ns : int;
  a_self_ns : int;
  p50_ns : int;  (** Exact percentile over this name's span durations. *)
  p95_ns : int;
  max_ns : int;
}

val aggregate : span list -> agg list
(** Per-name rollup, sorted by self time descending. *)

val folded_stacks : span list -> (string * int) list
(** Flamegraph folded format: ["domain-0;outer;inner", self_ns] pairs,
    self-time-weighted, aggregated over identical paths. *)

val pp_folded : Format.formatter -> (string * int) list -> unit
val pp_table : Format.formatter -> agg list -> unit
