(** An SGX enclave executing a fixed memory-access program.

    The enclave's data accesses go to the shared cache (physically
    addressed through the attacker-controlled page table).  When an access
    touches a protected page, execution stops with a fault that reveals
    only the page-aligned virtual address — SGX masks the low 12 bits from
    the OS, exactly the leak granularity of the controlled channel.  After
    the handler restores access, the faulted access retries. *)

type fault = {
  page_addr : int;  (** faulting virtual address with the offset masked *)
  kind : Zipchannel_trace.Event.kind;
}

type outcome =
  | Done  (** program finished *)
  | Fault of fault  (** pc not advanced; access will retry *)
  | Executed  (** one access performed (contents hidden from the OS) *)

type t

val create :
  ?cos:int ->
  program:Zipchannel_trace.Event.t array ->
  page_table:Page_table.t ->
  cache:Zipchannel_cache.Cache.t ->
  unit ->
  t

val step : t -> outcome

val run_to_fault : t -> outcome
(** Step until [Fault] or [Done]. *)

val run_steps : t -> int -> bool
(** Execute up to [k] access attempts in one tight loop over the
    precompiled flat program — a timer window.  Returns [true] if the
    program finished within the window.  Equivalent to [k] calls to
    {!step} with fault outcomes ignored (a faulting access does not
    advance and would fault again on every remaining attempt). *)

val pc : t -> int

val finished : t -> bool

val executed_count : t -> int
(** Number of accesses performed — the "instruction counter" used by
    tests; a real attacker does not see it. *)
