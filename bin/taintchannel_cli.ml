(* taintchannel: run the TaintChannel analysis against one of the built-in
   targets and print the gadget report.

     taintchannel -t zlib -n 4096
     taintchannel -t bzip2 -f secret.bin
     taintchannel -t aes
     taintchannel -t all -j 4
     taintchannel -t memcpy *)

open Cmdliner
open Zipchannel

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let input_bytes file size seed =
  match file with
  | Some path -> Bytes.of_string (read_file path)
  | None ->
      let prng = Util.Prng.create ~seed () in
      Util.Prng.bytes prng size

let aes_key = Bytes.of_string "0123456789abcdef"

let run target file size seed jobs () =
  let ppf = Format.std_formatter in
  let input () = input_bytes file size seed in
  let report_engine name run =
    let engine = Obs.with_span ("taintchannel." ^ name) run in
    Taintchannel.Engine.report ppf engine;
    Taintchannel.Engine.observe_metrics engine
  in
  match target with
  | "zlib" ->
      report_engine "zlib" (fun () -> Taintchannel.Zlib_gadget.run (input ()));
      `Ok ()
  | "ncompress" | "lzw" ->
      report_engine "lzw" (fun () -> Taintchannel.Lzw_gadget.run (input ()));
      `Ok ()
  | "bzip2" ->
      report_engine "bzip2" (fun () -> Taintchannel.Bzip2_gadget.run (input ()));
      `Ok ()
  | "lz4" ->
      report_engine "lz4" (fun () -> Taintchannel.Lz4_gadget.run (input ()));
      `Ok ()
  | "snappy" ->
      report_engine "snappy" (fun () ->
          Taintchannel.Snappy_gadget.run (input ()));
      `Ok ()
  | "aes" ->
      report_engine "aes" (fun () ->
          Taintchannel.Aes.run_taint ~key:aes_key (input ()));
      `Ok ()
  | "all" ->
      (* One case per gadget target over the same input, analysed on
         [jobs] domains; the merged report is byte-identical for any
         [jobs] because cases are independent and order-stable. *)
      let data = input () in
      let open Taintchannel.Survey in
      report ~jobs ppf
        [
          case Zlib data;
          case Lzw data;
          case Bzip2 data;
          case Lz4 data;
          case Snappy data;
          case (Aes { key = aes_key }) data;
        ];
      `Ok ()
  | "memcpy" ->
      let t1 = Taintchannel.Memcpy_model.trace ~size in
      let t2 = Taintchannel.Memcpy_model.trace ~size:(size + 1) in
      (match Taintchannel.Trace_diff.compare_traces t1 t2 with
      | Some r ->
          Format.fprintf ppf "%a@." Taintchannel.Trace_diff.pp_report r
      | None -> Format.fprintf ppf "no divergence@.");
      `Ok ()
  | other -> `Error (false, "unknown target: " ^ other)

let target =
  let doc =
    "Analysis target: zlib, ncompress, bzip2, lz4, snappy, aes, all or memcpy."
  in
  Arg.(value & opt string "bzip2" & info [ "t"; "target" ] ~docv:"TARGET" ~doc)

let file =
  let doc = "Input file to analyze (default: random data)." in
  Arg.(value & opt (some file) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)

let size =
  let doc = "Size of the generated random input in bytes." in
  Arg.(value & opt int 4096 & info [ "n"; "size" ] ~docv:"BYTES" ~doc)

let seed =
  let doc = "PRNG seed for generated input." in
  Arg.(value & opt int 0xDECAF & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let jobs =
  Obs_cli.jobs_arg
    ~doc:
      "Number of domains for the multi-target survey (-t all); 0 means \
       all available cores.  Reports are byte-identical for any value."

let cmd =
  let doc = "detect cache side-channel gadgets in compression code" in
  let info = Cmd.info "taintchannel" ~doc in
  Cmd.v info
    Term.(ret (const run $ target $ file $ size $ seed $ jobs $ Obs_cli.flags))

let () = exit (Cmd.eval cmd)
