(** Prometheus text exposition (version 0.0.4) of a metric snapshot.
    Names are prefixed [zipchannel_] with dots mapped to underscores;
    counters get the [_total] suffix; log2 histograms become classic
    cumulative histograms with [le] boundaries at powers of two. *)

val sanitize : string -> string
(** Replace every character outside [[a-zA-Z0-9_]] with [_]. *)

val metric_name : string -> string
(** [metric_name "taint.gadget_hits"] is ["zipchannel_taint_gadget_hits"]. *)

val label_name : string -> string
(** {!sanitize}, then guarantees a valid label name: never empty, never
    starting with a digit (prefixed [_] if it would). *)

val escape_help : string -> string
(** Escape a [# HELP] text per the exposition format: [\\] and newline. *)

val escape_label_value : string -> string
(** Escape a label value: [\\], newline, and the double quote. *)

val exposition : Zipchannel_obs.Obs.Metrics.snapshot -> string
