(* A gadget survey: independent (target, input) analysis cases fanned out
   over the Domain pool.  Each case builds its own engine, so workers
   share nothing mutable; [Pool.map_list] returns results in input order,
   which makes the merged report a deterministic function of the case
   list alone — byte-identical for any [jobs]. *)

type target = Zlib | Lzw | Bzip2 | Lz4 | Snappy | Aes of { key : bytes }

type case = { label : string; target : target; input : bytes }

let case ?label target input =
  let label =
    match label with
    | Some l -> l
    | None -> (
        match target with
        | Zlib -> "zlib"
        | Lzw -> "lzw"
        | Bzip2 -> "bzip2"
        | Lz4 -> "lz4"
        | Snappy -> "snappy"
        | Aes _ -> "aes")
  in
  { label; target; input }

module Obs = Zipchannel_obs.Obs

let m_cases = Obs.Metrics.counter "survey.cases"

let run_case c =
  Obs.with_span "survey.case"
    ~attrs:
      [
        ("target", c.label);
        ("input_bytes", string_of_int (Bytes.length c.input));
      ]
    (fun () ->
      let engine =
        match c.target with
        | Zlib -> Zlib_gadget.run c.input
        | Lzw -> Lzw_gadget.run c.input
        | Bzip2 -> Bzip2_gadget.run c.input
        | Lz4 -> Lz4_gadget.run c.input
        | Snappy -> Snappy_gadget.run c.input
        | Aes { key } -> Aes.run_taint ~key c.input
      in
      Obs.Metrics.incr m_cases;
      Engine.observe_metrics engine;
      engine)

let run ?(jobs = 1) cases =
  Obs.with_span "survey.run"
    ~attrs:[ ("cases", string_of_int (List.length cases)) ]
    (fun () ->
      Zipchannel_parallel.Pool.map_list ~jobs (fun c -> (c, run_case c)) cases)

let report ?jobs ppf cases =
  List.iter
    (fun (c, engine) ->
      Format.fprintf ppf "== %s ==@." c.label;
      Engine.report ppf engine)
    (run ?jobs cases)
