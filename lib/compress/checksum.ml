module Crc32 = struct
  type t = int (* current remainder, pre-inversion *)

  let table =
    lazy
      (Array.init 256 (fun n ->
           let c = ref n in
           for _ = 1 to 8 do
             if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
             else c := !c lsr 1
           done;
           !c))

  (* Slicing-by-8: [tables.(k).(b)] is the CRC of byte [b] followed by
     [k] zero bytes, so one 64-bit load plus eight table lookups advance
     the remainder eight bytes — same polynomial, same values as the
     byte-at-a-time loop, ~5x the throughput.  This is the checksum the
     frame layer runs over every plaintext and payload byte, so it sits
     on the streaming hot path. *)
  let tables =
    lazy
      (let t = Lazy.force table in
       let m = Array.make_matrix 8 256 0 in
       for n = 0 to 255 do
         m.(0).(n) <- t.(n);
         let c = ref t.(n) in
         for k = 1 to 7 do
           c := t.(!c land 0xff) lxor (!c lsr 8);
           m.(k).(n) <- !c
         done
       done;
       m)

  let init = 0xFFFFFFFF

  let feed_byte t b =
    let table = Lazy.force table in
    table.((t lxor b) land 0xff) lxor (t lsr 8)

  let feed_sub t data ~off ~len =
    if off < 0 || len < 0 || off + len > Bytes.length data then
      invalid_arg "Checksum.Crc32.feed_sub";
    let m = Lazy.force tables in
    let t0 = m.(0) and t1 = m.(1) and t2 = m.(2) and t3 = m.(3) in
    let t4 = m.(4) and t5 = m.(5) and t6 = m.(6) and t7 = m.(7) in
    let acc = ref t in
    let i = ref off in
    let stop = off + len in
    while !i + 8 <= stop do
      (* in bounds by the loop guard; little-endian per Bigstring *)
      let w = Zipchannel_buf.Bigstring.bytes_get64u data !i in
      let lo = !acc lxor (Int64.to_int w land 0xFFFFFFFF) in
      let hi = Int64.to_int (Int64.shift_right_logical w 32) land 0xFFFFFFFF in
      acc :=
        Array.unsafe_get t7 (lo land 0xff)
        lxor Array.unsafe_get t6 ((lo lsr 8) land 0xff)
        lxor Array.unsafe_get t5 ((lo lsr 16) land 0xff)
        lxor Array.unsafe_get t4 (lo lsr 24)
        lxor Array.unsafe_get t3 (hi land 0xff)
        lxor Array.unsafe_get t2 ((hi lsr 8) land 0xff)
        lxor Array.unsafe_get t1 ((hi lsr 16) land 0xff)
        lxor Array.unsafe_get t0 (hi lsr 24);
      i := !i + 8
    done;
    while !i < stop do
      acc :=
        Array.unsafe_get t0 ((!acc lxor Char.code (Bytes.unsafe_get data !i)) land 0xff)
        lxor (!acc lsr 8);
      incr i
    done;
    !acc

  let feed_bytes t data = feed_sub t data ~off:0 ~len:(Bytes.length data)

  let value t = t lxor 0xFFFFFFFF

  let digest data = value (feed_bytes init data)

  let digest_sub data ~off ~len = value (feed_sub init data ~off ~len)
end

module Adler32 = struct
  type t = { a : int; b : int }

  let modulus = 65521

  let init = { a = 1; b = 0 }

  let feed_byte t byte =
    let a = (t.a + byte) mod modulus in
    { a; b = (t.b + a) mod modulus }

  let feed_bytes t data =
    let acc = ref t in
    Bytes.iter (fun c -> acc := feed_byte !acc (Char.code c)) data;
    !acc

  let value t = (t.b lsl 16) lor t.a

  let digest data = value (feed_bytes init data)
end
