(* Bit I/O on the zero-copy substrate.  Writers emit into a growable
   bigstring (off-heap, no [Buffer] re-allocation churn) and splice
   aligned streams with a single word-at-a-time blit; readers stay
   zero-copy over the caller's [bytes] and gather up to eight bytes per
   call with one unaligned 64-bit load.  The produced byte streams and
   every observable reader state (values, [Out_of_bits] positions) are
   bit-identical to [Bitio_ref], the retained reference implementation
   the differential suite pins this module against. *)

module Bigstring = Zipchannel_buf.Bigstring

external bswap64 : int64 -> int64 = "%bswap_int64"

module Writer = struct
  type t = {
    mutable data : Bigstring.t;
    mutable len : int; (* whole bytes emitted *)
    mutable acc : int; (* pending bits, right-aligned, MSB emitted first *)
    mutable nbits : int; (* number of pending bits, 0..7 between calls *)
  }

  let create () = { data = Bigstring.create 256; len = 0; acc = 0; nbits = 0 }

  let ensure t extra =
    let need = t.len + extra in
    let cap = Bigstring.length t.data in
    if need > cap then begin
      let cap' = ref (max 256 (2 * cap)) in
      while !cap' < need do cap' := !cap' * 2 done;
      let d = Bigstring.create !cap' in
      Bigstring.blit t.data ~src_off:0 d ~dst_off:0 ~len:t.len;
      t.data <- d
    end

  (* Emit every whole byte held in [acc], leaving 0..7 pending bits.
     Callers add at most 30 bits, so at most 4 bytes spill per call. *)
  let flush_whole_bytes t =
    if t.nbits >= 8 then begin
      ensure t 8;
      while t.nbits >= 8 do
        Bigstring.unsafe_set t.data t.len
          (Char.unsafe_chr ((t.acc lsr (t.nbits - 8)) land 0xff));
        t.len <- t.len + 1;
        t.nbits <- t.nbits - 8
      done;
      t.acc <- t.acc land ((1 lsl t.nbits) - 1)
    end

  let add_bit t b =
    t.acc <- (t.acc lsl 1) lor (if b then 1 else 0);
    t.nbits <- t.nbits + 1;
    if t.nbits = 8 then begin
      ensure t 1;
      Bigstring.unsafe_set t.data t.len (Char.unsafe_chr t.acc);
      t.len <- t.len + 1;
      t.acc <- 0;
      t.nbits <- 0
    end

  let add_bits_msb t ~value ~count =
    if count < 0 || count > 30 then invalid_arg "Bitio.add_bits_msb: count";
    if value lsr count <> 0 then invalid_arg "Bitio.add_bits_msb: value too wide";
    t.acc <- (t.acc lsl count) lor value;
    t.nbits <- t.nbits + count;
    flush_whole_bytes t

  let add_bits_lsb t ~value ~count =
    if count < 0 || count > 30 then invalid_arg "Bitio.add_bits_lsb: count";
    if value lsr count <> 0 then invalid_arg "Bitio.add_bits_lsb: value too wide";
    (* Reverse the [count] bits, then append MSB-first. *)
    let rev = ref 0 in
    let v = ref value in
    for _ = 1 to count do
      rev := (!rev lsl 1) lor (!v land 1);
      v := !v lsr 1
    done;
    t.acc <- (t.acc lsl count) lor !rev;
    t.nbits <- t.nbits + count;
    flush_whole_bytes t

  let align_byte t =
    if t.nbits <> 0 then begin
      ensure t 1;
      Bigstring.unsafe_set t.data t.len
        (Char.unsafe_chr (t.acc lsl (8 - t.nbits)));
      t.len <- t.len + 1;
      t.acc <- 0;
      t.nbits <- 0
    end

  let bit_length t = (8 * t.len) + t.nbits

  let append t src =
    (* Append every bit of [src] (which stays usable) to [t].  With [t]
       byte-aligned this is one block blit; otherwise each source byte
       is spliced in O(1). *)
    if t.nbits = 0 then begin
      ensure t src.len;
      Bigstring.blit src.data ~src_off:0 t.data ~dst_off:t.len ~len:src.len;
      t.len <- t.len + src.len
    end
    else
      for i = 0 to src.len - 1 do
        add_bits_msb t
          ~value:(Char.code (Bigstring.unsafe_get src.data i))
          ~count:8
      done;
    if src.nbits > 0 then add_bits_msb t ~value:src.acc ~count:src.nbits

  let to_bytes t =
    if t.nbits = 0 then Bigstring.to_bytes t.data ~off:0 ~len:t.len
    else begin
      let b = Bytes.create (t.len + 1) in
      Bigstring.blit_to_bytes t.data ~src_off:0 b ~dst_off:0 ~len:t.len;
      Bytes.set b t.len (Char.chr (t.acc lsl (8 - t.nbits)));
      b
    end
end

module Lsb_writer = struct
  type t = {
    mutable data : Bigstring.t;
    mutable len : int;
    mutable acc : int; (* pending bits, bit 0 = next stream position *)
    mutable nbits : int;
  }

  let create () = { data = Bigstring.create 256; len = 0; acc = 0; nbits = 0 }

  let ensure t extra =
    let need = t.len + extra in
    let cap = Bigstring.length t.data in
    if need > cap then begin
      let cap' = ref (max 256 (2 * cap)) in
      while !cap' < need do cap' := !cap' * 2 done;
      let d = Bigstring.create !cap' in
      Bigstring.blit t.data ~src_off:0 d ~dst_off:0 ~len:t.len;
      t.data <- d
    end

  let flush_bytes t =
    if t.nbits >= 8 then begin
      ensure t 8;
      while t.nbits >= 8 do
        Bigstring.unsafe_set t.data t.len (Char.unsafe_chr (t.acc land 0xff));
        t.len <- t.len + 1;
        t.acc <- t.acc lsr 8;
        t.nbits <- t.nbits - 8
      done
    end

  let add_bits t ~value ~count =
    if count < 0 || count > 24 then invalid_arg "Bitio.Lsb_writer.add_bits: count";
    if value lsr count <> 0 then
      invalid_arg "Bitio.Lsb_writer.add_bits: value too wide";
    t.acc <- t.acc lor (value lsl t.nbits);
    t.nbits <- t.nbits + count;
    flush_bytes t

  let add_huffman t ~code ~length =
    (* RFC 1951: Huffman codes are packed most significant bit first, so
       reverse before the LSB-first append. *)
    let rev = ref 0 in
    let v = ref code in
    for _ = 1 to length do
      rev := (!rev lsl 1) lor (!v land 1);
      v := !v lsr 1
    done;
    add_bits t ~value:!rev ~count:length

  let align_byte t =
    if t.nbits > 0 then begin
      ensure t 1;
      Bigstring.unsafe_set t.data t.len (Char.unsafe_chr (t.acc land 0xff));
      t.len <- t.len + 1;
      t.acc <- 0;
      t.nbits <- 0
    end

  let to_bytes t =
    if t.nbits = 0 then Bigstring.to_bytes t.data ~off:0 ~len:t.len
    else begin
      let b = Bytes.create (t.len + 1) in
      Bigstring.blit_to_bytes t.data ~src_off:0 b ~dst_off:0 ~len:t.len;
      Bytes.set b t.len (Char.chr (t.acc land 0xff));
      b
    end
end

module Lsb_reader = struct
  (* Zero-copy over the caller's buffer: [limit] is the first bit past
     the readable slice, so [create ~start ~len] reads exactly the bits
     of [Bytes.sub data start len] without the copy. *)
  type t = { data : bytes; mutable pos : int; limit : int (* bits *) }

  exception Out_of_bits

  let create ?(start = 0) ?len data =
    if start < 0 then invalid_arg "Bitio.Lsb_reader.create: start";
    let n = Bytes.length data in
    let len =
      match len with
      | None -> max 0 (n - start)
      | Some l ->
          if l < 0 || start + l > n then
            invalid_arg "Bitio.Lsb_reader.create: len";
          l
    in
    { data; pos = 8 * start; limit = 8 * (start + len) }

  let read_bit t =
    if t.pos >= t.limit then raise Out_of_bits;
    let byte = Char.code (Bytes.unsafe_get t.data (t.pos lsr 3)) in
    let bit = (byte lsr (t.pos land 7)) land 1 in
    t.pos <- t.pos + 1;
    bit = 1

  let read_bits t count =
    if count < 0 || count > 24 then invalid_arg "Bitio.Lsb_reader.read_bits";
    if count = 0 then 0
    else begin
      if t.pos + count > t.limit then begin
        (* The per-bit reference consumed every remaining bit before
           noticing the shortfall; preserve that observable position. *)
        t.pos <- t.limit;
        raise Out_of_bits
      end;
      let byte0 = t.pos lsr 3 and bit = t.pos land 7 in
      t.pos <- t.pos + count;
      if byte0 + 8 <= Bytes.length t.data then
        (* One unaligned little-endian load covers the 0..31 bits
           needed; bits past the slice are shifted or masked away. *)
        Int64.to_int
          (Int64.shift_right_logical (Bigstring.bytes_get64u t.data byte0) bit)
        land ((1 lsl count) - 1)
      else begin
        let nbytes = (bit + count + 7) lsr 3 in
        let w = ref 0 in
        for k = nbytes - 1 downto 0 do
          w := (!w lsl 8) lor Char.code (Bytes.unsafe_get t.data (byte0 + k))
        done;
        (!w lsr bit) land ((1 lsl count) - 1)
      end
    end

  let align_byte t = if t.pos land 7 <> 0 then t.pos <- (t.pos lor 7) + 1

  let byte_position t = t.pos lsr 3

  let bits_remaining t = max 0 (t.limit - t.pos)
end

module Reader = struct
  type t = { data : bytes; mutable pos : int; limit : int (* bits *) }

  exception Out_of_bits

  let create ?(start = 0) ?len data =
    if start < 0 then invalid_arg "Bitio.Reader.create: start";
    let n = Bytes.length data in
    let len =
      match len with
      | None -> max 0 (n - start)
      | Some l ->
          if l < 0 || start + l > n then invalid_arg "Bitio.Reader.create: len";
          l
    in
    { data; pos = 8 * start; limit = 8 * (start + len) }

  let read_bit t =
    if t.pos >= t.limit then raise Out_of_bits;
    let byte = Char.code (Bytes.unsafe_get t.data (t.pos lsr 3)) in
    let bit = (byte lsr (7 - (t.pos land 7))) land 1 in
    t.pos <- t.pos + 1;
    bit = 1

  let read_bits_msb t count =
    if count < 0 || count > 30 then invalid_arg "Bitio.read_bits_msb: count";
    if count = 0 then 0
    else begin
      if t.pos + count > t.limit then begin
        t.pos <- t.limit;
        raise Out_of_bits
      end;
      let byte0 = t.pos lsr 3 and bit = t.pos land 7 in
      t.pos <- t.pos + count;
      if byte0 + 8 <= Bytes.length t.data then
        (* One unaligned load, byte-swapped so the first byte in memory
           is most significant, mirroring the MSB-first stream order. *)
        let w = bswap64 (Bigstring.bytes_get64u t.data byte0) in
        Int64.to_int (Int64.shift_right_logical w (64 - bit - count))
        land ((1 lsl count) - 1)
      else begin
        let nbytes = (bit + count + 7) lsr 3 in
        let w = ref 0 in
        for k = 0 to nbytes - 1 do
          w := (!w lsl 8) lor Char.code (Bytes.unsafe_get t.data (byte0 + k))
        done;
        (!w lsr ((8 * nbytes) - bit - count)) land ((1 lsl count) - 1)
      end
    end

  let read_bits_lsb t count =
    if count < 0 || count > 30 then invalid_arg "Bitio.read_bits_lsb: count";
    (* Stream order is the same as [read_bits_msb]; only the assembly order
       of the result differs, so gather then bit-reverse. *)
    let msb = read_bits_msb t count in
    let v = ref 0 and m = ref msb in
    for _ = 1 to count do
      v := (!v lsl 1) lor (!m land 1);
      m := !m lsr 1
    done;
    !v

  let align_byte t = if t.pos land 7 <> 0 then t.pos <- (t.pos lor 7) + 1

  let bits_remaining t = max 0 (t.limit - t.pos)

  let byte_position t = t.pos lsr 3
end
