lib/compress/container.ml: Bitio Buffer Bytes Char Checksum Deflate List Printf String
