(** The Flush+Reload fingerprinting attack on Bzip2 (paper Section VI).

    The attacker maps libbz2 into its own address space and monitors the
    cache lines holding the entry points of [mainSort] and
    [fallbackSort].  While the victim compresses a file, the attacker
    records one hit/miss pair per round; the resulting 2xN boolean trace
    reflects the sorting control flow of Fig. 6 — which function ran, for
    how long, and when the compressor abandoned mainSort — and a
    classifier identifies the file from it. *)

type config = {
  samples : int;  (** monitoring rounds (the paper uses 10,000) *)
  work_per_sample : int;  (** victim sort-work units per round *)
  bins : int;  (** downsampling bins per monitored line *)
  block_size : int;
  budget_factor : int;
  timing : Zipchannel_cache.Timing.t;
  shared_lib_noise : float;
      (** probability per round that an unrelated process touches a
          monitored line (shared libraries are shared) *)
}

val default_config : config

val mainsort_addr : int
(** Line address of mainSort's entry in the shared libbz2 mapping. *)

val fallbacksort_addr : int

val timeline :
  ?config:config -> bytes -> Zipchannel_compress.Block_sort.segment list
(** The victim's sorting control flow as a flat (function, work) timeline
    (Fig. 6 over all blocks).  Deterministic per file — compute once and
    reuse across noisy trace collections. *)

val collect_segments :
  ?config:config ->
  prng:Zipchannel_util.Prng.t ->
  Zipchannel_compress.Block_sort.segment list ->
  bool array * bool array
(** Monitor one victim run replayed from a precomputed timeline. *)

val collect :
  ?config:config -> prng:Zipchannel_util.Prng.t -> bytes ->
  bool array * bool array
(** Monitor one compression of the given file: per-round hit booleans for
    (mainSort, fallbackSort). *)

val features : ?config:config -> bool array * bool array -> float array
(** Classifier features: each channel downsampled to [bins] hit
    fractions, concatenated.  A completely silent trace (the victim never
    ran — e.g. an empty file) is encoded as the constant 2.0 vector, the
    paper's timeout encoding. *)

val collect_features :
  ?config:config -> prng:Zipchannel_util.Prng.t -> bytes -> float array
