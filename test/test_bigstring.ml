(* Differential suite for the zero-copy bigstring pipeline.

   The optimized word-level paths (Bigstring, the bigstring-backed
   Bitio, the array-emitting LZ77, and the arena-driven bzip2 chain)
   must be byte-identical to the retained reference implementations
   (Bitio_ref, Lz77.tokenize_ref, Bzip2.compress_ref) on arbitrary
   inputs, at every block size and jobs count.  The arena tests pin the
   reuse discipline: same slot, same buffer, across blocks and after
   exceptions. *)

open Zipchannel_util
open Zipchannel_compress
module Bigstring = Zipchannel_buf.Bigstring
module Arena = Zipchannel_buf.Arena

let bytes_testable =
  Alcotest.testable
    (fun ppf b -> Format.fprintf ppf "%d bytes" (Bytes.length b))
    Bytes.equal

(* ------------------------------------------------------------------ *)
(* Bigstring word operations. *)

let test_word_roundtrips () =
  let big = Bigstring.create 64 in
  for i = 0 to 63 do
    Bigstring.set big i '\000'
  done;
  (* Unaligned offsets on purpose: the primitives must not assume
     alignment. *)
  Bigstring.set16u big 3 0xBEEF;
  Alcotest.(check int) "get16u" 0xBEEF (Bigstring.get16u big 3);
  Bigstring.set32u big 9 0xDEADBEEFl;
  Alcotest.(check int32) "get32u" 0xDEADBEEFl (Bigstring.get32u big 9);
  Bigstring.set64u big 17 0x0123456789ABCDEFL;
  Alcotest.(check int64) "get64u" 0x0123456789ABCDEFL (Bigstring.get64u big 17);
  (* Little-endian byte order: the low byte is first in memory. *)
  Alcotest.(check char) "16u low byte first" '\xEF' (Bigstring.get big 3);
  Alcotest.(check char) "16u high byte second" '\xBE' (Bigstring.get big 4);
  Alcotest.(check char) "64u low byte first" '\xEF' (Bigstring.get big 17);
  Alcotest.(check char) "64u high byte last" '\x01' (Bigstring.get big 24)

let test_bytes_word_roundtrip () =
  let b = Bytes.make 32 '\000' in
  Bigstring.bytes_set64u b 5 0x1122334455667788L;
  Alcotest.(check int64) "bytes_get64u" 0x1122334455667788L
    (Bigstring.bytes_get64u b 5);
  Alcotest.(check char) "low byte first" '\x88' (Bytes.get b 5)

let test_blit_roundtrip () =
  let src = Bytes.init 100 (fun i -> Char.chr (i * 7 mod 256)) in
  let big = Bigstring.create 120 in
  Bigstring.blit_of_bytes src ~src_off:10 big ~dst_off:3 ~len:80;
  let back = Bytes.make 80 '\000' in
  Bigstring.blit_to_bytes big ~src_off:3 back ~dst_off:0 ~len:80;
  Alcotest.check bytes_testable "blit roundtrip" (Bytes.sub src 10 80) back;
  let big2 = Bigstring.create 80 in
  Bigstring.blit big ~src_off:3 big2 ~dst_off:0 ~len:80;
  Alcotest.check bytes_testable "big-to-big blit"
    (Bytes.sub src 10 80)
    (Bigstring.to_bytes big2 ~off:0 ~len:80)

(* Naive reference for the word-at-a-time comparison. *)
let naive_common_prefix b i j ~limit =
  let k = ref 0 in
  while !k < limit && Bytes.get b (i + !k) = Bytes.get b (j + !k) do
    incr k
  done;
  !k

let qcheck_common_prefix =
  QCheck.Test.make ~name:"bigstring common_prefix = naive" ~count:500
    QCheck.(
      pair
        (string_gen_of_size Gen.(2 -- 300) (Gen.oneofl [ 'a'; 'b'; 'c' ]))
        (pair small_nat small_nat))
    (fun (s, (x, y)) ->
      let b = Bytes.of_string s in
      let n = Bytes.length b in
      let i = x mod n and j = y mod n in
      let limit = n - max i j in
      let big = Bigstring.of_bytes b in
      Bigstring.common_prefix big i j ~limit = naive_common_prefix b i j ~limit)

(* ------------------------------------------------------------------ *)
(* Bitio vs Bitio_ref: writers on arbitrary op sequences, readers on
   arbitrary byte strings and read schedules. *)

let clip (v, c, lsb) = (v land ((1 lsl c) - 1), c, lsb)

let writer_ops_gen =
  QCheck.small_list QCheck.(triple (int_bound 0xffff) (int_range 0 16) bool)

let qcheck_writer_matches_ref =
  QCheck.Test.make ~name:"Bitio.Writer = Bitio_ref.Writer" ~count:500
    writer_ops_gen (fun ops ->
      let ops = List.map clip ops in
      let w = Bitio.Writer.create () in
      let r = Bitio_ref.Writer.create () in
      List.iter
        (fun (value, count, lsb) ->
          if lsb then begin
            Bitio.Writer.add_bits_lsb w ~value ~count;
            Bitio_ref.Writer.add_bits_lsb r ~value ~count
          end
          else begin
            Bitio.Writer.add_bits_msb w ~value ~count;
            Bitio_ref.Writer.add_bits_msb r ~value ~count
          end)
        ops;
      Bitio.Writer.bit_length w = Bitio_ref.Writer.bit_length r
      && Bytes.equal (Bitio.Writer.to_bytes w) (Bitio_ref.Writer.to_bytes r))

let qcheck_lsb_writer_matches_ref =
  QCheck.Test.make ~name:"Bitio.Lsb_writer = Bitio_ref.Lsb_writer" ~count:500
    (QCheck.small_list
       QCheck.(triple (int_bound 0xffff) (int_range 0 16) bool))
    (fun ops ->
      let w = Bitio.Lsb_writer.create () in
      let r = Bitio_ref.Lsb_writer.create () in
      List.iter
        (fun (v, count, huffman) ->
          if huffman && count > 0 then begin
            let code = v land ((1 lsl count) - 1) in
            Bitio.Lsb_writer.add_huffman w ~code ~length:count;
            Bitio_ref.Lsb_writer.add_huffman r ~code ~length:count
          end
          else begin
            let value = v land ((1 lsl count) - 1) in
            Bitio.Lsb_writer.add_bits w ~value ~count;
            Bitio_ref.Lsb_writer.add_bits r ~value ~count
          end)
        ops;
      Bytes.equal (Bitio.Lsb_writer.to_bytes w) (Bitio_ref.Lsb_writer.to_bytes r))

(* A read schedule: bit counts (0..16) consumed alternately MSB/LSB
   from the same byte string by both readers, including reads that run
   off the end — Out_of_bits must fire at the same op. *)
let qcheck_reader_matches_ref =
  QCheck.Test.make ~name:"Bitio.Reader = Bitio_ref.Reader" ~count:500
    QCheck.(pair (string_of_size Gen.(0 -- 40)) (small_list (int_range 0 16)))
    (fun (s, counts) ->
      let b = Bytes.of_string s in
      let fast = Bitio.Reader.create b in
      let ref_ = Bitio_ref.Reader.create b in
      List.for_all
        (fun c ->
          let lsb = c land 1 = 1 in
          let want =
            match
              if lsb then Bitio_ref.Reader.read_bits_lsb ref_ c
              else Bitio_ref.Reader.read_bits_msb ref_ c
            with
            | v -> Some v
            | exception Bitio_ref.Reader.Out_of_bits -> None
          in
          let got =
            match
              if lsb then Bitio.Reader.read_bits_lsb fast c
              else Bitio.Reader.read_bits_msb fast c
            with
            | v -> Some v
            | exception Bitio.Reader.Out_of_bits -> None
          in
          got = want
          && Bitio.Reader.bits_remaining fast
             = Bitio_ref.Reader.bits_remaining ref_)
        counts)

let qcheck_lsb_reader_matches_ref =
  QCheck.Test.make ~name:"Bitio.Lsb_reader = Bitio_ref.Lsb_reader" ~count:500
    QCheck.(pair (string_of_size Gen.(0 -- 40)) (small_list (int_range 0 16)))
    (fun (s, counts) ->
      let b = Bytes.of_string s in
      let fast = Bitio.Lsb_reader.create b in
      let ref_ = Bitio_ref.Lsb_reader.create b in
      List.for_all
        (fun c ->
          let want =
            match Bitio_ref.Lsb_reader.read_bits ref_ c with
            | v -> Some v
            | exception Bitio_ref.Lsb_reader.Out_of_bits -> None
          in
          let got =
            match Bitio.Lsb_reader.read_bits fast c with
            | v -> Some v
            | exception Bitio.Lsb_reader.Out_of_bits -> None
          in
          got = want
          && Bitio.Lsb_reader.bits_remaining fast
             = Bitio_ref.Lsb_reader.bits_remaining ref_)
        counts)

(* ------------------------------------------------------------------ *)
(* LZ77: the bigstring tokenizer vs the retained Bytes reference. *)

let lz77_input_gen =
  (* Low alphabet maximizes matches (the interesting path); mixing in a
     plain string generator covers literal-heavy inputs. *)
  QCheck.(
    pair bool
      (oneof
         [
           string_gen_of_size Gen.(0 -- 2000) (Gen.oneofl [ 'a'; 'b'; 'z' ]);
           string_of_size Gen.(0 -- 500);
         ]))

let qcheck_lz77_matches_ref =
  QCheck.Test.make ~name:"Lz77.tokenize = tokenize_ref" ~count:300
    lz77_input_gen (fun (lazy_strategy, s) ->
      let strategy = if lazy_strategy then Lz77.Lazy else Lz77.Greedy in
      let b = Bytes.of_string s in
      let fast = Lz77.tokenize ~strategy b in
      let arr = Lz77.tokenize_array ~strategy b in
      fast = Lz77.tokenize_ref ~strategy b && fast = Array.to_list arr)

(* ------------------------------------------------------------------ *)
(* Bzip2: the arena pipeline vs the sequential Bytes-copy reference,
   across block sizes (forcing 1..n blocks) and jobs counts. *)

let qcheck_bzip2_matches_ref =
  QCheck.Test.make ~name:"Bzip2.compress = compress_ref" ~count:60
    QCheck.(
      pair
        (oneofl [ 16; 64; 1024; 10_000 ])
        (string_gen_of_size Gen.(0 -- 3000) (Gen.oneofl [ 'a'; 'b'; 'c'; 'z' ])))
    (fun (block_size, s) ->
      let input = Bytes.of_string s in
      let reference = Bzip2.compress_ref ~block_size input in
      Bytes.equal reference (Bzip2.compress ~block_size input)
      && Bytes.equal reference (Bzip2.compress ~block_size ~jobs:4 input)
      && Bytes.equal input (Bzip2.decompress reference))

let test_bzip2_matches_ref_corpus () =
  let prng = Prng.create ~seed:0xB16 () in
  let text = Bytes.of_string (Lipsum.repetitive_file prng ~level:4 ~size:30_000) in
  let random = Prng.bytes prng 20_000 in
  List.iter
    (fun (name, input) ->
      List.iter
        (fun jobs ->
          Alcotest.check bytes_testable
            (Printf.sprintf "%s jobs=%d" name jobs)
            (Bzip2.compress_ref input)
            (Bzip2.compress ~jobs input))
        [ 1; 4 ])
    [ ("repetitive 30k", text); ("random 20k", random) ]

(* ------------------------------------------------------------------ *)
(* Arena discipline. *)

let test_arena_slot_reuse () =
  Arena.with_arena (fun arena ->
      let a = Arena.ints arena ~slot:0 100 in
      a.(0) <- 41;
      (* Same slot, fitting request: the same buffer comes back, stale
         contents intact. *)
      let b = Arena.ints arena ~slot:0 50 in
      Alcotest.(check bool) "same buffer when it fits" true (a == b);
      Alcotest.(check int) "stale contents visible" 41 b.(0);
      (* Outgrowing the slot reallocates. *)
      let c = Arena.ints arena ~slot:0 (Array.length a + 1) in
      Alcotest.(check bool) "grown buffer is fresh" false (a == c);
      Alcotest.(check bool) "grown to at least n"
        true
        (Array.length c >= Array.length a + 1);
      (* Distinct slots never alias. *)
      let d = Arena.ints arena ~slot:1 10 in
      Alcotest.(check bool) "distinct slots distinct buffers" false (c == d);
      let by = Arena.bytes arena ~slot:0 64 in
      let bz = Arena.bytes arena ~slot:0 32 in
      Alcotest.(check bool) "bytes slot reused" true (by == bz);
      let g = Arena.big arena ~slot:0 64 in
      let h = Arena.big arena ~slot:0 16 in
      Alcotest.(check bool) "big slot reused" true (g == h))

let test_arena_nesting_and_reuse () =
  let outer = ref [||] in
  Arena.with_arena (fun a ->
      outer := Arena.ints a ~slot:0 32;
      Arena.with_arena (fun b ->
          let inner = Arena.ints b ~slot:0 32 in
          Alcotest.(check bool) "nested arenas are distinct" false
            (!outer == inner)));
  (* The arena went back to the free list: the next user of this domain
     gets the same underlying buffers. *)
  Arena.with_arena (fun a ->
      let again = Arena.ints a ~slot:0 32 in
      Alcotest.(check bool) "arena recycled after release" true (!outer == again))

let test_arena_released_on_exception () =
  let first = ref [||] in
  (try
     Arena.with_arena (fun a ->
         first := Arena.ints a ~slot:0 16;
         failwith "boom")
   with Failure _ -> ());
  Arena.with_arena (fun a ->
      let again = Arena.ints a ~slot:0 16 in
      Alcotest.(check bool) "arena recycled after exception" true
        (!first == again))

(* Sustained reuse: many different blocks through one domain's arena
   must keep producing reference-identical output (stale suffixes from
   larger earlier blocks must never leak into smaller later ones). *)
let test_arena_reuse_stress () =
  let prng = Prng.create ~seed:0x5713 () in
  for trial = 1 to 12 do
    (* Shrinking sizes force each block to run inside buffers dirtied by
       a strictly larger predecessor. *)
    let size = 400 + ((13 - trial) * 700) in
    let input =
      if trial mod 2 = 0 then Prng.bytes prng size
      else Bytes.of_string (Lipsum.repetitive_file prng ~level:3 ~size)
    in
    let block_size = if trial mod 3 = 0 then 512 else Bzip2.default_block_size in
    Alcotest.check bytes_testable
      (Printf.sprintf "trial %d (%d bytes)" trial size)
      (Bzip2.compress_ref ~block_size input)
      (Bzip2.compress ~block_size input)
  done

let suite =
  ( "bigstring",
    [
      Alcotest.test_case "word roundtrips" `Quick test_word_roundtrips;
      Alcotest.test_case "bytes word roundtrip" `Quick test_bytes_word_roundtrip;
      Alcotest.test_case "blit roundtrips" `Quick test_blit_roundtrip;
      QCheck_alcotest.to_alcotest qcheck_common_prefix;
      QCheck_alcotest.to_alcotest qcheck_writer_matches_ref;
      QCheck_alcotest.to_alcotest qcheck_lsb_writer_matches_ref;
      QCheck_alcotest.to_alcotest qcheck_reader_matches_ref;
      QCheck_alcotest.to_alcotest qcheck_lsb_reader_matches_ref;
      QCheck_alcotest.to_alcotest qcheck_lz77_matches_ref;
      QCheck_alcotest.to_alcotest qcheck_bzip2_matches_ref;
      Alcotest.test_case "bzip2 = ref on corpus" `Quick
        test_bzip2_matches_ref_corpus;
      Alcotest.test_case "arena slot reuse" `Quick test_arena_slot_reuse;
      Alcotest.test_case "arena nesting + recycle" `Quick
        test_arena_nesting_and_reuse;
      Alcotest.test_case "arena recycle on exception" `Quick
        test_arena_released_on_exception;
      Alcotest.test_case "arena reuse stress" `Quick test_arena_reuse_stress;
    ] )
