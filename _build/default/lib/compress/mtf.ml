let initial_order () = Array.init 256 (fun i -> i)

let move_to_front order pos =
  let v = order.(pos) in
  Array.blit order 0 order 1 pos;
  order.(0) <- v

let encode input =
  let order = initial_order () in
  Array.init (Bytes.length input) (fun i ->
      let c = Char.code (Bytes.get input i) in
      let pos = ref 0 in
      while order.(!pos) <> c do incr pos done;
      move_to_front order !pos;
      !pos)

let decode symbols =
  let order = initial_order () in
  Bytes.init (Array.length symbols) (fun i ->
      let pos = symbols.(i) in
      if pos < 0 || pos > 255 then invalid_arg "Mtf.decode: symbol out of range";
      let c = order.(pos) in
      move_to_front order pos;
      Char.chr c)
