(* Leak a secret out of an SGX enclave while Bzip2 compresses it — the
   paper's Section V attack end to end, on readable data so the recovered
   plaintext is visible.

     dune exec examples/leak_sgx.exe *)

open Zipchannel

let () =
  let ppf = Format.std_formatter in
  let prng = Util.Prng.create ~seed:0x5EC2E7 () in
  let secret =
    Bytes.of_string
      ("CONFIDENTIAL: the launch codes are "
      ^ Util.Prng.lowercase_string prng 32
      ^ ". "
      ^ Util.Lipsum.paragraph prng)
  in
  Format.fprintf ppf "the enclave compresses %d secret bytes...@."
    (Bytes.length secret);
  let result = Attack.Sgx_attack.run secret in
  Format.fprintf ppf
    "attack finished: %.2f%% of bits recovered (%d page faults, %d lost readings)@.@."
    (100.0 *. result.Attack.Sgx_attack.bit_accuracy)
    result.faults result.lost_readings;
  Format.fprintf ppf "recovered plaintext:@.%s@."
    (Bytes.to_string result.recovered)
