(** Sets of taint tags.

    A tag identifies one input byte by its sequential index, exactly as
    TaintChannel assigns them: the first byte read from the input is tag 1,
    the second tag 2, and so on (paper Section III-B).

    The representation is word-packed for the propagation hot path: sets
    whose tags all fit below 63 live in a single immediate integer (union
    is one [lor], no allocation), larger sets in an offset bitvector of
    63-bit words.  Tags must be non-negative; {!Tagset_ref} is the
    retained reference implementation the equivalence tests check this
    module against. *)

type tag = int
(** Input byte index, 1-based in reports.  Must be [>= 0]. *)

type t
(** An immutable set of tags. *)

val empty : t
val is_empty : t -> bool
val singleton : tag -> t
val add : tag -> t -> t
val union : t -> t -> t
val mem : tag -> t -> bool
val cardinal : t -> int
val elements : t -> tag list
(** Ascending order. *)

val equal : t -> t -> bool
val of_list : tag list -> t
val fold : (tag -> 'a -> 'a) -> t -> 'a -> 'a
val pp : Format.formatter -> t -> unit
