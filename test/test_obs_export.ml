(* Zipchannel.Obs_export: the JSON reader, OTLP/Prometheus exporters
   (against golden fixtures), the span-stream profiler, the leakage
   scoreboard, and the per-metric bench regression gate. *)

module Obs = Zipchannel_obs.Obs
module E = Zipchannel.Obs_export
module Json = E.Json

let with_obs f =
  Obs.Metrics.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.Trace.set_sink Obs.Trace.Null;
      Obs.Metrics.reset ())
    f

let read_fixture path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* JSON reader/writer *)

let test_json_roundtrip () =
  let samples =
    [
      Json.Null;
      Json.Bool true;
      Json.Num 42.;
      Json.Num (-0.125);
      Json.Str "a \"quoted\"\nline \\ with \x01 control";
      Json.Arr [ Json.Num 1.; Json.Arr []; Json.Obj [] ];
      Json.Obj [ ("k", Json.Str "v"); ("n", Json.Num 7.) ];
    ]
  in
  List.iter
    (fun v ->
      Alcotest.(check bool) "parse inverts to_string" true
        (Json.parse (Json.to_string v) = v))
    samples;
  Alcotest.(check bool) "unicode escape decodes to UTF-8" true
    (Json.parse {|"é€"|} = Json.Str "\xc3\xa9\xe2\x82\xac");
  Alcotest.(check int) "parse_many splits a JSONL stream" 3
    (List.length (Json.parse_many "{\"a\": 1}\n[2]\n\"three\"\n"));
  List.iter
    (fun bad ->
      match Json.parse bad with
      | exception Json.Parse_error _ -> ()
      | v -> Alcotest.failf "parsed %S to %s" bad (Json.to_string v))
    [ "{"; "[1,]"; "{\"a\" 1}"; "tru"; "1 2"; "\"unterminated" ]

(* ------------------------------------------------------------------ *)
(* Snapshot reader: exact inverse of Obs.Metrics.snapshot_to_json *)

let test_snapshot_roundtrip () =
  with_obs @@ fun () ->
  let c = Obs.Metrics.counter "test.export.counter" in
  let g = Obs.Metrics.gauge "test.export.gauge" in
  let h = Obs.Metrics.histogram "test.export.hist" in
  Obs.Metrics.add c 12345;
  Obs.Metrics.set_gauge g 0.75;
  List.iter (Obs.Metrics.observe h) [ 1; 3; 200 ];
  let snap = Obs.Metrics.snapshot () in
  let parsed = E.Snapshot_io.of_string (Obs.Metrics.snapshot_to_json snap) in
  Alcotest.(check bool) "counters survive" true
    (parsed.Obs.Metrics.counters = snap.Obs.Metrics.counters);
  Alcotest.(check bool) "gauges survive" true
    (parsed.Obs.Metrics.gauges = snap.Obs.Metrics.gauges);
  Alcotest.(check bool) "histograms survive" true
    (parsed.Obs.Metrics.histograms = snap.Obs.Metrics.histograms)

(* ------------------------------------------------------------------ *)
(* OTLP: golden fixtures and the counter-sum preservation property *)

let test_otlp_metrics_golden () =
  let snap =
    E.Snapshot_io.read_file "fixtures/obs_export/snapshot.json"
  in
  Alcotest.(check string) "OTLP metrics export matches golden"
    (String.trim (read_fixture "fixtures/obs_export/snapshot.otlp.json"))
    (Json.to_string (E.Otlp.metrics_request snap))

let test_otlp_trace_golden () =
  let events = E.Span_stream.read_file "fixtures/obs_export/nested.jsonl" in
  Alcotest.(check string) "OTLP trace export matches golden"
    (String.trim (read_fixture "fixtures/obs_export/nested.otlp.json"))
    (Json.to_string (E.Otlp.trace_request events))

let test_prom_golden () =
  let snap =
    E.Snapshot_io.read_file "fixtures/obs_export/snapshot.json"
  in
  Alcotest.(check string) "Prometheus exposition matches golden"
    (read_fixture "fixtures/obs_export/snapshot.prom")
    (E.Prom.exposition snap)

(* Walk an OTLP metrics request back into (name, asInt sum) pairs. *)
let otlp_counter_sums request =
  let get k j = Option.get (Json.member k j) in
  let metrics =
    get "resourceMetrics" request |> Json.to_arr |> Option.get |> List.hd
    |> get "scopeMetrics" |> Json.to_arr |> Option.get |> List.hd
    |> get "metrics" |> Json.to_arr |> Option.get
  in
  List.filter_map
    (fun m ->
      match Json.member "sum" m with
      | None -> None
      | Some sum ->
          let name = Option.get (Json.to_str (get "name" m)) in
          let point =
            get "dataPoints" sum |> Json.to_arr |> Option.get |> List.hd
          in
          let v =
            int_of_string (Option.get (Json.to_str (get "asInt" point)))
          in
          Some (name, v))
    metrics

let qcheck_otlp_counters =
  QCheck.Test.make
    ~name:"snapshot -> OTLP -> parse preserves counter totals" ~count:50
    QCheck.(small_list (pair small_nat small_nat))
    (fun pairs ->
      let counters =
        List.mapi (fun i (k, v) -> (Printf.sprintf "c%d_%d" i k, v)) pairs
      in
      let snap =
        { Obs.Metrics.counters; gauges = []; histograms = [] }
      in
      let round =
        otlp_counter_sums
          (Json.parse (Json.to_string (E.Otlp.metrics_request snap)))
      in
      round = counters)

(* The exponential-histogram data point must re-sum to the source
   buckets: zeroCount picks up bucket 0, dense bucketCounts the rest. *)
let test_otlp_histogram_mapping () =
  let hs =
    { Obs.Metrics.count = 4; sum = 14; buckets = [ (0, 1); (2, 2); (3, 1) ] }
  in
  let snap =
    { Obs.Metrics.counters = []; gauges = []; histograms = [ ("h", hs) ] }
  in
  let get k j = Option.get (Json.member k j) in
  let point =
    Json.parse (Json.to_string (E.Otlp.metrics_request snap))
    |> get "resourceMetrics" |> Json.to_arr |> Option.get |> List.hd
    |> get "scopeMetrics" |> Json.to_arr |> Option.get |> List.hd
    |> get "metrics" |> Json.to_arr |> Option.get |> List.hd
    |> get "exponentialHistogram" |> get "dataPoints" |> Json.to_arr
    |> Option.get |> List.hd
  in
  let str_int k j = int_of_string (Option.get (Json.to_str (get k j))) in
  Alcotest.(check int) "zeroCount = bucket 0" 1 (str_int "zeroCount" point);
  let positive = get "positive" point in
  Alcotest.(check (float 0.)) "offset = lowest bucket - 1" 1.
    (Option.get (Json.to_num (get "offset" positive)));
  Alcotest.(check (list int)) "dense positive counts" [ 2; 1 ]
    (List.map
       (fun v -> int_of_string (Option.get (Json.to_str v)))
       (Option.get (Json.to_arr (get "bucketCounts" positive))));
  Alcotest.(check int) "count" 4 (str_int "count" point)

(* ------------------------------------------------------------------ *)
(* Profiler: hand-built nested multi-domain trace *)

let nested_spans () =
  E.Profile.spans_of_events
    (E.Span_stream.read_file "fixtures/obs_export/nested.jsonl")

let test_profile_spans () =
  let spans = nested_spans () in
  Alcotest.(check int) "5 spans" 5 (List.length spans);
  let find name = List.find (fun s -> s.E.Profile.name = name) spans in
  let self name = (find name).E.Profile.self_ns in
  Alcotest.(check int) "alpha self" 300 (self "alpha");
  Alcotest.(check int) "gamma self" 100 (self "gamma");
  Alcotest.(check int) "beta self = dur - gamma" 300 (self "beta");
  Alcotest.(check int) "root self = dur - children" 400 (self "root");
  Alcotest.(check int) "worker self (other domain)" 600 (self "worker");
  (* Parent links follow per-domain nesting, not emission order: worker
     interleaves but stays a root on domain 1. *)
  Alcotest.(check bool) "root has no parent" true
    ((find "root").E.Profile.parent = None);
  Alcotest.(check bool) "worker has no parent" true
    ((find "worker").E.Profile.parent = None);
  Alcotest.(check bool) "gamma's parent is beta" true
    ((find "gamma").E.Profile.parent
    = Some (find "beta").E.Profile.id);
  (* Conservation: per domain, self times sum to the root's wall time. *)
  let self_sum domain =
    List.fold_left
      (fun acc s ->
        if s.E.Profile.domain = domain then acc + s.E.Profile.self_ns else acc)
      0 spans
  in
  Alcotest.(check int) "domain 0 self times sum to root wall" 1100
    (self_sum 0);
  Alcotest.(check int) "domain 1 self times sum to worker wall" 600
    (self_sum 1)

let test_profile_aggregate () =
  let rows = E.Profile.aggregate (nested_spans ()) in
  Alcotest.(check (list string)) "sorted by self time desc"
    [ "worker"; "root"; "alpha"; "beta"; "gamma" ]
    (List.map (fun r -> r.E.Profile.a_name) rows);
  let root = List.find (fun r -> r.E.Profile.a_name = "root") rows in
  Alcotest.(check int) "count" 1 root.E.Profile.count;
  Alcotest.(check int) "total is wall time" 1100 root.E.Profile.total_ns;
  Alcotest.(check int) "p50 of a single span" 1100 root.E.Profile.p50_ns;
  Alcotest.(check int) "max" 1100 root.E.Profile.max_ns

let test_profile_folded () =
  let folded = E.Profile.folded_stacks (nested_spans ()) in
  Alcotest.(check (option int)) "leaf path weighted by self" (Some 100)
    (List.assoc_opt "domain-0;root;beta;gamma" folded);
  Alcotest.(check (option int)) "root frame weighted by self" (Some 400)
    (List.assoc_opt "domain-0;root" folded);
  Alcotest.(check (option int)) "other domain rooted separately" (Some 600)
    (List.assoc_opt "domain-1;worker" folded);
  Alcotest.(check int) "folded weights sum to total self" 1700
    (List.fold_left (fun acc (_, w) -> acc + w) 0 folded)

(* Live collection: the Custom sink assembles the same request shape. *)
let test_otlp_collector () =
  with_obs @@ fun () ->
  let sink, drain = E.Otlp.collector () in
  Obs.Trace.set_sink sink;
  Obs.with_span "outer" (fun () -> Obs.with_span "inner" (fun () -> ()));
  Obs.Trace.set_sink Obs.Trace.Null;
  let get k j = Option.get (Json.member k j) in
  let spans =
    drain ()
    |> get "resourceSpans" |> Json.to_arr |> Option.get |> List.hd
    |> get "scopeSpans" |> Json.to_arr |> Option.get |> List.hd
    |> get "spans" |> Json.to_arr |> Option.get
  in
  Alcotest.(check int) "two spans collected" 2 (List.length spans);
  let by_name name =
    List.find
      (fun s -> Json.to_str (get "name" s) = Some name)
      spans
  in
  Alcotest.(check (option string)) "inner's parent is outer"
    (Json.to_str (get "spanId" (by_name "outer")))
    (Option.bind (Json.member "parentSpanId" (by_name "inner")) Json.to_str)

(* ------------------------------------------------------------------ *)
(* Leakage scoreboard *)

let test_leak_derive () =
  let snap =
    {
      Obs.Metrics.counters =
        [
          ("recovery.bzip2.ambiguous", 10);
          ("recovery.bzip2.repaired", 5);
          ("sgx.bytes", 1000);
          ("sgx.faults", 3000);
          ("sgx.lost_readings", 10);
          ("taint.gadget_hits", 5998);
          ("taint.input_bytes", 6000);
        ];
      gauges = [];
      histograms =
        [
          (* 32 of 40 bytes unique (bucket 0 = one candidate); the rest
             spread over 2- and 8-candidate sets. *)
          ( "recovery.bzip2.candidates_per_byte",
            { Obs.Metrics.count = 40; sum = 96; buckets = [ (0, 32); (1, 4); (3, 4) ] }
          );
        ];
    }
  in
  let scores = E.Leak.derive snap in
  let get name = List.assoc name scores in
  Alcotest.(check (float 1e-9)) "gadget hits per input byte"
    (5998. /. 6000.)
    (get "leak.taint.gadget_hits_per_input_byte");
  Alcotest.(check (float 1e-9)) "faults per byte" 3.0
    (get "leak.sgx.faults_per_byte");
  Alcotest.(check (float 1e-9)) "lost reading rate" 0.01
    (get "leak.sgx.lost_reading_rate");
  (* (32*log2 1 + 4*log2 1.5 + 4*log2 6) / 40 *)
  Alcotest.(check (float 1e-9)) "candidate entropy"
    ((4. *. Float.log2 1.5 +. 4. *. Float.log2 6.) /. 40.)
    (get "leak.recovery.bzip2.candidate_entropy_bits");
  Alcotest.(check (float 1e-9)) "ambiguity rate" 0.25
    (get "leak.recovery.bzip2.ambiguity_rate");
  Alcotest.(check (float 1e-9)) "repair rate" 0.5
    (get "leak.recovery.bzip2.repair_rate");
  Alcotest.(check (list (pair string (float 0.)))) "empty snapshot: no scores"
    []
    (E.Leak.derive
       { Obs.Metrics.counters = []; gauges = []; histograms = [] })

(* ------------------------------------------------------------------ *)
(* Regression gate *)

let rules_json =
  {|{"ns_per_run_max_increase_pct": 25,
     "metrics": [
       {"prefix": "cache.", "class": "band", "pct": 50},
       {"prefix": "classifier.epoch_loss", "class": "ignore"},
       {"prefix": "", "class": "exact"}
     ]}|}

let test_gate_classify () =
  let rules = E.Gate.rules_of_json (Json.parse rules_json) in
  Alcotest.(check bool) "first prefix match wins" true
    (E.Gate.classify rules "cache.hits" = E.Gate.Band 50.);
  Alcotest.(check bool) "exact catch-all" true
    (E.Gate.classify rules "taint.instructions" = E.Gate.Exact);
  Alcotest.(check bool) "ignore" true
    (E.Gate.classify rules "classifier.epoch_loss" = E.Gate.Ignore);
  Alcotest.(check bool) "ns gate parsed" true
    (rules.E.Gate.ns_max_increase_pct = Some 25.);
  let no_ns =
    E.Gate.rules_of_json
      (Json.parse
         {|{"ns_per_run_max_increase_pct": null, "metrics": []}|})
  in
  Alcotest.(check bool) "null disables the ns gate" true
    (no_ns.E.Gate.ns_max_increase_pct = None);
  (* Bench-scoped rules: the same metric can be ignored under one
     benchmark and banded everywhere else. *)
  let scoped =
    E.Gate.rules_of_json
      (Json.parse
         {|{"ns_per_run_max_increase_pct": null,
            "metrics": [
              {"bench": "cache/", "prefix": "cache.", "class": "ignore"},
              {"prefix": "cache.", "class": "band", "pct": 50}
            ]}|})
  in
  Alcotest.(check bool) "scoped rule wins under its bench" true
    (E.Gate.classify scoped ~bench:"cache/prime+probe-round" "cache.hits"
    = E.Gate.Ignore);
  Alcotest.(check bool) "other benches fall through" true
    (E.Gate.classify scoped ~bench:"sgx/attack-256b-block" "cache.hits"
    = E.Gate.Band 50.);
  Alcotest.(check int) "compare honours the bench scope" 0
    (List.length
       (E.Gate.compare_metrics scoped ~bench:"cache/prime+probe-round"
          ~baseline:[ ("cache.hits", 100.) ]
          ~current:[ ("cache.hits", 10.) ]))

let test_gate_compare () =
  let rules = E.Gate.rules_of_json (Json.parse rules_json) in
  let compare baseline current =
    E.Gate.compare_metrics rules ~bench:"b" ~baseline ~current
  in
  Alcotest.(check int) "identical metrics pass" 0
    (List.length
       (compare [ ("taint.hits", 100.) ] [ ("taint.hits", 100.) ]));
  (* An injected change on a deterministic counter is a regression that
     names the benchmark, metric and magnitude. *)
  (match compare [ ("taint.hits", 100.) ] [ ("taint.hits", 101.) ] with
  | [ r ] ->
      Alcotest.(check string) "bench named" "b" r.E.Gate.bench;
      Alcotest.(check string) "metric named" "taint.hits" r.E.Gate.metric;
      Alcotest.(check (float 1e-6)) "magnitude" 1.0 r.E.Gate.change_pct
  | rs -> Alcotest.failf "expected 1 regression, got %d" (List.length rs));
  Alcotest.(check int) "inside the band passes" 0
    (List.length (compare [ ("cache.hits", 100.) ] [ ("cache.hits", 140.) ]));
  Alcotest.(check int) "outside the band fails (both directions)" 2
    (List.length
       (compare
          [ ("cache.hits", 100.); ("cache.misses", 100.) ]
          [ ("cache.hits", 151.); ("cache.misses", 40.) ]));
  Alcotest.(check int) "ignored metric never fails" 0
    (List.length
       (compare
          [ ("classifier.epoch_loss", 1.0) ]
          [ ("classifier.epoch_loss", 9.9) ]));
  Alcotest.(check int) "vanished metric is a regression" 1
    (List.length (compare [ ("taint.hits", 100.) ] []));
  Alcotest.(check int) "new metric is not" 0
    (List.length (compare [] [ ("taint.new", 1.) ]));
  (match E.Gate.check_ns rules ~bench:"b" ~baseline:100. ~current:130. with
  | Some r -> Alcotest.(check string) "ns metric named" "ns_per_run" r.E.Gate.metric
  | None -> Alcotest.fail "30% slowdown passed a 25% gate");
  Alcotest.(check bool) "faster is never an ns regression" true
    (E.Gate.check_ns rules ~bench:"b" ~baseline:100. ~current:50. = None)

(* ------------------------------------------------------------------ *)
(* Prometheus exposition edge cases *)

let test_prom_edges () =
  Alcotest.(check string) "sanitize maps everything else to _" "a_b_c_1"
    (E.Prom.sanitize "a.b-c 1");
  Alcotest.(check string) "metric_name prefixes and sanitizes"
    "zipchannel_taint_gadget_hits"
    (E.Prom.metric_name "taint.gadget_hits");
  Alcotest.(check string) "label_name: leading digit gets prefixed" "_9lives"
    (E.Prom.label_name "9lives");
  Alcotest.(check string) "label_name: never empty" "_" (E.Prom.label_name "");
  Alcotest.(check string) "label_name: valid names pass through" "codec"
    (E.Prom.label_name "codec");
  Alcotest.(check string) "escape_help: backslash and newline" "a\\\\b\\nc"
    (E.Prom.escape_help "a\\b\nc");
  Alcotest.(check string) "escape_label_value also quotes the double quote"
    "v\\\"w\\\\x\\ny"
    (E.Prom.escape_label_value "v\"w\\x\ny");
  (* Every series carries a HELP line naming the original dotted metric. *)
  let snap =
    {
      Obs.Metrics.counters = [ ("a.b", 1) ];
      gauges = [ ("g.h", 2.0) ];
      histograms =
        [ ("x.y", { Obs.Metrics.count = 1; sum = 1; buckets = [ (0, 1) ] }) ];
    }
  in
  let text = E.Prom.exposition snap in
  List.iter
    (fun help ->
      Alcotest.(check bool) (Printf.sprintf "HELP line %S present" help) true
        (List.mem help (String.split_on_char '\n' text)))
    [
      "# HELP zipchannel_a_b_total a.b";
      "# HELP zipchannel_g_h g.h";
      "# HELP zipchannel_x_y x.y";
    ]

(* Property: the classic-histogram translation of the log2 buckets has
   cumulative le counts that are monotone non-decreasing and end at the
   observation count. *)
let qcheck_prom_cumulative =
  QCheck.Test.make ~name:"prometheus le buckets are cumulative and monotone"
    ~count:50
    QCheck.(small_list (int_bound 1_000_000))
    (fun values ->
      Obs.Metrics.reset ();
      Obs.set_enabled true;
      let h = Obs.Metrics.histogram "q.hist" in
      List.iter (Obs.Metrics.observe h) values;
      let snap = Obs.Metrics.snapshot () in
      Obs.set_enabled false;
      Obs.Metrics.reset ();
      let text = E.Prom.exposition snap in
      let bucket_counts =
        List.filter_map
          (fun line ->
            if String.starts_with ~prefix:"zipchannel_q_hist_bucket{" line then
              match String.rindex_opt line ' ' with
              | Some i ->
                  int_of_string_opt
                    (String.sub line (i + 1) (String.length line - i - 1))
              | None -> None
            else None)
          (String.split_on_char '\n' text)
      in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      match (values, bucket_counts) with
      | [], [] -> true
      | [], _ :: _ -> List.for_all (( = ) 0) bucket_counts
      | _ :: _, [] -> false
      | _ ->
          monotone bucket_counts
          && List.nth bucket_counts (List.length bucket_counts - 1)
             = List.length values)

(* ------------------------------------------------------------------ *)
(* Profile movers: forensics behind a fired ns_per_run gate *)

let test_gate_movers () =
  (match
     E.Gate.profile_movers
       ~baseline:[ ("a", 50); ("b", 50) ]
       ~current:[ ("a", 75); ("b", 25) ]
   with
  | [ m1; m2 ] ->
      Alcotest.(check string) "equal movement ties break by name" "a"
        m1.E.Gate.span;
      Alcotest.(check (float 1e-9)) "a baseline share" 50. m1.E.Gate.baseline_share;
      Alcotest.(check (float 1e-9)) "a current share" 75. m1.E.Gate.current_share;
      Alcotest.(check (float 1e-9)) "a delta" 25. m1.E.Gate.delta_pt;
      Alcotest.(check (float 1e-9)) "b delta" (-25.) m2.E.Gate.delta_pt
  | ms -> Alcotest.failf "expected 2 movers, got %d" (List.length ms));
  (* A span on one side only counts as 0% on the other. *)
  (match
     E.Gate.profile_movers ~baseline:[ ("old", 10) ] ~current:[ ("new", 10) ]
   with
  | [ m1; m2 ] ->
      Alcotest.(check string) "vanished span ranked" "new" m1.E.Gate.span;
      Alcotest.(check (float 1e-9)) "new appears from 0%" 100.
        m1.E.Gate.delta_pt;
      Alcotest.(check (float 1e-9)) "old drops to 0%" (-100.) m2.E.Gate.delta_pt
  | ms -> Alcotest.failf "expected 2 movers, got %d" (List.length ms));
  Alcotest.(check int) "no samples on one side: no forensics" 0
    (List.length (E.Gate.profile_movers ~baseline:[] ~current:[ ("a", 5) ]));
  let m =
    {
      E.Gate.span = "deflate.compress";
      baseline_share = 31.0;
      current_share = 52.4;
      delta_pt = 21.4;
    }
  in
  Alcotest.(check string) "pp_mover format"
    "span deflate.compress self-share 31.0% -> 52.4% (+21.4pt)"
    (Format.asprintf "%a" E.Gate.pp_mover m)

(* ------------------------------------------------------------------ *)
(* zc obs top: the view built from one or a pair of snapshots *)

let top_snapshot =
  {
    Obs.Metrics.counters =
      [
        ("prof.samples", 200);
        ("prof.self.x", 150);
        ("prof.self.y", 50);
        ("runtime.minor_collections", 10);
        ("serve.connections", 20);
      ];
    gauges =
      [ ("runtime.heap_mb", 12.5); ("leak.capacity_bits_per_frame", 0.4) ];
    histograms =
      [
        ( "serve.request_ns",
          { Obs.Metrics.count = 3; sum = 12; buckets = [ (0, 1); (2, 2) ] } );
      ];
  }

let test_top_view () =
  let v = E.Top.of_snapshot top_snapshot in
  Alcotest.(check int) "lifetime samples" 200 v.E.Top.samples;
  Alcotest.(check bool) "spans ranked with lifetime shares" true
    (v.E.Top.spans = [ ("x", 150, 75.); ("y", 50, 25.) ]);
  let names rows = List.map (fun r -> r.E.Top.name) rows in
  Alcotest.(check (list string)) "runtime section, sorted"
    [ "runtime.heap_mb"; "runtime.minor_collections" ]
    (names v.E.Top.runtime);
  Alcotest.(check (list string)) "leak section" [ "leak.capacity_bits_per_frame" ]
    (names v.E.Top.leak);
  Alcotest.(check (list string)) "histograms flatten to .count/.sum rows"
    [ "serve.connections"; "serve.request_ns.count"; "serve.request_ns.sum" ]
    (names v.E.Top.serve);
  Alcotest.(check bool) "no rates without a previous snapshot" true
    (List.for_all (fun r -> r.E.Top.rate = None) (v.E.Top.runtime @ v.E.Top.serve));
  let rendered = E.Top.render v in
  List.iter
    (fun line ->
      Alcotest.(check bool) (Printf.sprintf "render has %S" line) true
        (List.mem line (String.split_on_char '\n' rendered)))
    [
      "samples 200";
      "span x 75.0% (150)";
      "span y 25.0% (50)";
      "runtime.heap_mb 12.5000";
      "serve.connections 20";
    ]

let test_top_windowed () =
  let prev =
    {
      Obs.Metrics.counters =
        [ ("prof.samples", 100); ("prof.self.x", 100); ("serve.connections", 10) ];
      gauges = [];
      histograms = [];
    }
  in
  let v = E.Top.of_snapshot ~prev ~dt_s:2.0 top_snapshot in
  Alcotest.(check int) "windowed sample delta" 100 v.E.Top.samples;
  Alcotest.(check bool) "span shares over the window delta" true
    (v.E.Top.spans = [ ("x", 50, 50.); ("y", 50, 50.) ]);
  let rate name rows =
    match List.find_opt (fun r -> r.E.Top.name = name) rows with
    | Some r -> r.E.Top.rate
    | None -> None
  in
  Alcotest.(check (option (float 1e-9))) "counter rate = delta / dt" (Some 5.0)
    (rate "serve.connections" v.E.Top.serve);
  Alcotest.(check (option (float 1e-9))) "absent-in-prev counters rate from 0"
    (Some 5.0)
    (rate "runtime.minor_collections" v.E.Top.runtime);
  (* JSON mirror parses and carries the same numbers. *)
  let j = Json.parse (E.Top.to_json v) in
  Alcotest.(check (option (float 1e-9))) "json samples" (Some 100.)
    (Option.bind (Json.member "samples" j) Json.to_num);
  Alcotest.(check (option (float 1e-9))) "json span share" (Some 50.)
    (Option.bind
       (Option.bind
          (Option.bind (Json.member "spans" j) (Json.member "x"))
          (Json.member "share"))
       Json.to_num)

(* ------------------------------------------------------------------ *)
(* Crash-safe sinks: atomic writes, parent-dir creation *)

let test_sink_atomic () =
  let base = Filename.temp_file "zc-sink" "" in
  Sys.remove base;
  Fun.protect ~finally:(fun () ->
      let rec rm p =
        if Sys.file_exists p then
          if Sys.is_directory p then begin
            Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
            Sys.rmdir p
          end
          else Sys.remove p
      in
      rm base)
  @@ fun () ->
  (* Nested parents that don't exist yet get created. *)
  let path = Filename.concat base (Filename.concat "a" "b/out.json") in
  E.Sink.atomic_write ~path "{\"ok\": true}\n";
  Alcotest.(check string) "content lands at the destination"
    "{\"ok\": true}\n" (read_fixture path);
  Alcotest.(check bool) "no .tmp residue" false
    (Sys.file_exists (path ^ ".tmp"));
  (* Overwrite goes through the same rename, replacing the old content. *)
  E.Sink.atomic_write ~path "v2\n";
  Alcotest.(check string) "rename replaces previous content" "v2\n"
    (read_fixture path);
  (* Streaming variant: nothing at the destination until commit. *)
  let spath = Filename.concat base "stream/audit.jsonl" in
  let oc, commit = E.Sink.open_atomic ~path:spath in
  output_string oc "{\"frame\": 1}\n";
  flush oc;
  Alcotest.(check bool) "destination absent before commit" false
    (Sys.file_exists spath);
  Alcotest.(check bool) "tmp carries the stream" true
    (Sys.file_exists (spath ^ ".tmp"));
  commit ();
  Alcotest.(check string) "commit publishes the stream" "{\"frame\": 1}\n"
    (read_fixture spath);
  Alcotest.(check bool) "tmp gone after commit" false
    (Sys.file_exists (spath ^ ".tmp"))

let suite =
  ( "obs_export",
    [
      Alcotest.test_case "json round-trip & errors" `Quick test_json_roundtrip;
      Alcotest.test_case "snapshot json round-trip" `Quick
        test_snapshot_roundtrip;
      Alcotest.test_case "OTLP metrics golden" `Quick test_otlp_metrics_golden;
      Alcotest.test_case "OTLP trace golden" `Quick test_otlp_trace_golden;
      Alcotest.test_case "Prometheus golden" `Quick test_prom_golden;
      QCheck_alcotest.to_alcotest qcheck_otlp_counters;
      Alcotest.test_case "OTLP exponential-histogram mapping" `Quick
        test_otlp_histogram_mapping;
      Alcotest.test_case "profiler span reconstruction" `Quick
        test_profile_spans;
      Alcotest.test_case "profiler aggregation" `Quick test_profile_aggregate;
      Alcotest.test_case "profiler folded stacks" `Quick test_profile_folded;
      Alcotest.test_case "OTLP live collector" `Quick test_otlp_collector;
      Alcotest.test_case "leak scoreboard" `Quick test_leak_derive;
      Alcotest.test_case "gate classification & thresholds file" `Quick
        test_gate_classify;
      Alcotest.test_case "gate per-metric comparison" `Quick test_gate_compare;
      Alcotest.test_case "prometheus edge cases & HELP lines" `Quick
        test_prom_edges;
      QCheck_alcotest.to_alcotest qcheck_prom_cumulative;
      Alcotest.test_case "gate profile movers" `Quick test_gate_movers;
      Alcotest.test_case "top view from one snapshot" `Quick test_top_view;
      Alcotest.test_case "top view windowed with rates" `Quick
        test_top_windowed;
      Alcotest.test_case "atomic sinks & parent dirs" `Quick test_sink_atomic;
    ] )
