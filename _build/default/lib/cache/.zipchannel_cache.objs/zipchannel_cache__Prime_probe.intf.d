lib/cache/prime_probe.mli: Cache Timing Zipchannel_util
