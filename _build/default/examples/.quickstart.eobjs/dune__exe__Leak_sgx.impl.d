examples/leak_sgx.ml: Attack Bytes Format Util Zipchannel
