(** Stdlib-identical heapsort over int keys with work counting.

    [sort_by_key a ~keys ~work ~per_cmp] sorts [a] so that
    [keys.(a.(0)) <= keys.(a.(1)) <= ...], performing the exact same
    comparison sequence as
    [Array.sort (fun x y -> work := !work + per_cmp;
                            compare keys.(x) keys.(y)) a]
    and charging [per_cmp] to [work] per comparison — but with the
    comparator expanded inline, so the hot loop has no indirect calls.
    Elements of [a] must be valid indices into [keys].  [len] restricts
    the sort to the prefix [a.(0 .. len - 1)] — for arena-backed arrays
    whose physical length exceeds the logical one — and defaults to the
    whole array. *)

val sort_by_key :
  ?len:int -> int array -> keys:int array -> work:int ref -> per_cmp:int -> unit
