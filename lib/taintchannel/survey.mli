(** Gadget surveys over many (target, input) cases, optionally in
    parallel.

    Every case runs on its own {!Engine.t}, so cases are independent and
    can execute on separate domains; results always come back in the
    order of the case list, making reports deterministic and
    byte-identical for any [jobs] value (the merge rule is: no merge —
    per-case reports are concatenated in case order). *)

type target = Zlib | Lzw | Bzip2 | Lz4 | Snappy | Aes of { key : bytes }

type case = { label : string; target : target; input : bytes }

val case : ?label:string -> target -> bytes -> case
(** [case target input] with a default label naming the target. *)

val run_case : case -> Engine.t
(** Analyse one case on a fresh engine. *)

val run : ?jobs:int -> case list -> (case * Engine.t) list
(** Analyse every case, fanning out over [jobs] domains ([jobs <= 1]
    runs sequentially in the calling domain).  Results are in case-list
    order regardless of scheduling. *)

val report : ?jobs:int -> Format.formatter -> case list -> unit
(** [run] the cases and print each engine's gadget report under a
    [== label ==] header, in case-list order. *)
