lib/cache/prime_probe.ml: Array Cache Hashtbl List Timing Zipchannel_util
