let avx_width = 32

let location = "libc!memcpy_avx_unaligned"

let run e ~size =
  if size < 0 then invalid_arg "Memcpy_model.run: size";
  Engine.branch e ~location "entry";
  let chunks = size / avx_width in
  let tail = size mod avx_width in
  if tail = 0 then begin
    Engine.branch e ~location "aligned_path";
    for _ = 1 to chunks do
      Engine.branch e ~location "vmovdqu_chunk"
    done
  end
  else begin
    Engine.branch e ~location "unaligned_path";
    for _ = 1 to chunks do
      Engine.branch e ~location "vmovdqu_chunk"
    done;
    for _ = 1 to tail do
      Engine.branch e ~location "byte_tail"
    done
  end;
  Engine.branch e ~location "ret"

let trace ~size =
  let e = Engine.create ~name:"memcpy" Bytes.empty in
  run e ~size;
  Engine.control_trace e
