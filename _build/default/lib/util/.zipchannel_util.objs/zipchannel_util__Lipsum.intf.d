lib/util/lipsum.mli: Prng
