lib/classifier/dataset.ml: Array List Zipchannel_util
