module Obs = Zipchannel_obs.Obs

type gc_delta = {
  minor_collections : int;
  major_collections : int;
  compactions : int;
  minor_words : float;
  promoted_words : float;
  heap_mb : float;
  top_heap_mb : float;
  alloc_mb : float;
  elapsed_s : float;
}

type slice = { top_span : string; samples : int; alloc_mb : float }

type report = {
  ticks : int;
  total_samples : int;
  folded : (string * int) list;
  self : (string * int * int) list;
  gc : gc_delta;
  slices : slice list;
}

let word_bytes = float_of_int (Sys.word_size / 8)
let mb_of_words w = w *. word_bytes /. 1_000_000.

(* Static metric handles (registration takes a lock; do it once). *)
let m_samples = Obs.Metrics.counter "prof.samples"
let m_ticks = Obs.Metrics.counter "prof.ticks"
let m_minor = Obs.Metrics.counter "runtime.minor_collections"
let m_major = Obs.Metrics.counter "runtime.major_collections"
let m_compact = Obs.Metrics.counter "runtime.compactions"
let m_minor_words = Obs.Metrics.counter "runtime.minor_words"
let m_promoted = Obs.Metrics.counter "runtime.promoted_words"
let g_heap = Obs.Metrics.gauge "runtime.heap_mb"
let g_top_heap = Obs.Metrics.gauge "runtime.top_heap_mb"
let g_alloc_rate = Obs.Metrics.gauge "runtime.alloc_mb_per_s"

type slice_acc = { mutable s_samples : int; mutable s_alloc_words : float }

type state = {
  mu : Mutex.t;
  folded : (string, int ref) Hashtbl.t;
  self_counters : (string, Obs.Metrics.counter) Hashtbl.t;
  by_top : (string, slice_acc) Hashtbl.t;
  mutable ticks : int;
  mutable total_samples : int;
  mutable anchor : int;
  mutable last_stat : Gc.stat;
  mutable last_ns : int;
  mutable start_ns : int;
  (* cumulative runtime deltas since start/reset *)
  mutable d_minor : int;
  mutable d_major : int;
  mutable d_compact : int;
  mutable d_minor_words : float;
  mutable d_major_words : float;
  mutable d_promoted : float;
  mutable heap_words : float;
  mutable top_heap_words : float;
}

let state =
  {
    mu = Mutex.create ();
    folded = Hashtbl.create 64;
    self_counters = Hashtbl.create 64;
    by_top = Hashtbl.create 16;
    ticks = 0;
    total_samples = 0;
    anchor = 0;
    last_stat = Gc.quick_stat ();
    last_ns = 0;
    start_ns = 0;
    d_minor = 0;
    d_major = 0;
    d_compact = 0;
    d_minor_words = 0.;
    d_major_words = 0.;
    d_promoted = 0.;
    heap_words = 0.;
    top_heap_words = 0.;
  }

let self_counter name =
  match Hashtbl.find_opt state.self_counters name with
  | Some c -> c
  | None ->
      let c = Obs.Metrics.counter ("prof.self." ^ name) in
      Hashtbl.replace state.self_counters name c;
      c

let leaf_of_path path =
  match String.rindex_opt path ';' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

let root_of_path path =
  match String.index_opt path ';' with
  | None -> path
  | Some i -> String.sub path 0 i

let bump tbl key n =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace tbl key (ref n)

(* One sampler wakeup: read every slot, fold the non-idle paths, then
   fold a [Gc.quick_stat] delta into the runtime plane.  Caller does NOT
   hold [state.mu]. *)
let tick () =
  let paths = Obs.Prof.current_paths () in
  let now = Obs.now_ns () in
  let st = Gc.quick_stat () in
  Mutex.lock state.mu;
  state.ticks <- state.ticks + 1;
  Obs.Metrics.incr m_ticks;
  Array.iteri
    (fun slot path ->
      if path <> "" then begin
        state.total_samples <- state.total_samples + 1;
        bump state.folded (Printf.sprintf "domain-%d;%s" slot path) 1;
        Obs.Metrics.incr m_samples;
        Obs.Metrics.incr (self_counter (leaf_of_path path))
      end)
    paths;
  (* Runtime delta for this window. *)
  let prev = state.last_stat in
  let dminor = st.Gc.minor_collections - prev.Gc.minor_collections in
  let dmajor = st.Gc.major_collections - prev.Gc.major_collections in
  let dcompact = st.Gc.compactions - prev.Gc.compactions in
  let dminor_w = st.Gc.minor_words -. prev.Gc.minor_words in
  let dmajor_w = st.Gc.major_words -. prev.Gc.major_words in
  let dpromoted = st.Gc.promoted_words -. prev.Gc.promoted_words in
  let alloc_w = dminor_w +. dmajor_w -. dpromoted in
  state.d_minor <- state.d_minor + dminor;
  state.d_major <- state.d_major + dmajor;
  state.d_compact <- state.d_compact + dcompact;
  state.d_minor_words <- state.d_minor_words +. dminor_w;
  state.d_major_words <- state.d_major_words +. dmajor_w;
  state.d_promoted <- state.d_promoted +. dpromoted;
  state.heap_words <- float_of_int st.Gc.heap_words;
  state.top_heap_words <- float_of_int st.Gc.top_heap_words;
  Obs.Metrics.add m_minor dminor;
  Obs.Metrics.add m_major dmajor;
  Obs.Metrics.add m_compact dcompact;
  Obs.Metrics.add m_minor_words (int_of_float dminor_w);
  Obs.Metrics.add m_promoted (int_of_float dpromoted);
  Obs.Metrics.set_gauge g_heap (mb_of_words state.heap_words);
  Obs.Metrics.set_gauge g_top_heap (mb_of_words state.top_heap_words);
  let dt_s = float_of_int (now - state.last_ns) /. 1e9 in
  if dt_s > 0. then
    Obs.Metrics.set_gauge g_alloc_rate (mb_of_words alloc_w /. dt_s);
  (* Attribute this window's allocation to whatever top-level span the
     anchor domain is inside. *)
  (if state.anchor >= 0 && state.anchor < Array.length paths then
     let anchor_path = paths.(state.anchor) in
     if anchor_path <> "" then begin
       let root = root_of_path anchor_path in
       let acc =
         match Hashtbl.find_opt state.by_top root with
         | Some a -> a
         | None ->
             let a = { s_samples = 0; s_alloc_words = 0. } in
             Hashtbl.replace state.by_top root a;
             a
       in
       acc.s_samples <- acc.s_samples + 1;
       acc.s_alloc_words <- acc.s_alloc_words +. Float.max 0. alloc_w
     end);
  state.last_stat <- st;
  state.last_ns <- now;
  Mutex.unlock state.mu

let sample_once () = tick ()

let reset () =
  Mutex.lock state.mu;
  Hashtbl.reset state.folded;
  Hashtbl.reset state.by_top;
  state.ticks <- 0;
  state.total_samples <- 0;
  state.d_minor <- 0;
  state.d_major <- 0;
  state.d_compact <- 0;
  state.d_minor_words <- 0.;
  state.d_major_words <- 0.;
  state.d_promoted <- 0.;
  state.last_stat <- Gc.quick_stat ();
  state.last_ns <- Obs.now_ns ();
  state.start_ns <- state.last_ns;
  Mutex.unlock state.mu

(* Ticker lifecycle.  The ticker runs in its own {e domain}, not a
   systhread: a systhread of the profiled domain only gets scheduled
   when that domain yields its runtime lock (every ~50 ms under a busy
   OCaml loop), which starves sampling; a domain ticks independently at
   the requested rate, reads the publication slots through atomics, and
   [Gc.quick_stat] aggregates allocation across domains, so the runtime
   plane still sees the profiled workload.  [Thread.delay] inside the
   ticker domain sleeps just that domain. *)
let run_flag = Atomic.make false
let ticker : unit Domain.t option ref = ref None
let lifecycle_mu = Mutex.create ()

let loop interval_s () =
  while Atomic.get run_flag do
    tick ();
    Thread.delay interval_s
  done

let start ?(interval_us = 1000) () =
  Mutex.lock lifecycle_mu;
  (if not (Atomic.get run_flag) then begin
     state.anchor <- Obs.Prof.slot ();
     state.last_stat <- Gc.quick_stat ();
     state.last_ns <- Obs.now_ns ();
     if state.start_ns = 0 then state.start_ns <- state.last_ns;
     Obs.Prof.set_publishing true;
     Atomic.set run_flag true;
     let interval_s = float_of_int (max 1 interval_us) /. 1e6 in
     ticker := Some (Domain.spawn (loop interval_s))
   end);
  Mutex.unlock lifecycle_mu

let stop () =
  Mutex.lock lifecycle_mu;
  (if Atomic.get run_flag then begin
     Atomic.set run_flag false;
     (match !ticker with Some d -> Domain.join d | None -> ());
     ticker := None;
     Obs.Prof.set_publishing false
   end);
  Mutex.unlock lifecycle_mu

let running () = Atomic.get run_flag

let report () =
  Mutex.lock state.mu;
  let folded =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) state.folded []
    |> List.sort (fun (ka, a) (kb, b) ->
           if a <> b then compare b a else compare ka kb)
  in
  (* Per-span self/total from the folded table. *)
  let self_tbl = Hashtbl.create 64 in
  let total_tbl = Hashtbl.create 64 in
  List.iter
    (fun (key, n) ->
      match String.split_on_char ';' key with
      | [] | [ _ ] -> ()
      | _domain :: frames ->
          let rec last = function [ x ] -> x | _ :: tl -> last tl | [] -> "" in
          bump self_tbl (last frames) n;
          let seen = Hashtbl.create 8 in
          List.iter
            (fun f ->
              if not (Hashtbl.mem seen f) then begin
                Hashtbl.replace seen f ();
                bump total_tbl f n
              end)
            frames)
    folded;
  let self =
    Hashtbl.fold
      (fun name total acc ->
        let s =
          match Hashtbl.find_opt self_tbl name with Some r -> !r | None -> 0
        in
        (name, s, !total) :: acc)
      total_tbl []
    |> List.sort (fun (na, sa, _) (nb, sb, _) ->
           if sa <> sb then compare sb sa else compare na nb)
  in
  let now = Obs.now_ns () in
  let gc =
    {
      minor_collections = state.d_minor;
      major_collections = state.d_major;
      compactions = state.d_compact;
      minor_words = state.d_minor_words;
      promoted_words = state.d_promoted;
      heap_mb = mb_of_words state.heap_words;
      top_heap_mb = mb_of_words state.top_heap_words;
      alloc_mb =
        mb_of_words
          (state.d_minor_words +. state.d_major_words -. state.d_promoted);
      elapsed_s =
        (if state.start_ns = 0 then 0.
         else float_of_int (now - state.start_ns) /. 1e9);
    }
  in
  let slices =
    Hashtbl.fold
      (fun top acc l ->
        {
          top_span = top;
          samples = acc.s_samples;
          alloc_mb = mb_of_words acc.s_alloc_words;
        }
        :: l)
      state.by_top []
    |> List.sort (fun a b ->
           if a.samples <> b.samples then compare b.samples a.samples
           else compare a.top_span b.top_span)
  in
  let r =
    {
      ticks = state.ticks;
      total_samples = state.total_samples;
      folded;
      self;
      gc;
      slices;
    }
  in
  Mutex.unlock state.mu;
  r

(* Minimal JSON string escaping — keys here are span names and folded
   paths, but be safe anyway. *)
let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fnum f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let report_to_json (r : report) =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\"ticks\": %d, \"samples\": %d, \"folded\": {" r.ticks
       r.total_samples);
  List.iteri
    (fun i (k, n) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "\"%s\": %d" (json_escape k) n))
    r.folded;
  Buffer.add_string b "}, \"self\": {";
  List.iteri
    (fun i (name, s, t) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf "\"%s\": [%d, %d]" (json_escape name) s t))
    r.self;
  Buffer.add_string b "}, \"gc\": {";
  Buffer.add_string b
    (Printf.sprintf
       "\"minor_collections\": %d, \"major_collections\": %d, \
        \"compactions\": %d, \"minor_words\": %s, \"promoted_words\": %s, \
        \"heap_mb\": %s, \"top_heap_mb\": %s, \"alloc_mb\": %s, \
        \"elapsed_s\": %s"
       r.gc.minor_collections r.gc.major_collections r.gc.compactions
       (fnum r.gc.minor_words) (fnum r.gc.promoted_words) (fnum r.gc.heap_mb)
       (fnum r.gc.top_heap_mb) (fnum r.gc.alloc_mb) (fnum r.gc.elapsed_s));
  Buffer.add_string b "}, \"slices\": [";
  List.iteri
    (fun i sl ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf
           "{\"top_span\": \"%s\", \"samples\": %d, \"alloc_mb\": %s}"
           (json_escape sl.top_span) sl.samples (fnum sl.alloc_mb)))
    r.slices;
  Buffer.add_string b "]}";
  Buffer.contents b

let folded_lines ?prefix (r : report) =
  let b = Buffer.create 256 in
  List.iter
    (fun (k, n) ->
      (match prefix with
      | Some p ->
          Buffer.add_string b p;
          Buffer.add_char b ';'
      | None -> ());
      Buffer.add_string b k;
      Buffer.add_char b ' ';
      Buffer.add_string b (string_of_int n);
      Buffer.add_char b '\n')
    r.folded;
  Buffer.contents b
