(** Baseline attack using timer-interrupt single stepping.

    The paper notes that prior enclave attacks single-step with timer
    interrupts, which the authors "found to be unreliable", motivating
    their mprotect controlled channel (Section V-A).  This module makes
    that comparison measurable: the same Prime+Probe channel and recovery
    math as {!Sgx_attack}, but windows are delimited by a jittery
    instruction-count timer instead of page faults, so the attacker must
    guess how many ftab accesses each window held — and misalignments
    corrupt the downstream recovery chain. *)

type config = {
  interval_mean : float;  (** victim instructions per interrupt *)
  interval_jitter : float;  (** standard deviation of the interval *)
  use_cat : bool;
  cache_config : Zipchannel_cache.Cache.config;
  timing : Zipchannel_cache.Timing.t;
  seed : int;
}

val default_config : config
(** Mean 3 (one loop iteration), jitter 1, CAT on. *)

type result = {
  recovered : bytes;
  byte_accuracy : float;
  bit_accuracy : float;
  windows : int;  (** interrupts taken *)
  observed_events : int;  (** evictions the attacker assigned to iterations *)
}

val run : ?config:config -> bytes -> result
