open Zipchannel_taint

let te_base = 0x7f2bc0000000

let location = "/path/to/libcrypto.so!aes_encrypt+92"

let sbox =
  [| 0x63; 0x7c; 0x77; 0x7b; 0xf2; 0x6b; 0x6f; 0xc5; 0x30; 0x01; 0x67; 0x2b;
     0xfe; 0xd7; 0xab; 0x76; 0xca; 0x82; 0xc9; 0x7d; 0xfa; 0x59; 0x47; 0xf0;
     0xad; 0xd4; 0xa2; 0xaf; 0x9c; 0xa4; 0x72; 0xc0; 0xb7; 0xfd; 0x93; 0x26;
     0x36; 0x3f; 0xf7; 0xcc; 0x34; 0xa5; 0xe5; 0xf1; 0x71; 0xd8; 0x31; 0x15;
     0x04; 0xc7; 0x23; 0xc3; 0x18; 0x96; 0x05; 0x9a; 0x07; 0x12; 0x80; 0xe2;
     0xeb; 0x27; 0xb2; 0x75; 0x09; 0x83; 0x2c; 0x1a; 0x1b; 0x6e; 0x5a; 0xa0;
     0x52; 0x3b; 0xd6; 0xb3; 0x29; 0xe3; 0x2f; 0x84; 0x53; 0xd1; 0x00; 0xed;
     0x20; 0xfc; 0xb1; 0x5b; 0x6a; 0xcb; 0xbe; 0x39; 0x4a; 0x4c; 0x58; 0xcf;
     0xd0; 0xef; 0xaa; 0xfb; 0x43; 0x4d; 0x33; 0x85; 0x45; 0xf9; 0x02; 0x7f;
     0x50; 0x3c; 0x9f; 0xa8; 0x51; 0xa3; 0x40; 0x8f; 0x92; 0x9d; 0x38; 0xf5;
     0xbc; 0xb6; 0xda; 0x21; 0x10; 0xff; 0xf3; 0xd2; 0xcd; 0x0c; 0x13; 0xec;
     0x5f; 0x97; 0x44; 0x17; 0xc4; 0xa7; 0x7e; 0x3d; 0x64; 0x5d; 0x19; 0x73;
     0x60; 0x81; 0x4f; 0xdc; 0x22; 0x2a; 0x90; 0x88; 0x46; 0xee; 0xb8; 0x14;
     0xde; 0x5e; 0x0b; 0xdb; 0xe0; 0x32; 0x3a; 0x0a; 0x49; 0x06; 0x24; 0x5c;
     0xc2; 0xd3; 0xac; 0x62; 0x91; 0x95; 0xe4; 0x79; 0xe7; 0xc8; 0x37; 0x6d;
     0x8d; 0xd5; 0x4e; 0xa9; 0x6c; 0x56; 0xf4; 0xea; 0x65; 0x7a; 0xae; 0x08;
     0xba; 0x78; 0x25; 0x2e; 0x1c; 0xa6; 0xb4; 0xc6; 0xe8; 0xdd; 0x74; 0x1f;
     0x4b; 0xbd; 0x8b; 0x8a; 0x70; 0x3e; 0xb5; 0x66; 0x48; 0x03; 0xf6; 0x0e;
     0x61; 0x35; 0x57; 0xb9; 0x86; 0xc1; 0x1d; 0x9e; 0xe1; 0xf8; 0x98; 0x11;
     0x69; 0xd9; 0x8e; 0x94; 0x9b; 0x1e; 0x87; 0xe9; 0xce; 0x55; 0x28; 0xdf;
     0x8c; 0xa1; 0x89; 0x0d; 0xbf; 0xe6; 0x42; 0x68; 0x41; 0x99; 0x2d; 0x0f;
     0xb0; 0x54; 0xbb; 0x16 |]

let xtime b =
  let d = b lsl 1 in
  if b land 0x80 <> 0 then (d lxor 0x1b) land 0xff else d land 0xff

(* Te0[x] = [2s, s, s, 3s] packed big-endian; the other three tables are
   byte rotations of it. *)
let te0 =
  Array.init 256 (fun x ->
      let s = sbox.(x) in
      let s2 = xtime s in
      let s3 = s2 lxor s in
      (s2 lsl 24) lor (s lsl 16) lor (s lsl 8) lor s3)

let mask32 = 0xffffffff

let ror32 x n = ((x lsr n) lor (x lsl (32 - n))) land mask32

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1b; 0x36 |]

let sub_word w =
  (sbox.((w lsr 24) land 0xff) lsl 24)
  lor (sbox.((w lsr 16) land 0xff) lsl 16)
  lor (sbox.((w lsr 8) land 0xff) lsl 8)
  lor sbox.(w land 0xff)

let rot_word w = ((w lsl 8) lor (w lsr 24)) land mask32

let expand_key key =
  if Bytes.length key <> 16 then invalid_arg "Aes: key must be 16 bytes";
  let word i =
    (Char.code (Bytes.get key (4 * i)) lsl 24)
    lor (Char.code (Bytes.get key ((4 * i) + 1)) lsl 16)
    lor (Char.code (Bytes.get key ((4 * i) + 2)) lsl 8)
    lor Char.code (Bytes.get key ((4 * i) + 3))
  in
  let w = Array.make 44 0 in
  for i = 0 to 3 do
    w.(i) <- word i
  done;
  for i = 4 to 43 do
    let temp =
      if i mod 4 = 0 then
        sub_word (rot_word w.(i - 1)) lxor (rcon.((i / 4) - 1) lsl 24)
      else w.(i - 1)
    in
    w.(i) <- w.(i - 4) lxor temp land mask32
  done;
  w

let load_state block off =
  Array.init 4 (fun c ->
      (Char.code (Bytes.get block (off + (4 * c))) lsl 24)
      lor (Char.code (Bytes.get block (off + (4 * c) + 1)) lsl 16)
      lor (Char.code (Bytes.get block (off + (4 * c) + 2)) lsl 8)
      lor Char.code (Bytes.get block (off + (4 * c) + 3)))

let round_column rk s0 s1 s2 s3 =
  te0.((s0 lsr 24) land 0xff)
  lxor ror32 te0.((s1 lsr 16) land 0xff) 8
  lxor ror32 te0.((s2 lsr 8) land 0xff) 16
  lxor ror32 te0.(s3 land 0xff) 24
  lxor rk

let last_round_column rk t0 t1 t2 t3 =
  (sbox.((t0 lsr 24) land 0xff) lsl 24)
  lor (sbox.((t1 lsr 16) land 0xff) lsl 16)
  lor (sbox.((t2 lsr 8) land 0xff) lsl 8)
  lor sbox.(t3 land 0xff)
  lxor rk

let encrypt_state w s =
  let s = Array.mapi (fun i v -> v lxor w.(i)) s in
  let cur = ref s in
  for r = 1 to 9 do
    let s = !cur in
    cur :=
      [|
        round_column w.((4 * r) + 0) s.(0) s.(1) s.(2) s.(3);
        round_column w.((4 * r) + 1) s.(1) s.(2) s.(3) s.(0);
        round_column w.((4 * r) + 2) s.(2) s.(3) s.(0) s.(1);
        round_column w.((4 * r) + 3) s.(3) s.(0) s.(1) s.(2);
      |]
  done;
  let s = !cur in
  [|
    last_round_column w.(40) s.(0) s.(1) s.(2) s.(3);
    last_round_column w.(41) s.(1) s.(2) s.(3) s.(0);
    last_round_column w.(42) s.(2) s.(3) s.(0) s.(1);
    last_round_column w.(43) s.(3) s.(0) s.(1) s.(2);
  |]

let store_state s =
  Bytes.init 16 (fun i ->
      let word = s.(i / 4) in
      Char.chr ((word lsr (8 * (3 - (i mod 4)))) land 0xff))

let encrypt_block ~key block =
  if Bytes.length block <> 16 then invalid_arg "Aes: block must be 16 bytes";
  store_state (encrypt_state (expand_key key) (load_state block 0))

let encrypt ~key data =
  let w = expand_key key in
  let blocks = (Bytes.length data + 15) / 16 in
  let out = Buffer.create (16 * blocks) in
  for b = 0 to blocks - 1 do
    let padded = Bytes.make 16 '\000' in
    let len = min 16 (Bytes.length data - (16 * b)) in
    Bytes.blit data (16 * b) padded 0 len;
    Buffer.add_bytes out (store_state (encrypt_state w (load_state padded 0)))
  done;
  Buffer.to_bytes out

let run_taint ?(te_base = te_base) ~key input =
  let e = Engine.create ~name:"openssl-aes" input in
  let w = expand_key key in
  let base = Tval.const ~width:48 te_base in
  let n = Bytes.length input in
  let blocks = (n + 15) / 16 in
  for b = 0 to blocks - 1 do
    (* First round: state byte = plaintext byte xor round-key byte; the
       T-table index is that byte, so its address is fully tainted by one
       plaintext byte — the Osvik et al. gadget. *)
    for i = 0 to 15 do
      let off = (16 * b) + i in
      if off < n then begin
        let p = Engine.input_byte e off in
        let kbyte = (w.(i / 4) lsr (8 * (3 - (i mod 4)))) land 0xff in
        let x = Tval.logxor p (Tval.const ~width:8 kbyte) in
        Engine.log_op e ~location:"aes!add_round_key" ~mnemonic:"xor rk, p"
          ~operands:[ ("al", x) ];
        let idx = Tval.zero_extend ~width:48 x in
        let addr = Tval.add base (Tval.shift_left idx 2) in
        ignore
          (Engine.load e ~location ~mnemonic:"mov (Te0,%rax,4) -> %edx"
             ~index:("rax", x) ~addr ~size:4 ())
      end
    done
  done;
  e
