module Metrics = Zipchannel_obs.Obs.Metrics

let hist_of_json j =
  let int key = Option.bind (Json.member key j) Json.to_int in
  match (int "count", int "sum", Json.member "buckets" j) with
  | Some count, Some sum, Some (Json.Obj buckets) ->
      let buckets =
        List.filter_map
          (fun (b, n) ->
            match (int_of_string_opt b, Json.to_int n) with
            | Some b, Some n -> Some (b, n)
            | _ -> None)
          buckets
      in
      { Metrics.count; sum; buckets }
  | _ -> failwith "Snapshot_io: malformed histogram"

let of_json j =
  let section key =
    match Json.member key j with
    | Some (Json.Obj members) -> members
    | _ -> failwith ("Snapshot_io: missing \"" ^ key ^ "\" section")
  in
  let num_exn v =
    match Json.to_num v with
    | Some f -> f
    | None -> failwith "Snapshot_io: non-numeric metric value"
  in
  {
    Metrics.counters =
      List.map (fun (k, v) -> (k, int_of_float (num_exn v))) (section "counters");
    gauges = List.map (fun (k, v) -> (k, num_exn v)) (section "gauges");
    histograms = List.map (fun (k, v) -> (k, hist_of_json v)) (section "histograms");
  }

let of_string s = of_json (Json.parse s)

let read_file path =
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string content

let is_snapshot = function
  | Json.Obj _ as j -> Json.member "counters" j <> None
  | _ -> false
