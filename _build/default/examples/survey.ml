(* The Section IV survey as a runnable program: apply TaintChannel to the
   three compression families (and the AES validation target), print each
   gadget in the paper's report format, and summarise what fraction of the
   input reaches a dereferenced address.

     dune exec examples/survey.exe *)

open Zipchannel

let () =
  let ppf = Format.std_formatter in
  let prng = Util.Prng.create ~seed:0x5EAC7 () in
  let input = Util.Prng.bytes prng 2000 in
  let targets =
    [
      ("LZ77 / Zlib", fun () -> Taintchannel.Zlib_gadget.run input);
      ("LZ78 / Ncompress", fun () -> Taintchannel.Lzw_gadget.run input);
      ("BWT / Bzip2", fun () -> Taintchannel.Bzip2_gadget.run input);
      ( "AES T-tables (validation)",
        fun () ->
          Taintchannel.Aes.run_taint
            ~key:(Bytes.of_string "0123456789abcdef")
            (Bytes.sub input 0 64) );
    ]
  in
  let summary =
    List.map
      (fun (name, run) ->
        Format.fprintf ppf "@.===== %s =====@." name;
        let engine = run () in
        Taintchannel.Engine.report ppf engine;
        let best =
          List.fold_left
            (fun acc g ->
              Float.max acc
                (Taintchannel.Gadget.coverage g
                   ~input_length:(Taintchannel.Engine.input_length engine)))
            0.0
            (Taintchannel.Engine.gadgets engine)
        in
        (name, best))
      targets
  in
  Format.fprintf ppf "@.===== survey summary (Section IV-E) =====@.";
  List.iter
    (fun (name, coverage) ->
      Format.fprintf ppf "  %-28s leaks %5.1f%% of its input through addresses@."
        name (100.0 *. coverage))
    summary
