(* Zipchannel.Obs_prof: the sampling profiler.  Publication slots, the
   deterministic sample_once plane, folded/self accumulation, the
   runtime (GC) telemetry, the ticker domain, and the side-band
   guarantee: compressed output is byte-identical with the sampler on
   or off, at any --jobs. *)

module Obs = Zipchannel_obs.Obs
module Prof = Zipchannel.Obs_prof
module Frame = Zipchannel.Frame
module Prng = Zipchannel.Util.Prng

let with_publishing f =
  Obs.Prof.set_publishing true;
  Fun.protect ~finally:(fun () -> Obs.Prof.set_publishing false) f

(* ------------------------------------------------------------------ *)
(* Publication slots: with_span maintains the per-domain path *)

let test_slot_paths () =
  with_publishing @@ fun () ->
  Alcotest.(check string) "idle slot is empty" "" (Obs.Prof.current_path ());
  Obs.with_span "outer" (fun () ->
      Alcotest.(check string) "root span published" "outer"
        (Obs.Prof.current_path ());
      Obs.with_span "inner" (fun () ->
          Alcotest.(check string) "nested path joins with ;" "outer;inner"
            (Obs.Prof.current_path ()));
      Alcotest.(check string) "pop restores the parent" "outer"
        (Obs.Prof.current_path ()));
  Alcotest.(check string) "leaving the root clears the slot" ""
    (Obs.Prof.current_path ());
  (try Obs.with_span "raises" (fun () -> raise Exit) with Exit -> ());
  Alcotest.(check string) "a raising body still pops" ""
    (Obs.Prof.current_path ())

let test_publishing_off () =
  Obs.Prof.set_publishing false;
  Obs.with_span "quiet" (fun () ->
      Alcotest.(check string) "no publication when off" ""
        (Obs.Prof.current_path ()));
  (* turning publication off clears any stale slot contents *)
  Obs.Prof.set_publishing true;
  Alcotest.(check bool) "publishing readable" true (Obs.Prof.publishing ());
  Obs.Prof.set_publishing false;
  Alcotest.(check bool) "all slots empty after disable" true
    (Array.for_all (( = ) "") (Obs.Prof.current_paths ()))

(* ------------------------------------------------------------------ *)
(* Deterministic accumulation via sample_once *)

let test_sample_once () =
  with_publishing @@ fun () ->
  Prof.reset ();
  Obs.with_span "outer" (fun () ->
      Obs.with_span "inner" (fun () ->
          Prof.sample_once ();
          Prof.sample_once ()));
  Obs.with_span "outer" (fun () -> Prof.sample_once ());
  let r = Prof.report () in
  Alcotest.(check int) "three ticks" 3 r.Prof.ticks;
  Alcotest.(check int) "three non-idle samples" 3 r.Prof.total_samples;
  let key suffix = Printf.sprintf "domain-%d;%s" (Obs.Prof.slot ()) suffix in
  Alcotest.(check (option int)) "folded outer;inner" (Some 2)
    (List.assoc_opt (key "outer;inner") r.Prof.folded);
  Alcotest.(check (option int)) "folded outer" (Some 1)
    (List.assoc_opt (key "outer") r.Prof.folded);
  let find name =
    List.find_opt (fun (n, _, _) -> n = name) r.Prof.self
  in
  (match find "inner" with
  | Some (_, self, total) ->
      Alcotest.(check int) "inner self" 2 self;
      Alcotest.(check int) "inner total" 2 total
  | None -> Alcotest.fail "no self entry for inner");
  (match find "outer" with
  | Some (_, self, total) ->
      Alcotest.(check int) "outer self counts leaf ticks only" 1 self;
      Alcotest.(check int) "outer total counts nested ticks" 3 total
  | None -> Alcotest.fail "no self entry for outer");
  (* the anchor slot's root component attributes the tick *)
  match r.Prof.slices with
  | { Prof.top_span = "outer"; samples = 3; _ } :: _ -> ()
  | _ -> Alcotest.fail "expected one slice: outer with 3 samples"

let test_metrics_publication () =
  Obs.Metrics.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.Metrics.reset ())
  @@ fun () ->
  with_publishing @@ fun () ->
  Prof.reset ();
  Obs.with_span "leafy" (fun () -> Prof.sample_once ());
  let snap = Obs.Metrics.snapshot () in
  Alcotest.(check (option int)) "prof.samples counter" (Some 1)
    (List.assoc_opt "prof.samples" snap.Obs.Metrics.counters);
  Alcotest.(check (option int)) "prof.ticks counter" (Some 1)
    (List.assoc_opt "prof.ticks" snap.Obs.Metrics.counters);
  Alcotest.(check (option int)) "per-leaf self counter" (Some 1)
    (List.assoc_opt "prof.self.leafy" snap.Obs.Metrics.counters);
  Alcotest.(check bool) "runtime.heap_mb gauge exported" true
    (List.mem_assoc "runtime.heap_mb" snap.Obs.Metrics.gauges)

(* ------------------------------------------------------------------ *)
(* Runtime (GC) telemetry *)

let test_runtime_plane () =
  Prof.reset ();
  Prof.sample_once ();
  let junk = ref [] in
  for _ = 1 to 200 do
    junk := Bytes.create 10_000 :: !junk
  done;
  ignore (Sys.opaque_identity !junk);
  Prof.sample_once ();
  let r = Prof.report () in
  Alcotest.(check bool) "~2 MB of allocation observed" true
    (r.Prof.gc.Prof.alloc_mb > 0.5);
  Alcotest.(check bool) "minor words grow" true
    (r.Prof.gc.Prof.minor_words > 0.);
  Alcotest.(check bool) "elapsed window positive" true
    (r.Prof.gc.Prof.elapsed_s > 0.)

(* ------------------------------------------------------------------ *)
(* The ticker domain samples a busy span without cooperation *)

let test_ticker () =
  Prof.reset ();
  Prof.start ~interval_us:500 ();
  Alcotest.(check bool) "running after start" true (Prof.running ());
  Alcotest.(check bool) "start turns publishing on" true
    (Obs.Prof.publishing ());
  let t0 = Obs.now_ns () in
  while Obs.now_ns () - t0 < 80_000_000 do
    Obs.with_span "busy" (fun () ->
        ignore (Sys.opaque_identity (Bytes.create 4096)))
  done;
  Prof.stop ();
  Alcotest.(check bool) "stopped" false (Prof.running ());
  Alcotest.(check bool) "stop turns publishing off" false
    (Obs.Prof.publishing ());
  let r = Prof.report () in
  Alcotest.(check bool) "ticker collected samples" true
    (r.Prof.total_samples > 0);
  Alcotest.(check bool) "busy span dominates the self table" true
    (match r.Prof.self with ("busy", _, _) :: _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* report_to_json / folded_lines round-trip through the JSON reader *)

let test_report_json () =
  with_publishing @@ fun () ->
  Prof.reset ();
  Obs.with_span "a" (fun () ->
      Obs.with_span "b" (fun () -> Prof.sample_once ()));
  let r = Prof.report () in
  let module J = Zipchannel.Obs_export.Json in
  let j = J.parse (Prof.report_to_json r) in
  Alcotest.(check (option (float 1e-9))) "samples" (Some 1.0)
    (Option.bind (J.member "samples" j) J.to_num);
  (match Option.bind (J.member "self" j) (J.member "b") with
  | Some (J.Arr [ J.Num self; J.Num total ]) ->
      Alcotest.(check (float 1e-9)) "b self" 1.0 self;
      Alcotest.(check (float 1e-9)) "b total" 1.0 total
  | _ -> Alcotest.fail "no self entry for b in JSON");
  Alcotest.(check bool) "gc object present" true
    (Option.is_some (Option.bind (J.member "gc" j) (J.member "minor_words")));
  let folded = Prof.folded_lines ~prefix:"case" r in
  Alcotest.(check string) "folded line carries prefix and count"
    (Printf.sprintf "case;domain-%d;a;b 1\n" (Obs.Prof.slot ()))
    folded

(* ------------------------------------------------------------------ *)
(* Side-band guarantee: sampler on/off never changes compressed bytes *)

let compress_sampled ~sampler ~jobs data =
  if sampler then begin
    Prof.reset ();
    Prof.start ~interval_us:500 ()
  end;
  Fun.protect
    ~finally:(fun () -> if sampler then Prof.stop ())
    (fun () -> Frame.compress ~frame_size:16_384 ~jobs ~codec:Frame.Deflate data)

let test_sideband_fixture () =
  let prng = Prng.create ~seed:77 () in
  let data =
    Bytes.of_string
      (Zipchannel.Util.Lipsum.repetitive_file prng ~level:4 ~size:200_000)
  in
  let baseline = compress_sampled ~sampler:false ~jobs:1 data in
  List.iter
    (fun jobs ->
      let on = compress_sampled ~sampler:true ~jobs data in
      let off = compress_sampled ~sampler:false ~jobs data in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d: sampler on = sampler off" jobs)
        true
        (Bytes.equal on off);
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d: identical to jobs=1 baseline" jobs)
        true (Bytes.equal on baseline))
    [ 1; 4 ]

let qcheck_sideband =
  QCheck.Test.make ~name:"sampler on/off byte-identity (random inputs)"
    ~count:15
    QCheck.(
      pair
        (string_gen_of_size Gen.(0 -- 8192) Gen.printable)
        (int_bound 1))
    (fun (s, jobs_flag) ->
      let jobs = if jobs_flag = 0 then 1 else 4 in
      let data = Bytes.of_string s in
      let on = compress_sampled ~sampler:true ~jobs data in
      let off = compress_sampled ~sampler:false ~jobs data in
      Bytes.equal on off)

let suite =
  ( "obs_prof",
    [
      Alcotest.test_case "publication slot paths" `Quick test_slot_paths;
      Alcotest.test_case "publishing off: slots stay empty" `Quick
        test_publishing_off;
      Alcotest.test_case "sample_once folds deterministically" `Quick
        test_sample_once;
      Alcotest.test_case "prof.* / runtime.* metric publication" `Quick
        test_metrics_publication;
      Alcotest.test_case "runtime plane sees allocation" `Quick
        test_runtime_plane;
      Alcotest.test_case "ticker domain samples a busy span" `Slow test_ticker;
      Alcotest.test_case "report JSON & folded lines" `Quick test_report_json;
      Alcotest.test_case "side-band: fixture byte-identity (jobs 1 & 4)"
        `Quick test_sideband_fixture;
      QCheck_alcotest.to_alcotest qcheck_sideband;
    ] )
