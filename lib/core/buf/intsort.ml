(* Stdlib-identical heapsort specialised to int keys with work counting.

   [Bwt.sort_rotations_work] must report the exact comparison count of
   the seed implementation — the count *is* the modelled side channel —
   so it cannot swap [Array.sort] for a different algorithm.  What it
   can do is drop the per-comparison closure: this is the ternary
   heapsort of [Stdlib.Array.sort], transcribed with the comparator
   [fun x y -> work += per_cmp; compare keys.(x) keys.(y)] expanded
   inline at each of the call sites the stdlib version has.  It
   performs the same comparisons in the same order on every input, so
   both the resulting permutation and the work count are identical
   while the hot loop runs on immediate ints with no indirect calls. *)

exception Bottom of int

let sort_by_key ?len a ~keys ~work ~per_cmp =
  (* key of the element stored at position [i] of [a]. *)
  let kat i = Array.unsafe_get keys (Array.unsafe_get a i) in
  let maxson l i =
    let i31 = i + i + i + 1 in
    let x = ref i31 in
    if i31 + 2 < l then begin
      work := !work + per_cmp;
      if (kat i31 : int) < kat (i31 + 1) then x := i31 + 1;
      work := !work + per_cmp;
      if (kat !x : int) < kat (i31 + 2) then x := i31 + 2;
      !x
    end
    else if
      i31 + 1 < l
      && (work := !work + per_cmp;
          (kat i31 : int) < kat (i31 + 1))
    then i31 + 1
    else if i31 < l then i31
    else raise (Bottom i)
  in
  let rec trickledown l i e ke =
    let j = maxson l i in
    work := !work + per_cmp;
    if (kat j : int) > ke then begin
      Array.unsafe_set a i (Array.unsafe_get a j);
      trickledown l j e ke
    end
    else Array.unsafe_set a i e
  in
  let trickle l i e =
    try trickledown l i e (Array.unsafe_get keys e)
    with Bottom i -> Array.unsafe_set a i e
  in
  let rec bubbledown l i =
    let j = maxson l i in
    Array.unsafe_set a i (Array.unsafe_get a j);
    bubbledown l j
  in
  let bubble l i = try bubbledown l i with Bottom i -> i in
  let rec trickleup i e ke =
    let father = (i - 1) / 3 in
    work := !work + per_cmp;
    if (kat father : int) < ke then begin
      Array.unsafe_set a i (Array.unsafe_get a father);
      if father > 0 then trickleup father e ke else Array.unsafe_set a 0 e
    end
    else Array.unsafe_set a i e
  in
  let l = match len with Some l -> l | None -> Array.length a in
  if l < 0 || l > Array.length a then invalid_arg "Intsort.sort_by_key: len";
  for i = ((l + 1) / 3) - 1 downto 0 do
    trickle l i (Array.unsafe_get a i)
  done;
  for i = l - 1 downto 2 do
    let e = Array.unsafe_get a i in
    Array.unsafe_set a i (Array.unsafe_get a 0);
    trickleup (bubble i 0) e (Array.unsafe_get keys e)
  done;
  if l > 1 then begin
    let e = Array.unsafe_get a 1 in
    Array.unsafe_set a 1 (Array.unsafe_get a 0);
    Array.unsafe_set a 0 e
  end
