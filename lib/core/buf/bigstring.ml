(* Off-heap char buffers with unaligned word access.

   A [t] is a plain [Bigarray.Array1] of chars: the GC never moves or
   scans it, so the compression kernels can hold multi-megabyte scratch
   without major-heap pressure, and the compiler's bigstring primitives
   give single-instruction unaligned 8/16/32/64-bit loads and stores.
   Everything here is a thin veneer over those primitives; the word
   helpers assume a little-endian target (checked once at load). *)

type t = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let create len : t = Bigarray.Array1.create Bigarray.char Bigarray.c_layout len

let length (t : t) = Bigarray.Array1.dim t

let get (t : t) i = Bigarray.Array1.get t i

let set (t : t) i c = Bigarray.Array1.set t i c

external unsafe_get : t -> int -> char = "%caml_ba_unsafe_ref_1"

external unsafe_set : t -> int -> char -> unit = "%caml_ba_unsafe_set_1"

(* Unaligned word access, native (little) endian.  The [u] suffix marks
   the unchecked variants: the caller owns the bounds proof. *)
external get16u : t -> int -> int = "%caml_bigstring_get16u"

external get32u : t -> int -> int32 = "%caml_bigstring_get32u"

external get64u : t -> int -> int64 = "%caml_bigstring_get64u"

external set16u : t -> int -> int -> unit = "%caml_bigstring_set16u"

external set32u : t -> int -> int32 -> unit = "%caml_bigstring_set32u"

external set64u : t -> int -> int64 -> unit = "%caml_bigstring_set64u"

(* The same unaligned word access over [bytes], used by readers that
   stay zero-copy over caller-owned buffers. *)
external bytes_get64u : bytes -> int -> int64 = "%caml_bytes_get64u"

external bytes_set64u : bytes -> int -> int64 -> unit = "%caml_bytes_set64u"

let () =
  (* The first-mismatch scan reads words and locates the differing byte
     from the low end; that is only the *first* byte in memory order on a
     little-endian target.  Every supported platform is little-endian —
     fail loudly rather than silently mis-compress on one that is not. *)
  if Sys.big_endian then
    failwith "Zipchannel_buf.Bigstring: big-endian targets are unsupported"

let blit_of_bytes src ~src_off (dst : t) ~dst_off ~len =
  if len < 0 || src_off < 0 || dst_off < 0
     || src_off + len > Bytes.length src
     || dst_off + len > length dst
  then invalid_arg "Bigstring.blit_of_bytes";
  let words = len lsr 3 in
  for w = 0 to words - 1 do
    set64u dst (dst_off + (w lsl 3)) (bytes_get64u src (src_off + (w lsl 3)))
  done;
  for i = words lsl 3 to len - 1 do
    unsafe_set dst (dst_off + i) (Bytes.unsafe_get src (src_off + i))
  done

let blit_to_bytes (src : t) ~src_off dst ~dst_off ~len =
  if len < 0 || src_off < 0 || dst_off < 0
     || src_off + len > length src
     || dst_off + len > Bytes.length dst
  then invalid_arg "Bigstring.blit_to_bytes";
  let words = len lsr 3 in
  for w = 0 to words - 1 do
    bytes_set64u dst (dst_off + (w lsl 3)) (get64u src (src_off + (w lsl 3)))
  done;
  for i = words lsl 3 to len - 1 do
    Bytes.unsafe_set dst (dst_off + i) (unsafe_get src (src_off + i))
  done

let blit (src : t) ~src_off (dst : t) ~dst_off ~len =
  if len < 0 || src_off < 0 || dst_off < 0
     || src_off + len > length src
     || dst_off + len > length dst
  then invalid_arg "Bigstring.blit";
  Bigarray.Array1.blit
    (Bigarray.Array1.sub src src_off len)
    (Bigarray.Array1.sub dst dst_off len)

let of_bytes b =
  let t = create (Bytes.length b) in
  blit_of_bytes b ~src_off:0 t ~dst_off:0 ~len:(Bytes.length b);
  t

let to_bytes (t : t) ~off ~len =
  if off < 0 || len < 0 || off + len > length t then
    invalid_arg "Bigstring.to_bytes";
  let b = Bytes.create len in
  blit_to_bytes t ~src_off:off b ~dst_off:0 ~len;
  b

(* Index (within the low 8 bytes) of the least significant non-zero byte
   of [x] — on little-endian, the first differing byte in memory order. *)
let first_nonzero_byte x =
  let rec go i x =
    if Int64.logand x 0xFFL <> 0L then i
    else go (i + 1) (Int64.shift_right_logical x 8)
  in
  go 0 x

let common_prefix (t : t) i j ~limit =
  if limit < 0 || i < 0 || j < 0 || i + limit > length t || j + limit > length t
  then invalid_arg "Bigstring.common_prefix";
  let len = ref 0 in
  let words = limit lsr 3 in
  let w = ref 0 in
  let stop = ref false in
  while (not !stop) && !w < words do
    let x = Int64.logxor (get64u t (i + !len)) (get64u t (j + !len)) in
    if x = 0L then begin
      len := !len + 8;
      incr w
    end
    else begin
      len := !len + first_nonzero_byte x;
      stop := true
    end
  done;
  if not !stop then
    while
      !len < limit && unsafe_get t (i + !len) = unsafe_get t (j + !len)
    do
      incr len
    done;
  !len
