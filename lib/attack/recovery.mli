(** Algorithmic recovery of plaintext from cache-line-granular address
    traces — the "algorithmic computation" step of the attacks
    (Sections IV-B, IV-C, IV-D, V-D).

    Every function takes observations as the line-masked addresses the
    cache channel yields: the victim's dereferenced address with its low
    6 bits zeroed. *)

val line_mask : int -> int
(** Drop the 6 offset bits: what the channel reveals of an address. *)

(** {1 Zlib (Listing 1)} *)

val zlib_observe : head_base:int -> ins_h:int -> int
(** The line address an attacker sees for one INSERT_STRING
    ([head + ins_h*2], masked) — for building simulated traces. *)

val zlib_direct_bits : head_base:int -> int array -> int array
(** From the per-insert trace, the two plaintext bits (bits 3–4) that
    reach the observable address un-xor'ed: element [k] is bits 3–4 of
    input byte [k+1] (the middle byte of window [k]).  This is the
    unconditional 25%-of-a-byte leak of Section IV-B. *)

val zlib_resolve_candidates :
  head_base:int -> int list array -> int option array
(** Resolve noisy per-window candidate sets (several line addresses, or
    none) using the overlap redundancy of Section V-D: bits 10–14 of each
    window's hash equal bits 5–9 of its predecessor's, so a neighbour
    pins which candidate is real.  [None] where no candidate survives. *)

val zlib_recover_lowercase :
  ?high_bits:int -> head_base:int -> n:int -> int array -> bytes
(** Full recovery under the paper's known-plaintext-class assumption: all
    bytes share the same top three bits [high_bits] (default 0b011, the
    lowercase-ASCII range).  Recovers every byte except the last, whose
    low bits never reach the channel; the last byte is filled with
    [high_bits lsl 5]. *)

(** {1 Ncompress / LZW (Listing 2)} *)

val lzw_observe : htab_base:int -> hp:int -> int

val lzw_candidate_firsts : htab_base:int -> int array -> int list
(** The 8 candidates for the first input byte: its bits 3–7 leak through
    the first probe's address, its low 3 bits are below line granularity
    (Section IV-C). *)

val lzw_recover : htab_base:int -> first:int -> int array -> bytes
(** Recover the whole input given the first byte: mirrors the victim's
    dictionary on the recovered prefix to compute each step's [ent] and
    peels the fresh byte out of bits 9–16 of the observed index.
    [observed] holds the line-masked address of the {e first} probe of
    each lookup, in input order (length [n-1]). *)

val lzw_consistency : htab_base:int -> first:int -> int array -> float
(** Fraction of steps at which the mirrored [ent]'s observable bits (3–8)
    agree with the observation.  1.0 for the correct first byte; drops for
    candidates wrong in an observable bit or for corrupted traces.  The 8
    line-granularity candidates (differing only in bits 0–2) produce
    isomorphic dictionaries and all score 1.0 — they are information-
    theoretically indistinguishable from the trace alone. *)

val lzw_recover_auto : ?jobs:int -> htab_base:int -> int array -> bytes
(** Try all 8 first-byte candidates and return "the most feasible input"
    (Section IV-C): highest trace consistency, ties broken towards a
    printable first byte.  Every byte after the first is exact on a clean
    trace; the first byte's low 3 bits are inherently ambiguous.  [jobs]
    scores the candidates on that many domains; the result is identical
    for any value (default 1, sequential). *)

val lzw_recover_from_candidates :
  htab_base:int -> first:int -> int list array -> bytes * float
(** Recovery over noisy per-lookup candidate sets (each element: the
    line-masked addresses a probe window yielded; empty = lost).  At each
    step the mirrored [ent] predicts bits 3–8 of the true index, which
    selects among the candidates; the returned score is the fraction of
    steps with exactly one consistent candidate.  A wrong [first] (in an
    unobservable bit) desynchronises the mirror as soon as the first byte
    recurs in the input, so the score separates the 2³ candidates. *)

val lzw_recover_candidates_auto : htab_base:int -> int list array -> bytes
(** [lzw_recover_from_candidates] over the 8 first-byte candidates
    implied by the first reading; best score wins, printability breaks
    ties. *)

(** {1 Bzip2 (Listing 3)} *)

val bzip2_observe : ftab_base:int -> j:int -> int

val bzip2_window : ftab_base:int -> int -> int * int
(** The inclusive range [jmin, jmax] of histogram indices compatible with
    one observed line address — 16 candidates, possibly straddling a
    high-byte boundary when [ftab] is not line-aligned (the off-by-one
    ambiguity of Section IV-D). *)

val bzip2_recover_candidates :
  ftab_base:int -> n:int -> int list array -> bytes
(** Recover the block from per-iteration candidate line addresses (an
    empty list = lost reading, several = ambiguous probe).  Uses the
    paper's redundancy as error correction: byte [i] appears as the high
    byte of iteration [n-1-i]'s index and as the exact low byte of the
    previous iteration's, so the resolved right neighbour disambiguates
    both boundary-straddling windows and spurious probe candidates, and a
    final pass repairs bytes whose own reading was lost. *)

val bzip2_recover : ftab_base:int -> n:int -> int option array -> bytes
(** [bzip2_recover_candidates] over singleton/empty candidate lists. *)
