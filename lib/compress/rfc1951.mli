(** Bit-exact RFC 1951 DEFLATE.

    Unlike {!Deflate} (which keeps zlib's matcher but uses a simplified
    header), this module produces and consumes the real wire format —
    stored, fixed-Huffman and dynamic-Huffman blocks, the code-length
    code with repeat symbols, LSB-first packing — and interoperates with
    any standard inflate (validated against Python's zlib; see
    test/fixtures).  It is the format of the Gzip/Zlib targets of the
    paper's Section IV-B. *)

type block_kind = Stored | Fixed | Dynamic

val deflate :
  ?kind:block_kind -> ?strategy:Lz77.strategy -> ?max_chain:int -> bytes ->
  bytes
(** Compress into a single final block of the requested kind (default
    [Dynamic]).  The token stream comes from {!Lz77.tokenize}. *)

val inflate_result : bytes -> (bytes, Codec_error.t) result
(** Safe decoder for a raw DEFLATE stream (any block sequence):
    truncated or corrupt input is an [Error]; no exception escapes. *)

val inflate : bytes -> bytes
(** [Codec_error.unwrap] of {!inflate_result}.
    @raise Failure on malformed input. *)

(** RFC 1950 zlib wrapper: 2-byte header + DEFLATE + Adler-32. *)
module Zlib : sig
  val compress : ?kind:block_kind -> bytes -> bytes

  val decompress_result : bytes -> (bytes, Codec_error.t) result
  (** Safe decoder; stream errors carry the offset within the whole
      zlib member. *)

  val decompress : bytes -> bytes
  (** [Codec_error.unwrap] of {!decompress_result}.
      @raise Failure on a bad header, stream or checksum. *)
end

(** RFC 1952 gzip wrapper: magic/method/flags header (optional file
    name) + DEFLATE + CRC-32 + ISIZE. *)
module Gzip : sig
  val compress : ?kind:block_kind -> ?name:string -> bytes -> bytes

  val decompress_result : bytes -> (bytes, Codec_error.t) result
  (** Safe decoder; stream errors carry the offset within the whole
      gzip member. *)

  val decompress : bytes -> bytes
  (** [Codec_error.unwrap] of {!decompress_result}.  Handles the
      FNAME/FEXTRA/FCOMMENT/FHCRC header fields.
      @raise Failure on a bad header, stream, checksum or size. *)

  val original_name : bytes -> string option
  (** The FNAME field, when present.  @raise Failure on a bad header. *)
end
