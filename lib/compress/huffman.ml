type code = { length : int; bits : int }

(* Minimal binary min-heap over (weight, node id), used only here. *)
module Heap = struct
  type t = {
    mutable data : (int * int) array;
    mutable size : int;
  }

  let create capacity = { data = Array.make (max 1 capacity) (0, 0); size = 0 }

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let push h x =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) (0, 0) in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- x;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  let pop h =
    if h.size = 0 then invalid_arg "Heap.pop: empty";
    let top = h.data.(0) in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
      if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        swap h !i !smallest;
        i := !smallest
      end
    done;
    top

  let size h = h.size
end

let lengths_of_freqs ?(max_length = 15) freqs =
  let n = Array.length freqs in
  let used = ref 0 in
  Array.iter (fun f -> if f > 0 then incr used) freqs;
  if !used > 1 lsl max_length then
    invalid_arg "Huffman.lengths_of_freqs: too many symbols for max_length";
  let lengths = Array.make n 0 in
  if !used = 0 then lengths
  else if !used = 1 then begin
    Array.iteri (fun s f -> if f > 0 then lengths.(s) <- 1) freqs;
    lengths
  end
  else begin
    (* Internal tree nodes are numbered from [n]; [parent] links each node
       to its parent so depths can be read off after construction. *)
    let parent = Array.make (2 * n) (-1) in
    let heap = Heap.create n in
    Array.iteri (fun s f -> if f > 0 then Heap.push heap (f, s)) freqs;
    let next = ref n in
    while Heap.size heap > 1 do
      let w1, n1 = Heap.pop heap in
      let w2, n2 = Heap.pop heap in
      parent.(n1) <- !next;
      parent.(n2) <- !next;
      Heap.push heap (w1 + w2, !next);
      incr next
    done;
    for s = 0 to n - 1 do
      if freqs.(s) > 0 then begin
        let d = ref 0 and node = ref s in
        while parent.(!node) >= 0 do
          incr d;
          node := parent.(!node)
        done;
        lengths.(s) <- !d
      end
    done;
    (* Overflow repair (zlib-style): cap lengths at [max_length] and restore
       the Kraft equality by demoting codes from shorter levels. *)
    let bl_count = Array.make (max_length + 1) 0 in
    Array.iter
      (fun l -> if l > 0 then
          let l = min l max_length in
          bl_count.(l) <- bl_count.(l) + 1)
      lengths;
    let kraft () =
      let acc = ref 0 in
      for l = 1 to max_length do
        acc := !acc + (bl_count.(l) lsl (max_length - l))
      done;
      !acc
    in
    let budget = 1 lsl max_length in
    while kraft () > budget do
      (* Take one code from the deepest non-empty level above the floor and
         push it one level down, compensating at max_length. *)
      let l = ref (max_length - 1) in
      while bl_count.(!l) = 0 do decr l done;
      bl_count.(!l) <- bl_count.(!l) - 1;
      bl_count.(!l + 1) <- bl_count.(!l + 1) + 2;
      bl_count.(max_length) <- bl_count.(max_length) - 1
    done;
    (* Reassign lengths from the repaired histogram: sort used symbols by
       original length (ties by index) and deal lengths shortest-first. *)
    let syms =
      Array.of_list
        (List.filter (fun s -> freqs.(s) > 0) (List.init n (fun i -> i)))
    in
    Array.sort
      (fun a b ->
        match compare lengths.(a) lengths.(b) with 0 -> compare a b | c -> c)
      syms;
    let idx = ref 0 in
    for l = 1 to max_length do
      for _ = 1 to bl_count.(l) do
        lengths.(syms.(!idx)) <- l;
        incr idx
      done
    done;
    lengths
  end

let canonical_codes lengths =
  let n = Array.length lengths in
  let max_len = Array.fold_left max 0 lengths in
  let codes = Array.make n { length = 0; bits = 0 } in
  if max_len = 0 then codes
  else begin
    let bl_count = Array.make (max_len + 1) 0 in
    Array.iter (fun l -> if l > 0 then bl_count.(l) <- bl_count.(l) + 1) lengths;
    let next_code = Array.make (max_len + 2) 0 in
    let code = ref 0 in
    for l = 1 to max_len do
      code := (!code + bl_count.(l - 1)) lsl 1;
      next_code.(l) <- !code
    done;
    (* Oversubscription check: after assigning all codes of length l the
       running code must fit in l bits. *)
    for s = 0 to n - 1 do
      let l = lengths.(s) in
      if l > 0 then begin
        let bits = next_code.(l) in
        if bits lsr l <> 0 then
          invalid_arg "Huffman.canonical_codes: oversubscribed lengths";
        codes.(s) <- { length = l; bits };
        next_code.(l) <- bits + 1
      end
    done;
    codes
  end

let write_lengths w lengths =
  Bitio.Writer.add_bits_msb w ~value:(Array.length lengths) ~count:16;
  Array.iter
    (fun l ->
      if l < 0 || l > 15 then invalid_arg "Huffman.write_lengths: length";
      Bitio.Writer.add_bits_msb w ~value:l ~count:4)
    lengths

(* Explicit in-order loop: [Array.init] does not guarantee the order it
   applies the closure in, and each application advances the bit reader. *)
let read_lengths r =
  let n = Bitio.Reader.read_bits_msb r 16 in
  let lengths = Array.make n 0 in
  for i = 0 to n - 1 do
    lengths.(i) <- Bitio.Reader.read_bits_msb r 4
  done;
  lengths

let write_symbol w codes sym =
  let c = codes.(sym) in
  if c.length = 0 then invalid_arg "Huffman.write_symbol: symbol has no code";
  Bitio.Writer.add_bits_msb w ~value:c.bits ~count:c.length

(* Canonical bit-serial decoder: for each length we know the first code and
   the symbols assigned at that length, so one running comparison per bit
   suffices. *)
type decoder = {
  max_len : int;
  first_code : int array; (* per length *)
  first_index : int array; (* per length, index into [symbols] *)
  counts : int array;
  symbols : int array; (* used symbols ordered by (length, symbol) *)
}

let decoder_of_lengths lengths =
  let max_len = Array.fold_left max 0 lengths in
  let counts = Array.make (max_len + 1) 0 in
  Array.iter (fun l -> if l > 0 then counts.(l) <- counts.(l) + 1) lengths;
  let order =
    List.filter
      (fun s -> lengths.(s) > 0)
      (List.init (Array.length lengths) (fun i -> i))
  in
  let order =
    List.sort
      (fun a b ->
        match compare lengths.(a) lengths.(b) with 0 -> compare a b | c -> c)
      order
  in
  let symbols = Array.of_list order in
  let first_code = Array.make (max_len + 2) 0 in
  let first_index = Array.make (max_len + 2) 0 in
  let code = ref 0 and index = ref 0 in
  for l = 1 to max_len do
    code := (!code + if l >= 2 then counts.(l - 1) else 0) lsl 1;
    first_code.(l) <- !code;
    first_index.(l) <- !index;
    index := !index + counts.(l)
  done;
  { max_len; first_code; first_index; counts; symbols }

let read_symbol_bits next_bit d =
  let code = ref 0 and len = ref 0 in
  let result = ref (-1) in
  while !result < 0 do
    if !len >= d.max_len then failwith "Huffman.read_symbol: invalid code";
    code := (!code lsl 1) lor (if next_bit () then 1 else 0);
    incr len;
    let l = !len in
    if d.counts.(l) > 0
       && !code - d.first_code.(l) < d.counts.(l)
       && !code >= d.first_code.(l)
    then result := d.symbols.(d.first_index.(l) + (!code - d.first_code.(l)))
  done;
  !result

let read_symbol r d = read_symbol_bits (fun () -> Bitio.Reader.read_bit r) d

let encode data =
  let freqs = Array.make 256 0 in
  Bytes.iter (fun c -> freqs.(Char.code c) <- freqs.(Char.code c) + 1) data;
  let lengths = lengths_of_freqs freqs in
  let codes = canonical_codes lengths in
  let w = Bitio.Writer.create () in
  Bitio.Writer.add_bits_msb w ~value:(Bytes.length data lsr 16) ~count:16;
  Bitio.Writer.add_bits_msb w ~value:(Bytes.length data land 0xffff) ~count:16;
  write_lengths w lengths;
  Bytes.iter (fun c -> write_symbol w codes (Char.code c)) data;
  Bitio.Writer.to_bytes w

let decode_result data =
  let r = Bitio.Reader.create data in
  Codec_error.protect ~codec:"huffman"
    ~offset:(fun () -> Bitio.Reader.byte_position r)
  @@ fun () ->
  let hi = Bitio.Reader.read_bits_msb r 16 in
  let lo = Bitio.Reader.read_bits_msb r 16 in
  let n = (hi lsl 16) lor lo in
  let lengths = read_lengths r in
  if Array.length lengths <> 256 then failwith "Huffman.decode: bad header";
  (* Bomb guard: every symbol costs at least one bit, so the declared
     output length can never exceed the bits left after the tables.
     Checked before the output buffer is allocated. *)
  if n > Bitio.Reader.bits_remaining r then
    failwith "Huffman.decode: declared length exceeds what the input can encode";
  let d = decoder_of_lengths lengths in
  (* Explicit in-order loop: [Bytes.init] does not guarantee application
     order, and each symbol read advances the bit reader. *)
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set out i (Char.chr (read_symbol r d))
  done;
  out

let decode data = Codec_error.unwrap (decode_result data)
