(** Self-describing framed container for streaming compression.

    A frame stream is a stream header naming the codec, a sequence of
    independently-compressed frames each carrying its plaintext length,
    compressed length and a CRC-32 over the compressed payload, and an
    end-of-stream trailer with the total plaintext length and a CRC-32
    over the whole plaintext.  Because frames are independent, the
    pipelined entry points compress them on multiple domains and splice
    the results back in production order — the output is byte-identical
    at any [jobs].

    Wire layout (integers little-endian):
    {v
      stream header  "ZCF1" | codec id (1 byte) | 3 reserved zero bytes
      data frame     0x01 | ulen u32 | clen u32 | crc32(payload) | payload
      flush frame    0x02 | same shape (ulen = clen = 0 allowed)
      trailer        0xFF | total ulen u64 | crc32(plaintext)
    v} *)

module Bigstring = Zipchannel_buf.Bigstring

type codec = Deflate | Gzip | Bzip2 | Lzw

val codec_id : codec -> int
val codec_of_id : int -> codec option
val codec_name : codec -> string
val codec_of_name : string -> codec option

val codec_names : string list
(** All accepted [codec_of_name] spellings, for CLI docs. *)

val header_len : int
val frame_header_len : int
val trailer_len : int

val default_frame_size : int
(** 64 KiB. *)

val max_frame_size : int
(** Largest per-frame plaintext length the format admits (64 MiB). *)

val max_frame_clen : int
(** Largest per-frame compressed payload (128 MiB). *)

(** Incremental framing compressor.

    Plaintext fed in arbitrary slices is staged into [frame_size]
    chunks; each full chunk is compressed and emitted as one frame
    through the [emit] callback as a [(bigstring, off, len)] slice.
    The slice borrows an internal scratch buffer that is reused for the
    next frame — consumers must copy or write it out before returning.
    Steady-state encoding allocates only what the underlying codec
    itself allocates. *)
module Encoder : sig
  type t

  val create :
    ?frame_size:int ->
    codec:codec ->
    emit:(Bigstring.t -> off:int -> len:int -> unit) ->
    unit ->
    t
  (** Emits the stream header immediately.  [frame_size] defaults to
      {!default_frame_size}.
      @raise Invalid_argument if [frame_size] is outside
        [1 .. max_frame_size]. *)

  val feed : t -> Bigstring.t -> off:int -> len:int -> unit
  val feed_bytes : t -> bytes -> off:int -> len:int -> unit

  val flush : t -> unit
  (** Emit whatever is pending as a flush frame — even when nothing is
      pending, marking an explicit flush point in the stream. *)

  val finish : t -> unit
  (** Emit any pending data and the end-of-stream trailer.  The encoder
      is unusable afterwards ([Invalid_argument] on further calls). *)
end

(** Incremental framing decompressor (push-based).

    Feed compressed bytes in arbitrary slices; decoded plaintext is
    handed to [emit] one frame at a time, as slices of a reused
    internal buffer.  Errors are reported as structured
    {!Codec_error.t} values with [codec = "frame"] and the input offset
    reached.  The decoder never allocates based on a declared length
    alone: staging grows only as payload bytes actually arrive, so a
    forged header cannot balloon memory. *)
module Decoder : sig
  type t

  val create : emit:(Bigstring.t -> off:int -> len:int -> unit) -> unit -> t

  val feed :
    t -> Bigstring.t -> off:int -> len:int -> (unit, Codec_error.t) result

  val feed_bytes :
    t -> bytes -> off:int -> len:int -> (unit, Codec_error.t) result

  val is_done : t -> bool
  (** The trailer has been seen and verified. *)

  val finish : t -> (unit, Codec_error.t) result
  (** [Ok ()] iff the stream ended exactly at the trailer; a truncation
      error otherwise. *)

  val codec : t -> codec option
  (** The codec named by the stream header, once parsed. *)
end

val compress_stream :
  ?frame_size:int ->
  ?jobs:int ->
  ?capacity:int ->
  codec:codec ->
  read:(bytes -> int -> int -> int) ->
  write:(bytes -> off:int -> len:int -> unit) ->
  unit ->
  unit
(** [compress_stream ~codec ~read ~write ()] pulls plaintext with
    [read buf off len] (returning the number of bytes read, [0] at end
    of input) and pushes the frame stream through [write].  With
    [jobs > 1], frames are compressed on worker domains through
    {!Zipchannel_parallel.Pipeline} with at most [capacity] frames in
    flight (default [2 * jobs]); output is byte-identical to
    [jobs = 1].  [jobs] is clamped to the machine's recommended domain
    count — oversubscribed domains only add GC rendezvous — which never
    changes the output, only the wall time.

    The [Deflate] codec uses the frame profile of the compressor
    (bounded match-chain walk): decoding interoperates with every
    conforming inflate, but framed deflate output differs from (and is
    faster to produce than) {!Deflate.compress} on the same bytes. *)

val decompress_stream :
  ?jobs:int ->
  ?capacity:int ->
  read:(bytes -> int -> int -> int) ->
  write:(bytes -> off:int -> len:int -> unit) ->
  unit ->
  (unit, Codec_error.t) result
(** Inverse of {!compress_stream}, with the same pipelining contract.
    Stops reading right after the trailer; bytes past it are the
    caller's. *)

val compress : ?frame_size:int -> ?jobs:int -> codec:codec -> bytes -> bytes
(** Whole-buffer convenience over {!compress_stream}. *)

val decompress_result : bytes -> (bytes, Codec_error.t) result
(** Whole-buffer strict decode through {!Decoder}: trailing bytes after
    the trailer are an error. *)

val decompress : bytes -> bytes
(** @raise Failure on malformed input (via {!Codec_error.unwrap}). *)
