(* Self-describing framed container over the whole-buffer codecs.

   Wire layout (all integers little-endian):

     stream header   "ZCF1" | codec id (1B) | 3 reserved zero bytes
     data frame      tag 0x01 | ulen u32 | clen u32 | CRC-32(payload) | payload
     flush frame     tag 0x02 | same shape; ulen/clen may be 0 (a bare
                     flush point with nothing pending)
     trailer         tag 0xFF | total ulen u64 | CRC-32(whole plaintext)

   Each frame's payload is one whole-buffer run of the stream's codec
   over that frame's plaintext chunk, so frames are independent: the
   pipelined compressor farms them across domains and the writer splices
   the results back in order, byte-identical to the sequential run.  The
   per-frame CRC covers the *compressed* payload and is checked before
   the codec's decoder ever sees the bytes; the trailer CRC covers the
   whole plaintext end to end.

   The incremental {!Encoder}/{!Decoder} state machines stage chunks in
   buffers they allocate once (or borrow from their arena) and emit
   [(Bigstring.t, off, len)] slices out of reused arena slots, so
   steady-state streaming does not allocate per chunk beyond what the
   underlying codec itself allocates. *)

module Bigstring = Zipchannel_buf.Bigstring
module Arena = Zipchannel_buf.Arena
module Pipeline = Zipchannel_parallel.Pipeline
module Obs = Zipchannel_obs.Obs
module Leak_audit = Zipchannel_obs_leak.Leak_audit

type codec = Deflate | Gzip | Bzip2 | Lzw

let codec_id = function Deflate -> 1 | Gzip -> 2 | Bzip2 -> 3 | Lzw -> 4

let codec_of_id = function
  | 1 -> Some Deflate
  | 2 -> Some Gzip
  | 3 -> Some Bzip2
  | 4 -> Some Lzw
  | _ -> None

let codec_name = function
  | Deflate -> "deflate"
  | Gzip -> "gzip"
  | Bzip2 -> "bzip2"
  | Lzw -> "lzw"

let codec_of_name = function
  | "deflate" -> Some Deflate
  | "gzip" -> Some Gzip
  | "bzip2" -> Some Bzip2
  | "lzw" -> Some Lzw
  | _ -> None

let codec_names = [ "deflate"; "gzip"; "bzip2"; "lzw" ]

let magic = "ZCF1"
let header_len = 8
let frame_header_len = 13
let trailer_len = 13
let tag_data = 0x01
let tag_flush = 0x02
let tag_end = 0xFF

let default_frame_size = 1 lsl 16

let max_frame_size = 1 lsl 26
(* Largest per-frame plaintext the format admits; also caps what a
   forged [ulen] can make the decoder believe. *)

let max_frame_clen = 1 lsl 27
(* Compressed payloads can exceed their plaintext on incompressible
   input, but never by 2x at the sizes [max_frame_size] allows. *)

let deflate_max_chain = 32
(* The frame profile of deflate: a shorter hash-chain walk than the
   whole-buffer default (128).  Streaming favours throughput — on the
   reference 1 MiB text this is ~40% less wall time for ~13% more
   output — and per-frame dictionaries already cost a little ratio, so
   the long-chain search buys frames less than it buys whole buffers.
   Decoding is unaffected; any conforming inflate reads the stream. *)

let compress_chunk codec data =
  match codec with
  | Deflate -> Deflate.compress ~max_chain:deflate_max_chain data
  | Gzip -> Rfc1951.Gzip.compress data
  | Bzip2 -> Bzip2.compress data
  | Lzw -> Lzw.compress data

let decompress_chunk codec data =
  match codec with
  | Deflate -> Deflate.decompress_result data
  | Gzip -> Rfc1951.Gzip.decompress_result data
  | Bzip2 -> Bzip2.decompress_result data
  | Lzw -> Lzw.decompress_result data

let m_enc_frames = Obs.Metrics.counter "kernel.frame.enc_frames"
let m_enc_bytes_in = Obs.Metrics.counter "kernel.frame.enc_bytes_in"
let m_enc_bytes_out = Obs.Metrics.counter "kernel.frame.enc_bytes_out"
let m_dec_frames = Obs.Metrics.counter "kernel.frame.dec_frames"
let m_dec_bytes_in = Obs.Metrics.counter "kernel.frame.dec_bytes_in"
let m_dec_bytes_out = Obs.Metrics.counter "kernel.frame.dec_bytes_out"
let m_frame_ulen = Obs.Metrics.histogram "kernel.frame.frame_ulen"

let u32_get b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF
let u32_set b off v = Bytes.set_int32_le b off (Int32.of_int v)
let u64_get b off = Int64.to_int (Bytes.get_int64_le b off)
let u64_set b off v = Bytes.set_int64_le b off (Int64.of_int v)

let render_header ~codec b =
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set b 4 (Char.chr (codec_id codec));
  Bytes.set b 5 '\000';
  Bytes.set b 6 '\000';
  Bytes.set b 7 '\000'

let render_frame_header ~tag ~ulen ~clen ~crc b =
  Bytes.set b 0 (Char.chr tag);
  u32_set b 1 ulen;
  u32_set b 5 clen;
  u32_set b 9 crc

let render_trailer ~total ~crc b =
  Bytes.set b 0 (Char.chr tag_end);
  u64_set b 1 total;
  u32_set b 9 crc

(* ------------------------------------------------------------------ *)
(* Incremental encoder *)

module Encoder = struct
  type t = {
    codec : codec;
    frame_size : int;
    emit : Bigstring.t -> off:int -> len:int -> unit;
    arena : Arena.t;
    pending : bytes;  (* exactly [frame_size] long, so a full chunk is
                         handed to the codec without a copy *)
    mutable pending_len : int;
    mutable crc : Checksum.Crc32.t;
    mutable total : int;
    mutable finished : bool;
    (* Leak audit plane: [None] unless auditing was enabled when the
       encoder was created.  Strictly side-band — nothing below reads
       it to decide what bytes to emit. *)
    audit : Leak_audit.Stream.t option;
    mutable frames : int;
  }

  let create ?(frame_size = default_frame_size) ~codec ~emit () =
    if frame_size < 1 || frame_size > max_frame_size then
      invalid_arg "Frame.Encoder.create: frame_size out of range";
    let t =
      {
        codec;
        frame_size;
        emit;
        arena = Arena.create ();
        pending = Bytes.create frame_size;
        pending_len = 0;
        crc = Checksum.Crc32.init;
        total = 0;
        finished = false;
        audit =
          (if Leak_audit.enabled () then
             Some (Leak_audit.Stream.create ~codec:(codec_name codec) ())
           else None);
        frames = 0;
      }
    in
    let hdr = Arena.big t.arena ~slot:0 header_len in
    let hb = Bytes.create header_len in
    render_header ~codec hb;
    Bigstring.blit_of_bytes hb ~src_off:0 hdr ~dst_off:0 ~len:header_len;
    emit hdr ~off:0 ~len:header_len;
    t

  (* Compress and emit whatever is pending as one frame.  The assembled
     frame lives in arena slot 0, reused across frames. *)
  let emit_frame t ~tag =
    let ulen = t.pending_len in
    (match t.audit with
    | Some s when ulen > 0 -> Leak_audit.Stream.note_prefix s t.pending ~len:ulen
    | _ -> ());
    let t0 = if t.audit = None then 0 else Obs.now_ns () in
    let payload =
      if ulen = 0 then Bytes.empty
      else if ulen = t.frame_size then compress_chunk t.codec t.pending
      else compress_chunk t.codec (Bytes.sub t.pending 0 ulen)
    in
    let enc_ns = if t.audit = None then 0 else Obs.now_ns () - t0 in
    let clen = if ulen = 0 then 0 else Bytes.length payload in
    let crc = if clen = 0 then 0 else Checksum.Crc32.digest payload in
    let flen = frame_header_len + clen in
    let frame = Arena.big t.arena ~slot:0 flen in
    let fh = Bytes.create frame_header_len in
    render_frame_header ~tag ~ulen ~clen ~crc fh;
    Bigstring.blit_of_bytes fh ~src_off:0 frame ~dst_off:0 ~len:frame_header_len;
    if clen > 0 then
      Bigstring.blit_of_bytes payload ~src_off:0 frame ~dst_off:frame_header_len
        ~len:clen;
    t.crc <- Checksum.Crc32.feed_sub t.crc t.pending ~off:0 ~len:ulen;
    t.total <- t.total + ulen;
    t.pending_len <- 0;
    Obs.Metrics.incr m_enc_frames;
    Obs.Metrics.add m_enc_bytes_in ulen;
    Obs.Metrics.add m_enc_bytes_out flen;
    Obs.Metrics.observe m_frame_ulen ulen;
    (match t.audit with
    | Some s ->
        let atag =
          if tag = tag_flush then Leak_audit.Flush else Leak_audit.Data
        in
        Leak_audit.Stream.on_frame s ~seq:t.frames ~tag:atag ~ulen ~clen ~enc_ns;
        t.frames <- t.frames + 1
    | None -> ());
    t.emit frame ~off:0 ~len:flen

  let check_live t op = if t.finished then invalid_arg ("Frame.Encoder." ^ op ^ ": already finished")

  let feed t src ~off ~len =
    check_live t "feed";
    if off < 0 || len < 0 || off + len > Bigstring.length src then
      invalid_arg "Frame.Encoder.feed: slice out of bounds";
    let pos = ref off and rem = ref len in
    while !rem > 0 do
      let n = min !rem (t.frame_size - t.pending_len) in
      Bigstring.blit_to_bytes src ~src_off:!pos t.pending ~dst_off:t.pending_len
        ~len:n;
      t.pending_len <- t.pending_len + n;
      pos := !pos + n;
      rem := !rem - n;
      if t.pending_len = t.frame_size then emit_frame t ~tag:tag_data
    done

  let feed_bytes t src ~off ~len =
    check_live t "feed_bytes";
    if off < 0 || len < 0 || off + len > Bytes.length src then
      invalid_arg "Frame.Encoder.feed_bytes: slice out of bounds";
    let pos = ref off and rem = ref len in
    while !rem > 0 do
      let n = min !rem (t.frame_size - t.pending_len) in
      Bytes.blit src !pos t.pending t.pending_len n;
      t.pending_len <- t.pending_len + n;
      pos := !pos + n;
      rem := !rem - n;
      if t.pending_len = t.frame_size then emit_frame t ~tag:tag_data
    done

  let flush t =
    check_live t "flush";
    emit_frame t ~tag:tag_flush

  let finish t =
    check_live t "finish";
    if t.pending_len > 0 then emit_frame t ~tag:tag_data;
    let tr = Arena.big t.arena ~slot:0 trailer_len in
    let tb = Bytes.create trailer_len in
    render_trailer ~total:t.total ~crc:(Checksum.Crc32.value t.crc) tb;
    Bigstring.blit_of_bytes tb ~src_off:0 tr ~dst_off:0 ~len:trailer_len;
    t.finished <- true;
    (match t.audit with
    | Some s ->
        Leak_audit.Stream.on_frame s ~seq:t.frames ~tag:Leak_audit.Trailer
          ~ulen:0 ~clen:0 ~enc_ns:0;
        t.frames <- t.frames + 1
    | None -> ());
    t.emit tr ~off:0 ~len:trailer_len
end

(* ------------------------------------------------------------------ *)
(* Incremental decoder *)

module Decoder = struct
  type phase =
    | Header
    | Frame_header
    | Payload of { tag : int; ulen : int; clen : int; crc : int }
    | Done

  type t = {
    emit : Bigstring.t -> off:int -> len:int -> unit;
    arena : Arena.t;
    mutable codec : codec option;
    mutable phase : phase;
    mutable staged : bytes;  (* prefix of the current wire unit *)
    mutable staged_len : int;
    mutable consumed : int;  (* total input bytes consumed, for offsets *)
    mutable crc : Checksum.Crc32.t;
    mutable total : int;
  }

  let create ~emit () =
    {
      emit;
      arena = Arena.create ();
      codec = None;
      phase = Header;
      staged = Bytes.empty;
      staged_len = 0;
      consumed = 0;
      crc = Checksum.Crc32.init;
      total = 0;
    }

  let fail t reason = Codec_error.fail ~codec:"frame" ~offset:t.consumed reason

  let need t =
    match t.phase with
    | Header -> header_len
    | Frame_header -> frame_header_len
    | Payload p -> p.clen
    | Done -> 0

  (* Grow the staging buffer to hold [n] bytes, preserving the staged
     prefix.  The buffer comes from the arena, so across frames of
     similar size it is reused, not reallocated; growth is bounded by
     bytes actually received, never by a header's declared length. *)
  let reserve t n =
    let buf = Arena.bytes t.arena ~slot:0 n in
    if buf != t.staged then begin
      if t.staged_len > 0 then Bytes.blit t.staged 0 buf 0 t.staged_len;
      t.staged <- buf
    end

  let process_header t =
    let b = t.staged in
    if Bytes.sub_string b 0 4 <> magic then fail t "bad magic";
    (match codec_of_id (Char.code (Bytes.get b 4)) with
    | None -> fail t "unknown codec id"
    | Some c -> t.codec <- Some c);
    if Bytes.get b 5 <> '\000' || Bytes.get b 6 <> '\000'
       || Bytes.get b 7 <> '\000'
    then fail t "nonzero reserved header bytes";
    t.staged_len <- 0;
    t.phase <- Frame_header

  let process_frame_header t =
    let b = t.staged in
    let tag = Char.code (Bytes.get b 0) in
    if tag = tag_end then begin
      let total = u64_get b 1 and crc = u32_get b 9 in
      if total <> t.total then fail t "trailer declares a different total length";
      if crc <> Checksum.Crc32.value t.crc then
        fail t "plaintext checksum mismatch in trailer";
      t.staged_len <- 0;
      t.phase <- Done
    end
    else if tag = tag_data || tag = tag_flush then begin
      let ulen = u32_get b 1 and clen = u32_get b 5 and crc = u32_get b 9 in
      if ulen > max_frame_size then fail t "frame length exceeds maximum";
      if clen > max_frame_clen then
        fail t "frame payload length exceeds maximum";
      if clen = 0 && ulen <> 0 then
        fail t "empty payload declares a nonzero length";
      t.staged_len <- 0;
      if clen = 0 then t.phase <- Frame_header
      else t.phase <- Payload { tag; ulen; clen; crc }
    end
    else fail t "unknown frame tag"

  let process_payload t ~ulen ~clen ~crc =
    if Checksum.Crc32.digest_sub t.staged ~off:0 ~len:clen <> crc then
      fail t "frame payload checksum mismatch";
    let payload = Bytes.sub t.staged 0 clen in
    let out =
      match decompress_chunk (Option.get t.codec) payload with
      | Ok out -> out
      | Error e -> fail t ("frame payload: " ^ Codec_error.to_string e)
    in
    if Bytes.length out <> ulen then
      fail t "frame payload decodes to a different length than declared";
    t.crc <- Checksum.Crc32.feed_bytes t.crc out;
    t.total <- t.total + ulen;
    t.staged_len <- 0;
    t.phase <- Frame_header;
    Obs.Metrics.incr m_dec_frames;
    Obs.Metrics.add m_dec_bytes_in (frame_header_len + clen);
    Obs.Metrics.add m_dec_bytes_out ulen;
    if ulen > 0 then begin
      let big = Arena.big t.arena ~slot:1 ulen in
      Bigstring.blit_of_bytes out ~src_off:0 big ~dst_off:0 ~len:ulen;
      t.emit big ~off:0 ~len:ulen
    end

  let process_unit t =
    match t.phase with
    | Header -> process_header t
    | Frame_header -> process_frame_header t
    | Payload { tag = _; ulen; clen; crc } -> process_payload t ~ulen ~clen ~crc
    | Done -> ()

  (* The driving loop, parameterised over how input lands in the staging
     buffer so the bigstring and bytes entry points share it. *)
  let feed_gen t ~len ~blit =
    let decode () =
      let pos = ref 0 in
      while !pos < len do
        if t.phase = Done then fail t "trailing data after end-of-stream trailer";
        let need = need t in
        let take = min (len - !pos) (need - t.staged_len) in
        reserve t (t.staged_len + take);
        blit ~src_off:!pos ~dst_off:t.staged_len ~len:take;
        t.staged_len <- t.staged_len + take;
        t.consumed <- t.consumed + take;
        pos := !pos + take;
        if t.staged_len = need then process_unit t
      done
    in
    match decode () with
    | () -> Ok ()
    | exception Codec_error.Codec_error e -> Error e

  let feed t src ~off ~len =
    if off < 0 || len < 0 || off + len > Bigstring.length src then
      invalid_arg "Frame.Decoder.feed: slice out of bounds";
    feed_gen t ~len ~blit:(fun ~src_off ~dst_off ~len ->
        Bigstring.blit_to_bytes src ~src_off:(off + src_off) t.staged
          ~dst_off ~len)

  let feed_bytes t src ~off ~len =
    if off < 0 || len < 0 || off + len > Bytes.length src then
      invalid_arg "Frame.Decoder.feed_bytes: slice out of bounds";
    feed_gen t ~len ~blit:(fun ~src_off ~dst_off ~len ->
        Bytes.blit src (off + src_off) t.staged dst_off len)

  let is_done t = t.phase = Done

  let finish t =
    if t.phase = Done then Ok ()
    else
      Codec_error.error ~codec:"frame" ~offset:t.consumed
        "truncated frame stream"

  let codec t = t.codec
end

(* ------------------------------------------------------------------ *)
(* Pipelined streaming over read/write callbacks *)

(* Worker domains beyond the machine's cores only add scheduling and
   stop-the-world GC rendezvous (measured 3-4x slower on one core), so
   the streaming entry points clamp: asking for [~jobs:8] on a 4-core
   box runs 4 workers, and on one core runs the sequential path.  The
   output is identical either way — that is the pipeline's ordering
   guarantee — so the clamp is purely a performance decision. *)
let clamp_jobs jobs =
  max 1 (min jobs (Zipchannel_parallel.Pool.available_jobs ()))

let compress_stream ?(frame_size = default_frame_size) ?(jobs = 1) ?capacity
    ~codec ~read ~write () =
  if frame_size < 1 || frame_size > max_frame_size then
    invalid_arg "Frame.compress_stream: frame_size out of range";
  let jobs = clamp_jobs jobs in
  let hdr = Bytes.create header_len in
  render_header ~codec hdr;
  write hdr ~off:0 ~len:header_len;
  let slots =
    if jobs <= 1 then 1
    else max (Option.value capacity ~default:(2 * jobs)) (jobs + 1)
  in
  let chunks = Array.init slots (fun _ -> Bytes.create frame_size) in
  let crc = ref Checksum.Crc32.init in
  let total = ref 0 in
  let eof = ref false in
  (* Audit: [produce] keys the stream off the first plaintext chunk,
     workers time their compress call and thread it through the result
     tuple, and [consume] — which the pipeline runs strictly in
     production order on the caller's domain — emits the records, so
     merged audit sequences are identical at any [jobs]. *)
  let audit =
    if Leak_audit.enabled () then
      Some (Leak_audit.Stream.create ~codec:(codec_name codec) ())
    else None
  in
  let frames = ref 0 in
  let produce ~seq =
    if !eof then None
    else begin
      let buf = chunks.(seq mod slots) in
      (* top the chunk up until full or end of input *)
      let got = ref 0 in
      while (not !eof) && !got < frame_size do
        let r = read buf !got (frame_size - !got) in
        if r = 0 then eof := true else got := !got + r
      done;
      if !got = 0 then None
      else begin
        (match audit with
        | Some s when seq = 0 -> Leak_audit.Stream.note_prefix s buf ~len:!got
        | _ -> ());
        crc := Checksum.Crc32.feed_sub !crc buf ~off:0 ~len:!got;
        total := !total + !got;
        Some (buf, !got)
      end
    end
  in
  let work (buf, len) =
    let t0 = if audit = None then 0 else Obs.now_ns () in
    let payload =
      if len = frame_size then compress_chunk codec buf
      else compress_chunk codec (Bytes.sub buf 0 len)
    in
    let enc_ns = if audit = None then 0 else Obs.now_ns () - t0 in
    (len, payload, Checksum.Crc32.digest payload, enc_ns)
  in
  let fh = Bytes.create frame_header_len in
  let consume ~seq (ulen, payload, pcrc, enc_ns) =
    let clen = Bytes.length payload in
    render_frame_header ~tag:tag_data ~ulen ~clen ~crc:pcrc fh;
    write fh ~off:0 ~len:frame_header_len;
    write payload ~off:0 ~len:clen;
    Obs.Metrics.incr m_enc_frames;
    Obs.Metrics.add m_enc_bytes_in ulen;
    Obs.Metrics.add m_enc_bytes_out (frame_header_len + clen);
    Obs.Metrics.observe m_frame_ulen ulen;
    match audit with
    | Some s ->
        Leak_audit.Stream.on_frame s ~seq ~tag:Leak_audit.Data ~ulen ~clen
          ~enc_ns;
        frames := seq + 1
    | None -> ()
  in
  Pipeline.run ~jobs ~capacity:slots ~produce ~work ~consume ();
  let tr = Bytes.create trailer_len in
  render_trailer ~total:!total ~crc:(Checksum.Crc32.value !crc) tr;
  (match audit with
  | Some s ->
      Leak_audit.Stream.on_frame s ~seq:!frames ~tag:Leak_audit.Trailer ~ulen:0
        ~clen:0 ~enc_ns:0
  | None -> ());
  write tr ~off:0 ~len:trailer_len

let decompress_stream ?(jobs = 1) ?capacity ~read ~write () =
  let jobs = clamp_jobs jobs in
  let fail ~offset reason = Codec_error.fail ~codec:"frame" ~offset reason in
  (* Buffered pull reader over the callback. *)
  let rbuf = Bytes.create 65536 in
  let rpos = ref 0 and rlen = ref 0 in
  let consumed = ref 0 in
  let refill () =
    if !rpos = !rlen then begin
      rlen := read rbuf 0 (Bytes.length rbuf);
      rpos := 0
    end;
    !rlen > !rpos
  in
  (* Read exactly [len] bytes into [dst] at [off]; a short read is a
     truncated stream. *)
  let read_exact dst off len =
    let got = ref 0 in
    while !got < len do
      if not (refill ()) then fail ~offset:(!consumed + !got) "truncated frame stream";
      let n = min (len - !got) (!rlen - !rpos) in
      Bytes.blit rbuf !rpos dst (off + !got) n;
      rpos := !rpos + n;
      got := !got + n
    done;
    consumed := !consumed + len
  in
  let run () =
    let hdr = Bytes.create header_len in
    read_exact hdr 0 header_len;
    if Bytes.sub_string hdr 0 4 <> magic then fail ~offset:!consumed "bad magic";
    let codec =
      match codec_of_id (Char.code (Bytes.get hdr 4)) with
      | Some c -> c
      | None -> fail ~offset:!consumed "unknown codec id"
    in
    if Bytes.get hdr 5 <> '\000' || Bytes.get hdr 6 <> '\000'
       || Bytes.get hdr 7 <> '\000'
    then fail ~offset:!consumed "nonzero reserved header bytes";
    let slots =
      if jobs <= 1 then 1
      else max (Option.value capacity ~default:(2 * jobs)) (jobs + 1)
    in
    let chunks = Array.make slots Bytes.empty in
    let crc = ref Checksum.Crc32.init in
    let total = ref 0 in
    let trailer = ref None in
    let fh = Bytes.create frame_header_len in
    let rec produce ~seq =
      match !trailer with
      | Some _ -> None
      | None -> (
          read_exact fh 0 frame_header_len;
          let tag = Char.code (Bytes.get fh 0) in
          if tag = tag_end then begin
            trailer := Some (u64_get fh 1, u32_get fh 9);
            None
          end
          else if tag = tag_data || tag = tag_flush then begin
            let ulen = u32_get fh 1
            and clen = u32_get fh 5
            and fcrc = u32_get fh 9 in
            if ulen > max_frame_size then
              fail ~offset:!consumed "frame length exceeds maximum";
            if clen > max_frame_clen then
              fail ~offset:!consumed "frame payload length exceeds maximum";
            if clen = 0 && ulen <> 0 then
              fail ~offset:!consumed "empty payload declares a nonzero length";
            if clen = 0 then produce ~seq (* bare flush point: nothing to do *)
            else begin
              if Bytes.length chunks.(seq mod slots) < clen then
                chunks.(seq mod slots) <- Bytes.create clen;
              let buf = chunks.(seq mod slots) in
              let frame_off = !consumed in
              read_exact buf 0 clen;
              Some (buf, ulen, clen, fcrc, frame_off)
            end
          end
          else fail ~offset:!consumed "unknown frame tag")
    in
    let work (buf, ulen, clen, fcrc, frame_off) =
      if Checksum.Crc32.digest_sub buf ~off:0 ~len:clen <> fcrc then
        fail ~offset:frame_off "frame payload checksum mismatch";
      let out =
        match decompress_chunk codec (Bytes.sub buf 0 clen) with
        | Ok out -> out
        | Error e ->
            fail ~offset:frame_off ("frame payload: " ^ Codec_error.to_string e)
      in
      if Bytes.length out <> ulen then
        fail ~offset:frame_off
          "frame payload decodes to a different length than declared";
      out
    in
    let consume ~seq:_ out =
      let n = Bytes.length out in
      crc := Checksum.Crc32.feed_bytes !crc out;
      total := !total + n;
      Obs.Metrics.incr m_dec_frames;
      Obs.Metrics.add m_dec_bytes_out n;
      write out ~off:0 ~len:n
    in
    Pipeline.run ~jobs ~capacity:slots ~produce ~work ~consume ();
    match !trailer with
    | None -> fail ~offset:!consumed "truncated frame stream"
    | Some (ttotal, tcrc) ->
        if ttotal <> !total then
          fail ~offset:!consumed "trailer declares a different total length";
        if tcrc <> Checksum.Crc32.value !crc then
          fail ~offset:!consumed "plaintext checksum mismatch in trailer"
  in
  match run () with
  | () -> Ok ()
  | exception Codec_error.Codec_error e -> Error e

(* ------------------------------------------------------------------ *)
(* Whole-buffer convenience (and the fuzzer's 11th decode boundary) *)

let compress ?frame_size ?(jobs = 1) ~codec data =
  let out = Buffer.create (Bytes.length data / 4 + 64) in
  let pos = ref 0 in
  let read buf off len =
    let n = min len (Bytes.length data - !pos) in
    Bytes.blit data !pos buf off n;
    pos := !pos + n;
    n
  in
  let write b ~off ~len = Buffer.add_subbytes out b off len in
  compress_stream ?frame_size ~jobs ~codec ~read ~write ();
  Buffer.to_bytes out

let decompress_result data =
  let out = Buffer.create (Bytes.length data + 64) in
  let emit big ~off ~len = Buffer.add_bytes out (Bigstring.to_bytes big ~off ~len) in
  let dec = Decoder.create ~emit () in
  match Decoder.feed_bytes dec data ~off:0 ~len:(Bytes.length data) with
  | Error e -> Error e
  | Ok () -> (
      match Decoder.finish dec with
      | Error e -> Error e
      | Ok () -> Ok (Buffer.to_bytes out))

let decompress data = Codec_error.unwrap (decompress_result data)
