lib/attack/corpus.mli: Zipchannel_util
