type fault = { page_addr : int; kind : Zipchannel_trace.Event.kind }

type outcome = Done | Fault of fault | Executed

(* The program is precompiled at creation into flat int arrays (address,
   size, kind code) so the stepping loop reads machine integers instead
   of chasing one [Event.t] record per access. *)
type t = {
  p_addr : int array;
  p_size : int array;
  p_kind : int array; (* 0 = Read, 1 = Write *)
  page_table : Page_table.t;
  cache : Zipchannel_cache.Cache.t;
  cos : int;
  mutable pc : int;
  mutable executed : int;
}

let create ?(cos = 0) ~program ~page_table ~cache () =
  let n = Array.length program in
  let p_addr = Array.make n 0 in
  let p_size = Array.make n 0 in
  let p_kind = Array.make n 0 in
  Array.iteri
    (fun i ev ->
      p_addr.(i) <- ev.Zipchannel_trace.Event.addr;
      p_size.(i) <- ev.Zipchannel_trace.Event.size;
      p_kind.(i) <-
        (match ev.Zipchannel_trace.Event.kind with
        | Zipchannel_trace.Event.Read -> 0
        | Zipchannel_trace.Event.Write -> 1))
    program;
  { p_addr; p_size; p_kind; page_table; cache; cos; pc = 0; executed = 0 }

let page_mask = lnot (Page_table.page_size - 1)

let kind_of_code k =
  if k = 0 then Zipchannel_trace.Event.Read else Zipchannel_trace.Event.Write

(* First inaccessible page the access [addr, addr + size) touches, or -1.
   Kept out of the stepping loops; the accessible case is decided by the
   caller's cheap interval scan. *)
let blocked_page t addr size =
  let first = Page_table.vpage_of addr in
  let last = Page_table.vpage_of (addr + max 1 size - 1) in
  let rec go p =
    if p > last then -1
    else if not (Page_table.is_accessible t.page_table ~vpage:p) then p
    else go (p + 1)
  in
  go first

let fault_of t pc vpage =
  let addr = Array.unsafe_get t.p_addr pc in
  (* SGX reports the fault with the page offset masked. *)
  let addr_on_page =
    if vpage = Page_table.vpage_of addr then addr
    else vpage lsl Page_table.page_bits
  in
  Fault
    {
      page_addr = addr_on_page land page_mask;
      kind = kind_of_code (Array.unsafe_get t.p_kind pc);
    }

(* Execute up to [budget] access attempts in one tight loop over the flat
   program.  Stops early at [Done] (program exhausted) or [Fault] (pc not
   advanced; equivalent to {!step} returning the same fault on every
   remaining attempt). *)
let run_budget t budget =
  let n = Array.length t.p_addr in
  let left = ref budget in
  let result = ref Executed in
  (try
     while !left > 0 do
       if t.pc >= n then begin
         result := Done;
         raise Exit
       end;
       let addr = Array.unsafe_get t.p_addr t.pc in
       let size = Array.unsafe_get t.p_size t.pc in
       let vpage = blocked_page t addr size in
       if vpage >= 0 then begin
         result := fault_of t t.pc vpage;
         raise Exit
       end;
       let phys = Page_table.phys_of t.page_table addr in
       ignore
         (Zipchannel_cache.Cache.access t.cache ~cos:t.cos
            ~owner:Zipchannel_cache.Cache.Victim phys);
       t.pc <- t.pc + 1;
       t.executed <- t.executed + 1;
       decr left
     done
   with Exit -> ());
  !result

let step t = run_budget t 1

let run_to_fault t =
  match run_budget t max_int with
  | Executed -> assert false (* max_int attempts cannot all execute *)
  | outcome -> outcome

let run_steps t k =
  (* A timer window of [k] access attempts: equivalent to [k] calls to
     {!step} with faults ignored (a faulting access retries and faults
     again, consuming the remaining attempts without advancing). *)
  match run_budget t k with Done -> true | Fault _ | Executed -> false

let pc t = t.pc

let finished t = t.pc >= Array.length t.p_addr

let executed_count t = t.executed
