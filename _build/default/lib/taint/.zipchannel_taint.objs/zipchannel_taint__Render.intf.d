lib/taint/render.mli: Tval
