(* A pipelined parallel stage: one producer, [jobs] workers, one
   order-preserving consumer.

   The caller's domain runs [produce] and [consume]; [work] runs on
   worker domains.  Items flow through a bounded ring of [capacity]
   slots, which is also the backpressure mechanism: the producer stops
   filling when [capacity] items are in flight and resumes only after
   the consumer has drained one, so memory stays bounded no matter how
   fast the input side is.  Results are handed to [consume] strictly in
   production order, which is what makes every pipelined caller
   byte-identical to its [jobs = 1] run.

   The caller's loop alternates two phases: top up the window (enqueue
   until the ring is full or the producer reports end-of-stream), then
   block until the *next in-order* result is done and consume it.  With
   [capacity >= jobs + 1] the workers always have claimable tasks while
   the caller is blocked, so the pipeline only stalls when the work
   itself is the bottleneck.

   A slot [seq mod capacity] is reused by sequence [seq + capacity]
   only after [seq] has been consumed (the window invariant
   [seq_in - seq_out < capacity] guarantees it), so task payloads that
   point into caller-owned reusable buffers — the frame pipeline's
   chunk ring — are never overwritten while a worker still reads
   them. *)

module Obs = Zipchannel_obs.Obs

let m_items = Obs.Metrics.counter "pipeline.items"
let m_depth = Obs.Metrics.histogram "pipeline.queue_depth"

type ('a, 'b) state = {
  m : Mutex.t;
  task_ready : Condition.t;  (* workers: a task or shutdown is available *)
  result_ready : Condition.t;  (* caller: some result slot completed *)
  tasks : 'a option array;
  results : 'b option array;
  result_done : bool array;
  capacity : int;
  mutable seq_in : int;  (* next sequence to enqueue *)
  mutable seq_claim : int;  (* next sequence a worker claims *)
  mutable seq_out : int;  (* next sequence to consume *)
  mutable closed : bool;  (* no further enqueues will happen *)
  mutable failed : exn option;  (* first failure, any stage *)
}

exception Aborted
(* Internal: the caller's wait loop saw [failed] set by a worker; the
   real exception is re-raised after the domains join. *)

let worker st work =
  let running = ref true in
  while !running do
    Mutex.lock st.m;
    while
      st.seq_claim = st.seq_in && (not st.closed) && st.failed = None
    do
      Condition.wait st.task_ready st.m
    done;
    if st.failed <> None || (st.closed && st.seq_claim = st.seq_in) then begin
      Mutex.unlock st.m;
      running := false
    end
    else begin
      let seq = st.seq_claim in
      st.seq_claim <- seq + 1;
      let slot = seq mod st.capacity in
      let x = Option.get st.tasks.(slot) in
      st.tasks.(slot) <- None;
      Mutex.unlock st.m;
      match work x with
      | y ->
          Mutex.lock st.m;
          st.results.(slot) <- Some y;
          st.result_done.(slot) <- true;
          Condition.broadcast st.result_ready;
          Mutex.unlock st.m
      | exception e ->
          Mutex.lock st.m;
          if st.failed = None then st.failed <- Some e;
          Condition.broadcast st.result_ready;
          Condition.broadcast st.task_ready;
          Mutex.unlock st.m;
          running := false
    end
  done

let run_sequential ~produce ~work ~consume =
  let seq = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match produce ~seq:!seq with
    | None -> continue_ := false
    | Some x ->
        Obs.Metrics.incr m_items;
        Obs.Metrics.observe m_depth 1;
        consume ~seq:!seq (work x);
        incr seq
  done

let run ~jobs ?capacity ~produce ~work ~consume () =
  if jobs <= 1 then run_sequential ~produce ~work ~consume
  else begin
    let capacity =
      match capacity with
      | None -> 2 * jobs
      | Some c -> max c (jobs + 1)
    in
    let st =
      {
        m = Mutex.create ();
        task_ready = Condition.create ();
        result_ready = Condition.create ();
        tasks = Array.make capacity None;
        results = Array.make capacity None;
        result_done = Array.make capacity false;
        capacity;
        seq_in = 0;
        seq_claim = 0;
        seq_out = 0;
        closed = false;
        failed = None;
      }
    in
    let domains = Array.init jobs (fun _ -> Domain.spawn (fun () -> worker st work)) in
    let drive () =
      let eof = ref false in
      while not (!eof && st.seq_out = st.seq_in) do
        (* Top up the in-flight window. *)
        while (not !eof) && st.seq_in - st.seq_out < capacity do
          match produce ~seq:st.seq_in with
          | None ->
              eof := true;
              Mutex.lock st.m;
              st.closed <- true;
              Condition.broadcast st.task_ready;
              Mutex.unlock st.m
          | Some x ->
              Obs.Metrics.incr m_items;
              Mutex.lock st.m;
              st.tasks.(st.seq_in mod capacity) <- Some x;
              st.seq_in <- st.seq_in + 1;
              Obs.Metrics.observe m_depth (st.seq_in - st.seq_out);
              Condition.signal st.task_ready;
              Mutex.unlock st.m
        done;
        (* Wait for, then consume, the next in-order result. *)
        if st.seq_out < st.seq_in then begin
          let slot = st.seq_out mod capacity in
          Mutex.lock st.m;
          while (not st.result_done.(slot)) && st.failed = None do
            Condition.wait st.result_ready st.m
          done;
          if st.failed <> None then begin
            Mutex.unlock st.m;
            raise Aborted
          end;
          let y = Option.get st.results.(slot) in
          st.results.(slot) <- None;
          st.result_done.(slot) <- false;
          st.seq_out <- st.seq_out + 1;
          Mutex.unlock st.m;
          consume ~seq:(st.seq_out - 1) y
        end
      done
    in
    let caller_exn = match drive () with () -> None | exception e -> Some e in
    (* Shut the workers down (also on the success path, where [closed]
       is already set) and join before deciding what to raise. *)
    Mutex.lock st.m;
    st.closed <- true;
    if caller_exn <> None && st.failed = None then
      (* Poison outstanding tasks: workers drain without running them. *)
      st.failed <- caller_exn;
    Condition.broadcast st.task_ready;
    Mutex.unlock st.m;
    Array.iter Domain.join domains;
    match caller_exn with
    | Some Aborted | None -> (
        match st.failed with Some e -> raise e | None -> ())
    | Some e -> raise e
  end
