(** Noise sources that real cache attacks contend with.

    Two kinds, matching the paper's Section V-C analysis:
    - {b transition noise}: the OS/SGX machinery run on every page fault
      and [mprotect] touches a fixed working set of its own (handler code,
      page-table data) — deterministic per system boot, which is why the
      frame-selection technique can dodge it;
    - {b background noise}: unrelated applications on other cores hitting
      the shared LLC at random — the traffic Intel CAT walls off. *)

type config = {
  transition_lines : int;  (** lines in the OS working set *)
  transition_touch_prob : float;  (** chance each line is touched per
                                      transition *)
  background_per_window : int;  (** random accesses per measurement window *)
  address_space : int;  (** background addresses are drawn below this *)
}

val default_config : config

type t

val create :
  ?config:config ->
  cache:Zipchannel_cache.Cache.t ->
  prng:Zipchannel_util.Prng.t ->
  unit ->
  t

val on_transition : t -> unit
(** OS/SGX accesses caused by one fault-and-mprotect round trip (class of
    service 0 — same core as the attacker). *)

val background : t -> cos:int -> unit
(** One window of other-application traffic under the given CAT class. *)

val transition_sets : t -> int list
(** The cache sets the transition working set maps to (for tests; the
    attacker must discover them empirically via frame selection). *)
