module Crc32 = struct
  type t = int (* current remainder, pre-inversion *)

  let table =
    lazy
      (Array.init 256 (fun n ->
           let c = ref n in
           for _ = 1 to 8 do
             if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
             else c := !c lsr 1
           done;
           !c))

  let init = 0xFFFFFFFF

  let feed_byte t b =
    let table = Lazy.force table in
    table.((t lxor b) land 0xff) lxor (t lsr 8)

  let feed_bytes t data =
    let acc = ref t in
    Bytes.iter (fun c -> acc := feed_byte !acc (Char.code c)) data;
    !acc

  let value t = t lxor 0xFFFFFFFF

  let digest data = value (feed_bytes init data)
end

module Adler32 = struct
  type t = { a : int; b : int }

  let modulus = 65521

  let init = { a = 1; b = 0 }

  let feed_byte t byte =
    let a = (t.a + byte) mod modulus in
    { a; b = (t.b + a) mod modulus }

  let feed_bytes t data =
    let acc = ref t in
    Bytes.iter (fun c -> acc := feed_byte !acc (Char.code c)) data;
    !acc

  let value t = (t.b lsl 16) lor t.a

  let digest data = value (feed_bytes init data)
end
