open Zipchannel_util
open Zipchannel_taint
open Zipchannel_taintchannel

let prng () = Prng.create ~seed:0x7C41 ()

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_input_tags () =
  let e = Engine.create ~name:"t" (Bytes.of_string "ab") in
  let b0 = Engine.input_byte e 0 in
  Alcotest.(check int) "value" (Char.code 'a') (Tval.value b0);
  Alcotest.(check bool) "tag 1 on byte 0" true (Tagset.mem 1 (Tval.taint b0 0));
  Alcotest.check_raises "bounds" (Invalid_argument "Engine.input_byte: index")
    (fun () -> ignore (Engine.input_byte e 2))

let test_engine_memory_roundtrip () =
  let e = Engine.create ~name:"t" Bytes.empty in
  let addr = Tval.const ~width:32 0x100 in
  let v = Tval.const ~width:16 0xbeef in
  Engine.store e ~location:"l" ~mnemonic:"mov" ~addr ~size:2 ~value:v ();
  let back = Engine.load e ~location:"l" ~mnemonic:"mov" ~addr ~size:2 () in
  Alcotest.(check int) "stored value" 0xbeef (Tval.value back);
  let cold = Engine.load e ~location:"l" ~mnemonic:"mov"
      ~addr:(Tval.const ~width:32 0x999) ~size:2 () in
  Alcotest.(check int) "cold memory is zero" 0 (Tval.value cold)

let test_engine_untainted_addr_no_gadget () =
  let e = Engine.create ~name:"t" (Bytes.of_string "x") in
  Engine.store e ~location:"l" ~mnemonic:"mov"
    ~addr:(Tval.const ~width:32 64) ~size:1
    ~value:(Engine.input_byte e 0) ();
  Alcotest.(check int) "no gadget for tainted data at clean addr" 0
    (List.length (Engine.gadgets e))

let test_engine_tainted_addr_gadget () =
  let e = Engine.create ~name:"t" (Bytes.of_string "x") in
  let addr = Tval.zero_extend ~width:32 (Engine.input_byte e 0) in
  ignore (Engine.load e ~location:"gadget!here" ~mnemonic:"mov" ~addr ~size:4 ());
  ignore (Engine.load e ~location:"gadget!here" ~mnemonic:"mov" ~addr ~size:4 ());
  match Engine.gadgets e with
  | [ g ] ->
      Alcotest.(check string) "location" "gadget!here" g.Gadget.location;
      Alcotest.(check int) "aggregated" 2 g.Gadget.count;
      Alcotest.(check bool) "tag recorded" true (Tagset.mem 1 g.Gadget.tags);
      Alcotest.(check (float 1e-9)) "full coverage" 1.0
        (Gadget.coverage g ~input_length:1)
  | _ -> Alcotest.fail "expected exactly one gadget"

let test_engine_stage_input () =
  let e = Engine.create ~name:"t" (Bytes.of_string "hi") in
  Engine.stage_input e ~base:0x4000;
  let v = Engine.load e ~location:"l" ~mnemonic:"mov"
      ~addr:(Tval.const ~width:32 0x4001) ~size:1 () in
  Alcotest.(check int) "staged byte value" (Char.code 'i') (Tval.value v);
  Alcotest.(check bool) "staged byte tainted" true (Tagset.mem 2 (Tval.taint v 0))

let test_engine_control_trace () =
  let e = Engine.create ~name:"t" Bytes.empty in
  Engine.branch e ~location:"f" "then";
  Engine.branch e ~location:"g" "loop";
  Alcotest.(check (list string)) "ordered" [ "f:then"; "g:loop" ]
    (Engine.control_trace e)

let test_engine_report_renders () =
  let e = Engine.create ~name:"t" (Bytes.of_string "q") in
  let addr = Tval.zero_extend ~width:32 (Engine.input_byte e 0) in
  ignore (Engine.load e ~location:"somewhere!f+1" ~mnemonic:"mov (%rax)" ~addr ~size:4 ());
  let out = Format.asprintf "%a" Engine.report e in
  Alcotest.(check bool) "mentions location" true
    (Str_search.contains out "somewhere!f+1");
  Alcotest.(check bool) "mentions coverage" true
    (Str_search.contains out "input coverage")

(* ------------------------------------------------------------------ *)
(* Gadget models *)

let test_zlib_gadget_fig2_layout () =
  let input = Prng.bytes (prng ()) 64 in
  let e = Zlib_gadget.run input in
  let g =
    List.find (fun g -> g.Gadget.location = Zlib_gadget.location)
      (Engine.gadgets e)
  in
  (* First store happens after inserting bytes 1,2,3 (tags 1..3); the
     index head + ins_h<<1 carries taint at bits 1-8 (newest byte), 6-13
     and 11-15 — Fig. 2's layout. *)
  let ex = g.Gadget.example_addr in
  let has bit tag = Tagset.mem tag (Tval.taint ex bit) in
  for bit = 1 to 8 do
    Alcotest.(check bool) "newest byte bits 1-8" true (has bit 3)
  done;
  for bit = 6 to 13 do
    Alcotest.(check bool) "middle byte bits 6-13" true (has bit 2)
  done;
  for bit = 11 to 15 do
    Alcotest.(check bool) "oldest byte bits 11-15" true (has bit 1)
  done;
  Alcotest.(check bool) "bit 0 clean (head entries are 2 bytes)" true
    (Tagset.is_empty (Tval.taint ex 0))

let test_zlib_gadget_counts () =
  let input = Prng.bytes (prng ()) 100 in
  let e = Zlib_gadget.run input in
  let g =
    List.find (fun g -> g.Gadget.location = Zlib_gadget.location)
      (Engine.gadgets e)
  in
  Alcotest.(check int) "one insert per window" 98 g.Gadget.count;
  Alcotest.(check (float 1e-9)) "full coverage" 1.0
    (Gadget.coverage g ~input_length:100)

let test_lzw_gadget_bits_9_16 () =
  let input = Bytes.of_string "the quick brown fox jumps over the lazy dog" in
  let e = Lzw_gadget.run input in
  let g =
    List.find (fun g -> g.Gadget.location = Lzw_gadget.location)
      (Engine.gadgets e)
  in
  let ex = g.Gadget.example_addr in
  for bit = 9 to 16 do
    Alcotest.(check bool) "bits 9-16 tainted" true
      (not (Tagset.is_empty (Tval.taint ex bit)))
  done;
  (* ent is untainted under direct-flow tracking, so bits 0-8 of the very
     first probe's index are clean. *)
  for bit = 0 to 8 do
    Alcotest.(check bool) "low bits clean" true
      (Tagset.is_empty (Tval.taint ex bit))
  done

let test_lzw_gadget_coverage_all_but_first () =
  let input = Prng.bytes (prng ()) 200 in
  let e = Lzw_gadget.run input in
  let g =
    List.find (fun g -> g.Gadget.location = Lzw_gadget.location)
      (Engine.gadgets e)
  in
  (* Byte 1 only ever flows through ent (indirect), so coverage is
     (n-1)/n. *)
  Alcotest.(check bool) "tag 1 absent" false (Tagset.mem 1 g.Gadget.tags);
  Alcotest.(check bool) "tag 2 present" true (Tagset.mem 2 g.Gadget.tags);
  Alcotest.(check (float 1e-6)) "coverage" (199.0 /. 200.0)
    (Gadget.coverage g ~input_length:200)

let test_bzip2_gadget_fig4_pairs () =
  let input = Prng.bytes (prng ()) 50 in
  let n = Bytes.length input in
  (* Iteration k has byte i=n-1-k in bits 8-15, byte i+1 in bits 0-7. *)
  let k = 10 in
  let idx = Bzip2_gadget.index_tval input k in
  let i = n - 1 - k in
  Alcotest.(check int) "value is the pair"
    ((Char.code (Bytes.get input i) lsl 8) lor Char.code (Bytes.get input (i + 1)))
    (Tval.value idx);
  for bit = 8 to 15 do
    Alcotest.(check bool) "hi byte taint" true
      (Tagset.mem (i + 1) (Tval.taint idx bit))
  done;
  for bit = 0 to 7 do
    Alcotest.(check bool) "lo byte taint" true
      (Tagset.mem (i + 2) (Tval.taint idx bit))
  done

let test_bzip2_gadget_full_coverage () =
  let input = Prng.bytes (prng ()) 300 in
  let e = Bzip2_gadget.run input in
  let g =
    List.find (fun g -> g.Gadget.location = Bzip2_gadget.location)
      (Engine.gadgets e)
  in
  Alcotest.(check (float 1e-9)) "all bytes reach the address" 1.0
    (Gadget.coverage g ~input_length:300)

(* ------------------------------------------------------------------ *)
(* AES *)

let test_lz4_gadget_hash_head () =
  let input = Prng.bytes (prng ()) 64 in
  let e = Lz4_gadget.run input in
  let find loc =
    List.find (fun g -> g.Gadget.location = loc) (Engine.gadgets e)
  in
  let store = find Lz4_gadget.location_store in
  let load = find Lz4_gadget.location_load in
  (* One probe per 4-byte window. *)
  Alcotest.(check int) "one store per window" 61 store.Gadget.count;
  Alcotest.(check int) "one load per window" 61 load.Gadget.count;
  Alcotest.(check (float 1e-9)) "every byte reaches a probe" 1.0
    (Gadget.coverage store ~input_length:64);
  (* The first probe's address must carry all four window bytes (byte i
     is staged with tag i+1). *)
  let ex = store.Gadget.example_addr in
  let carries tag =
    let rec scan bit =
      bit < Tval.width ex
      && (Tagset.mem tag (Tval.taint ex bit) || scan (bit + 1))
    in
    scan 0
  in
  for tag = 1 to 4 do
    Alcotest.(check bool)
      (Printf.sprintf "byte %d taints the address" (tag - 1))
      true (carries tag)
  done

let test_snappy_gadget_hash_head () =
  let input = Prng.bytes (prng ()) 64 in
  let e = Snappy_gadget.run input in
  let store =
    List.find
      (fun g -> g.Gadget.location = Snappy_gadget.location)
      (Engine.gadgets e)
  in
  Alcotest.(check int) "one store per window" 61 store.Gadget.count;
  Alcotest.(check (float 1e-9)) "every byte reaches a probe" 1.0
    (Gadget.coverage store ~input_length:64);
  let ex = store.Gadget.example_addr in
  let carries tag =
    let rec scan bit =
      bit < Tval.width ex
      && (Tagset.mem tag (Tval.taint ex bit) || scan (bit + 1))
    in
    scan 0
  in
  for tag = 1 to 4 do
    Alcotest.(check bool)
      (Printf.sprintf "byte %d taints the address" (tag - 1))
      true (carries tag)
  done

let test_code_addrs_distinct_and_stable () =
  (* The registry fix: Hashtbl.hash collided distinct report locations
     onto one simulated instruction address (and moved across compiler
     versions); the per-engine registry must give every location its own
     stable slot on the base/stride grid. *)
  let input = Prng.bytes (prng ()) 48 in
  let cases =
    [
      Survey.case Survey.Zlib input;
      Survey.case Survey.Lz4 input;
      Survey.case Survey.Snappy input;
    ]
  in
  let snapshot () =
    List.map
      (fun ((c : Survey.case), e) ->
        ( c.Survey.label,
          List.map
            (fun g -> (g.Gadget.location, g.Gadget.code_addr))
            (Engine.gadgets e) ))
      (Survey.run cases)
  in
  let s1 = snapshot () in
  Alcotest.(check bool) "stable across runs" true (s1 = snapshot ());
  List.iter
    (fun (label, gads) ->
      let locs = List.sort_uniq compare (List.map fst gads) in
      let addrs = List.sort_uniq compare (List.map snd gads) in
      Alcotest.(check int)
        (label ^ ": distinct locations, distinct addresses")
        (List.length locs) (List.length addrs);
      List.iter
        (fun (_, addr) ->
          Alcotest.(check bool) (label ^ ": address on the registry grid") true
            (addr >= Engine.code_addr_base
            && (addr - Engine.code_addr_base) mod Engine.code_addr_stride = 0))
        gads)
    s1

let of_hex s =
  Bytes.init (String.length s / 2) (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let test_aes_fips_vector () =
  let key = of_hex "000102030405060708090a0b0c0d0e0f" in
  let pt = of_hex "00112233445566778899aabbccddeeff" in
  let ct = Aes.encrypt_block ~key pt in
  Alcotest.(check string) "FIPS-197 C.1"
    "69c4e0d86a7b0430d8cdb78070b4c55a"
    (String.concat ""
       (List.map (Printf.sprintf "%02x")
          (List.init 16 (fun i -> Char.code (Bytes.get ct i)))))

let test_aes_second_vector () =
  (* NIST SP 800-38A F.1.1 ECB-AES128 block 1. *)
  let key = of_hex "2b7e151628aed2a6abf7158809cf4f3c" in
  let pt = of_hex "6bc1bee22e409f96e93d7e117393172a" in
  let ct = Aes.encrypt_block ~key pt in
  Alcotest.(check string) "SP800-38A"
    "3ad77bb40d7a3660a89ecaf32466ef97"
    (String.concat ""
       (List.map (Printf.sprintf "%02x")
          (List.init 16 (fun i -> Char.code (Bytes.get ct i)))))

let test_aes_block_validation () =
  Alcotest.check_raises "bad key" (Invalid_argument "Aes: key must be 16 bytes")
    (fun () -> ignore (Aes.encrypt_block ~key:(Bytes.create 8) (Bytes.create 16)));
  Alcotest.check_raises "bad block" (Invalid_argument "Aes: block must be 16 bytes")
    (fun () ->
      ignore (Aes.encrypt_block ~key:(Bytes.create 16) (Bytes.create 8)))

let test_aes_ecb_deterministic () =
  let key = Bytes.of_string "0123456789abcdef" in
  let data = Prng.bytes (prng ()) 100 in
  let c1 = Aes.encrypt ~key data and c2 = Aes.encrypt ~key data in
  Alcotest.(check bool) "deterministic" true (Bytes.equal c1 c2);
  Alcotest.(check int) "whole blocks" 112 (Bytes.length c1)

let test_aes_taint_finds_osvik_gadget () =
  let key = Bytes.of_string "0123456789abcdef" in
  let input = Prng.bytes (prng ()) 32 in
  let e = Aes.run_taint ~key input in
  let g =
    List.find (fun g -> g.Gadget.location = Aes.location) (Engine.gadgets e)
  in
  Alcotest.(check int) "one lookup per byte" 32 g.Gadget.count;
  Alcotest.(check (float 1e-9)) "all plaintext bytes leak" 1.0
    (Gadget.coverage g ~input_length:32)

(* ------------------------------------------------------------------ *)
(* memcpy + trace diff *)

let test_memcpy_aligned_vs_tail () =
  let t64 = Memcpy_model.trace ~size:64 in
  Alcotest.(check bool) "aligned path" true
    (List.mem (Memcpy_model.location ^ ":aligned_path") t64);
  let t65 = Memcpy_model.trace ~size:65 in
  Alcotest.(check bool) "tail path" true
    (List.mem (Memcpy_model.location ^ ":byte_tail") t65)

let test_memcpy_divergence_detected () =
  Alcotest.(check bool) "different sizes diverge" true
    (Trace_diff.diverges (Memcpy_model.trace ~size:64) (Memcpy_model.trace ~size:96));
  Alcotest.(check bool) "same size identical" false
    (Trace_diff.diverges (Memcpy_model.trace ~size:77) (Memcpy_model.trace ~size:77))

let test_trace_diff_positions () =
  Alcotest.(check (option int)) "identical" None
    (Trace_diff.first_divergence [ "a"; "b" ] [ "a"; "b" ]);
  Alcotest.(check (option int)) "first" (Some 0)
    (Trace_diff.first_divergence [ "x" ] [ "y" ]);
  Alcotest.(check (option int)) "middle" (Some 1)
    (Trace_diff.first_divergence [ "a"; "b" ] [ "a"; "c" ]);
  Alcotest.(check (option int)) "prefix" (Some 2)
    (Trace_diff.first_divergence [ "a"; "b" ] [ "a"; "b"; "c" ])

let test_trace_diff_report () =
  match Trace_diff.compare_traces [ "a"; "b" ] [ "a" ] with
  | Some r ->
      Alcotest.(check int) "position" 1 r.Trace_diff.position;
      Alcotest.(check (option string)) "left" (Some "b") r.Trace_diff.left;
      Alcotest.(check (option string)) "right" None r.Trace_diff.right;
      let s = Format.asprintf "%a" Trace_diff.pp_report r in
      Alcotest.(check bool) "rendered" true (Str_search.contains s "divergence")
  | None -> Alcotest.fail "expected divergence"

(* ------------------------------------------------------------------ *)
(* Trace-correlation baseline *)

let test_correlate_finds_bzip2_gadget () =
  let t = prng () in
  let inputs = [ Prng.bytes t 120; Prng.bytes t 120 ] in
  let findings = Trace_correlate.analyze ~run:Bzip2_gadget.run ~inputs in
  Alcotest.(check bool) "flags the ftab access" true
    (List.exists
       (fun f -> f.Trace_correlate.location = Bzip2_gadget.location)
       findings);
  (* The loop-indexed quadrant/block accesses are input-independent and
     must not be flagged. *)
  Alcotest.(check bool) "quadrant store is clean" true
    (not
       (List.exists
          (fun f -> f.Trace_correlate.location = "libbz2!mainSort+178")
          findings))

let test_correlate_engine_address_trace () =
  let e = Engine.create ~name:"t" Bytes.empty in
  ignore
    (Engine.load e ~location:"a" ~mnemonic:"mov"
       ~addr:(Tval.const ~width:32 0x40) ~size:4 ());
  Engine.store e ~location:"b" ~mnemonic:"mov"
    ~addr:(Tval.const ~width:32 0x80) ~size:4
    ~value:(Tval.const ~width:32 1) ();
  Engine.log_op e ~location:"c" ~mnemonic:"xor" ~operands:[];
  Alcotest.(check (list (pair string int))) "mem ops only, in order"
    [ ("a", 0x40); ("b", 0x80) ]
    (Engine.address_trace e)

let test_correlate_validation () =
  Alcotest.check_raises "needs two inputs"
    (Invalid_argument "Trace_correlate.analyze: need >= 2 inputs") (fun () ->
      ignore (Trace_correlate.analyze ~run:Bzip2_gadget.run ~inputs:[]))

let test_correlate_constant_program_clean () =
  (* Same input twice: nothing varies, nothing is flagged. *)
  let input = Bytes.of_string "identical" in
  let findings =
    Trace_correlate.analyze ~run:Bzip2_gadget.run ~inputs:[ input; input ]
  in
  Alcotest.(check int) "no findings" 0 (List.length findings)

let qcheck_memcpy_trace_deterministic =
  QCheck.Test.make ~name:"memcpy trace deterministic per size" ~count:100
    (QCheck.int_bound 500)
    (fun size ->
      not (Trace_diff.diverges (Memcpy_model.trace ~size) (Memcpy_model.trace ~size)))

let suite =
  ( "taintchannel",
    [
      Alcotest.test_case "engine input tags" `Quick test_engine_input_tags;
      Alcotest.test_case "engine memory" `Quick test_engine_memory_roundtrip;
      Alcotest.test_case "engine clean addr" `Quick test_engine_untainted_addr_no_gadget;
      Alcotest.test_case "engine tainted addr" `Quick test_engine_tainted_addr_gadget;
      Alcotest.test_case "engine stage input" `Quick test_engine_stage_input;
      Alcotest.test_case "engine control trace" `Quick test_engine_control_trace;
      Alcotest.test_case "engine report" `Quick test_engine_report_renders;
      Alcotest.test_case "zlib gadget Fig2" `Quick test_zlib_gadget_fig2_layout;
      Alcotest.test_case "zlib gadget counts" `Quick test_zlib_gadget_counts;
      Alcotest.test_case "lzw gadget bits 9-16" `Quick test_lzw_gadget_bits_9_16;
      Alcotest.test_case "lzw gadget coverage" `Quick test_lzw_gadget_coverage_all_but_first;
      Alcotest.test_case "bzip2 gadget Fig4" `Quick test_bzip2_gadget_fig4_pairs;
      Alcotest.test_case "bzip2 gadget coverage" `Quick test_bzip2_gadget_full_coverage;
      Alcotest.test_case "lz4 gadget hash head" `Quick test_lz4_gadget_hash_head;
      Alcotest.test_case "snappy gadget hash head" `Quick
        test_snappy_gadget_hash_head;
      Alcotest.test_case "code addrs distinct and stable" `Quick
        test_code_addrs_distinct_and_stable;
      Alcotest.test_case "aes fips vector" `Quick test_aes_fips_vector;
      Alcotest.test_case "aes sp800-38a vector" `Quick test_aes_second_vector;
      Alcotest.test_case "aes validation" `Quick test_aes_block_validation;
      Alcotest.test_case "aes ecb" `Quick test_aes_ecb_deterministic;
      Alcotest.test_case "aes osvik gadget" `Quick test_aes_taint_finds_osvik_gadget;
      Alcotest.test_case "memcpy paths" `Quick test_memcpy_aligned_vs_tail;
      Alcotest.test_case "memcpy divergence" `Quick test_memcpy_divergence_detected;
      Alcotest.test_case "trace diff positions" `Quick test_trace_diff_positions;
      Alcotest.test_case "trace diff report" `Quick test_trace_diff_report;
      Alcotest.test_case "correlate finds gadget" `Quick test_correlate_finds_bzip2_gadget;
      Alcotest.test_case "correlate address trace" `Quick test_correlate_engine_address_trace;
      Alcotest.test_case "correlate validation" `Quick test_correlate_validation;
      Alcotest.test_case "correlate identical inputs" `Quick test_correlate_constant_program_clean;
      QCheck_alcotest.to_alcotest qcheck_memcpy_trace_deterministic;
    ] )
