lib/classifier/mlp.mli:
