lib/util/prng.mli:
