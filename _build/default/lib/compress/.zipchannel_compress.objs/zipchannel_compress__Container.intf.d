lib/compress/container.mli:
