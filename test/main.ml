let () =
  Alcotest.run "zipchannel"
    [
      Test_util.suite;
      Test_taint.suite;
      Test_taintplane.suite;
      Test_compress.suite;
      Test_fastpath.suite;
      Test_bigstring.suite;
      Test_rfc1951.suite;
      Test_robustness.suite;
      Test_fuzz.suite;
      Test_trace.suite;
      Test_cache.suite;
      Test_sgx.suite;
      Test_taintchannel.suite;
      Test_classifier.suite;
      Test_attack.suite;
      Test_page_channel.suite;
      Test_mitigation.suite;
      Test_container.suite;
      Test_frame.suite;
      Test_experiments.suite;
      Test_obs.suite;
      Test_obs_export.suite;
      Test_leak_audit.suite;
      Test_obs_prof.suite;
    ]
