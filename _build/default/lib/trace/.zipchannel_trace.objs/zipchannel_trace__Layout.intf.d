lib/trace/layout.mli:
