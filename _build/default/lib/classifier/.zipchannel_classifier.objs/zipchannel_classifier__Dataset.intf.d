lib/classifier/dataset.mli: Zipchannel_util
