lib/taintchannel/trace_correlate.ml: Array Engine Format Hashtbl List
