(* Process-wide metrics, span tracing and progress reporting.

   Counters/histograms are sharded: each metric owns [shards] atomic
   slots and a domain writes slot [domain_id land (shards - 1)].  Reads
   sum the slots.  This keeps the write path lock-free and contention
   low under the Domain pool while staying exact (no sampling). *)

let shards = 16

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let shard_index () = (Domain.self () :> int) land (shards - 1)

module Metrics = struct
  type counter = int Atomic.t array

  type gauge = { g_set : bool Atomic.t; g_bits : int64 Atomic.t }

  (* Per-shard histogram state: sample count, running sum, and one slot
     per log2 bucket (63 buckets cover every non-negative OCaml int). *)
  type histogram = {
    h_count : int Atomic.t array;
    h_sum : int Atomic.t array;
    h_buckets : int Atomic.t array array; (* shard -> bucket -> count *)
  }

  let buckets_per_histogram = 63

  type metric =
    | Counter of counter
    | Gauge of gauge
    | Histogram of histogram

  let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
  let registry_lock = Mutex.create ()

  let atomic_array n = Array.init n (fun _ -> Atomic.make 0)

  let register name make cast =
    Mutex.lock registry_lock;
    let m =
      match Hashtbl.find_opt registry name with
      | Some m -> m
      | None ->
        let m = make () in
        Hashtbl.add registry name m;
        m
    in
    Mutex.unlock registry_lock;
    cast m

  let counter name =
    register name
      (fun () -> Counter (atomic_array shards))
      (function
        | Counter c -> c
        | _ -> invalid_arg ("Obs.Metrics.counter: " ^ name ^ " is not a counter"))

  let add c n =
    if Atomic.get enabled_flag then
      ignore (Atomic.fetch_and_add c.(shard_index ()) n)

  let incr c = add c 1

  let counter_value c = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c

  let gauge name =
    register name
      (fun () ->
        Gauge { g_set = Atomic.make false; g_bits = Atomic.make 0L })
      (function
        | Gauge g -> g
        | _ -> invalid_arg ("Obs.Metrics.gauge: " ^ name ^ " is not a gauge"))

  let set_gauge g v =
    if Atomic.get enabled_flag then begin
      Atomic.set g.g_bits (Int64.bits_of_float v);
      Atomic.set g.g_set true
    end

  let gauge_value g = Int64.float_of_bits (Atomic.get g.g_bits)

  let histogram name =
    register name
      (fun () ->
        Histogram
          {
            h_count = atomic_array shards;
            h_sum = atomic_array shards;
            h_buckets =
              Array.init shards (fun _ -> atomic_array buckets_per_histogram);
          })
      (function
        | Histogram h -> h
        | _ ->
          invalid_arg ("Obs.Metrics.histogram: " ^ name ^ " is not a histogram"))

  (* Bucket 0 holds v <= 1; bucket b >= 1 holds 2^(b-1) < v <= ... i.e.
     b = bits needed for (v - 1); monotone in v, cheap to compute. *)
  let bucket_of v =
    if v <= 1 then 0
    else
      let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
      bits (v - 1) 0

  let observe h v =
    if Atomic.get enabled_flag then begin
      let s = shard_index () in
      ignore (Atomic.fetch_and_add h.h_count.(s) 1);
      ignore (Atomic.fetch_and_add h.h_sum.(s) v);
      ignore (Atomic.fetch_and_add h.h_buckets.(s).(bucket_of v) 1)
    end

  type histogram_snapshot = {
    count : int;
    sum : int;
    buckets : (int * int) list;
  }

  type snapshot = {
    counters : (string * int) list;
    gauges : (string * float) list;
    histograms : (string * histogram_snapshot) list;
  }

  let histogram_snapshot h =
    let count = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 h.h_count in
    let sum = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 h.h_sum in
    let buckets = ref [] in
    for b = buckets_per_histogram - 1 downto 0 do
      let n =
        Array.fold_left (fun acc row -> acc + Atomic.get row.(b)) 0 h.h_buckets
      in
      if n > 0 then buckets := (b, n) :: !buckets
    done;
    { count; sum; buckets = !buckets }

  let snapshot () =
    Mutex.lock registry_lock;
    let entries = Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [] in
    Mutex.unlock registry_lock;
    let entries =
      List.sort (fun (a, _) (b, _) -> String.compare a b) entries
    in
    let counters = ref [] and gauges = ref [] and histograms = ref [] in
    List.iter
      (fun (name, m) ->
        match m with
        | Counter c ->
          let v = counter_value c in
          if v <> 0 then counters := (name, v) :: !counters
        | Gauge g ->
          if Atomic.get g.g_set then gauges := (name, gauge_value g) :: !gauges
        | Histogram h ->
          let hs = histogram_snapshot h in
          if hs.count <> 0 then histograms := (name, hs) :: !histograms)
      entries;
    {
      counters = List.rev !counters;
      gauges = List.rev !gauges;
      histograms = List.rev !histograms;
    }

  let reset () =
    Mutex.lock registry_lock;
    Hashtbl.iter
      (fun _ m ->
        match m with
        | Counter c -> Array.iter (fun a -> Atomic.set a 0) c
        | Gauge g ->
          Atomic.set g.g_set false;
          Atomic.set g.g_bits 0L
        | Histogram h ->
          Array.iter (fun a -> Atomic.set a 0) h.h_count;
          Array.iter (fun a -> Atomic.set a 0) h.h_sum;
          Array.iter (Array.iter (fun a -> Atomic.set a 0)) h.h_buckets)
      registry;
    Mutex.unlock registry_lock

  let delta ~before ~after =
    let find name xs = List.assoc_opt name xs in
    let counters =
      List.filter_map
        (fun (name, v) ->
          let v0 = Option.value ~default:0 (find name before.counters) in
          if v - v0 <> 0 then Some (name, v - v0) else None)
        after.counters
    in
    let gauges =
      (* [Float.compare] rather than structural (<>): a gauge rewritten to
         the value it already had — including NaN, where [=] would always
         differ — is unchanged and must not appear in the delta. *)
      List.filter
        (fun (name, v) ->
          match find name before.gauges with
          | Some v0 -> Float.compare v0 v <> 0
          | None -> true)
        after.gauges
    in
    let histograms =
      List.filter_map
        (fun (name, hs) ->
          let hs0 =
            Option.value
              ~default:{ count = 0; sum = 0; buckets = [] }
              (find name before.histograms)
          in
          if hs.count = hs0.count then None
          else
            let buckets =
              List.filter_map
                (fun (b, n) ->
                  let n0 =
                    Option.value ~default:0 (List.assoc_opt b hs0.buckets)
                  in
                  if n - n0 > 0 then Some (b, n - n0) else None)
                hs.buckets
            in
            Some
              ( name,
                {
                  count = hs.count - hs0.count;
                  sum = hs.sum - hs0.sum;
                  buckets;
                } ))
        after.histograms
    in
    { counters; gauges; histograms }

  let is_empty s = s.counters = [] && s.gauges = [] && s.histograms = []

  (* Midpoint of a log2 bucket's value range: bucket 0 holds v <= 1,
     bucket b >= 1 holds 2^(b-1) < v <= 2^b. *)
  let bucket_midpoint b =
    if b = 0 then 1.0 else 1.5 *. float_of_int (1 lsl (b - 1))

  let approx_quantile hs q =
    if hs.count = 0 then 0.0
    else begin
      let rank = q *. float_of_int hs.count in
      let rec go seen = function
        | [] -> 0.0
        | [ (b, _) ] -> bucket_midpoint b
        | (b, n) :: rest ->
            let seen = seen + n in
            if float_of_int seen >= rank then bucket_midpoint b
            else go seen rest
      in
      go 0 hs.buckets
    end

  let pp_snapshot ppf s =
    let open Format in
    List.iter (fun (name, v) -> fprintf ppf "  %-42s %d@." name v) s.counters;
    List.iter (fun (name, v) -> fprintf ppf "  %-42s %.4f@." name v) s.gauges;
    List.iter
      (fun (name, hs) ->
        let mean =
          if hs.count = 0 then 0. else float_of_int hs.sum /. float_of_int hs.count
        in
        fprintf ppf "  %-42s count=%d sum=%d mean=%.1f p50~%g p95~%g@." name
          hs.count hs.sum mean
          (approx_quantile hs 0.5)
          (approx_quantile hs 0.95))
      s.histograms

  let json_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let json_float v =
    (* JSON has no NaN/infinity literals; clamp to 0. *)
    if Float.is_nan v || Float.abs v = Float.infinity then "0"
    else if Float.is_integer v && Float.abs v < 1e15 then
      Printf.sprintf "%.1f" v
    else Printf.sprintf "%.6g" v

  let snapshot_to_json s =
    let b = Buffer.create 1024 in
    let field_sep = ref "" in
    let obj xs f =
      Buffer.add_char b '{';
      let sep = ref "" in
      List.iter
        (fun x ->
          Buffer.add_string b !sep;
          sep := ", ";
          f x)
        xs;
      Buffer.add_char b '}'
    in
    Buffer.add_char b '{';
    let section name xs f =
      Buffer.add_string b !field_sep;
      field_sep := ", ";
      Buffer.add_string b (Printf.sprintf "\"%s\": " name);
      obj xs f
    in
    section "counters" s.counters (fun (name, v) ->
        Buffer.add_string b (Printf.sprintf "\"%s\": %d" (json_escape name) v));
    section "gauges" s.gauges (fun (name, v) ->
        Buffer.add_string b
          (Printf.sprintf "\"%s\": %s" (json_escape name) (json_float v)));
    section "histograms" s.histograms (fun (name, hs) ->
        Buffer.add_string b (Printf.sprintf "\"%s\": " (json_escape name));
        Buffer.add_string b
          (Printf.sprintf "{\"count\": %d, \"sum\": %d, \"buckets\": " hs.count
             hs.sum);
        obj hs.buckets (fun (bk, n) ->
            Buffer.add_string b (Printf.sprintf "\"%d\": %d" bk n));
        Buffer.add_char b '}');
    Buffer.add_char b '}';
    Buffer.contents b

  let flat_pairs s =
    List.map (fun (name, v) -> (name, float_of_int v)) s.counters
    @ s.gauges
    @ List.concat_map
        (fun (name, hs) ->
          [
            (name ^ ".count", float_of_int hs.count);
            (name ^ ".sum", float_of_int hs.sum);
          ])
        s.histograms
end

(* ------------------------------------------------------------------ *)
(* Sampling-profiler publication plane.

   [with_span] additionally publishes the current leaf span *path*
   ("outer;inner") into a per-domain atomic slot whenever publication is
   on.  The path string for a span is built once at push (an allocation
   only the profiled runs pay), kept on a per-domain DLS stack, and the
   slot write itself is a single [Atomic.set] — so a concurrent ticker
   thread (lib/obs_prof) can sample every slot without stopping, locking
   or otherwise observing the instrumented domains.  Slot index aliases
   exactly like the metric shards (domain id mod slot count); a sample
   attributes to whichever domain wrote its slot last, which is the
   usual sampling-profiler approximation. *)

module Prof = struct
  let flag = Atomic.make false

  let slot_count = shards

  let slots = Array.init shards (fun _ -> Atomic.make "")

  let stack_key : string list ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref [])

  let publishing () = Atomic.get flag

  let set_publishing b =
    Atomic.set flag b;
    (* Turning publication off wipes the slots so a later sampler run
       does not attribute time to spans long since finished. *)
    if not b then Array.iter (fun s -> Atomic.set s "") slots

  let slot () = shard_index ()

  let current_paths () = Array.map Atomic.get slots

  let current_path () = Atomic.get slots.(shard_index ())

  let push name =
    let st = Domain.DLS.get stack_key in
    let path = match !st with [] -> name | p :: _ -> p ^ ";" ^ name in
    st := path :: !st;
    Atomic.set slots.(shard_index ()) path

  let pop () =
    let st = Domain.DLS.get stack_key in
    match !st with
    | [] -> ()
    | _ :: rest ->
        st := rest;
        Atomic.set slots.(shard_index ())
          (match rest with [] -> "" | p :: _ -> p)
end

module Trace = struct
  type span_event = {
    phase : [ `Begin | `End ];
    name : string;
    domain : int;
    depth : int;
    ts_ns : int;
    dur_ns : int;
    attrs : (string * string) list;
  }

  type sink =
    | Null
    | Stderr
    | Jsonl of out_channel
    | Custom of (span_event -> unit)

  (* The sink is read on every with_span; boxed in an atomic so domains
     see a consistent value.  Writes to the sink itself are serialised
     by [emit_lock]. *)
  let current : sink Atomic.t = Atomic.make Null
  let emit_lock = Mutex.create ()

  let set_sink s = Atomic.set current s
  let sink () = Atomic.get current
  let active () = match Atomic.get current with Null -> false | _ -> true

  let attrs_json = function
    | [] -> ""
    | attrs ->
      let fields =
        List.map
          (fun (k, v) ->
            Printf.sprintf "\"%s\": \"%s\"" (Metrics.json_escape k)
              (Metrics.json_escape v))
          attrs
      in
      Printf.sprintf ", \"attrs\": {%s}" (String.concat ", " fields)

  let jsonl_of_event ev =
    match ev.phase with
    | `Begin ->
      Printf.sprintf
        "{\"ev\": \"b\", \"name\": \"%s\", \"domain\": %d, \"depth\": %d, \
         \"ts_ns\": %d%s}"
        (Metrics.json_escape ev.name)
        ev.domain ev.depth ev.ts_ns (attrs_json ev.attrs)
    | `End ->
      Printf.sprintf
        "{\"ev\": \"e\", \"name\": \"%s\", \"domain\": %d, \"depth\": %d, \
         \"ts_ns\": %d, \"dur_ns\": %d%s}"
        (Metrics.json_escape ev.name)
        ev.domain ev.depth ev.ts_ns ev.dur_ns (attrs_json ev.attrs)

  let stderr_line_of_event ev =
    match ev.phase with
    | `Begin -> None
    | `End ->
      let attrs_s =
        match ev.attrs with
        | [] -> ""
        | attrs ->
          " ["
          ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) attrs)
          ^ "]"
      in
      Some
        (Printf.sprintf "span %s%s%s %.3fms (domain %d)"
           (String.make (2 * ev.depth) ' ')
           ev.name attrs_s
           (float_of_int ev.dur_ns /. 1e6)
           ev.domain)
end

(* Per-domain span nesting depth, used both for JSONL nesting checks and
   stderr indentation. *)
let span_depth_key = Domain.DLS.new_key (fun () -> ref 0)

let emit_line oc line =
  Mutex.lock Trace.emit_lock;
  output_string oc line;
  output_char oc '\n';
  flush oc;
  Mutex.unlock Trace.emit_lock

(* A Custom sink's callback runs under [emit_lock] like every other
   emission, so a collecting sink needs no synchronisation of its own. *)
let emit_custom cb ev =
  Mutex.lock Trace.emit_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock Trace.emit_lock)
    (fun () -> cb ev)

let with_span ?(attrs = []) name f =
  (* Captured once: if sampling is toggled mid-span the pop below must
     mirror whatever the push did. *)
  let sampled = Atomic.get Prof.flag in
  match Atomic.get Trace.current with
  | Null when not sampled -> f ()
  | sink ->
    let depth = Domain.DLS.get span_depth_key in
    let d = !depth in
    depth := d + 1;
    if sampled then Prof.push name;
    let domain = (Domain.self () :> int) in
    let t0 = now_ns () in
    let event phase ts_ns dur_ns =
      { Trace.phase; name; domain; depth = d; ts_ns; dur_ns; attrs }
    in
    (match sink with
    | Jsonl oc -> emit_line oc (Trace.jsonl_of_event (event `Begin t0 0))
    | Custom cb -> emit_custom cb (event `Begin t0 0)
    | _ -> ());
    let finish () =
      let dur = now_ns () - t0 in
      depth := d;
      if sampled then Prof.pop ();
      match sink with
      | Jsonl oc ->
        emit_line oc (Trace.jsonl_of_event (event `End (now_ns ()) dur))
      | Custom cb -> emit_custom cb (event `End (now_ns ()) dur)
      | Stderr -> (
        match Trace.stderr_line_of_event (event `End (now_ns ()) dur) with
        | Some line -> emit_line stderr line
        | None -> ())
      | Null -> ()
    in
    Fun.protect ~finally:finish f

module Progress = struct
  let flag = Atomic.make false
  let set_enabled b = Atomic.set flag b
  let enabled () = Atomic.get flag

  (* [Plain] (the default) appends one newline-terminated line per
     report — safe for pipes, log files and grep.  [Ansi] rewrites a
     single status line in place with CR + erase-line; the CLIs select
     it only when stderr is a tty and NO_COLOR is unset, so campaign
     logs stay line-oriented. *)
  type style = Plain | Ansi

  let style_slot = Atomic.make Plain
  let set_style s = Atomic.set style_slot s
  let style () = Atomic.get style_slot

  let styled_line ~style line =
    match style with
    | Plain -> line ^ "\n"
    | Ansi -> "\r\x1b[2K" ^ line

  type t = {
    label : string;
    total : int option;
    interval_ns : int;
    start : int;
    mutable count : int;
    mutable last_emit : int;
  }

  let create ?total ?(interval_ns = 500_000_000) ~label () =
    let now = now_ns () in
    { label; total; interval_ns; start = now; count = 0; last_emit = now }

  (* Pure so the formatting (and the ETA arithmetic) is unit-testable:
     ETA = elapsed scaled by the work remaining, shown only while the
     rate is measurable and work remains. *)
  let render ~label ~count ~total ~elapsed_ns =
    match total with
    | None -> Printf.sprintf "[%s] %d" label count
    | Some total ->
      let base =
        Printf.sprintf "[%s] %d/%d (%.1f%%)" label count total
          (100. *. float_of_int count /. float_of_int (max 1 total))
      in
      if count > 0 && count < total && elapsed_ns > 0 then begin
        let eta =
          float_of_int elapsed_ns
          *. float_of_int (total - count)
          /. float_of_int count /. 1e9
        in
        if eta < 10. then Printf.sprintf "%s ~%.1fs" base eta
        else Printf.sprintf "%s ~%.0fs" base eta
      end
      else base

  let emit t =
    let line =
      render ~label:t.label ~count:t.count ~total:t.total
        ~elapsed_ns:(now_ns () - t.start)
    in
    Mutex.lock Trace.emit_lock;
    output_string stderr (styled_line ~style:(style ()) line);
    flush stderr;
    Mutex.unlock Trace.emit_lock

  let step ?(delta = 1) t =
    if Atomic.get flag then begin
      t.count <- t.count + delta;
      let now = now_ns () in
      if now - t.last_emit >= t.interval_ns then begin
        t.last_emit <- now;
        emit t
      end
    end

  let finish t =
    if Atomic.get flag then begin
      emit t;
      (* The in-place Ansi status line needs a final newline so whatever
         prints next starts on a fresh line. *)
      if style () = Ansi then begin
        Mutex.lock Trace.emit_lock;
        output_string stderr "\n";
        flush stderr;
        Mutex.unlock Trace.emit_lock
      end
    end
end
