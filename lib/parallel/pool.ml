let available_jobs () = Domain.recommended_domain_count ()

let normalize_jobs j =
  if j < 0 then
    Error
      (Printf.sprintf
         "jobs must be a positive domain count (or 0 for auto), got %d" j)
  else if j = 0 then Ok (available_jobs ())
  else Ok j

let map_array ~jobs f xs =
  let n = Array.length xs in
  if jobs <= 1 || n <= 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let error = Atomic.make None in
    let worker () =
      let running = ref true in
      while !running do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then running := false
        else
          match f xs.(i) with
          | y -> results.(i) <- Some y
          | exception e ->
              (* Keep the first failure; drain the remaining work so every
                 domain exits promptly. *)
              ignore (Atomic.compare_and_set error None (Some e));
              Atomic.set next n;
              running := false
      done
    in
    let domains =
      Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join domains;
    (match Atomic.get error with Some e -> raise e | None -> ());
    Array.map (function Some y -> y | None -> assert false) results
  end

let map_list ~jobs f xs =
  if jobs <= 1 then List.map f xs
  else Array.to_list (map_array ~jobs f (Array.of_list xs))
