type region = { name : string; base : int; size : int; elem_size : int }

type t = region list (* sorted by base *)

let overlaps a b = a.base < b.base + b.size && b.base < a.base + a.size

let create regions =
  let sorted = List.sort (fun a b -> compare a.base b.base) regions in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if a.name = b.name then invalid_arg "Layout.create: duplicate name";
        if overlaps a b then invalid_arg "Layout.create: overlapping regions";
        check rest
    | [ _ ] | [] -> ()
  in
  let names = List.sort compare (List.map (fun r -> r.name) sorted) in
  let rec dup = function
    | a :: (b :: _ as rest) -> if a = b then true else dup rest
    | [ _ ] | [] -> false
  in
  if dup names then invalid_arg "Layout.create: duplicate name";
  check sorted;
  sorted

let region t name =
  match List.find_opt (fun r -> r.name = name) t with
  | Some r -> r
  | None -> raise Not_found

let regions t = t

let addr_of t ~name ~index =
  let r = region t name in
  let addr = r.base + (index * r.elem_size) in
  if index < 0 || addr + r.elem_size > r.base + r.size then
    invalid_arg "Layout.addr_of: index outside region";
  addr

let find_addr t addr =
  List.find_map
    (fun r ->
      if addr >= r.base && addr < r.base + r.size then Some (r, addr - r.base)
      else None)
    t
