module Leak_audit = Zipchannel_obs_leak.Leak_audit
module Trace = Zipchannel_obs.Obs.Trace

type t = Frame of Leak_audit.record | Request of Leak_audit.request_record

let kind_of json =
  match Json.member "t" json with
  | Some (Json.Str "frame") -> Some `Frame
  | Some (Json.Str "request") -> Some `Request
  | _ -> None

let is_audit_record json = kind_of json <> None

let get_int name json =
  match Json.member name json with
  | Some v -> (
      match Json.to_int v with
      | Some n -> n
      | None -> failwith ("audit record: non-integer " ^ name))
  | None -> failwith ("audit record: missing " ^ name)

let get_str name json =
  match Option.bind (Json.member name json) Json.to_str with
  | Some s -> s
  | None -> failwith ("audit record: missing " ^ name)

let of_json json =
  match kind_of json with
  | Some `Frame ->
      let tag =
        match get_str "tag" json with
        | "data" -> Leak_audit.Data
        | "flush" -> Leak_audit.Flush
        | "trailer" -> Leak_audit.Trailer
        | t -> failwith ("audit record: unknown tag " ^ t)
      in
      Frame
        {
          Leak_audit.stream = get_int "stream" json;
          seq = get_int "seq" json;
          tag;
          codec = get_str "codec" json;
          ulen = get_int "ulen" json;
          clen = get_int "clen" json;
          delta = get_int "delta" json;
          bucket = get_int "bucket" json;
          enc_ns = get_int "enc_ns" json;
          ts_ns = get_int "ts_ns" json;
        }
  | Some `Request ->
      Request
        {
          Leak_audit.conn = get_int "conn" json;
          op = get_str "op" json;
          req_codec = get_str "codec" json;
          frame_size = get_int "frame_size" json;
          req_bytes = get_int "req_bytes" json;
          resp_bytes = get_int "resp_bytes" json;
          frames = get_int "frames" json;
          req_bucket = get_int "bucket" json;
          wall_ns = get_int "wall_ns" json;
          ts_ns = get_int "ts_ns" json;
          status = get_str "status" json;
        }
  | None -> failwith "not an audit record (no \"t\": frame/request member)"

let of_string s = List.map of_json (Json.parse_many s)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

(* ------------------------------------------------------------------ *)
(* Span mapping *)

let frame_span_name (r : Leak_audit.record) =
  "frame." ^ Leak_audit.tag_name r.tag

let event ~phase ~name ~domain ~ts_ns ~dur_ns ~attrs =
  { Trace.phase; name; domain; depth = 0; ts_ns; dur_ns; attrs }

let frame_events (r : Leak_audit.record) =
  let name = frame_span_name r in
  let attrs =
    [
      ("seq", string_of_int r.seq);
      ("codec", r.codec);
      ("ulen", string_of_int r.ulen);
      ("clen", string_of_int r.clen);
      ("delta", string_of_int r.delta);
      ("bucket", string_of_int r.bucket);
    ]
  in
  (* Attrs ride on the begin event: the span replay in
     {!Profile.spans_of_events} keeps the begin side's attributes. *)
  [
    event ~phase:`Begin ~name ~domain:r.stream ~ts_ns:(r.ts_ns - r.enc_ns)
      ~dur_ns:0 ~attrs;
    event ~phase:`End ~name ~domain:r.stream ~ts_ns:r.ts_ns ~dur_ns:r.enc_ns
      ~attrs:[];
  ]

let request_events (r : Leak_audit.request_record) =
  let name = "serve.request" in
  let attrs =
    [
      ("op", r.op);
      ("codec", r.req_codec);
      ("frame_size", string_of_int r.frame_size);
      ("req_bytes", string_of_int r.req_bytes);
      ("resp_bytes", string_of_int r.resp_bytes);
      ("frames", string_of_int r.frames);
      ("bucket", string_of_int r.req_bucket);
      ("status", r.status);
    ]
  in
  [
    event ~phase:`Begin ~name ~domain:r.conn ~ts_ns:(r.ts_ns - r.wall_ns)
      ~dur_ns:0 ~attrs;
    event ~phase:`End ~name ~domain:r.conn ~ts_ns:r.ts_ns ~dur_ns:r.wall_ns
      ~attrs:[];
  ]

(* Group records so each span's begin/end pair is adjacent and streams
   stay in sequence order — the shape the per-domain stack replay in
   {!Otlp.trace_request} expects.  Frames and requests use disjoint
   domain spaces in practice (stream ids vs connection ordinals), so
   requests are sorted after frames rather than interleaved. *)
let span_events records =
  let frames =
    List.filter_map (function Frame r -> Some r | Request _ -> None) records
  in
  let requests =
    List.filter_map (function Request r -> Some r | Frame _ -> None) records
  in
  let frames =
    List.stable_sort
      (fun (a : Leak_audit.record) b ->
        match compare a.stream b.stream with
        | 0 -> compare a.seq b.seq
        | c -> c)
      frames
  in
  let requests =
    List.stable_sort
      (fun (a : Leak_audit.request_record) b -> compare a.conn b.conn)
      requests
  in
  List.concat_map frame_events frames
  @ List.concat_map request_events requests

let trace_request records = Otlp.trace_request (span_events records)
