(** AES-128 with T-table lookups: the validation target for TaintChannel.

    The paper verifies that the tool rediscovers the gadget of the seminal
    Osvik et al. attack — the first-round T-table access at index
    [plaintext\[i\] xor key\[i\]], whose address leaks through the cache.
    This module implements real AES-128 encryption (checked against the
    FIPS-197 vector) and an instrumented run that routes the first-round
    table lookups through the TaintChannel engine with the plaintext
    marked as input. *)

val te_base : int
(** Default virtual base of the T-table. *)

val location : string

val encrypt_block : key:bytes -> bytes -> bytes
(** AES-128 ECB single-block encryption.  @raise Invalid_argument unless
    both the key and the block are 16 bytes. *)

val encrypt : key:bytes -> bytes -> bytes
(** ECB over a whole buffer, zero-padding the final partial block —
    enough to feed multi-block plaintexts to the analysis.
    @raise Invalid_argument unless the key is 16 bytes. *)

val run_taint : ?te_base:int -> key:bytes -> bytes -> Engine.t
(** Run the instrumented encryption over each 16-byte block of the input
    (the input is tainted, the key is an untainted secret), recording the
    first-round T-table dereferences. *)
