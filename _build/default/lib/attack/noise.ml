open Zipchannel_util
module Cache = Zipchannel_cache.Cache

type config = {
  transition_lines : int;
  transition_touch_prob : float;
  background_per_window : int;
  address_space : int;
}

let default_config =
  {
    transition_lines = 24;
    transition_touch_prob = 0.8;
    background_per_window = 48;
    address_space = 1 lsl 30;
  }

type t = {
  config : config;
  cache : Cache.t;
  prng : Prng.t;
  working_set : int array; (* addresses of the OS working set *)
}

let create ?(config = default_config) ~cache ~prng () =
  (* The OS working set is fixed for the lifetime of the system: pick it
     once, deterministically from the seed. *)
  let working_set =
    Array.init config.transition_lines (fun _ ->
        0x7fe000000000 + (64 * Prng.int prng (1 lsl 20)))
  in
  { config; cache; prng; working_set }

let on_transition t =
  Array.iter
    (fun addr ->
      if Prng.float t.prng < t.config.transition_touch_prob then
        ignore (Cache.access t.cache ~cos:0 ~owner:Cache.System addr))
    t.working_set

let background t ~cos =
  for _ = 1 to t.config.background_per_window do
    let addr = Prng.int t.prng t.config.address_space in
    ignore (Cache.access t.cache ~cos ~owner:Cache.Background addr)
  done

let transition_sets t =
  List.sort_uniq compare
    (Array.to_list (Array.map (fun a -> Cache.set_index t.cache a) t.working_set))
