lib/attack/zlib_sgx_attack.ml: Array Attack_config Bytes Char List Noise Page_channel Prng Recovery Stats Zipchannel_cache Zipchannel_compress Zipchannel_sgx Zipchannel_trace Zipchannel_util
