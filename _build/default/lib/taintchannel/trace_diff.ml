let first_divergence a b =
  let rec go i a b =
    match (a, b) with
    | [], [] -> None
    | [], _ :: _ | _ :: _, [] -> Some i
    | x :: a', y :: b' -> if String.equal x y then go (i + 1) a' b' else Some i
  in
  go 0 a b

let diverges a b = first_divergence a b <> None

type report = { position : int; left : string option; right : string option }

let compare_traces a b =
  match first_divergence a b with
  | None -> None
  | Some position ->
      Some
        {
          position;
          left = List.nth_opt a position;
          right = List.nth_opt b position;
        }

let pp_event ppf = function
  | Some e -> Format.fprintf ppf "%s" e
  | None -> Format.fprintf ppf "<end of trace>"

let pp_report ppf r =
  Format.fprintf ppf "control-flow divergence at event %d: %a vs %a" r.position
    pp_event r.left pp_event r.right
