open Zipchannel_util

let repeat_to ~size s =
  let buf = Buffer.create size in
  while Buffer.length buf < size do
    Buffer.add_string buf s
  done;
  Bytes.of_string (String.sub (Buffer.contents buf) 0 size)

let quickfox = "The quick brown fox jumps over the lazy dog. "

let backward ~size =
  Bytes.init size (fun i -> Char.chr (255 - (i mod 256)))

let alternating prng ~size =
  (* Structured binary: stretches of random bytes separated by zero
     runs, like map tiles. *)
  let b = Bytes.create size in
  let pos = ref 0 in
  let zero = ref false in
  while !pos < size do
    let run = min (size - !pos) (64 + Prng.int prng 192) in
    for k = !pos to !pos + run - 1 do
      Bytes.set b k (if !zero then '\000' else Char.chr (Prng.byte prng))
    done;
    zero := not !zero;
    pos := !pos + run
  done;
  b

let brotli_like prng =
  let text level size =
    Bytes.of_string (Lipsum.repetitive_file prng ~level ~size)
  in
  let compressed size =
    (* Already-compressed content: near-incompressible but structured. *)
    Zipchannel_compress.Deflate.compress (text 5 size)
  in
  let compressed_once = compressed 18_000 in
  [
    ("alice29.txt", text 5 45_000);
    ("asyoulik.txt", text 4 39_000);
    ("lcet10.txt", text 5 52_000);
    ("plrabn12.txt", text 5 60_000);
    ("random10k.bin", Prng.bytes prng 10_000);
    ("random30k.bin", Prng.bytes prng 30_000);
    ("zeros", Bytes.make 20_000 '\000');
    ("x", Bytes.of_string "x");
    ("xyzzy", Bytes.of_string "xyzzy");
    ("10x10y", Bytes.of_string (String.make 10 'x' ^ String.make 10 'y'));
    ("64x", Bytes.make 64 'x');
    ("quickfox", Bytes.of_string quickfox);
    ("quickfox_repeated", repeat_to ~size:20_000 quickfox);
    ("backward65536", backward ~size:20_000);
    ("monkey", text 2 20_000);
    ("ukkonooa", repeat_to ~size:8_000 "ukko nooa ukko nooa on iso mies ");
    ("compressed_file", compressed_once);
    ( "compressed_repeated",
      Bytes.concat Bytes.empty [ compressed_once; compressed_once; compressed_once ] );
    ("mapsdatazrh", alternating prng ~size:25_000);
    ("test.txt", text 3 10_000);
    ("alphabet", repeat_to ~size:15_000 "abcdefghijklmnopqrstuvwxyz")
  ]

let repetitiveness prng =
  List.init 5 (fun k ->
      let level = k + 1 in
      ( Printf.sprintf "test_%05d.txt" level,
        Bytes.of_string (Lipsum.repetitive_file prng ~level ~size:20_000) ))
