(** Deterministic pseudo-random number generation.

    All randomness in the library flows through this module so that every
    experiment is reproducible from a seed.  The generator is SplitMix64
    (Steele, Lea & Flood 2014): tiny state, excellent statistical quality,
    and cheap [split] for deriving independent streams. *)

type t
(** Mutable generator state. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] makes a fresh generator.  The default seed is a fixed
    constant: two generators created with equal seeds produce equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator that continues [t]'s stream without
    advancing [t]. *)

val split : t -> t
(** [split t] derives a new generator whose stream is statistically
    independent of the remainder of [t]'s stream.  Advances [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)

val byte : t -> int
(** Uniform on [0, 255]. *)

val bool : t -> bool

val float : t -> float
(** Uniform on [0, 1). *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Normal deviate via Box–Muller. *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] uniform random bytes. *)

val lowercase_string : t -> int -> string
(** [lowercase_string t n] is [n] uniform characters drawn from ['a'..'z']. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.  @raise Invalid_argument on
    empty input. *)
