lib/mitigation/oblivious.mli:
