(** LZ77 sliding-window matching with zlib's chained hash table.

    The matcher maintains the exact hash of the DEFLATE specification's
    recommended implementation, as analysed in the paper's Section IV-B
    (Listing 1): a 15-bit rolling hash over 3-byte windows,
    [h' = ((h << 5) lxor c) land 0x7fff], whose use as an index into the
    [head] array is the cache side-channel gadget. *)

val min_match : int
(** 3 *)

val max_match : int
(** 258 *)

val window_size : int
(** 32768 *)

val hash_bits : int
(** 15 *)

val hash_mask : int
(** 0x7fff *)

val update_hash : int -> int -> int
(** [update_hash h c] is zlib's UPDATE_HASH: [((h lsl 5) lxor c) land
    0x7fff]. *)

val hash_of_triple : int -> int -> int -> int
(** Hash of three consecutive bytes, oldest first: the value of [ins_h]
    when the triple's first byte is inserted. *)

type token = Literal of char | Match of { length : int; distance : int }

type strategy = Greedy | Lazy

val pp_token : Format.formatter -> token -> unit

val tokenize : ?strategy:strategy -> ?max_chain:int -> bytes -> token list
(** [max_chain] bounds the hash-chain walk (default 128).  [Greedy]
    (default) takes every match immediately; [Lazy] is zlib's
    deflate_slow evaluation — the paper's Fig. 2 gadget location — which
    defers a match by one position when the next position matches
    longer.  Match extension runs word-at-a-time over an off-heap
    staging of the input; the token sequence is identical to
    {!tokenize_ref} on every input. *)

val tokenize_array : ?strategy:strategy -> ?max_chain:int -> bytes -> token array
(** The {!tokenize} sequence as a fresh array — same tokens in the same
    order; lets hot consumers (e.g. {!Deflate.compress}) skip the
    intermediate list. *)

val tokenize_ref : ?strategy:strategy -> ?max_chain:int -> bytes -> token list
(** The retained byte-at-a-time reference tokenizer — the executable
    specification {!tokenize} is differential-tested against.  Same
    signature, same output, no word-level fast paths. *)

val detokenize : token list -> bytes
(** @raise Invalid_argument on a match reaching before the start of the
    output. *)

val hash_head_trace : bytes -> int array
(** The successive values of [ins_h] at each INSERT_STRING call — index
    [k] is the hash of input bytes [k, k+1, k+2]; length is
    [max 0 (n - 2)].  This is the address-relevant observable of the Zlib
    gadget. *)
