type owner = Attacker | Victim | System | Background

type replacement = Lru | Random_replacement

type config = {
  sets_per_slice : int;
  ways : int;
  slices : int;
  line_bits : int;
  policy : replacement;
}

let default_config =
  { sets_per_slice = 1024; ways = 16; slices = 4; line_bits = 6; policy = Lru }

let small_config =
  { sets_per_slice = 64; ways = 4; slices = 1; line_bits = 6; policy = Lru }

type line = { mutable tag : int; mutable who : owner; mutable last_use : int }

type t = {
  cfg : config;
  sets : line array array; (* global set -> way -> line *)
  cat : int array; (* class of service -> way mask *)
  mutable clock : int;
  slice_masks : int array; (* one parity mask per slice-index bit *)
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

(* Parity masks in the spirit of the reconstructed Intel slice hash
   (Maurice et al., RAID'15): each slice bit is the XOR of a spread
   selection of line-address bits. *)
let base_slice_masks = [| 0x1b5f575440; 0x2eb5faa880; 0x3cccc93100 |]

let create cfg =
  if not (is_pow2 cfg.sets_per_slice) then
    invalid_arg "Cache.create: sets_per_slice must be a power of two";
  if not (is_pow2 cfg.slices) then
    invalid_arg "Cache.create: slices must be a power of two";
  if cfg.ways < 1 then invalid_arg "Cache.create: ways";
  let n_sets = cfg.sets_per_slice * cfg.slices in
  let slice_bits =
    let rec bits n = if n <= 1 then 0 else 1 + bits (n / 2) in
    bits cfg.slices
  in
  if slice_bits > Array.length base_slice_masks then
    invalid_arg "Cache.create: too many slices";
  {
    cfg;
    sets =
      Array.init n_sets (fun _ ->
          Array.init cfg.ways (fun _ -> { tag = -1; who = System; last_use = 0 }));
    cat = Array.make 4 ((1 lsl cfg.ways) - 1);
    clock = 0;
    slice_masks = Array.sub base_slice_masks 0 slice_bits;
  }

let config t = t.cfg

let line_of t addr = addr lsr t.cfg.line_bits

let parity v =
  let v = v lxor (v lsr 32) in
  let v = v lxor (v lsr 16) in
  let v = v lxor (v lsr 8) in
  let v = v lxor (v lsr 4) in
  let v = v lxor (v lsr 2) in
  let v = v lxor (v lsr 1) in
  v land 1

let slice_of t addr =
  let line = line_of t addr in
  let s = ref 0 in
  Array.iteri
    (fun bit mask -> s := !s lor (parity (line land mask) lsl bit))
    t.slice_masks;
  !s

let set_of t addr = line_of t addr land (t.cfg.sets_per_slice - 1)

let set_index t addr = (slice_of t addr * t.cfg.sets_per_slice) + set_of t addr

let n_sets t = t.cfg.sets_per_slice * t.cfg.slices

let set_cat_mask t ~cos ~mask =
  if cos < 0 || cos >= Array.length t.cat then
    invalid_arg "Cache.set_cat_mask: cos";
  if mask = 0 || mask lsr t.cfg.ways <> 0 then
    invalid_arg "Cache.set_cat_mask: mask";
  t.cat.(cos) <- mask

let cat_mask t ~cos =
  if cos < 0 || cos >= Array.length t.cat then invalid_arg "Cache.cat_mask: cos";
  t.cat.(cos)

let find_way set tag =
  let n = Array.length set in
  let rec go w =
    if w >= n then None else if set.(w).tag = tag then Some w else go (w + 1)
  in
  go 0

let access t ?(cos = 0) ~owner addr =
  t.clock <- t.clock + 1;
  let tag = line_of t addr in
  let set = t.sets.(set_index t addr) in
  match find_way set tag with
  | Some w ->
      set.(w).last_use <- t.clock;
      true
  | None ->
      (* Fill into a way the CAT mask allows: the least recently used one
         (an invalid way counts as oldest), or a pseudo-random one under
         the random-replacement policy; invalid ways are always taken
         first. *)
      let mask = t.cat.(cos) in
      let victim = ref (-1) in
      (match t.cfg.policy with
      | Lru ->
          for w = 0 to Array.length set - 1 do
            if mask land (1 lsl w) <> 0 then
              if !victim < 0 then victim := w
              else begin
                let cand = set.(w) and cur = set.(!victim) in
                let age l = if l.tag = -1 then min_int else l.last_use in
                if age cand < age cur then victim := w
              end
          done
      | Random_replacement ->
          let allowed = ref [] and empty = ref [] in
          for w = Array.length set - 1 downto 0 do
            if mask land (1 lsl w) <> 0 then begin
              allowed := w :: !allowed;
              if set.(w).tag = -1 then empty := w :: !empty
            end
          done;
          let pool = if !empty <> [] then !empty else !allowed in
          (* Deterministic pseudo-randomness from the access clock. *)
          let r = (t.clock * 0x9E3779B1) lsr 7 in
          victim := List.nth pool (r mod List.length pool));
      assert (!victim >= 0);
      let l = set.(!victim) in
      l.tag <- tag;
      l.who <- owner;
      l.last_use <- t.clock;
      false

let is_cached t addr =
  let tag = line_of t addr in
  find_way t.sets.(set_index t addr) tag <> None

let flush t addr =
  let tag = line_of t addr in
  let set = t.sets.(set_index t addr) in
  match find_way set tag with
  | Some w ->
      set.(w).tag <- -1;
      set.(w).last_use <- 0
  | None -> ()

let owner_in_set t ~set who =
  if set < 0 || set >= n_sets t then invalid_arg "Cache.owner_in_set: set";
  Array.fold_left
    (fun acc l -> if l.tag <> -1 && l.who = who then acc + 1 else acc)
    0 t.sets.(set)

let addrs_for_set t ~set ~count =
  if set < 0 || set >= n_sets t then invalid_arg "Cache.addrs_for_set: set";
  if count < 0 then invalid_arg "Cache.addrs_for_set: count";
  let out = Array.make count 0 in
  let found = ref 0 in
  (* Only lines whose low set-index bits already match can hit the target
     set, so stride by sets_per_slice. *)
  let low = set land (t.cfg.sets_per_slice - 1) in
  let line = ref low in
  while !found < count do
    let addr = !line lsl t.cfg.line_bits in
    if set_index t addr = set then begin
      out.(!found) <- addr;
      incr found
    end;
    line := !line + t.cfg.sets_per_slice
  done;
  out

let addr_for_set t ~set ~seq =
  if seq < 0 then invalid_arg "Cache.addr_for_set: seq";
  (addrs_for_set t ~set ~count:(seq + 1)).(seq)
