(** Virtual-memory layout of a victim: named regions at fixed base
    addresses.

    The threat model of the paper's Section IV-A gives the attacker the
    base addresses of all arrays the victim accesses; a [Layout.t] is that
    knowledge.  Regions may be deliberately misaligned with respect to
    cache lines — Bzip2's [ftab] is not line-aligned, which produces the
    off-by-one ambiguity of Section IV-D. *)

type region = {
  name : string;
  base : int;  (** virtual base address *)
  size : int;  (** bytes *)
  elem_size : int;  (** bytes per element for indexed access *)
}

type t

val create : region list -> t
(** @raise Invalid_argument on duplicate names or overlapping regions. *)

val region : t -> string -> region
(** @raise Not_found if no such region. *)

val regions : t -> region list

val addr_of : t -> name:string -> index:int -> int
(** Byte address of element [index] of region [name].
    @raise Invalid_argument if the element lies outside the region. *)

val find_addr : t -> int -> (region * int) option
(** Region containing a byte address, with the byte offset inside it. *)
