lib/taintchannel/lzw_gadget.ml: Engine List Tagset Tval Zipchannel_compress Zipchannel_taint
