open Zipchannel_taint

let tagset = Alcotest.testable Tagset.pp Tagset.equal

let tags l = Tagset.of_list l

let test_tagset_basics () =
  Alcotest.(check bool) "empty" true (Tagset.is_empty Tagset.empty);
  Alcotest.check tagset "union" (tags [ 1; 2; 3 ])
    (Tagset.union (tags [ 1; 2 ]) (tags [ 2; 3 ]));
  Alcotest.(check (list int)) "elements sorted" [ 1; 5; 9 ]
    (Tagset.elements (tags [ 9; 1; 5 ]));
  Alcotest.(check int) "cardinal" 3 (Tagset.cardinal (tags [ 4; 4; 5; 6 ]))

let test_const_untainted () =
  let v = Tval.const ~width:16 0xabcd in
  Alcotest.(check int) "value" 0xabcd (Tval.value v);
  Alcotest.(check bool) "untainted" false (Tval.is_tainted v)

let test_const_truncates () =
  let v = Tval.const ~width:8 0x1ff in
  Alcotest.(check int) "truncated" 0xff (Tval.value v)

let test_input_byte_fully_tainted () =
  let v = Tval.input_byte ~tag:7 0x5a in
  Alcotest.(check int) "value" 0x5a (Tval.value v);
  for i = 0 to 7 do
    Alcotest.check tagset "bit tainted" (tags [ 7 ]) (Tval.taint v i)
  done

let test_xor_merges_per_bit () =
  (* The paper's example: rax holds taint of byte 5 in bits 0,1; rbx taint
     of byte 6 in bits 1,2; xor merges per bit. *)
  let rax = Tval.with_taint ~width:8 0x3 [ (0, tags [ 5 ]); (1, tags [ 5 ]) ] in
  let rbx = Tval.with_taint ~width:8 0x6 [ (1, tags [ 6 ]); (2, tags [ 6 ]) ] in
  let r = Tval.logxor rax rbx in
  Alcotest.(check int) "value" 0x5 (Tval.value r);
  Alcotest.check tagset "bit0" (tags [ 5 ]) (Tval.taint r 0);
  Alcotest.check tagset "bit1" (tags [ 5; 6 ]) (Tval.taint r 1);
  Alcotest.check tagset "bit2" (tags [ 6 ]) (Tval.taint r 2);
  Alcotest.check tagset "bit3" Tagset.empty (Tval.taint r 3)

let test_and_mask_filters () =
  (* and with untainted mask keeps taint only where the mask bit is 1. *)
  let v = Tval.input_byte ~tag:3 0xff in
  let m = Tval.const ~width:8 0x0f in
  let r = Tval.logand v m in
  Alcotest.(check int) "value" 0x0f (Tval.value r);
  for i = 0 to 3 do
    Alcotest.check tagset "kept" (tags [ 3 ]) (Tval.taint r i)
  done;
  for i = 4 to 7 do
    Alcotest.check tagset "cleared" Tagset.empty (Tval.taint r i)
  done

let test_and_both_tainted_merges () =
  let a = Tval.with_taint ~width:4 0xf [ (0, tags [ 1 ]) ] in
  let b = Tval.with_taint ~width:4 0xf [ (0, tags [ 2 ]) ] in
  let r = Tval.logand a b in
  Alcotest.check tagset "merged" (tags [ 1; 2 ]) (Tval.taint r 0)

let test_shift_left_moves_taint () =
  let v = Tval.input_byte ~tag:9 0x01 in
  let v = Tval.zero_extend ~width:16 v in
  let r = Tval.shift_left v 9 in
  Alcotest.(check int) "value" 0x200 (Tval.value r);
  Alcotest.check tagset "bit 9" (tags [ 9 ]) (Tval.taint r 9);
  Alcotest.check tagset "bit 0 cleared" Tagset.empty (Tval.taint r 0)

let test_shift_right_logical () =
  let v = Tval.with_taint ~width:16 0x8000 [ (15, tags [ 2 ]) ] in
  let r = Tval.shift_right_logical v 8 in
  Alcotest.(check int) "value" 0x80 (Tval.value r);
  Alcotest.check tagset "moved to bit 7" (tags [ 2 ]) (Tval.taint r 7);
  Alcotest.check tagset "bit 15 cleared" Tagset.empty (Tval.taint r 15)

let test_shift_right_arith_replicates_sign () =
  let v = Tval.with_taint ~width:8 0x80 [ (7, tags [ 4 ]) ] in
  let r = Tval.shift_right_arith v 2 in
  Alcotest.(check int) "sign extended" 0xe0 (Tval.value r);
  Alcotest.check tagset "bit7 keeps sign taint" (tags [ 4 ]) (Tval.taint r 7);
  Alcotest.check tagset "bit6 gets sign taint" (tags [ 4 ]) (Tval.taint r 6);
  Alcotest.check tagset "bit5 from old bit7" (tags [ 4 ]) (Tval.taint r 5)

let test_add_merges () =
  let low_nibble = List.init 4 (fun i -> (i, tags [ 1 ])) in
  let a = Tval.with_taint ~width:8 0x0f low_nibble in
  let b = Tval.const ~width:8 0x10 in
  let r = Tval.add a b in
  Alcotest.(check int) "value" 0x1f (Tval.value r);
  Alcotest.check tagset "low bits keep taint" (tags [ 1 ]) (Tval.taint r 0);
  (* Per-bit merge (the paper's rule): no carry smear into bit 4. *)
  Alcotest.check tagset "bit 4 untainted" Tagset.empty (Tval.taint r 4)

let test_add_wraps () =
  let a = Tval.const ~width:8 0xff and b = Tval.const ~width:8 0x02 in
  Alcotest.(check int) "wraps" 0x01 (Tval.value (Tval.add a b))

let test_sub_wraps () =
  let a = Tval.const ~width:8 0x01 and b = Tval.const ~width:8 0x02 in
  Alcotest.(check int) "wraps" 0xff (Tval.value (Tval.sub a b))

let test_zero_extend_truncate () =
  let v = Tval.input_byte ~tag:5 0xab in
  let w = Tval.zero_extend ~width:32 v in
  Alcotest.(check int) "value preserved" 0xab (Tval.value w);
  Alcotest.check tagset "taint preserved" (tags [ 5 ]) (Tval.taint w 7);
  Alcotest.check tagset "new bits untainted" Tagset.empty (Tval.taint w 20);
  let n = Tval.truncate ~width:4 w in
  Alcotest.(check int) "truncated value" 0xb (Tval.value n);
  Alcotest.(check int) "width" 4 (Tval.width n)

let test_width_alignment () =
  let a = Tval.input_byte ~tag:1 0x01 in
  let b = Tval.const ~width:32 0x100 in
  let r = Tval.logor a b in
  Alcotest.(check int) "width widened" 32 (Tval.width r);
  Alcotest.(check int) "value" 0x101 (Tval.value r)

let test_tags_union () =
  let a = Tval.input_byte ~tag:1 0xff in
  let b = Tval.shift_left (Tval.zero_extend ~width:16 (Tval.input_byte ~tag:2 0xff)) 8 in
  let r = Tval.logor a b in
  Alcotest.check tagset "all tags" (tags [ 1; 2 ]) (Tval.tags r)

let test_zlib_hash_taint_layout () =
  (* Reproduce the Fig. 2 taint layout: ins_h = (((c0<<5)^c1)<<5)^c2 masked
     to 15 bits; c2 taints bits 0-7, c1 bits 5-12, c0 bits 10-14. *)
  let c0 = Tval.input_byte ~tag:5750 0x61 in
  let c1 = Tval.input_byte ~tag:5751 0x62 in
  let c2 = Tval.input_byte ~tag:5752 0x63 in
  let wide v = Tval.zero_extend ~width:16 v in
  let mask = Tval.const ~width:16 0x7fff in
  let h = Tval.logand (Tval.logxor (Tval.shift_left (wide c0) 5) (wide c1)) mask in
  let h = Tval.logand (Tval.logxor (Tval.shift_left h 5) (wide c2)) mask in
  let has_tag bit tag = Tagset.mem tag (Tval.taint h bit) in
  for bit = 0 to 7 do
    Alcotest.(check bool) "c2 bits 0-7" true (has_tag bit 5752)
  done;
  for bit = 5 to 12 do
    Alcotest.(check bool) "c1 bits 5-12" true (has_tag bit 5751)
  done;
  for bit = 10 to 14 do
    Alcotest.(check bool) "c0 bits 10-14" true (has_tag bit 5750)
  done;
  Alcotest.(check bool) "bit 8 pure c1" true
    (Tagset.equal (Tval.taint h 8) (tags [ 5751 ]));
  Alcotest.(check bool) "bit 9 pure c1" true
    (Tagset.equal (Tval.taint h 9) (tags [ 5751 ]))

let test_render_untainted_empty () =
  let v = Tval.const ~width:16 0x1234 in
  Alcotest.(check string) "no grid" "" (Render.bit_grid v)

let test_render_hex_bytes () =
  let v = Tval.const ~width:16 0xabcd in
  Alcotest.(check string) "little endian" "cd ab" (Render.hex_bytes_le v)

let test_render_grid_contents () =
  let v = Tval.with_taint ~width:16 0xff [ (3, tags [ 42 ]) ] in
  let grid = Render.bit_grid v in
  Alcotest.(check bool) "mentions tag" true
    (let re = Str_search.contains grid "42:" in
     re)

let test_render_operand_line () =
  let v = Tval.input_byte ~tag:1 0x20 in
  let line = Render.operand_line ~name:"rax" v in
  Alcotest.(check bool) "has name" true (Str_search.contains line "rax = 20");
  Alcotest.(check bool) "flagged tainted" true
    (Str_search.contains line "(tainted)")

let qcheck_xor_taint_commutes =
  QCheck.Test.make ~name:"xor taint is commutative" ~count:200
    QCheck.(pair (int_bound 255) (int_bound 255))
    (fun (x, y) ->
      let a = Tval.input_byte ~tag:1 x and b = Tval.input_byte ~tag:2 y in
      Tval.equal (Tval.logxor a b) (Tval.logxor b a))

let qcheck_shift_roundtrip =
  QCheck.Test.make ~name:"shl then lshr restores low-bit taint" ~count:200
    (QCheck.int_bound 255)
    (fun x ->
      let v = Tval.zero_extend ~width:32 (Tval.input_byte ~tag:3 x) in
      let r = Tval.shift_right_logical (Tval.shift_left v 10) 10 in
      Tval.equal r v)

let qcheck_and_idempotent_value =
  QCheck.Test.make ~name:"and value agrees with lands" ~count:200
    QCheck.(pair (int_bound 0xffff) (int_bound 0xffff))
    (fun (x, y) ->
      let a = Tval.const ~width:16 x and b = Tval.const ~width:16 y in
      Tval.value (Tval.logand a b) = x land y)

let suite =
  ( "taint",
    [
      Alcotest.test_case "tagset basics" `Quick test_tagset_basics;
      Alcotest.test_case "const untainted" `Quick test_const_untainted;
      Alcotest.test_case "const truncates" `Quick test_const_truncates;
      Alcotest.test_case "input byte tainted" `Quick test_input_byte_fully_tainted;
      Alcotest.test_case "xor merges per bit" `Quick test_xor_merges_per_bit;
      Alcotest.test_case "and mask filters" `Quick test_and_mask_filters;
      Alcotest.test_case "and both tainted" `Quick test_and_both_tainted_merges;
      Alcotest.test_case "shl moves taint" `Quick test_shift_left_moves_taint;
      Alcotest.test_case "lshr moves taint" `Quick test_shift_right_logical;
      Alcotest.test_case "asr replicates sign" `Quick test_shift_right_arith_replicates_sign;
      Alcotest.test_case "add merges per bit" `Quick test_add_merges;
      Alcotest.test_case "add wraps" `Quick test_add_wraps;
      Alcotest.test_case "sub wraps" `Quick test_sub_wraps;
      Alcotest.test_case "extend/truncate" `Quick test_zero_extend_truncate;
      Alcotest.test_case "width alignment" `Quick test_width_alignment;
      Alcotest.test_case "tags union" `Quick test_tags_union;
      Alcotest.test_case "zlib hash taint layout (Fig 2)" `Quick test_zlib_hash_taint_layout;
      Alcotest.test_case "render untainted" `Quick test_render_untainted_empty;
      Alcotest.test_case "render hex" `Quick test_render_hex_bytes;
      Alcotest.test_case "render grid" `Quick test_render_grid_contents;
      Alcotest.test_case "render operand line" `Quick test_render_operand_line;
      QCheck_alcotest.to_alcotest qcheck_xor_taint_commutes;
      QCheck_alcotest.to_alcotest qcheck_shift_roundtrip;
      QCheck_alcotest.to_alcotest qcheck_and_idempotent_value;
    ] )
