(* zc: the compression utility surface of the library.

     zc compress  -a bzip2  file.txt file.zc
     zc decompress -a bzip2 file.zc file.txt
     zc archive create out.zca file1 file2 ...
     zc archive list out.zca
     zc archive extract out.zca entryname outfile

   Algorithms: bzip2, gzip, zlib, deflate (raw RFC 1951), lzw, huffman,
   store.  gzip/zlib streams interoperate with standard tools. *)

open Cmdliner
open Zipchannel

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> Bytes.of_string (really_input_string ic (in_channel_length ic)))

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc data)

let codecs jobs =
  [
    ("bzip2", ((fun b -> Compress.Bzip2.compress ~jobs b),
               Compress.Bzip2.decompress));
    ("gzip", ((fun b -> Compress.Rfc1951.Gzip.compress b),
              Compress.Rfc1951.Gzip.decompress));
    ("zlib", ((fun b -> Compress.Rfc1951.Zlib.compress b),
              Compress.Rfc1951.Zlib.decompress));
    ("deflate", ((fun b -> Compress.Rfc1951.deflate b), Compress.Rfc1951.inflate));
    ("lzw", (Compress.Lzw.compress, Compress.Lzw.decompress));
    ("huffman", (Compress.Huffman.encode, Compress.Huffman.decode));
    ("store", (Mitigation.Oblivious.store_pack, Mitigation.Oblivious.store_unpack));
  ]

let codec_names = List.map fst (codecs 1)

let run_codec ~decompress algo jobs input output =
  match List.assoc_opt algo (codecs jobs) with
  | None ->
      `Error (false, "unknown algorithm (use " ^ String.concat "/" codec_names ^ ")")
  | Some (enc, dec) -> (
      let data = read_file input in
      match (if decompress then dec else enc) data with
      | out ->
          write_file output out;
          Printf.printf "%s: %d -> %d bytes\n" algo (Bytes.length data)
            (Bytes.length out);
          `Ok ()
      | exception (Failure msg | Invalid_argument msg) ->
          `Error (false, msg)
      | exception Compress.Container.Corrupt msg -> `Error (false, msg)
      | exception
          ( Compress.Bitio.Reader.Out_of_bits
          | Compress.Bitio.Lsb_reader.Out_of_bits ) ->
          `Error (false, "truncated or corrupt input"))

let algo =
  let doc = "Compression algorithm: " ^ String.concat ", " codec_names ^ "." in
  Arg.(value & opt string "bzip2" & info [ "a"; "algorithm" ] ~docv:"ALGO" ~doc)

let jobs =
  Obs_cli.jobs_arg
    ~doc:
      "Worker domains for block/member compression (0 = all available \
       cores)."

let in_file n = Arg.(required & pos n (some file) None & info [] ~docv:"INPUT")

let out_file n =
  Arg.(required & pos n (some string) None & info [] ~docv:"OUTPUT")

let compress_cmd =
  Cmd.v (Cmd.info "compress" ~doc:"Compress a file")
    Term.(
      ret
        (const (run_codec ~decompress:false)
        $ algo $ jobs $ in_file 0 $ out_file 1))

let decompress_cmd =
  Cmd.v (Cmd.info "decompress" ~doc:"Decompress a file")
    Term.(
      ret
        (const (run_codec ~decompress:true)
        $ algo $ jobs $ in_file 0 $ out_file 1))

(* ------------------------------------------------------------------ *)
(* Archive *)

let archive_create jobs out inputs =
  match
    Compress.Container.Archive.pack ~jobs
      (List.map
         (fun path ->
           { Compress.Container.Archive.name = Filename.basename path;
             data = read_file path })
         inputs)
  with
  | packed ->
      write_file out packed;
      Printf.printf "%d entries -> %d bytes\n" (List.length inputs)
        (Bytes.length packed);
      `Ok ()
  | exception Invalid_argument msg -> `Error (false, msg)

let archive_list archive =
  match Compress.Container.Archive.names (read_file archive) with
  | names ->
      List.iter print_endline names;
      `Ok ()
  | exception Compress.Container.Corrupt msg -> `Error (false, msg)

let archive_extract archive entry out =
  match Compress.Container.Archive.extract (read_file archive) entry with
  | data ->
      write_file out data;
      Printf.printf "%s: %d bytes\n" entry (Bytes.length data);
      `Ok ()
  | exception Not_found -> `Error (false, "no such entry: " ^ entry)
  | exception Compress.Container.Corrupt msg -> `Error (false, msg)

let archive_cmd =
  let create =
    let inputs =
      Arg.(non_empty & pos_right 0 file [] & info [] ~docv:"FILES")
    in
    Cmd.v (Cmd.info "create" ~doc:"Create an archive from files")
      Term.(ret (const archive_create $ jobs $ out_file 0 $ inputs))
  in
  let list =
    Cmd.v (Cmd.info "list" ~doc:"List archive entries")
      Term.(ret (const archive_list $ in_file 0))
  in
  let extract =
    let entry = Arg.(required & pos 1 (some string) None & info [] ~docv:"ENTRY") in
    Cmd.v (Cmd.info "extract" ~doc:"Extract one entry")
      Term.(ret (const archive_extract $ in_file 0 $ entry $ out_file 2))
  in
  Cmd.group (Cmd.info "archive" ~doc:"Multi-file archives") [ create; list; extract ]

(* ------------------------------------------------------------------ *)
(* Framed streaming and the daemon *)

let frame_codec_arg =
  let doc =
    "Frame codec: " ^ String.concat ", " Frame.codec_names ^ "."
  in
  let codec_conv =
    Arg.conv
      ( (fun s ->
          match Frame.codec_of_name s with
          | Some c -> Ok c
          | None ->
              Error
                (`Msg
                  ("unknown codec (use "
                  ^ String.concat "/" Frame.codec_names
                  ^ ")"))),
        fun ppf c -> Format.pp_print_string ppf (Frame.codec_name c) )
  in
  Arg.(
    value
    & opt codec_conv Frame.Deflate
    & info [ "a"; "algorithm" ] ~docv:"ALGO" ~doc)

let frame_size_arg =
  Arg.(
    value
    & opt int Frame.default_frame_size
    & info [ "frame-size" ] ~docv:"BYTES"
        ~doc:"Plaintext bytes per frame (the unit of parallel compression).")

let connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"HOST:PORT"
        ~doc:"Stream through a running $(b,zc serve) daemon instead of \
              compressing locally.")

let stream_pos_file n =
  Arg.(value & pos n string "-" & info [] ~docv:(if n = 0 then "INPUT" else "OUTPUT")
         ~doc:"Defaults to $(b,-) (stdin/stdout).")

let stream_run ~decompress () codec frame_size jobs connect input output =
  if frame_size < 1 || frame_size > Frame.max_frame_size then
    `Error (false, "frame size out of range")
  else
    let r =
      match connect with
      | None ->
          (try Serve.stream_local ~decompress ~codec ~frame_size ~jobs ~input ~output
           with
          | Failure msg -> Error msg
          | Sys_error msg -> Error msg
          | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
      | Some connect -> (
          try Serve.stream_remote ~decompress ~codec ~frame_size ~connect ~input ~output
          with
          | Failure msg -> Error msg
          | Sys_error msg -> Error msg
          | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
    in
    match r with Ok () -> `Ok () | Error msg -> `Error (false, msg)

let stream_cmd =
  let mk ~decompress name doc =
    Cmd.v (Cmd.info name ~doc)
      Term.(
        ret
          (const (stream_run ~decompress)
          $ Obs_cli.flags $ frame_codec_arg $ frame_size_arg $ jobs
          $ connect_arg $ stream_pos_file 0 $ stream_pos_file 1))
  in
  Cmd.group
    (Cmd.info "stream"
       ~doc:
         "Framed streaming compression: stdin/stdout or files, pipelined \
          across domains with $(b,--jobs), or proxied through a daemon \
          with $(b,--connect)")
    [
      mk ~decompress:false "compress" "Compress to the zc frame format";
      mk ~decompress:true "decompress" "Decompress a zc frame stream";
    ]

let serve_cmd =
  let port =
    Arg.(
      value & opt int 9441
      & info [ "port" ] ~docv:"PORT" ~doc:"Data port (loopback only).")
  in
  let metrics_port =
    Arg.(
      value & opt int 9442
      & info [ "metrics-port" ] ~docv:"PORT"
          ~doc:
            "HTTP port serving $(b,/metrics) (Prometheus text) and \
             $(b,/metrics.json) (raw snapshot).")
  in
  let max_conns =
    Arg.(
      value & opt int 64
      & info [ "max-conns" ] ~docv:"N"
          ~doc:
            "Concurrent data connection limit; above it the daemon \
             replies $(b,ZCER busy) and counts $(b,serve.rejected).")
  in
  let audit =
    Arg.(
      value
      & opt (some string) None
      & info [ "audit" ] ~docv:"PATH"
          ~doc:
            "Enable the leak audit plane and append one JSONL record per \
             emitted frame and per request to $(docv); also lights up \
             the $(b,zipchannel_leak_*) Prometheus series.")
  in
  let run () port metrics_port max_conns audit jobs =
    if max_conns < 1 then `Error (false, "--max-conns must be at least 1")
    else
      match Serve.serve ~max_conns ?audit ~port ~metrics_port ~jobs () with
      | () -> `Ok ()
      | exception Unix.Unix_error (e, fn, _) ->
          `Error (false, Printf.sprintf "%s: %s" fn (Unix.error_message e))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the streaming compression daemon: one framed request per \
          connection, per-connection metrics scraped live over HTTP")
    Term.(
      ret
        (const run $ Obs_cli.flags $ port $ metrics_port $ max_conns $ audit
       $ jobs))

(* ------------------------------------------------------------------ *)
(* The leak observatory's end-to-end check: the chunk-length oracle *)

let leak_oracle () codec frame_sizes connect seed secret_len body_len trials
    json assert_monotone =
  let module O = Attack.Chunk_oracle in
  if frame_sizes = [] then `Error (false, "need at least one --frame-size")
  else
    let mk_probe ~frame_size =
      match connect with
      | None -> O.local_probe ~codec ~frame_size ()
      | Some connect ->
          fun plain -> (
            match Serve.request_compress ~connect ~codec ~frame_size plain with
            | Ok stream -> O.clens_of_stream stream
            | Error msg -> failwith msg)
    in
    match
      O.sweep ~seed ~secret_len ~body_len ~trials
        ~frame_sizes:(List.sort_uniq compare frame_sizes)
        ~mk_probe ()
    with
    | exception Failure msg -> `Error (false, msg)
    | results ->
        List.iter
          (fun (r : O.result) ->
            if json then
              Printf.printf
                "{\"frame_size\": %d, \"per_byte_rate\": %.4f, \
                 \"chained_rate\": %.4f, \"capacity_bits\": %.4f, \
                 \"mi_bits\": %.4f, \"recovered_positions\": %d, \
                 \"positions\": %d, \"probes\": %d, \"secret\": \"%s\", \
                 \"recovered\": \"%s\"}\n"
                r.frame_size r.per_byte_rate r.chained_rate r.capacity_bits
                r.mi_bits r.per_byte_correct r.positions r.probes r.secret
                r.recovered
            else
              Printf.printf
                "frame %6d: recovered %d/%d positions (first trial: %s vs \
                 secret %s), capacity %.3f bits/probe, MI %.3f, %d probes\n"
                r.frame_size r.per_byte_correct r.positions r.recovered
                r.secret r.capacity_bits r.mi_bits r.probes)
          results;
        let mono = O.monotone results in
        if not json then
          Printf.printf
            "leakage %s monotone in frame size (smaller frames leak at \
             least as much, capacity estimate agrees)\n"
            (if mono then "is" else "is NOT");
        if assert_monotone && not mono then
          `Error (false, "recovery/capacity not monotone in frame size")
        else `Ok ()

let leak_cmd =
  let frame_sizes =
    Arg.(
      value
      & opt (list int) [ 64; 256; 1024 ]
      & info [ "frame-sizes" ] ~docv:"BYTES,..."
          ~doc:"Frame sizes to sweep (ascending).")
  in
  let seed =
    Arg.(
      value & opt int 7
      & info [ "seed" ] ~docv:"N" ~doc:"Victim PRNG seed (deterministic).")
  in
  let secret_len =
    Arg.(
      value & opt int 8
      & info [ "secret-len" ] ~docv:"N" ~doc:"Secret digits to recover.")
  in
  let body_len =
    Arg.(
      value & opt int 8192
      & info [ "body-len" ] ~docv:"BYTES" ~doc:"Victim body size.")
  in
  let trials =
    Arg.(
      value & opt int 3
      & info [ "trials" ] ~docv:"N"
          ~doc:
            "Independent victims per frame size; rates aggregate over \
             them.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"One JSON object per frame size on stdout.")
  in
  let assert_monotone =
    Arg.(
      value & flag
      & info [ "assert-monotone" ]
          ~doc:
            "Exit non-zero unless recovery rate and capacity estimate are \
             monotone non-increasing in frame size.")
  in
  let oracle =
    Cmd.v
      (Cmd.info "oracle"
         ~doc:
           "Run the per-chunk length oracle: recover a secret \
            byte-at-a-time from per-frame compressed lengths, in-process \
            or against a $(b,zc serve) daemon with $(b,--connect), and \
            compare measured recovery with the estimator's predicted \
            channel capacity across frame sizes")
      Term.(
        ret
          (const leak_oracle $ Obs_cli.flags $ frame_codec_arg $ frame_sizes
         $ connect_arg $ seed $ secret_len $ body_len $ trials $ json
         $ assert_monotone))
  in
  Cmd.group
    (Cmd.info "leak" ~doc:"Leak observatory: length side-channel oracles")
    [ oracle ]

(* ------------------------------------------------------------------ *)
(* Fuzzing *)

let fuzz_run () codec seed runs jobs budget_ms fixtures no_minimize =
  let codecs =
    if codec = "all" then Ok Fuzz.Codecs.all
    else
      match Fuzz.Codecs.find codec with
      | Some c -> Ok [ c ]
      | None ->
          Error
            ("unknown codec (use all, "
            ^ String.concat ", " Fuzz.Codecs.names
            ^ ")")
  in
  match codecs with
  | Error msg -> `Error (false, msg)
  | Ok codecs ->
      let report =
        Fuzz.Runner.run ~codecs ~seed ~runs ~jobs ~budget_ms
          ~minimize:(not no_minimize) ()
      in
      print_string (Fuzz.Report.render report);
      let failures = Fuzz.Report.failures report in
      if failures = [] then `Ok ()
      else begin
        (match fixtures with
        | None -> ()
        | Some dir ->
            List.iter
              (fun p -> Printf.printf "wrote %s\n" p)
              (Fuzz.Runner.write_fixtures ~dir report));
        `Error
          ( false,
            Printf.sprintf "%d failing case(s)" (List.length failures) )
      end

let fuzz_cmd =
  let codec =
    let doc =
      "Codec to fuzz: $(b,all) or one of "
      ^ String.concat ", " Fuzz.Codecs.names ^ "."
    in
    Arg.(value & opt string "all" & info [ "codec" ] ~docv:"CODEC" ~doc)
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:"PRNG seed; the whole campaign is deterministic in it.")
  in
  let runs =
    Arg.(
      value & opt int 1000
      & info [ "runs" ] ~docv:"N"
          ~doc:"Total case count, split evenly across the selected codecs.")
  in
  let fuzz_jobs =
    Obs_cli.jobs_arg
      ~doc:"Worker domains for the campaign (0 = all available cores)."
  in
  let budget_ms =
    Arg.(
      value & opt float 1000.
      & info [ "budget-ms" ] ~docv:"MS"
          ~doc:"Per-case work budget; a slower case is reported as a failure.")
  in
  let fixtures =
    Arg.(
      value
      & opt (some string) None
      & info [ "fixtures" ] ~docv:"DIR"
          ~doc:"Write minimized reproducers for failing cases under $(docv).")
  in
  let no_minimize =
    Arg.(
      value & flag
      & info [ "no-minimize" ] ~doc:"Keep failing inputs as found, unshrunk.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Fuzz the decoders with structure-aware mutations of valid streams; \
          exits non-zero if any case crashes, round-trip-fails, bombs or \
          blows its budget")
    Term.(
      ret
        (const fuzz_run $ Obs_cli.flags $ codec $ seed $ runs $ fuzz_jobs
       $ budget_ms $ fixtures $ no_minimize))

(* ------------------------------------------------------------------ *)
(* Telemetry: offline converters and the span profiler *)

let read_text path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_out output s =
  match output with
  | None -> print_string s
  | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let obs_export format output input =
  let module E = Obs_export in
  match E.Json.parse_many (read_text input) with
  | [] -> `Error (false, input ^ ": empty input")
  | first :: _ as values -> (
      (* A telemetry file is either a JSONL span stream or a single
         metrics snapshot; tell them apart by shape, so both formats
         work without the caller saying which one they have. *)
      let kind =
        if E.Span_stream.is_span_stream first then `Trace
        else if E.Snapshot_io.is_snapshot first then `Snapshot
        else if E.Audit.is_audit_record first then `Audit
        else `Unknown
      in
      match (format, kind) with
      | _, `Unknown ->
          `Error
            ( false,
              input
              ^ ": neither a span stream, a metrics snapshot, nor an audit \
                 record stream" )
      | `Otlp, `Audit ->
          let records = List.map E.Audit.of_json values in
          write_out output
            (E.Json.to_string (E.Audit.trace_request records) ^ "\n");
          `Ok ()
      | `Prom, `Audit ->
          `Error
            ( false,
              input
              ^ ": is an audit record stream; Prometheus exposition needs a \
                 metrics snapshot (scrape the live daemon instead)" )
      | `Otlp, `Trace ->
          let events = List.map E.Span_stream.event_of_json values in
          write_out output (E.Json.to_string (E.Otlp.trace_request events) ^ "\n");
          `Ok ()
      | `Otlp, `Snapshot ->
          let snap = E.Snapshot_io.of_json first in
          write_out output
            (E.Json.to_string (E.Otlp.metrics_request snap) ^ "\n");
          `Ok ()
      | `Prom, `Snapshot ->
          write_out output (E.Prom.exposition (E.Snapshot_io.of_json first));
          `Ok ()
      | `Prom, `Trace ->
          `Error
            ( false,
              input
              ^ ": is a span stream; Prometheus exposition needs a metrics \
                 snapshot" )
      | exception (E.Json.Parse_error msg | Failure msg) -> `Error (false, msg))

let obs_profile folded inputs =
  let module E = Obs_export in
  match
    List.concat_map
      (fun input -> List.map E.Span_stream.event_of_json
          (E.Json.parse_many (read_text input)))
      inputs
  with
  | events ->
      let spans = E.Profile.spans_of_events events in
      (match folded with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              E.Profile.pp_folded
                (Format.formatter_of_out_channel oc)
                (E.Profile.folded_stacks spans)));
      E.Profile.pp_table Format.std_formatter (E.Profile.aggregate spans);
      `Ok ()
  | exception (E.Json.Parse_error msg | Failure msg) -> `Error (false, msg)

(* [zc obs top]: the runtime observatory view — hottest sampled spans,
   runtime.* GC gauges, leak capacity and serve rates.  Polls a daemon's
   /metrics.json when --connect is given; otherwise samples an
   in-process synthetic compression workload. *)
let obs_top connect once json_out interval duration =
  let module E = Obs_export in
  let emit v =
    if json_out then print_endline (E.Top.to_json v)
    else print_string (E.Top.render v);
    flush stdout
  in
  match connect with
  | None ->
      (* In-process: run framed compression under the sampler for the
         requested window, then show what it saw. *)
      let window = if duration > 0. then duration else 1.0 in
      Obs.set_enabled true;
      Obs_prof.reset ();
      Obs_prof.start ();
      let prng = Util.Prng.create ~seed:9 () in
      let data =
        Bytes.of_string (Util.Lipsum.repetitive_file prng ~level:4 ~size:262_144)
      in
      let t0 = Obs.now_ns () in
      while float_of_int (Obs.now_ns () - t0) /. 1e9 < window do
        ignore (Frame.compress ~codec:Frame.Deflate data)
      done;
      Obs_prof.stop ();
      let snap = Obs.Metrics.snapshot () in
      Obs.set_enabled false;
      emit (E.Top.of_snapshot snap);
      `Ok ()
  | Some addr -> (
      let fetch () =
        match Serve.http_get ~connect:addr ~path:"/metrics.json" with
        | Error _ as e -> e
        | Ok body -> (
            match E.Snapshot_io.of_string body with
            | snap -> Ok snap
            | exception (E.Json.Parse_error msg | Failure msg) ->
                Error (addr ^ ": bad /metrics.json: " ^ msg))
      in
      if once then
        match fetch () with
        | Error e -> `Error (false, e)
        | Ok snap ->
            emit (E.Top.of_snapshot snap);
            `Ok ()
      else begin
        (* Live view: redraw every interval; ANSI screen clearing only
           on an interactive stdout that hasn't opted out. *)
        let ansi =
          (match Sys.getenv_opt "NO_COLOR" with
          | Some "" | None -> true
          | Some _ -> false)
          && Unix.isatty Unix.stdout
        in
        let t0 = Obs.now_ns () in
        let expired () =
          duration > 0. && float_of_int (Obs.now_ns () - t0) /. 1e9 >= duration
        in
        let rec loop prev =
          match fetch () with
          | Error e -> `Error (false, e)
          | Ok snap ->
              if ansi then print_string "\x1b[2J\x1b[H";
              emit (E.Top.of_snapshot ?prev ~dt_s:interval snap);
              if expired () then `Ok ()
              else begin
                Unix.sleepf interval;
                loop (Some snap)
              end
        in
        loop None
      end)

let obs_cmd =
  let out_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"PATH" ~doc:"Write to $(docv) instead of stdout.")
  in
  let export =
    let format =
      Arg.(
        value
        & vflag `Otlp
            [
              ( `Otlp,
                info [ "otlp" ]
                  ~doc:
                    "OTLP/JSON: a span stream becomes an \
                     ExportTraceServiceRequest, a metrics snapshot an \
                     ExportMetricsServiceRequest (default)." );
              ( `Prom,
                info [ "prom" ]
                  ~doc:"Prometheus text exposition (metrics snapshots only)." );
            ])
    in
    Cmd.v
      (Cmd.info "export"
         ~doc:
           "Convert a --trace JSONL span stream, a --metrics JSON snapshot, \
            or a $(b,zc serve --audit) JSONL file to OTLP/JSON or \
            Prometheus text")
      Term.(ret (const obs_export $ format $ out_opt $ in_file 0))
  in
  let profile =
    let folded =
      Arg.(
        value
        & opt (some string) None
        & info [ "folded" ] ~docv:"PATH"
            ~doc:
              "Also write flamegraph folded stacks (self-time-weighted \
               $(b,domain;outer;inner count) lines) to $(docv).")
    in
    let inputs =
      Arg.(non_empty & pos_all file [] & info [] ~docv:"TRACE")
    in
    Cmd.v
      (Cmd.info "profile"
         ~doc:
           "Aggregate --trace JSONL span streams: per-span call counts, \
            total/self wall time, p50/p95/max, sorted by self time")
      Term.(ret (const obs_profile $ folded $ inputs))
  in
  let top =
    let connect =
      Arg.(
        value
        & opt (some string) None
        & info [ "connect" ] ~docv:"HOST:PORT"
            ~doc:
              "Poll a running $(b,zc serve) daemon's metrics listener \
               instead of sampling an in-process workload.")
    in
    let once =
      Arg.(
        value & flag
        & info [ "once" ]
            ~doc:
              "Print one snapshot and exit (machine mode; no screen \
               rewriting).")
    in
    let json =
      Arg.(
        value & flag
        & info [ "json" ] ~doc:"Emit the view as one JSON object per frame.")
    in
    let interval =
      Arg.(
        value & opt float 2.0
        & info [ "interval" ] ~docv:"SECONDS"
            ~doc:"Refresh period of the live view.")
    in
    let duration =
      Arg.(
        value & opt float 0.
        & info [ "duration" ] ~docv:"SECONDS"
            ~doc:
              "Stop after $(docv) (0: live view runs until interrupted; \
               the in-process workload samples for 1s).")
    in
    Cmd.v
      (Cmd.info "top"
         ~doc:
           "Live runtime observatory: hottest sampled spans, runtime.* GC \
            and allocation gauges, leak.* channel capacity and serve.* \
            rates, from a daemon's /metrics.json or an in-process sampled \
            run")
      Term.(
        ret (const obs_top $ connect $ once $ json $ interval $ duration))
  in
  Cmd.group
    (Cmd.info "obs" ~doc:"Telemetry export, profiling, and the live top view")
    [ export; profile; top ]

let cmd =
  Cmd.group
    (Cmd.info "zc" ~doc:"compress and decompress files with the ZipChannel codecs")
    [
      compress_cmd; decompress_cmd; archive_cmd; stream_cmd; serve_cmd;
      leak_cmd; fuzz_cmd; obs_cmd;
    ]

let () = exit (Cmd.eval cmd)
