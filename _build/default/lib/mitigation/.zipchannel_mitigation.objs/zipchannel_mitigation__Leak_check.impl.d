lib/mitigation/leak_check.ml: Array List Zipchannel_compress
