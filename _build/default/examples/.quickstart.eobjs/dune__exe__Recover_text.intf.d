examples/recover_text.mli:
