type failure = {
  codec : string;
  case : int;
  verdict : Oracle.verdict;
  input : bytes;
  original_len : int;
}

type codec_stats = {
  name : string;
  runs : int;
  accepted : int;
  rejected : int;
  failures : failure list;
}

type t = { seed : int; total_runs : int; stats : codec_stats list }

let failures t = List.concat_map (fun s -> s.failures) t.stats

let fnv1a b =
  let h = ref 0xcbf29ce484222325L in
  for i = 0 to Bytes.length b - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.get b i)));
    h := Int64.mul !h 0x100000001b3L
  done;
  Printf.sprintf "%016Lx" !h

let fixture_name f =
  Printf.sprintf "%s-%s-%s.bin" f.codec (Oracle.verdict_label f.verdict)
    (fnv1a f.input)

let describe_verdict = function
  | Oracle.Accepted -> "accepted"
  | Oracle.Rejected e -> Printf.sprintf "rejected (%s)" e.Zipchannel_compress.Codec_error.reason
  | Oracle.Crash { exn } -> Printf.sprintf "CRASH: %s" exn
  | Oracle.Mismatch { detail } -> Printf.sprintf "MISMATCH: %s" detail
  | Oracle.Bomb { output_len } -> Printf.sprintf "BOMB: %d-byte output" output_len
  | Oracle.Overbudget { elapsed_ms } ->
      Printf.sprintf "OVERBUDGET: %.1f ms" elapsed_ms

let render t =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "fuzz: seed %d, %d cases\n" t.seed t.total_runs;
  List.iter
    (fun s ->
      Printf.bprintf buf "  %-8s %6d runs  %6d accepted  %6d rejected  %d failures\n"
        s.name s.runs s.accepted s.rejected (List.length s.failures))
    t.stats;
  let fs = failures t in
  if fs = [] then Buffer.add_string buf "no failures\n"
  else begin
    Printf.bprintf buf "%d failing case(s):\n" (List.length fs);
    List.iter
      (fun f ->
        Printf.bprintf buf "  %s case %d (%d -> %d bytes): %s\n    fixture %s\n"
          f.codec f.case f.original_len (Bytes.length f.input)
          (describe_verdict f.verdict) (fixture_name f))
      fs
  end;
  Buffer.contents buf
