lib/taintchannel/engine.ml: Bytes Char Format Gadget Hashtbl List Tagset Tval Zipchannel_taint
