lib/compress/mtf.ml: Array Bytes Char
