(** A small work pool over OCaml 5 [Domain]s.

    Callers pass an explicit [jobs] count; [jobs <= 1] runs entirely in
    the calling domain with no spawning, so sequential results (and any
    observable evaluation order) are exactly those of a plain [map].
    With [jobs > 1] the items are claimed from a shared atomic counter by
    [min jobs (length items)] domains (the caller included), so results
    arrive in input order regardless of scheduling.

    The worker function must be safe to run concurrently with itself:
    no unsynchronized writes to shared mutable state.  The compression
    kernels used through this pool only read their input block and write
    their own output buffers. *)

val available_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — a sensible upper bound for
    [jobs]. *)

val normalize_jobs : int -> (int, string) result
(** Validate a user-supplied job count: negative values are an [Error]
    with a usable message, [0] means "auto" and resolves to
    {!available_jobs}, anything else passes through.  Both CLIs route
    their [--jobs] flags here so the policy stays in one place. *)

val map_array : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map.  If any application raises, one of the
    raised exceptions is re-raised in the caller after all domains have
    joined. *)

val map_list : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_array] over a list, preserving order. *)
