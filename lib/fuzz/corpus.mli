(** Valid-corpus generation.

    Every fuzz case starts from bytes the codec's own compressor
    produced, so mutations explore the neighbourhood of well-formed
    streams instead of the (almost always trivially rejected) space of
    uniform noise.  Plaintext shapes cover the regimes the kernels
    branch on: empty input, single bytes, long runs, uniform noise,
    lipsum text and the paper's repetitive-file corpus. *)

val plain : Zipchannel_util.Prng.t -> max_len:int -> bytes
(** One plaintext, shape and length drawn from the generator. *)

val pool : Codecs.t -> seed:int -> size:int -> bytes array
(** [pool codec ~seed ~size] is [size] valid compressed streams for
    [codec], deterministic in [seed].  Index 0 is always the compression
    of the empty plaintext. *)
