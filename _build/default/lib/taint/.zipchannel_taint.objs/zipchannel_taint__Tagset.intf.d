lib/taint/tagset.mli: Format
