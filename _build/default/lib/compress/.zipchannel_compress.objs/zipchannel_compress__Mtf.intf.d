lib/compress/mtf.mli:
