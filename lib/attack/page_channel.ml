open Zipchannel_util
module Cache = Zipchannel_cache.Cache
module Prime_probe = Zipchannel_cache.Prime_probe
module Page_table = Zipchannel_sgx.Page_table

module Int_set = Set.Make (Int)

type t = {
  cfg : Attack_config.t;
  cache : Cache.t;
  page_table : Page_table.t;
  pp : Prime_probe.t;
  noise : Noise.t;
  chosen_frames : (int, int) Hashtbl.t; (* vpage -> frame *)
  (* A frame's monitoring plan: the global set of each of its 64 lines
     and the matching eviction-buffer lines, resolved once.  prime/probe
     of a page replay the plan instead of redoing 64 slice hashes and
     memo lookups per call. *)
  frame_plans : (int, int array * int array array) Hashtbl.t;
  noisy_sets : (int, Int_set.t) Hashtbl.t; (* vpage -> suspect lines *)
  mutable next_frame : int;
  mutable remaps : int;
}

let setup_cat ~config cache =
  if config.Attack_config.use_cat then begin
    let ways = config.Attack_config.cache_config.Cache.ways in
    let all = (1 lsl ways) - 1 in
    Cache.set_cat_mask cache ~cos:0 ~mask:1;
    if ways > 1 then Cache.set_cat_mask cache ~cos:1 ~mask:(all lxor 1)
  end

let create ~config ~cache ~page_table ~prng =
  {
    cfg = config;
    cache;
    page_table;
    pp =
      Prime_probe.create ~timing:config.Attack_config.timing ~cos:0 ~cache
        ~prng:(Prng.split prng) ();
    noise =
      Noise.create ~config:config.Attack_config.noise_config ~cache
        ~prng:(Prng.split prng) ();
    chosen_frames = Hashtbl.create 128;
    frame_plans = Hashtbl.create 128;
    noisy_sets = Hashtbl.create 16;
    next_frame = 0x800000;
    remaps = 0;
  }

let noise t = t.noise

let frame_remaps t = t.remaps

let sets_of_frame t frame =
  Array.init 64 (fun k ->
      Cache.set_index t.cache ((frame lsl Page_table.page_bits) lor (k lsl 6)))

let plan_of_frame t frame =
  match Hashtbl.find_opt t.frame_plans frame with
  | Some plan -> plan
  | None ->
      let sets = sets_of_frame t frame in
      let lines =
        Array.map (fun set -> Prime_probe.eviction_lines t.pp ~set) sets
      in
      let plan = (sets, lines) in
      Hashtbl.add t.frame_plans frame plan;
      plan

let prime_frame t lines =
  Array.iter (fun l -> Prime_probe.prime_lines t.pp l) lines

let probe_frame t lines =
  Array.map (fun l -> Prime_probe.probe_lines t.pp l) lines

(* Frame selection (Section V-C2): remap the page until dry runs of the
   state-transition machinery leave all 64 monitored sets quiet; on
   timeout, keep the frame and log its noisy lines as future false
   positives. *)
let select_frame t ~vpage =
  match Hashtbl.find_opt t.chosen_frames vpage with
  | Some frame -> frame
  | None ->
      let fresh () =
        let f = t.next_frame in
        t.next_frame <- t.next_frame + 1;
        f
      in
      if not t.cfg.Attack_config.use_frame_selection then begin
        let frame = Page_table.frame_of t.page_table ~vpage in
        Hashtbl.add t.chosen_frames vpage frame;
        frame
      end
      else begin
        let rec attempt k =
          let frame = fresh () in
          t.remaps <- t.remaps + 1;
          Page_table.map t.page_table ~vpage ~frame;
          let _, lines = plan_of_frame t frame in
          (* The OS working set is touched probabilistically, so several
             quiet dry runs are needed before trusting a frame. *)
          let noisy = ref Int_set.empty in
          prime_frame t lines;
          for _ = 1 to 4 do
            Noise.on_transition t.noise;
            if t.cfg.Attack_config.background_noise then
              Noise.background t.noise ~cos:1;
            let evictions = probe_frame t lines in
            Array.iteri
              (fun line e -> if e > 0 then noisy := Int_set.add line !noisy)
              evictions
          done;
          if Int_set.is_empty !noisy then begin
            Hashtbl.add t.chosen_frames vpage frame;
            frame
          end
          else if k >= t.cfg.Attack_config.frame_candidates then begin
            (* Timeout: accept and remember the polluted lines. *)
            Hashtbl.add t.chosen_frames vpage frame;
            Hashtbl.replace t.noisy_sets vpage !noisy;
            frame
          end
          else attempt (k + 1)
        in
        attempt 1
      end

let prime_page t ~vpage =
  let _, lines = plan_of_frame t (select_frame t ~vpage) in
  prime_frame t lines

let probe_page t ~vpage =
  let frame = select_frame t ~vpage in
  let _, lines = plan_of_frame t frame in
  let evictions = probe_frame t lines in
  let suspects =
    match Hashtbl.find_opt t.noisy_sets vpage with
    | Some s -> s
    | None -> Int_set.empty
  in
  let clean = ref [] and suspect = ref [] in
  Array.iteri
    (fun line e ->
      if e > 0 then
        if Int_set.mem line suspects then suspect := line :: !suspect
        else clean := line :: !clean)
    evictions;
  (* Keep every plausible line — the caller's recovery disambiguates; more
     than three candidates means the window was hopelessly polluted. *)
  match (!clean, !suspect) with
  | [], s when List.length s <= 3 -> s
  | c, _ when List.length c <= 3 -> c
  | _ -> []

module Obs = Zipchannel_obs.Obs

let m_frame_remaps = Obs.Metrics.counter "sgx.frame_remaps"

let observe_metrics t =
  if Obs.enabled () then begin
    Obs.Metrics.add m_frame_remaps t.remaps;
    Prime_probe.observe_metrics t.pp
  end
