exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* Little-endian integer helpers over Buffer / Bytes. *)
let add_u16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff))

let add_u32 buf v =
  add_u16 buf (v land 0xffff);
  add_u16 buf ((v lsr 16) land 0xffff)

let get_u16 data off =
  if off + 2 > Bytes.length data then corrupt "truncated at u16 offset %d" off;
  Char.code (Bytes.get data off) lor (Char.code (Bytes.get data (off + 1)) lsl 8)

let get_u32 data off =
  get_u16 data off lor (get_u16 data (off + 2) lsl 16)

(* Validate a slice without materialising it; compressed bodies are
   decoded in place via [Deflate.decompress_sub_result]. *)
let check_sub data off len =
  if off < 0 || len < 0 || off + len > Bytes.length data then
    corrupt "truncated at slice %d+%d" off len

let get_sub data off len =
  check_sub data off len;
  Bytes.sub data off len

module Stream = struct
  (* magic "ZC" | method 0x08 | u32 compressed length | body
     | u32 crc32(plain) | u32 plain length *)
  let magic0 = 0x5a (* 'Z' *)

  let magic1 = 0x43 (* 'C' *)

  let method_deflate = 0x08

  let pack data =
    let body = Deflate.compress data in
    let buf = Buffer.create (Bytes.length body + 15) in
    Buffer.add_char buf (Char.chr magic0);
    Buffer.add_char buf (Char.chr magic1);
    Buffer.add_char buf (Char.chr method_deflate);
    add_u32 buf (Bytes.length body);
    Buffer.add_bytes buf body;
    add_u32 buf (Checksum.Crc32.digest data);
    add_u32 buf (Bytes.length data);
    Buffer.to_bytes buf

  let unpack data =
    if Bytes.length data < 15 then corrupt "stream too short";
    if Char.code (Bytes.get data 0) <> magic0
       || Char.code (Bytes.get data 1) <> magic1
    then corrupt "bad magic";
    if Char.code (Bytes.get data 2) <> method_deflate then
      corrupt "unknown method %d" (Char.code (Bytes.get data 2));
    let body_len = get_u32 data 3 in
    check_sub data 7 body_len;
    let crc = get_u32 data (7 + body_len) in
    let plain_len = get_u32 data (11 + body_len) in
    let plain =
      match Deflate.decompress_sub_result data ~off:7 ~len:body_len with
      | Ok plain -> plain
      | Error e -> corrupt "bad body: %s" e.Codec_error.reason
    in
    if Bytes.length plain <> plain_len then corrupt "length mismatch";
    if Checksum.Crc32.digest plain <> crc then corrupt "crc mismatch";
    plain

  let unpack_result data =
    match unpack data with
    | plain -> Ok plain
    | exception Corrupt reason -> Codec_error.error ~codec:"stream" reason
end

module Archive = struct
  type entry = { name : string; data : bytes }

  (* Layout: a sequence of compressed bodies, then a central directory of
     records (name length | name | body offset | body length | crc32 |
     plain length), then u32 directory offset | u32 entry count |
     magic "ZCAR". *)
  let magic = "ZCAR"

  let pack ?(jobs = 1) entries =
    let names = List.map (fun e -> e.name) entries in
    if List.length (List.sort_uniq compare names) <> List.length names then
      invalid_arg "Archive.pack: duplicate entry name";
    List.iter
      (fun n ->
        if String.length n > 0xffff then invalid_arg "Archive.pack: name too long")
      names;
    let buf = Buffer.create 1024 in
    (* Member bodies are independent deflate streams; compress them on
       [jobs] domains, then lay them out in order.  The bytes are the same
       for every [jobs] value. *)
    let bodies =
      Zipchannel_parallel.Pool.map_list ~jobs
        (fun e -> (e, Deflate.compress e.data))
        entries
    in
    let records =
      List.map
        (fun (e, body) ->
          let offset = Buffer.length buf in
          Buffer.add_bytes buf body;
          (e, offset, Bytes.length body))
        bodies
    in
    let dir_offset = Buffer.length buf in
    List.iter
      (fun (e, offset, body_len) ->
        add_u16 buf (String.length e.name);
        Buffer.add_string buf e.name;
        add_u32 buf offset;
        add_u32 buf body_len;
        add_u32 buf (Checksum.Crc32.digest e.data);
        add_u32 buf (Bytes.length e.data))
      records;
    add_u32 buf dir_offset;
    add_u32 buf (List.length records);
    Buffer.add_string buf magic;
    Buffer.to_bytes buf

  type record = {
    r_name : string;
    r_offset : int;
    r_body_len : int;
    r_crc : int;
    r_plain_len : int;
  }

  (* The smallest possible directory record: empty name + five fixed
     fields.  Bounds the record count an archive of [n] bytes can hold,
     so a forged count field is rejected before any record is parsed. *)
  let min_record_size = 2 + 16

  let directory data =
    let n = Bytes.length data in
    if n < 12 then corrupt "archive too short";
    if Bytes.sub_string data (n - 4) 4 <> magic then corrupt "bad archive magic";
    let count = get_u32 data (n - 8) in
    let dir_offset = get_u32 data (n - 12) in
    if count > (n - 12) / min_record_size then
      corrupt "implausible entry count %d" count;
    let pos = ref dir_offset in
    (* Explicit in-order loop: each record parse advances [pos], and
       [List.init] does not guarantee the order it applies the closure
       in. *)
    let records = ref [] in
    for _ = 1 to count do
      let name_len = get_u16 data !pos in
      let name = Bytes.to_string (get_sub data (!pos + 2) name_len) in
      let base = !pos + 2 + name_len in
      let r =
        {
          r_name = name;
          r_offset = get_u32 data base;
          r_body_len = get_u32 data (base + 4);
          r_crc = get_u32 data (base + 8);
          r_plain_len = get_u32 data (base + 12);
        }
      in
      pos := base + 16;
      records := r :: !records
    done;
    List.rev !records

  let extract_record data r =
    check_sub data r.r_offset r.r_body_len;
    let plain =
      match
        Deflate.decompress_sub_result data ~off:r.r_offset ~len:r.r_body_len
      with
      | Ok plain -> plain
      | Error e -> corrupt "entry %s: bad body: %s" r.r_name e.Codec_error.reason
    in
    if Bytes.length plain <> r.r_plain_len then
      corrupt "entry %s: length mismatch" r.r_name;
    if Checksum.Crc32.digest plain <> r.r_crc then
      corrupt "entry %s: crc mismatch" r.r_name;
    plain

  let unpack data =
    List.map
      (fun r -> { name = r.r_name; data = extract_record data r })
      (directory data)

  let unpack_result data =
    match unpack data with
    | entries -> Ok entries
    | exception Corrupt reason -> Codec_error.error ~codec:"archive" reason

  let names data = List.map (fun r -> r.r_name) (directory data)

  let extract data name =
    match List.find_opt (fun r -> r.r_name = name) (directory data) with
    | Some r -> extract_record data r
    | None -> raise Not_found
end
