(** Model of glibc memcpy's size-dependent control flow (paper
    Section III-B).

    memcpy picks its copy strategy from the byte count: full AVX-register
    chunks, then a byte tail for the remainder.  The executed path — and
    therefore the code cache lines touched and the run time — reveals the
    copy size modulo the vector width.  TaintChannel exposes this by
    comparing control traces across inputs. *)

val avx_width : int
(** 32 bytes per vector chunk. *)

val location : string

val trace : size:int -> string list
(** Control-flow events of one memcpy of [size] bytes.
    @raise Invalid_argument on negative size. *)

val run : Engine.t -> size:int -> unit
(** Record the same events into an existing engine. *)
