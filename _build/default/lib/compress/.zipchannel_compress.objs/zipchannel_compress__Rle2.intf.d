lib/compress/rle2.mli:
