(** The Bzip2 compression pipeline: RLE1 → block split → BWT (budgeted
    block sort) → MTF → RLE2 → canonical Huffman.

    Every stage is the OCaml counterpart of the bzip2-1.0.6 stage of the
    same name; the container format is this library's own (bzip2's bit-
    exact file format is out of scope, the algorithms are not).  The paper
    uses 10,000-byte blocks when describing the sorting control flow
    (Section VI); that is the default here. *)

type block_info = {
  index : int;  (** block number, 0-based *)
  length : int;  (** bytes of post-RLE1 data in the block *)
  path : Block_sort.path;  (** which sort functions ran, and for how long *)
}

val default_block_size : int
(** 10,000 bytes, per the paper's description. *)

val compress :
  ?block_size:int -> ?budget_factor:int -> ?jobs:int -> bytes -> bytes
(** [jobs] (default 1) compresses blocks on that many domains; the output
    bytes — and the per-block sort paths — are identical for every value,
    blocks being independent. *)

val compress_with_info :
  ?block_size:int ->
  ?budget_factor:int ->
  ?jobs:int ->
  bytes ->
  bytes * block_info list
(** Also reports the per-block sorting control flow — the observable the
    fingerprinting attack of Section VI classifies. *)

val decompress : bytes -> bytes
(** @raise Failure on malformed input. *)
