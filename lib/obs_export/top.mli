(** The [zc obs top] view: hottest sampled spans, runtime gauges, leak
    capacity and serve rates, derived from one (or a pair of) metric
    snapshots.

    Works identically on an in-process {!Zipchannel_obs.Obs.Metrics}
    snapshot and on one parsed from a daemon's [/metrics.json] via
    {!Snapshot_io}, so the live terminal view and the [--once] machine
    mode share all logic. *)

type row = {
  name : string;  (** original (dotted) metric name *)
  value : float;  (** current value; for histograms, the [.count]/[.sum]
                      flattened pairs appear as separate rows *)
  rate : float option;
      (** per-second growth since the previous snapshot — only for
          counters, only when a previous snapshot was supplied *)
}

type view = {
  samples : int;  (** profiler samples in the window *)
  spans : (string * int * float) list;
      (** hottest spans: (name, self samples, share of all samples),
          share descending *)
  runtime : row list;  (** [runtime.*] *)
  leak : row list;  (** [leak.*] *)
  serve : row list;  (** [serve.*] *)
}

val of_snapshot :
  ?prev:Zipchannel_obs.Obs.Metrics.snapshot ->
  ?dt_s:float ->
  Zipchannel_obs.Obs.Metrics.snapshot ->
  view
(** Build the view.  With [prev] (and [dt_s > 0.]), span shares are
    computed over the window's sample {e delta} and counter rows carry
    a rate; without, over process lifetime totals. *)

val render : view -> string
(** Plain greppable text, one fact per line:
    [samples N] / [span <name> <share>% (<self>)] /
    [<metric> <value>] (with [ (<rate>/s)] appended when known). *)

val to_json : view -> string
(** One JSON object mirroring {!view}. *)
