(** Reference bit-level serialization ([Buffer.t]/[bytes] backed).

    The pre-bigstring implementation of {!Bitio}, kept as the executable
    specification the differential tests pin the optimized module
    against.  Production codecs must use {!Bitio}.

    Two packing orders are provided because the compressors disagree:
    Huffman/Bzip2 streams are most-significant-bit first, while the LZW
    code stream (like compress(1)) packs least-significant-bit first.  A
    given stream must use one order consistently. *)

module Writer : sig
  type t

  val create : unit -> t

  val add_bit : t -> bool -> unit
  (** MSB-first single bit. *)

  val add_bits_msb : t -> value:int -> count:int -> unit
  (** Append [count] bits of [value], most significant of the [count] bits
      first.  @raise Invalid_argument if [count] not in 0..30 or value has
      higher bits set. *)

  val add_bits_lsb : t -> value:int -> count:int -> unit
  (** Append [count] bits, least significant first. *)

  val align_byte : t -> unit
  (** Pad with zero bits to the next byte boundary. *)

  val bit_length : t -> int

  val append : t -> t -> unit
  (** [append t src] appends every bit written to [src] onto [t], at [t]'s
      current (possibly unaligned) bit position.  [src] is unchanged.
      This is how independently produced block bitstreams are spliced
      back together after parallel compression. *)

  val to_bytes : t -> bytes
  (** Byte-aligned contents; the final partial byte is zero-padded. *)
end

(** LSB-first bit stream, the byte-level convention of RFC 1951: bit [k]
    of the stream lives in byte [k/8] at bit position [k mod 8] counted
    from the least significant bit.  Huffman codes go through
    [add_huffman]/[read_huffman_bit], which reverse the code's bits as the
    RFC requires. *)
module Lsb_writer : sig
  type t

  val create : unit -> t

  val add_bits : t -> value:int -> count:int -> unit
  (** Append [count] bits of [value], least significant first — the order
      RFC 1951 uses for everything except Huffman codes.
      @raise Invalid_argument if [count] not in 0..24 or the value is too
      wide. *)

  val add_huffman : t -> code:int -> length:int -> unit
  (** Append a Huffman code: most significant of its [length] bits
      first. *)

  val align_byte : t -> unit

  val to_bytes : t -> bytes
end

module Lsb_reader : sig
  type t

  exception Out_of_bits

  val create : ?start:int -> bytes -> t
  val read_bits : t -> int -> int
  (** LSB-first, mirroring {!Lsb_writer.add_bits}. *)

  val read_bit : t -> bool
  (** One stream bit — successive calls deliver a Huffman code most
      significant bit first. *)

  val align_byte : t -> unit
  val byte_position : t -> int
  val bits_remaining : t -> int
end

module Reader : sig
  type t

  exception Out_of_bits
  (** Raised when reading past the end of the stream. *)

  val create : ?start:int -> bytes -> t
  (** [create ~start b] reads from byte offset [start] (default 0). *)

  val read_bit : t -> bool
  val read_bits_msb : t -> int -> int
  val read_bits_lsb : t -> int -> int
  val align_byte : t -> unit
  val bits_remaining : t -> int
  val byte_position : t -> int
  (** Index of the byte holding the next unread bit. *)
end
