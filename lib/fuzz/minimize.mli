(** Crash minimization: shrink a failing input while it keeps failing.

    Delta-debugging flavoured but deterministic and allocation-light:
    repeatedly try removing exponentially shrinking chunks, then
    simplify surviving bytes toward zero.  [interesting] is typically
    "the oracle still reports the same verdict label". *)

val minimize :
  ?max_steps:int -> interesting:(bytes -> bool) -> bytes -> bytes
(** [minimize ~interesting b] returns a smallest-found input for which
    [interesting] holds.  [interesting b] must be true on entry;
    the result always satisfies [interesting].  [max_steps] bounds the
    number of oracle invocations (default 2000). *)
