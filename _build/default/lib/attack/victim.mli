(** The victim of the SGX attack: Bzip2's frequency-table loop (paper
    Listing 3) as an enclave memory-access program.

    Each loop iteration performs exactly three accesses — the
    [quadrant\[i\] = 0] store, the [block\[i\]] load, and the [ftab\[j\]++]
    read-modify-write — which is what lets the attacker single-step it by
    revoking one array's pages at a time (Fig. 5). *)

open Zipchannel_trace

val block_base : int
val quadrant_base : int

val ftab_base : int
(** Deliberately not cache-line aligned (offset 0x30), as in the paper's
    Section IV-D discussion of the off-by-one ambiguity. *)

val layout : n:int -> Layout.t
(** Regions for a block of [n] bytes. *)

val program : bytes -> Event.t array
(** The access sequence of Listing 3 over one block, in execution order:
    3 events per iteration, iterations running i = n-1 downto 0. *)

val ftab_addresses : bytes -> int array
(** The exact virtual address of the [ftab] access of each iteration —
    the ground truth the attack tries to observe. *)
