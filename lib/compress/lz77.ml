module Obs = Zipchannel_obs.Obs

let m_literals = Obs.Metrics.counter "kernel.lz77.literals"
let m_matches = Obs.Metrics.counter "kernel.lz77.matches"
let h_match_len = Obs.Metrics.histogram "kernel.lz77.match_len"

let min_match = 3
let max_match = 258
let window_size = 32768
let hash_bits = 15
let hash_mask = (1 lsl hash_bits) - 1

let update_hash h c = ((h lsl 5) lxor c) land hash_mask

let hash_of_triple c0 c1 c2 = update_hash (update_hash (update_hash 0 c0) c1) c2

type token = Literal of char | Match of { length : int; distance : int }

type strategy = Greedy | Lazy

let pp_token ppf = function
  | Literal c -> Format.fprintf ppf "lit %C" c
  | Match { length; distance } ->
      Format.fprintf ppf "match len=%d dist=%d" length distance

let hash_head_trace input =
  let n = Bytes.length input in
  if n < min_match then [||]
  else begin
    let byte i = Char.code (Bytes.get input i) in
    (* ins_h is seeded with the first two bytes, then each INSERT_STRING
       rolls in the byte two ahead of the insertion point. *)
    let h = ref (update_hash (update_hash 0 (byte 0)) (byte 1)) in
    Array.init (n - 2) (fun k ->
        h := update_hash !h (byte (k + 2));
        !h)
  end

let tokenize ?(strategy = Greedy) ?(max_chain = 128) input =
  let n = Bytes.length input in
  let byte i = Char.code (Bytes.unsafe_get input i) in
  let head = Array.make (hash_mask + 1) (-1) in
  let prev = Array.make (max 1 n) (-1) in
  let insert pos =
    if pos + min_match <= n then begin
      let h = hash_of_triple (byte pos) (byte (pos + 1)) (byte (pos + 2)) in
      Array.unsafe_set prev pos (Array.unsafe_get head h);
      Array.unsafe_set head h pos
    end
  in
  let match_length pos cand =
    let limit = min max_match (n - pos) in
    let len = ref 0 in
    while
      !len < limit
      && Char.code (Bytes.unsafe_get input (cand + !len))
         = Char.code (Bytes.unsafe_get input (pos + !len))
    do
      incr len
    done;
    !len
  in
  let best_match pos =
    if pos + min_match > n then None
    else begin
      let h = hash_of_triple (byte pos) (byte (pos + 1)) (byte (pos + 2)) in
      let best_len = ref 0 and best_pos = ref (-1) in
      let cand = ref (Array.unsafe_get head h) and chain = ref max_chain in
      while !cand >= 0 && !chain > 0 do
        if pos - !cand <= window_size then begin
          let len = match_length pos !cand in
          if len > !best_len then begin
            best_len := len;
            best_pos := !cand
          end;
          cand := Array.unsafe_get prev !cand;
          decr chain
        end
        else cand := -1
      done;
      if !best_len >= min_match then
        Some (!best_len, pos - !best_pos)
      else None
    end
  in
  (* Tokens accumulate in a growable array rather than a consed list:
     the output token sequence is unchanged, but the hot loop no longer
     allocates a list cell per token. *)
  let tokens = ref (Array.make 512 (Literal '\000')) in
  let ntokens = ref 0 in
  let emit tok =
    let buf = !tokens in
    let cap = Array.length buf in
    if !ntokens = cap then begin
      let bigger = Array.make (2 * cap) (Literal '\000') in
      Array.blit buf 0 bigger 0 cap;
      tokens := bigger;
      bigger.(!ntokens) <- tok
    end
    else Array.unsafe_set buf !ntokens tok;
    incr ntokens
  in
  (match strategy with
  | Greedy ->
      let pos = ref 0 in
      while !pos < n do
        match best_match !pos with
        | Some (length, distance) ->
            emit (Match { length; distance });
            for p = !pos to !pos + length - 1 do insert p done;
            pos := !pos + length
        | None ->
            emit (Literal (Bytes.get input !pos));
            insert !pos;
            incr pos
      done
  | Lazy ->
      (* zlib's deflate_slow: hold a match found at pos-1 and abandon it
         for a single literal when pos matches strictly longer. *)
      let pos = ref 0 in
      let pending = ref None (* best match at !pos - 1 *) in
      while !pos < n do
        let m = best_match !pos in
        insert !pos;
        (match !pending with
        | None -> (
            match m with
            | Some _ ->
                pending := m;
                incr pos
            | None ->
                emit (Literal (Bytes.get input !pos));
                incr pos)
        | Some (plen, pdist) ->
            let better =
              match m with Some (len, _) -> len > plen | None -> false
            in
            if better then begin
              emit (Literal (Bytes.get input (!pos - 1)));
              pending := m;
              incr pos
            end
            else begin
              emit (Match { length = plen; distance = pdist });
              let next = !pos - 1 + plen in
              for p = !pos + 1 to next - 1 do insert p done;
              pos := next;
              pending := None
            end)
      done;
      (match !pending with
      | Some (plen, pdist) -> emit (Match { length = plen; distance = pdist })
      | None -> ()));
  let buf = !tokens in
  (* Telemetry over the finished token array: a single extra pass, run
     only when metrics are on, so the disabled path is untouched. *)
  if Obs.enabled () then begin
    let lits = ref 0 and matches = ref 0 in
    for i = 0 to !ntokens - 1 do
      match buf.(i) with
      | Literal _ -> incr lits
      | Match { length; _ } ->
          incr matches;
          Obs.Metrics.observe h_match_len length
    done;
    Obs.Metrics.add m_literals !lits;
    Obs.Metrics.add m_matches !matches
  end;
  let rec build i acc = if i < 0 then acc else build (i - 1) (buf.(i) :: acc) in
  build (!ntokens - 1) []

let detokenize tokens =
  let out = Buffer.create 256 in
  List.iter
    (fun token ->
      match token with
      | Literal c -> Buffer.add_char out c
      | Match { length; distance } ->
          let start = Buffer.length out - distance in
          if start < 0 then invalid_arg "Lz77.detokenize: distance too large";
          (* Byte-by-byte copy so that overlapping matches self-extend. *)
          for k = 0 to length - 1 do
            Buffer.add_char out (Buffer.nth out (start + k))
          done)
    tokens;
  Buffer.to_bytes out
