type kind = Read | Write

type t = { kind : kind; addr : int; size : int; label : string }

let read ?(label = "") ~addr ~size () = { kind = Read; addr; size; label }

let write ?(label = "") ~addr ~size () = { kind = Write; addr; size; label }

let pp ppf t =
  Format.fprintf ppf "%s 0x%x[%d]%s"
    (match t.kind with Read -> "R" | Write -> "W")
    t.addr t.size
    (if t.label = "" then "" else " (" ^ t.label ^ ")")
