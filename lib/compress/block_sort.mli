(** Bzip2's block-sorting stage, with the control-flow structure the paper
    attacks (Sections IV-D, V and VI).

    [main_sort] first builds the two-byte frequency table [ftab] — the
    paper's Listing 3, the gadget exploited by the SGX attack — then
    bucket-sorts rotations by their first two bytes and finishes each
    bucket with comparison sorting under a work budget.  When the budget is
    exhausted (highly repetitive input) it abandons and the caller retreats
    to [fallback_sort], reproducing the divergence of the paper's Fig. 6.
    Blocks shorter than the nominal block size skip [main_sort] entirely. *)

type func = Main_sort | Fallback_sort

type segment = { func : func; work : int }
(** A stretch of execution inside one sorting function, measured in
    abstract work units (byte comparisons / rank rounds). *)

type path = { segments : segment list; abandoned : bool }
(** The control-flow trace of sorting one block, in execution order. *)

val ftab_size : int
(** 65537, as in bzip2's [mainSort]. *)

val ftab_indices : bytes -> int array
(** The successive values of [j] used to index [ftab] in Listing 3, in
    loop order (i = nblock-1 downto 0).  Element [k] is
    [block.(n-1-k) lsl 8 lor block.((n-k) mod n)].  This is the exact
    address-relevant quantity the SGX attack observes. *)

val histogram : bytes -> int array
(** The completed frequency table: [ftab_size] counters of two-byte
    pairs. *)

exception Abandoned of int
(** Raised by [main_sort] when the work budget runs out; carries the work
    performed so far. *)

val main_sort : budget:int -> bytes -> int array * int
(** Rotation permutation and work spent.  @raise Abandoned on budget
    exhaustion. *)

val fallback_sort : bytes -> int array * int
(** Always succeeds (prefix doubling); returns permutation and work. *)

val default_budget_factor : int
(** 30, mirroring bzip2's default work factor. *)

val block_sort :
  ?budget_factor:int -> full_block:bool -> bytes -> int array * path
(** The dispatch of the paper's Fig. 6: a full-size block starts in
    [main_sort] and falls back on abandonment; a short block goes directly
    to [fallback_sort]. *)

val block_sort_sub :
  ?arena:Zipchannel_buf.Arena.t ->
  ?budget_factor:int ->
  full_block:bool ->
  bytes ->
  off:int ->
  len:int ->
  int array * path
(** {!block_sort} of [Bytes.sub block off len] without materializing the
    slice.  With [arena], scratch tables and the returned permutation
    live in arena slots: the permutation's physical length may exceed
    [len] (only the first [len] entries are meaningful) and it is
    overwritten by the next sort using the same arena.  Permutation
    entries, work counts, and abandonment behaviour are identical to
    {!block_sort}. *)
