test/test_rfc1951.ml: Alcotest Bytes Char Format Fun Lipsum List Printf Prng QCheck QCheck_alcotest Rfc1951 Zipchannel_compress Zipchannel_util
