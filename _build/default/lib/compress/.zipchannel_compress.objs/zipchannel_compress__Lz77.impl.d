lib/compress/lz77.ml: Array Buffer Bytes Char Format List
