(** TaintChannel model of the Ncompress hash-probe gadget (paper Listing 2,
    Fig. 3).

    Each LZW step computes [hp = (c << 9) ^ ent] — the fresh input byte
    shifted into bits 9–16, xor'ed with the current dictionary entry — and
    probes [htab\[hp\]], an array of 8-byte entries, so the dereference is
    [rbp + rax*8].  [ent] is loaded from the code table (a counter value),
    so under direct-flow taint tracking only the [c] bits of the index are
    tainted — exactly the Fig. 3 rendering. *)

val htab_base : int

val location : string

val run : ?htab_base:int -> bytes -> Engine.t
(** Execute the LZW dictionary-probe loop over the input under the
    instrumentation engine; every hash-table probe (first and secondary)
    goes through a monitored load. *)
